//===- bench/warm_restart.cpp - Warm-image time-to-peak ---------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Measures what a warm image (src/image/, DESIGN.md §16) buys: time to
/// peak elision throughput, cold versus restored.
///
/// The guest critical section writes only on every 64th entry, so static
/// classification says Writing (a putfield is a blocker) and the section
/// runs under the conventional lock until the profile proves it ReadMostly
/// (Section 5). A cold process therefore spends its first windows at
/// elide/op = 0 — profiling, reclassifying, retranslating — before
/// reaching peak. A restored process adopts the previous run's
/// classification, translated stream, profile, and adaptive-controller
/// state at startup and should be within 10% of steady-state elide/op in
/// its *first* measurement window.
///
/// Per window the bench reports ops/sec and elide/op (elision successes
/// per guest op — the deterministic warmth signal on a 1-vCPU host).
///
///   --checkpoint=FILE  write the warm image after the cold run
///   --restore=FILE     restore the warm run from FILE instead of memory
///
/// With neither flag the run is self-contained: cold run, in-memory
/// checkpoint, restored run, then a corrupted- and a truncated-image
/// restore demonstrating the cold-start fallback diagnostics.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "image/Checkpoint.h"
#include "image/Image.h"
#include "image/Resources.h"
#include "jit/Interpreter.h"
#include "jit/MethodBuilder.h"
#include "support/Stopwatch.h"

#include <cmath>
#include <limits>

using namespace solero;
using jit::Value;

namespace {

/// Entries between writes: below the classifier's 10% read-mostly
/// threshold, high enough that peak elide/op is unambiguous (63/64).
constexpr uint64_t WritePeriod = 64;

/// mostly(obj, doWrite) — synchronized { if (doWrite) obj.F1 = 1;
/// read obj.F0 }. Statically Writing; ReadMostly once profiled.
jit::Module buildWarmGuest() {
  jit::MethodBuilder B("mostly", 2, 2);
  auto Skip = B.newLabel();
  B.load(0).syncEnter();
  B.load(1).jumpIfZero(Skip);
  B.load(0).constant(1).putField(1);
  B.bind(Skip);
  B.load(0).getField(0).pop();
  B.syncExit();
  B.constant(0).ret();
  jit::Module M;
  M.addMethod(B.take());
  return M;
}

struct WindowRow {
  BenchResult R;
  double ElidePerOp = 0;
};

/// Runs one single-threaded measurement window of \p Ops guest calls.
/// \p OpIndex persists across windows so the write cadence is continuous.
WindowRow runWindow(jit::Interpreter &I, uint32_t MostlyId,
                    jit::GuestObject *Obj, uint64_t Ops, uint64_t &OpIndex) {
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();
  Stopwatch Clock;
  for (uint64_t K = 0; K < Ops; ++K, ++OpIndex) {
    int64_t DoWrite = (OpIndex % WritePeriod == 0) ? 1 : 0;
    I.invoke(MostlyId, {Value::ofRef(Obj), Value::ofInt(DoWrite)});
  }
  double Secs = Clock.elapsedSeconds();
  WindowRow W;
  W.R.Ops = Ops;
  W.R.Seconds = Secs;
  W.R.OpsPerSec = Secs > 0 ? static_cast<double>(Ops) / Secs : 0.0;
  W.R.Delta = countersDelta(Before, ThreadRegistry::instance().totalCounters());
  W.ElidePerOp = Ops ? static_cast<double>(W.R.Delta.ElisionSuccesses.value()) /
                           static_cast<double>(Ops)
                     : 0.0;
  return W;
}

struct Phase {
  std::vector<WindowRow> Windows;
  double steadyElide() const {
    return Windows.empty() ? 0.0 : Windows.back().ElidePerOp;
  }
  double firstElide() const {
    return Windows.empty() ? 0.0 : Windows.front().ElidePerOp;
  }
};

void emitPhase(JsonReport &Json, TablePrinter &T, const std::string &Variant,
               const Phase &P) {
  for (std::size_t W = 0; W < P.Windows.size(); ++W) {
    const WindowRow &Row = P.Windows[W];
    T.addRow({Variant, std::to_string(W),
              TablePrinter::num(Row.R.OpsPerSec, 0),
              TablePrinter::num(Row.ElidePerOp, 3),
              TablePrinter::percent(Row.R.failureRatio(), 2)});
    Json.add(Variant, "SOLERO", 1, Row.R,
             {{"window", static_cast<double>(W)},
              {"elide_per_op", Row.ElidePerOp}});
  }
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner(
      "Warm restart", "Time-to-peak elision, cold vs restored warm image",
      "No paper figure; CRaC-style expectation: the restored run is within "
      "10% of steady-state\nelide/op in its first measurement window, where "
      "the cold run starts at zero.");

  const uint64_t OpsPerWindow =
      static_cast<uint64_t>(Env.Args.getInt("ops", Env.Quick ? 4000 : 20000));
  const unsigned NumWindows =
      static_cast<unsigned>(Env.Args.getInt("windows", Env.Quick ? 4 : 6));
  // Windows spent profiling before reclassification (the cold run's
  // warm-up cost; the restored run skips it entirely).
  const unsigned ProfileWindows = Env.Quick ? 1 : 2;
  const std::string CkptPath = Env.Args.getString("checkpoint", "");
  const std::string RestPath = Env.Args.getString("restore", "");

  JsonReport Json("warm_restart");
  TablePrinter T({"variant", "window", "ops/s", "elide/op", "fail%"});

  // --- Cold run: profile, reclassify, reach peak -------------------------
  jit::Interpreter::Options ColdOpts;
  ColdOpts.CollectProfile = true;
  jit::Interpreter Cold(*Env.Ctx, buildWarmGuest(), ColdOpts);
  uint32_t MostlyId = Cold.module().methodId("mostly");
  jit::GuestObject *ColdObj = Cold.allocateObject();
  Phase ColdPhase;
  uint64_t ColdOp = 0;
  for (unsigned W = 0; W < NumWindows; ++W) {
    ColdPhase.Windows.push_back(
        runWindow(Cold, MostlyId, ColdObj, OpsPerWindow, ColdOp));
    if (W + 1 == ProfileWindows) {
      Cold.reclassifyWithProfile();
      Cold.endProfiling(); // checkpoint the uninstrumented stream
    }
  }
  emitPhase(Json, T, "cold", ColdPhase);

  // --- Checkpoint the warmed engine --------------------------------------
  image::CheckpointContext Ckpt;
  image::InterpreterWarmState ColdWarm("jit.warm", Cold);
  Ckpt.registerResource(&ColdWarm);
  std::vector<uint8_t> ImageBytes = Ckpt.checkpointBytes();
  if (!CkptPath.empty()) {
    image::Diagnostic D;
    if (Ckpt.checkpointTo(CkptPath, D))
      std::printf("checkpoint: wrote %zu-byte warm image to %s\n",
                  ImageBytes.size(), CkptPath.c_str());
    else
      std::fprintf(stderr, "checkpoint: %s\n", D.render().c_str());
  }

  // --- Restored run: fresh process state, adopt the image ----------------
  jit::Interpreter Restored(*Env.Ctx, buildWarmGuest(),
                            jit::Interpreter::Options());
  image::CheckpointContext Rest;
  image::InterpreterWarmState RestWarm("jit.warm", Restored);
  Rest.registerResource(&RestWarm);
  image::RestoreReport Report = RestPath.empty()
                                    ? Rest.restoreBytes(ImageBytes)
                                    : Rest.restoreFromFile(RestPath);
  std::printf("restore: %s\n", Report.summary().c_str());
  for (const image::Diagnostic &D : Report.Diags)
    std::printf("restore: %s\n", D.render().c_str());

  jit::GuestObject *RestObj = Restored.allocateObject();
  Phase RestPhase;
  uint64_t RestOp = 0;
  for (unsigned W = 0; W < NumWindows; ++W)
    RestPhase.Windows.push_back(
        runWindow(Restored, MostlyId, RestObj, OpsPerWindow, RestOp));
  emitPhase(Json, T, "restored", RestPhase);
  T.print();

  // --- Acceptance: restored window 0 vs cold steady state ----------------
  double Steady = ColdPhase.steadyElide();
  double RestoredFirst = RestPhase.firstElide();
  double ColdFirst = ColdPhase.firstElide();
  std::printf("\nsteady-state elide/op (cold, last window): %.3f\n", Steady);
  std::printf("cold     first-window elide/op: %.3f\n", ColdFirst);
  std::printf("restored first-window elide/op: %.3f (%.0f%% of steady)\n",
              RestoredFirst, Steady > 0 ? 100.0 * RestoredFirst / Steady : 0.0);
  bool WarmFromWindowZero =
      Report.allWarm(Rest.resourceCount()) && Steady > 0 &&
      RestoredFirst >= 0.9 * Steady && ColdFirst < 0.9 * Steady;
  std::printf("warm-restart acceptance: %s\n",
              WarmFromWindowZero ? "PASS (restored run peaks in window 0)"
                                 : "FAIL");

  // --- Fallback demo: corrupted and truncated images degrade cleanly -----
  if (RestPath.empty()) {
    jit::Interpreter Victim(*Env.Ctx, buildWarmGuest(),
                            jit::Interpreter::Options());
    image::CheckpointContext VCtx;
    image::InterpreterWarmState VWarm("jit.warm", Victim);
    VCtx.registerResource(&VWarm);

    std::vector<uint8_t> Corrupt = ImageBytes;
    Corrupt[Corrupt.size() / 2] ^= 0x40;
    image::RestoreReport BadRep = VCtx.restoreBytes(Corrupt);
    std::printf("\ncorrupted image: %s\n", BadRep.summary().c_str());
    for (const image::Diagnostic &D : BadRep.Diags)
      std::printf("corrupted image: %s\n", D.render().c_str());

    image::RestoreReport ShortRep =
        VCtx.restoreBytes(ImageBytes.data(), ImageBytes.size() / 3);
    std::printf("truncated image: %s\n", ShortRep.summary().c_str());
    for (const image::Diagnostic &D : ShortRep.Diags)
      std::printf("truncated image: %s\n", D.render().c_str());

    // The victim still runs — cold, but alive (the whole point of the
    // fallback policy).
    jit::GuestObject *VObj = Victim.allocateObject();
    uint64_t VOp = 0;
    WindowRow Alive = runWindow(Victim, MostlyId, VObj,
                                std::min<uint64_t>(OpsPerWindow, 2000), VOp);
    std::printf("after rejected restores the engine still runs cold: "
                "%.0f ops/s, elide/op %.3f\n",
                Alive.R.OpsPerSec, Alive.ElidePerOp);
    if (BadRep.ImageOk || ShortRep.ImageOk)
      std::fprintf(stderr, "error: bad image validated as OK\n");
  }

  // Schema-probe row: exercises the JSON emitter's non-finite guard and
  // control-character escaping end to end. The CI smoke bans the
  // substrings "nan"/"inf" anywhere in the document and requires it to
  // parse, so this row fails the smoke if either fix regresses.
  BenchResult Probe;
  Probe.OpsPerSec = std::numeric_limits<double>::quiet_NaN();
  Json.add(std::string("probe\001ctl"), "Probe", 1, Probe,
           {{"guard_zero_a", std::numeric_limits<double>::quiet_NaN()},
            {"guard_zero_b", std::numeric_limits<double>::infinity()}});

  return Json.write(Env.JsonPath) ? 0 : 1;
}

//===- bench/ablate_jit_guest.cpp - Guest program under both runtimes ------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// The paper's experimental design in miniature: the *same guest program*
/// (CSIR bytecode with synchronized blocks) executed by two runtimes —
/// one locking every region conventionally, one applying the Section 3.2
/// classification and eliding the read-only blocks. No guest-code change,
/// exactly as SOLERO "can replace the conventional lock implementation of
/// Java ... without requiring source code modification".
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "GuestPrograms.h"

#include "jit/Interpreter.h"

#include "support/Rng.h"

using namespace solero;
using namespace solero::jit;

namespace {

struct GuestRunner {
  GuestRunner(RuntimeContext &Ctx, bool Conventional, DispatchMode Mode,
              uint64_t Seed)
      : Seed(Seed) {
    Interpreter::Options Opts;
    Opts.UseConventionalLocks = Conventional;
    Opts.Mode = Mode;
    Interp = std::make_unique<Interpreter>(Ctx, bench::buildConfigGuest(), Opts);
    Config = Interp->allocateObject();
    for (int T = 0; T < 64; ++T)
      *Rngs[T] = Xoshiro256StarStar(Seed + static_cast<uint64_t>(T));
  }

  void operator()(int T) {
    Xoshiro256StarStar &Rng = *Rngs[T];
    if (Rng.nextPercent(5))
      Interp->invoke(1, {Value::ofRef(Config),
                         Value::ofInt(static_cast<int64_t>(Rng.next() >> 8))});
    else
      Sink += Interp->invoke(0, {Value::ofRef(Config)}).asInt();
  }

  uint64_t Seed;
  std::unique_ptr<Interpreter> Interp;
  GuestObject *Config = nullptr;
  CacheLinePadded<Xoshiro256StarStar> Rngs[64];
  std::atomic<int64_t> Sink{0};
};

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner("Ablation A3", "One guest program, two runtimes (JIT view)",
              "SOLERO replaces the conventional lock implementation with no "
              "guest-code change; the\nclassifier elides the read-only "
              "blocks automatically.");
  int Threads = static_cast<int>(Env.Args.getInt("app-threads", 2));
  int Rounds = static_cast<int>(Env.Args.getInt("rounds", Env.Quick ? 1 : 4));

  // Four runtimes: both lock protocols under both execution engines. The
  // engine is orthogonal to the protocol, so the dispatch speedup should
  // not move the SOLERO/Conventional ratio.
  struct Config {
    const char *Name;
    bool Conventional;
    DispatchMode Mode;
  };
  const Config Configs[] = {
      {"Conventional / switch", true, DispatchMode::Reference},
      {"SOLERO / switch", false, DispatchMode::Reference},
      {"Conventional / threaded", true, DispatchMode::Threaded},
      {"SOLERO / threaded", false, DispatchMode::Threaded},
  };
  HarnessOptions OneTrial = Env.Opts;
  OneTrial.Trials = 1;
  std::vector<TrialRunner> Runners;
  for (const Config &C : Configs) {
    auto R = std::make_shared<GuestRunner>(*Env.Ctx, C.Conventional, C.Mode,
                                           Env.Seed);
    Runners.push_back(TrialRunner{C.Name, [R, Threads, OneTrial] {
      return runThroughput(Threads, OneTrial, std::ref(*R));
    }});
  }
  std::vector<BenchResult> R = runInterleavedBest(Runners, Rounds);

  TablePrinter T({"runtime", "guest tx/s", "rmw/op", "st/op",
                  "elide succ/op", "fail%"});
  for (std::size_t I = 0; I < 4; ++I)
    T.addRow({Configs[I].Name, TablePrinter::num(R[I].OpsPerSec, 0),
              TablePrinter::num(R[I].rmwPerOp(), 2),
              TablePrinter::num(R[I].storesPerOp(), 2),
              TablePrinter::num(
                  R[I].Ops ? static_cast<double>(R[I].Delta.ElisionSuccesses) /
                                 static_cast<double>(R[I].Ops)
                           : 0,
                  2),
              TablePrinter::percent(R[I].failureRatio(), 2)});
  T.print();
  std::printf("\nthreaded/switch speedup: Conventional %.2fx, SOLERO %.2fx "
              "(dispatch engine: %s)\n",
              R[2].OpsPerSec / R[0].OpsPerSec, R[3].OpsPerSec / R[1].OpsPerSec,
              Interpreter::threadedDispatchAvailable() ? "computed goto"
                                                       : "pre-decoded switch");
  std::printf("SOLERO/Conventional = %.3f (switch), %.3f (threaded); 95%% of "
              "guest transactions are\nread-only synchronized blocks and "
              "elide (0 lock-word traffic).\n",
              R[1].OpsPerSec / R[0].OpsPerSec,
              R[3].OpsPerSec / R[2].OpsPerSec);
  return 0;
}

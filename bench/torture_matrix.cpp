//===- bench/torture_matrix.cpp - Torture cross-product driver ------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Drives the stress/ torture subsystem through a cross-product of
/// protocol × thread count × write ratio × async-storm rate × seed and
/// prints one oracle row per cell. Any oracle violation (mutual exclusion,
/// torn snapshot, counter conservation, unreleased final state) makes the
/// process exit nonzero, so CI can run this directly under TSan/ASan.
///
///   torture_matrix --smoke              # one small cell per protocol
///   torture_matrix --quick              # reduced matrix for CI
///   torture_matrix --seeds=1,2,3        # seed sweep
///   torture_matrix --enforce-watchdog   # park-latency trips fail too
///
//===----------------------------------------------------------------------===//

#include "stress/TortureRunner.h"
#include "support/CliParser.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <vector>

using namespace solero;
using namespace solero::stress;

int main(int Argc, char **Argv) {
  CliParser Cli(Argc, Argv);
  const bool Smoke = Cli.getBool("smoke", false);
  const bool Quick = Cli.getBool("quick", false);
  const bool EnforceWatchdog = Cli.getBool("enforce-watchdog", false);
  const uint64_t Iters = static_cast<uint64_t>(
      Cli.getInt("iters", Smoke ? 1000 : (Quick ? 3000 : 10000)));

  std::vector<int> Threads =
      Cli.getIntList("threads", Smoke ? std::vector<int>{4}
                     : Quick           ? std::vector<int>{2, 8}
                                       : std::vector<int>{2, 4, 8});
  std::vector<int> WritePercents =
      Cli.getIntList("writes", Smoke ? std::vector<int>{20}
                     : Quick          ? std::vector<int>{5, 50}
                                      : std::vector<int>{0, 5, 20, 50});
  std::vector<int> StormMicros =
      Cli.getIntList("storm-us", Smoke ? std::vector<int>{200}
                                       : std::vector<int>{0, 200});
  std::vector<int> Seeds = Cli.getIntList(
      "seeds", Smoke || Quick ? std::vector<int>{1} : std::vector<int>{1, 2});

  const TortureProtocol Protocols[] = {
      TortureProtocol::Solero,  TortureProtocol::Tasuki,
      TortureProtocol::SeqLock, TortureProtocol::RWLock,
      TortureProtocol::BravoRW, TortureProtocol::ShardedKv};

  TablePrinter T({"protocol", "thr", "wr%", "storm-us", "seed", "reads",
                  "writes", "throws", "trips", "maxop-us", "firings",
                  "verdict"});
  int Cells = 0, Failures = 0;
  for (TortureProtocol P : Protocols)
    for (int Thr : Threads)
      for (int Wr : WritePercents)
        for (int Storm : StormMicros)
          for (int Seed : Seeds) {
            TortureConfig C;
            C.Protocol = P;
            C.Threads = Thr;
            C.WritePercent = Wr;
            // Guest throws only where the protocol validates them
            // (elided/optimistic readers; ShardedKv pair-reads run under
            // SOLERO shard locks).
            C.GuestThrowPercent = (P == TortureProtocol::Solero ||
                                   P == TortureProtocol::SeqLock ||
                                   P == TortureProtocol::ShardedKv)
                                      ? 5
                                      : 0;
            C.Seed = static_cast<uint64_t>(Seed);
            C.IterationsPerThread = Iters;
            C.AsyncStormPeriod = std::chrono::microseconds(Storm);
            C.EnforceWatchdog = EnforceWatchdog;
            TortureReport R = runTorture(C);
            ++Cells;
            if (!R.passed()) {
              ++Failures;
              std::fprintf(stderr,
                           "FAIL %s thr=%d wr=%d storm=%d seed=%d: %s\n",
                           tortureProtocolName(P), Thr, Wr, Storm, Seed,
                           R.summary().c_str());
            }
            T.addRow({tortureProtocolName(P), std::to_string(Thr),
                      std::to_string(Wr), std::to_string(Storm),
                      std::to_string(Seed), std::to_string(R.Reads),
                      std::to_string(R.Writes), std::to_string(R.GuestThrows),
                      std::to_string(R.WatchdogTrips),
                      std::to_string(R.MaxOpMicros),
                      std::to_string(R.InjectionFirings),
                      R.passed() ? "ok" : "FAIL"});
          }
  T.print();
  std::printf("\n%d/%d cells passed their oracles%s\n", Cells - Failures,
              Cells, EnforceWatchdog ? " (watchdog enforced)" : "");
  return Failures == 0 ? 0 : 1;
}

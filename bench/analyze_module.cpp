//===- bench/analyze_module.cpp - Static elidability/race report ----------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// The static-analysis front door: classify every synchronized region of
/// the named guest programs (bench/GuestPrograms.h), render the structured
/// elidability diagnostics, and run the guest race detector. The output is
/// fully deterministic — CI diffs it against analyze_module.expected, so
/// a classifier or detector behavior change shows up as a golden-file
/// diff, not a silent drift.
///
///   analyze_module [--module=config|snapshot|racy]   (default: all)
///
//===----------------------------------------------------------------------===//

#include "GuestPrograms.h"

#include "jit/ReadOnlyClassifier.h"
#include "jit/analysis/RaceDetector.h"

#include "support/CliParser.h"

#include <cstdio>
#include <cstring>

using namespace solero;
using namespace solero::jit;

namespace {

std::size_t report(const char *Name, const Module &M) {
  ClassifiedModule C = classifyModule(M);
  std::printf("== module %s ==\n", Name);
  unsigned Total = 0, Elidable = 0, BenignWrites = 0;
  for (uint32_t Id = 0; Id < M.methodCount(); ++Id) {
    const Method &Fn = M.method(Id);
    std::printf("method %s (%s)\n", Fn.Name.c_str(),
                C.methodIsPure(Id) ? "pure" : "impure");
    for (const ClassifiedRegion &R : C.regions(Id)) {
      ++Total;
      if (R.Kind != RegionKind::Writing)
        ++Elidable;
      std::printf("  region [pc %u, pc %u): %s — %s\n", R.Region.EnterPc,
                  R.Region.ExitPc, regionKindName(R.Kind),
                  regionReason(M, R).c_str());
      for (std::size_t I = 1; I < R.Diags.size(); ++I) {
        if (R.Diags[I].Code == DiagCode::FreshWrite)
          ++BenignWrites;
        std::printf("    ; %s\n", renderDiagnostic(M, R.Diags[I]).c_str());
      }
    }
  }
  std::vector<RaceWarning> Races = detectRaces(M);
  for (const RaceWarning &W : Races)
    std::printf("race: %s\n", renderRaceWarning(M, W).c_str());
  std::printf("summary: %u regions, %u elidable, %u benign writes, %zu race "
              "warnings\n\n",
              Total, Elidable, BenignWrites, Races.size());
  return Races.size();
}

} // namespace

int main(int Argc, char **Argv) {
  CliParser Args(Argc, Argv);
  std::string Which = Args.getString("module", "all");
  auto Want = [&](const char *Name) {
    return Which == "all" || Which == Name;
  };
  std::printf("solero analyze_module — Section 3.2 elidability and guest "
              "race report\n\n");
  std::size_t Races = 0;
  if (Want("config"))
    Races += report("config", bench::buildConfigGuest());
  if (Want("snapshot"))
    Races += report("snapshot", bench::buildSnapshotGuest());
  if (Want("racy"))
    Races += report("racy", bench::buildRacyCounterGuest());
  // Race findings fail the build: CI runs the clean guests expecting 0 and
  // the seeded racy guest expecting 1, so the detector regressing in
  // either direction is caught by exit code alone.
  return Races != 0 ? 1 : 0;
}

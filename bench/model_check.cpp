//===- bench/model_check.cpp - Protocol model checker CLI -----------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Exhaustively explores the lock-word protocol models (src/verify) under
/// SC and TSO and reports a deterministic one-line summary per run plus,
/// on a violation, the BFS-minimized counterexample trace. No timing in
/// the output — two invocations with the same flags are byte-identical,
/// which CI exploits with a `cmp` determinism check.
///
///   model_check --all                        # every shipped model, SC+TSO
///   model_check --model=solero --mem=tso
///   model_check --model=solero --variant=blind-store-release   # exits 1
///   model_check --model=bravo --variant=no-revocation-fence --mem=tso
///   model_check --model=dekker --variant=no-fence --mem=tso
///
/// Flags: --mem=sc|tso|both (default both), --variant=shipped|... (model
/// specific, see src/verify/Models.h), --por=0 disables the sleep-set
/// reduction, --depth-bound=N / --max-transitions=N override the valves,
/// --quiet suppresses traces.
///
/// Exit code: 0 when every run passes, 1 when any run finds a violation,
/// 2 when any run is incomplete (valve hit) — CI treats the seeded-bug
/// variants' exit 1 as the expected outcome.
///
//===----------------------------------------------------------------------===//

#include "support/CliParser.h"
#include "verify/Checker.h"
#include "verify/Models.h"
#include "verify/Trace.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace solero;
using namespace solero::verify;

namespace {

std::unique_ptr<ProtocolModel> buildModel(const std::string &Name,
                                          const std::string &Variant) {
  if (Name == "solero") {
    SoleroModelConfig C;
    if (Variant == "blind-store-release")
      C.BlindStoreRelease = true;
    else if (Variant != "shipped")
      return nullptr;
    return makeSoleroModel(C);
  }
  if (Name == "tasuki") {
    TasukiModelConfig C;
    if (Variant == "blind-store-release")
      C.BlindStoreRelease = true;
    else if (Variant != "shipped")
      return nullptr;
    return makeTasukiModel(C);
  }
  if (Name == "bravo") {
    BravoModelConfig C;
    if (Variant == "no-revocation-fence")
      C.NoRevocationFence = true;
    else if (Variant != "shipped")
      return nullptr;
    return makeBravoModel(C);
  }
  if (Name == "dekker") {
    DekkerModelConfig C;
    if (Variant == "no-fence")
      C.Fences = false;
    else if (Variant != "shipped")
      return nullptr;
    return makeDekkerModel(C);
  }
  return nullptr;
}

} // namespace

int main(int Argc, char **Argv) {
  CliParser Args(Argc, Argv);
  const bool All = Args.getBool("all", false);
  const std::string ModelName = Args.getString("model", All ? "" : "solero");
  const std::string Variant = Args.getString("variant", "shipped");
  const std::string Mem = Args.getString("mem", "both");
  const bool Quiet = Args.getBool("quiet", false);

  CheckConfig Base;
  Base.SleepSets = Args.getBool("por", true);
  Base.DepthBound = static_cast<uint32_t>(
      Args.getInt("depth-bound", Base.DepthBound));
  Base.MaxTransitions = static_cast<uint64_t>(
      Args.getInt("max-transitions", Base.MaxTransitions));

  std::vector<std::string> Models;
  if (All) {
    Models = {"solero", "tasuki", "bravo"};
  } else {
    Models = {ModelName};
  }
  std::vector<MemSemantics> Mems;
  if (Mem == "sc")
    Mems = {MemSemantics::SC};
  else if (Mem == "tso")
    Mems = {MemSemantics::TSO};
  else if (Mem == "both")
    Mems = {MemSemantics::SC, MemSemantics::TSO};
  else {
    std::fprintf(stderr, "model_check: unknown --mem=%s\n", Mem.c_str());
    return 3;
  }

  bool AnyViolation = false, AnyIncomplete = false;
  for (const std::string &Name : Models) {
    std::unique_ptr<ProtocolModel> M = buildModel(Name, Variant);
    if (!M) {
      std::fprintf(stderr, "model_check: unknown model/variant %s/%s\n",
                   Name.c_str(), Variant.c_str());
      return 3;
    }
    for (MemSemantics Sem : Mems) {
      CheckConfig C = Base;
      C.Mem = Sem;
      CheckResult R = checkModel(*M, C);
      std::printf("%s\n", renderSummary(*M, Variant.c_str(), C, R).c_str());
      if (R.V == Verdict::Violation) {
        AnyViolation = true;
        if (!Quiet)
          std::printf("%s", renderTrace(*M, C, R).c_str());
      } else if (R.V == Verdict::Incomplete) {
        AnyIncomplete = true;
      }
    }
  }
  if (AnyViolation)
    return 1;
  return AnyIncomplete ? 2 : 0;
}

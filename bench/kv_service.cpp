//===- bench/kv_service.cpp - Open-loop sharded KV service bench ----------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// The service-shaped evaluation the figure benchmarks cannot provide: a
/// sharded KV store (kv/ShardedKvStore.h) guarded by each policy of the
/// lock portfolio, driven by an *open-loop* load generator — Poisson
/// arrivals at a configured offered rate, Zipfian key popularity, a mixed
/// GET/PUT/DELETE/SCAN op stream, optional burst phases — with per-thread
/// log-bucketed latency histograms. Each request is charged from its
/// scheduled arrival time, so queueing delay shows up in the percentiles
/// instead of silently throttling the arrival rate the way closed-loop
/// harnesses do (the BRAVO paper's argument for tail-latency evaluation).
///
/// Per policy the bench steps the offered load geometrically until p99
/// blows past the SLO (or completions fall behind arrivals) and reports
/// the last sustainable rate as the saturation throughput.
///
///   kv_service                         # full sweep, all five policies
///   kv_service --quick                 # CI smoke (tiny rates/windows)
///   kv_service --policies=Lock,SOLERO  # subset
///   kv_service --rate=30000 --slo-us=2000 --burst-factor=4
///   kv_service --json=BENCH_kv.json    # machine-readable rows
///   kv_service --checkpoint=kv.img     # write adaptive lock state after
///                                      # the sweeps (warm image, §16)
///   kv_service --restore=kv.img        # rehydrate each policy's per-shard
///                                      # lock state before its sweep
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "image/Image.h"
#include "image/Resources.h"
#include "kv/ShardedKvStore.h"
#include "support/Backoff.h"
#include "support/Distributions.h"
#include "support/LatencyHistogram.h"
#include "support/NumaTopology.h"
#include "support/Stats.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace solero;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Spins/sleeps until \p TargetNs. Coarse sleep for long gaps, yield for
/// medium ones (the 1-vCPU container needs other workers to run), relax
/// for the final stretch.
void waitUntil(uint64_t TargetNs) {
  for (;;) {
    uint64_t Now = nowNs();
    if (Now >= TargetNs)
      return;
    uint64_t Gap = TargetNs - Now;
    if (Gap > 300000)
      std::this_thread::sleep_for(std::chrono::nanoseconds(Gap - 150000));
    else if (Gap > 10000)
      osYield();
    else
      cpuRelax();
  }
}

struct KvBenchParams {
  unsigned Shards = 16;
  uint64_t Keys = 1 << 16;
  double Zipf = 0.99;
  unsigned PutPct = 3;
  unsigned DelPct = 1;
  unsigned ScanPct = 1; // GET is the remainder
  int Threads = 4;
  uint64_t DurationNs = 400ull * 1000 * 1000;
  bool Pin = true;
  uint64_t Seed = 0x5eed;
  double BurstFactor = 1.0; // >1 enables burst phases
  uint64_t BurstPeriodNs = 200ull * 1000 * 1000;
  uint64_t BurstLenNs = 50ull * 1000 * 1000;
};

struct LoadResult {
  BenchResult Bench; ///< Ops = completed, OpsPerSec = achieved
  double OfferedPerSec = 0;
  uint64_t P50Ns = 0, P99Ns = 0, P999Ns = 0, MaxNs = 0;
  double HitRatio = 0;
};

/// One open-loop measurement of \p Store at \p OfferedPerSec total.
template <typename Store>
LoadResult runOpenLoop(Store &Store_, const KvBenchParams &P,
                       const ZipfianSampler &Zipf, double OfferedPerSec) {
  const int Threads = P.Threads;
  const PoissonProcess Arrivals(OfferedPerSec / Threads);
  std::vector<LatencyHistogram> Hists(static_cast<std::size_t>(Threads));
  std::vector<uint64_t> Completed(static_cast<std::size_t>(Threads), 0);
  std::vector<uint64_t> Hits(static_cast<std::size_t>(Threads), 0);
  std::vector<uint64_t> Gets(static_cast<std::size_t>(Threads), 0);
  SpinBarrier Start(static_cast<uint32_t>(Threads) + 1);
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();

  std::vector<std::thread> Workers;
  Workers.reserve(static_cast<std::size_t>(Threads));
  std::atomic<uint64_t> StartNs{0};
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      if (P.Pin)
        NumaTopology::pinCurrentThreadToCpu(static_cast<unsigned>(T) %
                                            NumaTopology::cpuCount());
      Xoshiro256StarStar Rng(P.Seed * 0x9e3779b97f4a7c15ULL +
                             static_cast<uint64_t>(T) + 1);
      LatencyHistogram &Hist = Hists[static_cast<std::size_t>(T)];
      Start.arriveAndWait();
      const uint64_t Begin = StartNs.load(std::memory_order_acquire);
      const uint64_t End = Begin + P.DurationNs;
      uint64_t Next = Begin + Arrivals.nextGapNs(Rng);
      uint64_t Done = 0, Hit = 0, Get = 0;
      while (Next < End) {
        if (nowNs() < Next)
          waitUntil(Next);
        // Dispatch one request. Latency is charged from the scheduled
        // arrival: a thread running behind pays its backlog in the tail.
        unsigned Roll = static_cast<unsigned>(Rng.nextBounded(100));
        if (Roll < P.PutPct) {
          Store_.put(Zipf.nextScrambled(Rng), Rng.next() >> 1);
        } else if (Roll < P.PutPct + P.DelPct) {
          Store_.remove(Zipf.nextScrambled(Rng));
        } else if (Roll < P.PutPct + P.DelPct + P.ScanPct) {
          // The scan reads atomics, so it cannot be optimized away.
          auto St = Store_.scanShard(static_cast<unsigned>(
              Rng.nextBounded(Store_.shardCount())));
          (void)St;
        } else {
          ++Get;
          if (Store_.get(Zipf.nextScrambled(Rng)).has_value())
            ++Hit;
        }
        uint64_t DoneAt = nowNs();
        Hist.record(DoneAt > Next ? DoneAt - Next : 1);
        ++Done;
        // Burst phases compress the arrival gaps by BurstFactor.
        uint64_t Gap = Arrivals.nextGapNs(Rng);
        if (P.BurstFactor > 1.0 &&
            (Next - Begin) % P.BurstPeriodNs < P.BurstLenNs) {
          Gap = static_cast<uint64_t>(static_cast<double>(Gap) /
                                      P.BurstFactor);
          if (Gap == 0)
            Gap = 1;
        }
        Next += Gap;
      }
      Completed[static_cast<std::size_t>(T)] = Done;
      Hits[static_cast<std::size_t>(T)] = Hit;
      Gets[static_cast<std::size_t>(T)] = Get;
    });

  StartNs.store(nowNs(), std::memory_order_release);
  Start.arriveAndWait();
  for (auto &W : Workers)
    W.join();
  ProtocolCounters After = ThreadRegistry::instance().totalCounters();

  LoadResult R;
  R.OfferedPerSec = OfferedPerSec;
  LatencyHistogram Merged;
  uint64_t TotalGets = 0, TotalHits = 0;
  for (int T = 0; T < Threads; ++T) {
    Merged.mergeFrom(Hists[static_cast<std::size_t>(T)]);
    R.Bench.Ops += Completed[static_cast<std::size_t>(T)];
    TotalHits += Hits[static_cast<std::size_t>(T)];
    TotalGets += Gets[static_cast<std::size_t>(T)];
  }
  R.Bench.Seconds = static_cast<double>(P.DurationNs) * 1e-9;
  R.Bench.OpsPerSec = R.Bench.Seconds > 0
                          ? static_cast<double>(R.Bench.Ops) / R.Bench.Seconds
                          : 0.0; // --duration-ms=0 must not emit inf/nan
  R.Bench.Delta = countersDelta(Before, After);
  R.P50Ns = Merged.quantile(0.50);
  R.P99Ns = Merged.quantile(0.99);
  R.P999Ns = Merged.quantile(0.999);
  R.MaxNs = Merged.max();
  R.HitRatio = safeRatio(TotalHits, TotalGets);
  return R;
}

struct SweepParams {
  double BaseRate = 30000;
  double Factor = 1.6;
  int Steps = 7;
  uint64_t SloNs = 2000ull * 1000; // p99 SLO
};

double usOf(uint64_t Ns) { return static_cast<double>(Ns) * 1e-3; }

/// Runs one policy: prefill once, then step the offered load until the
/// SLO breaks. Emits one JSON row per step plus a saturation summary row.
template <typename Policy>
void runPolicy(BenchEnv &Env, JsonReport &Json, const KvBenchParams &P,
               const SweepParams &Sweep, const ZipfianSampler &Zipf,
               image::ImageBuilder *Ckpt, const image::LoadedImage *Warm) {
  kv::KvStoreConfig C;
  C.Shards = P.Shards;
  C.InitialShardCapacity = 64;
  kv::ShardedKvStore<Policy> Store(*Env.Ctx, C);
  SplitMix64 Fill(P.Seed);
  for (uint64_t K = 0; K < P.Keys; ++K)
    Store.put(K, Fill.next() >> 1);

  std::printf("\n--- %s ---\n", Policy::name());
  // Rehydrate the per-shard adaptive lock state (SOLERO controllers,
  // BRAVO bias) from the warm image before the sweep; a missing or
  // mismatched blob just means this policy sweeps cold.
  const std::string BlobName = std::string("kv.") + Policy::name();
  if (Warm && Warm->loaded()) {
    const std::vector<uint8_t> *Blob = Warm->blob(BlobName);
    bool Restored = false;
    if (Blob) {
      image::ImageReader R(*Blob);
      Restored = image::restoreKvLockState(R, Store);
    }
    std::printf("warm image: %s %s\n", BlobName.c_str(),
                Restored ? "restored (per-shard lock state rehydrated)"
                         : (Blob ? "rejected; sweeping cold"
                                 : "not present; sweeping cold"));
  }
  TablePrinter T({"offered/s", "achieved/s", "p50 us", "p99 us", "p999 us",
                  "max us", "rmw/op", "hit%", "verdict"});
  double Rate = Sweep.BaseRate;
  LoadResult Sat;
  bool Saturated = false;
  for (int Step = 0; Step < Sweep.Steps; ++Step) {
    LoadResult R = runOpenLoop(Store, P, Zipf, Rate);
    bool MetSlo = R.P99Ns <= Sweep.SloNs &&
                  R.Bench.OpsPerSec >= 0.9 * R.OfferedPerSec;
    T.addRow({TablePrinter::num(R.OfferedPerSec, 0),
              TablePrinter::num(R.Bench.OpsPerSec, 0),
              TablePrinter::num(usOf(R.P50Ns), 1),
              TablePrinter::num(usOf(R.P99Ns), 1),
              TablePrinter::num(usOf(R.P999Ns), 1),
              TablePrinter::num(usOf(R.MaxNs), 1),
              TablePrinter::num(R.Bench.rmwPerOp(), 2),
              TablePrinter::percent(R.HitRatio, 1),
              MetSlo ? "ok" : "SATURATED"});
    Json.add("sweep", Policy::name(), P.Threads, R.Bench,
             {{"offered_per_sec", R.OfferedPerSec},
              {"p50_us", usOf(R.P50Ns)},
              {"p99_us", usOf(R.P99Ns)},
              {"p999_us", usOf(R.P999Ns)},
              {"max_us", usOf(R.MaxNs)},
              {"hit_ratio", R.HitRatio}});
    if (!MetSlo) {
      Saturated = true;
      break;
    }
    Sat = R;
    Rate *= Sweep.Factor;
  }
  T.print();
  double SatRate = Sat.Bench.OpsPerSec;
  std::printf("%s saturation: %s ops/s within p99 SLO of %s us%s "
              "(GET-path rmw/op %.2f, %llu shard resizes)\n",
              Policy::name(), TablePrinter::num(SatRate, 0).c_str(),
              TablePrinter::num(usOf(Sweep.SloNs), 0).c_str(),
              Saturated ? "" : " [sweep exhausted, raise --sweep-steps]",
              Sat.Bench.rmwPerOp(),
              static_cast<unsigned long long>(Store.totalResizes()));
  Json.add("saturation", Policy::name(), P.Threads, Sat.Bench,
           {{"sat_ops_per_sec", SatRate},
            {"slo_us", usOf(Sweep.SloNs)},
            {"p99_us", usOf(Sat.P99Ns)}});
  // All workers are joined (quiescent), so the controllers can be
  // snapshotted into the warm image for the next run.
  if (Ckpt)
    Ckpt->addBlob(BlobName, image::snapshotKvLockState(Store));
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner(
      "KV service", "sharded store under open-loop Poisson/Zipfian load",
      "beyond the paper: service-style tail-latency evaluation (ROADMAP "
      "item 1);\nread-side elision/bias should hold p99 and saturation "
      "above the plain Lock.");

  KvBenchParams P;
  P.Shards = static_cast<unsigned>(Env.Args.getInt("shards", 16));
  P.Keys = static_cast<uint64_t>(
      Env.Args.getInt("keys", Env.Quick ? 4096 : 1 << 16));
  P.Zipf = Env.Args.getDouble("zipf", 0.99);
  P.PutPct = static_cast<unsigned>(Env.Args.getInt("put", 3));
  P.DelPct = static_cast<unsigned>(Env.Args.getInt("del", 1));
  P.ScanPct = static_cast<unsigned>(Env.Args.getInt("scan", 1));
  P.Threads = static_cast<int>(Env.Args.getInt("threads", Env.Quick ? 2 : 4));
  P.DurationNs = static_cast<uint64_t>(Env.Args.getInt(
                     "duration-ms", Env.Quick ? 60 : 400)) *
                 1000000ull;
  P.Pin = Env.Args.getBool("pin", true);
  P.Seed = Env.Seed;
  P.BurstFactor = Env.Args.getDouble("burst-factor", 1.0);
  P.BurstPeriodNs = static_cast<uint64_t>(
                        Env.Args.getInt("burst-period-ms", 200)) *
                    1000000ull;
  P.BurstLenNs =
      static_cast<uint64_t>(Env.Args.getInt("burst-len-ms", 50)) * 1000000ull;
  SOLERO_CHECK(P.PutPct + P.DelPct + P.ScanPct <= 100,
               "op mix exceeds 100 percent");

  SweepParams Sweep;
  Sweep.BaseRate = Env.Args.getDouble("rate", Env.Quick ? 4000 : 30000);
  Sweep.Factor = Env.Args.getDouble("sweep-factor", 1.6);
  Sweep.Steps = static_cast<int>(
      Env.Args.getInt("sweep-steps", Env.Quick ? 2 : 7));
  Sweep.SloNs = static_cast<uint64_t>(Env.Args.getInt(
                    "slo-us", Env.Quick ? 50000 : 2000)) *
                1000ull;

  std::printf("shards=%u keys=%llu zipf=%.2f mix=GET %u%% / PUT %u%% / "
              "DEL %u%% / SCAN %u%% threads=%d\nwindow=%llums "
              "burst-factor=%.1f pin=%d sweep: %g ops/s x%.2f, %d steps, "
              "p99 SLO %llu us\n",
              P.Shards, static_cast<unsigned long long>(P.Keys), P.Zipf,
              100 - P.PutPct - P.DelPct - P.ScanPct, P.PutPct, P.DelPct,
              P.ScanPct, P.Threads,
              static_cast<unsigned long long>(P.DurationNs / 1000000),
              P.BurstFactor, P.Pin ? 1 : 0, Sweep.BaseRate, Sweep.Factor,
              Sweep.Steps,
              static_cast<unsigned long long>(Sweep.SloNs / 1000));

  const ZipfianSampler Zipf(P.Keys, P.Zipf);
  std::string Policies =
      Env.Args.getString("policies", "Lock,RWLock,BravoRW,SOLERO,SeqLock");
  JsonReport Json("kv_service");
  // Exact comma-token match ("Lock" must not select RWLock or SeqLock).
  auto Wants = [&](const char *Name) {
    std::size_t Pos = 0;
    while (Pos <= Policies.size()) {
      std::size_t Comma = Policies.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = Policies.size();
      if (Policies.compare(Pos, Comma - Pos, Name) == 0 ||
          Policies.compare(Pos, Comma - Pos, "all") == 0)
        return true;
      Pos = Comma + 1;
    }
    return false;
  };
  const std::string CkptPath = Env.Args.getString("checkpoint", "");
  const std::string RestPath = Env.Args.getString("restore", "");
  image::ImageBuilder Builder;
  image::ImageBuilder *Ckpt = CkptPath.empty() ? nullptr : &Builder;
  image::LoadedImage Warm;
  image::Diagnostic LoadDiag;
  if (!RestPath.empty()) {
    Warm = image::LoadedImage::fromFile(RestPath, LoadDiag);
    if (!LoadDiag.ok()) // degrade to a cold run, never crash
      std::printf("warm image: %s\n", LoadDiag.render().c_str());
  }
  const image::LoadedImage *WarmP = Warm.loaded() ? &Warm : nullptr;

  if (Wants("Lock"))
    runPolicy<TasukiPolicy>(Env, Json, P, Sweep, Zipf, Ckpt, WarmP);
  if (Wants("RWLock"))
    runPolicy<RwPolicy>(Env, Json, P, Sweep, Zipf, Ckpt, WarmP);
  if (Wants("BravoRW"))
    runPolicy<BravoRwPolicy>(Env, Json, P, Sweep, Zipf, Ckpt, WarmP);
  if (Wants("SOLERO"))
    runPolicy<SoleroPolicy>(Env, Json, P, Sweep, Zipf, Ckpt, WarmP);
  if (Wants("Adaptive-SOLERO")) // off the default list; carries the
    runPolicy<AdaptiveSoleroPolicy>(Env, Json, P, Sweep, Zipf, Ckpt,
                                    WarmP); // richest controller state
  if (Wants("SeqLock"))
    runPolicy<SeqLockPolicy>(Env, Json, P, Sweep, Zipf, Ckpt, WarmP);

  if (Ckpt) {
    image::Diagnostic D;
    if (Builder.writeFile(CkptPath, D))
      std::printf("\ncheckpoint: wrote warm image (%zu policy blobs) to %s\n",
                  Builder.blobCount(), CkptPath.c_str());
    else
      std::fprintf(stderr, "checkpoint: %s\n", D.render().c_str());
  }

  return Json.write(Env.JsonPath) ? 0 : 1;
}

//===- bench/kv_service.cpp - Open-loop sharded KV service bench ----------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// The service-shaped evaluation the figure benchmarks cannot provide: a
/// sharded KV store (kv/ShardedKvStore.h) guarded by each policy of the
/// lock portfolio, driven by an *open-loop* load generator — Poisson
/// arrivals at a configured offered rate, Zipfian key popularity, a mixed
/// GET/PUT/DELETE/SCAN op stream, optional burst phases — with per-thread
/// log-bucketed latency histograms. Each request is charged from its
/// scheduled arrival time, so queueing delay shows up in the percentiles
/// instead of silently throttling the arrival rate the way closed-loop
/// harnesses do (the BRAVO paper's argument for tail-latency evaluation).
///
/// Per policy the bench steps the offered load geometrically until p99
/// blows past the SLO (or completions fall behind arrivals) and reports
/// the last sustainable rate as the saturation throughput.
///
///   kv_service                         # full sweep, all five policies
///   kv_service --quick                 # CI smoke (tiny rates/windows)
///   kv_service --policies=Lock,SOLERO  # subset
///   kv_service --rate=30000 --slo-us=2000 --burst-factor=4
///   kv_service --json=BENCH_kv.json    # machine-readable rows
///   kv_service --checkpoint=kv.img     # write adaptive lock state after
///                                      # the sweeps (warm image, §16)
///   kv_service --restore=kv.img        # rehydrate each policy's per-shard
///                                      # lock state before its sweep
///
/// `--chaos` switches to the resilience soak (DESIGN.md §17): a fixed-rate
/// open-loop run under a seeded ChaosDirector fault campaign, with
/// deadline cancellation, token-bucket GET retries, priority load
/// shedding, the stuck-speculation watchdog, and the ShardedKv torture
/// oracles (exclusion, pair conservation, churn bitmap, leak) asserted at
/// the end. Exit code is nonzero on any oracle violation.
///
///   kv_service --chaos --seed=7 --duration-ms=5000 --json=BENCH_chaos.json
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "image/Image.h"
#include "image/Resources.h"
#include "kv/ShardedKvStore.h"
#include "resilience/Deadline.h"
#include "resilience/RetryBudget.h"
#include "resilience/ShedController.h"
#include "resilience/Watchdog.h"
#include "stress/ChaosDirector.h"
#include "support/Backoff.h"
#include "support/Distributions.h"
#include "support/LatencyHistogram.h"
#include "support/NumaTopology.h"
#include "support/Stats.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

using namespace solero;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Spins/sleeps until \p TargetNs. Coarse sleep for long gaps, yield for
/// medium ones (the 1-vCPU container needs other workers to run), relax
/// for the final stretch.
void waitUntil(uint64_t TargetNs) {
  for (;;) {
    uint64_t Now = nowNs();
    if (Now >= TargetNs)
      return;
    uint64_t Gap = TargetNs - Now;
    if (Gap > 300000)
      std::this_thread::sleep_for(std::chrono::nanoseconds(Gap - 150000));
    else if (Gap > 10000)
      osYield();
    else
      cpuRelax();
  }
}

struct KvBenchParams {
  unsigned Shards = 16;
  uint64_t Keys = 1 << 16;
  double Zipf = 0.99;
  unsigned PutPct = 3;
  unsigned DelPct = 1;
  unsigned ScanPct = 1; // GET is the remainder
  int Threads = 4;
  uint64_t DurationNs = 400ull * 1000 * 1000;
  bool Pin = true;
  uint64_t Seed = 0x5eed;
  double BurstFactor = 1.0; // >1 enables burst phases
  uint64_t BurstPeriodNs = 200ull * 1000 * 1000;
  uint64_t BurstLenNs = 50ull * 1000 * 1000;
};

struct LoadResult {
  BenchResult Bench; ///< Ops = completed, OpsPerSec = achieved
  double OfferedPerSec = 0;
  uint64_t P50Ns = 0, P99Ns = 0, P999Ns = 0, MaxNs = 0;
  double HitRatio = 0;
  uint64_t SkippedArrivals = 0; ///< shed by the bounded catch-up burst
};

/// One open-loop measurement of \p Store at \p OfferedPerSec total.
template <typename Store>
LoadResult runOpenLoop(Store &Store_, const KvBenchParams &P,
                       const ZipfianSampler &Zipf, double OfferedPerSec) {
  const int Threads = P.Threads;
  const PoissonProcess Arrivals(OfferedPerSec / Threads);
  std::vector<LatencyHistogram> Hists(static_cast<std::size_t>(Threads));
  std::vector<uint64_t> Completed(static_cast<std::size_t>(Threads), 0);
  std::vector<uint64_t> Hits(static_cast<std::size_t>(Threads), 0);
  std::vector<uint64_t> Gets(static_cast<std::size_t>(Threads), 0);
  std::vector<uint64_t> Skips(static_cast<std::size_t>(Threads), 0);
  SpinBarrier Start(static_cast<uint32_t>(Threads) + 1);
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();

  std::vector<std::thread> Workers;
  Workers.reserve(static_cast<std::size_t>(Threads));
  std::atomic<uint64_t> StartNs{0};
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      if (P.Pin)
        NumaTopology::pinCurrentThreadToCpu(static_cast<unsigned>(T) %
                                            NumaTopology::cpuCount());
      Xoshiro256StarStar Rng(P.Seed * 0x9e3779b97f4a7c15ULL +
                             static_cast<uint64_t>(T) + 1);
      LatencyHistogram &Hist = Hists[static_cast<std::size_t>(T)];
      Start.arriveAndWait();
      const uint64_t Begin = StartNs.load(std::memory_order_acquire);
      const uint64_t End = Begin + P.DurationNs;
      ArrivalSchedule Sched(Arrivals, Begin, Rng);
      uint64_t Done = 0, Hit = 0, Get = 0;
      for (;;) {
        // Bounded catch-up: a stalled worker issues at most the last
        // CatchUpBurstMax arrivals late and *counts* the rest as skipped
        // (never silently re-anchors the schedule).
        Sched.boundBacklog(nowNs(), Rng);
        const uint64_t Next = Sched.nextArrivalNs();
        if (Next >= End)
          break;
        if (nowNs() < Next)
          waitUntil(Next);
        // Dispatch one request. Latency is charged from the scheduled
        // arrival: a thread running behind pays its backlog in the tail.
        unsigned Roll = static_cast<unsigned>(Rng.nextBounded(100));
        if (Roll < P.PutPct) {
          Store_.put(Zipf.nextScrambled(Rng), Rng.next() >> 1);
        } else if (Roll < P.PutPct + P.DelPct) {
          Store_.remove(Zipf.nextScrambled(Rng));
        } else if (Roll < P.PutPct + P.DelPct + P.ScanPct) {
          // The scan reads atomics, so it cannot be optimized away.
          auto St = Store_.scanShard(static_cast<unsigned>(
              Rng.nextBounded(Store_.shardCount())));
          (void)St;
        } else {
          ++Get;
          if (Store_.get(Zipf.nextScrambled(Rng)).has_value())
            ++Hit;
        }
        uint64_t DoneAt = nowNs();
        Hist.record(DoneAt > Next ? DoneAt - Next : 1);
        ++Done;
        // Burst phases compress the arrival gaps by BurstFactor.
        bool Burst = P.BurstFactor > 1.0 &&
                     (Next - Begin) % P.BurstPeriodNs < P.BurstLenNs;
        Sched.advance(Rng, Burst ? P.BurstFactor : 1.0);
      }
      Completed[static_cast<std::size_t>(T)] = Done;
      Hits[static_cast<std::size_t>(T)] = Hit;
      Gets[static_cast<std::size_t>(T)] = Get;
      Skips[static_cast<std::size_t>(T)] = Sched.skippedArrivals();
    });

  StartNs.store(nowNs(), std::memory_order_release);
  Start.arriveAndWait();
  for (auto &W : Workers)
    W.join();
  ProtocolCounters After = ThreadRegistry::instance().totalCounters();

  LoadResult R;
  R.OfferedPerSec = OfferedPerSec;
  LatencyHistogram Merged;
  uint64_t TotalGets = 0, TotalHits = 0;
  for (int T = 0; T < Threads; ++T) {
    Merged.mergeFrom(Hists[static_cast<std::size_t>(T)]);
    R.Bench.Ops += Completed[static_cast<std::size_t>(T)];
    TotalHits += Hits[static_cast<std::size_t>(T)];
    TotalGets += Gets[static_cast<std::size_t>(T)];
    R.SkippedArrivals += Skips[static_cast<std::size_t>(T)];
  }
  R.Bench.Seconds = static_cast<double>(P.DurationNs) * 1e-9;
  R.Bench.OpsPerSec = R.Bench.Seconds > 0
                          ? static_cast<double>(R.Bench.Ops) / R.Bench.Seconds
                          : 0.0; // --duration-ms=0 must not emit inf/nan
  R.Bench.Delta = countersDelta(Before, After);
  R.P50Ns = Merged.quantile(0.50);
  R.P99Ns = Merged.quantile(0.99);
  R.P999Ns = Merged.quantile(0.999);
  R.MaxNs = Merged.max();
  R.HitRatio = safeRatio(TotalHits, TotalGets);
  return R;
}

struct SweepParams {
  double BaseRate = 30000;
  double Factor = 1.6;
  int Steps = 7;
  uint64_t SloNs = 2000ull * 1000; // p99 SLO
};

double usOf(uint64_t Ns) { return static_cast<double>(Ns) * 1e-3; }

/// Runs one policy: prefill once, then step the offered load until the
/// SLO breaks. Emits one JSON row per step plus a saturation summary row.
template <typename Policy>
void runPolicy(BenchEnv &Env, JsonReport &Json, const KvBenchParams &P,
               const SweepParams &Sweep, const ZipfianSampler &Zipf,
               image::ImageBuilder *Ckpt, const image::LoadedImage *Warm) {
  kv::KvStoreConfig C;
  C.Shards = P.Shards;
  C.InitialShardCapacity = 64;
  kv::ShardedKvStore<Policy> Store(*Env.Ctx, C);
  SplitMix64 Fill(P.Seed);
  for (uint64_t K = 0; K < P.Keys; ++K)
    Store.put(K, Fill.next() >> 1);

  std::printf("\n--- %s ---\n", Policy::name());
  // Rehydrate the per-shard adaptive lock state (SOLERO controllers,
  // BRAVO bias) from the warm image before the sweep; a missing or
  // mismatched blob just means this policy sweeps cold.
  const std::string BlobName = std::string("kv.") + Policy::name();
  if (Warm && Warm->loaded()) {
    const std::vector<uint8_t> *Blob = Warm->blob(BlobName);
    bool Restored = false;
    if (Blob) {
      image::ImageReader R(*Blob);
      Restored = image::restoreKvLockState(R, Store);
    }
    std::printf("warm image: %s %s\n", BlobName.c_str(),
                Restored ? "restored (per-shard lock state rehydrated)"
                         : (Blob ? "rejected; sweeping cold"
                                 : "not present; sweeping cold"));
  }
  TablePrinter T({"offered/s", "achieved/s", "p50 us", "p99 us", "p999 us",
                  "max us", "rmw/op", "hit%", "verdict"});
  double Rate = Sweep.BaseRate;
  LoadResult Sat;
  bool Saturated = false;
  for (int Step = 0; Step < Sweep.Steps; ++Step) {
    LoadResult R = runOpenLoop(Store, P, Zipf, Rate);
    bool MetSlo = R.P99Ns <= Sweep.SloNs &&
                  R.Bench.OpsPerSec >= 0.9 * R.OfferedPerSec;
    T.addRow({TablePrinter::num(R.OfferedPerSec, 0),
              TablePrinter::num(R.Bench.OpsPerSec, 0),
              TablePrinter::num(usOf(R.P50Ns), 1),
              TablePrinter::num(usOf(R.P99Ns), 1),
              TablePrinter::num(usOf(R.P999Ns), 1),
              TablePrinter::num(usOf(R.MaxNs), 1),
              TablePrinter::num(R.Bench.rmwPerOp(), 2),
              TablePrinter::percent(R.HitRatio, 1),
              MetSlo ? "ok" : "SATURATED"});
    Json.add("sweep", Policy::name(), P.Threads, R.Bench,
             {{"offered_per_sec", R.OfferedPerSec},
              {"p50_us", usOf(R.P50Ns)},
              {"p99_us", usOf(R.P99Ns)},
              {"p999_us", usOf(R.P999Ns)},
              {"max_us", usOf(R.MaxNs)},
              {"hit_ratio", R.HitRatio},
              {"skipped_arrivals", static_cast<double>(R.SkippedArrivals)}});
    if (!MetSlo) {
      Saturated = true;
      break;
    }
    Sat = R;
    Rate *= Sweep.Factor;
  }
  T.print();
  double SatRate = Sat.Bench.OpsPerSec;
  std::printf("%s saturation: %s ops/s within p99 SLO of %s us%s "
              "(GET-path rmw/op %.2f, %llu shard resizes)\n",
              Policy::name(), TablePrinter::num(SatRate, 0).c_str(),
              TablePrinter::num(usOf(Sweep.SloNs), 0).c_str(),
              Saturated ? "" : " [sweep exhausted, raise --sweep-steps]",
              Sat.Bench.rmwPerOp(),
              static_cast<unsigned long long>(Store.totalResizes()));
  Json.add("saturation", Policy::name(), P.Threads, Sat.Bench,
           {{"sat_ops_per_sec", SatRate},
            {"slo_us", usOf(Sweep.SloNs)},
            {"p99_us", usOf(Sat.P99Ns)}});
  // All workers are joined (quiescent), so the controllers can be
  // snapshotted into the warm image for the next run.
  if (Ckpt)
    Ckpt->addBlob(BlobName, image::snapshotKvLockState(Store));
}

//===----------------------------------------------------------------------===//
// Chaos soak (--chaos): overload resilience under a seeded fault campaign
//===----------------------------------------------------------------------===//

struct ChaosSoakParams {
  double RatePerSec = 15000;           ///< fixed offered rate (no sweep)
  uint64_t DeadlineNs = 20'000'000;    ///< per-request budget from arrival
  uint64_t DegradedSloNs = 60'000'000; ///< admitted-p99 bound under faults
  uint64_t WindowNs = 50'000'000;      ///< shed monitor window
  double RetryPerSec = 200;            ///< per-worker retry token rate
  double RetryBurst = 20;
  uint64_t CatchUpBurstMax = 512; ///< arrival backlog bound (mean gaps)
  stress::ChaosConfig Chaos;
  resilience::ShedConfig Shed;
  resilience::WatchdogConfig Wd;
};

// Chaos key namespaces, disjoint from the Zipfian prefill range and from
// TortureRunner's 1<<48 pair base so oracles never collide.
constexpr uint64_t ChaosPairKeyBase = 1ull << 47;
constexpr uint64_t ChaosChurnKeyBase = 1ull << 40;
constexpr unsigned ChaosChurnPerThread = 256;

uint64_t chaosPairKeyA(unsigned S) { return ChaosPairKeyBase | (2ull * S); }
uint64_t chaosPairKeyB(unsigned S) {
  return ChaosPairKeyBase | (2ull * S + 1);
}
uint64_t chaosChurnKey(int T, unsigned I) {
  return ChaosChurnKeyBase | (static_cast<uint64_t>(T) << 20) | I;
}

struct ChaosWorkerResult {
  uint64_t Done = 0; ///< admitted, in-deadline, dispatched requests
  uint64_t ShedCount = 0;
  uint64_t Timeouts = 0; ///< cancelled before touching a shard
  uint64_t Retries = 0;  ///< granted + scheduled retries
  uint64_t RetryDenied = 0;
  uint64_t RetryDropped = 0;
  uint64_t Violations = 0; ///< inline oracle hits (exclusion, pair read)
  uint64_t Skipped = 0;    ///< arrivals shed by the bounded catch-up
  std::vector<uint64_t> PairBumps; ///< per-shard pair writes by this worker
  std::vector<uint64_t> ChurnBits; ///< live-key bitmap (owner-exclusive)
};

/// One fixed-rate soak of \p Policy under the seeded fault campaign.
/// Returns the number of oracle violations (0 is the acceptance bar).
template <typename Policy>
uint64_t runChaosSoak(BenchEnv &Env, JsonReport &Json, const KvBenchParams &P,
                      const ZipfianSampler &Zipf, const ChaosSoakParams &CS) {
  kv::KvStoreConfig C;
  C.Shards = P.Shards;
  C.InitialShardCapacity = 64;
  kv::ShardedKvStore<Policy> Store(*Env.Ctx, C);
  SplitMix64 Fill(P.Seed);
  for (uint64_t K = 0; K < P.Keys; ++K)
    Store.put(K, Fill.next() >> 1);
  const unsigned ShardCount = Store.shardCount();
  // Seed the per-shard invariant pair A==B==0 and the exclusion tokens.
  for (unsigned S = 0; S < ShardCount; ++S)
    Store.writeShard(S, [&](auto &Tab) {
      Tab.put(chaosPairKeyA(S), 0);
      Tab.put(chaosPairKeyB(S), 0);
    });
  std::unique_ptr<std::atomic<uint32_t>[]> PairToken(
      new std::atomic<uint32_t>[ShardCount]);
  for (unsigned S = 0; S < ShardCount; ++S)
    PairToken[S].store(0, std::memory_order_relaxed);

  // The watchdog guards every shard's speculation state for the policies
  // that have any (the others still get the stall detector).
  resilience::SpeculationWatchdog Wd(CS.Wd);
  for (unsigned S = 0; S < ShardCount; ++S) {
    if constexpr (std::is_same_v<Policy, SoleroPolicy> ||
                  std::is_same_v<Policy, AdaptiveSoleroPolicy>)
      Wd.watchController(&Store.shardPolicy(S).protocol().controller());
    else if constexpr (std::is_same_v<Policy, BravoRwPolicy>)
      Wd.watchBravo(&Store.shardPolicy(S).protocol());
  }

  stress::ChaosConfig CC = CS.Chaos;
  CC.Shards = ShardCount;
  CC.DurationNs = P.DurationNs;
  stress::ChaosDirector Director(CC);
  std::atomic<uint64_t> CorruptAttempts{0}, CorruptRejected{0};
  Director.setCorruptRestoreHook([&] {
    // A corrupted warm-image restore attempted while traffic runs: the
    // image layer must reject it (sticky-failure reader -> false) and
    // leave the live lock state untouched. A crash here fails the soak.
    SplitMix64 G(P.Seed ^ (CorruptAttempts.load(std::memory_order_relaxed) +
                           0xBADC0DEull));
    std::vector<uint8_t> Garbage(256);
    for (auto &B : Garbage)
      B = static_cast<uint8_t>(G.next());
    image::ImageReader R(Garbage);
    CorruptAttempts.fetch_add(1, std::memory_order_relaxed);
    if (!image::restoreKvLockState(R, Store))
      CorruptRejected.fetch_add(1, std::memory_order_relaxed);
  });

  std::printf("\n--- %s (chaos soak) ---\n%s", Policy::name(),
              Director.scheduleString().c_str());

  const int Threads = P.Threads;
  resilience::ShedController Shed(CS.Shed);
  // Double-buffered per-thread window histograms: workers record into the
  // selected bank, the monitor flips the selector and reads/resets the
  // retired bank (LatencyHistogram's relaxed atomics make the brief
  // overlap a counting blur, not a race).
  std::vector<LatencyHistogram> Banks[2]{
      std::vector<LatencyHistogram>(static_cast<std::size_t>(Threads)),
      std::vector<LatencyHistogram>(static_cast<std::size_t>(Threads))};
  std::atomic<uint32_t> BankSel{0};
  std::vector<LatencyHistogram> Admitted(static_cast<std::size_t>(Threads));
  std::unique_ptr<std::atomic<uint64_t>[]> Lag(
      new std::atomic<uint64_t>[static_cast<std::size_t>(Threads)]);
  for (int T = 0; T < Threads; ++T)
    Lag[T].store(0, std::memory_order_relaxed);

  std::atomic<bool> MonitorRun{true};
  std::thread Monitor([&] {
    while (MonitorRun.load(std::memory_order_acquire)) {
      uint64_t WindowEnd = nowNs() + CS.WindowNs;
      while (MonitorRun.load(std::memory_order_acquire) &&
             nowNs() < WindowEnd)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      uint32_t Old = BankSel.load(std::memory_order_relaxed);
      BankSel.store(Old ^ 1, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      LatencyHistogram Win;
      for (auto &H : Banks[Old]) {
        Win.mergeFrom(H);
        H.reset();
      }
      uint64_t Backlog = 0;
      for (int T = 0; T < Threads; ++T) {
        uint64_t L = Lag[T].load(std::memory_order_relaxed);
        if (L > Backlog)
          Backlog = L;
      }
      Shed.onWindow(Win.count() ? Win.quantile(0.99) : 0, Backlog);
    }
  });

  const PoissonProcess Arrivals(CS.RatePerSec / Threads);
  std::vector<ChaosWorkerResult> Results(static_cast<std::size_t>(Threads));
  SpinBarrier Start(static_cast<uint32_t>(Threads) + 1);
  std::atomic<uint64_t> StartNs{0};
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();

  std::vector<std::thread> Workers;
  Workers.reserve(static_cast<std::size_t>(Threads));
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      if (P.Pin)
        NumaTopology::pinCurrentThreadToCpu(static_cast<unsigned>(T) %
                                            NumaTopology::cpuCount());
      const uint32_t Slot = ThreadRegistry::current().slot();
      Xoshiro256StarStar Rng(P.Seed * 0x9e3779b97f4a7c15ULL +
                             static_cast<uint64_t>(T) + 101);
      ChaosWorkerResult &R = Results[static_cast<std::size_t>(T)];
      R.PairBumps.assign(ShardCount, 0);
      R.ChurnBits.assign((ChaosChurnPerThread + 63) / 64, 0);
      resilience::RetryBudget Budget(CS.RetryPerSec, CS.RetryBurst, nowNs());
      // The jittered sequence is drawn in "spins" and spent here as
      // microseconds of retry delay: same bounded-exponential shape, a
      // unit the retry path can actually wait.
      ExpBackoff Backoff(64, 8192, JitterMode::FullJitter,
                         P.Seed + static_cast<uint64_t>(T));
      struct RetryEntry {
        uint64_t Key;
        uint64_t AtNs;
        resilience::Deadline D;
      };
      std::deque<RetryEntry> RetryQ;
      constexpr std::size_t RetryQueueCap = 64;

      // The deadline clock sees the injected skew; the latency accounting
      // (charged from scheduled arrivals on the real clock) does not.
      auto SkewedNow = [&] {
        int64_t Skew = Director.clockSkewNs();
        uint64_t Now = nowNs();
        if (Skew >= 0)
          return Now + static_cast<uint64_t>(Skew);
        uint64_t Back = static_cast<uint64_t>(-Skew);
        return Now > Back ? Now - Back : 0;
      };

      auto RecordAdmitted = [&](uint64_t ChargeFromNs) {
        uint64_t DoneAt = nowNs();
        uint64_t Lat = DoneAt > ChargeFromNs ? DoneAt - ChargeFromNs : 1;
        Admitted[static_cast<std::size_t>(T)].record(Lat);
        Banks[BankSel.load(std::memory_order_acquire)]
             [static_cast<std::size_t>(T)]
                 .record(Lat);
        ++R.Done;
      };

      // GET against \p Key as one watched, slow-shard-delayed dispatch.
      auto DispatchGet = [&](uint64_t Key, uint64_t ChargeFromNs) {
        unsigned S = Store.shardOf(Key);
        Wd.opBegin(Slot, nowNs());
        uint64_t Delay = Director.shardDelayNs(S);
        if (Delay)
          waitUntil(nowNs() + Delay);
        (void)Store.get(Key);
        Wd.opEnd(Slot);
        RecordAdmitted(ChargeFromNs);
      };

      auto DrainRetries = [&] {
        while (!RetryQ.empty() && RetryQ.front().AtNs <= nowNs()) {
          RetryEntry E = RetryQ.front();
          RetryQ.pop_front();
          if (E.D.expired(SkewedNow())) {
            ++R.Timeouts; // the retry itself missed its fresh deadline
            continue;
          }
          DispatchGet(E.Key, E.AtNs);
          Backoff.reset(); // a served retry resets the backoff run
        }
      };

      Start.arriveAndWait();
      const uint64_t Begin = StartNs.load(std::memory_order_acquire);
      const uint64_t End = Begin + P.DurationNs;
      ArrivalSchedule Sched(Arrivals, Begin, Rng, CS.CatchUpBurstMax);
      for (;;) {
        DrainRetries();
        Sched.boundBacklog(nowNs(), Rng);
        const uint64_t Next = Sched.nextArrivalNs();
        if (Next >= End)
          break;
        uint64_t Now = nowNs();
        Lag[T].store(Now > Next ? Now - Next : 0,
                     std::memory_order_relaxed);
        if (Now < Next)
          waitUntil(Next);
        Sched.advance(Rng);

        // Draw the op: mutations (pair bump + churn) 8%, scans 4%,
        // point GETs the rest.
        unsigned Roll = static_cast<unsigned>(Rng.nextBounded(100));
        resilience::OpPriority Pri =
            Roll < 8 ? resilience::OpPriority::Mutate
                     : (Roll < 12 ? resilience::OpPriority::Scan
                                  : resilience::OpPriority::Get);
        if (!Shed.admit(Pri)) {
          ++R.ShedCount;
          continue;
        }
        resilience::Deadline D =
            resilience::Deadline::fromScheduled(Next, CS.DeadlineNs);
        if (D.expired(SkewedNow())) {
          // Cancelled before touching a shard, so a retry can never
          // double-apply. Only idempotent GETs are worth re-offering,
          // and only within the token budget (no retry storms).
          ++R.Timeouts;
          if (Pri == resilience::OpPriority::Get) {
            if (RetryQ.size() >= RetryQueueCap)
              ++R.RetryDropped;
            else if (!Budget.tryAcquire(nowNs()))
              ++R.RetryDenied;
            else {
              uint64_t WaitNs =
                  static_cast<uint64_t>(Backoff.nextSpins()) * 1000;
              uint64_t At = nowNs() + WaitNs;
              RetryQ.push_back(
                  {Zipf.nextScrambled(Rng), At,
                   resilience::Deadline::fromScheduled(At, CS.DeadlineNs)});
              ++R.Retries;
            }
          }
          continue;
        }

        if (Roll < 2) {
          // Pair bump: exclusive-writer oracle. The token would be seen
          // nonzero by a second writer only if mutual exclusion broke.
          unsigned S = static_cast<unsigned>(Rng.nextBounded(ShardCount));
          Wd.opBegin(Slot, nowNs());
          uint64_t Delay = Director.shardDelayNs(S);
          if (Delay)
            waitUntil(nowNs() + Delay);
          Store.writeShard(S, [&](auto &Tab) {
            if (PairToken[S].exchange(1, std::memory_order_acq_rel) != 0)
              ++R.Violations;
            auto A = Tab.get(chaosPairKeyA(S));
            uint64_t V = (A.Found ? A.Value : 0) + 1;
            Tab.put(chaosPairKeyA(S), V);
            Tab.put(chaosPairKeyB(S), V);
            PairToken[S].store(0, std::memory_order_release);
          });
          ++R.PairBumps[S];
          Wd.opEnd(Slot);
          RecordAdmitted(Next);
        } else if (Roll < 6) {
          // Churn PUT on an owner-exclusive key; bitmap is the oracle.
          unsigned I =
              static_cast<unsigned>(Rng.nextBounded(ChaosChurnPerThread));
          uint64_t Key = chaosChurnKey(T, I);
          Wd.opBegin(Slot, nowNs());
          uint64_t Delay = Director.shardDelayNs(Store.shardOf(Key));
          if (Delay)
            waitUntil(nowNs() + Delay);
          Store.put(Key, Rng.next() >> 1);
          Wd.opEnd(Slot);
          R.ChurnBits[I / 64] |= 1ull << (I % 64);
          RecordAdmitted(Next);
        } else if (Roll < 8) {
          // Churn DELETE.
          unsigned I =
              static_cast<unsigned>(Rng.nextBounded(ChaosChurnPerThread));
          uint64_t Key = chaosChurnKey(T, I);
          Wd.opBegin(Slot, nowNs());
          uint64_t Delay = Director.shardDelayNs(Store.shardOf(Key));
          if (Delay)
            waitUntil(nowNs() + Delay);
          Store.remove(Key);
          Wd.opEnd(Slot);
          R.ChurnBits[I / 64] &= ~(1ull << (I % 64));
          RecordAdmitted(Next);
        } else if (Roll < 12) {
          // Scan + pair-read oracle: one read section must see A == B.
          // The verdict is the closure's return value so policies that
          // re-execute failed read attempts (SeqLock) stay side-effect
          // free until validation succeeds.
          unsigned S = static_cast<unsigned>(Rng.nextBounded(ShardCount));
          Wd.opBegin(Slot, nowNs());
          uint64_t Delay = Director.shardDelayNs(S);
          if (Delay)
            waitUntil(nowNs() + Delay);
          uint64_t Bad =
              Store.readShard(S, [&](const auto &Tab, auto &G) -> uint64_t {
                (void)G;
                auto A = Tab.get(chaosPairKeyA(S));
                auto B = Tab.get(chaosPairKeyB(S));
                uint64_t Torn =
                    (A.Found && B.Found && A.Value == B.Value) ? 0 : 1;
                return Torn + (Tab.scan().LiveEntries ? 0 : 0);
              });
          Wd.opEnd(Slot);
          R.Violations += Bad;
          RecordAdmitted(Next);
        } else {
          DispatchGet(Zipf.nextScrambled(Rng), Next);
        }
      }
      // Past End: pending retries are abandoned (counted as dropped).
      R.RetryDropped += RetryQ.size();
      R.Skipped = Sched.skippedArrivals();
      Lag[T].store(0, std::memory_order_relaxed);
    });

  Wd.start();
  uint64_t Begin = nowNs();
  StartNs.store(Begin, std::memory_order_release);
  Director.start(Begin);
  Start.arriveAndWait();
  for (auto &W : Workers)
    W.join();
  Director.stop();
  MonitorRun.store(false, std::memory_order_release);
  Monitor.join();
  Wd.stop();
  ProtocolCounters After = ThreadRegistry::instance().totalCounters();

  // --- End-of-run oracles (quiescent, so every check is exact) -----------
  uint64_t Violations = 0;
  auto Violation = [&](const char *Fmt, unsigned long long A,
                       unsigned long long B) {
    std::fprintf(stderr, "chaos ORACLE VIOLATION: ");
    std::fprintf(stderr, Fmt, A, B);
    std::fprintf(stderr, "\n");
    ++Violations;
  };
  for (const auto &R : Results)
    Violations += R.Violations;
  std::vector<uint64_t> Bumps(ShardCount, 0);
  for (const auto &R : Results)
    for (unsigned S = 0; S < ShardCount; ++S)
      Bumps[S] += R.PairBumps[S];
  for (unsigned S = 0; S < ShardCount; ++S) {
    if (PairToken[S].load(std::memory_order_relaxed) != 0)
      Violation("shard %llu exclusion token still held (%llu)", S,
                PairToken[S].load(std::memory_order_relaxed));
    uint64_t BadPair = Store.readShard(
        S, [&](const auto &Tab, auto &G) -> uint64_t {
          (void)G;
          auto A = Tab.get(chaosPairKeyA(S));
          auto B = Tab.get(chaosPairKeyB(S));
          if (!A.Found || !B.Found || A.Value != B.Value)
            return 1;
          return A.Value == Bumps[S] ? 0 : 2;
        });
    if (BadPair == 1)
      Violation("shard %llu pair keys torn or missing (code %llu)", S,
                BadPair);
    else if (BadPair == 2)
      Violation("shard %llu pair count != %llu writes (lost update)", S,
                Bumps[S]);
  }
  uint64_t ChurnLive = 0;
  for (int T = 0; T < Threads; ++T) {
    const auto &R = Results[static_cast<std::size_t>(T)];
    for (unsigned I = 0; I < ChaosChurnPerThread; ++I) {
      bool Bit = (R.ChurnBits[I / 64] >> (I % 64)) & 1;
      ChurnLive += Bit ? 1 : 0;
      bool Present = Store.get(chaosChurnKey(T, I)).has_value();
      if (Bit != Present)
        Violation("churn key (worker %llu, idx %llu) bitmap mismatch",
                  static_cast<unsigned long long>(T), I);
    }
  }
  uint64_t Expected = P.Keys + 2ull * ShardCount + ChurnLive;
  if (Store.size() != Expected)
    Violation("size conservation: store has %llu entries, expected %llu",
              Store.size(), Expected);
  if (!Store.quiesce())
    Violation("leak oracle: pool live cells != live entries (%llu/%llu)", 0,
              0);

  // --- Report ------------------------------------------------------------
  ChaosWorkerResult Sum;
  LatencyHistogram All;
  for (int T = 0; T < Threads; ++T) {
    const auto &R = Results[static_cast<std::size_t>(T)];
    Sum.Done += R.Done;
    Sum.ShedCount += R.ShedCount;
    Sum.Timeouts += R.Timeouts;
    Sum.Retries += R.Retries;
    Sum.RetryDenied += R.RetryDenied;
    Sum.RetryDropped += R.RetryDropped;
    Sum.Skipped += R.Skipped;
    All.mergeFrom(Admitted[static_cast<std::size_t>(T)]);
  }
  resilience::SpeculationWatchdog::Stats WS = Wd.stats();
  uint64_t P99 = All.quantile(0.99);
  bool SloMet = P99 <= CS.DegradedSloNs;
  for (const auto &Diag : Wd.diagnostics())
    std::printf("%s\n", Diag.render().c_str());
  std::printf(
      "admitted %llu (p50 %.1f us, p99 %.1f us, max %.1f us) | shed %llu "
      "timeout %llu retry %llu (denied %llu dropped %llu) skipped %llu\n"
      "faults applied %llu | corrupt restores rejected %llu/%llu | shed "
      "level %u (ups %llu downs %llu, %llu/%llu degraded windows)\n"
      "watchdog: polls %llu stalls %llu storms %llu rev-storms %llu -> "
      "forced disables %llu, forced revocations %llu\n"
      "degraded-mode SLO %.0f us: %s | oracle violations: %llu\n",
      static_cast<unsigned long long>(Sum.Done), usOf(All.quantile(0.50)),
      usOf(P99), usOf(All.max()),
      static_cast<unsigned long long>(Sum.ShedCount),
      static_cast<unsigned long long>(Sum.Timeouts),
      static_cast<unsigned long long>(Sum.Retries),
      static_cast<unsigned long long>(Sum.RetryDenied),
      static_cast<unsigned long long>(Sum.RetryDropped),
      static_cast<unsigned long long>(Sum.Skipped),
      static_cast<unsigned long long>(Director.faultsApplied()),
      static_cast<unsigned long long>(
          CorruptRejected.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          CorruptAttempts.load(std::memory_order_relaxed)),
      Shed.level(), static_cast<unsigned long long>(Shed.levelUps()),
      static_cast<unsigned long long>(Shed.levelDowns()),
      static_cast<unsigned long long>(Shed.degradedWindows()),
      static_cast<unsigned long long>(Shed.windows()),
      static_cast<unsigned long long>(WS.Polls),
      static_cast<unsigned long long>(WS.StallsDetected),
      static_cast<unsigned long long>(WS.FailureStorms),
      static_cast<unsigned long long>(WS.RevocationStorms),
      static_cast<unsigned long long>(WS.ForcedDisables),
      static_cast<unsigned long long>(WS.ForcedRevocations),
      usOf(CS.DegradedSloNs), SloMet ? "met" : "MISSED",
      static_cast<unsigned long long>(Violations));
  if (CorruptRejected.load(std::memory_order_relaxed) !=
      CorruptAttempts.load(std::memory_order_relaxed))
    Violation("corrupt warm-image restore was accepted (%llu of %llu)",
              CorruptAttempts.load(std::memory_order_relaxed) -
                  CorruptRejected.load(std::memory_order_relaxed),
              CorruptAttempts.load(std::memory_order_relaxed));

  BenchResult BR;
  BR.Ops = Sum.Done;
  BR.Seconds = static_cast<double>(P.DurationNs) * 1e-9;
  BR.OpsPerSec =
      BR.Seconds > 0 ? static_cast<double>(BR.Ops) / BR.Seconds : 0.0;
  BR.Delta = countersDelta(Before, After);
  Json.add("chaos", Policy::name(), P.Threads, BR,
           {{"offered_per_sec", CS.RatePerSec},
            {"admitted_p50_us", usOf(All.quantile(0.50))},
            {"admitted_p99_us", usOf(P99)},
            {"admitted_max_us", usOf(All.max())},
            {"deadline_us", usOf(CS.DeadlineNs)},
            {"degraded_slo_us", usOf(CS.DegradedSloNs)},
            {"degraded_slo_met", SloMet ? 1.0 : 0.0},
            {"shed", static_cast<double>(Sum.ShedCount)},
            {"timeouts", static_cast<double>(Sum.Timeouts)},
            {"retries", static_cast<double>(Sum.Retries)},
            {"retry_denied", static_cast<double>(Sum.RetryDenied)},
            {"retry_dropped", static_cast<double>(Sum.RetryDropped)},
            {"skipped_arrivals", static_cast<double>(Sum.Skipped)},
            {"shed_level_ups", static_cast<double>(Shed.levelUps())},
            {"shed_level_downs", static_cast<double>(Shed.levelDowns())},
            {"degraded_windows", static_cast<double>(Shed.degradedWindows())},
            {"faults_applied", static_cast<double>(Director.faultsApplied())},
            {"corrupt_restores_rejected",
             static_cast<double>(
                 CorruptRejected.load(std::memory_order_relaxed))},
            {"wd_stalls", static_cast<double>(WS.StallsDetected)},
            {"wd_failure_storms", static_cast<double>(WS.FailureStorms)},
            {"wd_revocation_storms",
             static_cast<double>(WS.RevocationStorms)},
            {"wd_forced_disables", static_cast<double>(WS.ForcedDisables)},
            {"wd_forced_revocations",
             static_cast<double>(WS.ForcedRevocations)},
            {"oracle_violations", static_cast<double>(Violations)}});
  return Violations;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner(
      "KV service", "sharded store under open-loop Poisson/Zipfian load",
      "beyond the paper: service-style tail-latency evaluation (ROADMAP "
      "item 1);\nread-side elision/bias should hold p99 and saturation "
      "above the plain Lock.");

  KvBenchParams P;
  P.Shards = static_cast<unsigned>(Env.Args.getInt("shards", 16));
  P.Keys = static_cast<uint64_t>(
      Env.Args.getInt("keys", Env.Quick ? 4096 : 1 << 16));
  P.Zipf = Env.Args.getDouble("zipf", 0.99);
  P.PutPct = static_cast<unsigned>(Env.Args.getInt("put", 3));
  P.DelPct = static_cast<unsigned>(Env.Args.getInt("del", 1));
  P.ScanPct = static_cast<unsigned>(Env.Args.getInt("scan", 1));
  P.Threads = static_cast<int>(Env.Args.getInt("threads", Env.Quick ? 2 : 4));
  P.DurationNs = static_cast<uint64_t>(Env.Args.getInt(
                     "duration-ms", Env.Quick ? 60 : 400)) *
                 1000000ull;
  P.Pin = Env.Args.getBool("pin", true);
  P.Seed = Env.Seed;
  P.BurstFactor = Env.Args.getDouble("burst-factor", 1.0);
  P.BurstPeriodNs = static_cast<uint64_t>(
                        Env.Args.getInt("burst-period-ms", 200)) *
                    1000000ull;
  P.BurstLenNs =
      static_cast<uint64_t>(Env.Args.getInt("burst-len-ms", 50)) * 1000000ull;
  SOLERO_CHECK(P.PutPct + P.DelPct + P.ScanPct <= 100,
               "op mix exceeds 100 percent");

  SweepParams Sweep;
  Sweep.BaseRate = Env.Args.getDouble("rate", Env.Quick ? 4000 : 30000);
  Sweep.Factor = Env.Args.getDouble("sweep-factor", 1.6);
  Sweep.Steps = static_cast<int>(
      Env.Args.getInt("sweep-steps", Env.Quick ? 2 : 7));
  Sweep.SloNs = static_cast<uint64_t>(Env.Args.getInt(
                    "slo-us", Env.Quick ? 50000 : 2000)) *
                1000ull;

  std::printf("shards=%u keys=%llu zipf=%.2f mix=GET %u%% / PUT %u%% / "
              "DEL %u%% / SCAN %u%% threads=%d\nwindow=%llums "
              "burst-factor=%.1f pin=%d sweep: %g ops/s x%.2f, %d steps, "
              "p99 SLO %llu us\n",
              P.Shards, static_cast<unsigned long long>(P.Keys), P.Zipf,
              100 - P.PutPct - P.DelPct - P.ScanPct, P.PutPct, P.DelPct,
              P.ScanPct, P.Threads,
              static_cast<unsigned long long>(P.DurationNs / 1000000),
              P.BurstFactor, P.Pin ? 1 : 0, Sweep.BaseRate, Sweep.Factor,
              Sweep.Steps,
              static_cast<unsigned long long>(Sweep.SloNs / 1000));

  const bool ChaosMode =
      Env.Args.has("chaos") && Env.Args.getBool("chaos", true);
  const ZipfianSampler Zipf(P.Keys, P.Zipf);
  // The chaos soak defaults to the two adaptive-speculation stacks (the
  // states the watchdog guards); the sweep keeps its portfolio default.
  std::string Policies = Env.Args.getString(
      "policies",
      ChaosMode ? "Adaptive-SOLERO,BravoRW" : "Lock,RWLock,BravoRW,SOLERO,SeqLock");
  JsonReport Json("kv_service");
  // Exact comma-token match ("Lock" must not select RWLock or SeqLock).
  auto Wants = [&](const char *Name) {
    std::size_t Pos = 0;
    while (Pos <= Policies.size()) {
      std::size_t Comma = Policies.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = Policies.size();
      if (Policies.compare(Pos, Comma - Pos, Name) == 0 ||
          Policies.compare(Pos, Comma - Pos, "all") == 0)
        return true;
      Pos = Comma + 1;
    }
    return false;
  };
  if (ChaosMode) {
    KvBenchParams CP = P;
    if (!Env.Args.has("duration-ms")) // a fault campaign needs room
      CP.DurationNs = (Env.Quick ? 1500ull : 5000ull) * 1000000ull;
    ChaosSoakParams CS;
    CS.RatePerSec = Env.Args.getDouble("rate", Env.Quick ? 3000 : 15000);
    CS.DeadlineNs = static_cast<uint64_t>(Env.Args.getInt(
                        "deadline-us", Env.Quick ? 50000 : 20000)) *
                    1000ull;
    CS.DegradedSloNs =
        static_cast<uint64_t>(Env.Args.getInt(
            "degraded-slo-us",
            static_cast<int64_t>(3 * CS.DeadlineNs / 1000))) *
        1000ull;
    CS.WindowNs = static_cast<uint64_t>(
                      Env.Args.getInt("shed-window-ms", 50)) *
                  1000000ull;
    CS.RetryPerSec = Env.Args.getDouble("retry-rate", 200);
    CS.RetryBurst = Env.Args.getDouble("retry-burst", 20);
    CS.Chaos.Seed = Env.Seed;
    CS.Chaos.MeanGapNs = static_cast<uint64_t>(
                             Env.Args.getInt("chaos-gap-ms", 150)) *
                         1000000ull;
    CS.Chaos.MinEventNs = static_cast<uint64_t>(
                              Env.Args.getInt("chaos-min-ms", 30)) *
                          1000000ull;
    CS.Chaos.MaxEventNs = static_cast<uint64_t>(
                              Env.Args.getInt("chaos-max-ms", 100)) *
                          1000000ull;
    CS.Chaos.SlowShardDelayNs = static_cast<uint64_t>(Env.Args.getInt(
                                    "slow-shard-us", 200)) *
                                1000ull;
    CS.Chaos.KindMask = static_cast<uint32_t>(
        Env.Args.getInt("chaos-kinds", 0xffffffff));
    // Shed before deadlines blow: breach at half the request budget.
    CS.Shed.SloP99Ns = CS.DeadlineNs / 2;
    CS.Shed.BacklogBreachNs = CS.DeadlineNs;
    CS.Wd.StallBoundNs = static_cast<uint64_t>(Env.Args.getInt(
                             "stall-bound-ms", 100)) *
                         1000000ull;
    std::printf("chaos: deadline %llu us, degraded SLO %llu us, rate %g/s, "
                "shed window %llu ms, retry %.0f/s burst %.0f\n",
                static_cast<unsigned long long>(CS.DeadlineNs / 1000),
                static_cast<unsigned long long>(CS.DegradedSloNs / 1000),
                CS.RatePerSec,
                static_cast<unsigned long long>(CS.WindowNs / 1000000),
                CS.RetryPerSec, CS.RetryBurst);

    uint64_t Violations = 0;
    if (Wants("Lock"))
      Violations += runChaosSoak<TasukiPolicy>(Env, Json, CP, Zipf, CS);
    if (Wants("RWLock"))
      Violations += runChaosSoak<RwPolicy>(Env, Json, CP, Zipf, CS);
    if (Wants("BravoRW"))
      Violations += runChaosSoak<BravoRwPolicy>(Env, Json, CP, Zipf, CS);
    if (Wants("SOLERO"))
      Violations += runChaosSoak<SoleroPolicy>(Env, Json, CP, Zipf, CS);
    if (Wants("Adaptive-SOLERO"))
      Violations +=
          runChaosSoak<AdaptiveSoleroPolicy>(Env, Json, CP, Zipf, CS);
    if (Wants("SeqLock"))
      Violations += runChaosSoak<SeqLockPolicy>(Env, Json, CP, Zipf, CS);
    bool JsonOk = Json.write(Env.JsonPath);
    std::printf("\nchaos verdict: %llu oracle violation(s)%s\n",
                static_cast<unsigned long long>(Violations),
                Violations ? " [FAIL]" : " [ok]");
    return (Violations == 0 && JsonOk) ? 0 : 1;
  }

  const std::string CkptPath = Env.Args.getString("checkpoint", "");
  const std::string RestPath = Env.Args.getString("restore", "");
  image::ImageBuilder Builder;
  image::ImageBuilder *Ckpt = CkptPath.empty() ? nullptr : &Builder;
  image::LoadedImage Warm;
  image::Diagnostic LoadDiag;
  if (!RestPath.empty()) {
    Warm = image::LoadedImage::fromFile(RestPath, LoadDiag);
    if (!LoadDiag.ok()) // degrade to a cold run, never crash
      std::printf("warm image: %s\n", LoadDiag.render().c_str());
  }
  const image::LoadedImage *WarmP = Warm.loaded() ? &Warm : nullptr;

  if (Wants("Lock"))
    runPolicy<TasukiPolicy>(Env, Json, P, Sweep, Zipf, Ckpt, WarmP);
  if (Wants("RWLock"))
    runPolicy<RwPolicy>(Env, Json, P, Sweep, Zipf, Ckpt, WarmP);
  if (Wants("BravoRW"))
    runPolicy<BravoRwPolicy>(Env, Json, P, Sweep, Zipf, Ckpt, WarmP);
  if (Wants("SOLERO"))
    runPolicy<SoleroPolicy>(Env, Json, P, Sweep, Zipf, Ckpt, WarmP);
  if (Wants("Adaptive-SOLERO")) // off the default list; carries the
    runPolicy<AdaptiveSoleroPolicy>(Env, Json, P, Sweep, Zipf, Ckpt,
                                    WarmP); // richest controller state
  if (Wants("SeqLock"))
    runPolicy<SeqLockPolicy>(Env, Json, P, Sweep, Zipf, Ckpt, WarmP);

  if (Ckpt) {
    image::Diagnostic D;
    if (Builder.writeFile(CkptPath, D))
      std::printf("\ncheckpoint: wrote warm image (%zu policy blobs) to %s\n",
                  Builder.blobCount(), CkptPath.c_str());
    else
      std::fprintf(stderr, "checkpoint: %s\n", D.render().c_str());
  }

  return Json.write(Env.JsonPath) ? 0 : 1;
}

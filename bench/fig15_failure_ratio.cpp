//===- bench/fig15_failure_ratio.cpp - Figure 15 ---------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Figure 15: ratio of failed speculative executions of read-only
/// synchronized blocks in SOLERO vs thread count, for the 5%-writes map
/// workloads. Paper at 16 threads: HashMap 5% ≈ 23%, TreeMap 5% ≈ 35%,
/// fine-grained HashMap 5% ≈ 3%; SPECjbb ≈ 0%.
///
//===----------------------------------------------------------------------===//

#include "MapBenchRunner.h"

#include "workloads/JbbWorkload.h"

#include "collections/JavaTreeMap.h"

using namespace solero;

namespace {

using HashMapT = JavaHashMap<int64_t, int64_t>;
using TreeMapT = JavaTreeMap<int64_t, int64_t>;

template <typename Policy>
BenchResult runJbb(BenchEnv &Env, int Threads) {
  JbbParams P;
  P.Warehouses = Threads;
  P.Seed = Env.Seed;
  JbbWorkload<Policy> W(*Env.Ctx, P);
  return runThroughput(Threads, Env.Opts, std::ref(W));
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner("Figure 15",
              "Speculative-execution failure ratio of read-only blocks",
              "At 16 threads: HashMap 5% writes ~23%, TreeMap 5% ~35%, "
              "fine-grained HashMap 5% ~3%,\nSPECjbb ~0%. Rises with thread "
              "count.");
  std::vector<int> Threads = Env.threadList({1, 2, 4, 8, 16});

  std::printf("\n--- natural sections (25-100ns: rarely preempted on one "
              "vCPU; see EXPERIMENTS.md) ---\n");
  {
    TablePrinter T({"threads", "HashMap5%", "HashMap5% fine", "TreeMap5%",
                    "SPECjbb-like"});
    for (int N : Threads) {
      BenchResult H = runMapBench<HashMapT, SoleroPolicy>(Env, N, 5);
      BenchResult HF = runMapBench<HashMapT, SoleroPolicy>(Env, N, 5, N);
      BenchResult Tr = runMapBench<TreeMapT, SoleroPolicy>(Env, N, 5);
      BenchResult J = runJbb<SoleroPolicy>(Env, N);
      T.addRow({std::to_string(N), TablePrinter::percent(H.failureRatio(), 1),
                TablePrinter::percent(HF.failureRatio(), 1),
                TablePrinter::percent(Tr.failureRatio(), 1),
                TablePrinter::percent(J.failureRatio(), 2)});
    }
    T.print();
  }

  std::printf("\n--- widened sections (reader yields mid-section, forcing "
              "writer overlap as on a real\n16-way machine) ---\n");
  {
    // Patient spin tiers: on one vCPU a writer descheduled mid-section
    // otherwise sends every reader down the inflation path, after which
    // the permanently-fat lock forbids speculation altogether (0 attempts,
    // hence 0 failures — the degenerate outcome). Letting readers out-wait
    // the writer keeps the lock thin, as it would be on a real
    // multiprocessor where the writer's 100ns section actually completes.
    RuntimeConfig Patient;
    Patient.Tiers = SpinTiers{64, 32, 1 << 14};
    Env.Ctx = std::make_unique<RuntimeContext>(Patient);
    TablePrinter T({"threads", "HashMap5%", "HashMap5% fine", "TreeMap5%"});
    for (int N : Threads) {
      BenchResult H =
          runMapBench<HashMapT, SoleroPolicy>(Env, N, 5, 1, true);
      BenchResult HF =
          runMapBench<HashMapT, SoleroPolicy>(Env, N, 5, N, true);
      BenchResult Tr =
          runMapBench<TreeMapT, SoleroPolicy>(Env, N, 5, 1, true);
      T.addRow({std::to_string(N), TablePrinter::percent(H.failureRatio(), 1),
                TablePrinter::percent(HF.failureRatio(), 1),
                TablePrinter::percent(Tr.failureRatio(), 1)});
    }
    T.print();
  }
  std::printf("\nPaper reference at 16 threads: HashMap5%%=23%%, "
              "fine-grained=3%%, TreeMap5%%=35%%, SPECjbb~0%%.\n"
              "Shape checks: failure ratio rises with thread count; "
              "fine-grained stays far lower\n(writes land on other maps' "
              "locks); SPECjbb stays ~0 (share-nothing).\n");
  return 0;
}

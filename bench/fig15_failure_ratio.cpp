//===- bench/fig15_failure_ratio.cpp - Figure 15 ---------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Figure 15: ratio of failed speculative executions of read-only
/// synchronized blocks in SOLERO vs thread count, for the 5%-writes map
/// workloads. Paper at 16 threads: HashMap 5% ≈ 23%, TreeMap 5% ≈ 35%,
/// fine-grained HashMap 5% ≈ 3%; SPECjbb ≈ 0%.
///
//===----------------------------------------------------------------------===//

#include "MapBenchRunner.h"

#include "workloads/JbbWorkload.h"

#include "collections/JavaTreeMap.h"

using namespace solero;

namespace {

using HashMapT = JavaHashMap<int64_t, int64_t>;
using TreeMapT = JavaTreeMap<int64_t, int64_t>;

template <typename Policy>
BenchResult runJbb(BenchEnv &Env, int Threads) {
  JbbParams P;
  P.Warehouses = Threads;
  P.Seed = Env.Seed;
  JbbWorkload<Policy> W(*Env.Ctx, P);
  return runThroughput(Threads, Env.Opts, std::ref(W));
}

/// `--adaptive`: the controller sweep. Fixed-policy SOLERO vs
/// Adaptive-SOLERO on a TreeMap workload whose failure dial is the ratio
/// of misclassified-read-only sections (a nested write acquisition on the
/// same lock inside the read section, paper §3.2) — the one failure source
/// that is deterministic per section and so behaves identically on a
/// 1-vCPU host and a multiprocessor. At 0% the controller stays in Elide
/// and matches plain SOLERO; as the ratio rises it disables speculation
/// and stops paying the doomed speculative execution before every real
/// acquisition.
///
/// TreeMap rather than HashMap for two reasons: it is the collection the
/// paper's own Figure 15 shows with the worst failure ratio (35% at 16
/// threads), so it is where an adaptive policy matters; and its log-n
/// pointer-chasing get makes the section long enough (~100ns vs ~30ns)
/// that the sweep measures the policy — the cost of a doomed execution vs
/// a ~1ns controller tax — rather than the fence-dominated floor of a
/// near-empty section.
///
/// Yield-widened sections (the default fig15 tables) are deliberately NOT
/// used here: holding the lock across the mid-section yield is itself the
/// dominant cost on one vCPU, so both policies bottleneck on the same
/// scheduler handoff and the elision overhead being measured disappears
/// into it (see EXPERIMENTS.md, "Adaptive controller sweep").
int runAdaptiveSweep(BenchEnv &Env) {
  printBanner("Figure 15 — adaptive sweep",
              "Adaptive elision controller vs the paper's fixed policy",
              "Beyond the paper (Section 3.2/4.3 motivation): for sections "
              "whose speculation always\nfails, the fixed policy pays a "
              "doomed speculative execution plus the real acquisition\n"
              "every time; a BRAVO-style failure-ratio controller learns to "
              "skip straight to the\nacquisition.");
  // Patient spin tiers, same rationale as the widened-section table: keep
  // the lock thin on one vCPU so speculation stays possible at all.
  RuntimeConfig Patient;
  Patient.Tiers = SpinTiers{64, 32, 1 << 14};
  Env.Ctx = std::make_unique<RuntimeContext>(Patient);
  // One thread by default: this sweep measures the per-section *cost* of
  // elision policy (like the paper's single-thread figures), and on one
  // vCPU any extra thread turns short windows into scheduler-quantum
  // lotteries that drown the few-ns effect being measured. The failure
  // dial is per-section-deterministic, so it needs no concurrency;
  // --adaptive-threads restores the contended variant.
  int Threads =
      static_cast<int>(Env.Args.getInt("adaptive-threads", 1));
  int Rounds = static_cast<int>(Env.Args.getInt("rounds", Env.Quick ? 4 : 6));
  if (!Env.Args.has("window-ms"))
    Env.Opts.Window = std::chrono::milliseconds(Env.Quick ? 60 : 150);

  std::printf("\n--- TreeMap reads, %d threads; nested-write%% = share of "
              "read sections with a\nnested same-lock write (speculation "
              "deterministically fails there). Controller\ncolumns are "
              "Adaptive-SOLERO's: thr/dis/rep/ren = throttle/disable/"
              "re-probe/re-enable\ntransition counts ---\n",
              Threads);
  TablePrinter T({"nested-write%", "SOLERO ops/s", "Adaptive ops/s",
                  "speedup", "fail% fixed", "fail% adpt", "skip%",
                  "thr/dis/rep/ren"});
  for (unsigned Nw : {0u, 5u, 20u, 50u, 100u}) {
    // Both runners instantiate the same SoleroPolicy templates and differ
    // only in the runtime config, so the speedup column measures the
    // controller, not code-layout luck between two instantiations.
    TrialRunner Adaptive = makeMapRunner<TreeMapT, SoleroPolicy>(
        Env, "Adaptive-SOLERO", Threads, /*WritePercent=*/0, 1,
        /*YieldInReadSection=*/false, Nw, adaptiveSoleroConfig());
    TrialRunner Plain = makeMapRunner<TreeMapT, SoleroPolicy>(
        Env, "SOLERO", Threads, /*WritePercent=*/0, 1,
        /*YieldInReadSection=*/false, Nw, SoleroConfig{});
    std::vector<BenchResult> Best =
        runInterleavedBest({Plain, Adaptive}, Rounds);
    const BenchResult &P = Best[0], &A = Best[1];
    T.addRow({std::to_string(Nw), TablePrinter::num(P.OpsPerSec, 0),
              TablePrinter::num(A.OpsPerSec, 0),
              TablePrinter::num(P.OpsPerSec > 0
                                    ? A.OpsPerSec / P.OpsPerSec
                                    : 0.0,
                                2) +
                  "x",
              TablePrinter::percent(P.failureRatio(), 1),
              TablePrinter::percent(A.failureRatio(), 1),
              TablePrinter::percent(A.skipRatio(), 1),
              A.controllerTransitions()});
  }
  T.print();
  std::printf("\nShape checks: at low ratios (0-20%%) the controller stays "
              "in Elide and the speedup\ncolumn reads ~1.0x — parity within "
              "harness noise (a null run of identical configs\nspreads a few "
              "percent either side of 1.0x here; the true bookkeeping cost "
              "is ~1ns per\nsection, measured by micro_primitives "
              "BM_ElisionControllerRoundTrip). skip%% and\nspeedup rise "
              "together as the failure ratio climbs; at 100%% the fixed "
              "policy executes\nevery read section twice and Adaptive-SOLERO "
              "should be >= 1.3x.\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  if (Env.Args.getBool("adaptive", false))
    return runAdaptiveSweep(Env);
  printBanner("Figure 15",
              "Speculative-execution failure ratio of read-only blocks",
              "At 16 threads: HashMap 5% writes ~23%, TreeMap 5% ~35%, "
              "fine-grained HashMap 5% ~3%,\nSPECjbb ~0%. Rises with thread "
              "count.");
  std::vector<int> Threads = Env.threadList({1, 2, 4, 8, 16});

  std::printf("\n--- natural sections (25-100ns: rarely preempted on one "
              "vCPU; see EXPERIMENTS.md) ---\n");
  {
    TablePrinter T({"threads", "HashMap5%", "HashMap5% fine", "TreeMap5%",
                    "SPECjbb-like"});
    for (int N : Threads) {
      BenchResult H = runMapBench<HashMapT, SoleroPolicy>(Env, N, 5);
      BenchResult HF = runMapBench<HashMapT, SoleroPolicy>(Env, N, 5, N);
      BenchResult Tr = runMapBench<TreeMapT, SoleroPolicy>(Env, N, 5);
      BenchResult J = runJbb<SoleroPolicy>(Env, N);
      T.addRow({std::to_string(N), TablePrinter::percent(H.failureRatio(), 1),
                TablePrinter::percent(HF.failureRatio(), 1),
                TablePrinter::percent(Tr.failureRatio(), 1),
                TablePrinter::percent(J.failureRatio(), 2)});
    }
    T.print();
  }

  std::printf("\n--- widened sections (reader yields mid-section, forcing "
              "writer overlap as on a real\n16-way machine) ---\n");
  {
    // Patient spin tiers: on one vCPU a writer descheduled mid-section
    // otherwise sends every reader down the inflation path, after which
    // the permanently-fat lock forbids speculation altogether (0 attempts,
    // hence 0 failures — the degenerate outcome). Letting readers out-wait
    // the writer keeps the lock thin, as it would be on a real
    // multiprocessor where the writer's 100ns section actually completes.
    RuntimeConfig Patient;
    Patient.Tiers = SpinTiers{64, 32, 1 << 14};
    Env.Ctx = std::make_unique<RuntimeContext>(Patient);
    TablePrinter T({"threads", "HashMap5%", "HashMap5% fine", "TreeMap5%"});
    for (int N : Threads) {
      BenchResult H =
          runMapBench<HashMapT, SoleroPolicy>(Env, N, 5, 1, true);
      BenchResult HF =
          runMapBench<HashMapT, SoleroPolicy>(Env, N, 5, N, true);
      BenchResult Tr =
          runMapBench<TreeMapT, SoleroPolicy>(Env, N, 5, 1, true);
      T.addRow({std::to_string(N), TablePrinter::percent(H.failureRatio(), 1),
                TablePrinter::percent(HF.failureRatio(), 1),
                TablePrinter::percent(Tr.failureRatio(), 1)});
    }
    T.print();
  }
  std::printf("\nPaper reference at 16 threads: HashMap5%%=23%%, "
              "fine-grained=3%%, TreeMap5%%=35%%, SPECjbb~0%%.\n"
              "Shape checks: failure ratio rises with thread count; "
              "fine-grained stays far lower\n(writes land on other maps' "
              "locks); SPECjbb stays ~0 (share-nothing).\n");
  return 0;
}

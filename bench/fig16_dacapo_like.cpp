//===- bench/fig16_dacapo_like.cpp - Figure 16 -----------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Figure 16: the four multithreaded DaCapo applications (profile-matched
/// synthetic stand-ins; see DESIGN.md). Paper: the read-only lock ratios
/// are low (0–11.4%), so SOLERO shows no major difference from Lock, and
/// its performance degradation is negligible (< 1%).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "workloads/DaCapoLikeWorkload.h"

using namespace solero;

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner("Figure 16", "DaCapo-profile applications, Lock vs SOLERO",
              "Low read-only ratios (h2 0%, tomcat 3.7%, tradebeans 0.3%, "
              "tradesoap 11.4%): SOLERO ~=\nLock, degradation < 1%.");
  int Threads = static_cast<int>(Env.Args.getInt("app-threads", 2));
  TablePrinter T({"app", "Lock ops/s", "SOLERO ops/s", "SOLERO/Lock",
                  "read-only% (paper)", "lockM/s (paper)"});
  int Rounds = static_cast<int>(Env.Args.getInt("rounds", Env.Quick ? 1 : 4));
  HarnessOptions OneTrial = Env.Opts;
  OneTrial.Trials = 1;
  for (const DaCapoProfile &Prof : DaCapoProfiles) {
    auto WL = std::make_shared<DaCapoLikeWorkload<TasukiPolicy>>(*Env.Ctx, Prof,
                                                                 64, Env.Seed);
    auto WS = std::make_shared<DaCapoLikeWorkload<SoleroPolicy>>(*Env.Ctx, Prof,
                                                                 64, Env.Seed);
    std::vector<TrialRunner> Runners;
    Runners.push_back(TrialRunner{"Lock", [WL, Threads, OneTrial] {
      return runThroughput(Threads, OneTrial, std::ref(*WL));
    }});
    Runners.push_back(TrialRunner{"SOLERO", [WS, Threads, OneTrial] {
      return runThroughput(Threads, OneTrial, std::ref(*WS));
    }});
    std::vector<BenchResult> R = runInterleavedBest(Runners, Rounds);
    const BenchResult &Lock = R[0], &So = R[1];
    char RoCol[64], FreqCol[64];
    std::snprintf(RoCol, sizeof(RoCol), "%.1f%% (%.1f%%)",
                  So.readOnlyRatio() * 100.0, Prof.PaperReadOnlyPercent);
    std::snprintf(FreqCol, sizeof(FreqCol), "%.1f (%.1f)",
                  So.locksPerSec() / 1e6, Prof.PaperLockFreqMillionsPerSec);
    T.addRow({Prof.Name, TablePrinter::num(Lock.OpsPerSec, 0),
              TablePrinter::num(So.OpsPerSec, 0),
              TablePrinter::num(So.OpsPerSec / Lock.OpsPerSec, 3), RoCol,
              FreqCol});
  }
  T.print();
  return 0;
}

# Runs ${BENCH} with --json=${JSON} at a tiny size and schema-checks the
# emitted file (the machine-readable side of the fig12/fig13/ablate/kv
# harness). Portable cousin of RunGoldenDiff.cmake: bench throughput is
# nondeterministic, so instead of a golden diff this validates structure —
# the file exists, parses as the JsonReport shape, and contains a row for
# every protocol the comparison promises.
#
# Optional parameters (comma-separated; defaults match the figure benches):
#   PROTOCOLS   protocols that must each have at least one row
#   EXTRA_KEYS  additional JSON keys that must appear (KV tail-latency rows)
#   EXTRA_ARGS  additional CLI flags (the chaos smoke's --chaos --seed=N)
if(NOT DEFINED PROTOCOLS)
  set(PROTOCOLS "Lock,RWLock,BravoRW,SOLERO")
endif()
string(REPLACE "," ";" PROTOCOLS "${PROTOCOLS}")
if(NOT DEFINED EXTRA_KEYS)
  set(EXTRA_KEYS "")
endif()
string(REPLACE "," ";" EXTRA_KEYS "${EXTRA_KEYS}")
if(NOT DEFINED EXTRA_ARGS)
  set(EXTRA_ARGS "")
endif()
string(REPLACE "," ";" EXTRA_ARGS "${EXTRA_ARGS}")
execute_process(COMMAND ${BENCH} --quick --threads=${THREADS} --json=${JSON}
                        ${EXTRA_ARGS}
                OUTPUT_VARIABLE STDOUT
                RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "${BENCH} exited with ${RC}")
endif()
if(NOT EXISTS ${JSON})
  message(FATAL_ERROR "${BENCH} did not write ${JSON}")
endif()
file(READ ${JSON} DOC)
# Structural spine of BenchCommon.h's JsonReport schema.
foreach(KEY "\"figure\"" "\"rows\"" "\"variant\"" "\"protocol\""
        "\"threads\"" "\"ops_per_sec\"" "\"rmw_per_op\"" "\"stores_per_op\""
        "\"failure_ratio\"")
  string(FIND "${DOC}" "${KEY}" POS)
  if(POS EQUAL -1)
    message(FATAL_ERROR "${JSON} is missing required key ${KEY}")
  endif()
endforeach()
# Every protocol of the promised comparison must have rows.
foreach(PROTO ${PROTOCOLS})
  string(FIND "${DOC}" "\"protocol\": \"${PROTO}\"" POS)
  if(POS EQUAL -1)
    message(FATAL_ERROR "${JSON} has no rows for protocol ${PROTO}")
  endif()
endforeach()
# Bench-specific extra columns (e.g. the KV tail-latency percentiles).
foreach(KEY ${EXTRA_KEYS})
  string(FIND "${DOC}" "\"${KEY}\"" POS)
  if(POS EQUAL -1)
    message(FATAL_ERROR "${JSON} is missing required key \"${KEY}\"")
  endif()
endforeach()
# No row may carry a malformed (empty/nan/inf) throughput.
foreach(BAD "\"ops_per_sec\": }" "\"ops_per_sec\": ," "nan" "inf")
  string(FIND "${DOC}" "${BAD}" POS)
  if(NOT POS EQUAL -1)
    message(FATAL_ERROR "${JSON} contains malformed value near '${BAD}'")
  endif()
endforeach()

//===- bench/GuestPrograms.h - Named CSIR guest programs --------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guest programs the bench and analysis tools share. Each builder
/// returns a fresh module; the shapes are fixed so analyze_module's golden
/// report and the ablation numbers describe the same bytecode.
///
///  - config:      the A3 guest — a configuration object read (sum of four
///                 fields) and occasionally rewritten under its monitor.
///  - snapshot:    the escape-analysis showcase — the reader allocates a
///                 holder object *inside* the synchronized block, fills it,
///                 and reads it back. Without escape analysis the two
///                 putfields make the region Writing; with it the region
///                 is ReadOnly and elides.
///  - racyCounter: the seeded bug for the race detector — bump() writes
///                 the counter field with no lock while total() reads it
///                 under one.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_BENCH_GUESTPROGRAMS_H
#define SOLERO_BENCH_GUESTPROGRAMS_H

#include "jit/MethodBuilder.h"

namespace solero {
namespace bench {

/// readConfig(obj)     — synchronized { sum 4 fields }    (read-only)
/// writeConfig(obj, v) — synchronized { update 4 fields } (writing)
inline jit::Module buildConfigGuest() {
  jit::Module M;
  {
    jit::MethodBuilder B("readConfig", 1, 2);
    B.load(0).syncEnter();
    B.load(0).getField(0);
    B.load(0).getField(1).add();
    B.load(0).getField(2).add();
    B.load(0).getField(3).add();
    B.store(1);
    B.syncExit();
    B.load(1).ret();
    M.addMethod(B.take());
  }
  {
    jit::MethodBuilder B("writeConfig", 2, 2);
    B.load(0).syncEnter();
    B.load(0).load(1).putField(0);
    B.load(0).load(1).neg().putField(1);
    B.load(0).load(1).putField(2);
    B.load(0).load(1).neg().putField(3);
    B.syncExit();
    B.constant(0).ret();
    M.addMethod(B.take());
  }
  return M;
}

/// snapshot(obj)        — synchronized { h = new; h.F0 = obj.F0;
///                        h.F1 = obj.F1 + 1; result = h.F0 + h.F1 }
/// writeConfig(obj, v)  — synchronized { update both fields }
inline jit::Module buildSnapshotGuest() {
  jit::Module M;
  {
    jit::MethodBuilder B("snapshot", 1, 3);
    B.load(0).syncEnter();
    B.newObject().store(1);
    B.load(1).load(0).getField(0).putField(0);
    B.load(1).load(0).getField(1).constant(1).add().putField(1);
    B.load(1).getField(0).load(1).getField(1).add().store(2);
    B.syncExit();
    B.load(2).ret();
    M.addMethod(B.take());
  }
  {
    jit::MethodBuilder B("writeConfig", 2, 2);
    B.load(0).syncEnter();
    B.load(0).load(1).putField(0);
    B.load(0).load(1).neg().putField(1);
    B.syncExit();
    B.constant(0).ret();
    M.addMethod(B.take());
  }
  return M;
}

/// bump(obj)  — obj.F0 = obj.F0 + 1, no lock (the seeded race)
/// total(obj) — synchronized { read obj.F0 }
inline jit::Module buildRacyCounterGuest() {
  jit::Module M;
  {
    jit::MethodBuilder B("bump", 1, 1);
    B.load(0).load(0).getField(0).constant(1).add().putField(0);
    B.constant(0).ret();
    M.addMethod(B.take());
  }
  {
    jit::MethodBuilder B("total", 1, 2);
    B.load(0).syncEnter();
    B.load(0).getField(0).store(1);
    B.syncExit();
    B.load(1).ret();
    M.addMethod(B.take());
  }
  return M;
}

} // namespace bench
} // namespace solero

#endif // SOLERO_BENCH_GUESTPROGRAMS_H

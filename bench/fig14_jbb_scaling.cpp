//===- bench/fig14_jbb_scaling.cpp - Figure 14 -----------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Figure 14: SPECjbb2005-like multi-thread throughput (warehouses ==
/// threads), Lock vs SOLERO, normalized to Lock at one thread. Paper:
/// the workload is share-nothing scalable, so SOLERO's single-thread
/// advantage (~4%) carries proportionally to all thread counts, with ~0%
/// speculation failures.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "workloads/JbbWorkload.h"

using namespace solero;

namespace {

template <typename Policy>
TrialRunner makeJbbRunner(BenchEnv &Env, const char *Name, int Threads) {
  JbbParams P;
  P.Warehouses = Threads; // SPECjbb convention: warehouses == threads
  P.Seed = Env.Seed;
  auto W = std::make_shared<JbbWorkload<Policy>>(*Env.Ctx, P);
  HarnessOptions OneTrial = Env.Opts;
  OneTrial.Trials = 1;
  return TrialRunner{Name, [W, Threads, OneTrial] {
                       return runThroughput(Threads, OneTrial, std::ref(*W));
                     }};
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner("Figure 14", "SPECjbb-like multi-thread throughput "
                           "(warehouses == threads)",
              "SOLERO's ~4% single-thread advantage carries across thread "
              "counts; ~0% speculation\nfailures at any count.");
  std::vector<int> Threads = Env.threadList({1, 2, 4, 8, 16});
  TablePrinter T({"threads", "Lock tx/s", "SOLERO tx/s", "SOLERO/Lock",
                  "read-only%", "SOLERO fail%"});
  int Rounds = static_cast<int>(Env.Args.getInt("rounds", Env.Quick ? 1 : 3));
  for (int N : Threads) {
    std::vector<TrialRunner> Runners;
    Runners.push_back(makeJbbRunner<TasukiPolicy>(Env, "Lock", N));
    Runners.push_back(makeJbbRunner<SoleroPolicy>(Env, "SOLERO", N));
    std::vector<BenchResult> R = runInterleavedBest(Runners, Rounds);
    const BenchResult &Lock = R[0], &So = R[1];
    T.addRow({std::to_string(N), TablePrinter::num(Lock.OpsPerSec, 0),
              TablePrinter::num(So.OpsPerSec, 0),
              TablePrinter::num(So.OpsPerSec / Lock.OpsPerSec, 3),
              TablePrinter::percent(So.readOnlyRatio(), 1),
              TablePrinter::percent(So.failureRatio(), 2)});
  }
  T.print();
  return 0;
}

//===- bench/fig12_hashmap_scaling.cpp - Figure 12 -------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Figure 12: multi-thread HashMap throughput, normalized to Lock at one
/// thread. (a) 0% writes: SOLERO scales near-linearly while Lock and
/// RWLock degrade; (b) 5% writes: SOLERO leads but dips past two threads
/// (contention + speculation failures, 23% failures at 16 threads);
/// (c) 5% writes fine-grained (#maps == #threads): SOLERO leads at every
/// thread count, ~3% failures at 16 threads.
///
/// Beyond the paper: a BRAVO column (locks/BravoRwLock.h) turns the RWLock
/// baseline into a state-of-the-art biased reader path, so the four-way
/// Lock / RWLock / BRAVO / SOLERO comparison judges SOLERO against modern
/// reader indication rather than only the 2010 centralized lock. With
/// --json=PATH the per-protocol ops/s-by-thread-count grid is also written
/// as machine-readable JSON (schema: BenchCommon.h JsonReport).
///
//===----------------------------------------------------------------------===//

#include "MapBenchRunner.h"

using namespace solero;

namespace {

using HashMapT = JavaHashMap<int64_t, int64_t>;

void runVariant(BenchEnv &Env, JsonReport &Json, const char *VariantId,
                const char *Title, unsigned WritePct, bool FineGrained,
                const std::vector<int> &Threads, int Rounds) {
  std::printf("\n--- %s ---\n", Title);
  TablePrinter T({"threads", "Lock ops/s", "RWLock ops/s", "BRAVO ops/s",
                  "SOLERO ops/s", "SOLERO norm", "RWLock rmw/op",
                  "BRAVO rmw/op", "SOLERO rmw/op", "SOLERO fail%"});
  double LockBase = 0;
  for (int N : Threads) {
    int Maps = FineGrained ? N : 1;
    std::vector<TrialRunner> Runners;
    Runners.push_back(
        makeMapRunner<HashMapT, TasukiPolicy>(Env, "Lock", N, WritePct, Maps));
    Runners.push_back(
        makeMapRunner<HashMapT, RwPolicy>(Env, "RWLock", N, WritePct, Maps));
    Runners.push_back(makeMapRunner<HashMapT, BravoRwPolicy>(
        Env, "BravoRW", N, WritePct, Maps));
    Runners.push_back(
        makeMapRunner<HashMapT, SoleroPolicy>(Env, "SOLERO", N, WritePct,
                                              Maps));
    std::vector<BenchResult> R = runInterleavedBest(Runners, Rounds);
    const BenchResult &Lock = R[0], &Rw = R[1], &Bravo = R[2], &So = R[3];
    if (LockBase == 0)
      LockBase = Lock.OpsPerSec;
    T.addRow({std::to_string(N), TablePrinter::num(Lock.OpsPerSec, 0),
              TablePrinter::num(Rw.OpsPerSec, 0),
              TablePrinter::num(Bravo.OpsPerSec, 0),
              TablePrinter::num(So.OpsPerSec, 0),
              TablePrinter::num(So.OpsPerSec / LockBase, 2),
              TablePrinter::num(Rw.rmwPerOp(), 2),
              TablePrinter::num(Bravo.rmwPerOp(), 2),
              TablePrinter::num(So.rmwPerOp(), 2),
              TablePrinter::percent(So.failureRatio(), 1)});
    Json.add(VariantId, "Lock", N, Lock);
    Json.add(VariantId, "RWLock", N, Rw);
    Json.add(VariantId, "BravoRW", N, Bravo);
    Json.add(VariantId, "SOLERO", N, So);
  }
  T.print();
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner("Figure 12", "HashMap multi-thread throughput",
              "(a) 0% writes: SOLERO near-linear, Lock/RWLock degrade; "
              "(b) 5%: SOLERO leads, dips past 2\nthreads with 23% failures "
              "at 16; (c) fine-grained 5%: SOLERO leads everywhere, ~3% "
              "failures.");
  std::vector<int> Threads = Env.threadList({1, 2, 4, 8, 16});
  int Rounds = static_cast<int>(Env.Args.getInt("rounds", Env.Quick ? 1 : 3));
  JsonReport Json("fig12");
  runVariant(Env, Json, "a", "(a) 0% writes", 0, false, Threads, Rounds);
  runVariant(Env, Json, "b", "(b) 5% writes", 5, false, Threads, Rounds);
  runVariant(Env, Json, "c", "(c) 5% writes, fine-grained (#maps == #threads)",
             5, true, Threads, Rounds);
  return Json.write(Env.JsonPath) ? 0 : 1;
}

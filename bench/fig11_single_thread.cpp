//===- bench/fig11_single_thread.cpp - Figure 11 --------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Figure 11: single-thread performance of HashMap (0% / 5% writes),
/// TreeMap (0% / 5% writes), and SPECjbb-like, relative to the
/// conventional lock. Paper: SOLERO +7.8% (HashMap 0%), +6.4% (HashMap
/// 5%), ~+1% (TreeMap, lower lock frequency), +4.2% (SPECjbb2005);
/// RWLock substantially below Lock on the microbenchmarks; RWLock is not
/// measured for SPECjbb (as in the paper).
///
//===----------------------------------------------------------------------===//

#include "MapBenchRunner.h"

#include "workloads/JbbWorkload.h"

using namespace solero;

namespace {

using HashMapT = JavaHashMap<int64_t, int64_t>;
using TreeMapT = JavaTreeMap<int64_t, int64_t>;

template <typename Policy>
TrialRunner makeJbbRunner(BenchEnv &Env, const char *Name) {
  JbbParams P;
  P.Warehouses = 1;
  P.Seed = Env.Seed;
  auto W = std::make_shared<JbbWorkload<Policy>>(*Env.Ctx, P);
  HarnessOptions OneTrial = Env.Opts;
  OneTrial.Trials = 1;
  return TrialRunner{
      Name, [W, OneTrial] { return runThroughput(1, OneTrial, std::ref(*W)); }};
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner("Figure 11",
              "Single-thread relative performance (Lock = 100%)",
              "SOLERO: HashMap0% 107.8, HashMap5% 106.4, TreeMap ~101, "
              "SPECjbb 104.2.\nRWLock far below 100 on the "
              "microbenchmarks (not inlined, extra indirection).");
  int Rounds = static_cast<int>(Env.Args.getInt("rounds", Env.Quick ? 2 : 5));

  TablePrinter T({"benchmark", "Lock ops/s", "RWLock rel%", "SOLERO rel%",
                  "paper SOLERO rel%"});

  auto AddMapRow = [&](const char *Name, auto MapTag, unsigned WritePct,
                       double PaperRel) {
    using MapT = typename decltype(MapTag)::type;
    std::vector<TrialRunner> Runners;
    Runners.push_back(
        makeMapRunner<MapT, TasukiPolicy>(Env, "Lock", 1, WritePct));
    Runners.push_back(
        makeMapRunner<MapT, RwPolicy>(Env, "RWLock", 1, WritePct));
    Runners.push_back(
        makeMapRunner<MapT, SoleroPolicy>(Env, "SOLERO", 1, WritePct));
    std::vector<BenchResult> R = runInterleavedBest(Runners, Rounds);
    T.addRow({Name, TablePrinter::num(R[0].OpsPerSec, 0),
              TablePrinter::num(100.0 * R[1].OpsPerSec / R[0].OpsPerSec, 1),
              TablePrinter::num(100.0 * R[2].OpsPerSec / R[0].OpsPerSec, 1),
              TablePrinter::num(PaperRel, 1)});
  };

  AddMapRow("HashMap 0% writes", std::type_identity<HashMapT>{}, 0, 107.8);
  AddMapRow("HashMap 5% writes", std::type_identity<HashMapT>{}, 5, 106.4);
  AddMapRow("TreeMap 0% writes", std::type_identity<TreeMapT>{}, 0, 101.0);
  AddMapRow("TreeMap 5% writes", std::type_identity<TreeMapT>{}, 5, 101.0);

  {
    std::vector<TrialRunner> Runners;
    Runners.push_back(makeJbbRunner<TasukiPolicy>(Env, "Lock"));
    Runners.push_back(makeJbbRunner<SoleroPolicy>(Env, "SOLERO"));
    std::vector<BenchResult> R = runInterleavedBest(Runners, Rounds);
    T.addRow({"SPECjbb-like", TablePrinter::num(R[0].OpsPerSec, 0), "n/a",
              TablePrinter::num(100.0 * R[1].OpsPerSec / R[0].OpsPerSec, 1),
              TablePrinter::num(104.2, 1)});
  }
  T.print();
  return 0;
}

# Runs bench/model_check twice with identical flags and enforces both the
# expected exit code (0 for shipped protocols, 1 for the seeded-bug
# variants — an exact match, so a crash can never masquerade as the
# expected failure) and byte-identical stdout across the two runs (the
# determinism contract renderSummary/renderTrace promise: no timing, no
# addresses, no iteration-order leaks).
#
# Usage:
#   cmake -DMODEL_CHECK=<exe> -DARGS=<comma-separated flags>
#         -DEXPECTED_RC=<n> -DOUT=<scratch file stem> -P RunModelCheck.cmake

if(NOT MODEL_CHECK OR NOT OUT OR NOT DEFINED EXPECTED_RC)
  message(FATAL_ERROR "RunModelCheck.cmake: MODEL_CHECK, OUT and EXPECTED_RC "
                      "are required")
endif()

string(REPLACE "," ";" ARG_LIST "${ARGS}")

foreach(PASS 1 2)
  execute_process(COMMAND ${MODEL_CHECK} ${ARG_LIST}
                  OUTPUT_FILE ${OUT}.${PASS}
                  RESULT_VARIABLE RC)
  if(NOT RC EQUAL ${EXPECTED_RC})
    file(READ ${OUT}.${PASS} BODY)
    message(FATAL_ERROR "model_check ${ARGS} (run ${PASS}) exited ${RC}, "
                        "expected ${EXPECTED_RC}\n${BODY}")
  endif()
endforeach()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT}.1 ${OUT}.2
                RESULT_VARIABLE SAME)
if(NOT SAME EQUAL 0)
  message(FATAL_ERROR "model_check ${ARGS} is nondeterministic: two runs "
                      "with identical flags produced different output "
                      "(${OUT}.1 vs ${OUT}.2)")
endif()

//===- bench/BenchCommon.h - Shared bench-binary plumbing -------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common setup for the per-figure bench binaries: flag parsing, harness
/// options, the runtime context, and output helpers. Every binary accepts:
///
///   --window-ms=N   measured window per trial        (default 150)
///   --trials=N      best-of trials                   (default 2)
///   --threads=L     comma list of thread counts      (figure-specific)
///   --quick         CI smoke mode (tiny windows)
///   --seed=N        workload RNG seed
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_BENCH_BENCHCOMMON_H
#define SOLERO_BENCH_BENCHCOMMON_H

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "support/CliParser.h"
#include "support/TablePrinter.h"
#include "workloads/Harness.h"
#include "workloads/LockPolicies.h"

namespace solero {

/// Everything a figure binary needs.
struct BenchEnv {
  BenchEnv(int Argc, char **Argv) : Args(Argc, Argv) {
    Quick = Args.getBool("quick", false);
    Opts.Window = std::chrono::milliseconds(
        Args.getInt("window-ms", Quick ? 30 : 150));
    Opts.Warmup = std::chrono::milliseconds(Quick ? 5 : 30);
    Opts.Trials = static_cast<int>(Args.getInt("trials", Quick ? 1 : 2));
    Seed = static_cast<uint64_t>(Args.getInt("seed", 0x5eed));
    Ctx = std::make_unique<RuntimeContext>();
  }

  /// Thread counts to sweep (paper: 1..16 on the 16-way Power6).
  std::vector<int> threadList(std::vector<int> Default) {
    if (Quick && !Args.has("threads"))
      return {1, 2};
    return Args.getIntList("threads", std::move(Default));
  }

  CliParser Args;
  HarnessOptions Opts;
  std::unique_ptr<RuntimeContext> Ctx;
  uint64_t Seed = 0;
  bool Quick = false;
};

/// Prints the standard figure banner.
inline void printBanner(const char *Id, const char *Title,
                        const char *PaperClaim) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", Id, Title);
  std::printf("Paper: Nakaike & Michael, \"Lock Elision for Read-Only "
              "Critical Sections in Java\",\n       PLDI 2010.\n");
  std::printf("Paper result: %s\n", PaperClaim);
  std::printf("Note: this host is a 1-vCPU container (paper used a 16-way "
              "Power6); wall-clock\nscalability is compressed. The rmw/op and "
              "st/op columns are the deterministic\ncoherence-traffic proxies "
              "(see EXPERIMENTS.md).\n");
  std::printf("==============================================================="
              "=================\n");
}

/// Formats ns/op from a result.
inline std::string nsPerOp(const BenchResult &R) {
  return TablePrinter::num(R.Ops ? R.Seconds * 1e9 /
                                       static_cast<double>(R.Ops)
                                 : 0.0,
                           1);
}

} // namespace solero

#endif // SOLERO_BENCH_BENCHCOMMON_H

//===- bench/BenchCommon.h - Shared bench-binary plumbing -------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common setup for the per-figure bench binaries: flag parsing, harness
/// options, the runtime context, and output helpers. Every binary accepts:
///
///   --window-ms=N   measured window per trial        (default 150)
///   --trials=N      best-of trials                   (default 2)
///   --threads=L     comma list of thread counts      (figure-specific)
///   --quick         CI smoke mode (tiny windows)
///   --seed=N        workload RNG seed
///   --json=PATH     also write the run's results as machine-readable JSON
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_BENCH_BENCHCOMMON_H
#define SOLERO_BENCH_BENCHCOMMON_H

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/CliParser.h"
#include "support/TablePrinter.h"
#include "workloads/Harness.h"
#include "workloads/LockPolicies.h"

namespace solero {

/// Accumulates one row per (variant, protocol, threads) cell and writes the
/// whole run as a JSON document, so figure runs leave a machine-readable
/// perf trajectory next to the human tables:
///
///   {"figure": "fig12", "rows": [
///     {"variant": "a", "protocol": "RWLock", "threads": 2,
///      "ops_per_sec": ..., "rmw_per_op": ..., "stores_per_op": ...,
///      "failure_ratio": ...}, ...]}
///
/// The schema is checked by the CI bench smoke job
/// (bench/RunBenchJsonSmoke.cmake).
class JsonReport {
public:
  /// One extra numeric column appended to a row (the KV service rows carry
  /// p50_us/p99_us/... beyond the fixed figure schema).
  using Extra = std::pair<std::string, double>;

  explicit JsonReport(std::string Figure) : Figure(std::move(Figure)) {}

  void add(const std::string &Variant, const std::string &Protocol,
           int Threads, const BenchResult &R,
           std::vector<Extra> Extras = {}) {
    Row Entry;
    Entry.Variant = Variant;
    Entry.Protocol = Protocol;
    Entry.Threads = Threads;
    Entry.OpsPerSec = R.OpsPerSec;
    Entry.RmwPerOp = R.rmwPerOp();
    Entry.StoresPerOp = R.storesPerOp();
    Entry.FailureRatio = R.failureRatio();
    Entry.Extras = std::move(Extras);
    Rows.push_back(std::move(Entry));
  }

  /// Writes the document; no-op when \p Path is empty. Returns false (and
  /// warns on stderr) when the file cannot be written.
  bool write(const std::string &Path) const {
    if (Path.empty())
      return true;
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "warning: cannot write --json file %s\n",
                   Path.c_str());
      return false;
    }
    std::fprintf(F, "{\n  \"figure\": \"%s\",\n  \"rows\": [",
                 escaped(Figure).c_str());
    for (std::size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      std::fprintf(F,
                   "%s\n    {\"variant\": \"%s\", \"protocol\": \"%s\", "
                   "\"threads\": %d, \"ops_per_sec\": %.6g, "
                   "\"rmw_per_op\": %.6g, \"stores_per_op\": %.6g, "
                   "\"failure_ratio\": %.6g",
                   I ? "," : "", escaped(R.Variant).c_str(),
                   escaped(R.Protocol).c_str(), R.Threads,
                   finiteOrZero(R.OpsPerSec), finiteOrZero(R.RmwPerOp),
                   finiteOrZero(R.StoresPerOp),
                   finiteOrZero(R.FailureRatio));
      for (const Extra &E : R.Extras)
        std::fprintf(F, ", \"%s\": %.6g", escaped(E.first).c_str(),
                     finiteOrZero(E.second));
      std::fprintf(F, "}");
    }
    std::fprintf(F, "\n  ]\n}\n");
    std::fclose(F);
    return true;
  }

private:
  struct Row {
    std::string Variant;
    std::string Protocol;
    int Threads = 0;
    double OpsPerSec = 0;
    double RmwPerOp = 0;
    double StoresPerOp = 0;
    double FailureRatio = 0;
    std::vector<Extra> Extras;
  };

  /// JSON has no representation for NaN/Infinity and %.6g would print
  /// "nan"/"inf", corrupting the document (a zero-attempt variant or
  /// zero-elapsed window produces exactly those). Zero is the schema's
  /// "no signal" value.
  static double finiteOrZero(double V) { return std::isfinite(V) ? V : 0.0; }

  static std::string escaped(const std::string &S) {
    std::string Out;
    Out.reserve(S.size());
    for (char C : S) {
      unsigned char U = static_cast<unsigned char>(C);
      if (C == '"' || C == '\\') {
        Out.push_back('\\');
        Out.push_back(C);
      } else if (U < 0x20) {
        // Control characters are invalid raw inside a JSON string; a
        // CLI-supplied label must round-trip, not silently shrink.
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04X", U);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
    return Out;
  }

  std::string Figure;
  std::vector<Row> Rows;
};

/// Everything a figure binary needs.
struct BenchEnv {
  BenchEnv(int Argc, char **Argv) : Args(Argc, Argv) {
    Quick = Args.getBool("quick", false);
    Opts.Window = std::chrono::milliseconds(
        Args.getInt("window-ms", Quick ? 30 : 150));
    Opts.Warmup = std::chrono::milliseconds(Quick ? 5 : 30);
    Opts.Trials = static_cast<int>(Args.getInt("trials", Quick ? 1 : 2));
    Seed = static_cast<uint64_t>(Args.getInt("seed", 0x5eed));
    JsonPath = Args.getString("json", "");
    Ctx = std::make_unique<RuntimeContext>();
  }

  /// Thread counts to sweep (paper: 1..16 on the 16-way Power6).
  std::vector<int> threadList(std::vector<int> Default) {
    if (Quick && !Args.has("threads"))
      return {1, 2};
    return Args.getIntList("threads", std::move(Default));
  }

  CliParser Args;
  HarnessOptions Opts;
  std::unique_ptr<RuntimeContext> Ctx;
  uint64_t Seed = 0;
  bool Quick = false;
  /// Destination of the machine-readable run report; empty = off.
  std::string JsonPath;
};

/// Prints the standard figure banner.
inline void printBanner(const char *Id, const char *Title,
                        const char *PaperClaim) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", Id, Title);
  std::printf("Paper: Nakaike & Michael, \"Lock Elision for Read-Only "
              "Critical Sections in Java\",\n       PLDI 2010.\n");
  std::printf("Paper result: %s\n", PaperClaim);
  std::printf("Note: this host is a 1-vCPU container (paper used a 16-way "
              "Power6); wall-clock\nscalability is compressed. The rmw/op and "
              "st/op columns are the deterministic\ncoherence-traffic proxies "
              "(see EXPERIMENTS.md).\n");
  std::printf("==============================================================="
              "=================\n");
}

/// Formats ns/op from a result.
inline std::string nsPerOp(const BenchResult &R) {
  return TablePrinter::num(R.Ops ? R.Seconds * 1e9 /
                                       static_cast<double>(R.Ops)
                                 : 0.0,
                           1);
}

} // namespace solero

#endif // SOLERO_BENCH_BENCHCOMMON_H

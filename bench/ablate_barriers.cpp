//===- bench/ablate_barriers.cpp - Section 3.4 fence costs -----------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Quantifies the memory-ordering cost the paper discusses in Section 3.4:
/// the read-only fast path's entry fence (PowerPC `sync`; a StoreLoad
/// fence on x86) versus the conventional lock's acquire-only entry. The
/// paper measured 20%/7%/5% ordering overhead on HashMap/TreeMap/
/// SPECjbb (Power6); this ablation reports the same decomposition for
/// this host, plus the raw primitive costs (fence vs CAS) that decide
/// whether SOLERO's single-thread advantage materializes on a given
/// microarchitecture (EXPERIMENTS.md discusses the x86-vs-Power story).
///
//===----------------------------------------------------------------------===//

#include "MapBenchRunner.h"

#include "support/Stopwatch.h"

using namespace solero;

namespace {

using HashMapT = JavaHashMap<int64_t, int64_t>;
using TreeMapT = JavaTreeMap<int64_t, int64_t>;

/// ns/op of a tight primitive loop.
template <typename Fn> double primitiveNs(Fn &&F) {
  const int N = 3000000;
  for (int I = 0; I < N / 10; ++I)
    F(I);
  Stopwatch W;
  for (int I = 0; I < N; ++I)
    F(I);
  return W.elapsedNs() / static_cast<double>(N);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner("Ablation A2", "Memory-ordering costs (Section 3.4)",
              "Paper (Power6): ordering overhead of SOLERO reads = 20% "
              "(HashMap), 7% (TreeMap), 5%\n(SPECjbb); the elision win "
              "depends on fence cost vs saved atomic ops.");

  // Raw primitives.
  {
    std::atomic<uint64_t> Word{0};
    uint64_t Local = 0;
    TablePrinter T({"primitive", "ns/op"});
    T.addRow({"relaxed load", TablePrinter::num(primitiveNs([&](int) {
                Local += Word.load(std::memory_order_relaxed);
              }))});
    T.addRow({"acquire load + seq_cst fence (SOLERO read entry)",
              TablePrinter::num(primitiveNs([&](int) {
                Local += Word.load(std::memory_order_acquire);
                std::atomic_thread_fence(std::memory_order_seq_cst);
              }))});
    T.addRow({"uncontended CAS + release store (Lock enter+exit)",
              TablePrinter::num(primitiveNs([&](int I) {
                uint64_t E = 0;
                Word.compare_exchange_strong(E, 0x100,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed);
                Word.store(0, std::memory_order_release);
                Local += static_cast<uint64_t>(I);
              }))});
    T.print();
    if (Local == 42)
      std::printf("!"); // keep the loop results observable
  }

  // Per-workload decomposition: Correct vs Weak barriers vs Unelided.
  std::printf("\nSOLERO read-only sections on the map workloads (1 thread), "
              "barrier variants:\n");
  TablePrinter T({"benchmark", "Correct ops/s", "Weak ops/s",
                  "ordering overhead", "Unelided ops/s"});
  auto Row = [&](const char *Name, auto MapTag, unsigned WritePct) {
    using MapT = typename decltype(MapTag)::type;
    std::vector<TrialRunner> Runners;
    Runners.push_back(
        makeMapRunner<MapT, SoleroPolicy>(Env, "Correct", 1, WritePct));
    // Weak-barrier and unelided variants need distinct policies; reuse the
    // runner plumbing with wrapper policies.
    struct WeakPolicy : SoleroPolicy {
      explicit WeakPolicy(RuntimeContext &Ctx)
          : SoleroPolicy(Ctx, weakBarrierSoleroConfig()) {}
    };
    struct UnelidedPolicy : SoleroPolicy {
      explicit UnelidedPolicy(RuntimeContext &Ctx)
          : SoleroPolicy(Ctx, unelidedSoleroConfig()) {}
    };
    Runners.push_back(
        makeMapRunner<MapT, WeakPolicy>(Env, "Weak", 1, WritePct));
    Runners.push_back(
        makeMapRunner<MapT, UnelidedPolicy>(Env, "Unelided", 1, WritePct));
    int Rounds = static_cast<int>(Env.Args.getInt("rounds", Env.Quick ? 1 : 4));
    std::vector<BenchResult> R = runInterleavedBest(Runners, Rounds);
    double Overhead = (R[1].OpsPerSec - R[0].OpsPerSec) / R[1].OpsPerSec;
    T.addRow({Name, TablePrinter::num(R[0].OpsPerSec, 0),
              TablePrinter::num(R[1].OpsPerSec, 0),
              TablePrinter::percent(Overhead, 1),
              TablePrinter::num(R[2].OpsPerSec, 0)});
  };
  Row("HashMap 0% writes", std::type_identity<HashMapT>{}, 0);
  Row("TreeMap 0% writes", std::type_identity<TreeMapT>{}, 0);
  T.print();
  std::printf("\nPaper reference ordering overheads (Power6): HashMap 20%%, "
              "TreeMap 7%%, SPECjbb 5%%.\n");
  return 0;
}

//===- bench/MapBenchRunner.h - Map workload runners ------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the HashMap/TreeMap figure binaries.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_BENCH_MAPBENCHRUNNER_H
#define SOLERO_BENCH_MAPBENCHRUNNER_H

#include "BenchCommon.h"

#include "collections/JavaHashMap.h"
#include "collections/JavaTreeMap.h"
#include "collections/SynchronizedMap.h"
#include "workloads/MapWorkload.h"

namespace solero {

/// Runs one (map type, policy, thread count, write%) cell.
template <typename MapT, typename Policy>
BenchResult runMapBench(BenchEnv &Env, int Threads, unsigned WritePercent,
                        int NumMaps = 1, bool YieldInReadSection = false,
                        unsigned NestedWritePercent = 0) {
  using Sync = SynchronizedMap<MapT, Policy>;
  MapWorkloadParams P;
  P.KeySpace = Env.Args.getInt("keys", 1024); // paper: 1K entries
  P.WritePercent = WritePercent;
  P.NumMaps = NumMaps;
  P.Seed = Env.Seed;
  P.YieldInReadSection = YieldInReadSection;
  P.NestedWritePercent = NestedWritePercent;
  MapWorkload<Sync> W(P, [&](int) { return std::make_unique<Sync>(*Env.Ctx); });
  return runThroughput(Threads, Env.Opts, std::ref(W));
}

/// Builds a one-trial runner for interleaved comparisons (the workload —
/// including its prefilled maps — is shared across trials). Extra
/// \p PolicyArgs are forwarded to the policy constructor after the
/// runtime context: pass configs here when two runners must compare
/// configurations of the *same* policy type, so both execute the same
/// template instantiation and code-layout luck cancels out.
template <typename MapT, typename Policy, typename... PolicyArgs>
TrialRunner makeMapRunner(BenchEnv &Env, const char *Name, int Threads,
                          unsigned WritePercent, int NumMaps = 1,
                          bool YieldInReadSection = false,
                          unsigned NestedWritePercent = 0,
                          PolicyArgs &&...PA) {
  using Sync = SynchronizedMap<MapT, Policy>;
  MapWorkloadParams P;
  P.KeySpace = Env.Args.getInt("keys", 1024);
  P.WritePercent = WritePercent;
  P.NumMaps = NumMaps;
  P.Seed = Env.Seed;
  P.YieldInReadSection = YieldInReadSection;
  P.NestedWritePercent = NestedWritePercent;
  auto W = std::make_shared<MapWorkload<Sync>>(
      P, [&](int) { return std::make_unique<Sync>(*Env.Ctx, PA...); });
  HarnessOptions OneTrial = Env.Opts;
  OneTrial.Trials = 1;
  return TrialRunner{Name, [W, Threads, OneTrial] {
                       return runThroughput(Threads, OneTrial, std::ref(*W));
                     }};
}

} // namespace solero

#endif // SOLERO_BENCH_MAPBENCHRUNNER_H

//===- bench/fig10_empty_overhead.cpp - Figure 10 ------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Figure 10: lock overhead of an empty synchronized block on one thread.
/// Columns: Lock (conventional), RWLock, SOLERO, Unelided-SOLERO
/// (elision disabled), WeakBarrier-SOLERO (conventional entry fence).
/// The paper reports execution time normalized to Lock: SOLERO cuts the
/// overhead by ~50%; Unelided-SOLERO costs at most 1.4% over Lock; RWLock
/// is a ~3x multiple of Lock.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace solero;

namespace {

struct Row {
  const char *Name;
  double PaperNormalized; ///< digitized from Figure 10
  BenchResult Result;
};

template <typename Policy, typename... Cfg>
BenchResult runEmpty(BenchEnv &Env, Cfg &&...Config) {
  Policy P(*Env.Ctx, std::forward<Cfg>(Config)...);
  return runThroughput(1, Env.Opts, [&](int) {
    P.read([](ReadGuard &) { return 0; }); // empty read-only block
  });
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner("Figure 10", "Empty synchronized block lock overhead (1 thread)",
              "SOLERO halves the empty-block cost vs Lock; Unelided-SOLERO "
              "costs <= 1.4% over Lock;\nRWLock is a ~3x multiple of Lock "
              "(normalized execution time).");

  Row Rows[] = {
      {"Lock", 1.00, runEmpty<TasukiPolicy>(Env)},
      {"RWLock", 3.20, runEmpty<RwPolicy>(Env)},
      {"SOLERO", 0.50, runEmpty<SoleroPolicy>(Env)},
      {"Unelided-SOLERO", 1.014, runEmpty<SoleroPolicy>(Env,
                                                        unelidedSoleroConfig())},
      {"WeakBarrier-SOLERO", 0.40,
       runEmpty<SoleroPolicy>(Env, weakBarrierSoleroConfig())},
  };

  double LockNs =
      Rows[0].Result.Seconds * 1e9 / static_cast<double>(Rows[0].Result.Ops);
  TablePrinter T({"impl", "ns/op", "norm-time(Lock=1)", "paper-norm",
                  "rmw/op", "st/op"});
  for (const Row &R : Rows) {
    double Ns =
        R.Result.Seconds * 1e9 / static_cast<double>(R.Result.Ops);
    T.addRow({R.Name, TablePrinter::num(Ns, 1),
              TablePrinter::num(Ns / LockNs, 3),
              TablePrinter::num(R.PaperNormalized, 3),
              TablePrinter::num(R.Result.rmwPerOp(), 2),
              TablePrinter::num(R.Result.storesPerOp(), 2)});
  }
  T.print();
  std::printf("\nShape check: SOLERO < WeakBarrier threshold? elided SOLERO "
              "performs 0 rmw/op and 0 st/op\n(reads never write the lock "
              "word), Lock performs 1 rmw + 1 store per block.\n");
  return 0;
}

//===- bench/fig13_treemap_scaling.cpp - Figure 13 -------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Figure 13: multi-thread TreeMap throughput, normalized to Lock at one
/// thread. (a) 0% writes: SOLERO near-linear scalability, above both
/// other implementations; (b) 5% writes: SOLERO improves to ~8 threads
/// and stays above Lock/RWLock at every thread count; failure ratio
/// reaches 35% at 16 threads (Figure 15).
///
/// Beyond the paper: the BRAVO column and --json output, exactly as in
/// fig12_hashmap_scaling.
///
//===----------------------------------------------------------------------===//

#include "MapBenchRunner.h"

using namespace solero;

namespace {

using TreeMapT = JavaTreeMap<int64_t, int64_t>;

void runVariant(BenchEnv &Env, JsonReport &Json, const char *VariantId,
                const char *Title, unsigned WritePct,
                const std::vector<int> &Threads, int Rounds) {
  std::printf("\n--- %s ---\n", Title);
  TablePrinter T({"threads", "Lock ops/s", "RWLock ops/s", "BRAVO ops/s",
                  "SOLERO ops/s", "SOLERO norm", "RWLock rmw/op",
                  "BRAVO rmw/op", "SOLERO rmw/op", "SOLERO fail%"});
  double LockBase = 0;
  for (int N : Threads) {
    int Maps = 1;
    std::vector<TrialRunner> Runners;
    Runners.push_back(
        makeMapRunner<TreeMapT, TasukiPolicy>(Env, "Lock", N, WritePct, Maps));
    Runners.push_back(
        makeMapRunner<TreeMapT, RwPolicy>(Env, "RWLock", N, WritePct, Maps));
    Runners.push_back(makeMapRunner<TreeMapT, BravoRwPolicy>(
        Env, "BravoRW", N, WritePct, Maps));
    Runners.push_back(
        makeMapRunner<TreeMapT, SoleroPolicy>(Env, "SOLERO", N, WritePct,
                                              Maps));
    std::vector<BenchResult> R = runInterleavedBest(Runners, Rounds);
    const BenchResult &Lock = R[0], &Rw = R[1], &Bravo = R[2], &So = R[3];
    if (LockBase == 0)
      LockBase = Lock.OpsPerSec;
    T.addRow({std::to_string(N), TablePrinter::num(Lock.OpsPerSec, 0),
              TablePrinter::num(Rw.OpsPerSec, 0),
              TablePrinter::num(Bravo.OpsPerSec, 0),
              TablePrinter::num(So.OpsPerSec, 0),
              TablePrinter::num(So.OpsPerSec / LockBase, 2),
              TablePrinter::num(Rw.rmwPerOp(), 2),
              TablePrinter::num(Bravo.rmwPerOp(), 2),
              TablePrinter::num(So.rmwPerOp(), 2),
              TablePrinter::percent(So.failureRatio(), 1)});
    Json.add(VariantId, "Lock", N, Lock);
    Json.add(VariantId, "RWLock", N, Rw);
    Json.add(VariantId, "BravoRW", N, Bravo);
    Json.add(VariantId, "SOLERO", N, So);
  }
  T.print();
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner("Figure 13", "TreeMap multi-thread throughput",
              "(a) 0% writes: SOLERO near-linear and highest; (b) 5% "
              "writes: SOLERO improves to ~8\nthreads, highest at every "
              "count; 35% failure ratio at 16 threads.");
  std::vector<int> Threads = Env.threadList({1, 2, 4, 8, 16});
  int Rounds = static_cast<int>(Env.Args.getInt("rounds", Env.Quick ? 1 : 3));
  JsonReport Json("fig13");
  runVariant(Env, Json, "a", "(a) 0% writes", 0, Threads, Rounds);
  runVariant(Env, Json, "b", "(b) 5% writes", 5, Threads, Rounds);
  return Json.write(Env.JsonPath) ? 0 : 1;
}

# Runs ${ANALYZER}, captures stdout, and diffs it against ${EXPECTED}.
# Portable golden-file check (no shell pipelines in add_test).
execute_process(COMMAND ${ANALYZER}
                OUTPUT_VARIABLE ACTUAL
                RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "${ANALYZER} exited with ${RC}")
endif()
file(READ ${EXPECTED} WANT)
if(NOT ACTUAL STREQUAL WANT)
  file(WRITE ${CMAKE_CURRENT_BINARY_DIR}/analyze_module.actual "${ACTUAL}")
  message(FATAL_ERROR "analyze_module output differs from ${EXPECTED}; "
                      "actual output saved next to the test binary. If the "
                      "change is intentional, regenerate the golden file.")
endif()

# Runs ${ANALYZER}, captures stdout, and diffs it against ${EXPECTED}.
# Portable golden-file check (no shell pipelines in add_test). EXPECTED_RC
# (default 0) is the exact exit code the analyzer must produce — the full
# report includes the seeded racy guest, whose race warnings make the
# analyzer exit 1 by design.
if(NOT DEFINED EXPECTED_RC)
  set(EXPECTED_RC 0)
endif()
execute_process(COMMAND ${ANALYZER}
                OUTPUT_VARIABLE ACTUAL
                RESULT_VARIABLE RC)
if(NOT RC EQUAL ${EXPECTED_RC})
  message(FATAL_ERROR "${ANALYZER} exited with ${RC}, expected "
                      "${EXPECTED_RC}")
endif()
file(READ ${EXPECTED} WANT)
if(NOT ACTUAL STREQUAL WANT)
  file(WRITE ${CMAKE_CURRENT_BINARY_DIR}/analyze_module.actual "${ACTUAL}")
  message(FATAL_ERROR "analyze_module output differs from ${EXPECTED}; "
                      "actual output saved next to the test binary. If the "
                      "change is intentional, regenerate the golden file.")
endif()

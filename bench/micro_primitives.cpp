//===- bench/micro_primitives.cpp - google-benchmark micro suite ----------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Google-benchmark microbenchmarks of the lock primitives themselves:
/// per-protocol enter/exit latency on the uncontended fast paths, the
/// plain seqlock, epoch pins, and the read-only elision engine. These are
/// the building blocks behind Figure 10.
///
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "core/ElisionController.h"
#include "core/SoleroLock.h"
#include "jit/Interpreter.h"
#include "jit/MethodBuilder.h"
#include "locks/BravoRwLock.h"
#include "locks/ReadWriteLock.h"
#include "support/Backoff.h"
#include "locks/SeqLock.h"
#include "locks/TasukiLock.h"
#include "mm/EpochReclaimer.h"
#include "runtime/SharedField.h"

using namespace solero;

namespace {

RuntimeContext &ctx() {
  static RuntimeContext Ctx;
  return Ctx;
}

void BM_TasukiEnterExit(benchmark::State &State) {
  TasukiLock L(ctx());
  ObjectHeader H;
  for (auto _ : State) {
    L.enter(H);
    L.exit(H);
  }
}
BENCHMARK(BM_TasukiEnterExit);

void BM_TasukiRecursiveEnterExit(benchmark::State &State) {
  TasukiLock L(ctx());
  ObjectHeader H;
  L.enter(H);
  for (auto _ : State) {
    L.enter(H);
    L.exit(H);
  }
  L.exit(H);
}
BENCHMARK(BM_TasukiRecursiveEnterExit);

void BM_SoleroWriteSection(benchmark::State &State) {
  SoleroLock L(ctx());
  ObjectHeader H;
  for (auto _ : State)
    L.synchronizedWrite(H, [] {});
}
BENCHMARK(BM_SoleroWriteSection);

void BM_SoleroElidedReadSection(benchmark::State &State) {
  SoleroLock L(ctx());
  ObjectHeader H;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadOnly(H, [](ReadGuard &) { return 0; }));
}
BENCHMARK(BM_SoleroElidedReadSection);

void BM_SoleroWeakBarrierReadSection(benchmark::State &State) {
  SoleroConfig Cfg;
  Cfg.Barriers = BarrierMode::Weak;
  SoleroLock L(ctx(), Cfg);
  ObjectHeader H;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadOnly(H, [](ReadGuard &) { return 0; }));
}
BENCHMARK(BM_SoleroWeakBarrierReadSection);

void BM_SoleroUnelidedReadSection(benchmark::State &State) {
  SoleroConfig Cfg;
  Cfg.ElideReadOnly = false;
  SoleroLock L(ctx(), Cfg);
  ObjectHeader H;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadOnly(H, [](ReadGuard &) { return 0; }));
}
BENCHMARK(BM_SoleroUnelidedReadSection);

void BM_SoleroAdaptiveElidedReadSection(benchmark::State &State) {
  // Uncontended adaptive lock: stays in Elide forever; the delta vs
  // BM_SoleroElidedReadSection is the controller's bookkeeping cost.
  SoleroConfig Cfg;
  Cfg.Adaptive.Enabled = true;
  SoleroLock L(ctx(), Cfg);
  ObjectHeader H;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadOnly(H, [](ReadGuard &) { return 0; }));
}
BENCHMARK(BM_SoleroAdaptiveElidedReadSection);

void BM_SoleroAdaptiveDisabledReadSection(benchmark::State &State) {
  // Controller pinned in Disabled (skip budget too large to expire): the
  // straight-to-acquisition path write-heavy phases pay per read section.
  SoleroConfig Cfg;
  Cfg.Adaptive.Enabled = true;
  Cfg.Adaptive.DisabledSkipMin = 1u << 30;
  Cfg.Adaptive.DisabledSkipMax = 1u << 30;
  SoleroLock L(ctx(), Cfg);
  ObjectHeader H;
  ThreadState &TS = ThreadRegistry::current();
  ElisionController::Decision D{true, 1, ElisionState::Elide};
  while (L.controller().state() != ElisionState::Disabled)
    L.controller().recordOutcome(TS, D, 1, 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadOnly(H, [](ReadGuard &) { return 0; }));
}
BENCHMARK(BM_SoleroAdaptiveDisabledReadSection);

void BM_ElisionControllerRoundTrip(benchmark::State &State) {
  // beginRead + recordOutcome pair in armed steady-state Elide (one prior
  // failure): the bare controller overhead added to every adaptive read
  // section once there is anything to adapt to. Before arming the pair
  // costs one relaxed load and one thread-local compare.
  AdaptiveElisionConfig Cfg;
  Cfg.Enabled = true;
  ElisionController C(Cfg);
  ThreadState &TS = ThreadRegistry::current();
  C.recordOutcome(TS, {true, 1, ElisionState::Elide}, 1, 1); // arm
  for (auto _ : State) {
    ElisionController::Decision D = C.beginRead(TS);
    C.recordOutcome(TS, D, 1, 0);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_ElisionControllerRoundTrip);

void BM_ExpBackoffFirstPause(benchmark::State &State) {
  ExpBackoff B(16, 512);
  for (auto _ : State) {
    B.pause();
    B.reset();
  }
}
BENCHMARK(BM_ExpBackoffFirstPause);

void BM_SoleroReadMostlyNoWrite(benchmark::State &State) {
  SoleroLock L(ctx());
  ObjectHeader H;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadMostly(H, [](WriteIntent &) { return 0; }));
}
BENCHMARK(BM_SoleroReadMostlyNoWrite);

void BM_SoleroReadMostlyUpgrade(benchmark::State &State) {
  SoleroLock L(ctx());
  ObjectHeader H;
  SharedField<int64_t> D{0};
  for (auto _ : State)
    L.synchronizedReadMostly(H, [&](WriteIntent &W) {
      W.acquireForWrite();
      D.write(D.read() + 1);
      return 0;
    });
}
BENCHMARK(BM_SoleroReadMostlyUpgrade);

// --- Reader-indication isolation ------------------------------------------
// The three mechanisms the fig12 four-way comparison rests on, stripped to
// their indication cost alone: a centralized atomic RMW pair (RWLock's
// model), a BRAVO visible-readers slot store + fence pair, and SOLERO's
// fully elided read entry (BM_SoleroElidedReadSection above).

void BM_ReadIndicateCentralizedRmw(benchmark::State &State) {
  // The j.u.c.-style cost model: one RMW on shared state to arrive, one to
  // depart, both hitting the same cache line from every reader.
  static std::atomic<uint64_t> Central{0};
  for (auto _ : State) {
    Central.fetch_add(1, std::memory_order_acquire);
    Central.fetch_sub(1, std::memory_order_release);
  }
}
BENCHMARK(BM_ReadIndicateCentralizedRmw);

void BM_ReadIndicateBravoSlotStore(benchmark::State &State) {
  // BRAVO's biased publication: plain store into a thread-owned slot, a
  // store-load fence for the Dekker pairing with revocation, and the
  // release store that retires the indication.
  int LockStandIn = 0;
  BravoReaderTable::Slot &S =
      BravoReaderTable::instance().slotFor(&LockStandIn);
  for (auto _ : State) {
    S.store(&LockStandIn, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    benchmark::DoNotOptimize(S.load(std::memory_order_acquire));
    S.store(nullptr, std::memory_order_release);
  }
}
BENCHMARK(BM_ReadIndicateBravoSlotStore);

void BM_BravoRwReadSection(benchmark::State &State) {
  // Full biased read path (publication + hold bookkeeping). First
  // iteration acquires through the slow path and enables the bias.
  BravoRwLock L(ctx());
  for (auto _ : State) {
    L.readLock();
    L.readUnlock();
  }
}
BENCHMARK(BM_BravoRwReadSection);

void BM_BravoRwReadSectionUnbiased(benchmark::State &State) {
  // Bias disabled: the BRAVO layer's pass-through overhead on top of the
  // underlying centralized lock.
  BravoConfig Cfg;
  Cfg.BiasEnabled = false;
  BravoRwLock L(ctx(), Cfg);
  for (auto _ : State) {
    L.readLock();
    L.readUnlock();
  }
}
BENCHMARK(BM_BravoRwReadSectionUnbiased);

void BM_BravoRwWriteSection(benchmark::State &State) {
  // Write path with bias never re-enabled (no readers): after the first
  // revocation this must converge to BM_RwLockWriteSection.
  BravoRwLock L(ctx());
  for (auto _ : State) {
    L.writeLock();
    L.writeUnlock();
  }
}
BENCHMARK(BM_BravoRwWriteSection);

void BM_RwLockReadSection(benchmark::State &State) {
  ReadWriteLock L(ctx());
  for (auto _ : State) {
    L.readLock();
    L.readUnlock();
  }
}
BENCHMARK(BM_RwLockReadSection);

void BM_RwLockWriteSection(benchmark::State &State) {
  ReadWriteLock L(ctx());
  for (auto _ : State) {
    L.writeLock();
    L.writeUnlock();
  }
}
BENCHMARK(BM_RwLockWriteSection);

void BM_PlainSeqLockRead(benchmark::State &State) {
  SeqLock L;
  SharedField<int64_t> D{7};
  for (auto _ : State)
    benchmark::DoNotOptimize(L.readProtected([&] { return D.read(); }));
}
BENCHMARK(BM_PlainSeqLockRead);

void BM_PlainSeqLockWrite(benchmark::State &State) {
  SeqLock L;
  SharedField<int64_t> D{0};
  for (auto _ : State)
    L.writeProtected([&] { D.write(D.read() + 1); });
}
BENCHMARK(BM_PlainSeqLockWrite);

void BM_EpochPinUnpin(benchmark::State &State) {
  EpochReclaimer R;
  for (auto _ : State) {
    R.enter();
    R.exit();
  }
}
BENCHMARK(BM_EpochPinUnpin);

void BM_SpeculationCheckpointIdle(benchmark::State &State) {
  for (auto _ : State)
    speculationCheckpoint();
}
BENCHMARK(BM_SpeculationCheckpointIdle);

void BM_ThreadRegistryCurrent(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(&ThreadRegistry::current());
}
BENCHMARK(BM_ThreadRegistryCurrent);

// --- CSIR execution engine -------------------------------------------------

constexpr int64_t GuestLoopIters = 256;

/// hot(obj, n): i = acc = 0; while (i < n) { acc += obj.F0; ++i } — one of
/// each superinstruction pattern plus a back edge per iteration.
jit::Module buildHotLoop() {
  jit::MethodBuilder B("hot", 2, 4);
  auto Loop = B.newLabel(), Done = B.newLabel();
  B.constant(0).store(2).constant(0).store(3);
  B.bind(Loop);
  B.load(2).load(1).cmpLt().jumpIfZero(Done);
  B.load(3).load(0).getField(0).add().store(3);
  B.load(2).constant(1).add().store(2);
  B.jump(Loop);
  B.bind(Done);
  B.load(3).ret();
  jit::Module M;
  M.addMethod(B.take());
  return M;
}

/// Core dispatch comparison behind the A3 speedup: the same hot guest loop
/// under the pre-decoded threaded engine (Arg 1) vs the re-decoding switch
/// oracle (Arg 0). items/s = guest loop iterations.
void BM_DispatchSwitchVsThreaded(benchmark::State &State) {
  jit::Interpreter::Options Opts;
  Opts.Mode = State.range(0) ? jit::DispatchMode::Threaded
                             : jit::DispatchMode::Reference;
  jit::Interpreter I(ctx(), buildHotLoop(), Opts);
  jit::GuestObject *Obj = I.allocateObject();
  Obj->F[0].write(3);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        I.invoke(0, {jit::Value::ofRef(Obj), jit::Value::ofInt(GuestLoopIters)})
            .asInt());
  State.SetItemsProcessed(State.iterations() * GuestLoopIters);
  State.SetLabel(State.range(0) ? "threaded" : "switch");
}
BENCHMARK(BM_DispatchSwitchVsThreaded)->Arg(0)->Arg(1);

/// Guest call cost: 8 straight-line invokes of a one-add leaf per top-level
/// call. Frames come from the per-invoke arena — the items/s delta against
/// history tracks the zero-allocation call path. items/s = guest invokes.
void BM_InvokeFrameSetup(benchmark::State &State) {
  jit::Module M;
  {
    jit::MethodBuilder B("caller", 1, 1);
    for (int C = 0; C < 8; ++C)
      B.load(0).invoke(1).store(0);
    B.load(0).ret();
    M.addMethod(B.take());
  }
  {
    jit::MethodBuilder B("leaf", 1, 1);
    B.load(0).constant(1).add().ret();
    M.addMethod(B.take());
  }
  jit::Interpreter I(ctx(), std::move(M), jit::Interpreter::Options());
  for (auto _ : State)
    benchmark::DoNotOptimize(I.invoke(0, {jit::Value::ofInt(0)}).asInt());
  State.SetItemsProcessed(State.iterations() * 8);
}
BENCHMARK(BM_InvokeFrameSetup);

/// Budget + checkpoint poll cost at loop back edges: an empty countdown
/// loop is all branch, poll, and checkpoint. items/s = back edges polled.
void BM_CheckpointPollCounter(benchmark::State &State) {
  jit::MethodBuilder B("spin", 1, 1);
  auto Loop = B.newLabel(), Done = B.newLabel();
  B.bind(Loop);
  B.load(0).jumpIfZero(Done);
  B.load(0).constant(-1).add().store(0);
  B.jump(Loop);
  B.bind(Done);
  B.constant(0).ret();
  jit::Module M;
  M.addMethod(B.take());
  jit::Interpreter I(ctx(), std::move(M), jit::Interpreter::Options());
  for (auto _ : State)
    benchmark::DoNotOptimize(
        I.invoke(0, {jit::Value::ofInt(GuestLoopIters)}).asInt());
  State.SetItemsProcessed(State.iterations() * GuestLoopIters);
}
BENCHMARK(BM_CheckpointPollCounter);

} // namespace

BENCHMARK_MAIN();

//===- bench/micro_primitives.cpp - google-benchmark micro suite ----------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Google-benchmark microbenchmarks of the lock primitives themselves:
/// per-protocol enter/exit latency on the uncontended fast paths, the
/// plain seqlock, epoch pins, and the read-only elision engine. These are
/// the building blocks behind Figure 10.
///
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "core/ElisionController.h"
#include "core/SoleroLock.h"
#include "locks/ReadWriteLock.h"
#include "support/Backoff.h"
#include "locks/SeqLock.h"
#include "locks/TasukiLock.h"
#include "mm/EpochReclaimer.h"
#include "runtime/SharedField.h"

using namespace solero;

namespace {

RuntimeContext &ctx() {
  static RuntimeContext Ctx;
  return Ctx;
}

void BM_TasukiEnterExit(benchmark::State &State) {
  TasukiLock L(ctx());
  ObjectHeader H;
  for (auto _ : State) {
    L.enter(H);
    L.exit(H);
  }
}
BENCHMARK(BM_TasukiEnterExit);

void BM_TasukiRecursiveEnterExit(benchmark::State &State) {
  TasukiLock L(ctx());
  ObjectHeader H;
  L.enter(H);
  for (auto _ : State) {
    L.enter(H);
    L.exit(H);
  }
  L.exit(H);
}
BENCHMARK(BM_TasukiRecursiveEnterExit);

void BM_SoleroWriteSection(benchmark::State &State) {
  SoleroLock L(ctx());
  ObjectHeader H;
  for (auto _ : State)
    L.synchronizedWrite(H, [] {});
}
BENCHMARK(BM_SoleroWriteSection);

void BM_SoleroElidedReadSection(benchmark::State &State) {
  SoleroLock L(ctx());
  ObjectHeader H;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadOnly(H, [](ReadGuard &) { return 0; }));
}
BENCHMARK(BM_SoleroElidedReadSection);

void BM_SoleroWeakBarrierReadSection(benchmark::State &State) {
  SoleroConfig Cfg;
  Cfg.Barriers = BarrierMode::Weak;
  SoleroLock L(ctx(), Cfg);
  ObjectHeader H;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadOnly(H, [](ReadGuard &) { return 0; }));
}
BENCHMARK(BM_SoleroWeakBarrierReadSection);

void BM_SoleroUnelidedReadSection(benchmark::State &State) {
  SoleroConfig Cfg;
  Cfg.ElideReadOnly = false;
  SoleroLock L(ctx(), Cfg);
  ObjectHeader H;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadOnly(H, [](ReadGuard &) { return 0; }));
}
BENCHMARK(BM_SoleroUnelidedReadSection);

void BM_SoleroAdaptiveElidedReadSection(benchmark::State &State) {
  // Uncontended adaptive lock: stays in Elide forever; the delta vs
  // BM_SoleroElidedReadSection is the controller's bookkeeping cost.
  SoleroConfig Cfg;
  Cfg.Adaptive.Enabled = true;
  SoleroLock L(ctx(), Cfg);
  ObjectHeader H;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadOnly(H, [](ReadGuard &) { return 0; }));
}
BENCHMARK(BM_SoleroAdaptiveElidedReadSection);

void BM_SoleroAdaptiveDisabledReadSection(benchmark::State &State) {
  // Controller pinned in Disabled (skip budget too large to expire): the
  // straight-to-acquisition path write-heavy phases pay per read section.
  SoleroConfig Cfg;
  Cfg.Adaptive.Enabled = true;
  Cfg.Adaptive.DisabledSkipMin = 1u << 30;
  Cfg.Adaptive.DisabledSkipMax = 1u << 30;
  SoleroLock L(ctx(), Cfg);
  ObjectHeader H;
  ThreadState &TS = ThreadRegistry::current();
  ElisionController::Decision D{true, 1, ElisionState::Elide};
  while (L.controller().state() != ElisionState::Disabled)
    L.controller().recordOutcome(TS, D, 1, 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadOnly(H, [](ReadGuard &) { return 0; }));
}
BENCHMARK(BM_SoleroAdaptiveDisabledReadSection);

void BM_ElisionControllerRoundTrip(benchmark::State &State) {
  // beginRead + recordOutcome pair in armed steady-state Elide (one prior
  // failure): the bare controller overhead added to every adaptive read
  // section once there is anything to adapt to. Before arming the pair
  // costs one relaxed load and one thread-local compare.
  AdaptiveElisionConfig Cfg;
  Cfg.Enabled = true;
  ElisionController C(Cfg);
  ThreadState &TS = ThreadRegistry::current();
  C.recordOutcome(TS, {true, 1, ElisionState::Elide}, 1, 1); // arm
  for (auto _ : State) {
    ElisionController::Decision D = C.beginRead(TS);
    C.recordOutcome(TS, D, 1, 0);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_ElisionControllerRoundTrip);

void BM_ExpBackoffFirstPause(benchmark::State &State) {
  ExpBackoff B(16, 512);
  for (auto _ : State) {
    B.pause();
    B.reset();
  }
}
BENCHMARK(BM_ExpBackoffFirstPause);

void BM_SoleroReadMostlyNoWrite(benchmark::State &State) {
  SoleroLock L(ctx());
  ObjectHeader H;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadMostly(H, [](WriteIntent &) { return 0; }));
}
BENCHMARK(BM_SoleroReadMostlyNoWrite);

void BM_SoleroReadMostlyUpgrade(benchmark::State &State) {
  SoleroLock L(ctx());
  ObjectHeader H;
  SharedField<int64_t> D{0};
  for (auto _ : State)
    L.synchronizedReadMostly(H, [&](WriteIntent &W) {
      W.acquireForWrite();
      D.write(D.read() + 1);
      return 0;
    });
}
BENCHMARK(BM_SoleroReadMostlyUpgrade);

void BM_RwLockReadSection(benchmark::State &State) {
  ReadWriteLock L(ctx());
  for (auto _ : State) {
    L.readLock();
    L.readUnlock();
  }
}
BENCHMARK(BM_RwLockReadSection);

void BM_RwLockWriteSection(benchmark::State &State) {
  ReadWriteLock L(ctx());
  for (auto _ : State) {
    L.writeLock();
    L.writeUnlock();
  }
}
BENCHMARK(BM_RwLockWriteSection);

void BM_PlainSeqLockRead(benchmark::State &State) {
  SeqLock L;
  SharedField<int64_t> D{7};
  for (auto _ : State)
    benchmark::DoNotOptimize(L.readProtected([&] { return D.read(); }));
}
BENCHMARK(BM_PlainSeqLockRead);

void BM_PlainSeqLockWrite(benchmark::State &State) {
  SeqLock L;
  SharedField<int64_t> D{0};
  for (auto _ : State)
    L.writeProtected([&] { D.write(D.read() + 1); });
}
BENCHMARK(BM_PlainSeqLockWrite);

void BM_EpochPinUnpin(benchmark::State &State) {
  EpochReclaimer R;
  for (auto _ : State) {
    R.enter();
    R.exit();
  }
}
BENCHMARK(BM_EpochPinUnpin);

void BM_SpeculationCheckpointIdle(benchmark::State &State) {
  for (auto _ : State)
    speculationCheckpoint();
}
BENCHMARK(BM_SpeculationCheckpointIdle);

void BM_ThreadRegistryCurrent(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(&ThreadRegistry::current());
}
BENCHMARK(BM_ThreadRegistryCurrent);

} // namespace

BENCHMARK_MAIN();

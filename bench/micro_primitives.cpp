//===- bench/micro_primitives.cpp - google-benchmark micro suite ----------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Google-benchmark microbenchmarks of the lock primitives themselves:
/// per-protocol enter/exit latency on the uncontended fast paths, the
/// plain seqlock, epoch pins, and the read-only elision engine. These are
/// the building blocks behind Figure 10.
///
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "core/SoleroLock.h"
#include "locks/ReadWriteLock.h"
#include "locks/SeqLock.h"
#include "locks/TasukiLock.h"
#include "mm/EpochReclaimer.h"
#include "runtime/SharedField.h"

using namespace solero;

namespace {

RuntimeContext &ctx() {
  static RuntimeContext Ctx;
  return Ctx;
}

void BM_TasukiEnterExit(benchmark::State &State) {
  TasukiLock L(ctx());
  ObjectHeader H;
  for (auto _ : State) {
    L.enter(H);
    L.exit(H);
  }
}
BENCHMARK(BM_TasukiEnterExit);

void BM_TasukiRecursiveEnterExit(benchmark::State &State) {
  TasukiLock L(ctx());
  ObjectHeader H;
  L.enter(H);
  for (auto _ : State) {
    L.enter(H);
    L.exit(H);
  }
  L.exit(H);
}
BENCHMARK(BM_TasukiRecursiveEnterExit);

void BM_SoleroWriteSection(benchmark::State &State) {
  SoleroLock L(ctx());
  ObjectHeader H;
  for (auto _ : State)
    L.synchronizedWrite(H, [] {});
}
BENCHMARK(BM_SoleroWriteSection);

void BM_SoleroElidedReadSection(benchmark::State &State) {
  SoleroLock L(ctx());
  ObjectHeader H;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadOnly(H, [](ReadGuard &) { return 0; }));
}
BENCHMARK(BM_SoleroElidedReadSection);

void BM_SoleroWeakBarrierReadSection(benchmark::State &State) {
  SoleroConfig Cfg;
  Cfg.Barriers = BarrierMode::Weak;
  SoleroLock L(ctx(), Cfg);
  ObjectHeader H;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadOnly(H, [](ReadGuard &) { return 0; }));
}
BENCHMARK(BM_SoleroWeakBarrierReadSection);

void BM_SoleroUnelidedReadSection(benchmark::State &State) {
  SoleroConfig Cfg;
  Cfg.ElideReadOnly = false;
  SoleroLock L(ctx(), Cfg);
  ObjectHeader H;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadOnly(H, [](ReadGuard &) { return 0; }));
}
BENCHMARK(BM_SoleroUnelidedReadSection);

void BM_SoleroReadMostlyNoWrite(benchmark::State &State) {
  SoleroLock L(ctx());
  ObjectHeader H;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.synchronizedReadMostly(H, [](WriteIntent &) { return 0; }));
}
BENCHMARK(BM_SoleroReadMostlyNoWrite);

void BM_SoleroReadMostlyUpgrade(benchmark::State &State) {
  SoleroLock L(ctx());
  ObjectHeader H;
  SharedField<int64_t> D{0};
  for (auto _ : State)
    L.synchronizedReadMostly(H, [&](WriteIntent &W) {
      W.acquireForWrite();
      D.write(D.read() + 1);
      return 0;
    });
}
BENCHMARK(BM_SoleroReadMostlyUpgrade);

void BM_RwLockReadSection(benchmark::State &State) {
  ReadWriteLock L(ctx());
  for (auto _ : State) {
    L.readLock();
    L.readUnlock();
  }
}
BENCHMARK(BM_RwLockReadSection);

void BM_RwLockWriteSection(benchmark::State &State) {
  ReadWriteLock L(ctx());
  for (auto _ : State) {
    L.writeLock();
    L.writeUnlock();
  }
}
BENCHMARK(BM_RwLockWriteSection);

void BM_PlainSeqLockRead(benchmark::State &State) {
  SeqLock L;
  SharedField<int64_t> D{7};
  for (auto _ : State)
    benchmark::DoNotOptimize(L.readProtected([&] { return D.read(); }));
}
BENCHMARK(BM_PlainSeqLockRead);

void BM_PlainSeqLockWrite(benchmark::State &State) {
  SeqLock L;
  SharedField<int64_t> D{0};
  for (auto _ : State)
    L.writeProtected([&] { D.write(D.read() + 1); });
}
BENCHMARK(BM_PlainSeqLockWrite);

void BM_EpochPinUnpin(benchmark::State &State) {
  EpochReclaimer R;
  for (auto _ : State) {
    R.enter();
    R.exit();
  }
}
BENCHMARK(BM_EpochPinUnpin);

void BM_SpeculationCheckpointIdle(benchmark::State &State) {
  for (auto _ : State)
    speculationCheckpoint();
}
BENCHMARK(BM_SpeculationCheckpointIdle);

void BM_ThreadRegistryCurrent(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(&ThreadRegistry::current());
}
BENCHMARK(BM_ThreadRegistryCurrent);

} // namespace

BENCHMARK_MAIN();

//===- bench/table1_lock_stats.cpp - Table 1 -------------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Table 1: lock statistics of every benchmark — lock frequency (millions
/// of critical-section entries per second) and the ratio of read-only
/// synchronized blocks. Measured under the SOLERO protocol on one thread
/// (per-thread frequency; the paper measured whole-machine frequency on
/// 16 cores — see EXPERIMENTS.md for the comparison rule).
///
//===----------------------------------------------------------------------===//

#include "MapBenchRunner.h"

#include "workloads/DaCapoLikeWorkload.h"
#include "workloads/JbbWorkload.h"

using namespace solero;

namespace {

using HashMapT = JavaHashMap<int64_t, int64_t>;
using TreeMapT = JavaTreeMap<int64_t, int64_t>;

struct PaperRow {
  const char *Name;
  double PaperFreq; ///< millions of locks per second (Table 1)
  double PaperRo;   ///< read-only percentage (Table 1)
};

void addRow(TablePrinter &T, const PaperRow &P, const BenchResult &R) {
  T.addRow({P.Name, TablePrinter::num(R.locksPerSec() / 1e6, 2),
            TablePrinter::num(P.PaperFreq, 1),
            TablePrinter::percent(R.readOnlyRatio(), 1),
            TablePrinter::num(P.PaperRo, 1) + "%"});
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner("Table 1", "Lock statistics per benchmark",
              "Lock frequency (M locks/s) and read-only lock ratio: Empty "
              "12.8/100%, HashMap 5.4/100%\nand 5.3/95%, TreeMap 1.7/100% "
              "and 1.6/95%, SPECjbb 6.2/53.6%, h2 2.0/0%, tomcat 7.3/3.7%,\n"
              "tradebeans 1.7/0.3%, tradesoap 3.4/11.4%.");
  TablePrinter T({"benchmark", "lockM/s", "paper lockM/s", "read-only%",
                  "paper read-only%"});

  {
    SoleroPolicy P(*Env.Ctx);
    BenchResult R = runThroughput(1, Env.Opts, [&](int) {
      P.read([](ReadGuard &) { return 0; });
    });
    addRow(T, {"Empty", 12.8, 100.0}, R);
  }
  addRow(T, {"HashMap (0% writes)", 5.4, 100.0},
         runMapBench<HashMapT, SoleroPolicy>(Env, 1, 0));
  addRow(T, {"HashMap (5% writes)", 5.3, 95.0},
         runMapBench<HashMapT, SoleroPolicy>(Env, 1, 5));
  addRow(T, {"TreeMap (0% writes)", 1.7, 100.0},
         runMapBench<TreeMapT, SoleroPolicy>(Env, 1, 0));
  addRow(T, {"TreeMap (5% writes)", 1.6, 95.0},
         runMapBench<TreeMapT, SoleroPolicy>(Env, 1, 5));
  {
    JbbParams P;
    P.Warehouses = 1;
    P.Seed = Env.Seed;
    JbbWorkload<SoleroPolicy> W(*Env.Ctx, P);
    addRow(T, {"SPECjbb-like", 6.2, 53.6},
           runThroughput(1, Env.Opts, std::ref(W)));
  }
  const PaperRow DaCapoRows[] = {{"h2-like", 2.0, 0.0},
                                 {"tomcat-like", 7.3, 3.7},
                                 {"tradebeans-like", 1.7, 0.3},
                                 {"tradesoap-like", 3.4, 11.4}};
  for (int I = 0; I < 4; ++I) {
    DaCapoLikeWorkload<SoleroPolicy> W(*Env.Ctx, DaCapoProfiles[I], 64,
                                       Env.Seed);
    addRow(T, DaCapoRows[I], runThroughput(1, Env.Opts, std::ref(W)));
  }
  T.print();

  if (Env.Args.getBool("bravo", false)) {
    // Reader-indication observability (beyond the paper): the same map
    // traffic under the centralized RWLock vs the BRAVO-biased lock.
    // rmw/op vs st/op is the whole story — BRAVO converts the shared-state
    // CAS pair per read into two plain slot stores — and "revocations"
    // shows the adaptive policy charging writers for the bias.
    int Threads = static_cast<int>(Env.Args.getInt("bravo-threads", 2));
    std::printf("\n--- RWLock vs BravoRW lock statistics (--bravo, %d "
                "threads) ---\n",
                Threads);
    TablePrinter B({"workload", "protocol", "ops/s", "lockM/s", "rmw/op",
                    "st/op", "read-only%"});
    const struct {
      const char *Name;
      unsigned WritePercent;
    } Rows[] = {{"HashMap 0% writes", 0},
                {"HashMap 5% writes", 5},
                {"HashMap 100% writes", 100}};
    for (const auto &Row : Rows) {
      BenchResult Rw = runMapBench<HashMapT, RwPolicy>(Env, Threads,
                                                       Row.WritePercent);
      BenchResult Bravo = runMapBench<HashMapT, BravoRwPolicy>(
          Env, Threads, Row.WritePercent);
      for (const auto &Cell :
           {std::make_pair("RWLock", &Rw), std::make_pair("BravoRW", &Bravo)})
        B.addRow({Row.Name, Cell.first,
                  TablePrinter::num(Cell.second->OpsPerSec, 0),
                  TablePrinter::num(Cell.second->locksPerSec() / 1e6, 2),
                  TablePrinter::num(Cell.second->rmwPerOp(), 2),
                  TablePrinter::num(Cell.second->storesPerOp(), 2),
                  TablePrinter::percent(Cell.second->readOnlyRatio(), 1)});
    }
    B.print();
  }

  if (Env.Args.getBool("adaptive", false)) {
    // Controller observability (beyond the paper): per-state speculation
    // attempts and policy transitions of Adaptive-SOLERO on map traffic
    // with a dialled share of misclassified-read-only sections (nested
    // same-lock write inside the read section — the deterministic failure
    // source, see fig15 --adaptive). thr/dis/rep/ren = throttle / disable /
    // re-probe / re-enable transition counts.
    RuntimeConfig Patient;
    Patient.Tiers = SpinTiers{64, 32, 1 << 14};
    Env.Ctx = std::make_unique<RuntimeContext>(Patient);
    int Threads =
        static_cast<int>(Env.Args.getInt("adaptive-threads", 2));
    std::printf("\n--- Adaptive-SOLERO controller decisions (--adaptive, %d "
                "threads) ---\n",
                Threads);
    TablePrinter A({"workload", "ops/s", "fail%", "spec-skip%", "attempts",
                    "throttled", "reprobe", "thr/dis/rep/ren"});
    const struct {
      const char *Name;
      unsigned NestedWritePercent;
    } Rows[] = {{"HashMap 5% nested-write", 5},
                {"HashMap 50% nested-write", 50}};
    for (const auto &Row : Rows) {
      BenchResult R = runMapBench<HashMapT, AdaptiveSoleroPolicy>(
          Env, Threads, /*WritePercent=*/0, 1, /*YieldInReadSection=*/false,
          Row.NestedWritePercent);
      A.addRow({Row.Name, TablePrinter::num(R.OpsPerSec, 0),
                TablePrinter::percent(R.failureRatio(), 1),
                TablePrinter::percent(R.skipRatio(), 1),
                std::to_string(R.Delta.ElisionAttempts.value()),
                std::to_string(R.Delta.ThrottledAttempts.value()),
                std::to_string(R.Delta.ReprobeAttempts.value()),
                R.controllerTransitions()});
    }
    A.print();
  }
  return 0;
}

//===- bench/ablate_read_mostly.cpp - Section 5 extension ------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// The read-mostly extension (Section 5, Figure 17) has no figure in the
/// paper; this ablation quantifies it. Critical sections that *might*
/// write (with probability p) are run three ways:
///
///   Lock        — conventional acquisition every time
///   BravoRW     — BRAVO-biased RW lock: read section when the op will not
///                 write, write section when it will (beyond the paper)
///   SOLERO-W    — classified writing (SOLERO without the extension)
///   SOLERO-RM   — read-mostly: elide, upgrade with one CAS when a write
///                 actually happens
///
/// Expectation: SOLERO-RM approaches read-only elision as p -> 0 and
/// degrades gracefully toward SOLERO-W as p grows; BRAVO tracks the
/// read-only cost at p = 0 and its adaptive bias-disable keeps the
/// write-heavy end near the plain RW lock.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "locks/BravoRwLock.h"
#include "runtime/SharedField.h"
#include "support/Rng.h"

using namespace solero;

namespace {

struct Shared {
  ObjectHeader Monitor;
  SharedField<int64_t> A{0}, B{0};
};

struct Fixture {
  explicit Fixture(RuntimeContext &Ctx, SoleroConfig Cfg = SoleroConfig())
      : Tasuki(Ctx), Solero(Ctx, Cfg), Bravo(Ctx) {}
  TasukiLock Tasuki;
  SoleroLock Solero;
  BravoRwLock Bravo;
  Shared Data;
  CacheLinePadded<Xoshiro256StarStar> Rngs[64];
};

enum class Mode { Lock, BravoRw, SoleroWrite, SoleroReadMostly };

BenchResult run(BenchEnv &Env, Fixture &F, Mode M, int Threads,
                unsigned WritePercent) {
  for (int T = 0; T < 64; ++T)
    *F.Rngs[T] = Xoshiro256StarStar(Env.Seed + static_cast<uint64_t>(T));
  HarnessOptions OneTrial = Env.Opts;
  return runThroughput(Threads, OneTrial, [&F, M, WritePercent](int T) {
    Xoshiro256StarStar &Rng = *F.Rngs[T];
    bool DoWrite = Rng.nextBounded(1000) < WritePercent * 10;
    switch (M) {
    case Mode::Lock:
      F.Tasuki.synchronizedWrite(F.Data.Monitor, [&] {
        int64_t V = F.Data.A.read();
        if (DoWrite) {
          F.Data.A.write(V + 1);
          F.Data.B.write(V + 1);
        }
      });
      break;
    case Mode::BravoRw:
      // The RW shape: the op knows up front whether it writes, so reads
      // take the (biased) read path and writes the exclusive path.
      if (DoWrite) {
        F.Bravo.synchronizedWrite([&] {
          int64_t V = F.Data.A.read();
          F.Data.A.write(V + 1);
          F.Data.B.write(V + 1);
        });
      } else {
        F.Bravo.synchronizedReadOnly(
            [&](ReadGuard &) { return F.Data.A.read(); });
      }
      break;
    case Mode::SoleroWrite:
      F.Solero.synchronizedWrite(F.Data.Monitor, [&] {
        int64_t V = F.Data.A.read();
        if (DoWrite) {
          F.Data.A.write(V + 1);
          F.Data.B.write(V + 1);
        }
      });
      break;
    case Mode::SoleroReadMostly:
      F.Solero.synchronizedReadMostly(F.Data.Monitor, [&](WriteIntent &W) {
        int64_t V = F.Data.A.read();
        if (DoWrite) {
          W.acquireForWrite();
          F.Data.A.write(V + 1);
          F.Data.B.write(V + 1);
        }
      });
      break;
    }
  });
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner("Ablation A1", "Read-mostly extension (Section 5, Figure 17)",
              "No paper figure; expectation: read-mostly approaches elided "
              "read-only cost as the write\nprobability approaches zero.");
  int Threads = static_cast<int>(Env.Args.getInt("app-threads", 1));
  JsonReport Json("ablate_read_mostly");
  TablePrinter T({"write%", "Lock ops/s", "BravoRW ops/s", "SOLERO-W ops/s",
                  "SOLERO-RM ops/s", "RM/Lock", "RM rmw/op", "RM fail%"});
  for (unsigned W : {0u, 1u, 5u, 20u, 50u, 100u}) {
    Fixture F(*Env.Ctx);
    BenchResult L = run(Env, F, Mode::Lock, Threads, W);
    BenchResult BR = run(Env, F, Mode::BravoRw, Threads, W);
    BenchResult SW = run(Env, F, Mode::SoleroWrite, Threads, W);
    BenchResult RM = run(Env, F, Mode::SoleroReadMostly, Threads, W);
    T.addRow({std::to_string(W), TablePrinter::num(L.OpsPerSec, 0),
              TablePrinter::num(BR.OpsPerSec, 0),
              TablePrinter::num(SW.OpsPerSec, 0),
              TablePrinter::num(RM.OpsPerSec, 0),
              TablePrinter::num(RM.OpsPerSec / L.OpsPerSec, 2),
              TablePrinter::num(RM.rmwPerOp(), 2),
              TablePrinter::percent(RM.failureRatio(), 2)});
    std::string Variant = "write" + std::to_string(W);
    Json.add(Variant, "Lock", Threads, L);
    Json.add(Variant, "BravoRW", Threads, BR);
    Json.add(Variant, "SOLERO-W", Threads, SW);
    Json.add(Variant, "SOLERO-RM", Threads, RM);
  }
  T.print();
  return Json.write(Env.JsonPath) ? 0 : 1;
}

//===- bench/ablate_classifier.cpp - Escape-analysis ablation -------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Ablation A6: what the escape analysis buys the classifier. The snapshot
/// guest allocates a result holder *inside* its synchronized block and
/// fills it in — the "allocate, fill, read back" idiom. Under the plain
/// Section 3.2 rules those putfields disqualify the region; with escape
/// analysis the holder is provably region-local, the region is ReadOnly,
/// and the hot 95% read path elides instead of taking the lock.
///
/// The report has two parts: the static reclassification count (regions
/// that flip Writing -> ReadOnly when escape analysis turns on) and the
/// guest throughput delta between the two classifier configurations on
/// otherwise identical runtimes.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "GuestPrograms.h"

#include "jit/Interpreter.h"

#include "support/Rng.h"

using namespace solero;
using namespace solero::jit;

namespace {

struct GuestRunner {
  GuestRunner(RuntimeContext &Ctx, bool EscapeOn, DispatchMode Mode,
              uint64_t Seed)
      : Seed(Seed) {
    Interpreter::Options Opts;
    Opts.Mode = Mode;
    Opts.Classifier.EscapeAnalysis = EscapeOn;
    Interp =
        std::make_unique<Interpreter>(Ctx, bench::buildSnapshotGuest(), Opts);
    Config = Interp->allocateObject();
    for (int T = 0; T < 64; ++T)
      *Rngs[T] = Xoshiro256StarStar(Seed + static_cast<uint64_t>(T));
  }

  void operator()(int T) {
    Xoshiro256StarStar &Rng = *Rngs[T];
    if (Rng.nextPercent(5))
      Interp->invoke(1, {Value::ofRef(Config),
                         Value::ofInt(static_cast<int64_t>(Rng.next() >> 8))});
    else
      Sink += Interp->invoke(0, {Value::ofRef(Config)}).asInt();
  }

  uint64_t Seed;
  std::unique_ptr<Interpreter> Interp;
  GuestObject *Config = nullptr;
  CacheLinePadded<Xoshiro256StarStar> Rngs[64];
  std::atomic<int64_t> Sink{0};
};

/// Counts regions per kind under one classifier configuration.
struct KindCounts {
  unsigned ReadOnly = 0, ReadMostly = 0, Writing = 0;
};

KindCounts countKinds(const Module &M, const ClassifierOptions &Opts) {
  ClassifiedModule C = classifyModule(M, nullptr, Opts);
  KindCounts K;
  for (uint32_t Id = 0; Id < M.methodCount(); ++Id)
    for (const ClassifiedRegion &R : C.regions(Id))
      switch (R.Kind) {
      case RegionKind::ReadOnly:
        ++K.ReadOnly;
        break;
      case RegionKind::ReadMostly:
        ++K.ReadMostly;
        break;
      case RegionKind::Writing:
        ++K.Writing;
        break;
      }
  return K;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchEnv Env(Argc, Argv);
  printBanner("Ablation A6", "Escape analysis in the read-only classifier",
              "writes are allowed in elided sections only when they "
              "provably target region-local\nallocations; everything else "
              "must lock (Section 3.2).");
  // Default 1 app thread: the guest allocates inside the region, and on
  // the 1-vCPU host two concurrently *eliding* threads contend on the
  // allocator while the conventional lock serializes them for free —
  // a scheduler artifact, not a protocol cost (see EXPERIMENTS.md). The
  // rmw/op column is the host-independent signal either way.
  int Threads = static_cast<int>(Env.Args.getInt("app-threads", 1));
  int Rounds = static_cast<int>(Env.Args.getInt("rounds", Env.Quick ? 1 : 4));

  // Part 1: static reclassification on the snapshot guest.
  Module Guest = bench::buildSnapshotGuest();
  ClassifierOptions Off;
  Off.EscapeAnalysis = false;
  KindCounts Plain = countKinds(Guest, Off);
  KindCounts Esc = countKinds(Guest, ClassifierOptions{});
  std::printf("\nstatic reclassification (snapshot guest):\n");
  std::printf("  escape analysis off: %u ReadOnly, %u Writing\n",
              Plain.ReadOnly, Plain.Writing);
  std::printf("  escape analysis on:  %u ReadOnly, %u Writing\n", Esc.ReadOnly,
              Esc.Writing);
  std::printf("  regions reclassified Writing -> ReadOnly: %u\n\n",
              Esc.ReadOnly - Plain.ReadOnly);

  // Part 2: guest throughput, 95% snapshot / 5% update, identical runtimes
  // except for the classifier knob.
  struct Config {
    const char *Name;
    bool EscapeOn;
    DispatchMode Mode;
  };
  const Config Configs[] = {
      {"no escape / switch", false, DispatchMode::Reference},
      {"escape / switch", true, DispatchMode::Reference},
      {"no escape / threaded", false, DispatchMode::Threaded},
      {"escape / threaded", true, DispatchMode::Threaded},
  };
  HarnessOptions OneTrial = Env.Opts;
  OneTrial.Trials = 1;
  std::vector<TrialRunner> Runners;
  for (const Config &C : Configs) {
    auto R = std::make_shared<GuestRunner>(*Env.Ctx, C.EscapeOn, C.Mode,
                                           Env.Seed);
    Runners.push_back(TrialRunner{C.Name, [R, Threads, OneTrial] {
      return runThroughput(Threads, OneTrial, std::ref(*R));
    }});
  }
  std::vector<BenchResult> R = runInterleavedBest(Runners, Rounds);

  TablePrinter T({"classifier", "guest tx/s", "rmw/op", "st/op",
                  "elide succ/op", "fail%"});
  for (std::size_t I = 0; I < 4; ++I)
    T.addRow({Configs[I].Name, TablePrinter::num(R[I].OpsPerSec, 0),
              TablePrinter::num(R[I].rmwPerOp(), 2),
              TablePrinter::num(R[I].storesPerOp(), 2),
              TablePrinter::num(
                  R[I].Ops ? static_cast<double>(R[I].Delta.ElisionSuccesses) /
                                 static_cast<double>(R[I].Ops)
                           : 0,
                  2),
              TablePrinter::percent(R[I].failureRatio(), 2)});
  T.print();
  std::printf("\nescape/no-escape = %.3f (switch), %.3f (threaded); with the "
              "holder writes proven\nregion-local the 95%% snapshot path "
              "elides instead of locking.\n",
              R[1].OpsPerSec / R[0].OpsPerSec,
              R[3].OpsPerSec / R[2].OpsPerSec);
  return 0;
}

#!/usr/bin/env python3
"""Memory-order audit for the lock-word hot paths (ISSUE PR 10).

Every std::atomic operation in the audited directories must spell its
memory order explicitly: a defaulted argument silently means seq_cst,
which on the SOLERO fast paths is the difference between a plain MOV and
an MFENCE-class instruction — and, the other way around, a *deliberate*
seq_cst that looks accidental is exactly the kind of fence DESIGN.md §4
and §18 need to be able to point at. Bare `volatile` is banned outright
(it is neither atomic nor ordered; the codebase uses std::atomic).

The scanner is textual but multi-line aware: it finds atomic member-call
heads (`.load(`, `.store(`, `.exchange(`, `.fetch_*(`,
`.compare_exchange_*(`) plus `atomic_thread_fence(`/`atomic_signal_fence(`
after stripping comments and string literals, extracts the balanced
argument list even when it spans lines, and checks that a
`std::memory_order_*` (or `memory_order::`) token appears among the
arguments. compare_exchange calls must name *two* orders (success and
failure) — the single-order overload derives the failure order silently.

Deliberate exceptions carry an inline annotation on the line of the call
head (or the preceding line):

    // atomics-lint: allow(<reason>)

Usage:
    tools/atomics_lint.py [--root=REPO] [DIR...]   # default audited dirs
    tools/atomics_lint.py --self-test

Exit status: 0 clean, 1 findings, 2 usage/self-test failure.
"""

import re
import sys
from pathlib import Path

AUDITED_DIRS = ["src/core", "src/locks", "src/resilience"]
SUFFIXES = {".h", ".cpp"}

CALL_HEAD = re.compile(
    r"""(?:
          [.\->]\s*(?P<member>load|store|exchange|
                    fetch_add|fetch_sub|fetch_or|fetch_and|fetch_xor|
                    compare_exchange_weak|compare_exchange_strong)
        | \b(?P<free>(?:std\s*::\s*)?atomic_(?:thread|signal)_fence)
        )\s*\(""",
    re.VERBOSE,
)
ORDER_TOKEN = re.compile(r"\bmemory_order(?:_\w+|\s*::\s*\w+)\b")
ALLOW = re.compile(r"atomics-lint:\s*allow\(")
VOLATILE = re.compile(r"\bvolatile\b")


def strip_noncode(text):
    """Blanks comments and string/char literals, preserving newlines and
    column positions — except that `atomics-lint: allow(...)` annotations
    are kept (they live in comments). Raw strings are not used in the
    audited sources, so only the ordinary forms are handled."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        two = text[i : i + 2]
        if two == "//":
            j = text.find("\n", i)
            j = n if j == -1 else j
            comment = text[i:j]
            out.append(comment if ALLOW.search(comment) else " " * len(comment))
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            kept = chunk if ALLOW.search(chunk) else re.sub(r"[^\n]", " ", chunk)
            out.append(kept)
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j = j + 2 if text[j] == "\\" else j + 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def balanced_args(text, open_paren):
    """Returns the argument text between the paren at `open_paren` and its
    match, or None when unbalanced (truncated file)."""
    depth = 0
    for j in range(open_paren, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : j]
    return None


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def allowed(lines, lineno):
    """True when the call-head line or the one above carries an
    atomics-lint allow annotation."""
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(lines) and ALLOW.search(lines[ln - 1]):
            return True
    return False


def lint_text(text, path="<memory>"):
    findings = []
    code = strip_noncode(text)
    lines = code.splitlines()
    for m in CALL_HEAD.finditer(code):
        callee = m.group("member") or m.group("free")
        lineno = line_of(code, m.start())
        args = balanced_args(code, m.end() - 1)
        if args is None:
            findings.append((path, lineno, f"{callee}: unbalanced call"))
            continue
        orders = len(ORDER_TOKEN.findall(args))
        need = 2 if callee.startswith("compare_exchange") else 1
        if orders >= need or allowed(lines, lineno):
            continue
        if orders == 0:
            findings.append(
                (path, lineno,
                 f"{callee}: no explicit memory order (defaults to "
                 "seq_cst); spell it out or annotate "
                 "// atomics-lint: allow(<reason>)"))
        else:
            findings.append(
                (path, lineno,
                 f"{callee}: only one memory order named; the "
                 "compare_exchange failure order is derived silently — "
                 "pass both"))
    for i, line in enumerate(code.splitlines(), start=1):
        if VOLATILE.search(line) and not allowed(lines, i):
            findings.append(
                (path, i,
                 "bare volatile: neither atomic nor ordered — use "
                 "std::atomic with explicit memory orders"))
    return findings


def self_test():
    bad = """
        V = W.load();
        W.store(1);
        W.fetch_add(1) ;
        if (W.compare_exchange_strong(E, N)) {}
        if (W.compare_exchange_weak(E, N,
                                    std::memory_order_acq_rel)) {}
        std::atomic_thread_fence();
        volatile int X = 0;
    """
    good = """
        V = W.load(std::memory_order_acquire);
        W.store(1, std::memory_order_release);  // string: "W.store(2);"
        W.fetch_add(1, std::memory_order::relaxed);
        if (W.compare_exchange_strong(E, N, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {}
        std::atomic_thread_fence(std::memory_order_seq_cst);
        W.store(1); // atomics-lint: allow(test exception)
        // atomics-lint: allow(annotation on the preceding line)
        W.load();
        // comment: W.store(3); volatile — stripped, not a finding
    """
    bad_found = lint_text(bad, "bad")
    good_found = lint_text(good, "good")
    ok = len(bad_found) == 7 and not good_found
    if not ok:
        print(f"self-test FAILED: bad={len(bad_found)} (want 7), "
              f"good={len(good_found)} (want 0)")
        for f in bad_found + good_found:
            print("  %s:%d: %s" % f)
        return 2
    print("self-test OK")
    return 0


def main(argv):
    root = Path(".")
    dirs = []
    for arg in argv[1:]:
        if arg == "--self-test":
            return self_test()
        if arg.startswith("--root="):
            root = Path(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            print(f"atomics_lint: unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            dirs.append(arg)
    dirs = dirs or AUDITED_DIRS

    findings = []
    scanned = 0
    for d in dirs:
        base = root / d
        if not base.is_dir():
            print(f"atomics_lint: no such directory {base}", file=sys.stderr)
            return 2
        for p in sorted(base.rglob("*")):
            if p.suffix in SUFFIXES:
                scanned += 1
                findings.extend(
                    lint_text(p.read_text(), str(p.relative_to(root))))
    for path, lineno, msg in findings:
        print(f"{path}:{lineno}: {msg}")
    print(f"atomics_lint: {scanned} files, {len(findings)} findings")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

//===- workloads/Harness.h - Throughput benchmark harness -------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement harness behind every table/figure binary. Reproduces
/// the paper's methodology (Section 4.1): per configuration it runs R
/// trials, inside each trial measures the throughput of a fixed window,
/// and reports the best score; results also carry the protocol-counter
/// deltas (atomic RMWs, lock-word stores, elision outcomes) that serve as
/// the coherence-traffic proxies discussed in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_WORKLOADS_HARNESS_H
#define SOLERO_WORKLOADS_HARNESS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/ThreadRegistry.h"
#include "support/Barrier.h"
#include "support/Stats.h"
#include "support/Stopwatch.h"

namespace solero {

/// One measured window.
struct BenchResult {
  double OpsPerSec = 0;
  uint64_t Ops = 0;
  double Seconds = 0;
  ProtocolCounters Delta; ///< protocol counters accumulated in the window

  /// Elision failure ratio (Figure 15): failures / attempts. The explicit
  /// attempts==0 guard (belt to safeRatio's braces) keeps a zero-attempt
  /// variant from ever feeding NaN into the JSON emitters.
  double failureRatio() const {
    if (Delta.ElisionAttempts.value() == 0)
      return 0.0;
    return safeRatio(Delta.ElisionFailures, Delta.ElisionAttempts);
  }

  /// Atomic RMW operations per workload op — the coherence-traffic proxy.
  double rmwPerOp() const { return safeRatio(Delta.AtomicRmws, Ops); }

  /// Lock-word stores per workload op.
  double storesPerOp() const { return safeRatio(Delta.LockWordStores, Ops); }

  /// Ratio of read-only critical-section entries (Table 1 column 3).
  double readOnlyRatio() const {
    return safeRatio(Delta.ReadOnlyEntries,
                     Delta.WriteEntries + Delta.ReadOnlyEntries);
  }

  /// Critical-section entries per second (Table 1 column 2).
  double locksPerSec() const {
    return Seconds == 0
               ? 0.0
               : static_cast<double>(Delta.WriteEntries +
                                     Delta.ReadOnlyEntries) /
                     Seconds;
  }

  /// Fraction of read-only sections whose speculation was skipped by the
  /// adaptive elision controller (Disabled state).
  double skipRatio() const {
    return safeRatio(Delta.ElisionSkips, Delta.ReadOnlyEntries);
  }

  /// "throttles/disables/reprobes/re-enables" controller-transition
  /// summary for stats tables.
  std::string controllerTransitions() const {
    return std::to_string(Delta.CtrlThrottles.value()) + "/" +
           std::to_string(Delta.CtrlDisables.value()) + "/" +
           std::to_string(Delta.CtrlReprobes.value()) + "/" +
           std::to_string(Delta.CtrlReenables.value());
  }
};

inline ProtocolCounters countersDelta(const ProtocolCounters &Before,
                                      const ProtocolCounters &After) {
  ProtocolCounters D;
  D.WriteEntries = After.WriteEntries - Before.WriteEntries;
  D.ReadOnlyEntries = After.ReadOnlyEntries - Before.ReadOnlyEntries;
  D.AtomicRmws = After.AtomicRmws - Before.AtomicRmws;
  D.LockWordStores = After.LockWordStores - Before.LockWordStores;
  D.ElisionAttempts = After.ElisionAttempts - Before.ElisionAttempts;
  D.ElisionSuccesses = After.ElisionSuccesses - Before.ElisionSuccesses;
  D.ElisionFailures = After.ElisionFailures - Before.ElisionFailures;
  D.Fallbacks = After.Fallbacks - Before.Fallbacks;
  D.FaultRetries = After.FaultRetries - Before.FaultRetries;
  D.AsyncAborts = After.AsyncAborts - Before.AsyncAborts;
  D.Inflations = After.Inflations - Before.Inflations;
  D.Deflations = After.Deflations - Before.Deflations;
  D.FlcWaits = After.FlcWaits - Before.FlcWaits;
  D.ElisionSkips = After.ElisionSkips - Before.ElisionSkips;
  D.SpecRetries = After.SpecRetries - Before.SpecRetries;
  D.ThrottledAttempts = After.ThrottledAttempts - Before.ThrottledAttempts;
  D.ReprobeAttempts = After.ReprobeAttempts - Before.ReprobeAttempts;
  D.CtrlThrottles = After.CtrlThrottles - Before.CtrlThrottles;
  D.CtrlDisables = After.CtrlDisables - Before.CtrlDisables;
  D.CtrlReprobes = After.CtrlReprobes - Before.CtrlReprobes;
  D.CtrlReenables = After.CtrlReenables - Before.CtrlReenables;
  return D;
}

/// Harness options.
struct HarnessOptions {
  std::chrono::milliseconds Window{300}; ///< one measured window
  int Trials = 3;                        ///< best-of (paper: best of 5)
  std::chrono::milliseconds Warmup{50};  ///< unmeasured warm-up per trial
};

/// Runs \p Threads workers executing `Op(ThreadIndex)` in a loop for the
/// configured window; returns the best trial. \p Op is any callable; one
/// instance is shared, so it must be thread-safe (workloads are).
template <typename OpFn>
BenchResult runThroughput(int Threads, const HarnessOptions &Opts, OpFn &&Op) {
  BenchResult Best;
  for (int Trial = 0; Trial < Opts.Trials; ++Trial) {
    std::atomic<bool> Warm{false}, Stop{false};
    std::vector<uint64_t> OpCounts(static_cast<std::size_t>(Threads), 0);
    SpinBarrier Start(static_cast<uint32_t>(Threads) + 1);
    ProtocolCounters Before, After;
    std::vector<std::thread> Workers;
    Workers.reserve(static_cast<std::size_t>(Threads));
    for (int T = 0; T < Threads; ++T)
      Workers.emplace_back([&, T] {
        Start.arriveAndWait();
        // Warm-up: run but do not count.
        while (!Warm.load(std::memory_order_acquire))
          Op(T);
        uint64_t Local = 0;
        while (!Stop.load(std::memory_order_acquire)) {
          Op(T);
          ++Local;
        }
        OpCounts[static_cast<std::size_t>(T)] = Local;
      });

    Start.arriveAndWait();
    std::this_thread::sleep_for(Opts.Warmup);
    Before = ThreadRegistry::instance().totalCounters();
    Stopwatch Clock;
    Warm.store(true, std::memory_order_release);
    std::this_thread::sleep_for(Opts.Window);
    Stop.store(true, std::memory_order_release);
    double Secs = Clock.elapsedSeconds();
    for (auto &W : Workers)
      W.join();
    After = ThreadRegistry::instance().totalCounters();

    BenchResult R;
    for (uint64_t C : OpCounts)
      R.Ops += C;
    R.Seconds = Secs;
    // Guarded: a degenerate zero-length window (clock quantization under
    // --window-ms=0) must report 0, not inf/nan, for the JSON emitters.
    R.OpsPerSec = Secs > 0 ? static_cast<double>(R.Ops) / Secs : 0.0;
    R.Delta = countersDelta(Before, After);
    if (R.OpsPerSec > Best.OpsPerSec)
      Best = R;
  }
  return Best;
}

/// A named one-trial runner for interleaved comparisons.
struct TrialRunner {
  std::string Name;
  std::function<BenchResult()> RunOneTrial;
};

/// Runs the competitors round-robin for \p Rounds rounds and keeps each
/// one's best trial. Interleaving makes slow drifts of the host's available
/// CPU (frequency scaling, steal time on shared vCPUs) hit every
/// implementation equally instead of biasing whichever ran last — without
/// it, same-binary reruns on this container disagree by tens of percent.
/// Odd rounds run in reverse order: with a fixed order a null comparison
/// (identical runners) still shows the later slot a steady couple of
/// percent behind the first, and best-of over both positions cancels that
/// slot bias too.
inline std::vector<BenchResult>
runInterleavedBest(const std::vector<TrialRunner> &Runners, int Rounds) {
  std::vector<BenchResult> Best(Runners.size());
  for (int Round = 0; Round < Rounds; ++Round)
    for (std::size_t K = 0; K < Runners.size(); ++K) {
      std::size_t I = (Round % 2) ? Runners.size() - 1 - K : K;
      BenchResult R = Runners[I].RunOneTrial();
      if (R.OpsPerSec > Best[I].OpsPerSec)
        Best[I] = R;
    }
  return Best;
}

} // namespace solero

#endif // SOLERO_WORKLOADS_HARNESS_H

//===- workloads/LockPolicies.h - Uniform lock policy adapters --*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three lock implementations the paper compares (Section 4.1) behind
/// one policy shape, so workloads and SynchronizedMap can be templated
/// over them:
///
///   Lock    — TasukiPolicy:  the conventional mutual-exclusion lock
///   RWLock  — RwPolicy:      java.util.concurrent-style read-write lock
///   SOLERO  — SoleroPolicy:  lock elision for read-only sections
///
/// plus SoleroPolicy variants for the Figure 10 ablations (Unelided,
/// WeakBarrier). A policy instance is one lock: construct one per
/// protected object.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_WORKLOADS_LOCKPOLICIES_H
#define SOLERO_WORKLOADS_LOCKPOLICIES_H

#include <memory>
#include <utility>

#include "core/SoleroLock.h"
#include "locks/BravoRwLock.h"
#include "locks/ReadWriteLock.h"
#include "locks/SeqLock.h"
#include "locks/TasukiLock.h"
#include "runtime/ReadGuard.h"
#include "runtime/RuntimeContext.h"
#include "support/ScopeExit.h"

namespace solero {

/// Conventional lock (paper's "Lock"): mutual exclusion for readers too.
class TasukiPolicy {
public:
  explicit TasukiPolicy(RuntimeContext &Ctx) : Protocol(Ctx) {}

  template <typename Fn> decltype(auto) read(Fn &&F) {
    return Protocol.synchronizedReadOnly(Header, std::forward<Fn>(F));
  }
  template <typename Fn> decltype(auto) write(Fn &&F) {
    return Protocol.synchronizedWrite(Header, std::forward<Fn>(F));
  }

  static const char *name() { return "Lock"; }

private:
  TasukiLock Protocol;
  ObjectHeader Header;
};

/// Read-write lock (paper's "RWLock"). Held behind a pointer to model the
/// java.util.concurrent indirection the paper cites.
class RwPolicy {
public:
  explicit RwPolicy(RuntimeContext &Ctx)
      : Lock(std::make_unique<ReadWriteLock>(Ctx)) {}

  template <typename Fn> decltype(auto) read(Fn &&F) {
    return Lock->synchronizedReadOnly(std::forward<Fn>(F));
  }
  template <typename Fn> decltype(auto) write(Fn &&F) {
    return Lock->synchronizedWrite(std::forward<Fn>(F));
  }

  static const char *name() { return "RWLock"; }

private:
  std::unique_ptr<ReadWriteLock> Lock;
};

/// BRAVO-biased read-write lock (locks/BravoRwLock.h): the state-of-the-art
/// reader path SOLERO is judged against on the scaling curves. Same
/// pointer indirection as RwPolicy so the comparison isolates the reader
/// indication mechanism, not the memory layout.
class BravoRwPolicy {
public:
  explicit BravoRwPolicy(RuntimeContext &Ctx,
                         BravoConfig Config = BravoConfig())
      : Lock(std::make_unique<BravoRwLock>(Ctx, Config)) {}

  template <typename Fn> decltype(auto) read(Fn &&F) {
    return Lock->synchronizedReadOnly(std::forward<Fn>(F));
  }
  template <typename Fn> decltype(auto) write(Fn &&F) {
    return Lock->synchronizedWrite(std::forward<Fn>(F));
  }

  static const char *name() { return "BravoRW"; }

  BravoRwLock &protocol() { return *Lock; }

private:
  std::unique_ptr<BravoRwLock> Lock;
};

/// SOLERO with configurable elision / barriers.
class SoleroPolicy {
public:
  explicit SoleroPolicy(RuntimeContext &Ctx,
                        SoleroConfig Config = SoleroConfig())
      : Protocol(Ctx, Config) {}

  template <typename Fn> decltype(auto) read(Fn &&F) {
    return Protocol.synchronizedReadOnly(Header, std::forward<Fn>(F));
  }
  template <typename Fn> decltype(auto) write(Fn &&F) {
    return Protocol.synchronizedWrite(Header, std::forward<Fn>(F));
  }
  template <typename Fn> decltype(auto) readMostly(Fn &&F) {
    return Protocol.synchronizedReadMostly(Header, std::forward<Fn>(F));
  }

  static const char *name() { return "SOLERO"; }

  SoleroLock &protocol() { return Protocol; }

private:
  SoleroLock Protocol;
  ObjectHeader Header;
};

/// Bare-seqlock policy (locks/SeqLock.h): readers run optimistically and
/// retry on interference, writers serialize on the sequence word itself.
/// This is the hand-tuned upper bound for read-mostly workloads — no
/// reader-side RMW, no lock-word store, no elision bookkeeping — at the
/// cost of the seqlock restrictions SOLERO exists to lift: the read
/// section must be side-effect-free and safe to re-execute, and writers
/// get a plain spinlock with no contention management. The KV service
/// bench runs it as the per-shard read-path ceiling; it takes (and
/// ignores) a RuntimeContext so it constructs like the other policies.
class SeqLockPolicy {
public:
  explicit SeqLockPolicy(RuntimeContext &) {}

  template <typename Fn> decltype(auto) read(Fn &&F) {
    return Lock.readProtected([&] {
      ReadGuard G(/*Speculative=*/true);
      return F(G);
    });
  }

  template <typename Fn> decltype(auto) write(Fn &&F) {
    Lock.writeLock();
    ScopeExit Release([this] { Lock.writeUnlock(); });
    return F();
  }

  static const char *name() { return "SeqLock"; }

  SeqLock &protocol() { return Lock; }

private:
  SeqLock Lock;
};

/// Figure 10 ablation configs.
inline SoleroConfig unelidedSoleroConfig() {
  SoleroConfig C;
  C.ElideReadOnly = false;
  return C;
}

inline SoleroConfig weakBarrierSoleroConfig() {
  SoleroConfig C;
  C.Barriers = BarrierMode::Weak;
  return C;
}

/// SOLERO with the adaptive elision controller on (default thresholds;
/// see core/ElisionController.h).
inline SoleroConfig adaptiveSoleroConfig() {
  SoleroConfig C;
  C.Adaptive.Enabled = true;
  return C;
}

/// Adaptive-SOLERO: the failure-ratio-driven controller decides per lock
/// whether read-only sections speculate (the fig15 --adaptive competitor).
class AdaptiveSoleroPolicy {
public:
  explicit AdaptiveSoleroPolicy(RuntimeContext &Ctx,
                                SoleroConfig Config = adaptiveSoleroConfig())
      : Inner(Ctx, Config) {}

  template <typename Fn> decltype(auto) read(Fn &&F) {
    return Inner.read(std::forward<Fn>(F));
  }
  template <typename Fn> decltype(auto) write(Fn &&F) {
    return Inner.write(std::forward<Fn>(F));
  }
  template <typename Fn> decltype(auto) readMostly(Fn &&F) {
    return Inner.readMostly(std::forward<Fn>(F));
  }

  static const char *name() { return "Adaptive-SOLERO"; }

  SoleroLock &protocol() { return Inner.protocol(); }

private:
  SoleroPolicy Inner;
};

} // namespace solero

#endif // SOLERO_WORKLOADS_LOCKPOLICIES_H

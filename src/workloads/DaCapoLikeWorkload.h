//===- workloads/DaCapoLikeWorkload.h - DaCapo profiles ---------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the four multithreaded DaCapo 9.10 applications
/// the paper evaluates (h2, tomcat, tradebeans, tradesoap). Figure 16's
/// finding — SOLERO ≈ Lock, regression under 1% — is a function of the
/// application's lock profile, which Table 1 gives us: the fraction of
/// read-only synchronized blocks and the lock frequency. Each profile here
/// reproduces those two observables: operations are critical sections on
/// per-thread tables (DaCapo app threads mostly lock thread-confined
/// objects), read-only with the application's Table-1 probability, with
/// enough non-locking local work between sections to land near the
/// application's locks-per-second rate.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_WORKLOADS_DACAPOLIKEWORKLOAD_H
#define SOLERO_WORKLOADS_DACAPOLIKEWORKLOAD_H

#include <memory>
#include <vector>

#include "collections/JavaHashMap.h"
#include "runtime/ReadGuard.h"
#include "runtime/RuntimeContext.h"
#include "support/CacheLine.h"
#include "support/Rng.h"

namespace solero {

/// One application's lock profile (from paper Table 1).
struct DaCapoProfile {
  const char *Name;
  /// Read-only synchronized blocks, in hundredths of a percent
  /// (e.g. tomcat = 370 for 3.7%).
  unsigned ReadOnlyPerMyriad;
  /// Local (non-locking) work iterations between critical sections; tunes
  /// the lock frequency toward the Table 1 rate.
  int WorkCycles;
  /// Paper Table 1 reference values, echoed in the bench output.
  double PaperLockFreqMillionsPerSec;
  double PaperReadOnlyPercent;
};

/// The four profiles from Table 1.
inline const DaCapoProfile DaCapoProfiles[4] = {
    {"h2", 0, 60, 2.0, 0.0},
    {"tomcat", 370, 12, 7.3, 3.7},
    {"tradebeans", 30, 70, 1.7, 0.3},
    {"tradesoap", 1140, 30, 3.4, 11.4},
};

/// Driver for one profile: per-thread synchronized tables, mixed
/// read-only / writing critical sections at the profile's ratio.
template <typename Policy> class DaCapoLikeWorkload {
public:
  DaCapoLikeWorkload(RuntimeContext &Ctx, const DaCapoProfile &Profile,
                     int MaxThreads = 64, uint64_t Seed = 0xdaca)
      : Profile(Profile) {
    for (int T = 0; T < MaxThreads; ++T) {
      Shards.push_back(std::make_unique<Shard>(Ctx));
      for (int64_t K = 0; K < KeySpace; ++K)
        Shards.back()->Table.put(K, K);
      Shards.back()->State.Rng =
          Xoshiro256StarStar(Seed + static_cast<uint64_t>(T));
    }
  }

  void operator()(int ThreadIdx) {
    Shard &S = *Shards[static_cast<std::size_t>(ThreadIdx)];
    Xoshiro256StarStar &Rng = S.State.Rng;
    // Local, non-locking application work.
    uint64_t Acc = S.State.Sink;
    for (int I = 0; I < Profile.WorkCycles; ++I)
      Acc = Acc * 6364136223846793005ULL + 1442695040888963407ULL;
    S.State.Sink = static_cast<int64_t>(Acc);

    int64_t Key = static_cast<int64_t>(
        Rng.nextBounded(static_cast<uint64_t>(KeySpace)));
    if (Rng.nextBounded(10000) < Profile.ReadOnlyPerMyriad) {
      S.State.Sink += S.Lock.read([&](ReadGuard &) {
        auto V = S.Table.get(Key);
        return V ? *V : 0;
      });
    } else {
      S.Lock.write([&] { S.Table.put(Key, S.State.Sink); });
    }
  }

  const DaCapoProfile &profile() const { return Profile; }

private:
  static constexpr int64_t KeySpace = 256;

  struct Shard {
    explicit Shard(RuntimeContext &Ctx) : Lock(Ctx) {}
    Policy Lock;
    JavaHashMap<int64_t, int64_t> Table;
    struct {
      Xoshiro256StarStar Rng{0};
      int64_t Sink = 0;
    } State;
  };

  DaCapoProfile Profile;
  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace solero

#endif // SOLERO_WORKLOADS_DACAPOLIKEWORKLOAD_H

//===- workloads/JbbWorkload.h - SPECjbb2005-like workload ------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SPECjbb2005-style order-processing workload (the paper's macro
/// benchmark). Like SPECjbb2005 it is share-nothing per warehouse (one
/// warehouse per thread — "highly scalable with minimal lock contention",
/// Section 4.2) and runs the TPC-C-flavoured five-transaction mix. Every
/// table access goes through a synchronized block on the owning
/// warehouse's tables, so the observable that matters for SOLERO — the
/// mix of read-only vs writing critical sections — matches Table 1's
/// SPECjbb2005 row (53.6% read-only) by construction of the per-
/// transaction access counts (see DESIGN.md substitution table).
///
/// Throughput is reported in transactions per second ("bops").
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_WORKLOADS_JBBWORKLOAD_H
#define SOLERO_WORKLOADS_JBBWORKLOAD_H

#include <memory>
#include <vector>

#include "collections/JavaHashMap.h"
#include "collections/JavaTreeMap.h"
#include "runtime/ReadGuard.h"
#include "runtime/RuntimeContext.h"
#include "runtime/SharedField.h"
#include "support/CacheLine.h"
#include "support/Rng.h"

namespace solero {

/// Transaction mix percentages (SPECjbb2005 / TPC-C shape).
struct JbbMix {
  unsigned NewOrder = 44;   ///< items lookups + stock/order writes
  unsigned Payment = 43;    ///< balance write + customer lookups
  unsigned OrderStatus = 5; ///< read-only
  unsigned Delivery = 4;    ///< oldest-order removal
  unsigned StockLevel = 4;  ///< read-only stock scan
};

struct JbbParams {
  int Warehouses = 1;       ///< one per driver thread
  int64_t ItemCount = 2048; ///< items per warehouse catalogue
  int MaxThreads = 64;
  uint64_t Seed = 0x1bb;
  JbbMix Mix;
};

/// One warehouse: item catalogue, stock levels, order book, customer
/// balances — each map wrapped in critical sections of \p Policy on the
/// warehouse's locks (one lock per table, as a JVM would lock each
/// collection object).
template <typename Policy> class JbbWarehouse {
public:
  JbbWarehouse(RuntimeContext &Ctx, int64_t ItemCount, uint64_t Seed)
      : ItemsLock(Ctx), StockLock(Ctx), OrdersLock(Ctx), CustomersLock(Ctx),
        ItemCount(ItemCount) {
    SplitMix64 Sm(Seed);
    for (int64_t I = 0; I < ItemCount; ++I) {
      Items.put(I, static_cast<int64_t>(Sm.next() >> 8)); // price-ish
      Stock.put(I, 100);
    }
    for (int64_t C = 0; C < 256; ++C)
      Customers.put(C, 1000);
  }

  /// NewOrder: look up items read-only, then decrement stock and record
  /// the order.
  void newOrder(Xoshiro256StarStar &Rng) {
    constexpr int Lines = 5;
    int64_t ItemIds[Lines];
    int64_t Total = 0;
    for (int L = 0; L < Lines; ++L) {
      ItemIds[L] = pickItem(Rng);
      Total += ItemsLock.read([&](ReadGuard &) {
        auto P = Items.get(ItemIds[L]);
        return P ? *P % 1000 : 0;
      });
    }
    for (int L = 0; L < Lines; ++L)
      StockLock.write([&] {
        auto S = Stock.get(ItemIds[L]);
        int64_t Level = S ? *S : 100;
        Stock.put(ItemIds[L], Level <= 10 ? Level + 91 : Level - 1);
      });
    OrdersLock.write([&] {
      int64_t Id = NextOrderId.read();
      Orders.put(Id, Total);
      NextOrderId.write(Id + 1);
      // SPECjbb truncates its order table; keep the book bounded so
      // steady-state throughput does not depend on run length.
      if (Orders.size() > 2048) {
        auto Oldest = Orders.firstKey();
        if (Oldest)
          Orders.remove(*Oldest);
      }
    });
  }

  /// Payment: two read-only customer lookups, one balance write.
  void payment(Xoshiro256StarStar &Rng) {
    int64_t C = static_cast<int64_t>(Rng.nextBounded(256));
    int64_t Amount = static_cast<int64_t>(Rng.nextBounded(500)) + 1;
    int64_t Bal = CustomersLock.read([&](ReadGuard &) {
      auto B = Customers.get(C);
      return B ? *B : 0;
    });
    (void)CustomersLock.read(
        [&](ReadGuard &) { return Customers.contains(C); });
    CustomersLock.write([&] { Customers.put(C, Bal + Amount); });
  }

  /// OrderStatus: read-only order book queries.
  int64_t orderStatus(Xoshiro256StarStar &Rng) {
    int64_t Sum = 0;
    for (int I = 0; I < 3; ++I) {
      int64_t Next = NextOrderId.read();
      int64_t Id = Next > 1 ? static_cast<int64_t>(Rng.nextBounded(
                                  static_cast<uint64_t>(Next)))
                            : 0;
      Sum += OrdersLock.read([&](ReadGuard &) {
        auto O = Orders.get(Id);
        return O ? *O : 0;
      });
    }
    return Sum;
  }

  /// Delivery: find and remove the oldest order.
  void delivery() {
    auto Oldest = OrdersLock.read([&](ReadGuard &) { return Orders.firstKey(); });
    if (Oldest)
      OrdersLock.write([&] { Orders.remove(*Oldest); });
  }

  /// StockLevel: read-only scan of recent items' stock.
  int64_t stockLevel(Xoshiro256StarStar &Rng) {
    int64_t Low = 0;
    for (int I = 0; I < 10; ++I) {
      int64_t Id = pickItem(Rng);
      Low += StockLock.read([&](ReadGuard &) {
        auto S = Stock.get(Id);
        return (S && *S < 20) ? 1 : 0;
      });
    }
    return Low;
  }

private:
  int64_t pickItem(Xoshiro256StarStar &Rng) {
    return static_cast<int64_t>(
        Rng.nextBounded(static_cast<uint64_t>(ItemCount)));
  }

  Policy ItemsLock, StockLock, OrdersLock, CustomersLock;
  JavaHashMap<int64_t, int64_t> Items;
  JavaHashMap<int64_t, int64_t> Stock;
  JavaTreeMap<int64_t, int64_t> Orders;
  JavaHashMap<int64_t, int64_t> Customers;
  const int64_t ItemCount;
  SharedField<int64_t> NextOrderId{1};
};

/// The driver: warehouse W is owned by thread W (mod Warehouses).
template <typename Policy> class JbbWorkload {
public:
  JbbWorkload(RuntimeContext &Ctx, const JbbParams &P) : Params(P) {
    for (int W = 0; W < P.Warehouses; ++W)
      Warehouses.push_back(std::make_unique<JbbWarehouse<Policy>>(
          Ctx, P.ItemCount, P.Seed + static_cast<uint64_t>(W)));
    PerThread.resize(static_cast<std::size_t>(P.MaxThreads));
    for (int T = 0; T < P.MaxThreads; ++T)
      PerThread[static_cast<std::size_t>(T)]->Rng =
          Xoshiro256StarStar(P.Seed ^ (0x9e37 + static_cast<uint64_t>(T)));
  }

  /// One transaction for \p ThreadIdx, drawn from the mix.
  void operator()(int ThreadIdx) {
    auto &State = *PerThread[static_cast<std::size_t>(ThreadIdx)];
    Xoshiro256StarStar &Rng = State.Rng;
    JbbWarehouse<Policy> &W =
        *Warehouses[static_cast<std::size_t>(ThreadIdx) %
                    Warehouses.size()];
    const JbbMix &M = Params.Mix;
    uint64_t Dice = Rng.nextBounded(100);
    if (Dice < M.NewOrder)
      W.newOrder(Rng);
    else if (Dice < M.NewOrder + M.Payment)
      W.payment(Rng);
    else if (Dice < M.NewOrder + M.Payment + M.OrderStatus)
      State.Sink += W.orderStatus(Rng);
    else if (Dice < M.NewOrder + M.Payment + M.OrderStatus + M.Delivery)
      W.delivery();
    else
      State.Sink += W.stockLevel(Rng);
  }

private:
  struct ThreadLocalState {
    Xoshiro256StarStar Rng{0};
    int64_t Sink = 0;
  };

  JbbParams Params;
  std::vector<std::unique_ptr<JbbWarehouse<Policy>>> Warehouses;
  std::vector<CacheLinePadded<ThreadLocalState>> PerThread;
};

} // namespace solero

#endif // SOLERO_WORKLOADS_JBBWORKLOAD_H

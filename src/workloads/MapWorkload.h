//===- workloads/MapWorkload.h - HashMap/TreeMap drivers --------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's HashMap and TreeMap microbenchmarks (Section 4.1): threads
/// access a shared map inside synchronized blocks; a configurable fraction
/// of operations are writes (puts), the rest read-only gets. 1K entries by
/// default. The fine-grained variant of Figure 12(c) uses one map (and one
/// lock) per thread, with each operation touching a uniformly random map.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_WORKLOADS_MAPWORKLOAD_H
#define SOLERO_WORKLOADS_MAPWORKLOAD_H

#include <functional>
#include <memory>
#include <vector>

#include "runtime/ReadGuard.h"
#include "runtime/RuntimeContext.h"
#include "support/Backoff.h"
#include "support/CacheLine.h"
#include "support/Rng.h"

namespace solero {

/// Parameters for a map microbenchmark run.
struct MapWorkloadParams {
  int64_t KeySpace = 1024;   ///< "The number of entries is 1K" (Section 4.1)
  unsigned WritePercent = 0; ///< 0 or 5 in the paper
  int NumMaps = 1;           ///< Figure 12(c): one per thread
  int MaxThreads = 64;       ///< bound for per-thread RNG state
  uint64_t Seed = 0x5eed;
  /// Yield the CPU once inside every read section. On an oversubscribed
  /// host this models the paper's genuinely-overlapping sections: it
  /// forces other runnable threads (including writers) into the reader's
  /// validation window, which is what produces Figure 15's nonzero
  /// speculation-failure ratios (see EXPERIMENTS.md).
  bool YieldInReadSection = false;
  /// Percent of read operations that run getWithNestedWrite instead of a
  /// plain get: the paper §3.2 misclassified-read-only shape, whose nested
  /// lock-write acquisition makes speculation fail deterministically
  /// without lengthening the section. This is the failure dial for the
  /// adaptive-controller sweep: unlike YieldInReadSection it produces
  /// failure ratios that don't depend on scheduler preemption, so it works
  /// the same on a 1-vCPU host as on a multiprocessor.
  unsigned NestedWritePercent = 0;
};

/// Drives get/put traffic against one or more synchronized maps.
/// \p SyncMapT is a SynchronizedMap instantiation.
template <typename SyncMapT> class MapWorkload {
public:
  /// \p MakeMap constructs one synchronized map (binding its lock policy).
  MapWorkload(const MapWorkloadParams &P,
              const std::function<std::unique_ptr<SyncMapT>(int)> &MakeMap)
      : Params(P), PerThread(static_cast<std::size_t>(P.MaxThreads)) {
    for (int I = 0; I < P.NumMaps; ++I)
      Maps.push_back(MakeMap(I));
    for (int T = 0; T < P.MaxThreads; ++T)
      PerThread[static_cast<std::size_t>(T)]->Rng =
          Xoshiro256StarStar(P.Seed + static_cast<uint64_t>(T) * 977);
    prefill();
  }

  /// One benchmark operation for thread \p ThreadIdx: a put with
  /// probability WritePercent, else a read-only get.
  void operator()(int ThreadIdx) {
    auto &State = *PerThread[static_cast<std::size_t>(ThreadIdx)];
    Xoshiro256StarStar &Rng = State.Rng;
    SyncMapT &M =
        *Maps[Params.NumMaps == 1
                  ? 0
                  : Rng.nextBounded(static_cast<uint64_t>(Params.NumMaps))];
    int64_t Key = static_cast<int64_t>(
        Rng.nextBounded(static_cast<uint64_t>(Params.KeySpace)));
    if (Params.WritePercent != 0 && Rng.nextPercent(Params.WritePercent)) {
      M.put(Key, static_cast<int64_t>(Rng.next() >> 1));
      return;
    }
    if (Params.NestedWritePercent != 0 &&
        Rng.nextPercent(Params.NestedWritePercent)) {
      auto V = M.getWithNestedWrite(Key);
      State.Sink += V.has_value() ? *V : 0;
      return;
    }
    if (Params.YieldInReadSection) {
      State.Sink += M.readSection([&](auto &Map, ReadGuard &G) {
        auto V = Map.get(Key);
        osYield(); // widen the section across a scheduling boundary
        G.checkpoint();
        auto W = Map.get(Key);
        return (V ? *V : 0) + (W ? *W : 0);
      });
      return;
    }
    auto V = M.get(Key);
    State.Sink += V.has_value() ? *V : 0;
  }

  /// Verifies every map still holds the full keyspace (puts only overwrite).
  bool verifyFullyPopulated() {
    for (auto &M : Maps)
      for (int64_t K = 0; K < Params.KeySpace; ++K)
        if (!M->get(K).has_value())
          return false;
    return true;
  }

private:
  struct ThreadLocalState {
    Xoshiro256StarStar Rng{0};
    int64_t Sink = 0; ///< keeps the read value observable
  };

  void prefill() {
    SplitMix64 Sm(Params.Seed);
    for (auto &M : Maps)
      for (int64_t K = 0; K < Params.KeySpace; ++K)
        M->put(K, static_cast<int64_t>(Sm.next() >> 1));
  }

  MapWorkloadParams Params;
  std::vector<std::unique_ptr<SyncMapT>> Maps;
  std::vector<CacheLinePadded<ThreadLocalState>> PerThread;
};

} // namespace solero

#endif // SOLERO_WORKLOADS_MAPWORKLOAD_H

//===- mm/EpochReclaimer.h - Epoch-based deferred reclamation ---*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic three-epoch EBR. Speculative read-only sections pin the current
/// epoch; writers retire unlinked nodes (and resized tables); retired
/// memory is recycled only after every pinned thread has moved past the
/// retirement epoch. Together with mm/TypeStablePool.h this substitutes for
/// the JVM garbage collector that keeps the paper's speculatively-read
/// objects alive (DESIGN.md, substitution table).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_MM_EPOCHRECLAIMER_H
#define SOLERO_MM_EPOCHRECLAIMER_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "runtime/ThreadRegistry.h"
#include "support/Assert.h"
#include "support/CacheLine.h"

namespace solero {

/// Deferred-reclamation domain. Create one per data structure (or share).
class EpochReclaimer {
public:
  /// Upper bound on ThreadRegistry slots this domain can track.
  static constexpr std::size_t MaxThreads = 512;

  EpochReclaimer();
  ~EpochReclaimer();

  EpochReclaimer(const EpochReclaimer &) = delete;
  EpochReclaimer &operator=(const EpochReclaimer &) = delete;

  /// RAII pin. Readers (speculative or not) hold one while they may follow
  /// pointers into the protected structure. Reentrant.
  class Pin {
  public:
    explicit Pin(EpochReclaimer &R) : R(R) { R.enter(); }
    ~Pin() { R.exit(); }
    Pin(const Pin &) = delete;
    Pin &operator=(const Pin &) = delete;

  private:
    EpochReclaimer &R;
  };

  /// Marks the calling thread as inside a read region. Reentrant.
  void enter();
  /// Leaves the read region (outermost exit unpins).
  void exit();

  /// Defers `Deleter(Obj)` until no pinned thread can still see \p Obj.
  /// Callable with or without being pinned.
  void retire(void *Obj, void (*Deleter)(void *, void *), void *DeleterArg);

  /// Attempts an epoch advance and frees anything that became safe. Called
  /// automatically by retire() at intervals; exposed for tests and for
  /// quiescing in destructors.
  void collect();

  /// Drains everything, asserting no thread is pinned. Used at shutdown.
  void drainAll();

  /// Objects retired but not yet freed.
  std::size_t pendingCount();

  uint64_t globalEpoch() const {
    return GlobalEpoch.load(std::memory_order_acquire);
  }

  /// True when readers pin with a plain release store and the reclaimer
  /// pays for ordering with a process-wide membarrier (Linux). False falls
  /// back to seq_cst pins.
  bool usesAsymmetricPins() const { return Asymmetric; }

private:
  struct Retired {
    void *Obj;
    void (*Deleter)(void *, void *);
    void *Arg;
  };

  static constexpr uint64_t ActiveBit = 1;

  void tryAdvanceLocked();
  void freeBatch(std::vector<Retired> &Batch);

  const bool Asymmetric;
  std::atomic<uint64_t> GlobalEpoch{2}; // even, never 0; low bit = active flag
  // Per-thread reservation: 0 = not pinned, else (epoch | ActiveBit).
  std::vector<CacheLinePadded<std::atomic<uint64_t>>> Slots;
  // Per-thread pin nesting depth (owner thread only).
  std::vector<CacheLinePadded<uint32_t>> Depth;

  std::mutex LimboMu;
  std::vector<Retired> Limbo[3]; // indexed by (epoch/2) % 3
  std::size_t RetireSinceCollect = 0;
};

} // namespace solero

#endif // SOLERO_MM_EPOCHRECLAIMER_H

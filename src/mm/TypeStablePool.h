//===- mm/TypeStablePool.h - Type-stable slab allocator ---------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A slab allocator with the type-stable property: a slot, once created as a
/// T, remains a valid T object for the pool's whole lifetime. Slots are
/// value-constructed when their slab is created and never destroyed on
/// deallocate(); allocate() hands back a recycled slot whose fields the
/// caller re-initializes with relaxed stores.
///
/// Why: SOLERO readers execute speculatively while writers mutate the data
/// structure, so a reader can hold a pointer to a node the writer has
/// already unlinked and freed. In the paper the JVM's garbage collector
/// guarantees such a pointer still refers to a valid object. Type-stable
/// slots give the same guarantee here: a stale pointer always points at a
/// well-formed T (with possibly garbage field values, which end-of-section
/// validation rejects). Combined with mm/EpochReclaimer.h, recycling is
/// additionally delayed until no speculative reader can still see the slot.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_MM_TYPESTABLEPOOL_H
#define SOLERO_MM_TYPESTABLEPOOL_H

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "support/Assert.h"
#include "support/Backoff.h"

namespace solero {

/// Thread-safe type-stable pool of \p T. \p SlabSlots is the number of
/// objects per slab.
template <typename T, std::size_t SlabSlots = 256> class TypeStablePool {
  static_assert(std::is_default_constructible_v<T>,
                "pool slots are value-constructed at slab creation");

public:
  TypeStablePool() = default;

  TypeStablePool(const TypeStablePool &) = delete;
  TypeStablePool &operator=(const TypeStablePool &) = delete;

  /// Returns a slot. The object is a valid T whose field values are
  /// whatever the previous user left (or default-constructed for a fresh
  /// slab); callers must re-initialize every field they care about.
  T *allocate() {
    SpinGuard G(Lock);
    if (Free.empty())
      addSlab();
    T *Slot = Free.back();
    Free.pop_back();
    ++LiveCount;
    return Slot;
  }

  /// Returns \p Slot to the pool. The object is NOT destroyed; concurrent
  /// speculative readers may still be reading its fields.
  void deallocate(T *Slot) {
    SOLERO_CHECK(Slot != nullptr, "deallocate(nullptr)");
    SpinGuard G(Lock);
    SOLERO_CHECK(LiveCount > 0, "pool double free (live count underflow)");
    --LiveCount;
    Free.push_back(Slot);
  }

  /// Objects currently handed out.
  std::size_t liveCount() const {
    SpinGuard G(Lock);
    return LiveCount;
  }

  /// Total slots ever created (all slabs).
  std::size_t capacity() const {
    SpinGuard G(Lock);
    return Slabs.size() * SlabSlots;
  }

private:
  struct Slab {
    // Plain array; elements are value-constructed with the slab.
    T Slots[SlabSlots];
  };

  class SpinGuard {
  public:
    explicit SpinGuard(std::atomic_flag &F) : F(F) {
      while (F.test_and_set(std::memory_order_acquire))
        cpuRelax();
    }
    ~SpinGuard() { F.clear(std::memory_order_release); }

  private:
    std::atomic_flag &F;
  };

  void addSlab() {
    Slabs.push_back(std::make_unique<Slab>());
    Slab &S = *Slabs.back();
    Free.reserve(Free.size() + SlabSlots);
    for (std::size_t I = 0; I < SlabSlots; ++I)
      Free.push_back(&S.Slots[I]);
  }

  mutable std::atomic_flag Lock = ATOMIC_FLAG_INIT;
  std::vector<std::unique_ptr<Slab>> Slabs;
  std::vector<T *> Free;
  std::size_t LiveCount = 0;
};

} // namespace solero

#endif // SOLERO_MM_TYPESTABLEPOOL_H

//===- mm/EpochReclaimer.cpp - Epoch-based deferred reclamation -----------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "mm/EpochReclaimer.h"

#if defined(__linux__)
#include <linux/membarrier.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

using namespace solero;

namespace {

/// Issues a process-wide memory barrier (Linux membarrier). Returns false
/// if the syscall is unavailable; callers then rely on seq_cst pins.
bool heavyBarrier() {
#if defined(__linux__)
  return syscall(__NR_membarrier, MEMBARRIER_CMD_PRIVATE_EXPEDITED, 0, 0) == 0;
#else
  return false;
#endif
}

bool registerHeavyBarrier() {
#if defined(__linux__)
  return syscall(__NR_membarrier, MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED, 0,
                 0) == 0;
#else
  return false;
#endif
}

/// Process-wide: true once membarrier is registered and usable. Decided on
/// first use; pins pick their ordering accordingly.
bool asymmetricPinsEnabled() {
  static const bool Enabled = registerHeavyBarrier();
  return Enabled;
}

} // namespace

EpochReclaimer::EpochReclaimer()
    : Asymmetric(asymmetricPinsEnabled()), Slots(MaxThreads),
      Depth(MaxThreads) {}

EpochReclaimer::~EpochReclaimer() { drainAll(); }

void EpochReclaimer::enter() {
  ThreadState &TS = ThreadRegistry::current();
  SOLERO_CHECK(TS.slot() < MaxThreads, "thread slot exceeds reclaimer limit");
  uint32_t &D = *Depth[TS.slot()];
  if (D++ != 0)
    return; // reentrant pin
  uint64_t E = GlobalEpoch.load(std::memory_order_relaxed);
  if (Asymmetric) {
    // Cheap pin: plain release store. The StoreLoad ordering against this
    // thread's subsequent pointer loads is supplied by the reclaimer's
    // membarrier before it scans reservations (asymmetric fence; the role
    // the JVM's GC safepoint protocol plays in the paper's runtime).
    Slots[TS.slot()]->store(E | ActiveBit, std::memory_order_release);
    std::atomic_signal_fence(std::memory_order_seq_cst);
    return;
  }
  // Portable fallback: the reservation must be globally visible before
  // this thread reads any pointer out of the protected structure.
  Slots[TS.slot()]->store(E | ActiveBit, std::memory_order_seq_cst);
}

void EpochReclaimer::exit() {
  ThreadState &TS = ThreadRegistry::current();
  uint32_t &D = *Depth[TS.slot()];
  SOLERO_CHECK(D > 0, "EpochReclaimer::exit without matching enter");
  if (--D != 0)
    return;
  Slots[TS.slot()]->store(0, std::memory_order_release);
}

void EpochReclaimer::retire(void *Obj, void (*Deleter)(void *, void *),
                            void *Arg) {
  std::lock_guard<std::mutex> G(LimboMu);
  uint64_t E = GlobalEpoch.load(std::memory_order_acquire);
  Limbo[(E / 2) % 3].push_back(Retired{Obj, Deleter, Arg});
  if (++RetireSinceCollect < 256)
    return;
  RetireSinceCollect = 0;
  tryAdvanceLocked();
}

void EpochReclaimer::collect() {
  std::lock_guard<std::mutex> G(LimboMu);
  tryAdvanceLocked();
}

void EpochReclaimer::tryAdvanceLocked() {
  if (Asymmetric && !heavyBarrier())
    return; // cannot order against relaxed pins right now; try later
  uint64_t Cur = GlobalEpoch.load(std::memory_order_acquire);
  for (const auto &Slot : Slots) {
    uint64_t V = Slot->load(std::memory_order_acquire);
    if ((V & ActiveBit) != 0 && (V & ~ActiveBit) != Cur)
      return; // a pinned thread lags; cannot advance yet
  }
  uint64_t Next = Cur + 2;
  GlobalEpoch.store(Next, std::memory_order_release);
  // The bucket about to be reused holds retirements at least two full
  // grace periods old; free it.
  std::vector<Retired> Batch;
  Batch.swap(Limbo[(Next / 2) % 3]);
  freeBatch(Batch);
}

void EpochReclaimer::drainAll() {
  for (const auto &Slot : Slots)
    SOLERO_CHECK((Slot->load(std::memory_order_acquire) & ActiveBit) == 0,
                 "drainAll with a pinned thread");
  std::lock_guard<std::mutex> G(LimboMu);
  for (auto &Bucket : Limbo) {
    std::vector<Retired> Batch;
    Batch.swap(Bucket);
    freeBatch(Batch);
  }
}

std::size_t EpochReclaimer::pendingCount() {
  std::lock_guard<std::mutex> G(LimboMu);
  return Limbo[0].size() + Limbo[1].size() + Limbo[2].size();
}

void EpochReclaimer::freeBatch(std::vector<Retired> &Batch) {
  for (const Retired &R : Batch)
    R.Deleter(R.Obj, R.Arg);
  Batch.clear();
}

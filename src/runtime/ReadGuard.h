//===- runtime/ReadGuard.h - Speculative-section guard ----------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guard handed to read-only critical sections and the asynchronous
/// check-point function (paper Section 3.3). The paper's JIT inserts check
/// points at method entries and loop back-edges; here, hand-written guest
/// code calls speculationCheckpoint() inside its loops (the collections in
/// src/collections do), and the CSIR interpreter inserts the calls
/// automatically at back-edges.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_RUNTIME_READGUARD_H
#define SOLERO_RUNTIME_READGUARD_H

#include <atomic>

#include "runtime/SpeculationFault.h"
#include "runtime/ThreadRegistry.h"

namespace solero {

/// Validates the read consistency of every speculative read-only section
/// the calling thread is inside, but only when the async event bus has
/// raised this thread's poll flag since the last check point. On a failed
/// validation, throws SpeculationFault carrying the outermost invalidated
/// frame; the owning elision frame catches it and retries. Cheap (one
/// relaxed load) when no event is pending; safe to call from any thread at
/// any time, including threads with no speculation in flight.
inline void speculationCheckpoint() {
  ThreadState &TS = ThreadRegistry::current();
  if (TS.PollFlag.load(std::memory_order_relaxed) == 0)
    return;
  TS.PollFlag.store(0, std::memory_order_relaxed);
  for (std::size_t I = 0, E = TS.readDepth(); I < E; ++I) {
    const ReadRecord &Rec = TS.readRecord(I);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (Rec.Header->word().load(std::memory_order_relaxed) != Rec.Value) {
      ++TS.Counters.AsyncAborts;
      throw SpeculationFault{I};
    }
  }
}

/// Unconditionally validates every in-flight speculative section of the
/// calling thread, regardless of the poll flag. Cheap no-op for threads
/// with no speculation in flight.
inline void validateAllSpeculativeReads() {
  ThreadState &TS = ThreadRegistry::current();
  for (std::size_t I = 0, E = TS.readDepth(); I < E; ++I) {
    const ReadRecord &Rec = TS.readRecord(I);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (Rec.Header->word().load(std::memory_order_relaxed) != Rec.Value) {
      ++TS.Counters.AsyncAborts;
      throw SpeculationFault{I};
    }
  }
}

/// Loop-bound helper for guest data-structure traversals. Call once per
/// iteration with a caller-owned step counter: it polls the async event,
/// and every 4096 steps force-validates all in-flight speculation. This is
/// the safety net that bounds traversals chasing inconsistent pointers
/// even when the async event bus is disabled; a non-speculative traversal
/// passes through unharmed no matter how long it runs.
inline void speculationLoopGuard(uint32_t &Steps) {
  speculationCheckpoint();
  if (++Steps >= 4096) {
    Steps = 0;
    validateAllSpeculativeReads();
  }
}

/// Handle passed to a read-only critical section body. Reports whether the
/// current execution is speculative and forwards check points.
class ReadGuard {
public:
  explicit ReadGuard(bool Speculative) : Speculative(Speculative) {}

  /// True while executing optimistically (lock not held). Guest code can
  /// use this to skip speculation-unsafe work, though well-formed read-only
  /// sections never need to.
  bool speculative() const { return Speculative; }

  /// Async check point; see speculationCheckpoint().
  void checkpoint() const { speculationCheckpoint(); }

private:
  bool Speculative;
};

} // namespace solero

#endif // SOLERO_RUNTIME_READGUARD_H

//===- runtime/RuntimeContext.h - Process runtime services ------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bundles the runtime services a lock protocol needs — the monitor table,
/// the async event bus, and tuning — the way a JVM instance would own them.
/// Tests and benchmarks create one context per scenario.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_RUNTIME_RUNTIMECONTEXT_H
#define SOLERO_RUNTIME_RUNTIMECONTEXT_H

#include <chrono>

#include "runtime/AsyncEventBus.h"
#include "runtime/MonitorTable.h"
#include "runtime/ThreadRegistry.h"
#include "support/Backoff.h"

namespace solero {

/// Tuning knobs for the locking machinery.
struct RuntimeConfig {
  /// Three-tier spin parameters (paper Figure 3).
  SpinTiers Tiers;
  /// Timed-park duration on the FLC / fat-entry path.
  std::chrono::microseconds ParkMicros{500};
  /// Period of the asynchronous read-validation event (Section 3.3);
  /// 0 disables the background ticker.
  std::chrono::microseconds AsyncEventPeriod{2000};
  /// Start the async event ticker automatically with the context.
  bool StartEventBus = true;
};

/// Per-"VM" runtime services.
class RuntimeContext {
public:
  explicit RuntimeContext(RuntimeConfig Config = RuntimeConfig())
      : Config(Config) {
    if (Config.StartEventBus && Config.AsyncEventPeriod.count() > 0)
      Bus.start(Config.AsyncEventPeriod);
  }

  ~RuntimeContext() { Bus.stop(); }

  RuntimeContext(const RuntimeContext &) = delete;
  RuntimeContext &operator=(const RuntimeContext &) = delete;

  MonitorTable &monitors() { return Monitors; }
  AsyncEventBus &eventBus() { return Bus; }
  const RuntimeConfig &config() const { return Config; }

  /// Aggregated protocol counters across all threads (process-wide; use
  /// snapshot deltas to attribute them to a measurement window).
  ProtocolCounters counters() {
    return ThreadRegistry::instance().totalCounters();
  }

private:
  RuntimeConfig Config;
  MonitorTable Monitors;
  AsyncEventBus Bus;
};

} // namespace solero

#endif // SOLERO_RUNTIME_RUNTIMECONTEXT_H

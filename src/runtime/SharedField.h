//===- runtime/SharedField.h - Speculation-safe data fields -----*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SharedField<T> wraps data that may be read inside an elided (speculative)
/// read-only critical section while a writer holding the lock mutates it.
///
/// In the paper's JVM, field accesses are naturally untorn (Java guarantees
/// 64-bit-at-most atomicity for references and JIT-emitted loads). In C++ a
/// racing plain load is undefined behaviour, so every field that a
/// speculative reader may touch is a relaxed std::atomic. The relaxed
/// ordering is exactly the seqlock discipline: the protocol-level fences in
/// the elision engine (core/SoleroLock.h) provide all required ordering.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_RUNTIME_SHAREDFIELD_H
#define SOLERO_RUNTIME_SHAREDFIELD_H

#include <atomic>
#include <type_traits>

namespace solero {

/// A data field that is safe to read speculatively. Reads and writes are
/// relaxed atomics; protocol fences order them.
template <typename T> class SharedField {
  static_assert(std::is_trivially_copyable_v<T>,
                "SharedField requires a trivially copyable type");

public:
  SharedField() : Value(T{}) {}
  explicit SharedField(T Init) : Value(Init) {}

  SharedField(const SharedField &) = delete;
  SharedField &operator=(const SharedField &) = delete;

  /// Relaxed load. Inside an elided section the result may be stale or
  /// mutually inconsistent with other fields; end-of-section validation (or
  /// a checkpoint) decides whether it can be trusted.
  T read() const { return Value.load(std::memory_order_relaxed); }

  /// Relaxed store. Call only while holding the protecting lock for writing.
  void write(T V) { Value.store(V, std::memory_order_relaxed); }

private:
  std::atomic<T> Value;
};

} // namespace solero

#endif // SOLERO_RUNTIME_SHAREDFIELD_H

//===- runtime/OsMonitor.h - Fat-mode monitors ------------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OS monitor backing a lock's fat (inflated) mode, plus the shared
/// contended-acquisition machinery used by both the conventional tasuki
/// lock and SOLERO: three-tier spinning (paper Figure 3), FLC parking,
/// inflation, and deflation.
///
/// Protocol-specific details (what a free word looks like, what word a
/// flat owner installs, what word deflation restores) are supplied through
/// the FlatProtocol descriptor so the tasuki and SOLERO layouts share one
/// verified state machine.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_RUNTIME_OSMONITOR_H
#define SOLERO_RUNTIME_OSMONITOR_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "runtime/LockWord.h"
#include "runtime/ThreadRegistry.h"
#include "support/Backoff.h"

namespace solero {

class MonitorTable;

/// Per-protocol lock-word encodings needed by the shared fat-mode machinery.
struct FlatProtocol {
  /// Word installed by a flat acquisition by the thread with \p TidBits.
  uint64_t (*heldWordFor)(uint64_t TidBits);
  /// True if \p V is a free (acquirable) flat word.
  bool (*isFree)(uint64_t V);
  /// Word written back on deflation given the free word \p FreeV observed
  /// when the lock was inflated. SOLERO restores FreeV + 0x100 so
  /// speculating readers detect the inflated episode; the conventional
  /// protocol restores 0.
  uint64_t (*restoreWord)(uint64_t FreeV);
};

/// The conventional (tasuki, Figure 2) flat-word encoding.
extern const FlatProtocol ConvFlatProtocol;
/// The SOLERO (Figure 6) flat-word encoding.
extern const FlatProtocol SoleroFlatProtocol;

/// How a contended acquisition finally succeeded.
enum class AcquireKind {
  Flat, ///< acquired the flat lock; AcquireResult::V1 is the prior free word
  Fat   ///< acquired (or recursively re-entered) the inflated monitor
};

struct AcquireResult {
  AcquireKind Kind;
  uint64_t V1; ///< free word observed before a flat CAS (Flat only)
};

/// A heavyweight monitor: mutex + condition variable + logical owner. One
/// exists per object that ever needed fat mode; the mapping lives in
/// MonitorTable and is stable for the object's lifetime.
class OsMonitor {
public:
  explicit OsMonitor(uint32_t Index) : Index(Index) {}

  OsMonitor(const OsMonitor &) = delete;
  OsMonitor &operator=(const OsMonitor &) = delete;

  /// Result of one parking round of acquireOrPark().
  enum class ParkResult {
    AcquiredFat, ///< caller now owns the fat lock
    Restart      ///< the word stopped designating this monitor (deflation);
                 ///< caller must restart acquisition from the top
  };

  /// The contended slow path once spinning has given up. Runs under the
  /// monitor mutex: acquires the fat lock if the word designates this
  /// monitor, inflates the lock if the word is free, or sets the FLC bit
  /// and parks if the word is thin-held by another thread. Parks are timed
  /// (RuntimeConfig::ParkMicros) so the theoretically-lost FLC wakeup that
  /// a blind release store can cause (see DESIGN.md) degrades to bounded
  /// latency instead of a hang.
  ParkResult acquireOrPark(ObjectHeader &H, const FlatProtocol &P,
                           ThreadState &TS, std::chrono::microseconds Park);

  /// Exits one level of the fat lock. When the recursion count reaches zero
  /// and no thread is parked here, deflates: writes the restore word back
  /// into \p H (paper Section 3.1's deflation with the incremented counter).
  void fatExit(ObjectHeader &H, ThreadState &TS);

  /// Converts a flat lock *held by the caller* into this fat monitor.
  /// \p Recursion is the monitor-level recursion to carry over and
  /// \p RestoreW the word deflation must publish.
  void inflateHeldByOwner(ObjectHeader &H, ThreadState &TS, uint32_t Recursion,
                          uint64_t RestoreW);

  /// True if the calling thread owns the fat lock.
  bool isOwner(const ThreadState &TS);

  /// Wakes threads parked on this monitor. Called by a flat-lock releaser
  /// that observed the FLC bit (paper Figure 9's check_flc).
  void notifyFlatRelease();

  // --- Object.wait / notify (fat mode only; waiting forces inflation) ----

  /// Java Object.wait: the caller must own the fat lock. Releases it,
  /// sleeps until notified (or a Park tick — callers treat returns as
  /// possibly spurious, the Java contract), then reacquires before
  /// returning. The monitor never deflates while its wait set is
  /// non-empty.
  void fatWait(ObjectHeader &H, ThreadState &TS,
               std::chrono::microseconds Park);

  /// Java Object.notify / notifyAll: the caller must own the fat lock.
  void fatNotify(ThreadState &TS, bool All);

  /// Number of threads in the wait set (tests).
  uint32_t waitSetSize();

  uint32_t index() const { return Index; }

  /// Fat-mode word for this monitor.
  uint64_t inflatedWord() const { return lockword::inflatedWord(Index); }

private:
  const uint32_t Index;
  std::mutex Mu;
  std::condition_variable Cv;
  std::condition_variable WaitCv; // Object.wait sleepers
  uint64_t OwnerTid = 0;    // guarded by Mu; 0 = unowned
  uint32_t Recursion = 0;   // guarded by Mu
  uint32_t Waiters = 0;     // guarded by Mu; parked or about-to-park threads
  uint32_t WaitSet = 0;     // guarded by Mu; threads inside fatWait
  uint64_t RestoreWord = 0; // guarded by Mu; written back on deflation
};

/// Runs the full contended acquisition: three-tier spin (Figure 3), then
/// the inflate/park slow path. \p Tiers and \p Park come from RuntimeConfig.
AcquireResult contendedAcquire(MonitorTable &Monitors, ObjectHeader &H,
                               const FlatProtocol &P, ThreadState &TS,
                               const SpinTiers &Tiers,
                               std::chrono::microseconds Park);

} // namespace solero

#endif // SOLERO_RUNTIME_OSMONITOR_H

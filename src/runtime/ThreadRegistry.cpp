//===- runtime/ThreadRegistry.cpp - Per-thread runtime state --------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadRegistry.h"

#include "support/Assert.h"

using namespace solero;

ThreadRegistry &ThreadRegistry::instance() {
  // Function-local static: initialized on first use, avoiding global
  // constructor ordering issues.
  static ThreadRegistry Registry;
  return Registry;
}

thread_local ThreadState *solero::detail::CurrentThreadState = nullptr;

/// RAII holder living in thread-local storage; its destructor runs at
/// thread exit and returns the slot to the registry.
struct ThreadRegistry::Tls {
  ThreadState *TS = nullptr;
  ~Tls() {
    if (TS) {
      detail::CurrentThreadState = nullptr;
      ThreadRegistry::instance().unregisterThread(TS);
    }
  }
};

ThreadState &ThreadRegistry::currentSlow() {
  thread_local Tls Holder;
  if (!Holder.TS) {
    Holder.TS = instance().registerThread();
    detail::CurrentThreadState = Holder.TS;
  }
  return *Holder.TS;
}

ThreadState *ThreadRegistry::registerThread() {
  std::lock_guard<std::mutex> G(Mu);
  uint32_t Slot = 0;
  while (Slot < Live.size() && Live[Slot] != nullptr)
    ++Slot;
  SOLERO_CHECK(Slot < MaxThreads,
               "thread registry full: more than ThreadRegistry::MaxThreads "
               "concurrently live threads (per-slot tables would overflow)");
  if (Slot == Live.size())
    Live.push_back(nullptr);
  auto *TS = new ThreadState();
  TS->Slot = Slot;
  TS->TidBits = (static_cast<uint64_t>(Slot) + 1) << lockword::TidShift;
  Live[Slot] = TS;
  return TS;
}

void ThreadRegistry::unregisterThread(ThreadState *TS) {
  SOLERO_CHECK(TS->readDepth() == 0,
               "thread exited inside a speculative read-only section");
  std::lock_guard<std::mutex> G(Mu);
  Retired += TS->Counters;
  Live[TS->Slot] = nullptr;
  delete TS;
}

ProtocolCounters ThreadRegistry::totalCounters() {
  std::lock_guard<std::mutex> G(Mu);
  ProtocolCounters Sum = Retired;
  for (ThreadState *TS : Live)
    if (TS)
      Sum += TS->Counters;
  return Sum;
}

std::size_t ThreadRegistry::liveThreadCount() {
  std::lock_guard<std::mutex> G(Mu);
  std::size_t N = 0;
  for (ThreadState *TS : Live)
    if (TS)
      ++N;
  return N;
}

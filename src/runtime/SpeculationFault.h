//===- runtime/SpeculationFault.h - Inconsistent-read abort -----*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abort signal thrown when an in-flight read-only critical section is
/// found (at an asynchronous check point, paper Section 3.3) to have read
/// inconsistent data. The elision engine catches it at the boundary of the
/// failed section and retries.
///
/// This is the one sanctioned use of C++ exceptions in the library: the
/// mechanism under study *is* exception-based recovery (the paper reuses
/// Java exception handling), so the control transfer is reproduced as-is.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_RUNTIME_SPECULATIONFAULT_H
#define SOLERO_RUNTIME_SPECULATIONFAULT_H

#include <cstddef>

namespace solero {

/// Thrown to abort speculative execution of read-only critical sections.
/// \c Depth identifies the outermost invalidated speculation frame (an index
/// into the thread's read-record stack); nested elision frames rethrow the
/// fault until it reaches the frame that owns that record.
struct SpeculationFault {
  std::size_t Depth = 0;
};

} // namespace solero

#endif // SOLERO_RUNTIME_SPECULATIONFAULT_H

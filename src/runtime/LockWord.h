//===- runtime/LockWord.h - Bimodal lock word layouts -----------*- C++ -*-===//
//
// Part of the SOLERO reproduction of Nakaike & Michael, PLDI 2010.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-exact lock word layouts from the paper (Figures 1 and 5).
///
/// Conventional (tasuki) flat lock:     SOLERO flat lock:
///   bit 0    : inflation                 bit 0    : inflation
///   bit 1    : FLC                       bit 1    : FLC
///   bits 2..7: recursion (6 bits)        bit 2    : LOCK bit
///   bits 8+  : thread id / monitor id    bits 3..7: recursion (5 bits)
///                                        bits 8+  : counter (free) /
///                                                   thread id (held) /
///                                                   monitor id (inflated)
///
/// The fast paths in locks/TasukiLock.h and core/SoleroLock.h use the exact
/// mask constants of the paper's pseudocode (0x7, 0xff, +0x8, +0x100, ...).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_RUNTIME_LOCKWORD_H
#define SOLERO_RUNTIME_LOCKWORD_H

#include <atomic>
#include <cstdint>

namespace solero {
namespace lockword {

/// Bit 0: set while the lock is in fat (inflated) mode.
inline constexpr uint64_t InflationBit = 0x1;
/// Bit 1: flat-lock-contention bit; a contender sets it before parking.
inline constexpr uint64_t FlcBit = 0x2;
/// Bit 2 (SOLERO only): set while the flat lock is held by a writer.
inline constexpr uint64_t SoleroLockBit = 0x4;

/// Shift of the thread id / counter / monitor id field.
inline constexpr unsigned TidShift = 8;

/// SOLERO recursion field: bits 3..7 in units of 0x8 (paper Figure 8
/// increments the count with `obj->lock += 0x8`).
inline constexpr uint64_t SoleroRecUnit = 0x8;
inline constexpr uint64_t SoleroRecMask = 0xf8;
inline constexpr uint64_t SoleroRecMax = 31;

/// Conventional recursion field: bits 2..7 in units of 0x4 (six bits, as in
/// paper Figure 2's "six recursion bits").
inline constexpr uint64_t ConvRecUnit = 0x4;
inline constexpr uint64_t ConvRecMask = 0xfc;
inline constexpr uint64_t ConvRecMax = 63;

/// One increment of the SOLERO sequence counter (paper Figure 6 line 18:
/// `obj->lock = v1 + 0x100`).
inline constexpr uint64_t CounterUnit = 0x100;

/// Mask of everything below the tid/counter field.
inline constexpr uint64_t LowBitsMask = 0xff;

/// The tid / counter / monitor-id field of \p V.
inline constexpr uint64_t highField(uint64_t V) { return V & ~LowBitsMask; }

/// True if \p V designates a fat (inflated) lock.
inline constexpr bool isInflated(uint64_t V) { return (V & InflationBit) != 0; }

/// Encodes monitor table index \p Idx as a fat-mode lock word.
inline constexpr uint64_t inflatedWord(uint32_t Idx) {
  return ((static_cast<uint64_t>(Idx) + 1) << TidShift) | InflationBit;
}

/// Extracts the monitor table index from a fat-mode word.
inline constexpr uint32_t monitorIndex(uint64_t V) {
  return static_cast<uint32_t>((V >> TidShift) - 1);
}

// --- SOLERO-layout helpers ----------------------------------------------

/// True if the SOLERO word is free (counter state, elidable): the inflation,
/// FLC, and LOCK bits are all clear. This is the paper's `(v & 0x7) == 0`.
inline constexpr bool soleroIsFree(uint64_t V) { return (V & 0x7) == 0; }

/// The word a SOLERO writer installs on acquisition: `thread_id + LOCK_BIT`.
inline constexpr uint64_t soleroHeldWord(uint64_t TidBits) {
  return TidBits | SoleroLockBit;
}

/// True if the SOLERO word is flat-held by the thread with id bits \p Tid.
inline constexpr bool soleroHeldBy(uint64_t V, uint64_t TidBits) {
  return (V & SoleroLockBit) != 0 && !isInflated(V) && highField(V) == TidBits;
}

/// Recursion count of a SOLERO flat-held word.
inline constexpr uint64_t soleroRecursion(uint64_t V) {
  return (V & SoleroRecMask) >> 3;
}

// --- Conventional-layout helpers ----------------------------------------

/// True if the conventional word is flat-held by thread id bits \p Tid.
inline constexpr bool convHeldBy(uint64_t V, uint64_t TidBits) {
  return !isInflated(V) && highField(V) == TidBits && TidBits != 0;
}

/// Recursion count of a conventional flat-held word.
inline constexpr uint64_t convRecursion(uint64_t V) {
  return (V & ConvRecMask) >> 2;
}

} // namespace lockword

/// The per-object lock variable. Embed one in every guest object that is
/// used as a monitor, exactly as every Java object carries a lock word.
class ObjectHeader {
public:
  ObjectHeader() = default;
  ObjectHeader(const ObjectHeader &) = delete;
  ObjectHeader &operator=(const ObjectHeader &) = delete;

  std::atomic<uint64_t> &word() { return Word; }
  const std::atomic<uint64_t> &word() const { return Word; }

private:
  std::atomic<uint64_t> Word{0};
};

} // namespace solero

#endif // SOLERO_RUNTIME_LOCKWORD_H

//===- runtime/OsMonitor.cpp - Fat-mode monitors --------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "runtime/OsMonitor.h"

#include "runtime/MonitorTable.h"
#include "stress/InjectionPoint.h"
#include "support/Assert.h"

using namespace solero;
using namespace solero::lockword;

namespace {

uint64_t convHeldWord(uint64_t TidBits) { return TidBits; }
bool convIsFree(uint64_t V) { return V == 0; }
uint64_t convRestore(uint64_t) { return 0; }

uint64_t soleroHeldWordFor(uint64_t TidBits) { return soleroHeldWord(TidBits); }
bool soleroIsFreeWord(uint64_t V) { return soleroIsFree(V); }
uint64_t soleroRestore(uint64_t FreeV) { return FreeV + CounterUnit; }

} // namespace

const FlatProtocol solero::ConvFlatProtocol = {convHeldWord, convIsFree,
                                               convRestore};
const FlatProtocol solero::SoleroFlatProtocol = {soleroHeldWordFor,
                                                 soleroIsFreeWord,
                                                 soleroRestore};

OsMonitor::ParkResult OsMonitor::acquireOrPark(ObjectHeader &H,
                                               const FlatProtocol &P,
                                               ThreadState &TS,
                                               std::chrono::microseconds Park) {
  std::unique_lock<std::mutex> L(Mu);
  for (;;) {
    uint64_t V = H.word().load(std::memory_order_acquire);
    if (isInflated(V)) {
      if (monitorIndex(V) != Index)
        return ParkResult::Restart;
      if (OwnerTid == 0) {
        OwnerTid = TS.tidBits();
        Recursion = 0;
        return ParkResult::AcquiredFat;
      }
      if (OwnerTid == TS.tidBits()) {
        ++Recursion;
        return ParkResult::AcquiredFat;
      }
      ++Waiters;
      Cv.wait_for(L, Park);
      --Waiters;
      continue;
    }
    if (P.isFree(V)) {
      // Free: acquire by inflating directly. We hold the monitor mutex, so
      // once the word designates this monitor we own the fat lock.
      SOLERO_INJECT(MonitorInflate);
      ++TS.Counters.AtomicRmws;
      uint64_t Expected = V;
      if (H.word().compare_exchange_strong(Expected, inflatedWord(),
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        OwnerTid = TS.tidBits();
        Recursion = 0;
        RestoreWord = P.restoreWord(V);
        ++TS.Counters.Inflations;
        return ParkResult::AcquiredFat;
      }
      continue;
    }
    // Thin-held by another thread: make sure the FLC bit is visible to the
    // releaser, then park (timed; see header for why).
    if ((V & FlcBit) == 0) {
      SOLERO_INJECT(MonitorFlcSet);
      ++TS.Counters.AtomicRmws;
      uint64_t Expected = V;
      if (!H.word().compare_exchange_strong(Expected, V | FlcBit,
                                            std::memory_order_relaxed,
                                            std::memory_order_relaxed))
        continue;
    }
    SOLERO_INJECT(MonitorPark);
    ++TS.Counters.FlcWaits;
    ++Waiters;
    Cv.wait_for(L, Park);
    --Waiters;
  }
}

void OsMonitor::fatExit(ObjectHeader &H, ThreadState &TS) {
  {
    std::lock_guard<std::mutex> L(Mu);
    SOLERO_CHECK(OwnerTid == TS.tidBits(), "fatExit by non-owner thread");
    if (Recursion > 0) {
      --Recursion;
      return;
    }
    OwnerTid = 0;
    if (Waiters == 0 && WaitSet == 0) {
      // Nobody is parked or waiting: deflate back to flat mode, publishing
      // the restore word (SOLERO: the counter incremented at inflation,
      // Section 3.2). A non-empty wait set pins the monitor in fat mode —
      // its sleepers must be reachable by future notify calls.
      SOLERO_INJECT(MonitorDeflate);
      H.word().store(RestoreWord, std::memory_order_release);
      ++TS.Counters.LockWordStores;
      ++TS.Counters.Deflations;
    }
  }
  Cv.notify_all();
}

void OsMonitor::fatWait(ObjectHeader &H, ThreadState &TS,
                        std::chrono::microseconds Park) {
  std::unique_lock<std::mutex> L(Mu);
  SOLERO_CHECK(OwnerTid == TS.tidBits(), "Object.wait by non-owner");
  // Release the lock completely, remembering the recursion depth.
  uint32_t SavedRecursion = Recursion;
  Recursion = 0;
  OwnerTid = 0;
  ++WaitSet;
  Cv.notify_all(); // hand the lock to an entry waiter
  // One possibly-spurious sleep (the Java contract allows spurious
  // wakeups; guests wait in predicate loops).
  WaitCv.wait_for(L, Park);
  --WaitSet;
  // Reacquire before returning.
  while (OwnerTid != 0) {
    ++Waiters;
    Cv.wait_for(L, Park);
    --Waiters;
  }
  OwnerTid = TS.tidBits();
  Recursion = SavedRecursion;
}

void OsMonitor::fatNotify(ThreadState &TS, bool All) {
  std::lock_guard<std::mutex> L(Mu);
  SOLERO_CHECK(OwnerTid == TS.tidBits(), "Object.notify by non-owner");
  if (All)
    WaitCv.notify_all();
  else
    WaitCv.notify_one();
}

uint32_t OsMonitor::waitSetSize() {
  std::lock_guard<std::mutex> L(Mu);
  return WaitSet;
}

void OsMonitor::inflateHeldByOwner(ObjectHeader &H, ThreadState &TS,
                                   uint32_t Rec, uint64_t RestoreW) {
  std::lock_guard<std::mutex> L(Mu);
  SOLERO_CHECK(OwnerTid == 0, "inflate-held: monitor unexpectedly owned");
  OwnerTid = TS.tidBits();
  Recursion = Rec;
  RestoreWord = RestoreW;
  // The caller owns the flat lock, so a blind store cannot lose an update
  // other than a concurrently-set FLC bit; FLC parkers use timed waits and
  // re-examine the (now inflated) word when they wake.
  SOLERO_INJECT(MonitorInflate);
  H.word().store(inflatedWord(), std::memory_order_release);
  ++TS.Counters.LockWordStores;
  ++TS.Counters.Inflations;
}

bool OsMonitor::isOwner(const ThreadState &TS) {
  std::lock_guard<std::mutex> L(Mu);
  return OwnerTid == TS.tidBits();
}

void OsMonitor::notifyFlatRelease() {
  // Taking the mutex orders this notify after any in-progress park decision.
  { std::lock_guard<std::mutex> L(Mu); }
  Cv.notify_all();
}

AcquireResult solero::contendedAcquire(MonitorTable &Monitors, ObjectHeader &H,
                                       const FlatProtocol &P, ThreadState &TS,
                                       const SpinTiers &Tiers,
                                       std::chrono::microseconds Park) {
  for (;;) {
    // Spin phase: the three-tier scheme of paper Figure 3.
    bool SawFat = false;
    for (int I = 0; I < Tiers.Tier3 && !SawFat; ++I) {
      for (int J = 0; J < Tiers.Tier2; ++J) {
        uint64_t V = H.word().load(std::memory_order_acquire);
        if (P.isFree(V)) {
          ++TS.Counters.AtomicRmws;
          if (H.word().compare_exchange_weak(V, P.heldWordFor(TS.tidBits()),
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed))
            return {AcquireKind::Flat, V};
        } else if (isInflated(V)) {
          SawFat = true;
          break;
        }
        spinTier1(Tiers.Tier1);
      }
      if (!SawFat)
        osYield();
    }
    // Park phase: enter fat mode (inflating if needed).
    OsMonitor &M = Monitors.monitorFor(H);
    if (M.acquireOrPark(H, P, TS, Park) == OsMonitor::ParkResult::AcquiredFat)
      return {AcquireKind::Fat, 0};
    // Restart: the word stopped designating M (deflation race); spin again.
  }
}

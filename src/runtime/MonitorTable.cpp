//===- runtime/MonitorTable.cpp - Object-to-monitor mapping ---------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "runtime/MonitorTable.h"

#include "support/Assert.h"

using namespace solero;

OsMonitor &MonitorTable::monitorFor(const ObjectHeader &H) {
  std::lock_guard<std::mutex> G(Mu);
  auto It = Map.find(&H);
  if (It != Map.end())
    return Monitors[It->second];
  uint32_t Idx = static_cast<uint32_t>(Monitors.size());
  Monitors.emplace_back(Idx);
  Map.emplace(&H, Idx);
  return Monitors[Idx];
}

OsMonitor *MonitorTable::lookup(const ObjectHeader &H) {
  std::lock_guard<std::mutex> G(Mu);
  auto It = Map.find(&H);
  return It == Map.end() ? nullptr : &Monitors[It->second];
}

OsMonitor &MonitorTable::byIndex(uint32_t Idx) {
  std::lock_guard<std::mutex> G(Mu);
  SOLERO_CHECK(Idx < Monitors.size(), "monitor index out of range");
  return Monitors[Idx];
}

std::size_t MonitorTable::size() {
  std::lock_guard<std::mutex> G(Mu);
  return Monitors.size();
}

//===- runtime/ThreadRegistry.h - Per-thread runtime state ------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JVM-style per-thread state: a small stable thread id whose bits slot into
/// lock words, the read-record stack walked by asynchronous read validation
/// (paper Section 3.3), the poll flag set by the async event bus, and the
/// per-thread protocol counters behind Table 1 / Figure 15.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_RUNTIME_THREADREGISTRY_H
#define SOLERO_RUNTIME_THREADREGISTRY_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "runtime/LockWord.h"
#include "support/Assert.h"
#include "support/CacheLine.h"

namespace solero {

/// A uint64_t statistic cell written by its owner thread and read racily by
/// aggregators. The atomic makes the cross-thread read well-defined (no
/// TSan data race) without RMW cost: increments are a relaxed load + add +
/// relaxed store, which compiles to the same plain `add` instruction a raw
/// uint64_t would on x86/ARM — safe precisely because only the owner
/// thread writes. Aggregators may see a slightly stale value; they already
/// tolerated that by design.
class RelaxedCounter {
public:
  RelaxedCounter() = default;
  RelaxedCounter(uint64_t V) : Cell(V) {}
  RelaxedCounter(const RelaxedCounter &O) : Cell(O.value()) {}
  RelaxedCounter &operator=(const RelaxedCounter &O) {
    Cell.store(O.value(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter &operator=(uint64_t V) {
    Cell.store(V, std::memory_order_relaxed);
    return *this;
  }

  /// Implicit read so counters keep behaving like integers in arithmetic
  /// and comparisons; use value() where overload sets are ambiguous
  /// (std::to_string and friends).
  operator uint64_t() const { return value(); }
  uint64_t value() const { return Cell.load(std::memory_order_relaxed); }

  // Owner-thread-only mutation: deliberately not fetch_add.
  RelaxedCounter &operator++() { return *this += 1; }
  RelaxedCounter &operator+=(uint64_t D) {
    Cell.store(value() + D, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter &operator-=(uint64_t D) {
    Cell.store(value() - D, std::memory_order_relaxed);
    return *this;
  }

private:
  std::atomic<uint64_t> Cell{0};
};

/// Counters maintained per thread with owner-only increments and
/// aggregated on demand (RelaxedCounter makes the racy aggregation reads
/// well-defined). AtomicRmws and LockWordStores are the coherence-traffic
/// proxies discussed in DESIGN.md: the paper attributes the scalability
/// gap to atomic updates of lock variables, so counting them reproduces
/// the scalability *shape* independent of core count.
struct ProtocolCounters {
  RelaxedCounter WriteEntries;     ///< mutual-exclusion / writing CS entries
  RelaxedCounter ReadOnlyEntries;  ///< read-only CS entries
  RelaxedCounter AtomicRmws;       ///< CAS / fetch_add on lock state
  RelaxedCounter LockWordStores;   ///< plain stores to lock state
  RelaxedCounter ElisionAttempts;  ///< speculative executions started
  RelaxedCounter ElisionSuccesses; ///< validated speculative executions
  RelaxedCounter ElisionFailures;  ///< failed validations (Fig. 15 numerator)
  RelaxedCounter Fallbacks;        ///< retries that acquired the lock for real
  RelaxedCounter FaultRetries;     ///< guest exceptions absorbed as failures
  RelaxedCounter AsyncAborts;      ///< aborts raised at async check points
  RelaxedCounter Inflations;
  RelaxedCounter Deflations;
  RelaxedCounter FlcWaits;         ///< parks on the flat-lock-contention path

  // Adaptive elision controller (DESIGN.md "Adaptive elision"). The
  // per-state attempt counters partition ElisionAttempts when the
  // controller is on: Elide-state attempts are the remainder.
  RelaxedCounter ElisionSkips;      ///< read sections bypassing speculation
  RelaxedCounter SpecRetries;       ///< re-attempts after failed speculation
  RelaxedCounter ThrottledAttempts; ///< attempts issued in Throttled state
  RelaxedCounter ReprobeAttempts;   ///< attempts issued in Reprobe state
  RelaxedCounter CtrlThrottles;     ///< Elide -> Throttled transitions
  RelaxedCounter CtrlDisables;      ///< -> Disabled transitions
  RelaxedCounter CtrlReprobes;      ///< Disabled -> Reprobe transitions
  RelaxedCounter CtrlReenables;     ///< -> Elide re-enables

  ProtocolCounters &operator+=(const ProtocolCounters &O) {
    WriteEntries += O.WriteEntries;
    ReadOnlyEntries += O.ReadOnlyEntries;
    AtomicRmws += O.AtomicRmws;
    LockWordStores += O.LockWordStores;
    ElisionAttempts += O.ElisionAttempts;
    ElisionSuccesses += O.ElisionSuccesses;
    ElisionFailures += O.ElisionFailures;
    Fallbacks += O.Fallbacks;
    FaultRetries += O.FaultRetries;
    AsyncAborts += O.AsyncAborts;
    Inflations += O.Inflations;
    Deflations += O.Deflations;
    FlcWaits += O.FlcWaits;
    ElisionSkips += O.ElisionSkips;
    SpecRetries += O.SpecRetries;
    ThrottledAttempts += O.ThrottledAttempts;
    ReprobeAttempts += O.ReprobeAttempts;
    CtrlThrottles += O.CtrlThrottles;
    CtrlDisables += O.CtrlDisables;
    CtrlReprobes += O.CtrlReprobes;
    CtrlReenables += O.CtrlReenables;
    return *this;
  }
};

/// One in-flight speculative read-only section: the monitor object and the
/// lock value observed at entry (the paper's "local lock variable").
struct ReadRecord {
  ObjectHeader *Header = nullptr;
  uint64_t Value = 0;
};

/// Per-OS-thread runtime state. Obtained via ThreadRegistry::current();
/// never shared between threads except for the fields documented as such.
class alignas(CacheLineSize) ThreadState {
public:
  /// Thread id bits pre-shifted into lock word position (bits 8+, nonzero).
  uint64_t tidBits() const { return TidBits; }

  /// Registry slot (0-based), handy as a dense per-thread index.
  uint32_t slot() const { return Slot; }

  // -- Read-record stack (owner thread only) ------------------------------
  /// Fixed-capacity stack: speculation nests lexically, so depth is tiny;
  /// a flat array keeps the elision fast path allocation- and branch-lean.
  static constexpr std::size_t MaxReadDepth = 64;

  std::size_t pushRead(ObjectHeader &H, uint64_t V) {
    SOLERO_CHECK(ReadsDepth < MaxReadDepth, "speculation nested too deeply");
    Reads[ReadsDepth] = ReadRecord{&H, V};
    return ReadsDepth++;
  }
  void popRead() {
    SOLERO_CHECK(ReadsDepth > 0, "popRead on empty record stack");
    --ReadsDepth;
  }
  /// Records [0, readDepth()); walk with readRecord(I).
  const ReadRecord &readRecord(std::size_t I) const { return Reads[I]; }
  std::size_t readDepth() const { return ReadsDepth; }

  // -- SOLERO recursion-overflow side table (owner thread only) -----------
  // Used when a SOLERO flat lock's 5 recursion bits saturate; see
  // core/SoleroLock.h for why SOLERO avoids saturation inflation.
  void pushRecursionOverflow(ObjectHeader &H) { Overflow.push_back(&H); }
  bool popRecursionOverflow(ObjectHeader &H) {
    if (Overflow.empty() || Overflow.back() != &H)
      return false;
    Overflow.pop_back();
    return true;
  }
  bool hasRecursionOverflow(ObjectHeader &H) const {
    return !Overflow.empty() && Overflow.back() == &H;
  }

  /// Poll flag: written by the async event bus, consumed by this thread at
  /// check points.
  std::atomic<uint32_t> PollFlag{0};

  /// Per-thread protocol counters (owner thread writes; aggregation reads
  /// them racily through RelaxedCounter's atomics). On its own cache line:
  /// PollFlag above is written by *other* threads, and without the
  /// alignment every async-event tick would invalidate the line holding
  /// these hot fast-path counters in the owner's cache.
  alignas(CacheLineSize) ProtocolCounters Counters;

  /// Adaptive-elision thread-local accounting (core/ElisionController.h):
  /// in the Elide state each thread runs its own decayed failure window
  /// here, and in Disabled it draws skip budget in chunks into a local
  /// allowance, so neither per-section fast path performs an atomic RMW.
  /// Keyed by controller address only — the key is never dereferenced, so
  /// a key left behind by a destroyed lock is harmless (the local window
  /// is simply abandoned on mismatch).
  const void *ElisionCtrlKey = nullptr;
  uint32_t LocalElisionAttempts = 0;
  uint32_t LocalElisionFailures = 0;
  uint32_t ElisionSkipAllowance = 0;

private:
  friend class ThreadRegistry;
  uint64_t TidBits = 0;
  uint32_t Slot = 0;
  uint32_t ReadsDepth = 0;
  ReadRecord Reads[MaxReadDepth];
  std::vector<ObjectHeader *> Overflow;
};

namespace detail {
/// Fast-path cache for ThreadRegistry::current(). Internal.
extern thread_local ThreadState *CurrentThreadState;
} // namespace detail

/// Process-wide registry handing out ThreadStates. A thread registers
/// lazily on first use and unregisters automatically at thread exit; slots
/// (and thus tid bits) are recycled.
class ThreadRegistry {
public:
  /// Hard capacity on concurrently registered threads. Slots are recycled
  /// at thread exit, so this bounds *live* threads, not lifetime threads.
  /// Components that key per-thread arrays by slot() (ReadWriteLock's
  /// read-hold table, the BRAVO visible-readers table) size them from this
  /// constant; registerThread() aborts with a diagnostic rather than hand
  /// out a slot those arrays would index out of bounds.
  static constexpr uint32_t MaxThreads = 1024;

  /// The process-wide registry.
  static ThreadRegistry &instance();

  /// The calling thread's state (registers on first call). The fast path
  /// is a single TLS load; lock fast paths call this per critical section.
  static ThreadState &current() {
    ThreadState *TS = detail::CurrentThreadState;
    if (TS)
      return *TS;
    return currentSlow();
  }

  /// Runs \p F once per live registered thread, under the registry lock.
  /// Used by the async event bus and by counter aggregation.
  template <typename Fn> void forEachThread(Fn &&F) {
    std::lock_guard<std::mutex> G(Mu);
    for (ThreadState *TS : Live)
      if (TS)
        F(*TS);
  }

  /// Sum of counters across live threads plus threads that already exited.
  ProtocolCounters totalCounters();

  /// Number of currently registered threads.
  std::size_t liveThreadCount();

private:
  ThreadRegistry() = default;
  static ThreadState &currentSlow();
  ThreadState *registerThread();
  void unregisterThread(ThreadState *TS);

  struct Tls;

  std::mutex Mu;
  std::vector<ThreadState *> Live; // indexed by slot; null = free slot
  ProtocolCounters Retired;        // counters of exited threads
};

} // namespace solero

#endif // SOLERO_RUNTIME_THREADREGISTRY_H

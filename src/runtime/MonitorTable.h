//===- runtime/MonitorTable.h - Object-to-monitor mapping -------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps monitor objects (ObjectHeader addresses) to their OS monitors, as
/// the paper's JVM "retrieves an OS monitor mapped to a monitor object".
/// The mapping is created on first inflation and stays stable afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_RUNTIME_MONITORTABLE_H
#define SOLERO_RUNTIME_MONITORTABLE_H

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "runtime/OsMonitor.h"

namespace solero {

/// Thread-safe registry of OS monitors, keyed by object identity.
class MonitorTable {
public:
  MonitorTable() = default;
  MonitorTable(const MonitorTable &) = delete;
  MonitorTable &operator=(const MonitorTable &) = delete;

  /// The monitor for \p H, created on first use. The returned reference is
  /// stable for the lifetime of this table.
  OsMonitor &monitorFor(const ObjectHeader &H);

  /// The monitor for \p H if one exists, else nullptr. Used by held-by-self
  /// checks that must not allocate.
  OsMonitor *lookup(const ObjectHeader &H);

  /// Monitor by fat-word index (lockword::monitorIndex).
  OsMonitor &byIndex(uint32_t Idx);

  /// Number of monitors ever created (== number of distinct objects that
  /// were inflated at least once).
  std::size_t size();

private:
  std::mutex Mu;
  std::unordered_map<const ObjectHeader *, uint32_t> Map;
  std::deque<OsMonitor> Monitors; // deque: stable element addresses
};

} // namespace solero

#endif // SOLERO_RUNTIME_MONITORTABLE_H

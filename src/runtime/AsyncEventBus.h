//===- runtime/AsyncEventBus.h - Asynchronous read-validation events -*-C++-*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JVM in the paper "sends occasionally asynchronous events to threads"
/// (the same channel used for GC checks); each thread notices the event at
/// a check point and validates the read consistency of any in-flight
/// read-only critical section, breaking inconsistent-read infinite loops
/// (Section 3.3). This class is that event source: a low-frequency ticker
/// that raises every registered thread's poll flag.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_RUNTIME_ASYNCEVENTBUS_H
#define SOLERO_RUNTIME_ASYNCEVENTBUS_H

#include <atomic>
#include <chrono>
#include <thread>

namespace solero {

/// Periodically sets the PollFlag of every registered thread. Threads
/// consume the flag at check points (ReadGuard::checkpoint or the CSIR
/// interpreter's back-edge checks).
class AsyncEventBus {
public:
  AsyncEventBus() = default;
  ~AsyncEventBus() { stop(); }

  AsyncEventBus(const AsyncEventBus &) = delete;
  AsyncEventBus &operator=(const AsyncEventBus &) = delete;

  /// Starts the ticker with the given period. No-op if already running.
  void start(std::chrono::microseconds Period);

  /// Stops the ticker and joins its thread. Safe to call repeatedly.
  void stop();

  /// Raises every live thread's poll flag immediately. Also usable without
  /// start() — tests drive validation deterministically through this.
  static void postToAllThreads();

  bool running() const { return Running.load(std::memory_order_acquire); }

  /// Number of ticks delivered since start (for tests/stats).
  uint64_t tickCount() const { return Ticks.load(std::memory_order_relaxed); }

private:
  std::atomic<bool> Running{false};
  std::atomic<uint64_t> Ticks{0};
  std::thread Worker;
};

} // namespace solero

#endif // SOLERO_RUNTIME_ASYNCEVENTBUS_H

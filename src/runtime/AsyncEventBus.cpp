//===- runtime/AsyncEventBus.cpp - Asynchronous read-validation events ----===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "runtime/AsyncEventBus.h"

#include "runtime/ThreadRegistry.h"

using namespace solero;

void AsyncEventBus::start(std::chrono::microseconds Period) {
  bool Expected = false;
  if (!Running.compare_exchange_strong(Expected, true))
    return;
  Worker = std::thread([this, Period] {
    while (Running.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(Period);
      postToAllThreads();
      Ticks.fetch_add(1, std::memory_order_relaxed);
    }
  });
}

void AsyncEventBus::stop() {
  if (!Running.exchange(false))
    return;
  if (Worker.joinable())
    Worker.join();
}

void AsyncEventBus::postToAllThreads() {
  ThreadRegistry::instance().forEachThread([](ThreadState &TS) {
    TS.PollFlag.store(1, std::memory_order_release);
  });
}

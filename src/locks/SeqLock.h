//===- locks/SeqLock.h - Plain sequential lock ------------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Linux-kernel-style sequential lock of paper Figure 4 — the
/// algorithmic basis of SOLERO. Kept deliberately bare: it is not
/// re-entrant, has no contention management, and readers must obey the
/// seqlock restrictions (no pointer chasing into reclaimable memory, loops
/// must be bounded). SOLERO (core/SoleroLock.h) is the version that lifts
/// those restrictions.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_LOCKS_SEQLOCK_H
#define SOLERO_LOCKS_SEQLOCK_H

#include <atomic>
#include <cstdint>

#include "support/Backoff.h"

namespace solero {

/// Counter-based sequential lock. Odd value = write locked.
class SeqLock {
public:
  SeqLock() = default;
  SeqLock(const SeqLock &) = delete;
  SeqLock &operator=(const SeqLock &) = delete;

  /// Acquires the write lock (paper Figure 4(a)). Not re-entrant.
  void writeLock() {
    for (;;) {
      uint64_t V = Counter.load(std::memory_order_relaxed);
      if ((V & 1) == 0 &&
          Counter.compare_exchange_weak(V, V + 1, std::memory_order_acquire,
                                        std::memory_order_relaxed))
        return;
      cpuRelax();
    }
  }

  /// Releases the write lock.
  void writeUnlock() {
    // Counter is odd; the increment publishes all writes in the section.
    Counter.fetch_add(1, std::memory_order_release);
  }

  /// Begins an optimistic read (paper Figure 4(b)): spins past writers and
  /// returns the even counter observed.
  uint64_t readBegin() const {
    for (;;) {
      uint64_t V = Counter.load(std::memory_order_acquire);
      if ((V & 1) == 0) {
        // Order the section's data loads after this point (StoreLoad on the
        // writer side is provided by its RMWs; readers need the seq fence
        // only for Java-style lock ordering, which plain seqlocks do not
        // promise).
        std::atomic_thread_fence(std::memory_order_acquire);
        return V;
      }
      cpuRelax();
    }
  }

  /// True if the section that started at \p V must be re-executed.
  bool readRetry(uint64_t V) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return Counter.load(std::memory_order_relaxed) != V;
  }

  /// Convenience: runs \p F until it executes without interference.
  /// \p F must be side-effect-free and safe to repeat.
  template <typename Fn> auto readProtected(Fn &&F) const {
    for (;;) {
      uint64_t V = readBegin();
      auto Result = F();
      if (!readRetry(V))
        return Result;
    }
  }

  /// Runs \p F under the write lock.
  template <typename Fn> void writeProtected(Fn &&F) {
    writeLock();
    F();
    writeUnlock();
  }

  uint64_t value() const { return Counter.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Counter{0};
};

} // namespace solero

#endif // SOLERO_LOCKS_SEQLOCK_H

//===- locks/ReadWriteLock.cpp - Reentrant read-write lock ----------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "locks/ReadWriteLock.h"

#include "support/Assert.h"
#include "support/Backoff.h"

using namespace solero;

ReadWriteLock::ReadWriteLock(RuntimeContext &Ctx)
    : Ctx(Ctx), ReadHolds(new uint32_t[ThreadRegistry::MaxThreads]()) {}

uint64_t ReadWriteLock::selfOwner() const {
  return static_cast<uint64_t>(ThreadRegistry::current().slot()) + 1;
}

void ReadWriteLock::readLock() {
  ThreadState &TS = ThreadRegistry::current();
  uint64_t Self = selfOwner();
  uint32_t &Holds = ReadHolds[TS.slot()];
  for (int Spin = 0;; ++Spin) {
    uint64_t S = State.load(std::memory_order_relaxed);
    bool OwnWrite = ownerOf(S) == Self;
    bool Reentrant = Holds > 0;
    bool WriterBlocked = ownerOf(S) != 0 && !OwnWrite;
    bool WriterGate = WaitingWriters.load(std::memory_order_relaxed) != 0 &&
                      !OwnWrite && !Reentrant;
    if (!WriterBlocked && !WriterGate) {
      SOLERO_CHECK(readersOf(S) != ReaderMask,
                   "reader count saturated: 2^16-1 concurrent read holds "
                   "would overflow into the writer-recursion bits");
      ++TS.Counters.AtomicRmws;
      if (State.compare_exchange_weak(S, S + 1, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        ++Holds;
        return;
      }
      continue;
    }
    if (Spin < 64) {
      cpuRelax();
      continue;
    }
    // Park until the writer side drains.
    std::unique_lock<std::mutex> L(Mu);
    ReadersCv.wait_for(L, Ctx.config().ParkMicros);
    Spin = 0;
  }
}

void ReadWriteLock::readUnlock() {
  ThreadState &TS = ThreadRegistry::current();
  uint32_t &Holds = ReadHolds[TS.slot()];
  SOLERO_CHECK(Holds > 0, "readUnlock without a read hold");
  --Holds;
  ++TS.Counters.AtomicRmws;
  uint64_t Prev = State.fetch_sub(1, std::memory_order_release);
  SOLERO_CHECK(readersOf(Prev) != 0,
               "readUnlock underflowed the shared reader count");
  if (readersOf(Prev) == 1 &&
      WaitingWriters.load(std::memory_order_acquire) != 0) {
    std::lock_guard<std::mutex> L(Mu);
    WritersCv.notify_all();
  }
}

void ReadWriteLock::writeLock() {
  ThreadState &TS = ThreadRegistry::current();
  uint64_t Self = selfOwner();
  uint64_t S = State.load(std::memory_order_relaxed);
  if (ownerOf(S) == Self) {
    // Reentrant: only this thread mutates the writer fields while it owns
    // the lock, but parked readers may be CASing concurrently, so RMW.
    SOLERO_CHECK((S & RecursionMask) != RecursionMask,
                 "write recursion overflow");
    ++TS.Counters.AtomicRmws;
    State.fetch_add(RecursionUnit, std::memory_order_relaxed);
    return;
  }
  if (S == 0) {
    ++TS.Counters.AtomicRmws;
    if (State.compare_exchange_strong(S, Self << OwnerShift,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed))
      return;
  }
  // Contended: announce, then spin/park until the state drains to zero.
  WaitingWriters.fetch_add(1, std::memory_order_acq_rel);
  for (int Spin = 0;; ++Spin) {
    S = State.load(std::memory_order_relaxed);
    if (S == 0) {
      ++TS.Counters.AtomicRmws;
      if (State.compare_exchange_weak(S, Self << OwnerShift,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        WaitingWriters.fetch_sub(1, std::memory_order_acq_rel);
        return;
      }
      continue;
    }
    if (Spin < 64) {
      cpuRelax();
      continue;
    }
    std::unique_lock<std::mutex> L(Mu);
    WritersCv.wait_for(L, Ctx.config().ParkMicros);
    Spin = 0;
  }
}

void ReadWriteLock::writeUnlock() {
  ThreadState &TS = ThreadRegistry::current();
  uint64_t S = State.load(std::memory_order_relaxed);
  SOLERO_CHECK(ownerOf(S) == selfOwner(), "writeUnlock by non-owner");
  if ((S & RecursionMask) != 0) {
    ++TS.Counters.AtomicRmws;
    State.fetch_sub(RecursionUnit, std::memory_order_relaxed);
    return;
  }
  // Clear the writer fields, keeping any read holds this thread took while
  // owning write (downgrade). Racing reader CASes can only succeed once the
  // writer fields are zero, so computing the new value from S is safe.
  ++TS.Counters.AtomicRmws;
  uint64_t Expected = S;
  bool Ok = State.compare_exchange_strong(Expected, S & ReaderMask,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed);
  SOLERO_CHECK(Ok, "write-held state changed by another thread");
  std::lock_guard<std::mutex> L(Mu);
  ReadersCv.notify_all();
  WritersCv.notify_all();
}

bool ReadWriteLock::writeHeldByCurrentThread() const {
  return ownerOf(State.load(std::memory_order_relaxed)) == selfOwner();
}

uint32_t ReadWriteLock::readerCount() const {
  return static_cast<uint32_t>(
      readersOf(State.load(std::memory_order_relaxed)));
}

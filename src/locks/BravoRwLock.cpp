//===- locks/BravoRwLock.cpp - BRAVO biased reader-writer lock ------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "locks/BravoRwLock.h"

#include <chrono>

#include "support/Assert.h"
#include "support/Backoff.h"
#include "support/NumaTopology.h"

using namespace solero;

// --- BravoReaderTable ------------------------------------------------------

BravoReaderTable &BravoReaderTable::instance() {
  static BravoReaderTable Table;
  return Table;
}

BravoReaderTable::BravoReaderTable()
    : Partitions(NumaTopology::instance().nodeCount()),
      GroupsPerPartition(ThreadRegistry::MaxThreads),
      Groups(new Group[Partitions * GroupsPerPartition]),
      HighWater(new std::atomic<uint32_t>[Partitions]) {
  for (std::size_t G = 0; G < Partitions * GroupsPerPartition; ++G)
    for (Slot &S : Groups[G].Slots)
      S.store(nullptr, std::memory_order_relaxed);
  for (unsigned P = 0; P < Partitions; ++P)
    HighWater[P].store(0, std::memory_order_relaxed);
}

BravoReaderTable::Slot &BravoReaderTable::slotFor(const void *Lock) {
  // The group is pinned per thread on first publication: one cache line in
  // the current NUMA node's partition, at the thread's registry slot. The
  // cache holds for the thread's lifetime (registry slots never change
  // while a thread lives), so steady-state cost is a TLS load plus the
  // lock-address mix.
  struct GroupRef {
    Group *G = nullptr;
    uint64_t ThreadMix = 0;
  };
  static thread_local GroupRef Ref;
  if (!Ref.G) {
    ThreadState &TS = ThreadRegistry::current();
    unsigned Node = NumaTopology::instance().currentNode();
    if (Node >= Partitions)
      Node = 0;
    Ref.G = &Groups[static_cast<std::size_t>(Node) * GroupsPerPartition +
                    TS.slot()];
    Ref.ThreadMix =
        (static_cast<uint64_t>(TS.slot()) + 1) * 0xBF58476D1CE4E5B9ull;
    std::atomic<uint32_t> &HW = HighWater[Node];
    uint32_t Cur = HW.load(std::memory_order_relaxed);
    while (Cur < TS.slot() + 1 &&
           !HW.compare_exchange_weak(Cur, TS.slot() + 1,
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed))
      ;
  }
  uint64_t H =
      (static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Lock)) >> 4) *
          0x9E3779B97F4A7C15ull ^
      Ref.ThreadMix;
  return Ref.G->Slots[(H >> 32) & (SlotsPerGroup - 1)];
}

uint64_t BravoReaderTable::waitForReadersOf(const void *Lock) const {
  uint64_t Drained = 0;
  for (unsigned P = 0; P < Partitions; ++P) {
    std::size_t Used = HighWater[P].load(std::memory_order_acquire);
    const Group *Base = &Groups[static_cast<std::size_t>(P) *
                                GroupsPerPartition];
    for (std::size_t G = 0; G < Used; ++G)
      for (const Slot &S : Base[G].Slots)
        if (S.load(std::memory_order_acquire) == Lock) {
          ++Drained;
          while (S.load(std::memory_order_acquire) == Lock)
            cpuRelax();
        }
  }
  return Drained;
}

uint64_t BravoReaderTable::countReadersOf(const void *Lock) const {
  uint64_t N = 0;
  for (unsigned P = 0; P < Partitions; ++P) {
    std::size_t Used = HighWater[P].load(std::memory_order_acquire);
    const Group *Base = &Groups[static_cast<std::size_t>(P) *
                                GroupsPerPartition];
    for (std::size_t G = 0; G < Used; ++G)
      for (const Slot &S : Base[G].Slots)
        if (S.load(std::memory_order_acquire) == Lock)
          ++N;
  }
  return N;
}

// --- BravoRwLock -----------------------------------------------------------

BravoRwLock::BravoRwLock(RuntimeContext &Ctx, BravoConfig Config)
    : Config(Config), Underlying(Ctx),
      FastHolds(new uint32_t[ThreadRegistry::MaxThreads]()) {}

int64_t BravoRwLock::nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void BravoRwLock::readLock() {
  ThreadState &TS = ThreadRegistry::current();
  uint32_t &Fast = FastHolds[TS.slot()];
  if (Fast > 0) {
    // Reentrant under an existing biased hold: the published slot already
    // keeps writers out; no second publication needed.
    ++Fast;
    return;
  }
  if (Config.BiasEnabled && RBias.load(std::memory_order_acquire)) {
    BravoReaderTable::Slot &S = BravoReaderTable::instance().slotFor(this);
    // Occupied means this thread already advertises a *different* lock
    // that collides in its group — that lock's hold, not ours.
    if (S.load(std::memory_order_relaxed) == nullptr) {
      S.store(this, std::memory_order_relaxed);
      ++TS.Counters.LockWordStores;
      // Dekker against revokeBias(): our publication must be ordered
      // before the bias recheck, the writer's bias clear before its table
      // scan. Either the writer sees the slot or we see the cleared bias.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (RBias.load(std::memory_order_acquire)) {
        Fast = 1;
        return;
      }
      // A revocation raced in: withdraw and queue on the underlying lock.
      S.store(nullptr, std::memory_order_release);
    }
  }
  Underlying.readLock();
  maybeReenableBias();
}

void BravoRwLock::readUnlock() {
  ThreadState &TS = ThreadRegistry::current();
  uint32_t &Fast = FastHolds[TS.slot()];
  if (Fast > 0) {
    if (--Fast == 0) {
      BravoReaderTable::Slot &S = BravoReaderTable::instance().slotFor(this);
      SOLERO_CHECK(S.load(std::memory_order_relaxed) == this,
                   "biased read hold without a matching table publication");
      // Release: the critical section's reads must be ordered before a
      // revoking writer (which acquire-loads the slot) can proceed.
      S.store(nullptr, std::memory_order_release);
      ++TS.Counters.LockWordStores;
    }
    return;
  }
  Underlying.readUnlock();
}

void BravoRwLock::writeLock() {
  Underlying.writeLock();
  // RBias can only be true on a fresh (non-reentrant) acquisition: readers
  // re-enable it exclusively while holding the underlying read lock, which
  // cannot overlap any write hold.
  if (RBias.load(std::memory_order_acquire))
    revokeBias();
  else if (ForcedDrainPending.load(std::memory_order_acquire) &&
           ForcedDrainPending.exchange(false, std::memory_order_acq_rel))
    // A watchdog forceRevokeBias() cleared the bias without draining:
    // readers published before that clear may still be inside their
    // sections, invisible to the underlying lock. This writer completes
    // the revocation the watchdog could not block on.
    BravoReaderTable::instance().waitForReadersOf(this);
}

void BravoRwLock::writeUnlock() { Underlying.writeUnlock(); }

void BravoRwLock::revokeBias() {
  int64_t Start = nowNs();
  RBias.store(false, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  BravoReaderTable::instance().waitForReadersOf(this);
  int64_t Cost = nowNs() - Start;
  // Adaptive self-disabling (the Fissile-style degradation bound): bias
  // stays off for InhibitMultiplier x the measured revocation cost, so a
  // write-heavy lock pays at most ~1/InhibitMultiplier extra and converges
  // to the plain underlying lock. The floor covers coarse clocks reading
  // an empty scan as 0 ns.
  int64_t Inhibit = Cost * static_cast<int64_t>(Config.InhibitMultiplier);
  if (Inhibit < 1000)
    Inhibit = 1000;
  InhibitUntil.store(nowNs() + Inhibit, std::memory_order_relaxed);
  Revocations.fetch_add(1, std::memory_order_relaxed);
}

void BravoRwLock::forceRevokeBias(int64_t InhibitNs) {
  // Inhibit first: once RBias drops, any slow-path reader may call
  // maybeReenableBias(), and it must already see the new deadline or the
  // forced revocation would bounce straight back.
  if (InhibitNs < 1000)
    InhibitNs = 1000;
  InhibitUntil.store(nowNs() + InhibitNs, std::memory_order_relaxed);
  // Drain flag before the clear: a writer that observes RBias == false
  // must also observe the pending drain (release/acquire pairing on the
  // two flags via the seq_cst exchange below).
  ForcedDrainPending.store(true, std::memory_order_release);
  if (!RBias.exchange(false, std::memory_order_seq_cst))
    return; // already unbiased; the extended inhibit window still holds
  // Dekker against the reader's {publish; fence; recheck}: the seq_cst
  // exchange above plays the writer's {clear; fence} role, so a reader
  // that slipped in biased has a publication the deferred drain scan is
  // guaranteed to observe.
  Revocations.fetch_add(1, std::memory_order_relaxed);
}

void BravoRwLock::maybeReenableBias() {
  if (!Config.BiasEnabled || RBias.load(std::memory_order_relaxed))
    return;
  // Downgrade guard: a writer taking its own read lock must not re-enable
  // bias, or a biased reader could enter alongside the held write lock.
  if (Underlying.writeHeldByCurrentThread())
    return;
  int64_t Until = InhibitUntil.load(std::memory_order_relaxed);
  if (Until != 0) {
    // Inside or past an inhibit window. Probing the clock on every
    // slow-path read would tax exactly the mixed workloads the inhibit
    // window is parking bias for, so sample: one clock read per 64
    // slow-path acquisitions per thread. Re-arming is only delayed by
    // those ~64 reads once the window expires.
    static thread_local uint32_t Probe = 0;
    if ((++Probe & 63) != 0)
      return;
    if (nowNs() < Until)
      return;
  }
  RBias.store(true, std::memory_order_release);
}

BravoSnapshot BravoRwLock::snapshot() const {
  BravoSnapshot S;
  S.RBias = RBias.load(std::memory_order_relaxed);
  int64_t Until = InhibitUntil.load(std::memory_order_relaxed);
  if (Until != 0) {
    int64_t Remaining = Until - nowNs();
    S.InhibitRemainingNs = Remaining > 0 ? Remaining : 0;
  }
  S.Revocations = Revocations.load(std::memory_order_relaxed);
  return S;
}

bool BravoRwLock::restore(const BravoSnapshot &S) {
  if (readerCount() != 0 || Underlying.writeHeldByCurrentThread())
    return false; // not quiesced: a live hold would race the bias flip
  if (S.InhibitRemainingNs < 0)
    return false; // no transition produces a negative remainder
  Revocations.store(S.Revocations, std::memory_order_relaxed);
  InhibitUntil.store(
      S.InhibitRemainingNs > 0 ? nowNs() + S.InhibitRemainingNs : 0,
      std::memory_order_relaxed);
  // An image captured with bias on restores warm only if this process's
  // config still allows bias; release-ordered like maybeReenableBias so
  // the first biased reader sees fully initialized state.
  RBias.store(S.RBias && Config.BiasEnabled, std::memory_order_release);
  return true;
}

uint32_t BravoRwLock::readerCount() const {
  // Biased readers contribute one per published slot (nested holds on one
  // slot count once); slow-path readers come from the underlying count.
  return Underlying.readerCount() +
         static_cast<uint32_t>(
             BravoReaderTable::instance().countReadersOf(this));
}

//===- locks/BravoRwLock.h - BRAVO biased reader-writer lock ----*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BRAVO (Dice & Kogan, "BRAVO — Biased Locking for Reader-Writer Locks")
/// layered over the repository's centralized ReadWriteLock. The paper's
/// RWLock baseline pays an atomic RMW on shared state per read acquisition;
/// BRAVO removes that coherence hot spot for read-mostly locks:
///
///   - A process-wide *visible-readers table* holds reader publications.
///     While a lock's `RBias` flag is set, a reader publishes itself with a
///     plain store into a slot it alone owns, executes a store-load fence,
///     rechecks `RBias`, and enters — zero RMWs on shared state and no
///     shared cache line written.
///   - A writer acquires the underlying lock, then *revokes*: it clears
///     `RBias`, fences, and scans the table until no slot still advertises
///     this lock. The Dekker pairing of {publish; fence; recheck} against
///     {clear bias; fence; scan} guarantees the writer either observes the
///     reader's slot or the reader observes the cleared bias and falls back
///     to the underlying read path.
///   - The *adaptive policy* (the flat-path degradation idea from Fissile
///     Locks): each revocation's scan cost is measured and bias stays off
///     for InhibitMultiplier x that duration, so write-heavy locks converge
///     to the plain underlying lock instead of paying a table scan per
///     write.
///
/// Slot placement differs from the original's single global array: the
/// table is partitioned by NUMA node (support/NumaTopology.h), and a
/// thread's slot group is one cache line in the partition of the node it
/// first published from, so reader publication stays node-local. Within
/// the group the slot is keyed by a mixed hash of thread id and lock
/// address. Because a group is written only by its owning thread, the
/// publication can stay a plain store — no CAS even on the slot, which the
/// original BRAVO needs because its hash shares slots between threads.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_LOCKS_BRAVORWLOCK_H
#define SOLERO_LOCKS_BRAVORWLOCK_H

#include <atomic>
#include <cstdint>
#include <memory>

#include "locks/ReadWriteLock.h"
#include "support/CacheLine.h"

namespace solero {

/// BRAVO tuning.
struct BravoConfig {
  /// Enable the biased reader fast path at all; false degenerates to the
  /// underlying lock (the A/B baseline in benches).
  bool BiasEnabled = true;
  /// After a revocation costing C ns, bias stays disabled for
  /// InhibitMultiplier * C ns (the paper's N; it bounds the worst-case
  /// slowdown of write-heavy locks to roughly 1/N).
  uint32_t InhibitMultiplier = 9;
};

/// Process-wide visible-readers table, partitioned by NUMA node.
///
/// Layout: nodeCount() partitions x ThreadRegistry::MaxThreads groups; a
/// group is one cache line of 8 slots owned exclusively by one thread
/// (partition = node at first publication, group index = registry slot).
/// Exclusive ownership is what makes plain-store publication sound: two
/// threads can never race on one slot, and a thread reading two locks that
/// collide within its group simply sends the second to the slow path.
class BravoReaderTable {
public:
  using Slot = std::atomic<const void *>;
  static constexpr unsigned SlotsPerGroup = CacheLineSize / sizeof(Slot);

  static BravoReaderTable &instance();

  /// The calling thread's slot for \p Lock (always a valid pointer; the
  /// caller checks occupancy). First call from a thread pins its group to
  /// the current NUMA node's partition.
  Slot &slotFor(const void *Lock);

  /// Spin-waits until no slot still advertises \p Lock (writer-side
  /// revocation scan). Returns the number of slots that had to drain.
  uint64_t waitForReadersOf(const void *Lock) const;

  /// Number of slots currently advertising \p Lock (oracle/test helper;
  /// racy by nature).
  uint64_t countReadersOf(const void *Lock) const;

  unsigned partitionCount() const { return Partitions; }

private:
  BravoReaderTable();

  struct alignas(CacheLineSize) Group {
    Slot Slots[SlotsPerGroup];
  };

  unsigned Partitions;
  std::size_t GroupsPerPartition;
  std::unique_ptr<Group[]> Groups;
  /// Per-partition high-water mark of assigned group indices, so the
  /// revocation scan skips never-used groups.
  std::unique_ptr<std::atomic<uint32_t>[]> HighWater;
};

/// A quiesced copy of one BravoRwLock's adaptive state, for warm-image
/// checkpoint/restore (src/image/). The inhibit deadline is serialized as
/// *remaining* nanoseconds: the absolute steady_clock deadline is
/// meaningless in another process (or even later in this one).
struct BravoSnapshot {
  bool RBias = false;
  int64_t InhibitRemainingNs = 0;
  uint64_t Revocations = 0;
};

/// Reentrant reader-writer lock with BRAVO reader bias over ReadWriteLock.
/// Same interface and reentrancy semantics as the underlying lock
/// (including write-to-read downgrade; read-to-write upgrade deadlocks, as
/// it does in java.util.concurrent).
class BravoRwLock {
public:
  explicit BravoRwLock(RuntimeContext &Ctx, BravoConfig Config = BravoConfig());

  BravoRwLock(const BravoRwLock &) = delete;
  BravoRwLock &operator=(const BravoRwLock &) = delete;

  void readLock();
  void readUnlock();
  void writeLock();
  void writeUnlock();

  bool writeHeldByCurrentThread() const {
    return Underlying.writeHeldByCurrentThread();
  }

  /// Read holds visible anywhere: underlying count plus published slots.
  uint32_t readerCount() const;

  /// Current bias state (tests/stats; racy).
  bool readBiased() const { return RBias.load(std::memory_order_relaxed); }
  /// Writer-side bias revocations performed so far.
  uint64_t revocations() const {
    return Revocations.load(std::memory_order_relaxed);
  }

  /// Watchdog recovery hook (src/resilience/Watchdog.h): revokes reader
  /// bias from *outside* the write path and inhibits re-arming for
  /// \p InhibitNs. Unlike the writer's revokeBias() this does NOT drain
  /// published readers — the caller is a monitor thread diagnosing a
  /// stall, and spinning it on the very reader it suspects is stuck
  /// would hang the watchdog too. Mutual exclusion is preserved by a
  /// deferred drain: the flag set here makes the *next* writer (which
  /// must exclude those readers anyway) run the revocation scan even
  /// though it observes RBias already clear. New readers observe the
  /// cleared bias and queue on the underlying lock immediately.
  void forceRevokeBias(int64_t InhibitNs = 50'000'000);

  /// Captures bias/inhibit/revocation state for a warm image. Quiesce
  /// first (no reader or writer in flight) for a consistent capture.
  BravoSnapshot snapshot() const;

  /// Rehydrates from \p S. Requires quiescence; refuses (returns false,
  /// stays cold) while any read hold is visible, since a published biased
  /// reader must never coexist with a restore-time bias flip. Bias is
  /// re-enabled only when this lock's config allows it, and the inhibit
  /// window resumes with the image's remaining duration from *now*.
  bool restore(const BravoSnapshot &S);

  template <typename Fn> decltype(auto) synchronizedWrite(Fn &&F) {
    ThreadState &TS = ThreadRegistry::current();
    ++TS.Counters.WriteEntries;
    writeLock();
    ScopeExit Release([&] { writeUnlock(); });
    return F();
  }

  template <typename Fn> decltype(auto) synchronizedReadOnly(Fn &&F) {
    ThreadState &TS = ThreadRegistry::current();
    ++TS.Counters.ReadOnlyEntries;
    readLock();
    ScopeExit Release([&] { readUnlock(); });
    ReadGuard G(/*Speculative=*/false);
    return F(G);
  }

  static const char *protocolName() { return "BravoRW"; }

private:
  void revokeBias();
  void maybeReenableBias();
  static int64_t nowNs();

  BravoConfig Config;
  ReadWriteLock Underlying;
  std::atomic<bool> RBias{false};
  /// Set by forceRevokeBias(): published biased readers may still be
  /// draining, so the next writer must run the table scan even though it
  /// sees RBias already clear. Consumed (exchange to false) under the
  /// underlying write lock, so at most one writer pays the scan.
  std::atomic<bool> ForcedDrainPending{false};
  /// steady_clock ns deadline before which bias must not be re-enabled.
  std::atomic<int64_t> InhibitUntil{0};
  std::atomic<uint64_t> Revocations{0};
  /// Per-thread count of read holds taken through the biased fast path
  /// (indexed by registry slot, like ReadWriteLock::ReadHolds). Nonzero
  /// means this thread's table slot advertises this lock.
  std::unique_ptr<uint32_t[]> FastHolds;
};

} // namespace solero

#endif // SOLERO_LOCKS_BRAVORWLOCK_H

//===- locks/TasukiLock.cpp - Conventional bimodal Java lock --------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "locks/TasukiLock.h"

#include "stress/InjectionPoint.h"
#include "support/Assert.h"

using namespace solero;
using namespace solero::lockword;

void TasukiLock::enter(ObjectHeader &H) {
  ThreadState &TS = ThreadRegistry::current();
  // Fast path (Figure 2): CAS the free word to this thread's id.
  for (;;) {
    uint64_t V = H.word().load(std::memory_order_relaxed);
    if (V != 0) {
      slowEnter(H, TS);
      return;
    }
    SOLERO_INJECT(TasukiEnterCas);
    ++TS.Counters.AtomicRmws;
    if (H.word().compare_exchange_weak(V, TS.tidBits(),
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed))
      return;
  }
}

void TasukiLock::slowEnter(ObjectHeader &H, ThreadState &TS) {
  uint64_t V = H.word().load(std::memory_order_acquire);
  if (convHeldBy(V, TS.tidBits())) {
    // Recursive acquisition. fetch_add preserves a concurrently-set FLC bit.
    if (convRecursion(V) == ConvRecMax) {
      // Recursion bits saturated: inflate while held (paper Section 2.1).
      OsMonitor &M = Ctx.monitors().monitorFor(H);
      M.inflateHeldByOwner(H, TS, static_cast<uint32_t>(ConvRecMax) + 1,
                           /*RestoreW=*/0);
      return;
    }
    ++TS.Counters.AtomicRmws;
    H.word().fetch_add(ConvRecUnit, std::memory_order_relaxed);
    return;
  }
  // Contended or inflated: shared three-tier + park machinery.
  (void)contendedAcquire(Ctx.monitors(), H, ConvFlatProtocol, TS,
                         Ctx.config().Tiers, Ctx.config().ParkMicros);
}

void TasukiLock::exit(ObjectHeader &H) {
  ThreadState &TS = ThreadRegistry::current();
  uint64_t V = H.word().load(std::memory_order_relaxed);
  // Fast path (Figure 2): no recursion, no FLC, no inflation. Release via
  // CAS, not a blind store: a contender's FLC CAS landing between the load
  // above and the release would be clobbered by a store, and the contender
  // would park unnotified until the timed-park backstop (the lost-wakeup
  // race; DESIGN.md §12). A failed CAS falls to slowExit, which re-reads,
  // sees the FLC bit, and notifies.
  if ((V & LowBitsMask) == 0) {
    SOLERO_INJECT(TasukiExitRelease);
    ++TS.Counters.AtomicRmws;
    if (H.word().compare_exchange_strong(V, 0, std::memory_order_release,
                                         std::memory_order_relaxed))
      return;
  }
  slowExit(H, TS);
}

void TasukiLock::slowExit(ObjectHeader &H, ThreadState &TS) {
  uint64_t V = H.word().load(std::memory_order_relaxed);
  if (isInflated(V)) {
    Ctx.monitors().byIndex(monitorIndex(V)).fatExit(H, TS);
    return;
  }
  SOLERO_CHECK(convHeldBy(V, TS.tidBits()), "exit of a lock not held");
  if (convRecursion(V) > 0) {
    ++TS.Counters.AtomicRmws;
    H.word().fetch_sub(ConvRecUnit, std::memory_order_relaxed);
    return;
  }
  // FLC is set: release, then wake the parked contenders so one of them can
  // inflate (tasuki handshake). The blind store is safe here because the
  // notify below is unconditional and mutex-ordered after park decisions.
  SOLERO_INJECT(TasukiSlowExitRelease);
  H.word().store(0, std::memory_order_release);
  ++TS.Counters.LockWordStores;
  Ctx.monitors().monitorFor(H).notifyFlatRelease();
}

void TasukiLock::wait(ObjectHeader &H) {
  ThreadState &TS = ThreadRegistry::current();
  uint64_t V = H.word().load(std::memory_order_acquire);
  if (!isInflated(V)) {
    // Waiting requires a wait set: inflate the flat lock we hold,
    // carrying the recursion depth into the monitor.
    SOLERO_CHECK(convHeldBy(V, TS.tidBits()), "Object.wait without monitor");
    OsMonitor &M = Ctx.monitors().monitorFor(H);
    M.inflateHeldByOwner(H, TS,
                         static_cast<uint32_t>(convRecursion(V)),
                         /*RestoreW=*/0);
    V = H.word().load(std::memory_order_acquire);
  }
  Ctx.monitors().byIndex(monitorIndex(V)).fatWait(H, TS,
                                                  Ctx.config().ParkMicros);
}

void TasukiLock::notify(ObjectHeader &H, bool All) {
  ThreadState &TS = ThreadRegistry::current();
  uint64_t V = H.word().load(std::memory_order_acquire);
  if (!isInflated(V)) {
    // Flat: any waiter would have inflated the lock, so the wait set is
    // empty and notify is a no-op (but still requires ownership).
    SOLERO_CHECK(convHeldBy(V, TS.tidBits()),
                 "Object.notify without monitor");
    return;
  }
  Ctx.monitors().byIndex(monitorIndex(V)).fatNotify(TS, All);
}

bool TasukiLock::heldByCurrentThread(ObjectHeader &H) {
  ThreadState &TS = ThreadRegistry::current();
  uint64_t V = H.word().load(std::memory_order_acquire);
  if (isInflated(V))
    return Ctx.monitors().byIndex(monitorIndex(V)).isOwner(TS);
  return convHeldBy(V, TS.tidBits());
}

//===- locks/TasukiLock.h - Conventional bimodal Java lock ------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conventional Java lock of paper Section 2.1 (the "Lock" baseline):
/// a tasuki-style bimodal lock with flat (thin) CAS acquisition (Figure 2),
/// recursion bits, the FLC contention bit, three-tier spinning (Figure 3),
/// inflation to an OS monitor and deflation back to flat mode.
///
/// Read-only critical sections pay the full mutual-exclusion protocol —
/// that is exactly the overhead SOLERO removes.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_LOCKS_TASUKILOCK_H
#define SOLERO_LOCKS_TASUKILOCK_H

#include <cstdint>
#include <type_traits>

#include "runtime/LockWord.h"
#include "runtime/ReadGuard.h"
#include "runtime/RuntimeContext.h"
#include "support/ScopeExit.h"

namespace solero {

/// The conventional (mutual exclusion) lock protocol bound to a runtime
/// context. Stateless per lock: all state lives in each object's header.
class TasukiLock {
public:
  explicit TasukiLock(RuntimeContext &Ctx) : Ctx(Ctx) {}

  /// Acquires \p H's monitor (paper Figure 2 fast path + slow path).
  /// Re-entrant.
  void enter(ObjectHeader &H);

  /// Releases one level of \p H's monitor.
  void exit(ObjectHeader &H);

  /// True if the calling thread owns \p H's monitor (flat or fat).
  bool heldByCurrentThread(ObjectHeader &H);

  /// Object.wait: releases \p H's monitor (inflating a flat lock first)
  /// and sleeps until notified; reacquires before returning. Returns may
  /// be spurious (the Java contract) — call inside a predicate loop. The
  /// caller must own the monitor.
  void wait(ObjectHeader &H);

  /// Object.notify / notifyAll. The caller must own the monitor. A flat
  /// (never-inflated-for-wait) monitor has an empty wait set: no-op.
  void notify(ObjectHeader &H, bool All = false);

  /// Runs \p F under the monitor.
  template <typename Fn> decltype(auto) synchronizedWrite(ObjectHeader &H,
                                                          Fn &&F) {
    ThreadState &TS = ThreadRegistry::current();
    ++TS.Counters.WriteEntries;
    enter(H);
    ScopeExit Release([&] { exit(H); });
    return F();
  }

  /// Mutual exclusion has no read mode; a read-only section is an ordinary
  /// critical section. The guard is non-speculative.
  template <typename Fn> decltype(auto) synchronizedReadOnly(ObjectHeader &H,
                                                             Fn &&F) {
    ThreadState &TS = ThreadRegistry::current();
    ++TS.Counters.ReadOnlyEntries;
    enter(H);
    ScopeExit Release([&] { exit(H); });
    ReadGuard G(/*Speculative=*/false);
    return F(G);
  }

  static const char *protocolName() { return "Lock"; }

private:
  void slowEnter(ObjectHeader &H, ThreadState &TS);
  void slowExit(ObjectHeader &H, ThreadState &TS);

  RuntimeContext &Ctx;
};

} // namespace solero

#endif // SOLERO_LOCKS_TASUKILOCK_H

//===- locks/ReadWriteLock.h - Reentrant read-write lock --------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "RWLock" baseline: a java.util.concurrent-style reentrant
/// read-write lock. Multiple readers may hold it concurrently; a writer
/// holds it exclusively; a thread holding write may also acquire read
/// (downgrade pattern).
///
/// Like the library the paper compares against, read acquisition performs
/// an atomic RMW on shared state and the lock lives behind a pointer
/// indirection in the workloads — the two costs the paper cites for RWLock
/// underperforming even plain mutual exclusion on read-mostly
/// microbenchmarks (Section 4.2).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_LOCKS_READWRITELOCK_H
#define SOLERO_LOCKS_READWRITELOCK_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "runtime/ReadGuard.h"
#include "runtime/RuntimeContext.h"
#include "support/ScopeExit.h"

namespace solero {

/// Reentrant read-write lock with writer preference (new readers do not
/// barge past a waiting writer, except for reentrant readers, which always
/// succeed to keep lock upgrades deadlock-free in the Java sense).
class ReadWriteLock {
public:
  explicit ReadWriteLock(RuntimeContext &Ctx);

  ReadWriteLock(const ReadWriteLock &) = delete;
  ReadWriteLock &operator=(const ReadWriteLock &) = delete;

  void readLock();
  void readUnlock();
  void writeLock();
  void writeUnlock();

  /// True if the calling thread holds the write lock.
  bool writeHeldByCurrentThread() const;
  /// Number of read holds across all threads.
  uint32_t readerCount() const;

  template <typename Fn> decltype(auto) synchronizedWrite(Fn &&F) {
    ThreadState &TS = ThreadRegistry::current();
    ++TS.Counters.WriteEntries;
    writeLock();
    ScopeExit Release([&] { writeUnlock(); });
    return F();
  }

  template <typename Fn> decltype(auto) synchronizedReadOnly(Fn &&F) {
    ThreadState &TS = ThreadRegistry::current();
    ++TS.Counters.ReadOnlyEntries;
    readLock();
    ScopeExit Release([&] { readUnlock(); });
    ReadGuard G(/*Speculative=*/false);
    return F(G);
  }

  static const char *protocolName() { return "RWLock"; }

private:
  // State layout: bits 0..15 reader count, bits 16..31 writer recursion,
  // bits 32..63 writer owner (ThreadState slot + 1).
  static constexpr uint64_t ReaderMask = 0xffffULL;
  static constexpr uint64_t RecursionUnit = 1ULL << 16;
  static constexpr uint64_t RecursionMask = 0xffffULL << 16;
  static constexpr unsigned OwnerShift = 32;

  static uint64_t ownerOf(uint64_t S) { return S >> OwnerShift; }
  static uint64_t readersOf(uint64_t S) { return S & ReaderMask; }

  uint64_t selfOwner() const;

  RuntimeContext &Ctx;
  std::atomic<uint64_t> State{0};
  std::atomic<uint32_t> WaitingWriters{0};

  std::mutex Mu;
  std::condition_variable ReadersCv;
  std::condition_variable WritersCv;

  // Per-thread read-hold counts (indexed by ThreadState slot); lets
  // reentrant readers bypass the writer-preference gate. Sized from
  // ThreadRegistry::MaxThreads, which the registry enforces at
  // registration, so slot() can never index past the array.
  std::unique_ptr<uint32_t[]> ReadHolds;
};

} // namespace solero

#endif // SOLERO_LOCKS_READWRITELOCK_H

//===- resilience/ShedController.h - Admission control ----------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Priority-ordered load shedding with hysteresis (DESIGN.md §17). A
/// monitor thread feeds the controller one observation per window — the
/// p99 of requests admitted in that window plus the worst scheduled-
/// arrival backlog across the load generators — and the controller moves
/// a small shed *level*:
///
///   level 0   admit everything (healthy)
///   level 1   shed SCAN   (whole-shard read sections: the most work per
///                          request and the least per-request value)
///   level 2   shed GET too (only mutations still admitted; mutations are
///                           never shed so client-visible writes — and the
///                           torture oracles riding on them — stay exact)
///
/// The same "detect pathology, degrade, recover" discipline the elision
/// controller applies to speculation (core/ElisionController.h), lifted
/// to the service layer. Hysteresis has two parts: a level change needs a
/// *streak* of consecutive breached (or healthy) windows, and the healthy
/// threshold sits well below the breach threshold, so a p99 hovering at
/// the SLO cannot make the controller flap between admit and shed every
/// window.
///
/// admit() is the request-path side: one relaxed load and a compare, safe
/// from any number of workers concurrently with the monitor's onWindow().
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_RESILIENCE_SHEDCONTROLLER_H
#define SOLERO_RESILIENCE_SHEDCONTROLLER_H

#include <atomic>
#include <cstdint>

namespace solero {
namespace resilience {

/// Request priorities, lowest shed first. The numeric value is the shed
/// level at which the class is *still admitted*: class P survives while
/// level <= P.
enum class OpPriority : uint8_t {
  Scan = 0,   ///< first to go: broadest read sections, cheapest to drop
  Get = 1,    ///< point reads
  Mutate = 2, ///< PUT/DELETE: never shed (level is capped below 3)
};

const char *opPriorityName(OpPriority P);

struct ShedConfig {
  /// p99 SLO for admitted requests; a window at or above this breaches.
  uint64_t SloP99Ns = 2'000'000;
  /// A window is *healthy* (counts toward re-admission) only when p99 is
  /// at or below SloP99Ns * ReadmitRatio — the gap is the hysteresis band.
  double ReadmitRatio = 0.5;
  /// Worst per-worker scheduled-arrival backlog that breaches on its own:
  /// queue depth leads latency, so this fires before the p99 does.
  uint64_t BacklogBreachNs = 20'000'000;
  /// Consecutive breached windows before the level rises.
  uint32_t BreachStreak = 2;
  /// Consecutive healthy windows before the level falls (re-admission is
  /// deliberately slower than shedding).
  uint32_t ClearStreak = 4;
};

/// Shared shed state: workers consult admit(), one monitor thread drives
/// onWindow(). Max level 2 — mutations are never shed.
class ShedController {
public:
  static constexpr uint32_t MaxLevel = 2;

  explicit ShedController(ShedConfig Cfg) : Cfg(Cfg) {}

  /// Request-path admission check: true when priority \p P is currently
  /// admitted. Lock-free; called by every worker per request.
  bool admit(OpPriority P) const {
    return static_cast<uint32_t>(P) >= Level.load(std::memory_order_relaxed);
  }

  /// One monitoring window's verdict: \p P99Ns of admitted requests (0
  /// when the window recorded nothing — treated as healthy, an idle
  /// service must re-admit) and \p BacklogNs, the worst scheduled-arrival
  /// lag across workers. Single-caller (the monitor thread).
  void onWindow(uint64_t P99Ns, uint64_t BacklogNs);

  uint32_t level() const { return Level.load(std::memory_order_relaxed); }
  uint64_t levelUps() const { return Ups; }
  uint64_t levelDowns() const { return Downs; }
  uint64_t windows() const { return Windows; }
  /// Windows spent at a nonzero level (degraded-mode residency).
  uint64_t degradedWindows() const { return Degraded; }

  const ShedConfig &config() const { return Cfg; }

private:
  ShedConfig Cfg;
  std::atomic<uint32_t> Level{0};
  uint32_t BreachRun = 0;
  uint32_t ClearRun = 0;
  uint64_t Ups = 0;
  uint64_t Downs = 0;
  uint64_t Windows = 0;
  uint64_t Degraded = 0;
};

} // namespace resilience
} // namespace solero

#endif // SOLERO_RESILIENCE_SHEDCONTROLLER_H

//===- resilience/ShedController.cpp - Admission control ------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "resilience/ShedController.h"

using namespace solero;
using namespace solero::resilience;

const char *solero::resilience::opPriorityName(OpPriority P) {
  switch (P) {
  case OpPriority::Scan:
    return "Scan";
  case OpPriority::Get:
    return "Get";
  case OpPriority::Mutate:
    return "Mutate";
  }
  return "?";
}

void ShedController::onWindow(uint64_t P99Ns, uint64_t BacklogNs) {
  ++Windows;
  uint32_t Cur = Level.load(std::memory_order_relaxed);
  if (Cur != 0)
    ++Degraded;
  bool Breach = P99Ns >= Cfg.SloP99Ns || BacklogNs >= Cfg.BacklogBreachNs;
  // Healthy is strictly harder than !Breach: p99 under the re-admit line
  // AND backlog at half the breach line. A window that lands between the
  // thresholds is the hysteresis band — both streaks reset and the level
  // holds, so a p99 oscillating around the SLO cannot flap the level.
  bool Healthy = (P99Ns == 0 || P99Ns <= static_cast<uint64_t>(
                                    static_cast<double>(Cfg.SloP99Ns) *
                                    Cfg.ReadmitRatio)) &&
                 BacklogNs < Cfg.BacklogBreachNs / 2;
  if (Breach) {
    ClearRun = 0;
    if (++BreachRun >= Cfg.BreachStreak) {
      BreachRun = 0;
      if (Cur < MaxLevel) {
        Level.store(Cur + 1, std::memory_order_relaxed);
        ++Ups;
      }
    }
    return;
  }
  BreachRun = 0;
  if (!Healthy) {
    ClearRun = 0;
    return;
  }
  if (++ClearRun >= Cfg.ClearStreak) {
    ClearRun = 0;
    if (Cur > 0) {
      Level.store(Cur - 1, std::memory_order_relaxed);
      ++Downs;
    }
  }
}

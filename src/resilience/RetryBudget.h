//===- resilience/RetryBudget.h - Token-bucket retry budget -----*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-client token-bucket retry budget (DESIGN.md §17). The classic
/// metastable-failure amplifier is the retry storm: every timed-out
/// request retries, the retries push latency further past the deadline,
/// which times out more requests, which retries more — offered load
/// doubles exactly when the system can least afford it. A retry budget
/// caps the *ratio* of retries to fresh traffic: tokens refill at a small
/// fraction of the request rate, a retry spends one, and when the bucket
/// is dry the request fails fast instead of retrying. Paired with
/// jittered ExpBackoff (support/Backoff.h) so the retries that are
/// admitted cannot re-synchronize into waves.
///
/// One instance per load-generator thread (the "client"); single-owner by
/// design, so the arithmetic is plain — no atomics on the request path.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_RESILIENCE_RETRYBUDGET_H
#define SOLERO_RESILIENCE_RETRYBUDGET_H

#include <cstdint>

#include "support/Assert.h"

namespace solero {
namespace resilience {

/// Single-owner token bucket: capacity \p Burst tokens, refilling at
/// \p TokensPerSec, one token per granted retry.
class RetryBudget {
public:
  RetryBudget(double TokensPerSec, double Burst, uint64_t NowNs)
      : RatePerNs(TokensPerSec * 1e-9), Cap(Burst), Tokens(Burst),
        LastNs(NowNs) {
    SOLERO_CHECK(TokensPerSec > 0.0 && Burst >= 1.0,
                 "RetryBudget needs a positive rate and at least one token");
  }

  /// Grants one retry if the bucket holds a full token at \p NowNs.
  bool tryAcquire(uint64_t NowNs) {
    refill(NowNs);
    if (Tokens < 1.0) {
      ++DeniedCount;
      return false;
    }
    Tokens -= 1.0;
    ++GrantedCount;
    return true;
  }

  /// Tokens currently available (after refilling to \p NowNs).
  double available(uint64_t NowNs) {
    refill(NowNs);
    return Tokens;
  }

  uint64_t granted() const { return GrantedCount; }
  uint64_t denied() const { return DeniedCount; }

private:
  void refill(uint64_t NowNs) {
    if (NowNs <= LastNs)
      return; // a backwards clock observation must not drain the bucket
    Tokens += static_cast<double>(NowNs - LastNs) * RatePerNs;
    if (Tokens > Cap)
      Tokens = Cap;
    LastNs = NowNs;
  }

  double RatePerNs;
  double Cap;
  double Tokens;
  uint64_t LastNs;
  uint64_t GrantedCount = 0;
  uint64_t DeniedCount = 0;
};

} // namespace resilience
} // namespace solero

#endif // SOLERO_RESILIENCE_RETRYBUDGET_H

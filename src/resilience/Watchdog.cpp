//===- resilience/Watchdog.cpp - Stuck-speculation watchdog ---------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "resilience/Watchdog.h"

#include <chrono>
#include <cstdio>

#include "core/ElisionController.h"
#include "locks/BravoRwLock.h"

using namespace solero;
using namespace solero::resilience;

const char *solero::resilience::pathologyKindName(PathologyKind K) {
  switch (K) {
  case PathologyKind::StalledSection:
    return "StalledSection";
  case PathologyKind::ElisionFailureStorm:
    return "ElisionFailureStorm";
  case PathologyKind::BiasRevocationLivelock:
    return "BiasRevocationLivelock";
  }
  return "?";
}

std::string ResilienceDiagnostic::render() const {
  char Buf[256];
  switch (Kind) {
  case PathologyKind::StalledSection:
    std::snprintf(Buf, sizeof(Buf),
                  "watchdog: StalledSection (slot %d in flight %.1f ms)",
                  Slot, static_cast<double>(ObservedNs) * 1e-6);
    break;
  case PathologyKind::ElisionFailureStorm:
    std::snprintf(Buf, sizeof(Buf),
                  "watchdog: ElisionFailureStorm (%llu failures in one poll)",
                  static_cast<unsigned long long>(ObservedNs));
    break;
  case PathologyKind::BiasRevocationLivelock:
    std::snprintf(
        Buf, sizeof(Buf),
        "watchdog: BiasRevocationLivelock (%llu revocations in one poll)",
        static_cast<unsigned long long>(ObservedNs));
    break;
  }
  char Out[384];
  std::snprintf(Out, sizeof(Out),
                "%s -> forced %u controller(s) Disabled, %u bias(es) "
                "revoked; traffic continues on the flat path",
                Buf, ForcedDisables, ForcedRevocations);
  return Out;
}

SpeculationWatchdog::SpeculationWatchdog(WatchdogConfig Cfg)
    : Cfg(Cfg), Ops(new OpCell[ThreadRegistry::MaxThreads]),
      Reported(new uint64_t[ThreadRegistry::MaxThreads]()) {}

SpeculationWatchdog::~SpeculationWatchdog() { stop(); }

void SpeculationWatchdog::watchController(ElisionController *C) {
  Controllers.push_back(C);
}

void SpeculationWatchdog::watchBravo(BravoRwLock *L) {
  Bravos.push_back({L, L->revocations()});
}

uint64_t SpeculationWatchdog::nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SpeculationWatchdog::start() {
  if (Running.exchange(true, std::memory_order_acq_rel))
    return;
  Monitor = std::thread([this] {
    while (Running.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(Cfg.PollPeriodNs));
      if (!Running.load(std::memory_order_acquire))
        break;
      pollOnce(nowNs());
    }
  });
}

void SpeculationWatchdog::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel))
    return;
  if (Monitor.joinable())
    Monitor.join();
}

void SpeculationWatchdog::pollOnce(uint64_t NowNs) {
  Polls.fetch_add(1, std::memory_order_relaxed);

  // 1. Stalled sections: any op older than the bound, reported once per
  // distinct start timestamp (a section stuck across many polls is one
  // pathology, not one per poll).
  for (uint32_t S = 0; S < ThreadRegistry::MaxThreads; ++S) {
    uint64_t Start = Ops[S].StartNs.load(std::memory_order_relaxed);
    if (Start == 0 || NowNs <= Start || NowNs - Start < Cfg.StallBoundNs)
      continue;
    if (Reported[S] == Start)
      continue;
    Reported[S] = Start;
    Stalls.fetch_add(1, std::memory_order_relaxed);
    ResilienceDiagnostic D;
    D.Kind = PathologyKind::StalledSection;
    D.DetectedAtNs = NowNs;
    D.ObservedNs = NowNs - Start;
    D.Slot = static_cast<int>(S);
    forceRecovery(D);
  }

  // 2. Elision failure storm: process-wide counter deltas. The first poll
  // only establishes the baseline.
  ProtocolCounters Total = ThreadRegistry::instance().totalCounters();
  uint64_t Attempts = Total.ElisionAttempts.value();
  uint64_t Failures = Total.ElisionFailures.value();
  if (HaveBaseline) {
    uint64_t DeltaA = Attempts - LastAttempts;
    uint64_t DeltaF = Failures - LastFailures;
    if (DeltaF >= Cfg.StormFailures && DeltaA > 0 &&
        static_cast<double>(DeltaF) / static_cast<double>(DeltaA) >=
            Cfg.StormRatio) {
      Storms.fetch_add(1, std::memory_order_relaxed);
      ResilienceDiagnostic D;
      D.Kind = PathologyKind::ElisionFailureStorm;
      D.DetectedAtNs = NowNs;
      D.ObservedNs = DeltaF;
      forceRecovery(D);
    }
  }
  LastAttempts = Attempts;
  LastFailures = Failures;
  HaveBaseline = true;

  // 3. BRAVO revocation livelock: a lock that revoked heavily this poll
  // and is biased *again* is ping-ponging — each revocation's measured
  // cost looks too cheap for the lock's own inhibit window to bite.
  for (BravoWatch &W : Bravos) {
    uint64_t Rev = W.Lock->revocations();
    uint64_t Delta = Rev - W.LastRevocations;
    W.LastRevocations = Rev;
    if (Delta >= Cfg.RevocationsPerPoll && W.Lock->readBiased()) {
      RevStorms.fetch_add(1, std::memory_order_relaxed);
      ResilienceDiagnostic D;
      D.Kind = PathologyKind::BiasRevocationLivelock;
      D.DetectedAtNs = NowNs;
      D.ObservedNs = Delta;
      forceRecovery(D);
    }
  }
}

void SpeculationWatchdog::forceRecovery(ResilienceDiagnostic D) {
  for (ElisionController *C : Controllers) {
    C->forceDisable();
    ++D.ForcedDisables;
  }
  for (BravoWatch &W : Bravos) {
    W.Lock->forceRevokeBias(Cfg.BiasInhibitNs);
    ++D.ForcedRevocations;
  }
  Disables.fetch_add(D.ForcedDisables, std::memory_order_relaxed);
  Revokes.fetch_add(D.ForcedRevocations, std::memory_order_relaxed);
  std::lock_guard<std::mutex> G(DiagMutex);
  if (Diags.size() >= Cfg.MaxDiagnostics)
    Diags.erase(Diags.begin());
  Diags.push_back(D);
}

SpeculationWatchdog::Stats SpeculationWatchdog::stats() const {
  Stats S;
  S.Polls = Polls.load(std::memory_order_relaxed);
  S.StallsDetected = Stalls.load(std::memory_order_relaxed);
  S.FailureStorms = Storms.load(std::memory_order_relaxed);
  S.RevocationStorms = RevStorms.load(std::memory_order_relaxed);
  S.ForcedDisables = Disables.load(std::memory_order_relaxed);
  S.ForcedRevocations = Revokes.load(std::memory_order_relaxed);
  return S;
}

std::vector<ResilienceDiagnostic> SpeculationWatchdog::diagnostics() const {
  std::lock_guard<std::mutex> G(DiagMutex);
  return Diags;
}

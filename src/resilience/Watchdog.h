//===- resilience/Watchdog.h - Stuck-speculation watchdog -------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monitor thread that detects pathological lock states and forces
/// recovery (DESIGN.md §17). The paper's premise is that speculation must
/// fail *safely and cheaply* — fall back to the flat lock (§3). The
/// adaptive layers already self-limit on their own evidence (failure
/// ratios, revocation cost), but evidence-driven policies have a blind
/// spot: a pathology that stops the evidence from flowing. A reader
/// parked beyond any reasonable bound produces no window samples; an
/// elision failure storm burns CPU faster than the decayed windows
/// converge; BRAVO bias that keeps re-arming between revocations ping-
/// pongs forever because each individual revocation looks cheap. The
/// watchdog watches from outside the protocols:
///
///   StalledSection         a request's critical section has been in
///                          flight past StallBoundNs (per-slot op table,
///                          maintained by the service's workers)
///   ElisionFailureStorm    process-wide elision failures grew by more
///                          than StormFailures in one poll at a failure
///                          ratio above StormRatio
///   BiasRevocationLivelock a watched BravoRwLock revoked more than
///                          RevocationsPerPoll times in one poll and is
///                          biased *again* — the revoke/re-arm ping-pong
///
/// Recovery is forced degradation, never a crash: drive every watched
/// ElisionController cell to Disabled (forceDisable) and revoke + inhibit
/// every watched lock's bias (forceRevokeBias), then record a structured
/// ResilienceDiagnostic. The protocols' own fallback paths do the rest —
/// traffic continues on the flat lock, and the normal Reprobe/inhibit
/// machinery re-enables speculation once the pathology clears.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_RESILIENCE_WATCHDOG_H
#define SOLERO_RESILIENCE_WATCHDOG_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/ThreadRegistry.h"
#include "support/CacheLine.h"

namespace solero {

class ElisionController;
class BravoRwLock;

namespace resilience {

/// What the watchdog detected.
enum class PathologyKind : uint8_t {
  StalledSection,
  ElisionFailureStorm,
  BiasRevocationLivelock,
};

const char *pathologyKindName(PathologyKind K);

/// One detected pathology plus the recovery the watchdog forced — the
/// structured, never-a-crash output (same philosophy as image::Diagnostic).
struct ResilienceDiagnostic {
  PathologyKind Kind;
  uint64_t DetectedAtNs = 0; ///< steady-clock detection time
  uint64_t ObservedNs = 0;   ///< stall age / failure delta / revocation delta
  int Slot = -1;             ///< offending registry slot (stalls only)
  uint32_t ForcedDisables = 0;
  uint32_t ForcedRevocations = 0;

  /// "watchdog: <kind> (...) -> forced D controllers Disabled, R biases
  /// revoked; traffic continues on the flat path"
  std::string render() const;
};

struct WatchdogConfig {
  uint64_t PollPeriodNs = 2'000'000; ///< 2 ms between polls
  /// An in-flight op older than this is a stalled section.
  uint64_t StallBoundNs = 100'000'000;
  /// Failure-storm window: at least this many new elision failures in one
  /// poll, at a failure ratio of at least StormRatio.
  uint64_t StormFailures = 20'000;
  double StormRatio = 0.85;
  /// Revocation-livelock window: more than this many revocations of one
  /// lock in one poll with its bias set again at poll time.
  uint64_t RevocationsPerPoll = 64;
  /// Inhibit window handed to forceRevokeBias on recovery.
  int64_t BiasInhibitNs = 100'000'000;
  /// Diagnostics ring bound (oldest dropped beyond this).
  std::size_t MaxDiagnostics = 64;
};

/// The monitor. Register the speculation state to guard (controllers,
/// BRAVO locks), start(), feed opBegin/opEnd from the request path, and
/// read stats()/diagnostics() at the end. Registration is not thread-safe
/// against a running watchdog: register before start().
class SpeculationWatchdog {
public:
  explicit SpeculationWatchdog(WatchdogConfig Cfg);
  ~SpeculationWatchdog();

  SpeculationWatchdog(const SpeculationWatchdog &) = delete;
  SpeculationWatchdog &operator=(const SpeculationWatchdog &) = delete;

  /// Guards \p C: forced to Disabled on any detected pathology.
  void watchController(ElisionController *C);
  /// Guards \p L: bias force-revoked on any detected pathology, and its
  /// revocation rate is itself monitored for livelock.
  void watchBravo(BravoRwLock *L);

  void start();
  /// Stops and joins the monitor thread (idempotent; destructor calls it).
  void stop();

  // --- Request-path op table ---------------------------------------------
  // Workers bracket each dispatched request. Slot is the worker thread's
  // ThreadRegistry slot; one cache line each, plain stores by the owner.

  void opBegin(uint32_t Slot, uint64_t NowNs) {
    Ops[Slot].StartNs.store(NowNs, std::memory_order_relaxed);
  }
  void opEnd(uint32_t Slot) {
    Ops[Slot].StartNs.store(0, std::memory_order_relaxed);
  }

  /// Runs one detection pass at \p NowNs as if the poll timer fired.
  /// Exposed so the deterministic tests (and the chaos soak's shutdown
  /// path) don't have to race the wall clock.
  void pollOnce(uint64_t NowNs);

  struct Stats {
    uint64_t Polls = 0;
    uint64_t StallsDetected = 0;
    uint64_t FailureStorms = 0;
    uint64_t RevocationStorms = 0;
    uint64_t ForcedDisables = 0;
    uint64_t ForcedRevocations = 0;
  };
  Stats stats() const;

  /// Snapshot of the bounded diagnostics ring (copy under the mutex).
  std::vector<ResilienceDiagnostic> diagnostics() const;

  const WatchdogConfig &config() const { return Cfg; }

private:
  struct alignas(CacheLineSize) OpCell {
    std::atomic<uint64_t> StartNs{0};
  };

  /// Forces degradation everywhere and records one diagnostic.
  void forceRecovery(ResilienceDiagnostic D);
  static uint64_t nowNs();

  WatchdogConfig Cfg;
  std::vector<ElisionController *> Controllers;
  struct BravoWatch {
    BravoRwLock *Lock;
    uint64_t LastRevocations = 0;
  };
  std::vector<BravoWatch> Bravos;
  std::unique_ptr<OpCell[]> Ops; ///< ThreadRegistry::MaxThreads cells
  /// Last stall start-ns already reported per slot, so one stuck section
  /// fires one diagnostic instead of one per poll.
  std::unique_ptr<uint64_t[]> Reported;

  std::atomic<bool> Running{false};
  std::thread Monitor;

  // Poll-to-poll baselines (monitor thread only).
  uint64_t LastAttempts = 0;
  uint64_t LastFailures = 0;
  bool HaveBaseline = false;

  // Stats (relaxed atomics: monitor writes, anyone reads).
  std::atomic<uint64_t> Polls{0};
  std::atomic<uint64_t> Stalls{0};
  std::atomic<uint64_t> Storms{0};
  std::atomic<uint64_t> RevStorms{0};
  std::atomic<uint64_t> Disables{0};
  std::atomic<uint64_t> Revokes{0};

  mutable std::mutex DiagMutex;
  std::vector<ResilienceDiagnostic> Diags;
};

} // namespace resilience
} // namespace solero

#endif // SOLERO_RESILIENCE_WATCHDOG_H

//===- resilience/Deadline.h - Deadline-aware request helpers ---*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deadline propagation for the KV service (DESIGN.md §17). Every request
/// carries an absolute deadline derived from its *scheduled* arrival (not
/// from when a worker finally picked it up), so a request that sat in the
/// backlog through an overload burst arrives at the dispatch point with
/// its remaining budget already spent — and is cancelled *before* it
/// touches a shard lock, converting queued work the client has already
/// given up on into a cheap structured timeout instead of more load.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_RESILIENCE_DEADLINE_H
#define SOLERO_RESILIENCE_DEADLINE_H

#include <cstdint>

namespace solero {
namespace resilience {

/// An absolute steady-clock deadline in nanoseconds. Zero means "none"
/// (requests without a budget never expire).
struct Deadline {
  uint64_t Ns = 0;

  /// The deadline of a request scheduled to arrive at \p ScheduledNs with
  /// \p BudgetNs of client patience. Charged from the *scheduled* arrival
  /// for the same coordinated-omission honesty as the latency accounting:
  /// queueing delay eats the budget.
  static Deadline fromScheduled(uint64_t ScheduledNs, uint64_t BudgetNs) {
    return {BudgetNs == 0 ? 0 : ScheduledNs + BudgetNs};
  }

  bool unbounded() const { return Ns == 0; }

  /// True when \p NowNs is past the deadline (never for unbounded).
  bool expired(uint64_t NowNs) const { return Ns != 0 && NowNs > Ns; }

  /// Remaining budget at \p NowNs; 0 when expired, INT64_MAX-ish values
  /// never occur because unbounded is checked first by callers that care.
  uint64_t remainingNs(uint64_t NowNs) const {
    if (Ns == 0 || NowNs >= Ns)
      return 0;
    return Ns - NowNs;
  }
};

} // namespace resilience
} // namespace solero

#endif // SOLERO_RESILIENCE_DEADLINE_H

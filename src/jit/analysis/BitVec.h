//===- jit/analysis/BitVec.h - Dynamic bitset for dataflow ------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dynamic bitset used as the lattice element of the bit-vector
/// dataflow problems (liveness, benign-write facts). Unlike the former
/// uint64_t masks this has no 64-element ceiling, so methods with more
/// than 64 locals analyze correctly instead of tripping a hard check.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_ANALYSIS_BITVEC_H
#define SOLERO_JIT_ANALYSIS_BITVEC_H

#include <cstdint>
#include <vector>

#include "support/Assert.h"

namespace solero {
namespace jit {

class BitVec {
public:
  BitVec() = default;
  explicit BitVec(std::size_t NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  std::size_t size() const { return NumBits; }

  bool test(std::size_t Bit) const {
    SOLERO_CHECK(Bit < NumBits, "BitVec index out of range");
    return (Words[Bit / 64] >> (Bit % 64)) & 1u;
  }
  void set(std::size_t Bit) {
    SOLERO_CHECK(Bit < NumBits, "BitVec index out of range");
    Words[Bit / 64] |= 1ULL << (Bit % 64);
  }
  void reset(std::size_t Bit) {
    SOLERO_CHECK(Bit < NumBits, "BitVec index out of range");
    Words[Bit / 64] &= ~(1ULL << (Bit % 64));
  }

  /// this |= O; returns true if any bit changed.
  bool unionWith(const BitVec &O) {
    SOLERO_CHECK(NumBits == O.NumBits, "BitVec size mismatch");
    bool Changed = false;
    for (std::size_t W = 0; W < Words.size(); ++W) {
      uint64_t New = Words[W] | O.Words[W];
      Changed |= New != Words[W];
      Words[W] = New;
    }
    return Changed;
  }

  bool any() const {
    for (uint64_t W : Words)
      if (W != 0)
        return true;
    return false;
  }

  std::size_t count() const {
    std::size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<std::size_t>(__builtin_popcountll(W));
    return N;
  }

  bool operator==(const BitVec &O) const {
    return NumBits == O.NumBits && Words == O.Words;
  }
  bool operator!=(const BitVec &O) const { return !(*this == O); }

private:
  std::size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_ANALYSIS_BITVEC_H

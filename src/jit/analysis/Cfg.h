//===- jit/analysis/Cfg.h - CSIR control-flow structure ---------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Successor/predecessor structure of a CSIR method, shared by every
/// dataflow pass. The CFG is per-instruction (the verifier's view): each
/// pc is a node, and edges follow the opcode semantics — Jump goes to its
/// target, conditional jumps to target and fall-through, Return/Throw have
/// no successors, everything else falls through.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_ANALYSIS_CFG_H
#define SOLERO_JIT_ANALYSIS_CFG_H

#include <cstdint>
#include <vector>

#include "jit/Program.h"

namespace solero {
namespace jit {

/// Calls \p Fn(SuccPc) for every control-flow successor of \p Pc.
/// Successors past the end of the method are dropped (the verifier rejects
/// them; analyses may run pre-verification for diagnostics).
template <typename F>
void forEachSuccessor(const Method &Fn, uint32_t Pc, F &&Callback) {
  const std::size_t N = Fn.Code.size();
  const Instruction &I = Fn.Code[Pc];
  auto Emit = [&](std::size_t S) {
    if (S < N)
      Callback(static_cast<uint32_t>(S));
  };
  switch (I.Op) {
  case Opcode::Jump:
    Emit(static_cast<std::size_t>(I.A));
    break;
  case Opcode::JumpIfZero:
  case Opcode::JumpIfNonZero:
    Emit(static_cast<std::size_t>(I.A));
    Emit(Pc + 1);
    break;
  case Opcode::Return:
  case Opcode::Throw:
    break; // no successors
  default:
    Emit(Pc + 1);
    break;
  }
}

/// Predecessor lists for every pc of \p Fn (built once, used by forward
/// worklist passes to re-enqueue efficiently).
inline std::vector<std::vector<uint32_t>> buildPredecessors(const Method &Fn) {
  std::vector<std::vector<uint32_t>> Preds(Fn.Code.size());
  for (uint32_t Pc = 0; Pc < Fn.Code.size(); ++Pc)
    forEachSuccessor(Fn, Pc, [&](uint32_t S) { Preds[S].push_back(Pc); });
  return Preds;
}

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_ANALYSIS_CFG_H

//===- jit/analysis/Diagnostics.cpp - Elidability diagnostics -------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/analysis/Diagnostics.h"

#include <cstdio>

using namespace solero;
using namespace solero::jit;

bool jit::diagBlocks(DiagCode Code) {
  switch (Code) {
  case DiagCode::AnnotatedReadOnly:
  case DiagCode::AnnotatedReadMostly:
  case DiagCode::NoWritesOrSideEffects:
  case DiagCode::RareWrites:
  case DiagCode::FreshWrite:
    return false;
  case DiagCode::NestedSync:
  case DiagCode::HeapWrite:
  case DiagCode::ArrayWrite:
  case DiagCode::StaticWrite:
  case DiagCode::SideEffect:
  case DiagCode::LiveLocalStore:
  case DiagCode::ImpureInvoke:
  case DiagCode::EscapingFreshWrite:
    return true;
  }
  SOLERO_UNREACHABLE("bad DiagCode");
}

std::string jit::renderDiagnostic(const Module &M, const Diagnostic &D) {
  char Buf[256];
  switch (D.Code) {
  case DiagCode::AnnotatedReadOnly:
    return "@SoleroReadOnly annotation";
  case DiagCode::AnnotatedReadMostly:
    return "@SoleroReadMostly annotation";
  case DiagCode::NoWritesOrSideEffects:
    return "no writes or side effects";
  case DiagCode::RareWrites:
    return "profile: rare writes";
  case DiagCode::NestedSync:
    std::snprintf(Buf, sizeof(Buf), "nested synchronized block at pc %u",
                  D.Pc);
    return Buf;
  case DiagCode::HeapWrite:
    std::snprintf(Buf, sizeof(Buf),
                  "contains %s to %s[%d] at pc %u; writes shared state — "
                  "move the write out of the region or profile it rare",
                  opcodeName(D.Op), D.Op == Opcode::PutRef ? "R" : "F",
                  D.Operand, D.Pc);
    return Buf;
  case DiagCode::ArrayWrite:
    std::snprintf(Buf, sizeof(Buf),
                  "contains astore at pc %u (array element write)", D.Pc);
    return Buf;
  case DiagCode::StaticWrite:
    std::snprintf(Buf, sizeof(Buf), "contains putstatic to S[%d] at pc %u",
                  D.Operand, D.Pc);
    return Buf;
  case DiagCode::SideEffect:
    std::snprintf(Buf, sizeof(Buf),
                  "contains %s at pc %u (observable side effect)",
                  opcodeName(D.Op), D.Pc);
    return Buf;
  case DiagCode::LiveLocalStore:
    std::snprintf(Buf, sizeof(Buf),
                  "writes local %d live at region entry at pc %u; "
                  "re-execution would observe the clobbered value",
                  D.Operand, D.Pc);
    return Buf;
  case DiagCode::ImpureInvoke:
    std::snprintf(Buf, sizeof(Buf),
                  "invokes method not provably read-only: %s at pc %u; "
                  "annotate @SoleroReadOnly to override",
                  M.method(static_cast<uint32_t>(D.Operand)).Name.c_str(),
                  D.Pc);
    return Buf;
  case DiagCode::EscapingFreshWrite:
    std::snprintf(Buf, sizeof(Buf),
                  "write at pc %u to escaping object from pc %u; keep the "
                  "allocation region-local or annotate @SoleroReadOnly to "
                  "override",
                  D.Pc, D.AllocPc);
    return Buf;
  case DiagCode::FreshWrite:
    std::snprintf(Buf, sizeof(Buf),
                  "write at pc %u to non-escaping allocation from pc %u "
                  "(allowed)",
                  D.Pc, D.AllocPc);
    return Buf;
  }
  SOLERO_UNREACHABLE("bad DiagCode");
}

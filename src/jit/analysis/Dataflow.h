//===- jit/analysis/Dataflow.h - Worklist dataflow engine -------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable forward/backward dataflow engine over the verifier's
/// per-instruction CFG. A pass supplies a *domain*:
///
/// \code
///   struct MyDomain {
///     using State = ...;           // lattice element
///     State bottom() const;        // unreached / identity for join
///     State boundary() const;      // entry (forward) or exit (backward)
///     // Into |= From; true if Into changed.
///     bool join(State &Into, const State &From) const;
///     // Forward: state before Pc -> state after. Backward: state after
///     // Pc -> state before.
///     void transfer(uint32_t Pc, const Instruction &I, State &S) const;
///   };
/// \endcode
///
/// Both directions return the fixed-point state at the *entry* of every
/// instruction (before it executes) — the form liveness and escape facts
/// are consumed in. The engine is a chaotic-iteration worklist: CSIR
/// methods are small, so no priority ordering is needed for convergence
/// speed, only for determinism (the deque is FIFO and seeded in pc order,
/// making results reproducible).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_ANALYSIS_DATAFLOW_H
#define SOLERO_JIT_ANALYSIS_DATAFLOW_H

#include <deque>
#include <vector>

#include "jit/analysis/Cfg.h"

namespace solero {
namespace jit {

/// Forward dataflow over \p Fn. In[0] = boundary; unreachable code keeps
/// bottom. Returns the entry state of every pc.
template <typename Domain>
std::vector<typename Domain::State> runForwardDataflow(const Method &Fn,
                                                       const Domain &D) {
  const std::size_t N = Fn.Code.size();
  std::vector<typename Domain::State> In(N, D.bottom());
  if (N == 0)
    return In;
  std::vector<bool> Reached(N, false), Queued(N, false);
  In[0] = D.boundary();
  Reached[0] = true;
  std::deque<uint32_t> Worklist{0};
  Queued[0] = true;
  while (!Worklist.empty()) {
    uint32_t Pc = Worklist.front();
    Worklist.pop_front();
    Queued[Pc] = false;
    typename Domain::State Out = In[Pc];
    D.transfer(Pc, Fn.Code[Pc], Out);
    forEachSuccessor(Fn, Pc, [&](uint32_t S) {
      bool Changed;
      if (!Reached[S]) {
        In[S] = Out;
        Reached[S] = true;
        Changed = true;
      } else {
        Changed = D.join(In[S], Out);
      }
      if (Changed && !Queued[S]) {
        Worklist.push_back(S);
        Queued[S] = true;
      }
    });
  }
  return In;
}

/// Backward dataflow over \p Fn. Instructions without successors (Return,
/// Throw, the last instruction) see the boundary state after them; every
/// pc is seeded so unreachable code converges too. Returns the entry state
/// of every pc (i.e. after applying the pc's own transfer).
template <typename Domain>
std::vector<typename Domain::State> runBackwardDataflow(const Method &Fn,
                                                        const Domain &D) {
  const std::size_t N = Fn.Code.size();
  std::vector<typename Domain::State> In(N, D.bottom());
  if (N == 0)
    return In;
  std::vector<std::vector<uint32_t>> Preds = buildPredecessors(Fn);
  std::vector<bool> Queued(N, true);
  // Reverse pc order converges in one pass for loop-free code.
  std::deque<uint32_t> Worklist;
  for (std::size_t Pc = N; Pc-- > 0;)
    Worklist.push_back(static_cast<uint32_t>(Pc));
  while (!Worklist.empty()) {
    uint32_t Pc = Worklist.front();
    Worklist.pop_front();
    Queued[Pc] = false;
    bool HasSucc = false;
    typename Domain::State Out = D.bottom();
    forEachSuccessor(Fn, Pc, [&](uint32_t S) {
      HasSucc = true;
      D.join(Out, In[S]);
    });
    if (!HasSucc)
      Out = D.boundary();
    D.transfer(Pc, Fn.Code[Pc], Out);
    if (Out != In[Pc]) {
      In[Pc] = std::move(Out);
      for (uint32_t P : Preds[Pc])
        if (!Queued[P]) {
          Worklist.push_back(P);
          Queued[P] = true;
        }
    }
  }
  return In;
}

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_ANALYSIS_DATAFLOW_H

//===- jit/analysis/Liveness.cpp - Backward local liveness ----------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/analysis/Liveness.h"

#include "jit/analysis/Dataflow.h"

using namespace solero;
using namespace solero::jit;

namespace {

struct LivenessDomain {
  using State = BitVec;
  std::size_t NumLocals;

  State bottom() const { return BitVec(NumLocals); }
  State boundary() const { return BitVec(NumLocals); }
  bool join(State &Into, const State &From) const {
    return Into.unionWith(From);
  }
  void transfer(uint32_t, const Instruction &I, State &S) const {
    if (I.Op == Opcode::Store)
      S.reset(static_cast<std::size_t>(I.A)); // def kills
    if (I.Op == Opcode::Load)
      S.set(static_cast<std::size_t>(I.A)); // use gens
  }
};

} // namespace

std::vector<BitVec> jit::computeLiveIn(const Module &M, uint32_t Id) {
  const Method &Fn = M.method(Id);
  LivenessDomain D{Fn.NumLocals};
  return runBackwardDataflow(Fn, D);
}

//===- jit/analysis/RaceDetector.cpp - Static guest race check ------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/analysis/RaceDetector.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>

#include "jit/analysis/Diagnostics.h"
#include "jit/analysis/EscapeAnalysis.h"

using namespace solero;
using namespace solero::jit;

const char *jit::fieldSpaceName(FieldSpace Space) {
  switch (Space) {
  case FieldSpace::IntField:
    return "F";
  case FieldSpace::RefField:
    return "R";
  case FieldSpace::Static:
    return "S";
  }
  SOLERO_UNREACHABLE("bad FieldSpace");
}

namespace {

// Lock-context bits a method can run under.
constexpr uint8_t CtxUnlocked = 1;
constexpr uint8_t CtxLocked = 2;

struct Access {
  uint32_t MethodId;
  uint32_t Pc;
  AccessKind Kind;
  bool Locked;
};

struct FieldKey {
  FieldSpace Space;
  int32_t Index;
  bool operator<(const FieldKey &O) const {
    if (Space != O.Space)
      return Space < O.Space;
    return Index < O.Index;
  }
};

/// depth > 0 lexically (the verifier enforces that lexical and dynamic
/// nesting agree, so this is the region membership of each pc).
std::vector<bool> lexicallyInRegion(const Method &Fn) {
  std::vector<bool> In(Fn.Code.size(), false);
  uint32_t Depth = 0;
  for (uint32_t Pc = 0; Pc < Fn.Code.size(); ++Pc) {
    if (Fn.Code[Pc].Op == Opcode::SyncExit && Depth > 0)
      --Depth;
    In[Pc] = Depth > 0;
    if (Fn.Code[Pc].Op == Opcode::SyncEnter)
      ++Depth;
  }
  return In;
}

} // namespace

std::vector<RaceWarning> jit::detectRaces(const Module &M) {
  const uint32_t N = static_cast<uint32_t>(M.methodCount());
  std::vector<std::vector<bool>> InRegion(N);
  std::vector<bool> HasCaller(N, false);
  for (uint32_t Id = 0; Id < N; ++Id) {
    InRegion[Id] = lexicallyInRegion(M.method(Id));
    for (const Instruction &I : M.method(Id).Code)
      if (I.Op == Opcode::Invoke && I.A >= 0 &&
          static_cast<uint32_t>(I.A) < N)
        HasCaller[static_cast<uint32_t>(I.A)] = true;
  }

  // Entry points: methods nobody in the module invokes start unlocked.
  // A module that only contains call cycles has no roots; then every
  // method is a potential entry point.
  std::vector<uint8_t> Ctx(N, 0);
  bool AnyRoot = false;
  for (uint32_t Id = 0; Id < N; ++Id)
    if (!HasCaller[Id]) {
      Ctx[Id] = CtxUnlocked;
      AnyRoot = true;
    }
  if (!AnyRoot)
    Ctx.assign(N, CtxUnlocked);

  // Propagate contexts over the call graph: an invoke inside a region
  // runs the callee locked; outside, the callee inherits the caller's
  // possible contexts.
  std::deque<uint32_t> Worklist;
  for (uint32_t Id = 0; Id < N; ++Id)
    if (Ctx[Id])
      Worklist.push_back(Id);
  while (!Worklist.empty()) {
    uint32_t Id = Worklist.front();
    Worklist.pop_front();
    const Method &Fn = M.method(Id);
    for (uint32_t Pc = 0; Pc < Fn.Code.size(); ++Pc) {
      const Instruction &I = Fn.Code[Pc];
      if (I.Op != Opcode::Invoke || I.A < 0 ||
          static_cast<uint32_t>(I.A) >= N)
        continue;
      uint32_t Callee = static_cast<uint32_t>(I.A);
      uint8_t Add = InRegion[Id][Pc] ? CtxLocked : Ctx[Id];
      if ((Ctx[Callee] | Add) != Ctx[Callee]) {
        Ctx[Callee] |= Add;
        Worklist.push_back(Callee);
      }
    }
  }

  // Collect per-field accesses. Writes the escape analysis proves hit a
  // fresh, unescaped allocation touch thread-local memory and are
  // dropped — they can race with nothing.
  std::map<FieldKey, std::vector<Access>> Fields;
  for (uint32_t Id = 0; Id < N; ++Id) {
    if (!Ctx[Id])
      continue; // unreachable from any entry point
    const Method &Fn = M.method(Id);
    EscapeAnalysis Esc(M, Id);
    for (uint32_t Pc = 0; Pc < Fn.Code.size(); ++Pc) {
      const Instruction &I = Fn.Code[Pc];
      FieldKey Key;
      AccessKind Kind;
      switch (I.Op) {
      case Opcode::GetField:
        Key = {FieldSpace::IntField, I.A};
        Kind = AccessKind::Read;
        break;
      case Opcode::PutField:
        Key = {FieldSpace::IntField, I.A};
        Kind = AccessKind::Write;
        break;
      case Opcode::GetRef:
        Key = {FieldSpace::RefField, I.A};
        Kind = AccessKind::Read;
        break;
      case Opcode::PutRef:
        Key = {FieldSpace::RefField, I.A};
        Kind = AccessKind::Write;
        break;
      case Opcode::GetStatic:
        Key = {FieldSpace::Static, I.A};
        Kind = AccessKind::Read;
        break;
      case Opcode::PutStatic:
        Key = {FieldSpace::Static, I.A};
        Kind = AccessKind::Write;
        break;
      default:
        continue;
      }
      if (Kind == AccessKind::Write &&
          (I.Op == Opcode::PutField || I.Op == Opcode::PutRef) &&
          Esc.writeBaseAllocPc(Pc) != DiagNoPc && !Esc.writeBaseEscaped(Pc))
        continue; // provably thread-local
      std::vector<Access> &List = Fields[Key];
      if (InRegion[Id][Pc]) {
        List.push_back({Id, Pc, Kind, /*Locked=*/true});
      } else {
        if (Ctx[Id] & CtxLocked)
          List.push_back({Id, Pc, Kind, /*Locked=*/true});
        if (Ctx[Id] & CtxUnlocked)
          List.push_back({Id, Pc, Kind, /*Locked=*/false});
      }
    }
  }

  std::vector<RaceWarning> Warnings;
  for (const auto &[Key, List] : Fields) {
    const Access *FirstLocked = nullptr;
    bool AnyWrite = false;
    for (const Access &A : List) {
      if (A.Locked && !FirstLocked)
        FirstLocked = &A;
      AnyWrite |= A.Kind == AccessKind::Write;
    }
    if (!FirstLocked || !AnyWrite)
      continue; // never locked, or read-only sharing: not our pattern
    for (const Access &A : List) {
      if (A.Locked)
        continue;
      if (A.Kind == AccessKind::Read && !AnyWrite)
        continue;
      Warnings.push_back({A.MethodId, A.Pc, Key.Space, Key.Index, A.Kind,
                          FirstLocked->MethodId, FirstLocked->Pc});
    }
  }
  std::sort(Warnings.begin(), Warnings.end(),
            [](const RaceWarning &A, const RaceWarning &B) {
              if (A.MethodId != B.MethodId)
                return A.MethodId < B.MethodId;
              if (A.Pc != B.Pc)
                return A.Pc < B.Pc;
              if (A.Space != B.Space)
                return A.Space < B.Space;
              return A.Index < B.Index;
            });
  return Warnings;
}

std::string jit::renderRaceWarning(const Module &M, const RaceWarning &W) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "%s pc %u: unlocked %s of %s[%d] races with locked access "
                "at %s:%u; wrap it in a synchronized block",
                M.method(W.MethodId).Name.c_str(), W.Pc,
                W.Kind == AccessKind::Write ? "write" : "read",
                fieldSpaceName(W.Space), W.Index,
                M.method(W.LockedMethodId).Name.c_str(), W.LockedPc);
  return Buf;
}

//===- jit/analysis/EscapeAnalysis.cpp - In-region allocation facts -------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/analysis/EscapeAnalysis.h"

#include <utility>

#include "jit/analysis/Dataflow.h"

using namespace solero;
using namespace solero::jit;

const char *jit::escapeWayName(EscapeWay Way) {
  switch (Way) {
  case EscapeWay::StoredToHeap:
    return "stored to the heap";
  case EscapeWay::InvokeArg:
    return "passed to a callee";
  case EscapeWay::MonitorOp:
    return "used as a monitor";
  case EscapeWay::NativeOp:
    return "passed to native code";
  case EscapeWay::Returned:
    return "returned";
  }
  SOLERO_UNREACHABLE("bad EscapeWay");
}

namespace {

/// Abstract reference value: bit i = "may be the allocation from tracked
/// site i"; bit 63 = "may be anything external" (a parameter, a loaded
/// ref, a callee result, or an allocation past the tracking cap).
/// Integers carry mask 0, which also reads as "not provably fresh".
constexpr uint64_t Ext = 1ULL << 63;
constexpr std::size_t MaxSites = 63;

struct EscState {
  std::vector<uint64_t> Locals;
  std::vector<uint64_t> Stack;
  uint64_t Escaped = 0; ///< sites that escaped on some path to here
  bool Reached = false; ///< distinguishes bottom from a reached empty state
};

struct EscapeDomain {
  using State = EscState;
  const Module &M;
  const Method &Fn;
  /// Site index per pc (-1 = not an allocation or past the cap).
  std::vector<int32_t> SiteAt;
  /// Set only during the post-fixpoint reporting pass.
  std::map<uint32_t, EscapeAnalysis::EscapeEvent> *Events = nullptr;

  State bottom() const { return {}; }
  State boundary() const {
    State S;
    // Parameters may alias anything the caller holds; non-parameter
    // locals start zeroed, but EXT for all slots is equally sound and
    // keeps the boundary uniform.
    S.Locals.assign(Fn.NumLocals, Ext);
    S.Reached = true;
    return S;
  }

  bool join(State &Into, const State &From) const {
    bool Changed = false;
    auto Merge = [&](uint64_t &A, uint64_t B) {
      if ((A | B) != A) {
        A |= B;
        Changed = true;
      }
    };
    for (std::size_t I = 0; I < Into.Locals.size() && I < From.Locals.size();
         ++I)
      Merge(Into.Locals[I], From.Locals[I]);
    // The verifier guarantees equal stack heights at joins; tolerate
    // unverified code by merging the common prefix.
    if (From.Stack.size() < Into.Stack.size()) {
      Into.Stack.resize(From.Stack.size());
      Changed = true;
    }
    for (std::size_t I = 0; I < Into.Stack.size(); ++I)
      Merge(Into.Stack[I], From.Stack[I]);
    Merge(Into.Escaped, From.Escaped);
    if (From.Reached && !Into.Reached) {
      Into.Reached = true;
      Changed = true;
    }
    return Changed;
  }

  void transfer(uint32_t Pc, const Instruction &I, State &S) const {
    auto Push = [&](uint64_t V) { S.Stack.push_back(V); };
    auto Pop = [&]() -> uint64_t {
      if (S.Stack.empty())
        return Ext; // unverified underflow; stay conservative
      uint64_t V = S.Stack.back();
      S.Stack.pop_back();
      return V;
    };
    auto Escape = [&](uint64_t V, EscapeWay Way) {
      uint64_t Sites = V & ~Ext;
      if (!Sites)
        return;
      S.Escaped |= Sites;
      if (Events)
        for (std::size_t B = 0; B < MaxSites; ++B)
          if (Sites & (1ULL << B))
            for (uint32_t A = 0; A < SiteAt.size(); ++A)
              if (SiteAt[A] == static_cast<int32_t>(B))
                Events->emplace(A, EscapeAnalysis::EscapeEvent{Pc, Way});
    };

    switch (I.Op) {
    case Opcode::Const:
    case Opcode::GetStatic:
      Push(0);
      break;
    case Opcode::PushNull:
      Push(0); // null is not a trackable allocation and cannot escape
      break;
    case Opcode::NewObject:
      Push(SiteAt[Pc] >= 0 ? 1ULL << SiteAt[Pc] : Ext);
      break;
    case Opcode::NewArray: // pops length, pushes the array
      Pop();
      Push(SiteAt[Pc] >= 0 ? 1ULL << SiteAt[Pc] : Ext);
      break;
    case Opcode::PutStatic: // int cell; the value cannot be a ref
    case Opcode::Pop:
    case Opcode::Print:
    case Opcode::Throw: // pops the error code
      Pop();
      break;
    case Opcode::MonitorWait:
    case Opcode::MonitorNotify:
    case Opcode::MonitorNotifyAll:
      Escape(Pop(), EscapeWay::MonitorOp);
      break;
    case Opcode::SyncEnter:
      Escape(Pop(), EscapeWay::MonitorOp);
      break;
    case Opcode::SyncExit:
      break;
    case Opcode::Dup:
      if (!S.Stack.empty())
        Push(S.Stack.back());
      else
        Push(Ext);
      break;
    case Opcode::Swap:
      if (S.Stack.size() >= 2)
        std::swap(S.Stack[S.Stack.size() - 1], S.Stack[S.Stack.size() - 2]);
      break;
    case Opcode::Load:
      Push(static_cast<uint32_t>(I.A) < S.Locals.size()
               ? S.Locals[static_cast<uint32_t>(I.A)]
               : Ext);
      break;
    case Opcode::Store: {
      uint64_t V = Pop();
      if (static_cast<uint32_t>(I.A) < S.Locals.size())
        S.Locals[static_cast<uint32_t>(I.A)] = V;
      break;
    }
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::CmpEq:
    case Opcode::CmpLt:
    case Opcode::ALoad: // int element
      Pop();
      Pop();
      Push(0);
      break;
    case Opcode::Neg:
    case Opcode::ArrayLen:
      Pop();
      Push(0);
      break;
    case Opcode::NativeCall: // consumes the top, produces an int
      Escape(Pop(), EscapeWay::NativeOp);
      Push(0);
      break;
    case Opcode::GetField: // pops the object, pushes an int field
      Pop();
      Push(0);
      break;
    case Opcode::GetRef: // a loaded reference is external
      Pop();
      Push(Ext);
      break;
    case Opcode::PutField: // (obj, value) -> ()
      Pop();
      Pop();
      break;
    case Opcode::PutRef: { // (obj, value) -> (); the value escapes
      uint64_t Val = Pop();
      Pop();
      Escape(Val, EscapeWay::StoredToHeap);
      break;
    }
    case Opcode::AStore: // (array, index, value) -> (); int value
      Pop();
      Pop();
      Pop();
      break;
    case Opcode::Invoke: {
      uint32_t Params = 0;
      if (I.A >= 0 && static_cast<uint32_t>(I.A) < M.methodCount())
        Params = M.method(static_cast<uint32_t>(I.A)).NumParams;
      for (uint32_t P = 0; P < Params; ++P)
        Escape(Pop(), EscapeWay::InvokeArg);
      Push(Ext);
      break;
    }
    case Opcode::Jump:
      break;
    case Opcode::JumpIfZero:
    case Opcode::JumpIfNonZero:
      Pop();
      break;
    case Opcode::Return:
      Escape(Pop(), EscapeWay::Returned);
      break;
    }
  }
};

} // namespace

EscapeAnalysis::EscapeAnalysis(const Module &M, uint32_t MethodId) {
  const Method &Fn = M.method(MethodId);
  EscapeDomain D{M, Fn, {}, nullptr};

  // Assign tracked-site indices in pc order; allocations past the cap
  // degrade to external (sound: they just never look benign).
  D.SiteAt.assign(Fn.Code.size(), -1);
  for (uint32_t Pc = 0; Pc < Fn.Code.size(); ++Pc)
    if (Fn.Code[Pc].Op == Opcode::NewObject ||
        Fn.Code[Pc].Op == Opcode::NewArray)
      if (SiteAllocPc.size() < MaxSites) {
        D.SiteAt[Pc] = static_cast<int32_t>(SiteAllocPc.size());
        SiteAllocPc.push_back(Pc);
      }

  std::vector<EscState> In = runForwardDataflow(Fn, D);

  // Reporting pass: replay each reached instruction once, in pc order, to
  // harvest write facts and first-escape events from the fixed point.
  Writes.assign(Fn.Code.size(), WriteFact());
  D.Events = &Escapes;
  for (uint32_t Pc = 0; Pc < Fn.Code.size(); ++Pc) {
    if (!In[Pc].Reached)
      continue; // unreachable code keeps bottom

    const EscState &S = In[Pc];
    const Instruction &I = Fn.Code[Pc];
    WriteFact &W = Writes[Pc];
    auto At = [&](std::size_t FromTop) -> uint64_t {
      return S.Stack.size() >= FromTop ? S.Stack[S.Stack.size() - FromTop]
                                       : Ext;
    };
    if (I.Op == Opcode::PutField || I.Op == Opcode::PutRef) {
      W.Reached = true;
      W.BaseMask = At(2);
      W.EscapedMask = S.Escaped;
    } else if (I.Op == Opcode::AStore) {
      W.Reached = true;
      W.BaseMask = At(3);
      W.EscapedMask = S.Escaped;
    }
    EscState Tmp = S;
    D.transfer(Pc, I, Tmp); // records escape events
  }
  D.Events = nullptr;
}

bool EscapeAnalysis::writeIsRegionLocal(uint32_t Pc,
                                        const SyncRegion &R) const {
  if (Pc >= Writes.size() || !Writes[Pc].Reached)
    return false;
  const WriteFact &W = Writes[Pc];
  if (W.BaseMask == 0 || (W.BaseMask & Ext) || (W.BaseMask & W.EscapedMask))
    return false;
  for (std::size_t B = 0; B < SiteAllocPc.size(); ++B)
    if (W.BaseMask & (1ULL << B))
      if (!(SiteAllocPc[B] > R.EnterPc && SiteAllocPc[B] < R.ExitPc))
        return false;
  return true;
}

uint32_t EscapeAnalysis::writeBaseAllocPc(uint32_t Pc) const {
  if (Pc >= Writes.size() || !Writes[Pc].Reached)
    return ~0u; // DiagNoPc
  const WriteFact &W = Writes[Pc];
  if (W.BaseMask == 0 || (W.BaseMask & Ext))
    return ~0u;
  for (std::size_t B = 0; B < SiteAllocPc.size(); ++B)
    if (W.BaseMask & (1ULL << B))
      return SiteAllocPc[B];
  return ~0u;
}

bool EscapeAnalysis::writeBaseEscaped(uint32_t Pc) const {
  if (Pc >= Writes.size() || !Writes[Pc].Reached)
    return false;
  const WriteFact &W = Writes[Pc];
  return W.BaseMask != 0 && !(W.BaseMask & Ext) &&
         (W.BaseMask & W.EscapedMask) != 0;
}

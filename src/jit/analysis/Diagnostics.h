//===- jit/analysis/Diagnostics.h - Elidability diagnostics -----*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured elidability diagnostics. The classifier used to explain its
/// verdicts with free-form strings; tools (the disassembler, the
/// analyze_module report, tests) now get a typed record — code, pc, the
/// offending operand (field index / local slot / callee id), and for
/// escape-analysis verdicts the allocation site — and render it on demand
/// with a fix hint.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_ANALYSIS_DIAGNOSTICS_H
#define SOLERO_JIT_ANALYSIS_DIAGNOSTICS_H

#include <cstdint>
#include <string>

#include "jit/Program.h"

namespace solero {
namespace jit {

/// Why a region was (or was not) classified elidable.
enum class DiagCode : uint8_t {
  // Positive verdicts (the region elides).
  AnnotatedReadOnly,     ///< @SoleroReadOnly override
  AnnotatedReadMostly,   ///< @SoleroReadMostly override
  NoWritesOrSideEffects, ///< the Section 3.2 proof succeeded
  RareWrites,            ///< Section 5 profile heuristic (read-mostly)

  // Blockers (why the region locks conventionally).
  NestedSync,        ///< nested synchronized block (Pc = inner SyncEnter)
  HeapWrite,         ///< putfield/putref to shared state (Operand = field)
  ArrayWrite,        ///< astore to an array element
  StaticWrite,       ///< putstatic (Operand = static cell)
  SideEffect,        ///< print/nativecall/monitor op (Op says which)
  LiveLocalStore,    ///< store to a local live at region entry (Operand)
  ImpureInvoke,      ///< callee not provably pure (Operand = method id)
  EscapingFreshWrite,///< write to in-region allocation that escapes first
                     ///< (Operand = field, AllocPc = allocation site)

  // Notes (do not affect the verdict).
  FreshWrite, ///< write to a non-escaping in-region allocation — allowed
              ///< (Operand = field, AllocPc = allocation site)
};

/// Sentinel for "no associated pc".
inline constexpr uint32_t DiagNoPc = ~0u;

/// One diagnostic. Which fields are meaningful depends on Code (see the
/// enum); Operand is a field/static index, local slot, or callee method
/// id, and AllocPc the allocation site for escape-analysis verdicts.
struct Diagnostic {
  DiagCode Code;
  uint32_t Pc = DiagNoPc;
  Opcode Op = Opcode::Const; ///< offending opcode for write/effect codes
  int32_t Operand = -1;
  uint32_t AllocPc = DiagNoPc;
};

/// True if this code forbids elision (as opposed to a verdict or note).
bool diagBlocks(DiagCode Code);

/// Renders \p D as "what happened at which pc; fix hint". Needs the module
/// for callee names.
std::string renderDiagnostic(const Module &M, const Diagnostic &D);

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_ANALYSIS_DIAGNOSTICS_H

//===- jit/analysis/Liveness.h - Backward local liveness --------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward liveness of local variable slots, on the generic dataflow
/// engine. The classifier uses it for the Section 3.2 rule "writes to
/// local variables that are live at the beginning of the critical section
/// forbid elision". Lattice elements are dynamic bitsets, so there is no
/// 64-local ceiling (the former implementation hard-failed above 64).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_ANALYSIS_LIVENESS_H
#define SOLERO_JIT_ANALYSIS_LIVENESS_H

#include <vector>

#include "jit/Program.h"
#include "jit/analysis/BitVec.h"

namespace solero {
namespace jit {

/// The set of locals live at the entry of each instruction of method
/// \p Id. Supports any number of locals.
std::vector<BitVec> computeLiveIn(const Module &M, uint32_t Id);

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_ANALYSIS_LIVENESS_H

//===- jit/analysis/EscapeAnalysis.h - In-region allocation facts *- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flow-sensitive escape analysis over one CSIR method, on the forward
/// dataflow engine. It tracks which allocation site(s) each local and
/// operand-stack slot may refer to, and which sites have escaped on some
/// path (stored into the heap, passed to a callee, monitored, or handed
/// to native code).
///
/// The classifier consumes the result: a PutField/PutRef/AStore whose base
/// is *provably* an allocation from inside the synchronized region being
/// classified, with no escape on any path reaching the write, is a *benign
/// write* — it touches memory no other thread can reach, so it no longer
/// disqualifies the region from the Figure-7 elided path. The paper
/// explicitly permits allocation inside read-only sections; this extends
/// that to filling in what was allocated. Soundness rests on the closed
/// publication argument: inside a region, a fresh object can only become
/// reachable from shared state via a heap write to a non-fresh base (which
/// itself disqualifies the region) or via an impure callee (ditto);
/// escapes through locals and Return publish only after the speculation
/// commits. The analysis is nevertheless conservative about *every*
/// recorded escape — a site that escapes anywhere on a path stops being
/// benign for later writes, which is what the EscapingFreshWrite
/// diagnostic reports.
///
/// Conservatisms (see DESIGN.md §13): only allocations lexically inside
/// the region count (at most 63 tracked sites per method; later sites
/// degrade to "external"), values returned from callees and loaded from
/// reference fields are external, and arrays are tracked like objects.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_ANALYSIS_ESCAPEANALYSIS_H
#define SOLERO_JIT_ANALYSIS_ESCAPEANALYSIS_H

#include <cstdint>
#include <map>
#include <vector>

#include "jit/Program.h"
#include "jit/Verifier.h"

namespace solero {
namespace jit {

/// How an allocation site first escaped.
enum class EscapeWay : uint8_t {
  StoredToHeap, ///< PutRef stored the reference into some object
  InvokeArg,    ///< passed as an argument to a callee
  MonitorOp,    ///< used as a monitor (SyncEnter / wait / notify)
  NativeOp,     ///< consumed by NativeCall
  Returned,     ///< returned from the method
};

const char *escapeWayName(EscapeWay Way);

/// Escape facts for one (verified) method.
class EscapeAnalysis {
public:
  EscapeAnalysis(const Module &M, uint32_t MethodId);

  /// True if the write at \p Pc (PutField/PutRef/AStore) provably targets
  /// an allocation from strictly inside \p R that has not escaped on any
  /// path reaching \p Pc.
  bool writeIsRegionLocal(uint32_t Pc, const SyncRegion &R) const;

  /// The allocation site of the write's base when it is a known fresh
  /// allocation (unique or not — the lowest site is returned), DiagNoPc
  /// when the base is external/unknown.
  uint32_t writeBaseAllocPc(uint32_t Pc) const;

  /// True if the write's base is a fresh allocation that may have escaped
  /// before \p Pc (the EscapingFreshWrite diagnostic).
  bool writeBaseEscaped(uint32_t Pc) const;

  struct EscapeEvent {
    uint32_t Pc;
    EscapeWay Way;
  };
  /// Allocation pc -> first (lowest-pc) escape event, for diagnostics and
  /// tests. Sites that never escape are absent.
  const std::map<uint32_t, EscapeEvent> &escapes() const { return Escapes; }

private:
  struct WriteFact {
    bool Reached = false;
    uint64_t BaseMask = 0;    ///< site bits + external bit
    uint64_t EscapedMask = 0; ///< sites escaped at the write's entry
  };
  std::vector<WriteFact> Writes;   ///< indexed by pc; write ops only
  std::vector<uint32_t> SiteAllocPc; ///< site index -> allocation pc
  std::map<uint32_t, EscapeEvent> Escapes;
};

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_ANALYSIS_ESCAPEANALYSIS_H

//===- jit/analysis/RaceDetector.h - Static guest race check ----*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lockset-style static race detector for guest modules. Lock elision is
/// only transparent for correctly-synchronized guests (the paper assumes
/// data-race freedom); this pass flags the common violation pattern — a
/// shared field accessed both under a synchronized region and outside any
/// region — before a module is run elided.
///
/// The pass computes, per instruction, whether it can execute while *some*
/// monitor is held ("locked") and/or while none is ("unlocked"): lexical
/// SyncEnter/SyncExit nesting inside each method, plus inter-procedural
/// propagation (a callee invoked from inside a region runs locked; a
/// module root — a method no one in the module invokes — starts unlocked).
/// It then reports every field access that can happen unlocked when the
/// same field also has locked accesses, provided a write is involved
/// (read/read sharing is race-free).
///
/// Soundness caveats (DESIGN.md §13): the detector keys on field *indices*
/// (F[i]/R[i]/S[i]), not objects, so distinct objects sharing a field
/// index can cause false positives; it treats all monitors as one lock, so
/// it cannot see lock-disjoint races; array elements are not tracked; and
/// writes to provably region-local allocations (escape analysis) are
/// excluded, since no other thread can reach them.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_ANALYSIS_RACEDETECTOR_H
#define SOLERO_JIT_ANALYSIS_RACEDETECTOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "jit/Program.h"

namespace solero {
namespace jit {

enum class AccessKind : uint8_t { Read, Write };

/// Which namespace a field index lives in.
enum class FieldSpace : uint8_t {
  IntField, ///< F[i] — GetField/PutField
  RefField, ///< R[i] — GetRef/PutRef
  Static,   ///< S[i] — GetStatic/PutStatic
};

const char *fieldSpaceName(FieldSpace Space);

/// One potential guest race: the unlocked access, plus one locked access
/// to the same field as evidence.
struct RaceWarning {
  uint32_t MethodId; ///< method with the unlocked access
  uint32_t Pc;
  FieldSpace Space;
  int32_t Index;
  AccessKind Kind;
  uint32_t LockedMethodId; ///< a locked access to the same field
  uint32_t LockedPc;
};

/// Runs the detector over every method. Warnings are deterministic,
/// ordered by (method id, pc).
std::vector<RaceWarning> detectRaces(const Module &M);

/// "methodName pc N: unlocked write to F[2] races with locked access at
/// other:7; wrap it in synchronized or make the field thread-local".
std::string renderRaceWarning(const Module &M, const RaceWarning &W);

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_ANALYSIS_RACEDETECTOR_H

//===- jit/Assembler.h - CSIR text format -----------------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A textual format for CSIR modules, so guest programs can live in files
/// instead of builder code. Grammar (line-oriented; `;` starts a comment):
///
///   statics <N>
///   method <name>(params=<P>, locals=<L>) [@SoleroReadOnly]
///                                         [@SoleroReadMostly] {
///     [<label>:] <opcode> [<operand>]
///     ...
///   }
///
/// Operands: integers for const/load/store/field/static indices; label
/// names for jumps; method names for invoke (forward references allowed).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_ASSEMBLER_H
#define SOLERO_JIT_ASSEMBLER_H

#include <string>

#include "jit/Program.h"

namespace solero {
namespace jit {

/// Result of assembling a text module.
struct AsmResult {
  bool Ok = false;
  std::string Error; ///< diagnostic when !Ok
  int Line = 0;      ///< 1-based source line of the diagnostic
  Module M;
};

/// Parses the textual form into a Module. Does not verify; run
/// verifyModule on the result before executing it.
AsmResult assembleModule(const std::string &Text);

/// Renders \p M in the assembler's text format (round-trips through
/// assembleModule).
std::string writeModuleText(const Module &M);

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_ASSEMBLER_H

//===- jit/Opcode.cpp - CSIR opcode names ----------------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/Opcode.h"

#include "support/Assert.h"

using namespace solero;
using namespace solero::jit;

const char *jit::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
    return "const";
  case Opcode::Dup:
    return "dup";
  case Opcode::Pop:
    return "pop";
  case Opcode::Swap:
    return "swap";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Mod:
    return "mod";
  case Opcode::Neg:
    return "neg";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::Jump:
    return "jump";
  case Opcode::JumpIfZero:
    return "jz";
  case Opcode::JumpIfNonZero:
    return "jnz";
  case Opcode::GetField:
    return "getfield";
  case Opcode::PutField:
    return "putfield";
  case Opcode::GetRef:
    return "getref";
  case Opcode::PutRef:
    return "putref";
  case Opcode::NewObject:
    return "new";
  case Opcode::PushNull:
    return "null";
  case Opcode::NewArray:
    return "newarray";
  case Opcode::ALoad:
    return "aload";
  case Opcode::AStore:
    return "astore";
  case Opcode::ArrayLen:
    return "arraylen";
  case Opcode::GetStatic:
    return "getstatic";
  case Opcode::PutStatic:
    return "putstatic";
  case Opcode::Invoke:
    return "invoke";
  case Opcode::SyncEnter:
    return "syncenter";
  case Opcode::SyncExit:
    return "syncexit";
  case Opcode::MonitorWait:
    return "wait";
  case Opcode::MonitorNotify:
    return "notify";
  case Opcode::MonitorNotifyAll:
    return "notifyall";
  case Opcode::Throw:
    return "throw";
  case Opcode::Print:
    return "print";
  case Opcode::NativeCall:
    return "nativecall";
  case Opcode::Return:
    return "return";
  }
  SOLERO_UNREACHABLE("bad opcode");
}

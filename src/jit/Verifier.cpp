//===- jit/Verifier.cpp - CSIR static checks ------------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/Verifier.h"

#include <algorithm>
#include <deque>
#include <optional>

using namespace solero;
using namespace solero::jit;

namespace {

/// Abstract machine state at an instruction boundary.
struct AbsState {
  int32_t Height = 0;
  // Open synchronized regions: (SyncEnter pc, stack height after the
  // monitor ref was popped).
  std::vector<std::pair<uint32_t, int32_t>> Regions;

  bool operator==(const AbsState &O) const {
    return Height == O.Height && Regions == O.Regions;
  }
};

struct Checker {
  const Module &M;
  const Method &Fn;
  VerifiedMethod Out;
  std::vector<std::optional<AbsState>> In;
  std::deque<uint32_t> Worklist;

  // Lexical SyncEnter -> SyncExit pairing (code order). Regions must be
  // lexically balanced so that `synchronized { return x; }` — where the
  // SyncExit is unreachable — still has a well-defined extent.
  std::vector<int32_t> LexicalExit;

  explicit Checker(const Module &M, uint32_t Id)
      : M(M), Fn(M.method(Id)), In(Fn.Code.size()) {}

  bool matchLexically() {
    LexicalExit.assign(Fn.Code.size(), -1);
    std::vector<uint32_t> Stack;
    for (uint32_t Pc = 0; Pc < Fn.Code.size(); ++Pc) {
      if (Fn.Code[Pc].Op == Opcode::SyncEnter) {
        Stack.push_back(Pc);
      } else if (Fn.Code[Pc].Op == Opcode::SyncExit) {
        if (Stack.empty())
          return fail(Pc, "SyncExit without a lexically matching SyncEnter");
        LexicalExit[Stack.back()] = static_cast<int32_t>(Pc);
        Stack.pop_back();
      }
    }
    if (!Stack.empty())
      return fail(Stack.back(), "SyncEnter without a matching SyncExit");
    return true;
  }

  bool fail(uint32_t Pc, std::string Msg) {
    Out.Ok = false;
    Out.Error = std::move(Msg);
    Out.ErrorPc = Pc;
    return false;
  }

  bool flowTo(uint32_t From, uint32_t Target, const AbsState &S) {
    if (Target >= Fn.Code.size())
      return fail(From, "control flows past the end of the method");
    if (!In[Target].has_value()) {
      In[Target] = S;
      Worklist.push_back(Target);
      return true;
    }
    if (!(*In[Target] == S))
      return fail(Target, "inconsistent stack or region state at join "
                          "(branch crosses a synchronized region boundary?)");
    return true;
  }

  bool run() {
    if (Fn.Code.empty())
      return fail(0, "empty method body");
    if (Fn.NumLocals < Fn.NumParams)
      return fail(0, "locals smaller than parameter count");
    if (!matchLexically())
      return false;
    In[0] = AbsState{};
    Worklist.push_back(0);
    while (!Worklist.empty()) {
      uint32_t Pc = Worklist.front();
      Worklist.pop_front();
      if (!step(Pc))
        return false;
    }
    // Regions come from the lexical pairing; the dataflow has confirmed
    // that every executed SyncExit agrees with it.
    for (uint32_t Pc = 0; Pc < Fn.Code.size(); ++Pc)
      if (Fn.Code[Pc].Op == Opcode::SyncEnter)
        Out.Regions.push_back(
            SyncRegion{Pc, static_cast<uint32_t>(LexicalExit[Pc])});
    Out.Ok = true;
    return true;
  }

  bool step(uint32_t Pc) {
    AbsState S = *In[Pc];
    const Instruction &I = Fn.Code[Pc];
    auto Need = [&](int N) {
      if (S.Height < N)
        return fail(Pc, "operand stack underflow");
      return true;
    };
    auto CheckLocal = [&](int32_t Slot) {
      if (Slot < 0 || static_cast<uint32_t>(Slot) >= Fn.NumLocals)
        return fail(Pc, "local slot out of range");
      return true;
    };

    switch (I.Op) {
    case Opcode::Const:
    case Opcode::NewObject:
    case Opcode::PushNull:
      ++S.Height;
      break;
    case Opcode::GetStatic:
      if (I.A < 0 || static_cast<uint32_t>(I.A) >= M.NumStatics)
        return fail(Pc, "static index out of range");
      ++S.Height;
      break;
    case Opcode::PutStatic:
      if (I.A < 0 || static_cast<uint32_t>(I.A) >= M.NumStatics)
        return fail(Pc, "static index out of range");
      if (!Need(1))
        return false;
      --S.Height;
      break;
    case Opcode::Dup:
      if (!Need(1))
        return false;
      ++S.Height;
      break;
    case Opcode::Pop:
    case Opcode::Print:
    case Opcode::MonitorWait:
    case Opcode::MonitorNotify:
    case Opcode::MonitorNotifyAll:
      if (!Need(1))
        return false;
      --S.Height;
      break;
    case Opcode::Swap:
      if (!Need(2))
        return false;
      break;
    case Opcode::Load:
      if (!CheckLocal(I.A))
        return false;
      ++S.Height;
      break;
    case Opcode::Store:
      if (!CheckLocal(I.A) || !Need(1))
        return false;
      --S.Height;
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::CmpEq:
    case Opcode::CmpLt:
      if (!Need(2))
        return false;
      --S.Height;
      break;
    case Opcode::Neg:
    case Opcode::NativeCall:
    case Opcode::NewArray:
    case Opcode::ArrayLen:
      if (!Need(1))
        return false;
      break;
    case Opcode::ALoad:
      if (!Need(2))
        return false;
      --S.Height;
      break;
    case Opcode::AStore:
      if (!Need(3))
        return false;
      S.Height -= 3;
      break;
    case Opcode::GetField:
      if (I.A < 0 || static_cast<uint32_t>(I.A) >= ObjectIntFields)
        return fail(Pc, "integer field index out of range");
      if (!Need(1))
        return false;
      break;
    case Opcode::GetRef:
      if (I.A < 0 || static_cast<uint32_t>(I.A) >= ObjectRefFields)
        return fail(Pc, "reference field index out of range");
      if (!Need(1))
        return false;
      break;
    case Opcode::PutField:
      if (I.A < 0 || static_cast<uint32_t>(I.A) >= ObjectIntFields)
        return fail(Pc, "integer field index out of range");
      if (!Need(2))
        return false;
      S.Height -= 2;
      break;
    case Opcode::PutRef:
      if (I.A < 0 || static_cast<uint32_t>(I.A) >= ObjectRefFields)
        return fail(Pc, "reference field index out of range");
      if (!Need(2))
        return false;
      S.Height -= 2;
      break;
    case Opcode::Invoke: {
      if (I.A < 0 || static_cast<uint32_t>(I.A) >= M.methodCount())
        return fail(Pc, "invoke target out of range");
      int Params = static_cast<int>(M.method(static_cast<uint32_t>(I.A))
                                        .NumParams);
      if (!Need(Params))
        return false;
      S.Height -= Params - 1;
      break;
    }
    case Opcode::SyncEnter:
      if (!Need(1))
        return false;
      --S.Height;
      S.Regions.emplace_back(Pc, S.Height);
      break;
    case Opcode::SyncExit: {
      if (S.Regions.empty())
        return fail(Pc, "SyncExit without an open region");
      auto [EnterPc, EnterHeight] = S.Regions.back();
      if (S.Height != EnterHeight)
        return fail(Pc, "operand stack not balanced across the "
                        "synchronized region");
      S.Regions.pop_back();
      if (LexicalExit[EnterPc] != static_cast<int32_t>(Pc))
        return fail(Pc, "dynamic region nesting disagrees with the lexical "
                        "SyncEnter/SyncExit pairing");
      break;
    }
    case Opcode::Jump:
      if (I.A < 0)
        return fail(Pc, "unresolved jump label");
      return flowTo(Pc, static_cast<uint32_t>(I.A), S);
    case Opcode::JumpIfZero:
    case Opcode::JumpIfNonZero:
      if (I.A < 0)
        return fail(Pc, "unresolved jump label");
      if (!Need(1))
        return false;
      --S.Height;
      if (!flowTo(Pc, static_cast<uint32_t>(I.A), S))
        return false;
      break;
    case Opcode::Throw:
      if (!Need(1))
        return false;
      return true; // no normal successor
    case Opcode::Return:
      if (!Need(1))
        return false;
      if (!S.Regions.empty()) {
        // Returning from inside a synchronized region is legal (the
        // interpreter releases the monitors), but the region must still
        // have a lexical SyncExit reached on some other path; nothing to
        // record here.
      }
      return true; // no successor
    }

    Out.MaxStack =
        std::max(Out.MaxStack, static_cast<uint32_t>(std::max(S.Height, 0)));
    return flowTo(Pc, Pc + 1, S);
  }
};

} // namespace

VerifiedMethod jit::verifyMethod(const Module &M, uint32_t Id) {
  Checker C(M, Id);
  C.run();
  return std::move(C.Out);
}

VerifiedMethod jit::verifyModule(const Module &M) {
  for (uint32_t Id = 0; Id < M.methodCount(); ++Id) {
    VerifiedMethod V = verifyMethod(M, Id);
    if (!V.Ok)
      return V;
  }
  VerifiedMethod Ok;
  Ok.Ok = true;
  return Ok;
}

//===- jit/ReadOnlyClassifier.cpp - Section 3.2 analysis ------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/ReadOnlyClassifier.h"

using namespace solero;
using namespace solero::jit;

const char *jit::regionKindName(RegionKind K) {
  switch (K) {
  case RegionKind::ReadOnly:
    return "read-only";
  case RegionKind::ReadMostly:
    return "read-mostly";
  case RegionKind::Writing:
    return "writing";
  }
  SOLERO_UNREACHABLE("bad RegionKind");
}

const ClassifiedRegion &ClassifiedModule::regionAt(uint32_t MethodId,
                                                   uint32_t EnterPc) const {
  for (const ClassifiedRegion &R : regions(MethodId))
    if (R.Region.EnterPc == EnterPc)
      return R;
  SOLERO_UNREACHABLE("no classified region at this pc");
}

std::vector<uint64_t> jit::computeLiveIn(const Module &M, uint32_t Id) {
  const Method &Fn = M.method(Id);
  SOLERO_CHECK(Fn.NumLocals <= 64, "liveness supports at most 64 locals");
  const std::size_t N = Fn.Code.size();
  std::vector<uint64_t> LiveIn(N, 0);

  // Iterate to a fixed point; CSIR methods are small, so the quadratic
  // worst case is irrelevant.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::size_t Pc = N; Pc-- > 0;) {
      const Instruction &I = Fn.Code[Pc];
      uint64_t Out = 0;
      auto Succ = [&](std::size_t S) {
        if (S < N)
          Out |= LiveIn[S];
      };
      switch (I.Op) {
      case Opcode::Jump:
        Succ(static_cast<std::size_t>(I.A));
        break;
      case Opcode::JumpIfZero:
      case Opcode::JumpIfNonZero:
        Succ(static_cast<std::size_t>(I.A));
        Succ(Pc + 1);
        break;
      case Opcode::Return:
      case Opcode::Throw:
        break; // no successors
      default:
        Succ(Pc + 1);
        break;
      }
      uint64_t In = Out;
      if (I.Op == Opcode::Store)
        In &= ~(1ULL << I.A); // def kills
      if (I.Op == Opcode::Load)
        In |= 1ULL << I.A; // use gens
      if (In != LiveIn[Pc]) {
        LiveIn[Pc] = In;
        Changed = true;
      }
    }
  }
  return LiveIn;
}

namespace {

/// Inter-procedural purity: a method is pure if no instruction writes heap
/// or static state, performs a side effect, enters a monitor, or invokes
/// an impure (or recursive) method. Throwing and allocation are allowed.
class PurityAnalysis {
public:
  explicit PurityAnalysis(const Module &M) : M(M) {
    States.resize(M.methodCount(), ClassifiedModule::PurityState::Unknown);
  }

  bool isPure(uint32_t Id) {
    using PS = ClassifiedModule::PurityState;
    switch (States[Id]) {
    case PS::Pure:
      return true;
    case PS::Impure:
      return false;
    case PS::InProgress:
      // Recursion: be conservative, as a JIT without a fixpoint engine
      // would be.
      return false;
    case PS::Unknown:
      break;
    }
    States[Id] = PS::InProgress;
    bool Pure = true;
    for (const Instruction &I : M.method(Id).Code) {
      if (isWriteOrSideEffect(I.Op) || I.Op == Opcode::SyncEnter) {
        Pure = false;
        break;
      }
      if (I.Op == Opcode::Invoke &&
          !isPure(static_cast<uint32_t>(I.A))) {
        Pure = false;
        break;
      }
    }
    States[Id] = Pure ? PS::Pure : PS::Impure;
    return Pure;
  }

  std::vector<ClassifiedModule::PurityState> takeStates() {
    return std::move(States);
  }

private:
  const Module &M;
  std::vector<ClassifiedModule::PurityState> States;
};

} // namespace

ClassifiedModule jit::classifyModule(const Module &M, const Profile *P) {
  ClassifiedModule Out;
  Out.PerMethod.resize(M.methodCount());
  PurityAnalysis Purity(M);
  // Resolve purity for everything first (order-independent).
  for (uint32_t Id = 0; Id < M.methodCount(); ++Id)
    (void)Purity.isPure(Id);

  for (uint32_t Id = 0; Id < M.methodCount(); ++Id) {
    VerifiedMethod V = verifyMethod(M, Id);
    SOLERO_CHECK(V.Ok, "classifyModule requires a verified module");
    const Method &Fn = M.method(Id);
    std::vector<uint64_t> LiveIn = computeLiveIn(M, Id);

    for (const SyncRegion &R : V.Regions) {
      ClassifiedRegion C;
      C.Region = R;
      // The annotations override the analysis (Section 3.2 / Section 5).
      if (Fn.AnnotatedReadOnly) {
        C.Kind = RegionKind::ReadOnly;
        C.Reason = "@SoleroReadOnly annotation";
        Out.PerMethod[Id].push_back(std::move(C));
        continue;
      }
      if (Fn.AnnotatedReadMostly) {
        C.Kind = RegionKind::ReadMostly;
        C.Reason = "@SoleroReadMostly annotation";
        Out.PerMethod[Id].push_back(std::move(C));
        continue;
      }

      std::string Blocker;
      uint64_t WriteExecutions = 0;
      bool NestedRegionSkip = false;
      // Live-local stores block elision even in read-mostly form: the
      // engine may re-execute the body, which would see the clobbered
      // local. Heap writes are fine to re-execute because the upgrade (or
      // fallback) happens before the first one runs.
      bool HardBlock = false;
      uint32_t NestedDepth = 0;
      for (uint32_t Pc = R.EnterPc + 1; Pc < R.ExitPc; ++Pc) {
        const Instruction &I = Fn.Code[Pc];
        // Nested regions are classified on their own; for the enclosing
        // region they count as a side effect (monitor operations write
        // lock state).
        if (I.Op == Opcode::SyncEnter) {
          ++NestedDepth;
          if (Blocker.empty())
            Blocker = "nested synchronized block";
          NestedRegionSkip = true;
          continue;
        }
        if (I.Op == Opcode::SyncExit) {
          --NestedDepth;
          continue;
        }
        if (NestedDepth > 0)
          continue; // effects inside nested regions belong to them
        if (isWriteOrSideEffect(I.Op)) {
          if (Blocker.empty())
            Blocker = std::string("contains ") + opcodeName(I.Op);
          if (P)
            WriteExecutions += P->count(Id, Pc);
          continue;
        }
        if (I.Op == Opcode::Store &&
            (LiveIn[R.EnterPc] >> I.A) & 1) {
          if (Blocker.empty())
            Blocker = "writes local live at region entry";
          HardBlock = true;
          continue;
        }
        if (I.Op == Opcode::Invoke &&
            !Purity.isPure(static_cast<uint32_t>(I.A))) {
          if (Blocker.empty())
            Blocker = "invokes method not provably read-only: " +
                      M.method(static_cast<uint32_t>(I.A)).Name;
          if (P)
            WriteExecutions += P->count(Id, Pc);
          continue;
        }
      }

      if (Blocker.empty()) {
        C.Kind = RegionKind::ReadOnly;
        C.Reason = "no writes or side effects";
      } else if (P && !NestedRegionSkip && !HardBlock) {
        // Section 5 heuristic: writes that execute on fewer than 10% of
        // region entries make the region read-mostly.
        uint64_t Entries = P->count(Id, R.EnterPc);
        if (Entries > 0 &&
            WriteExecutions * 10 < Entries) {
          C.Kind = RegionKind::ReadMostly;
          C.Reason = "profile: rare writes (" + Blocker + ")";
        } else {
          C.Kind = RegionKind::Writing;
          C.Reason = Blocker;
        }
      } else {
        C.Kind = RegionKind::Writing;
        C.Reason = Blocker;
      }
      Out.PerMethod[Id].push_back(std::move(C));
    }
  }
  Out.Purity = Purity.takeStates();
  return Out;
}

//===- jit/ReadOnlyClassifier.cpp - Section 3.2 analysis ------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/ReadOnlyClassifier.h"

#include <algorithm>
#include <optional>

#include "jit/analysis/EscapeAnalysis.h"

using namespace solero;
using namespace solero::jit;

const char *jit::regionKindName(RegionKind K) {
  switch (K) {
  case RegionKind::ReadOnly:
    return "read-only";
  case RegionKind::ReadMostly:
    return "read-mostly";
  case RegionKind::Writing:
    return "writing";
  }
  SOLERO_UNREACHABLE("bad RegionKind");
}

const ClassifiedRegion &ClassifiedModule::regionAt(uint32_t MethodId,
                                                   uint32_t EnterPc) const {
  for (const ClassifiedRegion &R : regions(MethodId))
    if (R.Region.EnterPc == EnterPc)
      return R;
  SOLERO_UNREACHABLE("no classified region at this pc");
}

std::string jit::regionReason(const Module &M, const ClassifiedRegion &R) {
  std::string S = renderDiagnostic(M, R.primary());
  if (R.primary().Code == DiagCode::RareWrites) {
    // Show which blocker the profile softened.
    for (const Diagnostic &D : R.Diags)
      if (diagBlocks(D.Code))
        return S + " (" + renderDiagnostic(M, D) + ")";
  }
  return S;
}

namespace {

/// Inter-procedural purity: a method is pure if no instruction writes heap
/// or static state, performs a side effect, enters a monitor, or invokes
/// an impure (or recursive) method. Throwing and allocation are allowed.
class PurityAnalysis {
public:
  explicit PurityAnalysis(const Module &M) : M(M) {
    States.resize(M.methodCount(), ClassifiedModule::PurityState::Unknown);
  }

  bool isPure(uint32_t Id) {
    using PS = ClassifiedModule::PurityState;
    switch (States[Id]) {
    case PS::Pure:
      return true;
    case PS::Impure:
      return false;
    case PS::InProgress:
      // Recursion: be conservative, as a JIT without a fixpoint engine
      // would be.
      return false;
    case PS::Unknown:
      break;
    }
    States[Id] = PS::InProgress;
    bool Pure = true;
    for (const Instruction &I : M.method(Id).Code) {
      if (isWriteOrSideEffect(I.Op) || I.Op == Opcode::SyncEnter) {
        Pure = false;
        break;
      }
      if (I.Op == Opcode::Invoke &&
          !isPure(static_cast<uint32_t>(I.A))) {
        Pure = false;
        break;
      }
    }
    States[Id] = Pure ? PS::Pure : PS::Impure;
    return Pure;
  }

  std::vector<ClassifiedModule::PurityState> takeStates() {
    return std::move(States);
  }

private:
  const Module &M;
  std::vector<ClassifiedModule::PurityState> States;
};

/// The write/effect diagnostic for instruction \p I at \p Pc, assuming it
/// was not proven benign.
Diagnostic effectDiag(const Instruction &I, uint32_t Pc) {
  Diagnostic D;
  D.Pc = Pc;
  D.Op = I.Op;
  D.Operand = I.A;
  switch (I.Op) {
  case Opcode::PutField:
  case Opcode::PutRef:
    D.Code = DiagCode::HeapWrite;
    break;
  case Opcode::AStore:
    D.Code = DiagCode::ArrayWrite;
    break;
  case Opcode::PutStatic:
    D.Code = DiagCode::StaticWrite;
    break;
  default: // Print, NativeCall, monitor operations
    D.Code = DiagCode::SideEffect;
    break;
  }
  return D;
}

} // namespace

ClassifiedModule jit::classifyModule(const Module &M, const Profile *P,
                                     const ClassifierOptions &Opts) {
  ClassifiedModule Out;
  Out.PerMethod.resize(M.methodCount());
  PurityAnalysis Purity(M);
  // Resolve purity for everything first (order-independent).
  for (uint32_t Id = 0; Id < M.methodCount(); ++Id)
    (void)Purity.isPure(Id);

  for (uint32_t Id = 0; Id < M.methodCount(); ++Id) {
    VerifiedMethod V = verifyMethod(M, Id);
    SOLERO_CHECK(V.Ok, "classifyModule requires a verified module");
    const Method &Fn = M.method(Id);
    std::vector<BitVec> LiveIn = computeLiveIn(M, Id);
    std::optional<EscapeAnalysis> Esc;
    if (Opts.EscapeAnalysis)
      Esc.emplace(M, Id);
    Out.BenignWrites.emplace_back(Fn.Code.size());

    for (const SyncRegion &R : V.Regions) {
      ClassifiedRegion C;
      C.Region = R;
      // The annotations override the analysis (Section 3.2 / Section 5).
      if (Fn.AnnotatedReadOnly) {
        C.Kind = RegionKind::ReadOnly;
        C.Diags.push_back({DiagCode::AnnotatedReadOnly});
        Out.PerMethod[Id].push_back(std::move(C));
        continue;
      }
      if (Fn.AnnotatedReadMostly) {
        C.Kind = RegionKind::ReadMostly;
        C.Diags.push_back({DiagCode::AnnotatedReadMostly});
        Out.PerMethod[Id].push_back(std::move(C));
        continue;
      }

      std::vector<Diagnostic> Blockers; // pc order
      std::vector<Diagnostic> Notes;    // FreshWrite, pc order
      uint64_t WriteExecutions = 0;
      bool NestedRegionSkip = false;
      // Live-local stores block elision even in read-mostly form: the
      // engine may re-execute the body, which would see the clobbered
      // local. Heap writes are fine to re-execute because the upgrade (or
      // fallback) happens before the first one runs.
      bool HardBlock = false;
      uint32_t NestedDepth = 0;
      for (uint32_t Pc = R.EnterPc + 1; Pc < R.ExitPc; ++Pc) {
        const Instruction &I = Fn.Code[Pc];
        // Nested regions are classified on their own; for the enclosing
        // region they count as a side effect (monitor operations write
        // lock state).
        if (I.Op == Opcode::SyncEnter) {
          ++NestedDepth;
          Blockers.push_back({DiagCode::NestedSync, Pc, I.Op, I.A});
          NestedRegionSkip = true;
          continue;
        }
        if (I.Op == Opcode::SyncExit) {
          --NestedDepth;
          continue;
        }
        if (NestedDepth > 0)
          continue; // effects inside nested regions belong to them
        if (isWriteOrSideEffect(I.Op)) {
          // Escape analysis: a write to an object allocated inside this
          // region that has not escaped touches thread-local memory only
          // — allow it, and tell the engines to skip the upgrade hook.
          if (Esc && (I.Op == Opcode::PutField || I.Op == Opcode::PutRef ||
                      I.Op == Opcode::AStore)) {
            if (Esc->writeIsRegionLocal(Pc, R)) {
              Notes.push_back({DiagCode::FreshWrite, Pc, I.Op, I.A,
                               Esc->writeBaseAllocPc(Pc)});
              Out.BenignWrites[Id].set(Pc);
              continue;
            }
            if (Esc->writeBaseEscaped(Pc)) {
              Blockers.push_back({DiagCode::EscapingFreshWrite, Pc, I.Op,
                                  I.A, Esc->writeBaseAllocPc(Pc)});
              if (P)
                WriteExecutions += P->count(Id, Pc);
              continue;
            }
          }
          Blockers.push_back(effectDiag(I, Pc));
          if (P)
            WriteExecutions += P->count(Id, Pc);
          continue;
        }
        if (I.Op == Opcode::Store &&
            LiveIn[R.EnterPc].test(static_cast<std::size_t>(I.A))) {
          Blockers.push_back({DiagCode::LiveLocalStore, Pc, I.Op, I.A});
          HardBlock = true;
          continue;
        }
        if (I.Op == Opcode::Invoke &&
            !Purity.isPure(static_cast<uint32_t>(I.A))) {
          Blockers.push_back({DiagCode::ImpureInvoke, Pc, I.Op, I.A});
          if (P)
            WriteExecutions += P->count(Id, Pc);
          continue;
        }
      }

      if (Blockers.empty()) {
        C.Kind = RegionKind::ReadOnly;
        C.Diags.push_back({DiagCode::NoWritesOrSideEffects});
      } else if (P && !NestedRegionSkip && !HardBlock &&
                 P->count(Id, R.EnterPc) > 0 &&
                 WriteExecutions * 10 < P->count(Id, R.EnterPc)) {
        // Section 5 heuristic: writes that execute on fewer than 10% of
        // region entries make the region read-mostly.
        C.Kind = RegionKind::ReadMostly;
        C.Diags.push_back({DiagCode::RareWrites});
      } else {
        C.Kind = RegionKind::Writing;
        C.Diags.push_back(Blockers.front());
        Blockers.erase(Blockers.begin());
      }
      C.Diags.insert(C.Diags.end(), Blockers.begin(), Blockers.end());
      C.Diags.insert(C.Diags.end(), Notes.begin(), Notes.end());
      Out.PerMethod[Id].push_back(std::move(C));
    }
  }
  Out.Purity = Purity.takeStates();
  return Out;
}

//===- jit/Verifier.h - CSIR static checks ----------------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CSIR verifier: abstract interpretation of stack heights and
/// synchronized-region nesting. Verification discovers the synchronized
/// regions (SyncEnter/SyncExit ranges) that the classifier analyzes and
/// the interpreter executes; ill-formed methods are rejected with a
/// diagnostic instead of misbehaving at run time.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_VERIFIER_H
#define SOLERO_JIT_VERIFIER_H

#include <string>
#include <vector>

#include "jit/Program.h"

namespace solero {
namespace jit {

/// A synchronized region: instructions (EnterPc, ExitPc) exclusive of the
/// SyncEnter/SyncExit themselves.
struct SyncRegion {
  uint32_t EnterPc; ///< pc of the SyncEnter
  uint32_t ExitPc;  ///< pc of the matching SyncExit
};

/// Result of verifying one method.
struct VerifiedMethod {
  bool Ok = false;
  std::string Error;        ///< diagnostic when !Ok
  uint32_t ErrorPc = 0;     ///< instruction the diagnostic refers to
  uint32_t MaxStack = 0;    ///< maximum operand stack height
  std::vector<SyncRegion> Regions; ///< in order of EnterPc
};

/// Verifies method \p Id of \p M:
///  - jump targets, local slots, static indices, field indices, and invoke
///    targets are in range;
///  - the operand stack never underflows and has a consistent height at
///    every join point;
///  - SyncEnter/SyncExit nest properly, no branch crosses a region
///    boundary, and the stack is balanced across each region;
///  - execution cannot fall off the end of the method.
VerifiedMethod verifyMethod(const Module &M, uint32_t Id);

/// Verifies every method; returns the first failure (or Ok).
VerifiedMethod verifyModule(const Module &M);

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_VERIFIER_H

//===- jit/Disassembler.h - CSIR pretty-printing ----------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual dump of CSIR methods, annotated with each synchronized region's
/// classification — the view a JIT engineer would use to confirm which
/// blocks elide.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_DISASSEMBLER_H
#define SOLERO_JIT_DISASSEMBLER_H

#include <string>

#include "jit/Program.h"
#include "jit/ReadOnlyClassifier.h"

namespace solero {
namespace jit {

/// Renders method \p Id. When \p Classes is non-null, SyncEnter lines are
/// annotated with the region classification and reason.
std::string disassemble(const Module &M, uint32_t Id,
                        const ClassifiedModule *Classes = nullptr);

/// Renders the whole module.
std::string disassembleModule(const Module &M,
                              const ClassifiedModule *Classes = nullptr);

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_DISASSEMBLER_H

//===- jit/Disassembler.h - CSIR pretty-printing ----------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual dump of CSIR methods, annotated with each synchronized region's
/// classification — the view a JIT engineer would use to confirm which
/// blocks elide.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_DISASSEMBLER_H
#define SOLERO_JIT_DISASSEMBLER_H

#include <string>

#include "jit/Program.h"
#include "jit/ReadOnlyClassifier.h"
#include "jit/Translator.h"

namespace solero {
namespace jit {

/// Renders method \p Id. When \p Classes is non-null, SyncEnter lines are
/// annotated with the region classification and reason.
std::string disassemble(const Module &M, uint32_t Id,
                        const ClassifiedModule *Classes = nullptr);

/// Renders the whole module.
std::string disassembleModule(const Module &M,
                              const ClassifiedModule *Classes = nullptr);

/// Renders the pre-decoded stream of method \p Id in \p TM: fused opcodes
/// print as their pair names ("cmplt+jz"), branches show their resolved
/// stream offset plus a back-edge marker, SyncEnter shows its inline-cached
/// kind and continuation, and every line carries the original pc it was
/// translated from.
std::string disassembleTranslated(const Module &M, const TranslatedModule &TM,
                                  uint32_t Id);

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_DISASSEMBLER_H

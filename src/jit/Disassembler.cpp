//===- jit/Disassembler.cpp - CSIR pretty-printing --------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/Disassembler.h"

#include <cstdio>

using namespace solero;
using namespace solero::jit;

std::string jit::disassemble(const Module &M, uint32_t Id,
                             const ClassifiedModule *Classes) {
  const Method &Fn = M.method(Id);
  std::string Out;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "method %s(params=%u, locals=%u)%s%s:\n",
                Fn.Name.c_str(), Fn.NumParams, Fn.NumLocals,
                Fn.AnnotatedReadOnly ? " @SoleroReadOnly" : "",
                Fn.AnnotatedReadMostly ? " @SoleroReadMostly" : "");
  Out += Buf;
  for (std::size_t Pc = 0; Pc < Fn.Code.size(); ++Pc) {
    const Instruction &I = Fn.Code[Pc];
    bool HasOperand = false;
    switch (I.Op) {
    case Opcode::Const:
    case Opcode::Load:
    case Opcode::Store:
    case Opcode::Jump:
    case Opcode::JumpIfZero:
    case Opcode::JumpIfNonZero:
    case Opcode::GetField:
    case Opcode::PutField:
    case Opcode::GetRef:
    case Opcode::PutRef:
    case Opcode::GetStatic:
    case Opcode::PutStatic:
      HasOperand = true;
      break;
    default:
      break;
    }
    if (I.Op == Opcode::Invoke) {
      std::snprintf(Buf, sizeof(Buf), "  %4zu: invoke %s\n", Pc,
                    M.method(static_cast<uint32_t>(I.A)).Name.c_str());
    } else if (HasOperand) {
      std::snprintf(Buf, sizeof(Buf), "  %4zu: %s %d\n", Pc,
                    opcodeName(I.Op), I.A);
    } else {
      std::snprintf(Buf, sizeof(Buf), "  %4zu: %s\n", Pc, opcodeName(I.Op));
    }
    Out += Buf;
    if (I.Op == Opcode::SyncEnter && Classes) {
      const ClassifiedRegion &R =
          Classes->regionAt(Id, static_cast<uint32_t>(Pc));
      std::snprintf(Buf, sizeof(Buf), "        ; region [%u, %u) %s — %s\n",
                    R.Region.EnterPc + 1, R.Region.ExitPc,
                    regionKindName(R.Kind), regionReason(M, R).c_str());
      Out += Buf;
      // Secondary diagnostics (further blockers, benign-write notes).
      for (std::size_t Di = 1; Di < R.Diags.size(); ++Di) {
        std::snprintf(Buf, sizeof(Buf), "        ;   %s\n",
                      renderDiagnostic(M, R.Diags[Di]).c_str());
        Out += Buf;
      }
    }
  }
  return Out;
}

std::string jit::disassembleTranslated(const Module &M,
                                       const TranslatedModule &TM,
                                       uint32_t Id) {
  const Method &Fn = M.method(Id);
  const TranslatedMethod &T = TM.Methods[Id];
  std::string Out;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "translated %s(params=%u, locals=%u, maxstack=%u):\n",
                Fn.Name.c_str(), T.NumParams, T.NumLocals, T.MaxStack);
  Out += Buf;
  for (std::size_t Ti = 0; Ti < T.Code.size(); ++Ti) {
    const TInst &I = T.Code[Ti];
    const char *Name = tOpName(I.op());
    switch (I.op()) {
    case TOp::Jump:
    case TOp::JumpIfZero:
    case TOp::JumpIfNonZero:
    case TOp::CmpLtJumpIfZero:
    case TOp::CmpEqJumpIfZero:
      std::snprintf(Buf, sizeof(Buf), "  %4zu: %s ->%d%s", Ti, Name, I.A,
                    I.backEdge() ? " (back edge)" : "");
      break;
    case TOp::SyncEnter:
      std::snprintf(Buf, sizeof(Buf), "  %4zu: %s [%s] cont=%d", Ti, Name,
                    regionKindName(static_cast<RegionKind>(I.B)), I.A);
      break;
    case TOp::Invoke:
      std::snprintf(Buf, sizeof(Buf), "  %4zu: invoke %s", Ti,
                    M.method(static_cast<uint32_t>(I.A)).Name.c_str());
      break;
    case TOp::LoadGetField:
      std::snprintf(Buf, sizeof(Buf), "  %4zu: %s local=%u field=%d", Ti, Name,
                    static_cast<unsigned>(I.B), I.A);
      break;
    default:
      std::snprintf(Buf, sizeof(Buf), "  %4zu: %s %d", Ti, Name, I.A);
      break;
    }
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf), "    ; pc %u\n", T.PcMap[Ti]);
    Out += Buf;
  }
  return Out;
}

std::string jit::disassembleModule(const Module &M,
                                   const ClassifiedModule *Classes) {
  std::string Out;
  for (uint32_t Id = 0; Id < M.methodCount(); ++Id) {
    Out += disassemble(M, Id, Classes);
    Out += "\n";
  }
  return Out;
}

//===- jit/ReadOnlyClassifier.h - Section 3.2 analysis ----------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's JIT analysis (Section 3.2): identify synchronized blocks as
/// read-only by looking for writes and side effects. A region is NOT
/// read-only if it contains
///
///  - writes to instance variables, reference fields, or statics — except
///    writes the escape analysis proves target an object allocated inside
///    the region that has not escaped (filling in a fresh result holder is
///    as harmless as the allocation itself, which the paper permits);
///  - writes to local variables that are live at the beginning of the
///    critical section (computed by backward liveness analysis);
///  - invocations of methods, unless the callee is transitively provably
///    free of writes and side effects (inter-procedural purity), other
///    than throwing runtime exceptions;
///  - observable side effects (Print, NativeCall) or nested synchronized
///    blocks.
///
/// Throwing runtime exceptions and object allocation are allowed, as in
/// the paper. A method-level @SoleroReadOnly annotation overrides the
/// analysis; the Section 5 extension classifies regions whose writes are
/// dynamically rare (by profile) as read-mostly.
///
/// Each verdict carries structured diagnostics (jit/analysis/Diagnostics.h)
/// instead of a free-form string: every blocker and every allowed benign
/// write is recorded with pc/operand provenance, and regionReason()
/// renders the primary one for humans.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_READONLYCLASSIFIER_H
#define SOLERO_JIT_READONLYCLASSIFIER_H

#include <string>
#include <vector>

#include "jit/Program.h"
#include "jit/Verifier.h"
#include "jit/analysis/BitVec.h"
#include "jit/analysis/Diagnostics.h"
#include "jit/analysis/Liveness.h"

namespace solero {
namespace image {
class ClassifierCodec;
} // namespace image
namespace jit {

/// How the interpreter should lock a synchronized region.
enum class RegionKind {
  ReadOnly,   ///< elide (Figure 7)
  ReadMostly, ///< elide with mid-section upgrade (Figure 17)
  Writing,    ///< conventional acquisition (Figure 6)
};

const char *regionKindName(RegionKind K);

/// Per-instruction execution counts from a profiling run, used for the
/// Section 5 read-mostly heuristic.
struct Profile {
  /// Counts[MethodId][Pc].
  std::vector<std::vector<uint64_t>> Counts;

  uint64_t count(uint32_t MethodId, uint32_t Pc) const {
    if (MethodId >= Counts.size() || Pc >= Counts[MethodId].size())
      return 0;
    return Counts[MethodId][Pc];
  }
};

/// Static analysis knobs (ablation and tests; the defaults are what the
/// engine uses).
struct ClassifierOptions {
  /// Allow writes to provably region-local allocations (escape analysis).
  /// Off reproduces the plain Section 3.2 rule set.
  bool EscapeAnalysis = true;
};

/// One classified synchronized region.
struct ClassifiedRegion {
  SyncRegion Region;
  RegionKind Kind;
  /// Structured provenance: Diags[0] explains the verdict, the rest are
  /// the remaining blockers and FreshWrite notes in pc order.
  std::vector<Diagnostic> Diags;

  const Diagnostic &primary() const {
    SOLERO_CHECK(!Diags.empty(), "region without diagnostics");
    return Diags.front();
  }
};

/// Renders the region's primary diagnostic (plus the softened blocker for
/// profile-driven read-mostly verdicts) — the human-readable "why".
std::string regionReason(const Module &M, const ClassifiedRegion &R);

/// Analysis results for a whole module.
class ClassifiedModule {
public:
  /// Inter-procedural purity lattice (public for the analysis helper).
  enum class PurityState : uint8_t { Unknown, InProgress, Pure, Impure };

  /// Number of analyzed methods (bounds regions(); image validation
  /// size-checks against this before indexing).
  uint32_t methodCount() const {
    return static_cast<uint32_t>(PerMethod.size());
  }

  /// Regions of \p MethodId, ordered by EnterPc (as in VerifiedMethod).
  const std::vector<ClassifiedRegion> &regions(uint32_t MethodId) const {
    SOLERO_CHECK(MethodId < PerMethod.size(), "method id out of range");
    return PerMethod[MethodId];
  }

  /// The classified region whose SyncEnter is at \p EnterPc.
  const ClassifiedRegion &regionAt(uint32_t MethodId, uint32_t EnterPc) const;

  /// True if the analysis proved the whole method free of writes and side
  /// effects (used for inter-procedural invoke checks and by tests).
  bool methodIsPure(uint32_t MethodId) const {
    return Purity[MethodId] == PurityState::Pure;
  }

  /// True if the write at \p Pc provably targets a region-local
  /// allocation: the engines skip the read-mostly upgrade hook for it.
  bool writeIsBenign(uint32_t MethodId, uint32_t Pc) const {
    if (MethodId >= BenignWrites.size() ||
        Pc >= BenignWrites[MethodId].size())
      return false;
    return BenignWrites[MethodId].test(Pc);
  }

private:
  friend ClassifiedModule classifyModule(const Module &M, const Profile *P,
                                         const ClassifierOptions &Opts);
  /// The warm-image serializer (image/Resources.cpp) round-trips the
  /// private analysis tables without widening the public surface.
  friend class ::solero::image::ClassifierCodec;
  std::vector<std::vector<ClassifiedRegion>> PerMethod;
  std::vector<PurityState> Purity;
  std::vector<BitVec> BenignWrites; ///< per method, bit per pc
};

/// Classifies every synchronized region in \p M. \p P, when provided,
/// enables the profile-guided read-mostly classification: a region with
/// writes or side effects whose dynamic write frequency is below 10% of
/// the region's entry count becomes ReadMostly (benign writes do not
/// count against the threshold). The module must verify.
ClassifiedModule classifyModule(const Module &M, const Profile *P = nullptr,
                                const ClassifierOptions &Opts = {});

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_READONLYCLASSIFIER_H

//===- jit/MethodBuilder.h - Fluent CSIR assembly ---------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fluent builder for CSIR methods with forward-referencing labels.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_METHODBUILDER_H
#define SOLERO_JIT_METHODBUILDER_H

#include <string>
#include <vector>

#include "jit/Program.h"

namespace solero {
namespace jit {

/// Builds a Method instruction by instruction.
/// \code
///   MethodBuilder B("sumField", /*Params=*/1, /*Locals=*/2);
///   Label Loop = B.newLabel();
///   B.load(0).syncEnter() ... .bind(Loop) ... .jumpIfNonZero(Loop) ...
///   Method M = B.take();
/// \endcode
class MethodBuilder {
public:
  /// An index into the label table; resolved at take().
  struct Label {
    uint32_t Id;
  };

  MethodBuilder(std::string Name, uint32_t NumParams, uint32_t NumLocals) {
    M.Name = std::move(Name);
    M.NumParams = NumParams;
    M.NumLocals = NumLocals;
    SOLERO_CHECK(NumLocals >= NumParams, "locals must include parameters");
  }

  Label newLabel() {
    Labels.push_back(-1);
    return Label{static_cast<uint32_t>(Labels.size() - 1)};
  }

  /// Binds \p L to the next emitted instruction.
  MethodBuilder &bind(Label L) {
    Labels[L.Id] = static_cast<int32_t>(M.Code.size());
    return *this;
  }

  // --- Emitters (fluent) --------------------------------------------------

  MethodBuilder &constant(int64_t V) {
    return emit(Opcode::Const, static_cast<int32_t>(V));
  }
  MethodBuilder &dup() { return emit(Opcode::Dup); }
  MethodBuilder &pop() { return emit(Opcode::Pop); }
  MethodBuilder &swap() { return emit(Opcode::Swap); }
  MethodBuilder &load(int32_t Slot) { return emit(Opcode::Load, Slot); }
  MethodBuilder &store(int32_t Slot) { return emit(Opcode::Store, Slot); }
  MethodBuilder &add() { return emit(Opcode::Add); }
  MethodBuilder &sub() { return emit(Opcode::Sub); }
  MethodBuilder &mul() { return emit(Opcode::Mul); }
  MethodBuilder &div() { return emit(Opcode::Div); }
  MethodBuilder &mod() { return emit(Opcode::Mod); }
  MethodBuilder &neg() { return emit(Opcode::Neg); }
  MethodBuilder &cmpEq() { return emit(Opcode::CmpEq); }
  MethodBuilder &cmpLt() { return emit(Opcode::CmpLt); }
  MethodBuilder &jump(Label L) { return emitJump(Opcode::Jump, L); }
  MethodBuilder &jumpIfZero(Label L) {
    return emitJump(Opcode::JumpIfZero, L);
  }
  MethodBuilder &jumpIfNonZero(Label L) {
    return emitJump(Opcode::JumpIfNonZero, L);
  }
  MethodBuilder &getField(int32_t Idx) { return emit(Opcode::GetField, Idx); }
  MethodBuilder &putField(int32_t Idx) { return emit(Opcode::PutField, Idx); }
  MethodBuilder &getRef(int32_t Idx) { return emit(Opcode::GetRef, Idx); }
  MethodBuilder &putRef(int32_t Idx) { return emit(Opcode::PutRef, Idx); }
  MethodBuilder &newObject() { return emit(Opcode::NewObject); }
  MethodBuilder &pushNull() { return emit(Opcode::PushNull); }
  MethodBuilder &newArray() { return emit(Opcode::NewArray); }
  MethodBuilder &aload() { return emit(Opcode::ALoad); }
  MethodBuilder &astore() { return emit(Opcode::AStore); }
  MethodBuilder &arrayLen() { return emit(Opcode::ArrayLen); }
  MethodBuilder &getStatic(int32_t Idx) {
    return emit(Opcode::GetStatic, Idx);
  }
  MethodBuilder &putStatic(int32_t Idx) {
    return emit(Opcode::PutStatic, Idx);
  }
  MethodBuilder &invoke(uint32_t MethodId) {
    return emit(Opcode::Invoke, static_cast<int32_t>(MethodId));
  }
  MethodBuilder &monitorWait() { return emit(Opcode::MonitorWait); }
  MethodBuilder &monitorNotify() { return emit(Opcode::MonitorNotify); }
  MethodBuilder &monitorNotifyAll() {
    return emit(Opcode::MonitorNotifyAll);
  }
  MethodBuilder &syncEnter() { return emit(Opcode::SyncEnter); }
  MethodBuilder &syncExit() { return emit(Opcode::SyncExit); }
  MethodBuilder &throwError() { return emit(Opcode::Throw); }
  MethodBuilder &print() { return emit(Opcode::Print); }
  MethodBuilder &nativeCall() { return emit(Opcode::NativeCall); }
  MethodBuilder &ret() { return emit(Opcode::Return); }

  MethodBuilder &annotateReadOnly() {
    M.AnnotatedReadOnly = true;
    return *this;
  }
  MethodBuilder &annotateReadMostly() {
    M.AnnotatedReadMostly = true;
    return *this;
  }

  /// Finalizes: patches labels and returns the method.
  Method take() {
    for (Instruction &I : M.Code) {
      if (I.Op != Opcode::Jump && I.Op != Opcode::JumpIfZero &&
          I.Op != Opcode::JumpIfNonZero)
        continue;
      SOLERO_CHECK(I.A < 0, "jump already resolved");
      int32_t LabelId = -I.A - 1;
      SOLERO_CHECK(Labels[static_cast<std::size_t>(LabelId)] >= 0,
                   "unbound label");
      I.A = Labels[static_cast<std::size_t>(LabelId)];
    }
    return std::move(M);
  }

private:
  MethodBuilder &emit(Opcode Op, int32_t A = 0) {
    M.Code.push_back(Instruction{Op, A});
    return *this;
  }

  MethodBuilder &emitJump(Opcode Op, Label L) {
    // Encode the label as a negative placeholder; take() patches it.
    return emit(Op, -static_cast<int32_t>(L.Id) - 1);
  }

  Method M;
  std::vector<int32_t> Labels;
};

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_METHODBUILDER_H

//===- jit/Assembler.cpp - CSIR text format --------------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/Assembler.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <vector>

using namespace solero;
using namespace solero::jit;

namespace {

/// Opcode spelling table (must match Disassembler's opcodeName).
const std::pair<const char *, Opcode> OpcodeSpellings[] = {
    {"const", Opcode::Const},
    {"dup", Opcode::Dup},
    {"pop", Opcode::Pop},
    {"swap", Opcode::Swap},
    {"load", Opcode::Load},
    {"store", Opcode::Store},
    {"add", Opcode::Add},
    {"sub", Opcode::Sub},
    {"mul", Opcode::Mul},
    {"div", Opcode::Div},
    {"mod", Opcode::Mod},
    {"neg", Opcode::Neg},
    {"cmpeq", Opcode::CmpEq},
    {"cmplt", Opcode::CmpLt},
    {"jump", Opcode::Jump},
    {"jz", Opcode::JumpIfZero},
    {"jnz", Opcode::JumpIfNonZero},
    {"getfield", Opcode::GetField},
    {"putfield", Opcode::PutField},
    {"getref", Opcode::GetRef},
    {"putref", Opcode::PutRef},
    {"new", Opcode::NewObject},
    {"null", Opcode::PushNull},
    {"newarray", Opcode::NewArray},
    {"aload", Opcode::ALoad},
    {"astore", Opcode::AStore},
    {"arraylen", Opcode::ArrayLen},
    {"getstatic", Opcode::GetStatic},
    {"putstatic", Opcode::PutStatic},
    {"invoke", Opcode::Invoke},
    {"syncenter", Opcode::SyncEnter},
    {"syncexit", Opcode::SyncExit},
    {"wait", Opcode::MonitorWait},
    {"notify", Opcode::MonitorNotify},
    {"notifyall", Opcode::MonitorNotifyAll},
    {"throw", Opcode::Throw},
    {"print", Opcode::Print},
    {"nativecall", Opcode::NativeCall},
    {"return", Opcode::Return},
};

bool needsIntOperand(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
  case Opcode::Load:
  case Opcode::Store:
  case Opcode::GetField:
  case Opcode::PutField:
  case Opcode::GetRef:
  case Opcode::PutRef:
  case Opcode::GetStatic:
  case Opcode::PutStatic:
    return true;
  default:
    return false;
  }
}

bool isJump(Opcode Op) {
  return Op == Opcode::Jump || Op == Opcode::JumpIfZero ||
         Op == Opcode::JumpIfNonZero;
}

/// A pending cross-method reference to be patched after parsing.
struct Fixup {
  uint32_t MethodIdx;
  uint32_t Pc;
  std::string Target;
  int Line;
  bool IsInvoke; // else label
};

struct Parser {
  const std::string &Text;
  AsmResult Out;
  std::size_t Pos = 0;
  int Line = 0;

  explicit Parser(const std::string &Text) : Text(Text) {}

  bool fail(std::string Msg) {
    Out.Ok = false;
    Out.Error = std::move(Msg);
    Out.Line = Line;
    return false;
  }

  /// Reads the next line, stripped of comments and surrounding blanks.
  /// Returns false at end of input.
  bool nextLine(std::string &L) {
    while (Pos < Text.size()) {
      std::size_t End = Text.find('\n', Pos);
      if (End == std::string::npos)
        End = Text.size();
      std::string Raw = Text.substr(Pos, End - Pos);
      Pos = End + 1;
      ++Line; // Line is the 1-based number of the line just consumed
      auto Semi = Raw.find(';');
      if (Semi != std::string::npos)
        Raw.resize(Semi);
      std::size_t B = Raw.find_first_not_of(" \t\r");
      if (B == std::string::npos)
        continue; // blank line
      std::size_t E = Raw.find_last_not_of(" \t\r");
      L = Raw.substr(B, E - B + 1);
      return true;
    }
    return false;
  }

  static std::vector<std::string> tokens(const std::string &L) {
    std::vector<std::string> T;
    std::size_t I = 0;
    while (I < L.size()) {
      while (I < L.size() && std::isspace(static_cast<unsigned char>(L[I])))
        ++I;
      std::size_t S = I;
      while (I < L.size() && !std::isspace(static_cast<unsigned char>(L[I])))
        ++I;
      if (I > S)
        T.push_back(L.substr(S, I - S));
    }
    return T;
  }

  bool parseHeader(const std::string &L, Method &M) {
    // method <name>(params=<P>, locals=<L>) [@annotations] {
    unsigned P = 0, Loc = 0;
    char Name[128] = {0};
    if (std::sscanf(L.c_str(), "method %127[^ (](params=%u, locals=%u)",
                    Name, &P, &Loc) != 3)
      return fail("malformed method header: " + L);
    M.Name = Name;
    M.NumParams = P;
    M.NumLocals = Loc;
    M.AnnotatedReadOnly = L.find("@SoleroReadOnly") != std::string::npos;
    M.AnnotatedReadMostly = L.find("@SoleroReadMostly") != std::string::npos;
    if (L.find('{') == std::string::npos)
      return fail("method header must end with '{'");
    return true;
  }

  bool run() {
    std::vector<Fixup> Fixups;
    std::string L;
    while (nextLine(L)) {
      std::vector<std::string> T = tokens(L);
      if (T.empty())
        continue;
      if (T[0] == "statics") {
        if (T.size() != 2)
          return fail("statics takes one integer");
        Out.M.NumStatics = static_cast<uint32_t>(std::atoi(T[1].c_str()));
        continue;
      }
      if (T[0] != "method")
        return fail("expected 'method' or 'statics', got: " + T[0]);
      Method M;
      if (!parseHeader(L, M))
        return false;
      std::map<std::string, uint32_t> Labels;
      std::vector<std::pair<uint32_t, std::string>> LabelRefs;
      bool Closed = false;
      std::string Body;
      while (nextLine(Body)) {
        if (Body == "}") {
          Closed = true;
          break;
        }
        std::vector<std::string> BT = tokens(Body);
        // Optional leading "label:".
        while (!BT.empty() && BT[0].back() == ':') {
          std::string Label = BT[0].substr(0, BT[0].size() - 1);
          if (Labels.count(Label))
            return fail("duplicate label: " + Label);
          Labels[Label] = static_cast<uint32_t>(M.Code.size());
          BT.erase(BT.begin());
        }
        if (BT.empty())
          continue;
        Opcode Op = Opcode::Return;
        bool Found = false;
        for (const auto &[Spelling, Code] : OpcodeSpellings)
          if (BT[0] == Spelling) {
            Op = Code;
            Found = true;
            break;
          }
        if (!Found)
          return fail("unknown opcode: " + BT[0]);
        Instruction I{Op, 0};
        if (needsIntOperand(Op)) {
          if (BT.size() != 2)
            return fail(BT[0] + " takes one integer operand");
          I.A = std::atoi(BT[1].c_str());
        } else if (isJump(Op)) {
          if (BT.size() != 2)
            return fail(BT[0] + " takes a label operand");
          LabelRefs.emplace_back(static_cast<uint32_t>(M.Code.size()),
                                 BT[1]);
        } else if (Op == Opcode::Invoke) {
          if (BT.size() != 2)
            return fail("invoke takes a method name");
          Fixups.push_back(Fixup{static_cast<uint32_t>(Out.M.methodCount()),
                                 static_cast<uint32_t>(M.Code.size()), BT[1],
                                 Line, /*IsInvoke=*/true});
        } else if (BT.size() != 1) {
          return fail(BT[0] + " takes no operand");
        }
        M.Code.push_back(I);
      }
      if (!Closed)
        return fail("method body not closed with '}'");
      for (auto &[Pc, Label] : LabelRefs) {
        auto It = Labels.find(Label);
        if (It == Labels.end())
          return fail("undefined label: " + Label);
        M.Code[Pc].A = static_cast<int32_t>(It->second);
      }
      if (Out.M.hasMethod(M.Name))
        return fail("duplicate method: " + M.Name);
      Out.M.addMethod(std::move(M));
    }
    // Patch invokes (forward references allowed).
    for (const Fixup &F : Fixups) {
      if (!Out.M.hasMethod(F.Target)) {
        Line = F.Line;
        return fail("invoke of unknown method: " + F.Target);
      }
      Out.M.method(F.MethodIdx).Code[F.Pc].A =
          static_cast<int32_t>(Out.M.methodId(F.Target));
    }
    Out.Ok = true;
    return true;
  }
};

} // namespace

AsmResult jit::assembleModule(const std::string &Text) {
  Parser P(Text);
  P.run();
  return std::move(P.Out);
}

std::string jit::writeModuleText(const Module &M) {
  std::string Out;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "statics %u\n\n", M.NumStatics);
  Out += Buf;
  for (uint32_t Id = 0; Id < M.methodCount(); ++Id) {
    const Method &Fn = M.method(Id);
    std::snprintf(Buf, sizeof(Buf), "method %s(params=%u, locals=%u)%s%s {\n",
                  Fn.Name.c_str(), Fn.NumParams, Fn.NumLocals,
                  Fn.AnnotatedReadOnly ? " @SoleroReadOnly" : "",
                  Fn.AnnotatedReadMostly ? " @SoleroReadMostly" : "");
    Out += Buf;
    // Label every jump target.
    std::vector<bool> IsTarget(Fn.Code.size() + 1, false);
    for (const Instruction &I : Fn.Code)
      if (isJump(I.Op))
        IsTarget[static_cast<std::size_t>(I.A)] = true;
    for (std::size_t Pc = 0; Pc < Fn.Code.size(); ++Pc) {
      const Instruction &I = Fn.Code[Pc];
      if (IsTarget[Pc]) {
        std::snprintf(Buf, sizeof(Buf), "L%zu:\n", Pc);
        Out += Buf;
      }
      if (isJump(I.Op)) {
        std::snprintf(Buf, sizeof(Buf), "  %s L%d\n", opcodeName(I.Op), I.A);
      } else if (I.Op == Opcode::Invoke) {
        std::snprintf(Buf, sizeof(Buf), "  invoke %s\n",
                      M.method(static_cast<uint32_t>(I.A)).Name.c_str());
      } else if (needsIntOperand(I.Op)) {
        std::snprintf(Buf, sizeof(Buf), "  %s %d\n", opcodeName(I.Op), I.A);
      } else {
        std::snprintf(Buf, sizeof(Buf), "  %s\n", opcodeName(I.Op));
      }
      Out += Buf;
    }
    Out += "}\n\n";
  }
  return Out;
}

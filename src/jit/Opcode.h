//===- jit/Opcode.h - CSIR opcodes ------------------------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSIR — the critical-section IR. A small stack bytecode, just rich
/// enough to express the synchronized-block shapes the paper's JIT
/// analyzes (Section 3.2): heap reads/writes, local variables, loops,
/// method invocation, allocation, runtime exceptions, and side effects.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_OPCODE_H
#define SOLERO_JIT_OPCODE_H

#include <cstdint>

namespace solero {
namespace jit {

/// CSIR opcodes. `A` denotes the instruction's immediate operand.
enum class Opcode : uint8_t {
  // Stack and constants.
  Const,   ///< push A
  Dup,     ///< duplicate top
  Pop,     ///< drop top
  Swap,    ///< swap top two

  // Local variables (slot A).
  Load,  ///< push locals[A]
  Store, ///< locals[A] = pop

  // Arithmetic / comparison (int values).
  Add,
  Sub,
  Mul,
  Div,   ///< throws ArithmeticError on division by zero
  Mod,   ///< throws ArithmeticError on division by zero
  Neg,
  CmpEq, ///< push (a == b)
  CmpLt, ///< push (a < b)

  // Control flow (A = target instruction index).
  Jump,
  JumpIfZero,
  JumpIfNonZero,

  // Heap objects: integer fields F[A] and reference fields R[A].
  GetField,   ///< ref = pop; push ref.F[A]      (NullPointerError on null)
  PutField,   ///< v = pop; ref = pop; ref.F[A] = v
  GetRef,     ///< ref = pop; push ref.R[A]
  PutRef,     ///< v = pop; ref = pop; ref.R[A] = v
  NewObject,  ///< push new object (A unused; fixed layout)
  PushNull,   ///< push null reference

  // Integer arrays (a distinct reference kind, as in Java).
  NewArray,   ///< len = pop; push new zeroed array (NegativeArraySize error)
  ALoad,      ///< idx = pop; arr = pop; push arr[idx]  (bounds-checked)
  AStore,     ///< v = pop; idx = pop; arr = pop; arr[idx] = v
  ArrayLen,   ///< arr = pop; push length

  // Module-level statics: integer cells S[A].
  GetStatic,
  PutStatic,

  // Calls: A = callee method id. Pops the callee's params (rightmost on
  // top), pushes its return value.
  Invoke,

  // Synchronized regions: SyncEnter pops the monitor object; the matching
  // SyncExit (same nesting level) closes the region.
  SyncEnter,
  SyncExit,

  // Monitor side effects (Section 3.2: "events that may have side
  // effects, such as wait/notify" forbid elision).
  MonitorWait,      ///< ref = pop; Object.wait on a held monitor
  MonitorNotify,    ///< ref = pop; Object.notify
  MonitorNotifyAll, ///< ref = pop; Object.notifyAll

  // Exceptions and effects.
  Throw,      ///< code = pop; throws GuestError{code}
  Print,      ///< observable side effect (forbids elision)
  NativeCall, ///< opaque side effect (forbids elision)

  Return, ///< pop return value, leave method
};

/// Printable opcode name.
const char *opcodeName(Opcode Op);

/// True if the opcode writes heap or static state or has an external side
/// effect — the Section 3.2 "writes and side effects" test. Store (to
/// locals) is handled separately via liveness.
inline bool isWriteOrSideEffect(Opcode Op) {
  switch (Op) {
  case Opcode::PutField:
  case Opcode::PutRef:
  case Opcode::PutStatic:
  case Opcode::AStore: // "writes to array elements" (Section 3.2)
  case Opcode::MonitorWait:
  case Opcode::MonitorNotify:
  case Opcode::MonitorNotifyAll:
  case Opcode::Print:
  case Opcode::NativeCall:
    return true;
  default:
    return false;
  }
}

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_OPCODE_H

//===- jit/Interpreter.cpp - CSIR execution engine -------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/Interpreter.h"

#include <cstdio>

#include "runtime/ReadGuard.h"

using namespace solero;
using namespace solero::jit;

Interpreter::Interpreter(RuntimeContext &Ctx, Module Mod_)
    : Interpreter(Ctx, std::move(Mod_), Options()) {}

Interpreter::Interpreter(RuntimeContext &Ctx, Module Mod_, Options Opts)
    : Ctx(Ctx), Mod(std::move(Mod_)), Opts(Opts), Solero(Ctx, Opts.Solero),
      Conventional(Ctx) {
  VerifiedMethod V = verifyModule(Mod);
  SOLERO_CHECK(V.Ok, "module failed verification");
  Classes = classifyModule(Mod, nullptr);
  Prof.Counts.resize(Mod.methodCount());
  for (uint32_t Id = 0; Id < Mod.methodCount(); ++Id)
    Prof.Counts[Id].assign(Mod.method(Id).Code.size(), 0);
  Statics.reset(new SharedField<int64_t>[Mod.NumStatics]());
  rebuildRegionTables();
}

void Interpreter::rebuildRegionTables() {
  RegionTables.assign(Mod.methodCount(), {});
  for (uint32_t Id = 0; Id < Mod.methodCount(); ++Id) {
    RegionTables[Id].assign(Mod.method(Id).Code.size(), std::nullopt);
    for (const ClassifiedRegion &R : Classes.regions(Id))
      RegionTables[Id][R.Region.EnterPc] =
          RegionEntry{R.Region.ExitPc, R.Kind};
  }
}

void Interpreter::reclassifyWithProfile() {
  Classes = classifyModule(Mod, &Prof);
  rebuildRegionTables();
}

GuestObject *Interpreter::allocateObject() {
  GuestObject *Obj = Heap.allocate();
  for (auto &Field : Obj->F)
    Field.write(0);
  for (auto &Ref : Obj->R)
    Ref.write(nullptr);
  return Obj;
}

GuestArray *Interpreter::allocateArray(int64_t Len) {
  if (Len < 0)
    throw GuestError{static_cast<int32_t>(GuestErrorKind::NegativeArraySize)};
  auto Arr = std::make_unique<GuestArray>(Len);
  GuestArray *Raw = Arr.get();
  std::lock_guard<std::mutex> G(ArraysMu);
  Arrays.push_back(std::move(Arr));
  return Raw;
}

const Interpreter::RegionEntry &
Interpreter::regionAt(uint32_t MethodId, uint32_t EnterPc) const {
  const auto &Entry = RegionTables[MethodId][EnterPc];
  SOLERO_CHECK(Entry.has_value(), "SyncEnter without classified region");
  return *Entry;
}

Value Interpreter::invoke(const std::string &Name, std::vector<Value> Args) {
  return invoke(Mod.methodId(Name), std::move(Args));
}

Value Interpreter::invoke(uint32_t MethodId, std::vector<Value> Args) {
  const Method &Fn = Mod.method(MethodId);
  SOLERO_CHECK(Args.size() == Fn.NumParams, "argument count mismatch");
  Args.resize(Fn.NumLocals);
  ExecCtx EC;
  EC.StepsLeft = Opts.MaxSteps;
  return execMethod(EC, MethodId, std::move(Args));
}

Value Interpreter::execMethod(ExecCtx &EC, uint32_t Id,
                              std::vector<Value> Locals) {
  if (++EC.Depth > 200)
    throw GuestError{static_cast<int32_t>(GuestErrorKind::StackOverflow)};
  // Method-entry check point (Section 3.3).
  speculationCheckpoint();
  Frame F{Id, std::move(Locals), {}};
  std::optional<Value> R =
      execRange(EC, F, 0, static_cast<uint32_t>(Mod.method(Id).Code.size()));
  --EC.Depth;
  SOLERO_CHECK(R.has_value(), "method fell off the end (verifier bug)");
  return *R;
}

std::optional<Value> Interpreter::execRegion(ExecCtx &EC, Frame &F,
                                             uint32_t EnterPc,
                                             GuestObject *Obj) {
  if (!Obj)
    throw GuestError{static_cast<int32_t>(GuestErrorKind::NullPointer)};
  const RegionEntry &R = regionAt(F.MethodId, EnterPc);
  const std::size_t Base = F.Stack.size();
  // The body may be re-executed by the elision engine (failed validation
  // or failed upgrade); reset the operand stack to the entry height each
  // time. Locals need no restoration: the classifier refuses to elide
  // regions that write locals live at entry.
  auto Body = [&]() -> std::optional<Value> {
    F.Stack.resize(Base);
    return execRange(EC, F, EnterPc + 1, R.ExitPc);
  };

  if (Opts.UseConventionalLocks)
    return Conventional.synchronizedWrite(Obj->Hdr, Body);

  switch (R.Kind) {
  case RegionKind::Writing:
    // Take the MonitorHandle overload so guest MonitorWait/Notify inside
    // this region can reach the owned monitor.
    return Solero.synchronizedWrite(
        Obj->Hdr, [&](SoleroLock::MonitorHandle &MH) {
          EC.Monitors.emplace_back(&Obj->Hdr, &MH);
          ScopeExit PopMon([&] { EC.Monitors.pop_back(); });
          return Body();
        });
  case RegionKind::ReadOnly:
    return Solero.synchronizedReadOnly(Obj->Hdr,
                                       [&](ReadGuard &) { return Body(); });
  case RegionKind::ReadMostly:
    return Solero.synchronizedReadMostly(Obj->Hdr, [&](WriteIntent &W) {
      EC.Intents.push_back(&W);
      ScopeExit PopIntent([&] { EC.Intents.pop_back(); });
      return Body();
    });
  }
  SOLERO_UNREACHABLE("bad region kind");
}

std::optional<Value> Interpreter::execRange(ExecCtx &EC, Frame &F,
                                            uint32_t Pc, uint32_t End) {
  const Method &Fn = Mod.method(F.MethodId);
  auto Push = [&](Value V) { F.Stack.push_back(V); };
  auto PopV = [&]() {
    Value V = F.Stack.back();
    F.Stack.pop_back();
    return V;
  };
  auto Pop = [&]() { return PopV().asInt(); };
  auto PopRef = [&]() { return PopV().asRef(); };

  while (Pc < End) {
    SOLERO_CHECK(EC.StepsLeft-- != 0, "guest step budget exhausted "
                                      "(runaway loop not rescued?)");
    if (Opts.CollectProfile)
      ++Prof.Counts[F.MethodId][Pc];
    const Instruction &I = Fn.Code[Pc];
    switch (I.Op) {
    case Opcode::Const:
      Push(Value::ofInt(I.A));
      break;
    case Opcode::Dup:
      Push(F.Stack.back());
      break;
    case Opcode::Pop:
      (void)PopV();
      break;
    case Opcode::Swap:
      std::swap(F.Stack[F.Stack.size() - 1], F.Stack[F.Stack.size() - 2]);
      break;
    case Opcode::Load:
      Push(F.Locals[static_cast<std::size_t>(I.A)]);
      break;
    case Opcode::Store:
      F.Locals[static_cast<std::size_t>(I.A)] = PopV();
      break;
    case Opcode::Add: {
      int64_t B = Pop(), A = Pop();
      Push(Value::ofInt(A + B));
      break;
    }
    case Opcode::Sub: {
      int64_t B = Pop(), A = Pop();
      Push(Value::ofInt(A - B));
      break;
    }
    case Opcode::Mul: {
      int64_t B = Pop(), A = Pop();
      Push(Value::ofInt(A * B));
      break;
    }
    case Opcode::Div: {
      int64_t B = Pop(), A = Pop();
      if (B == 0)
        throw GuestError{static_cast<int32_t>(GuestErrorKind::Arithmetic)};
      Push(Value::ofInt(A / B));
      break;
    }
    case Opcode::Mod: {
      int64_t B = Pop(), A = Pop();
      if (B == 0)
        throw GuestError{static_cast<int32_t>(GuestErrorKind::Arithmetic)};
      Push(Value::ofInt(A % B));
      break;
    }
    case Opcode::Neg:
      Push(Value::ofInt(-Pop()));
      break;
    case Opcode::CmpEq: {
      Value B = PopV(), A = PopV();
      bool Eq = A.K == B.K &&
                (A.K == Value::Kind::Int ? A.I == B.I : A.O == B.O);
      Push(Value::ofInt(Eq ? 1 : 0));
      break;
    }
    case Opcode::CmpLt: {
      int64_t B = Pop(), A = Pop();
      Push(Value::ofInt(A < B ? 1 : 0));
      break;
    }
    case Opcode::Jump: {
      uint32_t T = static_cast<uint32_t>(I.A);
      if (T <= Pc)
        speculationCheckpoint(); // back-edge check point (Section 3.3)
      Pc = T;
      continue;
    }
    case Opcode::JumpIfZero:
    case Opcode::JumpIfNonZero: {
      int64_t C = Pop();
      bool Taken = (I.Op == Opcode::JumpIfZero) ? C == 0 : C != 0;
      if (Taken) {
        uint32_t T = static_cast<uint32_t>(I.A);
        if (T <= Pc)
          speculationCheckpoint();
        Pc = T;
        continue;
      }
      break;
    }
    case Opcode::GetField: {
      GuestObject *Obj = PopRef();
      if (!Obj)
        throw GuestError{static_cast<int32_t>(GuestErrorKind::NullPointer)};
      Push(Value::ofInt(Obj->F[static_cast<std::size_t>(I.A)].read()));
      break;
    }
    case Opcode::PutField: {
      int64_t V = Pop();
      GuestObject *Obj = PopRef();
      if (!Obj)
        throw GuestError{static_cast<int32_t>(GuestErrorKind::NullPointer)};
      beforeWriteEffect(EC);
      Obj->F[static_cast<std::size_t>(I.A)].write(V);
      break;
    }
    case Opcode::GetRef: {
      GuestObject *Obj = PopRef();
      if (!Obj)
        throw GuestError{static_cast<int32_t>(GuestErrorKind::NullPointer)};
      Push(Value::ofRef(Obj->R[static_cast<std::size_t>(I.A)].read()));
      break;
    }
    case Opcode::PutRef: {
      GuestObject *V = PopRef();
      GuestObject *Obj = PopRef();
      if (!Obj)
        throw GuestError{static_cast<int32_t>(GuestErrorKind::NullPointer)};
      beforeWriteEffect(EC);
      Obj->R[static_cast<std::size_t>(I.A)].write(V);
      break;
    }
    case Opcode::NewObject:
      Push(Value::ofRef(allocateObject()));
      break;
    case Opcode::PushNull:
      Push(Value::ofRef(nullptr));
      break;
    case Opcode::NewArray:
      Push(Value::ofArr(allocateArray(Pop())));
      break;
    case Opcode::ALoad: {
      int64_t Idx = Pop();
      GuestArray *Arr = PopV().asArr();
      if (!Arr)
        throw GuestError{static_cast<int32_t>(GuestErrorKind::NullPointer)};
      if (Idx < 0 || Idx >= Arr->Len)
        throw GuestError{
            static_cast<int32_t>(GuestErrorKind::ArrayIndexOutOfBounds)};
      Push(Value::ofInt(Arr->Elems[static_cast<std::size_t>(Idx)].read()));
      break;
    }
    case Opcode::AStore: {
      int64_t V = Pop();
      int64_t Idx = Pop();
      GuestArray *Arr = PopV().asArr();
      if (!Arr)
        throw GuestError{static_cast<int32_t>(GuestErrorKind::NullPointer)};
      if (Idx < 0 || Idx >= Arr->Len)
        throw GuestError{
            static_cast<int32_t>(GuestErrorKind::ArrayIndexOutOfBounds)};
      beforeWriteEffect(EC);
      Arr->Elems[static_cast<std::size_t>(Idx)].write(V);
      break;
    }
    case Opcode::ArrayLen: {
      GuestArray *Arr = PopV().asArr();
      if (!Arr)
        throw GuestError{static_cast<int32_t>(GuestErrorKind::NullPointer)};
      Push(Value::ofInt(Arr->Len));
      break;
    }
    case Opcode::GetStatic:
      Push(Value::ofInt(Statics[static_cast<std::size_t>(I.A)].read()));
      break;
    case Opcode::PutStatic: {
      int64_t V = Pop();
      beforeWriteEffect(EC);
      Statics[static_cast<std::size_t>(I.A)].write(V);
      break;
    }
    case Opcode::Invoke: {
      const Method &Callee = Mod.method(static_cast<uint32_t>(I.A));
      std::vector<Value> Locals(Callee.NumLocals);
      for (uint32_t P = Callee.NumParams; P-- > 0;)
        Locals[P] = PopV();
      Push(execMethod(EC, static_cast<uint32_t>(I.A), std::move(Locals)));
      break;
    }
    case Opcode::SyncEnter: {
      GuestObject *Obj = PopRef();
      std::optional<Value> Ret = execRegion(EC, F, Pc, Obj);
      if (Ret.has_value())
        return Ret; // Return executed inside the region
      Pc = regionAt(F.MethodId, Pc).ExitPc + 1;
      continue;
    }
    case Opcode::SyncExit:
      SOLERO_UNREACHABLE("SyncExit reached directly (verifier bug)");
    case Opcode::MonitorWait:
    case Opcode::MonitorNotify:
    case Opcode::MonitorNotifyAll: {
      GuestObject *Obj = PopRef();
      if (!Obj)
        throw GuestError{static_cast<int32_t>(GuestErrorKind::NullPointer)};
      if (Opts.UseConventionalLocks) {
        if (!Conventional.heldByCurrentThread(Obj->Hdr))
          throw GuestError{
              static_cast<int32_t>(GuestErrorKind::IllegalMonitorState)};
        if (I.Op == Opcode::MonitorWait)
          Conventional.wait(Obj->Hdr);
        else
          Conventional.notify(Obj->Hdr, I.Op == Opcode::MonitorNotifyAll);
        break;
      }
      // SOLERO mode: find the enclosing writing region's handle.
      SoleroLock::MonitorHandle *MH = nullptr;
      for (auto It = EC.Monitors.rbegin(); It != EC.Monitors.rend(); ++It)
        if (It->first == &Obj->Hdr) {
          MH = It->second;
          break;
        }
      if (!MH)
        throw GuestError{
            static_cast<int32_t>(GuestErrorKind::IllegalMonitorState)};
      if (I.Op == Opcode::MonitorWait)
        MH->wait();
      else
        MH->notify(I.Op == Opcode::MonitorNotifyAll);
      break;
    }
    case Opcode::Throw:
      throw GuestError{static_cast<int32_t>(Pop())};
    case Opcode::Print: {
      int64_t V = Pop();
      beforeWriteEffect(EC);
      std::printf("[guest] %lld\n", static_cast<long long>(V));
      break;
    }
    case Opcode::NativeCall: {
      int64_t V = Pop();
      beforeWriteEffect(EC);
      // Opaque effect: mix the value through a volatile sink.
      static volatile int64_t Sink;
      Sink = Sink + V;
      Push(Value::ofInt(Sink));
      break;
    }
    case Opcode::Return:
      return PopV();
    }
    ++Pc;
  }
  return std::nullopt; // reached End (region exit)
}

//===- jit/Interpreter.cpp - CSIR execution engine -------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
//
// Two engines live here:
//
//  - execThreaded: the production engine over the pre-decoded stream.
//    With SOLERO_THREADED_DISPATCH (default on GCC/Clang) each handler
//    ends by jumping through a computed-goto label table indexed by the
//    next pre-decoded opcode — no shared dispatch branch for the
//    predictor to saturate. Without it the same handler bodies compile
//    into a pre-decoded switch loop via the VM_CASE/VM_NEXT macros.
//
//  - execRange: the reference switch interpreter over the original
//    Method::Code, kept as the differential-test oracle. It shares the
//    frame arena, the counter-based budget, and every semantic helper
//    with the threaded engine, so the engines differ only in dispatch.
//
// Call frames are carved from a contiguous per-invoke arena sized from
// verifier facts (MaxCallDepth frames of the largest proven frame), so
// the call path performs no allocation. The runaway-step budget and the
// asynchronous check point (Section 3.3) are polled only at loop back
// edges and method entries/invokes — any unbounded guest execution must
// pass one of those, so rescue latency is bounded by one loop body.
//
//===----------------------------------------------------------------------===//

#include "jit/Interpreter.h"

#include <cstdio>
#include <utility>

#include "runtime/ReadGuard.h"
#include "support/ScopeExit.h"

#ifndef SOLERO_THREADED_DISPATCH
#if defined(__GNUC__) || defined(__clang__)
#define SOLERO_THREADED_DISPATCH 1
#else
#define SOLERO_THREADED_DISPATCH 0
#endif
#endif

using namespace solero;
using namespace solero::jit;

namespace {

constexpr const char BudgetMsg[] =
    "guest step budget exhausted (runaway loop not rescued?)";

[[noreturn]] void throwGuest(GuestErrorKind K) {
  throw GuestError{static_cast<int32_t>(K)};
}

/// Deep equality for CmpEq: values of different kinds are unequal;
/// references and arrays compare by identity.
bool valueEq(const Value &A, const Value &B) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case Value::Kind::Int:
    return A.I == B.I;
  case Value::Kind::Ref:
    return A.O == B.O;
  case Value::Kind::Arr:
    return A.A == B.A;
  }
  SOLERO_UNREACHABLE("bad value kind");
}

// Opaque NativeCall effect, shared by both engines so they observe the
// same sink state.
volatile int64_t NativeSink;

/// The per-thread frame arena plus the intent/monitor side stacks. One
/// top-level invoke leases the whole bundle; the capacity persists across
/// invokes, so the steady state allocates nothing.
struct ThreadArenaState {
  std::unique_ptr<Value[]> Slots;
  std::size_t Cap = 0;
  bool InUse = false;
  std::vector<WriteIntent *> Intents;
  std::vector<std::pair<ObjectHeader *, SoleroLock::MonitorHandle *>> Monitors;
};

thread_local ThreadArenaState TlsArena;

class ArenaLease {
public:
  explicit ArenaLease(std::size_t Slots) {
    if (!TlsArena.InUse) {
      TlsArena.InUse = true;
      FromTls = true;
      if (TlsArena.Cap < Slots) {
        TlsArena.Slots.reset(new Value[Slots]);
        TlsArena.Cap = Slots;
      }
      St = &TlsArena;
    } else {
      // Reentrant invoke on this thread (host code calling back into the
      // interpreter mid-execution): private fallback arena.
      Owned = std::make_unique<ThreadArenaState>();
      Owned->Slots.reset(new Value[Slots]);
      Owned->Cap = Slots;
      St = Owned.get();
    }
    St->Intents.clear();
    St->Monitors.clear();
  }
  ~ArenaLease() {
    if (FromTls)
      TlsArena.InUse = false;
  }
  ArenaLease(const ArenaLease &) = delete;
  ArenaLease &operator=(const ArenaLease &) = delete;

  Value *base() { return St->Slots.get(); }
  std::vector<WriteIntent *> &intents() { return St->Intents; }
  std::vector<std::pair<ObjectHeader *, SoleroLock::MonitorHandle *>> &
  monitors() {
    return St->Monitors;
  }

private:
  ThreadArenaState *St = nullptr;
  std::unique_ptr<ThreadArenaState> Owned;
  bool FromTls = false;
};

} // namespace

Interpreter::Interpreter(RuntimeContext &Ctx, Module Mod_)
    : Interpreter(Ctx, std::move(Mod_), Options()) {}

Interpreter::Interpreter(RuntimeContext &Ctx, Module Mod_, Options Opts)
    : Ctx(Ctx), Mod(std::move(Mod_)), Opts(Opts), Solero(Ctx, Opts.Solero),
      Conventional(Ctx) {
  Facts.resize(Mod.methodCount());
  uint32_t MaxFrame = 0;
  for (uint32_t Id = 0; Id < Mod.methodCount(); ++Id) {
    VerifiedMethod V = verifyMethod(Mod, Id);
    SOLERO_CHECK(V.Ok, "module failed verification");
    const Method &Fn = Mod.method(Id);
    Facts[Id] =
        MethodFacts{Fn.NumParams, Fn.NumLocals, Fn.NumLocals + V.MaxStack};
    if (Facts[Id].FrameSlots > MaxFrame)
      MaxFrame = Facts[Id].FrameSlots;
  }
  ArenaSlots = static_cast<std::size_t>(MaxCallDepth) * MaxFrame;
  Classes = classifyModule(Mod, nullptr, Opts.Classifier);
  Prof.Counts.resize(Mod.methodCount());
  for (uint32_t Id = 0; Id < Mod.methodCount(); ++Id)
    Prof.Counts[Id].assign(Mod.method(Id).Code.size(), 0);
  Statics.reset(new SharedField<int64_t>[Mod.NumStatics]());
  rebuildRegionTables();
  retranslate();
}

bool Interpreter::threadedDispatchAvailable() {
  return SOLERO_THREADED_DISPATCH != 0;
}

void Interpreter::rebuildRegionTables() {
  RegionTables.assign(Mod.methodCount(), {});
  for (uint32_t Id = 0; Id < Mod.methodCount(); ++Id) {
    RegionTables[Id].assign(Mod.method(Id).Code.size(), std::nullopt);
    for (const ClassifiedRegion &R : Classes.regions(Id))
      RegionTables[Id][R.Region.EnterPc] =
          RegionEntry{R.Region.ExitPc, R.Kind};
  }
}

void Interpreter::retranslate() {
  if (Opts.Mode != DispatchMode::Threaded)
    return;
  TranslatorOptions TO;
  TO.Fuse = Opts.FuseSuperinstructions;
  TO.Profile = Opts.CollectProfile;
  Trans = translateModule(Mod, Classes, TO);
}

void Interpreter::reclassifyWithProfile() {
  Classes = classifyModule(Mod, &Prof, Opts.Classifier);
  rebuildRegionTables();
  retranslate();
}

void Interpreter::endProfiling() {
  Opts.CollectProfile = false;
  retranslate();
}

bool Interpreter::validateWarmTranslation(const TranslatedModule &T) const {
  if (T.Methods.size() != Mod.methodCount())
    return false;
  uint32_t MaxFrame = 0;
  for (uint32_t Id = 0; Id < Mod.methodCount(); ++Id) {
    const TranslatedMethod &TM = T.Methods[Id];
    const MethodFacts &MF = Facts[Id];
    if (TM.NumParams != MF.NumParams || TM.NumLocals != MF.NumLocals ||
        TM.FrameSlots != MF.FrameSlots ||
        TM.NumLocals + TM.MaxStack != TM.FrameSlots)
      return false;
    const auto StreamLen = static_cast<int64_t>(TM.Code.size());
    const std::size_t OrigLen = Mod.method(Id).Code.size();
    if (TM.PcMap.size() != TM.Code.size())
      return false;
    for (uint32_t Pc : TM.PcMap)
      if (Pc >= OrigLen)
        return false;
    if (TM.FrameSlots > MaxFrame)
      MaxFrame = TM.FrameSlots;
    for (const TInst &I : TM.Code) {
      if (I.Op >= NumTOps)
        return false;
      switch (I.op()) {
      case TOp::Jump:
      case TOp::JumpIfZero:
      case TOp::JumpIfNonZero:
      case TOp::CmpLtJumpIfZero:
      case TOp::CmpEqJumpIfZero:
        if (I.A < 0 || I.A >= StreamLen)
          return false;
        break;
      case TOp::SyncEnter:
        // B carries the RegionKind inline cache; A the continuation,
        // which may sit one past the last instruction of a region-final
        // stream position.
        if (I.B > static_cast<uint16_t>(RegionKind::Writing))
          return false;
        if (I.A < 0 || I.A > StreamLen)
          return false;
        break;
      case TOp::Invoke:
        if (I.A < 0 || static_cast<std::size_t>(I.A) >= Mod.methodCount())
          return false;
        break;
      case TOp::Load:
      case TOp::Store:
        if (I.A < 0 || static_cast<uint32_t>(I.A) >= TM.NumLocals)
          return false;
        break;
      case TOp::LoadGetField:
        if (I.B >= TM.NumLocals || I.A < 0 ||
            static_cast<uint32_t>(I.A) >= ObjectIntFields)
          return false;
        break;
      case TOp::GetField:
      case TOp::PutField:
        if (I.A < 0 || static_cast<uint32_t>(I.A) >= ObjectIntFields)
          return false;
        break;
      case TOp::GetRef:
      case TOp::PutRef:
        if (I.A < 0 || static_cast<uint32_t>(I.A) >= ObjectRefFields)
          return false;
        break;
      case TOp::GetStatic:
      case TOp::PutStatic:
        if (I.A < 0 || static_cast<uint32_t>(I.A) >= Mod.NumStatics)
          return false;
        break;
      case TOp::ProfileCount:
        if (I.A < 0 || static_cast<std::size_t>(I.A) >= OrigLen)
          return false;
        break;
      default:
        break;
      }
    }
  }
  return T.MaxFrameSlots == MaxFrame;
}

bool Interpreter::adoptWarmState(ClassifiedModule WarmClasses,
                                 TranslatedModule WarmTrans,
                                 Profile WarmProf) {
  const auto NumMethods = static_cast<uint32_t>(Mod.methodCount());
  if (WarmClasses.methodCount() != NumMethods)
    return false;
  // Region boundaries derive from the verifier over this same bytecode:
  // the warm classification must cover exactly the regions the cold one
  // found. Only the *kinds* (and diagnostics) may differ — carrying the
  // profile-earned ReadMostly verdicts forward is the point.
  for (uint32_t Id = 0; Id < NumMethods; ++Id) {
    const std::vector<ClassifiedRegion> &Warm = WarmClasses.regions(Id);
    const std::vector<ClassifiedRegion> &Cold = Classes.regions(Id);
    if (Warm.size() != Cold.size())
      return false;
    for (std::size_t I = 0; I < Warm.size(); ++I)
      if (Warm[I].Region.EnterPc != Cold[I].Region.EnterPc ||
          Warm[I].Region.ExitPc != Cold[I].Region.ExitPc ||
          Warm[I].Diags.empty())
        return false;
  }
  if (WarmProf.Counts.size() != NumMethods)
    return false;
  for (uint32_t Id = 0; Id < NumMethods; ++Id)
    if (WarmProf.Counts[Id].size() != Mod.method(Id).Code.size())
      return false;
  if (Opts.Mode == DispatchMode::Threaded &&
      !validateWarmTranslation(WarmTrans))
    return false;
  Classes = std::move(WarmClasses);
  Prof = std::move(WarmProf);
  rebuildRegionTables();
  if (Opts.Mode == DispatchMode::Threaded)
    Trans = std::move(WarmTrans);
  return true;
}

GuestObject *Interpreter::allocateObject() {
  GuestObject *Obj = Heap.allocate();
  for (auto &Field : Obj->F)
    Field.write(0);
  for (auto &Ref : Obj->R)
    Ref.write(nullptr);
  return Obj;
}

GuestArray *Interpreter::allocateArray(int64_t Len) {
  if (Len < 0)
    throwGuest(GuestErrorKind::NegativeArraySize);
  auto Arr = std::make_unique<GuestArray>(Len);
  GuestArray *Raw = Arr.get();
  std::lock_guard<std::mutex> G(ArraysMu);
  Arrays.push_back(std::move(Arr));
  return Raw;
}

const Interpreter::RegionEntry &
Interpreter::regionAt(uint32_t MethodId, uint32_t EnterPc) const {
  const auto &Entry = RegionTables[MethodId][EnterPc];
  SOLERO_CHECK(Entry.has_value(), "SyncEnter without classified region");
  return *Entry;
}

Value Interpreter::invoke(const std::string &Name, std::vector<Value> Args) {
  return invoke(Mod.methodId(Name), std::move(Args));
}

Value Interpreter::invoke(uint32_t MethodId, std::vector<Value> Args) {
  SOLERO_CHECK(Args.size() == Facts[MethodId].NumParams,
               "argument count mismatch");
  ArenaLease Lease(ArenaSlots);
  ExecCtx EC;
  EC.PollsLeft = Opts.MaxSteps;
  EC.ArenaTop = Lease.base();
  EC.Intents = &Lease.intents();
  EC.Monitors = &Lease.monitors();
  if (Opts.Mode == DispatchMode::Threaded)
    return execMethodThreaded(EC, MethodId, Args.data());
  return execMethod(EC, MethodId, Args.data());
}

void Interpreter::monitorOp(ExecCtx &EC, GuestObject *Obj, Opcode Op) {
  if (!Obj)
    throwGuest(GuestErrorKind::NullPointer);
  if (Opts.UseConventionalLocks) {
    if (!Conventional.heldByCurrentThread(Obj->Hdr))
      throwGuest(GuestErrorKind::IllegalMonitorState);
    if (Op == Opcode::MonitorWait)
      Conventional.wait(Obj->Hdr);
    else
      Conventional.notify(Obj->Hdr, Op == Opcode::MonitorNotifyAll);
    return;
  }
  // SOLERO mode: find the enclosing writing region's handle.
  SoleroLock::MonitorHandle *MH = nullptr;
  for (auto It = EC.Monitors->rbegin(); It != EC.Monitors->rend(); ++It)
    if (It->first == &Obj->Hdr) {
      MH = It->second;
      break;
    }
  if (!MH)
    throwGuest(GuestErrorKind::IllegalMonitorState);
  if (Op == Opcode::MonitorWait)
    MH->wait();
  else
    MH->notify(Op == Opcode::MonitorNotifyAll);
}

template <typename BodyFn>
std::optional<Value> Interpreter::runRegion(ExecCtx &EC, RegionKind Kind,
                                            GuestObject *Obj, BodyFn &&Body) {
  if (Opts.UseConventionalLocks)
    return Conventional.synchronizedWrite(Obj->Hdr, Body);

  switch (Kind) {
  case RegionKind::Writing:
    // Take the MonitorHandle overload so guest MonitorWait/Notify inside
    // this region can reach the owned monitor.
    return Solero.synchronizedWrite(
        Obj->Hdr, [&](SoleroLock::MonitorHandle &MH) {
          EC.Monitors->emplace_back(&Obj->Hdr, &MH);
          ScopeExit PopMon([&] { EC.Monitors->pop_back(); });
          return Body();
        });
  case RegionKind::ReadOnly:
    return Solero.synchronizedReadOnly(Obj->Hdr,
                                       [&](ReadGuard &) { return Body(); });
  case RegionKind::ReadMostly:
    return Solero.synchronizedReadMostly(Obj->Hdr, [&](WriteIntent &W) {
      EC.Intents->push_back(&W);
      ScopeExit PopIntent([&] { EC.Intents->pop_back(); });
      return Body();
    });
  }
  SOLERO_UNREACHABLE("bad region kind");
}

//===----------------------------------------------------------------------===//
// Reference (switch) engine
//===----------------------------------------------------------------------===//

Value Interpreter::execMethod(ExecCtx &EC, uint32_t Id, const Value *Args) {
  if (++EC.Depth > MaxCallDepth)
    throwGuest(GuestErrorKind::StackOverflow);
  // Method-entry check point (Section 3.3).
  speculationCheckpoint();
  const MethodFacts &MF = Facts[Id];
  Value *Locals = EC.ArenaTop;
  EC.ArenaTop += MF.FrameSlots;
  for (uint32_t P = 0; P < MF.NumParams; ++P)
    Locals[P] = Args[P];
  for (uint32_t L = MF.NumParams; L < MF.NumLocals; ++L)
    Locals[L] = Value();
  Frame F{Id, Locals, Locals + MF.NumLocals};
  const uint32_t End = static_cast<uint32_t>(Mod.method(Id).Code.size());
  std::optional<Value> R = Opts.CollectProfile
                               ? execRange<true>(EC, F, 0, End)
                               : execRange<false>(EC, F, 0, End);
  --EC.Depth;
  EC.ArenaTop = Locals;
  SOLERO_CHECK(R.has_value(), "method fell off the end (verifier bug)");
  return *R;
}

std::optional<Value> Interpreter::execRegion(ExecCtx &EC, Frame &F,
                                             uint32_t EnterPc,
                                             GuestObject *Obj) {
  if (!Obj)
    throwGuest(GuestErrorKind::NullPointer);
  const RegionEntry &R = regionAt(F.MethodId, EnterPc);
  Value *const Base = F.Sp;
  Value *const Top = EC.ArenaTop;
  const int Depth = EC.Depth;
  // The body may be re-executed by the elision engine (failed validation
  // or failed upgrade); each attempt restarts from the entry stack height,
  // arena mark, and call depth (an aborted attempt may have unwound out of
  // nested frames without running their epilogues). Locals need no
  // restoration: the classifier refuses to elide regions that write locals
  // live at entry.
  auto Body = [&]() -> std::optional<Value> {
    F.Sp = Base;
    EC.ArenaTop = Top;
    EC.Depth = Depth;
    return Opts.CollectProfile
               ? execRange<true>(EC, F, EnterPc + 1, R.ExitPc)
               : execRange<false>(EC, F, EnterPc + 1, R.ExitPc);
  };
  return runRegion(EC, R.Kind, Obj, Body);
}

template <bool Profiling>
std::optional<Value> Interpreter::execRange(ExecCtx &EC, Frame &F, uint32_t Pc,
                                            uint32_t End) {
  const Method &Fn = Mod.method(F.MethodId);
  Value *Sp = F.Sp;
  auto Push = [&](Value V) { *Sp++ = V; };
  auto PopV = [&]() { return *--Sp; };
  auto Pop = [&]() { return PopV().asInt(); };
  auto PopRef = [&]() { return PopV().asRef(); };

  while (Pc < End) {
    if constexpr (Profiling)
      ++Prof.Counts[F.MethodId][Pc];
    const Instruction &I = Fn.Code[Pc];
    switch (I.Op) {
    case Opcode::Const:
      Push(Value::ofInt(I.A));
      break;
    case Opcode::Dup:
      Push(Sp[-1]);
      break;
    case Opcode::Pop:
      (void)PopV();
      break;
    case Opcode::Swap:
      std::swap(Sp[-1], Sp[-2]);
      break;
    case Opcode::Load:
      Push(F.Locals[static_cast<std::size_t>(I.A)]);
      break;
    case Opcode::Store:
      F.Locals[static_cast<std::size_t>(I.A)] = PopV();
      break;
    case Opcode::Add: {
      int64_t B = Pop(), A = Pop();
      Push(Value::ofInt(A + B));
      break;
    }
    case Opcode::Sub: {
      int64_t B = Pop(), A = Pop();
      Push(Value::ofInt(A - B));
      break;
    }
    case Opcode::Mul: {
      int64_t B = Pop(), A = Pop();
      Push(Value::ofInt(A * B));
      break;
    }
    case Opcode::Div: {
      int64_t B = Pop(), A = Pop();
      if (B == 0)
        throwGuest(GuestErrorKind::Arithmetic);
      Push(Value::ofInt(A / B));
      break;
    }
    case Opcode::Mod: {
      int64_t B = Pop(), A = Pop();
      if (B == 0)
        throwGuest(GuestErrorKind::Arithmetic);
      Push(Value::ofInt(A % B));
      break;
    }
    case Opcode::Neg:
      Push(Value::ofInt(-Pop()));
      break;
    case Opcode::CmpEq: {
      Value B = PopV(), A = PopV();
      Push(Value::ofInt(valueEq(A, B) ? 1 : 0));
      break;
    }
    case Opcode::CmpLt: {
      int64_t B = Pop(), A = Pop();
      Push(Value::ofInt(A < B ? 1 : 0));
      break;
    }
    case Opcode::Jump: {
      uint32_t T = static_cast<uint32_t>(I.A);
      if (T <= Pc) {
        // Back edge: budget poll + check point (Section 3.3).
        SOLERO_CHECK(EC.PollsLeft-- != 0, BudgetMsg);
        speculationCheckpoint();
      }
      Pc = T;
      continue;
    }
    case Opcode::JumpIfZero:
    case Opcode::JumpIfNonZero: {
      int64_t C = Pop();
      bool Taken = (I.Op == Opcode::JumpIfZero) ? C == 0 : C != 0;
      if (Taken) {
        uint32_t T = static_cast<uint32_t>(I.A);
        if (T <= Pc) {
          SOLERO_CHECK(EC.PollsLeft-- != 0, BudgetMsg);
          speculationCheckpoint();
        }
        Pc = T;
        continue;
      }
      break;
    }
    case Opcode::GetField: {
      GuestObject *Obj = PopRef();
      if (!Obj)
        throwGuest(GuestErrorKind::NullPointer);
      Push(Value::ofInt(Obj->F[static_cast<std::size_t>(I.A)].read()));
      break;
    }
    case Opcode::PutField: {
      int64_t V = Pop();
      GuestObject *Obj = PopRef();
      if (!Obj)
        throwGuest(GuestErrorKind::NullPointer);
      // Benign writes target region-local allocations; no upgrade needed.
      if (!Classes.writeIsBenign(F.MethodId, Pc))
        beforeWriteEffect(EC);
      Obj->F[static_cast<std::size_t>(I.A)].write(V);
      break;
    }
    case Opcode::GetRef: {
      GuestObject *Obj = PopRef();
      if (!Obj)
        throwGuest(GuestErrorKind::NullPointer);
      Push(Value::ofRef(Obj->R[static_cast<std::size_t>(I.A)].read()));
      break;
    }
    case Opcode::PutRef: {
      GuestObject *V = PopRef();
      GuestObject *Obj = PopRef();
      if (!Obj)
        throwGuest(GuestErrorKind::NullPointer);
      if (!Classes.writeIsBenign(F.MethodId, Pc))
        beforeWriteEffect(EC);
      Obj->R[static_cast<std::size_t>(I.A)].write(V);
      break;
    }
    case Opcode::NewObject:
      Push(Value::ofRef(allocateObject()));
      break;
    case Opcode::PushNull:
      Push(Value::ofRef(nullptr));
      break;
    case Opcode::NewArray:
      Push(Value::ofArr(allocateArray(Pop())));
      break;
    case Opcode::ALoad: {
      int64_t Idx = Pop();
      GuestArray *Arr = PopV().asArr();
      if (!Arr)
        throwGuest(GuestErrorKind::NullPointer);
      if (Idx < 0 || Idx >= Arr->Len)
        throwGuest(GuestErrorKind::ArrayIndexOutOfBounds);
      Push(Value::ofInt(Arr->Elems[static_cast<std::size_t>(Idx)].read()));
      break;
    }
    case Opcode::AStore: {
      int64_t V = Pop();
      int64_t Idx = Pop();
      GuestArray *Arr = PopV().asArr();
      if (!Arr)
        throwGuest(GuestErrorKind::NullPointer);
      if (Idx < 0 || Idx >= Arr->Len)
        throwGuest(GuestErrorKind::ArrayIndexOutOfBounds);
      if (!Classes.writeIsBenign(F.MethodId, Pc))
        beforeWriteEffect(EC);
      Arr->Elems[static_cast<std::size_t>(Idx)].write(V);
      break;
    }
    case Opcode::ArrayLen: {
      GuestArray *Arr = PopV().asArr();
      if (!Arr)
        throwGuest(GuestErrorKind::NullPointer);
      Push(Value::ofInt(Arr->Len));
      break;
    }
    case Opcode::GetStatic:
      Push(Value::ofInt(Statics[static_cast<std::size_t>(I.A)].read()));
      break;
    case Opcode::PutStatic: {
      int64_t V = Pop();
      beforeWriteEffect(EC);
      Statics[static_cast<std::size_t>(I.A)].write(V);
      break;
    }
    case Opcode::Invoke: {
      // Invokes count against the progress budget (recursion can loop
      // without a back edge).
      SOLERO_CHECK(EC.PollsLeft-- != 0, BudgetMsg);
      const uint32_t Callee = static_cast<uint32_t>(I.A);
      Sp -= Facts[Callee].NumParams;
      *Sp = execMethod(EC, Callee, Sp);
      ++Sp;
      break;
    }
    case Opcode::SyncEnter: {
      GuestObject *Obj = PopRef();
      F.Sp = Sp;
      std::optional<Value> Ret = execRegion(EC, F, Pc, Obj);
      if (Ret.has_value())
        return Ret; // Return executed inside the region
      Sp = F.Sp;
      Pc = regionAt(F.MethodId, Pc).ExitPc + 1;
      continue;
    }
    case Opcode::SyncExit:
      SOLERO_UNREACHABLE("SyncExit reached directly (verifier bug)");
    case Opcode::MonitorWait:
    case Opcode::MonitorNotify:
    case Opcode::MonitorNotifyAll:
      monitorOp(EC, PopRef(), I.Op);
      break;
    case Opcode::Throw:
      throw GuestError{static_cast<int32_t>(Pop())};
    case Opcode::Print: {
      int64_t V = Pop();
      beforeWriteEffect(EC);
      std::printf("[guest] %lld\n", static_cast<long long>(V));
      break;
    }
    case Opcode::NativeCall: {
      int64_t V = Pop();
      beforeWriteEffect(EC);
      NativeSink = NativeSink + V;
      Push(Value::ofInt(NativeSink));
      break;
    }
    case Opcode::Return: {
      Value V = PopV();
      F.Sp = Sp;
      return V;
    }
    }
    ++Pc;
  }
  F.Sp = Sp;
  return std::nullopt; // reached End (region exit)
}

//===----------------------------------------------------------------------===//
// Threaded (pre-decoded) engine
//===----------------------------------------------------------------------===//

Value Interpreter::execMethodThreaded(ExecCtx &EC, uint32_t Id,
                                      const Value *Args) {
  if (++EC.Depth > MaxCallDepth)
    throwGuest(GuestErrorKind::StackOverflow);
  // Method-entry check point (Section 3.3).
  speculationCheckpoint();
  const TranslatedMethod &TM = Trans.Methods[Id];
  Value *Locals = EC.ArenaTop;
  EC.ArenaTop += TM.FrameSlots;
  for (uint32_t P = 0; P < TM.NumParams; ++P)
    Locals[P] = Args[P];
  for (uint32_t L = TM.NumParams; L < TM.NumLocals; ++L)
    Locals[L] = Value();
  Frame F{Id, Locals, Locals + TM.NumLocals};
  std::optional<Value> R = execThreaded(EC, F, 0);
  --EC.Depth;
  EC.ArenaTop = Locals;
  SOLERO_CHECK(R.has_value(), "method fell off the end (verifier bug)");
  return *R;
}

std::optional<Value> Interpreter::execRegionThreaded(ExecCtx &EC, Frame &F,
                                                     uint32_t BodyPc,
                                                     RegionKind Kind,
                                                     GuestObject *Obj) {
  if (!Obj)
    throwGuest(GuestErrorKind::NullPointer);
  Value *const Base = F.Sp;
  Value *const Top = EC.ArenaTop;
  const int Depth = EC.Depth;
  // Mirror of execRegion's re-execution slate (see the comment there).
  auto Body = [&]() -> std::optional<Value> {
    F.Sp = Base;
    EC.ArenaTop = Top;
    EC.Depth = Depth;
    return execThreaded(EC, F, BodyPc);
  };
  return runRegion(EC, Kind, Obj, Body);
}

std::optional<Value> Interpreter::execThreaded(ExecCtx &EC, Frame &F,
                                               uint32_t Pc) {
  const TInst *const Code = Trans.Methods[F.MethodId].Code.data();
  Value *const Lo = F.Locals;
  Value *Sp = F.Sp;
  const TInst *I;

// Branch handlers poll the budget and the asynchronous check point only
// when the translator tagged the branch as a back edge.
#define VM_POLL_BACKEDGE()                                                     \
  do {                                                                         \
    if (I->backEdge()) {                                                       \
      SOLERO_CHECK(EC.PollsLeft-- != 0, BudgetMsg);                            \
      speculationCheckpoint();                                                 \
    }                                                                          \
  } while (0)

#if SOLERO_THREADED_DISPATCH
  // Token-threaded dispatch: the label table is indexed by the pre-decoded
  // opcode, so its order is the TOp enum order — keep the two in sync.
  static const void *const Labels[NumTOps] = {&&L_Const,
                                              &&L_Dup,
                                              &&L_Pop,
                                              &&L_Swap,
                                              &&L_Load,
                                              &&L_Store,
                                              &&L_Add,
                                              &&L_Sub,
                                              &&L_Mul,
                                              &&L_Div,
                                              &&L_Mod,
                                              &&L_Neg,
                                              &&L_CmpEq,
                                              &&L_CmpLt,
                                              &&L_Jump,
                                              &&L_JumpIfZero,
                                              &&L_JumpIfNonZero,
                                              &&L_GetField,
                                              &&L_PutField,
                                              &&L_GetRef,
                                              &&L_PutRef,
                                              &&L_NewObject,
                                              &&L_PushNull,
                                              &&L_NewArray,
                                              &&L_ALoad,
                                              &&L_AStore,
                                              &&L_ArrayLen,
                                              &&L_GetStatic,
                                              &&L_PutStatic,
                                              &&L_Invoke,
                                              &&L_SyncEnter,
                                              &&L_SyncExit,
                                              &&L_MonitorWait,
                                              &&L_MonitorNotify,
                                              &&L_MonitorNotifyAll,
                                              &&L_Throw,
                                              &&L_Print,
                                              &&L_NativeCall,
                                              &&L_Return,
                                              &&L_ConstAdd,
                                              &&L_CmpLtJumpIfZero,
                                              &&L_CmpEqJumpIfZero,
                                              &&L_LoadGetField,
                                              &&L_ProfileCount};
  static_assert(NumTOps == 44, "update the label table with the TOp enum");
#define VM_CASE(Name) L_##Name:
#define VM_NEXT()                                                              \
  do {                                                                         \
    I = Code + Pc++;                                                           \
    goto *Labels[I->Op];                                                       \
  } while (0)
  VM_NEXT();
#else
// Portable fallback: same pre-decoded stream and handler bodies, dispatched
// through one switch.
#define VM_CASE(Name) case TOp::Name:
#define VM_NEXT()                                                              \
  do {                                                                         \
    I = Code + Pc++;                                                           \
    goto VmDispatch;                                                           \
  } while (0)
  I = Code + Pc++;
VmDispatch:
  switch (I->op()) {
#endif

  VM_CASE(Const) {
    *Sp++ = Value::ofInt(I->A);
    VM_NEXT();
  }
  VM_CASE(Dup) {
    *Sp = Sp[-1];
    ++Sp;
    VM_NEXT();
  }
  VM_CASE(Pop) {
    --Sp;
    VM_NEXT();
  }
  VM_CASE(Swap) {
    std::swap(Sp[-1], Sp[-2]);
    VM_NEXT();
  }
  VM_CASE(Load) {
    *Sp++ = Lo[static_cast<std::size_t>(I->A)];
    VM_NEXT();
  }
  VM_CASE(Store) {
    Lo[static_cast<std::size_t>(I->A)] = *--Sp;
    VM_NEXT();
  }
  VM_CASE(Add) {
    int64_t B = (--Sp)->asInt();
    Sp[-1] = Value::ofInt(Sp[-1].asInt() + B);
    VM_NEXT();
  }
  VM_CASE(Sub) {
    int64_t B = (--Sp)->asInt();
    Sp[-1] = Value::ofInt(Sp[-1].asInt() - B);
    VM_NEXT();
  }
  VM_CASE(Mul) {
    int64_t B = (--Sp)->asInt();
    Sp[-1] = Value::ofInt(Sp[-1].asInt() * B);
    VM_NEXT();
  }
  VM_CASE(Div) {
    int64_t B = (--Sp)->asInt();
    if (B == 0)
      throwGuest(GuestErrorKind::Arithmetic);
    Sp[-1] = Value::ofInt(Sp[-1].asInt() / B);
    VM_NEXT();
  }
  VM_CASE(Mod) {
    int64_t B = (--Sp)->asInt();
    if (B == 0)
      throwGuest(GuestErrorKind::Arithmetic);
    Sp[-1] = Value::ofInt(Sp[-1].asInt() % B);
    VM_NEXT();
  }
  VM_CASE(Neg) {
    Sp[-1] = Value::ofInt(-Sp[-1].asInt());
    VM_NEXT();
  }
  VM_CASE(CmpEq) {
    Value B = *--Sp, A = *--Sp;
    *Sp++ = Value::ofInt(valueEq(A, B) ? 1 : 0);
    VM_NEXT();
  }
  VM_CASE(CmpLt) {
    int64_t B = (--Sp)->asInt();
    int64_t A = (--Sp)->asInt();
    *Sp++ = Value::ofInt(A < B ? 1 : 0);
    VM_NEXT();
  }
  VM_CASE(Jump) {
    VM_POLL_BACKEDGE();
    Pc = static_cast<uint32_t>(I->A);
    VM_NEXT();
  }
  VM_CASE(JumpIfZero) {
    if ((--Sp)->asInt() == 0) {
      VM_POLL_BACKEDGE();
      Pc = static_cast<uint32_t>(I->A);
    }
    VM_NEXT();
  }
  VM_CASE(JumpIfNonZero) {
    if ((--Sp)->asInt() != 0) {
      VM_POLL_BACKEDGE();
      Pc = static_cast<uint32_t>(I->A);
    }
    VM_NEXT();
  }
  VM_CASE(GetField) {
    GuestObject *Obj = (--Sp)->asRef();
    if (!Obj)
      throwGuest(GuestErrorKind::NullPointer);
    *Sp++ = Value::ofInt(Obj->F[static_cast<std::size_t>(I->A)].read());
    VM_NEXT();
  }
  VM_CASE(PutField) {
    int64_t V = (--Sp)->asInt();
    GuestObject *Obj = (--Sp)->asRef();
    if (!Obj)
      throwGuest(GuestErrorKind::NullPointer);
    // Bit 0 of B marks a benign write (region-local target): no upgrade.
    if (!(I->B & 1u))
      beforeWriteEffect(EC);
    Obj->F[static_cast<std::size_t>(I->A)].write(V);
    VM_NEXT();
  }
  VM_CASE(GetRef) {
    GuestObject *Obj = (--Sp)->asRef();
    if (!Obj)
      throwGuest(GuestErrorKind::NullPointer);
    *Sp++ = Value::ofRef(Obj->R[static_cast<std::size_t>(I->A)].read());
    VM_NEXT();
  }
  VM_CASE(PutRef) {
    GuestObject *V = (--Sp)->asRef();
    GuestObject *Obj = (--Sp)->asRef();
    if (!Obj)
      throwGuest(GuestErrorKind::NullPointer);
    if (!(I->B & 1u))
      beforeWriteEffect(EC);
    Obj->R[static_cast<std::size_t>(I->A)].write(V);
    VM_NEXT();
  }
  VM_CASE(NewObject) {
    *Sp++ = Value::ofRef(allocateObject());
    VM_NEXT();
  }
  VM_CASE(PushNull) {
    *Sp++ = Value::ofRef(nullptr);
    VM_NEXT();
  }
  VM_CASE(NewArray) {
    Sp[-1] = Value::ofArr(allocateArray(Sp[-1].asInt()));
    VM_NEXT();
  }
  VM_CASE(ALoad) {
    int64_t Idx = (--Sp)->asInt();
    GuestArray *Arr = (--Sp)->asArr();
    if (!Arr)
      throwGuest(GuestErrorKind::NullPointer);
    if (Idx < 0 || Idx >= Arr->Len)
      throwGuest(GuestErrorKind::ArrayIndexOutOfBounds);
    *Sp++ = Value::ofInt(Arr->Elems[static_cast<std::size_t>(Idx)].read());
    VM_NEXT();
  }
  VM_CASE(AStore) {
    int64_t V = (--Sp)->asInt();
    int64_t Idx = (--Sp)->asInt();
    GuestArray *Arr = (--Sp)->asArr();
    if (!Arr)
      throwGuest(GuestErrorKind::NullPointer);
    if (Idx < 0 || Idx >= Arr->Len)
      throwGuest(GuestErrorKind::ArrayIndexOutOfBounds);
    if (!(I->B & 1u))
      beforeWriteEffect(EC);
    Arr->Elems[static_cast<std::size_t>(Idx)].write(V);
    VM_NEXT();
  }
  VM_CASE(ArrayLen) {
    GuestArray *Arr = Sp[-1].asArr();
    if (!Arr)
      throwGuest(GuestErrorKind::NullPointer);
    Sp[-1] = Value::ofInt(Arr->Len);
    VM_NEXT();
  }
  VM_CASE(GetStatic) {
    *Sp++ = Value::ofInt(Statics[static_cast<std::size_t>(I->A)].read());
    VM_NEXT();
  }
  VM_CASE(PutStatic) {
    int64_t V = (--Sp)->asInt();
    beforeWriteEffect(EC);
    Statics[static_cast<std::size_t>(I->A)].write(V);
    VM_NEXT();
  }
  VM_CASE(Invoke) {
    SOLERO_CHECK(EC.PollsLeft-- != 0, BudgetMsg);
    const uint32_t Callee = static_cast<uint32_t>(I->A);
    // Arguments sit contiguously on top of the operand stack, in order —
    // the callee copies them straight into its frame.
    Sp -= Trans.Methods[Callee].NumParams;
    *Sp = execMethodThreaded(EC, Callee, Sp);
    ++Sp;
    VM_NEXT();
  }
  VM_CASE(SyncEnter) {
    GuestObject *Obj = (--Sp)->asRef();
    F.Sp = Sp;
    // Pc already points at the region body; I->A is the continuation,
    // I->B the classification inline cache.
    std::optional<Value> Ret =
        execRegionThreaded(EC, F, Pc, static_cast<RegionKind>(I->B), Obj);
    if (Ret.has_value())
      return Ret; // Return executed inside the region
    Sp = F.Sp;
    Pc = static_cast<uint32_t>(I->A);
    VM_NEXT();
  }
  VM_CASE(SyncExit) {
    // Region bodies run as nested execThreaded calls; the exit marker
    // ends the body.
    F.Sp = Sp;
    return std::nullopt;
  }
  VM_CASE(MonitorWait) {
    monitorOp(EC, (--Sp)->asRef(), Opcode::MonitorWait);
    VM_NEXT();
  }
  VM_CASE(MonitorNotify) {
    monitorOp(EC, (--Sp)->asRef(), Opcode::MonitorNotify);
    VM_NEXT();
  }
  VM_CASE(MonitorNotifyAll) {
    monitorOp(EC, (--Sp)->asRef(), Opcode::MonitorNotifyAll);
    VM_NEXT();
  }
  VM_CASE(Throw) { throw GuestError{static_cast<int32_t>((--Sp)->asInt())}; }
  VM_CASE(Print) {
    int64_t V = (--Sp)->asInt();
    beforeWriteEffect(EC);
    std::printf("[guest] %lld\n", static_cast<long long>(V));
    VM_NEXT();
  }
  VM_CASE(NativeCall) {
    int64_t V = (--Sp)->asInt();
    beforeWriteEffect(EC);
    NativeSink = NativeSink + V;
    *Sp++ = Value::ofInt(NativeSink);
    VM_NEXT();
  }
  VM_CASE(Return) {
    Value V = *--Sp;
    F.Sp = Sp;
    return V;
  }
  VM_CASE(ConstAdd) {
    Sp[-1] = Value::ofInt(Sp[-1].asInt() + I->A);
    VM_NEXT();
  }
  VM_CASE(CmpLtJumpIfZero) {
    int64_t B = (--Sp)->asInt();
    int64_t A = (--Sp)->asInt();
    if (!(A < B)) {
      VM_POLL_BACKEDGE();
      Pc = static_cast<uint32_t>(I->A);
    }
    VM_NEXT();
  }
  VM_CASE(CmpEqJumpIfZero) {
    Value B = *--Sp, A = *--Sp;
    if (!valueEq(A, B)) {
      VM_POLL_BACKEDGE();
      Pc = static_cast<uint32_t>(I->A);
    }
    VM_NEXT();
  }
  VM_CASE(LoadGetField) {
    GuestObject *Obj = Lo[I->B].asRef();
    if (!Obj)
      throwGuest(GuestErrorKind::NullPointer);
    *Sp++ = Value::ofInt(Obj->F[static_cast<std::size_t>(I->A)].read());
    VM_NEXT();
  }
  VM_CASE(ProfileCount) {
    ++Prof.Counts[F.MethodId][static_cast<std::size_t>(I->A)];
    VM_NEXT();
  }

#if !SOLERO_THREADED_DISPATCH
  }
#endif
  SOLERO_UNREACHABLE("fell out of dispatch (translator bug)");

#undef VM_CASE
#undef VM_NEXT
#undef VM_POLL_BACKEDGE
}

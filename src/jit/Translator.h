//===- jit/Translator.h - CSIR load-time translation ------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The load-time translation pass: lowers a verified CSIR method into a
/// pre-decoded instruction stream the execution engine can dispatch without
/// re-decoding. This plays the role JIT compilation plays in the paper —
/// the analysis results (Section 3.2 classifications) are baked into the
/// code once, at load time:
///
///  - branch targets are resolved to stream offsets and tagged with a
///    back-edge flag, so the engine polls the asynchronous check point and
///    the step budget only at loop back edges (Section 3.3 semantics);
///  - every SyncEnter carries an inline cache of its region's
///    classification and the stream offset of the region's continuation,
///    so region entry needs no side-table lookup;
///  - Invoke targets stay method ids; the callee's frame shape (locals,
///    verifier-proven max stack) lives in the translated method header so
///    frames can be carved out of a pre-sized arena with no allocation;
///  - hot adjacent pairs are fused into superinstructions
///    (const+add, cmplt/cmpeq+jz, load+getfield);
///  - profile instrumentation is baked in as explicit ProfileCount
///    instructions when requested, so the non-profiling engine pays
///    nothing for the option.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_TRANSLATOR_H
#define SOLERO_JIT_TRANSLATOR_H

#include <cstdint>
#include <vector>

#include "jit/Program.h"
#include "jit/ReadOnlyClassifier.h"

namespace solero {
namespace jit {

/// Pre-decoded opcodes. The leading block mirrors Opcode one-to-one; the
/// tail adds superinstructions and instrumentation. The execution engine's
/// dispatch table is indexed by this enum, so the order here is ABI between
/// the translator and the engine.
enum class TOp : uint16_t {
  Const,
  Dup,
  Pop,
  Swap,
  Load,
  Store,
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Neg,
  CmpEq,
  CmpLt,
  Jump,
  JumpIfZero,
  JumpIfNonZero,
  GetField,
  PutField,
  GetRef,
  PutRef,
  NewObject,
  PushNull,
  NewArray,
  ALoad,
  AStore,
  ArrayLen,
  GetStatic,
  PutStatic,
  Invoke,
  SyncEnter,
  SyncExit,
  MonitorWait,
  MonitorNotify,
  MonitorNotifyAll,
  Throw,
  Print,
  NativeCall,
  Return,

  // Superinstructions (fused pairs the profiler surfaces as hot).
  ConstAdd,        ///< push(pop + A)                      [const A; add]
  CmpLtJumpIfZero, ///< b=pop, a=pop; if !(a<b) goto A     [cmplt; jz A]
  CmpEqJumpIfZero, ///< b=pop, a=pop; if a!=b goto A       [cmpeq; jz A]
  LoadGetField,    ///< push(locals[B].F[A])               [load B; getfield A]

  // Instrumentation (emitted only when translating for profiling).
  ProfileCount, ///< ++profile[method][A]; A = original pc
};

/// Number of distinct TOps (dispatch-table size).
inline constexpr std::size_t NumTOps =
    static_cast<std::size_t>(TOp::ProfileCount) + 1;

/// Printable TOp name (fused ops print as "const+add" etc.).
const char *tOpName(TOp Op);

/// One pre-decoded instruction. 8 bytes; \c A is the primary immediate
/// (constant, slot, field, resolved stream offset, method id), \c B a
/// secondary immediate:
///  - branches (fused or not): bit 0 of B set = back edge (poll site);
///  - SyncEnter: B = RegionKind inline cache (cast), A = stream offset of
///    the instruction after the matching SyncExit;
///  - PutField/PutRef/AStore: bit 0 of B set = benign write (the escape
///    analysis proved the target region-local), skip the upgrade hook;
///  - LoadGetField: B = local slot, A = integer field index.
struct TInst {
  uint16_t Op; ///< a TOp
  uint16_t B = 0;
  int32_t A = 0;

  TOp op() const { return static_cast<TOp>(Op); }
  bool backEdge() const { return (B & 1u) != 0; }
};

static_assert(sizeof(TInst) == 8, "pre-decoded instructions stay compact");

/// A translated method: the pre-decoded stream plus the verifier facts the
/// engine needs to lay the method's frame out in the call arena.
struct TranslatedMethod {
  std::vector<TInst> Code;
  std::vector<uint32_t> PcMap; ///< stream offset -> original pc
  uint32_t NumParams = 0;
  uint32_t NumLocals = 0;
  uint32_t MaxStack = 0;   ///< verifier-proven operand stack bound
  uint32_t FrameSlots = 0; ///< NumLocals + MaxStack
};

/// A translated module. Immutable once built; rebuilt from scratch after
/// profile-guided reclassification (the paper's recompilation).
struct TranslatedModule {
  std::vector<TranslatedMethod> Methods;
  /// Largest per-method frame, for arena sizing.
  uint32_t MaxFrameSlots = 0;
};

struct TranslatorOptions {
  /// Fuse hot adjacent pairs into superinstructions.
  bool Fuse = true;
  /// Bake ProfileCount instrumentation in front of every original
  /// instruction (disables fusion so counts stay per-original-pc exact).
  bool Profile = false;
};

/// Lowers every method of \p M. The module must verify; \p Classes must be
/// the classification of \p M (its region kinds are baked into SyncEnter
/// inline caches, so retranslate after reclassification).
TranslatedModule translateModule(const Module &M,
                                 const ClassifiedModule &Classes,
                                 const TranslatorOptions &Opts = {});

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_TRANSLATOR_H

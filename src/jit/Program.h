//===- jit/Program.h - CSIR methods and modules -----------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSIR program containers: instructions, methods (with the paper's
/// @SoleroReadOnly annotation, Section 3.2), and modules (methods plus
/// static cells).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_PROGRAM_H
#define SOLERO_JIT_PROGRAM_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "jit/Opcode.h"
#include "support/Assert.h"

namespace solero {
namespace jit {

/// Guest objects have a fixed layout: ObjectIntFields integer fields
/// (F[0..)) and ObjectRefFields reference fields (R[0..)).
inline constexpr uint32_t ObjectIntFields = 8;
inline constexpr uint32_t ObjectRefFields = 4;

/// One CSIR instruction: opcode plus immediate.
struct Instruction {
  Opcode Op;
  int32_t A = 0;
};

/// A CSIR method. Locals [0, NumParams) are the parameters.
struct Method {
  std::string Name;
  uint32_t NumParams = 0;
  uint32_t NumLocals = 0; ///< total local slots, including parameters
  std::vector<Instruction> Code;

  /// The paper's @SoleroReadOnly: every synchronized block in this method
  /// is read-only even if the analysis cannot prove it (e.g. because of
  /// virtual invokes).
  bool AnnotatedReadOnly = false;
  /// The Section 5 extension annotation: treat this method's synchronized
  /// blocks as read-mostly (elide, upgrade before writes).
  bool AnnotatedReadMostly = false;
};

/// A module: methods plus mutable static integer cells.
class Module {
public:
  /// Adds a method; returns its id. Names must be unique.
  uint32_t addMethod(Method M) {
    SOLERO_CHECK(NamesToIds.find(M.Name) == NamesToIds.end(),
                 "duplicate method name");
    uint32_t Id = static_cast<uint32_t>(Methods.size());
    NamesToIds.emplace(M.Name, Id);
    Methods.push_back(std::move(M));
    return Id;
  }

  const Method &method(uint32_t Id) const {
    SOLERO_CHECK(Id < Methods.size(), "method id out of range");
    return Methods[Id];
  }
  Method &method(uint32_t Id) {
    SOLERO_CHECK(Id < Methods.size(), "method id out of range");
    return Methods[Id];
  }

  /// Id of a method by name; asserts existence.
  uint32_t methodId(const std::string &Name) const {
    auto It = NamesToIds.find(Name);
    SOLERO_CHECK(It != NamesToIds.end(), "unknown method name");
    return It->second;
  }
  bool hasMethod(const std::string &Name) const {
    return NamesToIds.count(Name) != 0;
  }

  std::size_t methodCount() const { return Methods.size(); }

  /// Number of static integer cells (S[0..N)).
  uint32_t NumStatics = 0;

private:
  std::vector<Method> Methods;
  std::unordered_map<std::string, uint32_t> NamesToIds;
};

/// Guest runtime error codes (a stand-in for Java runtime exceptions,
/// which Section 3.2 allows inside read-only synchronized blocks).
enum class GuestErrorKind : int32_t {
  NullPointer = 1,
  Arithmetic = 2,
  StackOverflow = 3,
  ArrayIndexOutOfBounds = 4,
  NegativeArraySize = 5,
  IllegalMonitorState = 6,
  UserThrow = 100, ///< user codes are >= 100
};

/// The guest exception. Thrown by interpreter ops and by Opcode::Throw;
/// inside an elided section the SOLERO engine decides whether it is
/// genuine (Section 3.3).
struct GuestError {
  int32_t Code;
};

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_PROGRAM_H

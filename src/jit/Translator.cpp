//===- jit/Translator.cpp - CSIR load-time translation ---------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/Translator.h"

#include "jit/Verifier.h"

using namespace solero;
using namespace solero::jit;

const char *jit::tOpName(TOp Op) {
  switch (Op) {
  case TOp::ConstAdd:
    return "const+add";
  case TOp::CmpLtJumpIfZero:
    return "cmplt+jz";
  case TOp::CmpEqJumpIfZero:
    return "cmpeq+jz";
  case TOp::LoadGetField:
    return "load+getfield";
  case TOp::ProfileCount:
    return "profile";
  default:
    // The leading block mirrors Opcode one-to-one.
    return opcodeName(static_cast<Opcode>(Op));
  }
}

namespace {

bool isBranch(Opcode Op) {
  return Op == Opcode::Jump || Op == Opcode::JumpIfZero ||
         Op == Opcode::JumpIfNonZero;
}

bool isBranchT(TOp Op) {
  return Op == TOp::Jump || Op == TOp::JumpIfZero ||
         Op == TOp::JumpIfNonZero || Op == TOp::CmpLtJumpIfZero ||
         Op == TOp::CmpEqJumpIfZero;
}

TranslatedMethod translateMethod(const Module &M, uint32_t Id,
                                 const ClassifiedModule &Classes,
                                 const TranslatorOptions &Opts) {
  const Method &Fn = M.method(Id);
  VerifiedMethod V = verifyMethod(M, Id);
  SOLERO_CHECK(V.Ok, "translating an unverified method");

  TranslatedMethod Out;
  Out.NumParams = Fn.NumParams;
  Out.NumLocals = Fn.NumLocals;
  Out.MaxStack = V.MaxStack;
  Out.FrameSlots = Fn.NumLocals + V.MaxStack;

  const uint32_t N = static_cast<uint32_t>(Fn.Code.size());

  // Fusion may only swallow an instruction no control transfer lands on:
  // branch targets, region body entries (re-executed by the elision
  // engine), and region continuations all stay addressable.
  std::vector<bool> BlockStart(N, false);
  for (uint32_t Pc = 0; Pc < N; ++Pc)
    if (isBranch(Fn.Code[Pc].Op))
      BlockStart[static_cast<uint32_t>(Fn.Code[Pc].A)] = true;
  for (const SyncRegion &R : V.Regions) {
    if (R.EnterPc + 1 < N)
      BlockStart[R.EnterPc + 1] = true;
    if (R.ExitPc + 1 < N)
      BlockStart[R.ExitPc + 1] = true;
  }

  const bool Fuse = Opts.Fuse && !Opts.Profile;
  std::vector<uint32_t> NewPc(N, 0);

  auto Emit = [&](TOp Op, int32_t A = 0, uint16_t B = 0, uint32_t OrigPc = 0) {
    Out.Code.push_back(TInst{static_cast<uint16_t>(Op), B, A});
    Out.PcMap.push_back(OrigPc);
  };

  for (uint32_t Pc = 0; Pc < N;) {
    NewPc[Pc] = static_cast<uint32_t>(Out.Code.size());
    // SyncExit is a region terminator, never an executed instruction in
    // the reference engine — leave it uncounted so profiles agree.
    if (Opts.Profile && Fn.Code[Pc].Op != Opcode::SyncExit)
      Emit(TOp::ProfileCount, static_cast<int32_t>(Pc), 0, Pc);

    const Instruction &I = Fn.Code[Pc];
    const Instruction *Next =
        (Fuse && Pc + 1 < N && !BlockStart[Pc + 1]) ? &Fn.Code[Pc + 1]
                                                    : nullptr;
    if (Next) {
      TOp Fused = TOp::ProfileCount; // sentinel: no fusion
      int32_t A = 0;
      uint16_t B = 0;
      if (I.Op == Opcode::Const && Next->Op == Opcode::Add) {
        Fused = TOp::ConstAdd;
        A = I.A;
      } else if (I.Op == Opcode::CmpLt && Next->Op == Opcode::JumpIfZero) {
        Fused = TOp::CmpLtJumpIfZero;
        A = Next->A; // original target; patched below
      } else if (I.Op == Opcode::CmpEq && Next->Op == Opcode::JumpIfZero) {
        Fused = TOp::CmpEqJumpIfZero;
        A = Next->A;
      } else if (I.Op == Opcode::Load && Next->Op == Opcode::GetField) {
        Fused = TOp::LoadGetField;
        A = Next->A;                       // field index
        B = static_cast<uint16_t>(I.A);    // local slot
      }
      if (Fused != TOp::ProfileCount) {
        Emit(Fused, A, B, Pc);
        // The swallowed instruction still maps somewhere sensible for
        // diagnostics, though nothing may branch to it (checked above).
        NewPc[Pc + 1] = static_cast<uint32_t>(Out.Code.size()) - 1;
        Pc += 2;
        continue;
      }
    }

    if (I.Op == Opcode::SyncEnter) {
      const ClassifiedRegion &R = Classes.regionAt(Id, Pc);
      // A = original continuation pc (patched to a stream offset below);
      // B = region-kind inline cache.
      Emit(TOp::SyncEnter, static_cast<int32_t>(R.Region.ExitPc),
           static_cast<uint16_t>(R.Kind), Pc);
    } else {
      // Benign writes (to provably region-local allocations) carry bit 0
      // of B so the engine skips the read-mostly upgrade hook for them.
      uint16_t B = 0;
      if ((I.Op == Opcode::PutField || I.Op == Opcode::PutRef ||
           I.Op == Opcode::AStore) &&
          Classes.writeIsBenign(Id, Pc))
        B = 1;
      Emit(static_cast<TOp>(I.Op), I.A, B, Pc);
    }
    ++Pc;
  }

  // Patch branch targets to stream offsets and tag back edges; patch
  // SyncEnter continuations to the offset after the translated SyncExit.
  for (std::size_t Ti = 0; Ti < Out.Code.size(); ++Ti) {
    TInst &T = Out.Code[Ti];
    if (isBranchT(T.op())) {
      uint32_t OrigTarget = static_cast<uint32_t>(T.A);
      // The branch's own original pc: for a fused compare-and-branch the
      // branch is the pair's second element.
      uint32_t OrigBranchPc = Out.PcMap[Ti];
      if (T.op() == TOp::CmpLtJumpIfZero || T.op() == TOp::CmpEqJumpIfZero)
        ++OrigBranchPc;
      if (OrigTarget <= OrigBranchPc)
        T.B |= 1u; // back edge: poll site
      T.A = static_cast<int32_t>(NewPc[OrigTarget]);
    } else if (T.op() == TOp::SyncEnter) {
      T.A = static_cast<int32_t>(NewPc[static_cast<uint32_t>(T.A)]) + 1;
    }
  }
  return Out;
}

} // namespace

TranslatedModule jit::translateModule(const Module &M,
                                      const ClassifiedModule &Classes,
                                      const TranslatorOptions &Opts) {
  TranslatedModule TM;
  TM.Methods.reserve(M.methodCount());
  for (uint32_t Id = 0; Id < M.methodCount(); ++Id) {
    TM.Methods.push_back(translateMethod(M, Id, Classes, Opts));
    TM.MaxFrameSlots = std::max(TM.MaxFrameSlots, TM.Methods.back().FrameSlots);
  }
  return TM;
}

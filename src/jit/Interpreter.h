//===- jit/Interpreter.h - CSIR execution engine ----------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes CSIR under SOLERO. Construction plays the role of the paper's
/// JIT compilation: the module is verified, synchronized regions are
/// discovered and classified (Section 3.2), and execution then locks each
/// region according to its classification — read-only regions elide
/// (Figure 7), read-mostly regions elide with mid-section upgrade
/// (Figure 17), writing regions acquire conventionally (Figure 6). The
/// interpreter inserts asynchronous check points at loop back-edges and
/// method entries (Section 3.3), and guest runtime errors raised during
/// speculation flow through the engine's genuine-or-retry logic.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_INTERPRETER_H
#define SOLERO_JIT_INTERPRETER_H

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/SoleroLock.h"
#include "jit/Program.h"
#include "jit/ReadOnlyClassifier.h"
#include "jit/Verifier.h"
#include "locks/TasukiLock.h"
#include "mm/TypeStablePool.h"
#include "runtime/RuntimeContext.h"
#include "runtime/SharedField.h"

namespace solero {
namespace jit {

/// A guest heap object: a lock word plus fixed integer and reference
/// field arrays, all speculation-safe.
struct GuestObject {
  ObjectHeader Hdr;
  SharedField<int64_t> F[ObjectIntFields];
  SharedField<GuestObject *> R[ObjectRefFields];
};

/// A guest integer array: fixed length, speculation-safe elements.
/// Arrays live until the interpreter is destroyed (the guest language has
/// no free; the paper's runtime has a GC).
struct GuestArray {
  explicit GuestArray(int64_t Len)
      : Len(Len), Elems(new SharedField<int64_t>[static_cast<size_t>(Len)]()) {}
  const int64_t Len;
  std::unique_ptr<SharedField<int64_t>[]> Elems;
};

/// A guest value: an integer, an object reference, or an array reference.
struct Value {
  enum class Kind : uint8_t { Int, Ref, Arr };
  Kind K = Kind::Int;
  int64_t I = 0;
  GuestObject *O = nullptr;
  GuestArray *A = nullptr;

  static Value ofInt(int64_t V) {
    Value X;
    X.K = Kind::Int;
    X.I = V;
    return X;
  }
  static Value ofRef(GuestObject *Obj) {
    Value X;
    X.K = Kind::Ref;
    X.O = Obj;
    return X;
  }
  static Value ofArr(GuestArray *Arr) {
    Value X;
    X.K = Kind::Arr;
    X.A = Arr;
    return X;
  }

  int64_t asInt() const {
    SOLERO_CHECK(K == Kind::Int, "value kind confusion (expected int)");
    return I;
  }
  GuestObject *asRef() const {
    SOLERO_CHECK(K == Kind::Ref, "value kind confusion (expected ref)");
    return O;
  }
  GuestArray *asArr() const {
    SOLERO_CHECK(K == Kind::Arr, "value kind confusion (expected array)");
    return A;
  }
};

/// The CSIR execution engine. Thread-safe for concurrent invoke() calls
/// (that is the point: guest threads contending on guest monitors), except
/// when profile collection is enabled, which is a single-threaded
/// profiling phase by design.
class Interpreter {
public:
  struct Options {
    /// Baseline mode: lock every region with the conventional protocol,
    /// ignoring classifications (the paper's "Lock" configuration).
    bool UseConventionalLocks = false;
    /// Count per-instruction executions for profile-guided read-mostly
    /// classification (single-threaded phase).
    bool CollectProfile = false;
    /// Guest step budget per top-level invoke (runaway-loop backstop).
    uint64_t MaxSteps = 1ULL << 32;
    /// Protocol configuration for SOLERO-mode regions.
    SoleroConfig Solero;
  };

  Interpreter(RuntimeContext &Ctx, Module Mod, Options Opts);
  Interpreter(RuntimeContext &Ctx, Module Mod);

  /// Runs a method. \p Args must match the method's parameter count.
  Value invoke(uint32_t MethodId, std::vector<Value> Args);
  Value invoke(const std::string &Name, std::vector<Value> Args);

  /// Re-runs classification with the collected profile (the paper's
  /// recompilation after profiling). Call from a quiescent point.
  void reclassifyWithProfile();

  /// Allocates a zeroed guest object (for test/bench setup and NewObject).
  GuestObject *allocateObject();

  /// Allocates a zeroed guest integer array of \p Len elements.
  GuestArray *allocateArray(int64_t Len);

  const Module &module() const { return Mod; }
  const ClassifiedModule &classification() const { return Classes; }
  const Profile &profile() const { return Prof; }

  int64_t staticCell(uint32_t Idx) const { return Statics[Idx].read(); }
  void setStaticCell(uint32_t Idx, int64_t V) { Statics[Idx].write(V); }

private:
  /// Per-top-level-invoke execution context (thread-owned).
  struct ExecCtx {
    uint64_t StepsLeft = 0;
    int Depth = 0;
    /// Innermost-last stack of active read-mostly upgrade handles.
    std::vector<WriteIntent *> Intents;
    /// Innermost-last stack of held writing-region monitors (for guest
    /// Object.wait / notify in SOLERO mode).
    std::vector<std::pair<ObjectHeader *, SoleroLock::MonitorHandle *>>
        Monitors;
  };

  struct Frame {
    uint32_t MethodId;
    std::vector<Value> Locals;
    std::vector<Value> Stack;
  };

  /// Fast region lookup: (method, SyncEnter pc) -> classified region.
  struct RegionEntry {
    uint32_t ExitPc;
    RegionKind Kind;
  };

  Value execMethod(ExecCtx &EC, uint32_t Id, std::vector<Value> Locals);
  std::optional<Value> execRange(ExecCtx &EC, Frame &F, uint32_t Pc,
                                 uint32_t End);
  std::optional<Value> execRegion(ExecCtx &EC, Frame &F, uint32_t EnterPc,
                                  GuestObject *Obj);
  const RegionEntry &regionAt(uint32_t MethodId, uint32_t EnterPc) const;
  void rebuildRegionTables();
  /// Called before any write or side effect: upgrades the innermost
  /// read-mostly section if one is active (Figure 17).
  void beforeWriteEffect(ExecCtx &EC) {
    if (!EC.Intents.empty())
      EC.Intents.back()->acquireForWrite();
  }

  RuntimeContext &Ctx;
  Module Mod;
  Options Opts;
  SoleroLock Solero;
  TasukiLock Conventional;
  ClassifiedModule Classes;
  Profile Prof;
  // RegionTables[Method] maps EnterPc -> entry (dense by code index).
  std::vector<std::vector<std::optional<RegionEntry>>> RegionTables;
  std::unique_ptr<SharedField<int64_t>[]> Statics;
  TypeStablePool<GuestObject> Heap;
  std::mutex ArraysMu;
  std::vector<std::unique_ptr<GuestArray>> Arrays;
};

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_INTERPRETER_H

//===- jit/Interpreter.h - CSIR execution engine ----------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes CSIR under SOLERO. Construction plays the role of the paper's
/// JIT compilation: the module is verified, synchronized regions are
/// discovered and classified (Section 3.2), the program is lowered to a
/// pre-decoded stream (jit/Translator.h), and execution then locks each
/// region according to its classification — read-only regions elide
/// (Figure 7), read-mostly regions elide with mid-section upgrade
/// (Figure 17), writing regions acquire conventionally (Figure 6).
///
/// Two dispatch engines share the lock protocol and the guest heap:
///
///  - DispatchMode::Threaded (default): executes the translated stream
///    with computed-goto threaded dispatch (a pre-decoded switch loop on
///    toolchains without the extension), superinstructions fused, call
///    frames carved from a pre-sized per-invoke arena (no allocation on
///    the call path), and the runaway-step budget polled only at loop
///    back edges and invokes;
///  - DispatchMode::Reference: the original re-decoding switch
///    interpreter over Method::Code, retained as the differential-test
///    oracle. It shares the frame arena and budget polling so the two
///    engines differ only in dispatch.
///
/// Asynchronous check points fire at loop back-edges and method entries
/// (Section 3.3) in both engines, and guest runtime errors raised during
/// speculation flow through the elision engine's genuine-or-retry logic.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_JIT_INTERPRETER_H
#define SOLERO_JIT_INTERPRETER_H

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/SoleroLock.h"
#include "jit/Program.h"
#include "jit/ReadOnlyClassifier.h"
#include "jit/Translator.h"
#include "jit/Verifier.h"
#include "locks/TasukiLock.h"
#include "mm/TypeStablePool.h"
#include "runtime/RuntimeContext.h"
#include "runtime/SharedField.h"

namespace solero {
namespace jit {

/// A guest heap object: a lock word plus fixed integer and reference
/// field arrays, all speculation-safe.
struct GuestObject {
  ObjectHeader Hdr;
  SharedField<int64_t> F[ObjectIntFields];
  SharedField<GuestObject *> R[ObjectRefFields];
};

/// A guest integer array: fixed length, speculation-safe elements.
/// Arrays live until the interpreter is destroyed (the guest language has
/// no free; the paper's runtime has a GC).
struct GuestArray {
  explicit GuestArray(int64_t Len)
      : Len(Len), Elems(new SharedField<int64_t>[static_cast<size_t>(Len)]()) {}
  const int64_t Len;
  std::unique_ptr<SharedField<int64_t>[]> Elems;
};

/// A guest value: an integer, an object reference, or an array reference.
struct Value {
  enum class Kind : uint8_t { Int, Ref, Arr };
  Kind K = Kind::Int;
  int64_t I = 0;
  GuestObject *O = nullptr;
  GuestArray *A = nullptr;

  static Value ofInt(int64_t V) {
    Value X;
    X.K = Kind::Int;
    X.I = V;
    return X;
  }
  static Value ofRef(GuestObject *Obj) {
    Value X;
    X.K = Kind::Ref;
    X.O = Obj;
    return X;
  }
  static Value ofArr(GuestArray *Arr) {
    Value X;
    X.K = Kind::Arr;
    X.A = Arr;
    return X;
  }

  int64_t asInt() const {
    SOLERO_CHECK(K == Kind::Int, "value kind confusion (expected int)");
    return I;
  }
  GuestObject *asRef() const {
    SOLERO_CHECK(K == Kind::Ref, "value kind confusion (expected ref)");
    return O;
  }
  GuestArray *asArr() const {
    SOLERO_CHECK(K == Kind::Arr, "value kind confusion (expected array)");
    return A;
  }
};

/// Which execution engine runs the guest program.
enum class DispatchMode : uint8_t {
  /// Pre-decoded stream, threaded dispatch, arena frames, fused
  /// superinstructions. The production engine.
  Threaded,
  /// Re-decoding switch loop over the original Method::Code — the
  /// differential-testing oracle.
  Reference,
};

/// The CSIR execution engine. Thread-safe for concurrent invoke() calls
/// (that is the point: guest threads contending on guest monitors), except
/// when profile collection is enabled, which is a single-threaded
/// profiling phase by design.
class Interpreter {
public:
  struct Options {
    /// Baseline mode: lock every region with the conventional protocol,
    /// ignoring classifications (the paper's "Lock" configuration).
    bool UseConventionalLocks = false;
    /// Count per-instruction executions for profile-guided read-mostly
    /// classification (single-threaded phase). The threaded engine bakes
    /// the instrumentation into the translated stream, so execution with
    /// this off pays nothing for the option.
    bool CollectProfile = false;
    /// Guest progress budget per top-level invoke (runaway-loop
    /// backstop), decremented at loop back edges and invokes — any
    /// unbounded execution must pass one of those — rather than per
    /// instruction.
    uint64_t MaxSteps = 1ULL << 32;
    /// Which engine executes guest code.
    DispatchMode Mode = DispatchMode::Threaded;
    /// Fuse hot adjacent pairs into superinstructions (threaded engine
    /// only; off is useful for bracketing fusion's contribution).
    bool FuseSuperinstructions = true;
    /// Protocol configuration for SOLERO-mode regions.
    SoleroConfig Solero;
    /// Static-analysis knobs for region classification (ablation).
    ClassifierOptions Classifier;
  };

  Interpreter(RuntimeContext &Ctx, Module Mod, Options Opts);
  Interpreter(RuntimeContext &Ctx, Module Mod);

  /// Runs a method. \p Args must match the method's parameter count.
  Value invoke(uint32_t MethodId, std::vector<Value> Args);
  Value invoke(const std::string &Name, std::vector<Value> Args);

  /// Re-runs classification with the collected profile (the paper's
  /// recompilation after profiling) and retranslates the program so the
  /// new classifications reach the SyncEnter inline caches. Call from a
  /// quiescent point.
  void reclassifyWithProfile();

  /// Ends the single-threaded profiling phase: stops baking ProfileCount
  /// instrumentation into the stream and retranslates. Call after
  /// reclassifyWithProfile() so a checkpoint captures the uninstrumented
  /// production stream. Quiescent point only.
  void endProfiling();

  /// Adopts warm-image state (image/Resources.h): a classification,
  /// translated stream, and profile captured by an earlier process.
  /// Everything is re-validated against this module's verifier facts —
  /// method count, region boundaries, frame shapes, stream offsets,
  /// opcode/branch/callee ranges — and on ANY mismatch the call returns
  /// false and keeps the fresh cold-start state, which *is* the fallback
  /// retranslation (the constructor already classified and translated).
  /// Quiescent point only (no invoke in flight).
  bool adoptWarmState(ClassifiedModule WarmClasses, TranslatedModule WarmTrans,
                      Profile WarmProf);

  /// The lock guarding all SOLERO-mode guest regions (its adaptive
  /// controller is part of the warm image).
  SoleroLock &soleroLock() { return Solero; }

  /// Allocates a zeroed guest object (for test/bench setup and NewObject).
  GuestObject *allocateObject();

  /// Allocates a zeroed guest integer array of \p Len elements.
  GuestArray *allocateArray(int64_t Len);

  const Module &module() const { return Mod; }
  const ClassifiedModule &classification() const { return Classes; }
  const Profile &profile() const { return Prof; }
  /// The pre-decoded program (empty in Reference mode).
  const TranslatedModule &translated() const { return Trans; }

  /// True when the build dispatches the translated stream with computed
  /// goto; false when DispatchMode::Threaded falls back to a pre-decoded
  /// switch loop.
  static bool threadedDispatchAvailable();

  int64_t staticCell(uint32_t Idx) const { return Statics[Idx].read(); }
  void setStaticCell(uint32_t Idx, int64_t V) { Statics[Idx].write(V); }

private:
  /// Guest call depth bound (StackOverflow beyond); together with the
  /// verifier's per-method frame bounds it sizes the call arena.
  static constexpr int MaxCallDepth = 200;

  /// Per-top-level-invoke execution context (thread-owned). Frames are
  /// bump-allocated from a contiguous arena leased for the duration of
  /// the invoke; the intent/monitor stacks live alongside it.
  struct ExecCtx {
    uint64_t PollsLeft = 0;
    int Depth = 0;
    /// Bump pointer into the leased frame arena.
    Value *ArenaTop = nullptr;
    /// Innermost-last stack of active read-mostly upgrade handles.
    std::vector<WriteIntent *> *Intents = nullptr;
    /// Innermost-last stack of held writing-region monitors (for guest
    /// Object.wait / notify in SOLERO mode).
    std::vector<std::pair<ObjectHeader *, SoleroLock::MonitorHandle *>>
        *Monitors = nullptr;
  };

  /// An activation record inside the arena: locals at [Locals,
  /// Locals+NumLocals), operand stack from there up to the verifier-proven
  /// bound. \c Sp is authoritative only at engine boundaries (region
  /// entry/exit, return); inside a dispatch loop it lives in a register.
  struct Frame {
    uint32_t MethodId;
    Value *Locals;
    Value *Sp;
  };

  /// Verifier facts the engines need per method.
  struct MethodFacts {
    uint32_t NumParams = 0;
    uint32_t NumLocals = 0;
    uint32_t FrameSlots = 0; ///< NumLocals + verifier MaxStack
  };

  /// Fast region lookup for the reference engine:
  /// (method, SyncEnter pc) -> classified region.
  struct RegionEntry {
    uint32_t ExitPc;
    RegionKind Kind;
  };

  // --- Reference (switch) engine -----------------------------------------
  Value execMethod(ExecCtx &EC, uint32_t Id, const Value *Args);
  template <bool Profiling>
  std::optional<Value> execRange(ExecCtx &EC, Frame &F, uint32_t Pc,
                                 uint32_t End);
  std::optional<Value> execRegion(ExecCtx &EC, Frame &F, uint32_t EnterPc,
                                  GuestObject *Obj);

  // --- Threaded (pre-decoded) engine -------------------------------------
  Value execMethodThreaded(ExecCtx &EC, uint32_t Id, const Value *Args);
  std::optional<Value> execThreaded(ExecCtx &EC, Frame &F, uint32_t Pc);
  std::optional<Value> execRegionThreaded(ExecCtx &EC, Frame &F,
                                          uint32_t BodyPc, RegionKind Kind,
                                          GuestObject *Obj);

  // --- Shared pieces ------------------------------------------------------
  /// Runs \p Body under the lock protocol \p Kind selects (or the
  /// conventional protocol in baseline mode).
  template <typename BodyFn>
  std::optional<Value> runRegion(ExecCtx &EC, RegionKind Kind,
                                 GuestObject *Obj, BodyFn &&Body);
  /// Guest Object.wait / notify / notifyAll.
  void monitorOp(ExecCtx &EC, GuestObject *Obj, Opcode Op);
  const RegionEntry &regionAt(uint32_t MethodId, uint32_t EnterPc) const;
  void rebuildRegionTables();
  void retranslate();
  /// Structural validation of a warm-image translated stream against this
  /// module's verifier facts (adoptWarmState's gate).
  bool validateWarmTranslation(const TranslatedModule &T) const;
  /// Called before any write or side effect: upgrades the innermost
  /// read-mostly section if one is active (Figure 17).
  void beforeWriteEffect(ExecCtx &EC) {
    if (!EC.Intents->empty())
      EC.Intents->back()->acquireForWrite();
  }

  RuntimeContext &Ctx;
  Module Mod;
  Options Opts;
  SoleroLock Solero;
  TasukiLock Conventional;
  ClassifiedModule Classes;
  TranslatedModule Trans;
  Profile Prof;
  std::vector<MethodFacts> Facts;
  /// Arena slots one top-level invoke can need: MaxCallDepth frames of the
  /// largest verifier-proven frame shape.
  std::size_t ArenaSlots = 0;
  // RegionTables[Method] maps EnterPc -> entry (dense by code index).
  std::vector<std::vector<std::optional<RegionEntry>>> RegionTables;
  std::unique_ptr<SharedField<int64_t>[]> Statics;
  TypeStablePool<GuestObject> Heap;
  std::mutex ArraysMu;
  std::vector<std::unique_ptr<GuestArray>> Arrays;
};

} // namespace jit
} // namespace solero

#endif // SOLERO_JIT_INTERPRETER_H

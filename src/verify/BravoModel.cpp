//===- verify/BravoModel.cpp - BRAVO biased rwlock protocol model ---------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
//
// Miniature of src/locks/BravoRwLock at the granularity of its shared
// accesses (Dice & Kogan's BRAVO). Shared variables: the RBias flag, one
// visible-reader slot per reader thread, an underlying reader-writer lock
// cell ULOCK (low bits = reader count, bit 7 = writer), and the payload
// pair X/Y the writer updates inside its critical section.
//
// Reader fast path: publish the slot with a plain store, seq_cst fence,
// recheck RBias; if the bias was revoked meanwhile, withdraw the slot and
// take the underlying lock. Writer: acquire the underlying lock, clear
// RBias, seq_cst fence, then scan the slots and wait for each to drain.
// The two fences are a Dekker pairing: each side publishes its flag before
// reading the other's. NoRevocationFence drops the writer-side fence — the
// seeded bug. Under TSO the writer's RBias clear can sit in its store
// buffer while it scans stale zero slots, and the reader's recheck can
// still read RBias == 1 from memory, so both enter the critical section:
// the checker reports the overlap (and the torn read it permits). Under SC
// stores are immediately visible and the variant still passes — the
// SC-vs-TSO divergence is exactly why the checker has a TSO mode.
//
// Oracles: no reader/writer critical-section overlap; a completed read
// section never observed X != Y.
//
//===----------------------------------------------------------------------===//

#include "verify/Models.h"

#include "support/Assert.h"

using namespace solero;
using namespace solero::verify;

namespace {

// Shared variables.
enum : unsigned { VRBias = 0, VSlot0 = 1, VSlot1 = 2, VULock = 3, VX = 4,
                  VY = 5 };

enum : uint8_t { WriterBit = 0x80 };

// Locals.
enum : unsigned { LLx = 0, LLy = 1 };

// Reader program counters.
enum : uint8_t {
  PcRdBias = 0,
  PcRdPub,
  PcRdFence,
  PcRdRecheck,
  PcRdX,
  PcRdY,
  PcRdUnpub,
  PcRdWithdraw,
  PcRdUAcq,
  PcRdUX,
  PcRdUY,
  PcRdURel,
  PcRdDone
};

// Writer program counters (distinct thread, so the namespace is separate).
enum : uint8_t {
  PcWrUAcq = 0,
  PcWrBiasLoad,
  PcWrBiasClear,
  PcWrFence,
  PcWrScan0,
  PcWrScan1,
  PcWrX,
  PcWrY,
  PcWrRel,
  PcWrDone
};

class BravoModel : public ProtocolModel {
public:
  explicit BravoModel(BravoModelConfig C) : Cfg(C) {
    SOLERO_CHECK(Cfg.Readers >= 1 && Cfg.Readers <= 2,
                 "bravo model supports 1 or 2 readers");
  }

  const char *name() const override { return "bravo"; }

  unsigned threads() const override { return Cfg.Readers + 1; }

  void init(McState &S) const override {
    S.Mem[VRBias] = 1; // bias granted: the interesting regime
  }

  bool step(McState &S, unsigned Tid, Mach &M,
            const char **Label) const override {
    if (Tid < Cfg.Readers)
      return readerStep(S, Tid, M, Label);
    return writerStep(S, Tid, M, Label);
  }

  bool done(const McState &S, unsigned Tid) const override {
    return S.Pc[Tid] ==
           (Tid < Cfg.Readers ? uint8_t(PcRdDone) : uint8_t(PcWrDone));
  }

  const char *invariant(const McState &S) const override {
    bool ReaderInCs = false;
    for (unsigned T = 0; T < Cfg.Readers; ++T) {
      uint8_t Pc = S.Pc[T];
      ReaderInCs |= (Pc >= PcRdX && Pc <= PcRdUnpub) ||
                    (Pc >= PcRdUX && Pc <= PcRdURel);
    }
    uint8_t WPc = S.Pc[Cfg.Readers];
    bool WriterInCs = WPc >= PcWrX && WPc <= PcWrRel;
    if (ReaderInCs && WriterInCs)
      return "bias revocation unsafe: a reader and the writer are inside "
             "the critical section together";
    for (unsigned T = 0; T < Cfg.Readers; ++T)
      if (S.Pc[T] == PcRdDone && S.Local[T][LLx] != S.Local[T][LLy])
        return "read section observed a torn write (X != Y)";
    return nullptr;
  }

  std::string renderState(const McState &S) const override {
    char B[64];
    std::snprintf(B, sizeof(B), "rbias=%u slots=%u,%u ulock=%02x x=%u y=%u pc=",
                  S.Mem[VRBias], S.Mem[VSlot0], S.Mem[VSlot1], S.Mem[VULock],
                  S.Mem[VX], S.Mem[VY]);
    std::string Out = B;
    for (unsigned T = 0; T < threads(); ++T) {
      std::snprintf(B, sizeof(B), "%s%u", T ? "," : "", S.Pc[T]);
      Out += B;
    }
    return Out + renderBufs(S, threads());
  }

private:
  bool readerStep(McState &S, unsigned Tid, Mach &M,
                  const char **Label) const {
    const unsigned Slot = VSlot0 + Tid;
    uint8_t *L = S.Local[Tid];
    uint8_t &Pc = S.Pc[Tid];
    switch (Pc) {
    case PcRdBias: {
      *Label = "r.bias-load";
      Pc = M.load(VRBias) != 0 ? PcRdPub : PcRdUAcq;
      return true;
    }
    case PcRdPub: {
      *Label = "r.publish";
      if (!M.store(Slot, 1))
        return false;
      Pc = PcRdFence;
      return true;
    }
    case PcRdFence: {
      *Label = "r.fence";
      if (!M.fence())
        return false;
      Pc = PcRdRecheck;
      return true;
    }
    case PcRdRecheck: {
      *Label = "r.recheck";
      Pc = M.load(VRBias) != 0 ? PcRdX : PcRdWithdraw;
      return true;
    }
    case PcRdX: {
      *Label = "r.load-x";
      L[LLx] = M.load(VX);
      Pc = PcRdY;
      return true;
    }
    case PcRdY: {
      *Label = "r.load-y";
      L[LLy] = M.load(VY);
      Pc = PcRdUnpub;
      return true;
    }
    case PcRdUnpub: {
      *Label = "r.unpublish";
      if (!M.store(Slot, 0))
        return false;
      Pc = PcRdDone;
      return true;
    }
    case PcRdWithdraw: {
      *Label = "r.withdraw";
      if (!M.store(Slot, 0))
        return false;
      Pc = PcRdUAcq;
      return true;
    }
    case PcRdUAcq: {
      // Atomic conditional increment (the real slow path is a CAS loop);
      // blocked while the writer bit is set.
      *Label = "r.underlying-acq";
      if (!M.rmwReady())
        return false;
      if ((M.load(VULock) & WriterBit) != 0)
        return false;
      M.rmwAdd(VULock, 1);
      Pc = PcRdUX;
      return true;
    }
    case PcRdUX: {
      *Label = "r.load-x";
      L[LLx] = M.load(VX);
      Pc = PcRdUY;
      return true;
    }
    case PcRdUY: {
      *Label = "r.load-y";
      L[LLy] = M.load(VY);
      Pc = PcRdURel;
      return true;
    }
    case PcRdURel: {
      *Label = "r.underlying-rel";
      if (!M.rmwReady())
        return false;
      M.rmwAdd(VULock, -1);
      Pc = PcRdDone;
      return true;
    }
    default:
      *Label = "done";
      return false;
    }
  }

  bool writerStep(McState &S, unsigned Tid, Mach &M,
                  const char **Label) const {
    uint8_t &Pc = S.Pc[Tid];
    switch (Pc) {
    case PcWrUAcq: {
      // Guarded CAS: blocked while any reader holds the underlying lock.
      *Label = "w.underlying-acq";
      if (!M.rmwReady())
        return false;
      if (!M.cas(VULock, 0, WriterBit))
        return false;
      Pc = PcWrBiasLoad;
      return true;
    }
    case PcWrBiasLoad: {
      *Label = "w.bias-load";
      Pc = M.load(VRBias) != 0 ? PcWrBiasClear : PcWrX;
      return true;
    }
    case PcWrBiasClear: {
      *Label = "w.bias-clear";
      if (!M.store(VRBias, 0))
        return false;
      Pc = Cfg.NoRevocationFence ? PcWrScan0 : PcWrFence;
      return true;
    }
    case PcWrFence: {
      *Label = "w.fence";
      if (!M.fence())
        return false;
      Pc = PcWrScan0;
      return true;
    }
    case PcWrScan0: {
      *Label = "w.scan-slot0";
      if (M.load(VSlot0) != 0)
        return false; // spin until the visible reader drains
      Pc = Cfg.Readers > 1 ? PcWrScan1 : PcWrX;
      return true;
    }
    case PcWrScan1: {
      *Label = "w.scan-slot1";
      if (M.load(VSlot1) != 0)
        return false;
      Pc = PcWrX;
      return true;
    }
    case PcWrX: {
      *Label = "w.store-x";
      if (!M.store(VX, 1))
        return false;
      Pc = PcWrY;
      return true;
    }
    case PcWrY: {
      *Label = "w.store-y";
      if (!M.store(VY, 1))
        return false;
      Pc = PcWrRel;
      return true;
    }
    case PcWrRel: {
      *Label = "w.underlying-rel";
      if (!M.rmwReady())
        return false;
      M.cas(VULock, WriterBit, 0);
      Pc = PcWrDone;
      return true;
    }
    default:
      *Label = "done";
      return false;
    }
  }

  BravoModelConfig Cfg;
};

} // namespace

std::unique_ptr<ProtocolModel>
solero::verify::makeBravoModel(BravoModelConfig C) {
  return std::make_unique<BravoModel>(C);
}

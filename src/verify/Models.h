//===- verify/Models.h - Protocol model factories ---------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factories for the shipped protocol models and their seeded-bug variants.
/// Each model is a faithful miniature of the corresponding runtime
/// implementation, at the atomicity granularity of the real code's shared
/// accesses; DESIGN.md §18 documents the abstraction map and its soundness
/// caveats.
///
/// Seeded-bug variants (the regression gates for the checker itself):
///   - SoleroModelConfig::BlindStoreRelease / TasukiModelConfig::
///     BlindStoreRelease: re-introduce the pre-PR-3 release race where the
///     owner publishes the free word with a blind store, clobbering a
///     concurrently set flat-lock-contention bit — the parked contender is
///     never notified (lost wakeup, reported as a model deadlock).
///   - BravoModelConfig::NoRevocationFence: drop the writer-side seq_cst
///     fence between clearing RBias and scanning visible-reader slots.
///     Under TSO the writer's clear and the reader's slot publish can both
///     sit in store buffers, each side reads the other's stale value, and
///     reader + writer end up inside the critical section together. Under
///     SC the variant still passes — the divergence is the point.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_VERIFY_MODELS_H
#define SOLERO_VERIFY_MODELS_H

#include <memory>

#include "verify/Mc.h"

namespace solero {
namespace verify {

/// SOLERO lock-word protocol (paper Figs. 5-9): two writers plus one
/// read-only thread that attempts a speculative (elided) read section with
/// the §3.4 entry fence and version validation, falling back to a real
/// acquire after a failure. Oracles: writer mutual exclusion, validated
/// reads are untorn, no lost wakeup (terminal-state check).
struct SoleroModelConfig {
  unsigned Writers = 2; ///< 1 or 2 writer threads, one section each
  bool Reader = true;   ///< add the speculative-reader thread
  bool BlindStoreRelease = false; ///< seeded PR-3 release race
};
std::unique_ptr<ProtocolModel> makeSoleroModel(SoleroModelConfig C = {});

/// Tasuki flat lock with FLC-bit contention handoff and inflation: a
/// contender that parked at least once inflates the free word to a fat
/// monitor before re-acquiring, and later threads take the fat path.
/// Oracles: mutual exclusion across flat and fat holders, no lost wakeup.
struct TasukiModelConfig {
  unsigned Threads = 2; ///< 2 or 3 writer threads, one section each
  bool BlindStoreRelease = false; ///< seeded PR-3 release race
};
std::unique_ptr<ProtocolModel> makeTasukiModel(TasukiModelConfig C = {});

/// BRAVO biased reader-writer lock: readers publish a visible-reader slot,
/// fence, recheck the bias; the writer clears the bias, fences, scans the
/// slots (the Dekker pairing), with an underlying reader-count lock as the
/// slow path. Oracles: no reader/writer critical-section overlap, reads
/// are untorn.
struct BravoModelConfig {
  unsigned Readers = 2; ///< 1 or 2 reader threads (plus one writer)
  bool NoRevocationFence = false; ///< seeded missing revocation fence
};
std::unique_ptr<ProtocolModel> makeBravoModel(BravoModelConfig C = {});

/// Textbook Dekker / store-buffering litmus (SB): two threads each store
/// their flag then read the other's; both may enter the critical section
/// only if both loads returned zero. Passes under SC, violates mutual
/// exclusion under TSO unless each thread fences between store and load.
/// ModelCheckerTest uses it to pin the SC-vs-TSO divergence of the
/// substrate itself.
struct DekkerModelConfig {
  bool Fences = true; ///< seq_cst fence between flag store and flag load
};
std::unique_ptr<ProtocolModel> makeDekkerModel(DekkerModelConfig C = {});

} // namespace verify
} // namespace solero

#endif // SOLERO_VERIFY_MODELS_H

//===- verify/TasukiModel.cpp - Tasuki flat/inflated lock model -----------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
//
// Miniature of src/locks/TasukiLock at the granularity of its shared
// accesses. The modeled word packs:
//
//   bit 0    INFL  (inflated: a fat monitor owns the lock word forever)
//   bit 1    FLC   (flat-lock-contention)
//   bits 2-3 owner (tid + 1 while flat-held; 0 when free or inflated)
//
// The flat path is CAS 0 -> held, CS stores, then the release CAS that
// detects a concurrently set FLC bit and falls back to store-0 + notify
// (BlindStoreRelease re-seeds the PR-3 race: the release publishes 0 with
// a blind store from a stale decision, losing the FLC bit and the parked
// contender's wakeup — reported as a model deadlock).
//
// The Tasuki handoff is modeled faithfully: a contender that parked at
// least once inflates the *free* word to INFL with a CAS before
// re-acquiring, after which everyone contends on the fat owner cell
// FATOWN (acquisition is a guarded CAS, i.e. blocked while another thread
// owns it — the monitor queue abstracted to enabledness). Parking uses
// the same SIG generation-counter scheme as the SOLERO model, with the
// park-arm word-recheck folded into one atomic action because the real
// runtime holds the OsMonitor mutex across both (DESIGN.md §18).
//
// Oracle: at most one thread inside a critical section, counting flat and
// fat holders together; lost wakeups surface as terminal-state deadlocks.
//
//===----------------------------------------------------------------------===//

#include "verify/Models.h"

#include "support/Assert.h"

using namespace solero;
using namespace solero::verify;

namespace {

// Shared variables.
enum : unsigned { VWord = 0, VX = 1, VY = 2, VSig = 3, VFatOwn = 4 };

// Word bits.
enum : uint8_t { InflBit = 0x1, FlcBit = 0x2 };

// Locals.
enum : unsigned { LV = 0, LGen = 1, LWoken = 2 };

enum : uint8_t {
  PcEnterLoad = 0,
  PcEnterCas,
  PcCs1,
  PcCs2,
  PcRelLoad,
  PcReleaseCas,
  PcBlindStore,
  PcSlowStore,
  PcNotify,
  PcContendLoad,
  PcFlcCas,
  PcParkArm,
  PcParked,
  PcInflateCas,
  PcFatAcq,
  PcFatCs1,
  PcFatCs2,
  PcFatRelease,
  PcDone
};

uint8_t flatHeld(unsigned Tid) { return static_cast<uint8_t>((Tid + 1) << 2); }
bool flatHeldByOther(uint8_t W, unsigned Tid) {
  return (W & InflBit) == 0 && (W >> 2 & 0x3) != 0 &&
         (W >> 2 & 0x3) != Tid + 1;
}

class TasukiModel : public ProtocolModel {
public:
  explicit TasukiModel(TasukiModelConfig C) : Cfg(C) {
    SOLERO_CHECK(Cfg.Threads >= 2 && Cfg.Threads <= McMaxThreads,
                 "tasuki model supports 2 or 3 threads");
  }

  const char *name() const override { return "tasuki"; }

  unsigned threads() const override { return Cfg.Threads; }

  void init(McState &S) const override { (void)S; }

  bool step(McState &S, unsigned Tid, Mach &M,
            const char **Label) const override {
    uint8_t *L = S.Local[Tid];
    uint8_t &Pc = S.Pc[Tid];
    switch (Pc) {
    case PcEnterLoad: {
      *Label = "enter.load";
      uint8_t V = M.load(VWord);
      if (V == 0)
        Pc = L[LWoken] != 0 ? PcInflateCas : PcEnterCas;
      else if ((V & InflBit) != 0)
        Pc = PcFatAcq;
      else
        Pc = PcContendLoad;
      return true;
    }
    case PcEnterCas: {
      *Label = "enter.cas";
      if (!M.rmwReady())
        return false;
      Pc = M.cas(VWord, 0, flatHeld(Tid)) ? PcCs1 : PcEnterLoad;
      return true;
    }
    case PcCs1: {
      *Label = "cs.store-x";
      if (!M.store(VX, static_cast<uint8_t>(Tid + 1)))
        return false;
      Pc = PcCs2;
      return true;
    }
    case PcCs2: {
      *Label = "cs.store-y";
      if (!M.store(VY, static_cast<uint8_t>(Tid + 1)))
        return false;
      Pc = PcRelLoad;
      return true;
    }
    case PcRelLoad: {
      *Label = "rel.load";
      uint8_t V = M.load(VWord);
      L[LV] = V;
      if (Cfg.BlindStoreRelease)
        Pc = (V & FlcBit) != 0 ? PcSlowStore : PcBlindStore;
      else
        Pc = V == flatHeld(Tid) ? PcReleaseCas : PcSlowStore;
      return true;
    }
    case PcReleaseCas: {
      *Label = "rel.cas";
      if (!M.rmwReady())
        return false;
      Pc = M.cas(VWord, flatHeld(Tid), 0) ? PcDone : PcSlowStore;
      return true;
    }
    case PcBlindStore: {
      *Label = "rel.blind-store";
      if (!M.store(VWord, 0))
        return false;
      Pc = PcDone;
      return true;
    }
    case PcSlowStore: {
      *Label = "rel.slow-store";
      if (!M.store(VWord, 0))
        return false;
      Pc = PcNotify;
      return true;
    }
    case PcNotify: {
      *Label = "rel.notify";
      if (!M.rmwReady())
        return false;
      M.rmwAdd(VSig, 1);
      Pc = PcDone;
      return true;
    }
    case PcContendLoad: {
      *Label = "flc.load";
      uint8_t V = M.load(VWord);
      if (flatHeldByOther(V, Tid)) {
        L[LV] = V;
        Pc = (V & FlcBit) != 0 ? PcParkArm : PcFlcCas;
      } else {
        Pc = PcEnterLoad;
      }
      return true;
    }
    case PcFlcCas: {
      *Label = "flc.cas";
      if (!M.rmwReady())
        return false;
      Pc = M.cas(VWord, L[LV], L[LV] | FlcBit) ? PcParkArm : PcContendLoad;
      return true;
    }
    case PcParkArm: {
      *Label = "park.arm";
      uint8_t V = M.load(VWord);
      if (flatHeldByOther(V, Tid) && (V & FlcBit) != 0) {
        L[LGen] = M.load(VSig);
        Pc = PcParked;
      } else if (flatHeldByOther(V, Tid)) {
        L[LV] = V;
        Pc = PcFlcCas;
      } else {
        Pc = PcEnterLoad;
      }
      return true;
    }
    case PcParked: {
      *Label = "park.wake";
      if (M.load(VSig) == L[LGen])
        return false;
      L[LWoken] = 1; // a woken contender inflates before re-acquiring
      Pc = PcEnterLoad;
      return true;
    }
    case PcInflateCas: {
      *Label = "inflate.cas";
      if (!M.rmwReady())
        return false;
      Pc = M.cas(VWord, 0, InflBit) ? PcFatAcq : PcEnterLoad;
      return true;
    }
    case PcFatAcq: {
      // Guarded CAS: enabled only while the fat owner cell is free (the
      // monitor's queue is abstracted into scheduler enabledness).
      *Label = "fat.acquire";
      if (!M.rmwReady())
        return false;
      if (!M.cas(VFatOwn, 0, static_cast<uint8_t>(Tid + 1)))
        return false;
      Pc = PcFatCs1;
      return true;
    }
    case PcFatCs1: {
      *Label = "fat.store-x";
      if (!M.store(VX, static_cast<uint8_t>(Tid + 1)))
        return false;
      Pc = PcFatCs2;
      return true;
    }
    case PcFatCs2: {
      *Label = "fat.store-y";
      if (!M.store(VY, static_cast<uint8_t>(Tid + 1)))
        return false;
      Pc = PcFatRelease;
      return true;
    }
    case PcFatRelease: {
      *Label = "fat.release";
      if (!M.store(VFatOwn, 0))
        return false;
      Pc = PcDone;
      return true;
    }
    default:
      *Label = "done";
      return false;
    }
  }

  bool done(const McState &S, unsigned Tid) const override {
    return S.Pc[Tid] == PcDone;
  }

  const char *invariant(const McState &S) const override {
    unsigned InCs = 0;
    for (unsigned T = 0; T < threads(); ++T) {
      uint8_t Pc = S.Pc[T];
      if ((Pc >= PcCs1 && Pc <= PcSlowStore) ||
          (Pc >= PcFatCs1 && Pc <= PcFatRelease))
        ++InCs;
    }
    if (InCs > 1)
      return "mutual exclusion violated: two threads inside the critical "
             "section (flat/fat holders counted together)";
    return nullptr;
  }

  std::string renderState(const McState &S) const override {
    char B[64];
    std::snprintf(B, sizeof(B), "word=%02x fat=%u x=%u y=%u sig=%u pc=",
                  S.Mem[VWord], S.Mem[VFatOwn], S.Mem[VX], S.Mem[VY],
                  S.Mem[VSig]);
    std::string Out = B;
    for (unsigned T = 0; T < threads(); ++T) {
      std::snprintf(B, sizeof(B), "%s%u", T ? "," : "", S.Pc[T]);
      Out += B;
    }
    return Out + renderBufs(S, threads());
  }

private:
  TasukiModelConfig Cfg;
};

} // namespace

std::unique_ptr<ProtocolModel>
solero::verify::makeTasukiModel(TasukiModelConfig C) {
  return std::make_unique<TasukiModel>(C);
}

//===- verify/Trace.h - Counterexample trace rendering ----------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic rendering of checker results: a one-line summary per run
/// and, for violations, the minimized counterexample replayed step by step
/// with the model's shared-state annotation after every action. Shared by
/// `bench/model_check` and ModelCheckerTest (which golden-diffs the
/// blind-store FLC trace against an embedded expected string).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_VERIFY_TRACE_H
#define SOLERO_VERIFY_TRACE_H

#include <string>

#include "verify/Checker.h"
#include "verify/Mc.h"

namespace solero {
namespace verify {

/// `model=<name> mem=<SC|TSO> variant=<v>: PASS states=... transitions=...
/// depth=...` (or VIOLATION/INCOMPLETE). No timing — byte-identical across
/// runs, so CI can `cmp` two invocations.
std::string renderSummary(const ProtocolModel &M, const char *Variant,
                          const CheckConfig &C, const CheckResult &R);

/// Full counterexample: header with the broken oracle, then one line per
/// scheduled action (`step N Tx <label> | <state>`), replayed from the
/// model's initial state. Returns an empty string when R passed.
std::string renderTrace(const ProtocolModel &M, const CheckConfig &C,
                        const CheckResult &R);

} // namespace verify
} // namespace solero

#endif // SOLERO_VERIFY_TRACE_H

//===- verify/Checker.cpp - Exhaustive explicit-state exploration ---------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "verify/Checker.h"

#include <unordered_map>

#include "support/Assert.h"

using namespace solero;
using namespace solero::verify;

const char *const solero::verify::FlushLabel = "tso.flush";
const char *const solero::verify::DeadlockViolation =
    "lost wakeup: unfinished threads are blocked forever "
    "(no enabled transition and no pending signal)";

namespace {

/// Transition ids: [0, threads) are program steps, [McMaxThreads,
/// McMaxThreads + threads) are store-buffer flushes. Fits a uint8_t mask.
constexpr unsigned MaxTrans = 2 * McMaxThreads;

struct Succ {
  McState Next;
  uint8_t Id;
  uint8_t Tid;
  bool Flush;
  const char *Label;
  uint16_t Reads;
  uint16_t Writes;
};

struct StateHash {
  size_t operator()(const McState &S) const {
    return static_cast<size_t>(S.hash());
  }
};

/// Enumerates every enabled transition of \p S in deterministic order
/// (program steps by tid, then flushes by tid). Returns the count.
unsigned enumerate(const ProtocolModel &M, MemSemantics Sem, const McState &S,
                   Succ Out[MaxTrans]) {
  unsigned N = 0;
  for (unsigned Tid = 0; Tid < M.threads(); ++Tid) {
    if (M.done(S, Tid))
      continue;
    Succ &O = Out[N];
    O.Next = S;
    Mach Mc(O.Next, Tid, Sem);
    const char *Label = "?";
    if (!M.step(O.Next, Tid, Mc, &Label))
      continue; // disabled here (guard or TSO buffer constraint)
    O.Id = static_cast<uint8_t>(Tid);
    O.Tid = static_cast<uint8_t>(Tid);
    O.Flush = false;
    O.Label = Label;
    O.Reads = Mc.readMask();
    O.Writes = Mc.writeMask();
    ++N;
  }
  if (Sem == MemSemantics::TSO) {
    for (unsigned Tid = 0; Tid < M.threads(); ++Tid) {
      if (S.BufLen[Tid] == 0)
        continue;
      Succ &O = Out[N];
      O.Next = S;
      uint8_t Var = O.Next.BufVar[Tid][0];
      applyFlush(O.Next, Tid);
      O.Id = static_cast<uint8_t>(McMaxThreads + Tid);
      O.Tid = static_cast<uint8_t>(Tid);
      O.Flush = true;
      O.Label = FlushLabel;
      O.Reads = 0;
      O.Writes = static_cast<uint16_t>(1u << Var);
      ++N;
    }
  }
  return N;
}

bool allDone(const ProtocolModel &M, const McState &S) {
  for (unsigned Tid = 0; Tid < M.threads(); ++Tid)
    if (!M.done(S, Tid))
      return false;
  return true;
}

/// Footprint independence: distinct threads whose write sets touch
/// neither the other's reads nor writes. Conservative under TSO (a
/// buffered store already counts as a write of its variable), which can
/// only shrink the reduction, never unsoundly grow it.
bool independent(const Succ &A, const Succ &B) {
  if (A.Tid == B.Tid)
    return false;
  return (A.Writes & (B.Reads | B.Writes)) == 0 &&
         (B.Writes & (A.Reads | A.Writes)) == 0;
}

/// Visited-state book-keeping for DFS + sleep sets + depth bound. A state
/// may be skipped only when it was already explored with a sleep set no
/// larger than the current one (so at least as many transitions were
/// followed) and with at least as much remaining depth.
struct VisitEntry {
  uint8_t Sleep;
  uint32_t Remaining;
};

class VisitedMap {
public:
  bool covers(const McState &S, uint8_t Sleep, uint32_t Remaining) const {
    auto It = Map.find(S);
    if (It == Map.end())
      return false;
    for (const VisitEntry &E : It->second)
      if ((E.Sleep & ~Sleep) == 0 && E.Remaining >= Remaining)
        return true;
    return false;
  }

  void insert(const McState &S, uint8_t Sleep, uint32_t Remaining) {
    std::vector<VisitEntry> &Es = Map[S];
    // Drop entries the new one dominates (larger sleep, shallower reach).
    std::size_t Keep = 0;
    for (std::size_t I = 0; I < Es.size(); ++I)
      if (!((Sleep & ~Es[I].Sleep) == 0 && Remaining >= Es[I].Remaining))
        Es[Keep++] = Es[I];
    Es.resize(Keep);
    Es.push_back({Sleep, Remaining});
  }

  std::size_t size() const { return Map.size(); }

private:
  std::unordered_map<McState, std::vector<VisitEntry>, StateHash> Map;
};

struct Frame {
  McState S;
  Succ Succs[MaxTrans];
  uint8_t N = 0;
  uint8_t Next = 0;     ///< index of the next successor to try
  uint8_t Sleep = 0;    ///< transition ids promised to be covered elsewhere
  uint8_t Explored = 0; ///< ids already followed from this frame
  uint8_t ChosenIdx = 0xff; ///< successor currently being descended into
};

/// BFS over the full (unreduced) graph for the shortest path to any
/// violating state. Used only after DFS has already proven a violation
/// exists, so the graph is known to contain one within the valve.
bool minimize(const ProtocolModel &M, const CheckConfig &C, CheckResult &R) {
  struct Node {
    McState S;
    uint32_t Parent;
    uint8_t Tid;
    bool Flush;
    const char *Label;
  };
  std::vector<Node> Nodes;
  std::unordered_map<McState, uint32_t, StateHash> Seen;
  McState Init;
  Init.clear();
  M.init(Init);
  Nodes.push_back({Init, 0xffffffffu, 0, false, nullptr});
  Seen.emplace(Init, 0);

  uint64_t Budget = C.MaxTransitions;
  auto Violates = [&](const McState &S) -> const char * {
    if (const char *Why = M.invariant(S))
      return Why;
    Succ Tmp[MaxTrans];
    if (enumerate(M, C.Mem, S, Tmp) == 0 && !allDone(M, S))
      return DeadlockViolation;
    return nullptr;
  };

  for (uint32_t Head = 0; Head < Nodes.size(); ++Head) {
    // Nodes is only appended to inside this loop, so the index is stable.
    McState S = Nodes[Head].S;
    if (const char *Why = Violates(S)) {
      R.ViolationKind = Why;
      std::vector<TraceStep> Rev;
      for (uint32_t I = Head; Nodes[I].Parent != 0xffffffffu;
           I = Nodes[I].Parent)
        Rev.push_back({Nodes[I].Tid, Nodes[I].Flush, Nodes[I].Label});
      R.Trace.assign(Rev.rbegin(), Rev.rend());
      return true;
    }
    Succ Succs[MaxTrans];
    unsigned N = enumerate(M, C.Mem, S, Succs);
    for (unsigned I = 0; I < N; ++I) {
      if (Budget-- == 0)
        return false;
      auto [It, Fresh] =
          Seen.emplace(Succs[I].Next, static_cast<uint32_t>(Nodes.size()));
      if (!Fresh)
        continue;
      Nodes.push_back(
          {Succs[I].Next, Head, Succs[I].Tid, Succs[I].Flush, Succs[I].Label});
    }
  }
  return false;
}

} // namespace

bool solero::verify::applyFlush(McState &S, unsigned Tid) {
  if (S.BufLen[Tid] == 0)
    return false;
  S.Mem[S.BufVar[Tid][0]] = S.BufVal[Tid][0];
  for (unsigned I = 1; I < S.BufLen[Tid]; ++I) {
    S.BufVar[Tid][I - 1] = S.BufVar[Tid][I];
    S.BufVal[Tid][I - 1] = S.BufVal[Tid][I];
  }
  --S.BufLen[Tid];
  S.BufVar[Tid][S.BufLen[Tid]] = 0;
  S.BufVal[Tid][S.BufLen[Tid]] = 0;
  return true;
}

CheckResult solero::verify::checkModel(const ProtocolModel &M,
                                       const CheckConfig &C) {
  SOLERO_CHECK(M.threads() <= McMaxThreads, "model exceeds thread capacity");
  CheckResult R;
  VisitedMap Visited;
  std::vector<Frame> Stack;
  Stack.reserve(256);

  const uint32_t Bound = C.DepthBound == 0 ? 0xffffffffu : C.DepthBound;
  uint64_t Budget = C.MaxTransitions;
  bool Truncated = false;

  auto Push = [&](const McState &S, uint8_t Sleep,
                  uint32_t Remaining) -> bool {
    // Returns true when a violation was found at S (caller unwinds).
    if (Visited.covers(S, Sleep, Remaining))
      return false;
    Visited.insert(S, Sleep, Remaining);
    ++R.StatesVisited;
    uint32_t Depth = static_cast<uint32_t>(Stack.size());
    if (Depth > R.MaxDepth)
      R.MaxDepth = Depth;

    if (const char *Why = M.invariant(S)) {
      R.V = Verdict::Violation;
      R.ViolationKind = Why;
      return true;
    }
    Frame F;
    F.S = S;
    F.N = static_cast<uint8_t>(enumerate(M, C.Mem, S, F.Succs));
    F.Sleep = Sleep;
    if (F.N == 0) {
      if (!allDone(M, S)) {
        R.V = Verdict::Violation;
        R.ViolationKind = DeadlockViolation;
        return true;
      }
      return false; // clean terminal state
    }
    if (Remaining == 0) {
      Truncated = true; // depth bound: subtree unexplored
      return false;
    }
    Stack.push_back(F);
    return false;
  };

  McState Init;
  Init.clear();
  M.init(Init);
  if (Push(Init, 0, Bound)) {
    R.Trace.clear(); // violation in the initial state: empty schedule
    return R;
  }

  while (!Stack.empty() && R.V == Verdict::Pass) {
    Frame &F = Stack.back();
    unsigned I = F.Next;
    // Skip successors promised to be explored on a sibling branch.
    while (I < F.N && C.SleepSets && (F.Sleep & (1u << F.Succs[I].Id)) != 0)
      ++I;
    if (I >= F.N) {
      Stack.pop_back();
      continue;
    }
    F.Next = static_cast<uint8_t>(I + 1);
    F.ChosenIdx = static_cast<uint8_t>(I);
    const Succ &T = F.Succs[I];

    if (Budget-- == 0) {
      Truncated = true;
      break;
    }
    ++R.TransitionsTaken;

    // Child sleep set: everything covered elsewhere that commutes with T
    // at this state (sleep-set rule; ids not enabled here are dropped,
    // which is always sound).
    uint8_t ChildSleep = 0;
    if (C.SleepSets) {
      uint8_t Covered = F.Sleep | F.Explored;
      for (unsigned J = 0; J < F.N; ++J) {
        const Succ &U = F.Succs[J];
        if (J != I && (Covered & (1u << U.Id)) != 0 && independent(U, T))
          ChildSleep |= static_cast<uint8_t>(1u << U.Id);
      }
      F.Explored |= static_cast<uint8_t>(1u << T.Id);
    }

    uint32_t Remaining = Bound == 0xffffffffu
                             ? Bound
                             : Bound - static_cast<uint32_t>(Stack.size());
    if (Push(T.Next, ChildSleep, Remaining))
      break; // violation under this child
  }

  if (R.V == Verdict::Violation) {
    // The DFS path is a witness; replace it with the shortest one.
    std::vector<TraceStep> DfsPath;
    for (const Frame &F : Stack)
      if (F.ChosenIdx != 0xff && F.ChosenIdx < F.N) {
        const Succ &T = F.Succs[F.ChosenIdx];
        DfsPath.push_back({T.Tid, T.Flush, T.Label});
      }
    R.Trace = DfsPath;
    CheckResult Min;
    Min.V = Verdict::Violation;
    if (minimize(M, C, Min)) {
      R.Trace = std::move(Min.Trace);
      R.ViolationKind = Min.ViolationKind;
    }
    return R;
  }

  if (Truncated)
    R.V = Verdict::Incomplete;
  return R;
}

//===- verify/Checker.h - Exhaustive explicit-state exploration -*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explorer behind `bench/model_check` (DESIGN.md §18): exhaustive DFS
/// over all interleavings of a ProtocolModel's threads under SC or TSO,
/// with full-state hashing and an optional sleep-set partial-order
/// reduction. Safety oracles run at every visited state; a terminal state
/// with blocked-but-unfinished threads is reported as a lost wakeup. On a
/// violation the result carries a deterministic counterexample that a BFS
/// repass has minimized to the shortest trace in the state graph.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_VERIFY_CHECKER_H
#define SOLERO_VERIFY_CHECKER_H

#include <cstdint>
#include <vector>

#include "verify/Mc.h"

namespace solero {
namespace verify {

/// Exploration parameters. The defaults are the CI-bounded configuration:
/// big enough that none of the shipped protocol models comes near them
/// (their state spaces close exhaustively), small enough that a runaway
/// model terminates with Verdict::Incomplete instead of eating the host.
struct CheckConfig {
  MemSemantics Mem = MemSemantics::SC;
  /// Sleep-set partial-order reduction on the DFS. Soundness is
  /// regression-tested by ModelCheckerTest's on/off verdict equivalence.
  bool SleepSets = true;
  /// Maximum schedule depth before a path is truncated (and the run
  /// reported Incomplete). 0 means unbounded.
  uint32_t DepthBound = 4096;
  /// Transition-count valve across the whole run (DFS + minimizer).
  uint64_t MaxTransitions = 20000000;
};

/// One scheduled action in a counterexample.
struct TraceStep {
  uint8_t Tid;
  bool Flush; ///< a TSO store-buffer flush, not a program action
  const char *Label;
};

enum class Verdict : uint8_t {
  Pass,      ///< every reachable interleaving satisfies every oracle
  Violation, ///< a reachable state breaks an oracle (see Trace)
  Incomplete ///< depth bound or transition valve hit before closure
};

struct CheckResult {
  Verdict V = Verdict::Pass;
  /// Static description of the broken oracle (Violation only).
  const char *ViolationKind = nullptr;
  /// BFS-minimized schedule from the initial state to the violation.
  std::vector<TraceStep> Trace;
  uint64_t StatesVisited = 0;
  uint64_t TransitionsTaken = 0;
  uint32_t MaxDepth = 0;
};

/// Explores \p M under \p C. Deterministic: same model + config => same
/// verdict, same counts, same counterexample.
CheckResult checkModel(const ProtocolModel &M, const CheckConfig &C);

/// Applies one TSO store-buffer flush (oldest entry) of \p Tid to \p S.
/// Exposed for trace replay; returns false when the buffer is empty.
bool applyFlush(McState &S, unsigned Tid);

/// Static label used for flush steps in traces.
extern const char *const FlushLabel;

/// Static violation text used for terminal states with blocked threads.
extern const char *const DeadlockViolation;

} // namespace verify
} // namespace solero

#endif // SOLERO_VERIFY_CHECKER_H

//===- verify/Trace.cpp - Counterexample trace rendering ------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "verify/Trace.h"

#include <cstdio>

using namespace solero;
using namespace solero::verify;

std::string solero::verify::renderSummary(const ProtocolModel &M,
                                          const char *Variant,
                                          const CheckConfig &C,
                                          const CheckResult &R) {
  const char *V = R.V == Verdict::Pass         ? "PASS"
                  : R.V == Verdict::Violation ? "VIOLATION"
                                              : "INCOMPLETE";
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "model=%s mem=%s variant=%s por=%s: %s states=%llu "
                "transitions=%llu depth=%u",
                M.name(), memSemanticsName(C.Mem), Variant,
                C.SleepSets ? "sleep" : "none", V,
                static_cast<unsigned long long>(R.StatesVisited),
                static_cast<unsigned long long>(R.TransitionsTaken),
                R.MaxDepth);
  return Buf;
}

std::string solero::verify::renderTrace(const ProtocolModel &M,
                                        const CheckConfig &C,
                                        const CheckResult &R) {
  if (R.V != Verdict::Violation)
    return "";
  std::string Out = "counterexample (";
  Out += M.name();
  Out += ", ";
  Out += memSemanticsName(C.Mem);
  Out += "): ";
  Out += R.ViolationKind ? R.ViolationKind : "unspecified violation";
  Out += "\n";

  McState S;
  S.clear();
  M.init(S);
  char Line[192];
  std::snprintf(Line, sizeof(Line), "  init              | %s\n",
                M.renderState(S).c_str());
  Out += Line;
  unsigned N = 0;
  for (const TraceStep &T : R.Trace) {
    if (T.Flush) {
      applyFlush(S, T.Tid);
    } else {
      Mach Mc(S, T.Tid, C.Mem);
      const char *Label = nullptr;
      bool Enabled = M.step(S, T.Tid, Mc, &Label);
      if (!Enabled) {
        Out += "  <trace replay desynchronized>\n";
        break;
      }
    }
    std::snprintf(Line, sizeof(Line), "  step %2u  T%u %-14s | %s\n", ++N,
                  T.Tid, T.Label, M.renderState(S).c_str());
    Out += Line;
  }
  return Out;
}

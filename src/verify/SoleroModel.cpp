//===- verify/SoleroModel.cpp - SOLERO lock-word protocol model -----------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
//
// Miniature of src/core/SoleroLock at the granularity of its shared-memory
// accesses (paper Figs. 5-9). The modeled lock word packs, in one byte:
//
//   bit 0    LOCK   (thin-held)
//   bit 1    FLC    (flat-lock-contention, set by a parked-bound contender)
//   bits 2-3 owner  (tid + 1 while thin-held)
//   bits 4-7 counter (the version counter the real word keeps above
//            TidShift; bumped by one on every release)
//
// Writers run acquire / store X / store Y / release; the release fast path
// is the PR-3 CAS that fails when a contender set FLC concurrently, routing
// to the slow store + notify. The BlindStoreRelease variant re-introduces
// the seeded bug: release decides from a stale word load and publishes with
// a blind store, so an FLC bit set between the load and the store is
// clobbered and the parked contender sleeps forever (the checker reports
// the terminal state as a lost wakeup).
//
// The reader thread attempts one speculative section: entry word load,
// seq_cst entry fence (§3.4), loads of X and Y, then validation that the
// word is unchanged; on a busy word or failed validation it falls back to
// a real acquire through the writer machine. The torn-read oracle fires if
// a *validated* section observed X != Y.
//
// Parking is modeled with a signal generation counter SIG (notify_all
// semantics: every parked thread whose recorded generation differs from
// SIG is runnable). The park-arm step atomically re-checks the word and
// records the generation; in the real runtime both happen under the
// OsMonitor mutex that release's notify also takes, which is what makes
// folding them into one atomic model action sound (DESIGN.md §18).
//
//===----------------------------------------------------------------------===//

#include "verify/Models.h"

#include "support/Assert.h"

using namespace solero;
using namespace solero::verify;

namespace {

// Shared variables.
enum : unsigned { VWord = 0, VX = 1, VY = 2, VSig = 3 };

// Lock-word bits.
enum : uint8_t { LockBit = 0x1, FlcBit = 0x2 };

// Locals.
enum : unsigned { LV1 = 0, LV2 = 1, LGen = 2, LLx = 3, LLy = 4 };

// Program counters (one machine; the reader starts in the speculative leg
// and falls back into the writer machine on failure).
enum : uint8_t {
  PcEnterLoad = 0,
  PcEnterCas,
  PcCs1,
  PcCs2,
  PcRelLoad,
  PcReleaseCas,
  PcBlindStore,
  PcSlowStore,
  PcNotify,
  PcContendLoad,
  PcFlcCas,
  PcParkArm,
  PcParked,
  PcRdLoad,
  PcRdFence,
  PcRdX,
  PcRdY,
  PcRdValidate,
  PcRdCommit,
  PcDone
};

uint8_t heldWord(unsigned Tid) {
  return static_cast<uint8_t>(LockBit | ((Tid + 1) << 2));
}
uint8_t freeWord(uint8_t Counter) { return static_cast<uint8_t>(Counter << 4); }
bool isFree(uint8_t W) { return (W & (LockBit | FlcBit)) == 0; }
bool thinHeldByOther(uint8_t W, unsigned Tid) {
  return (W & LockBit) != 0 && (W >> 2 & 0x3) != Tid + 1;
}

class SoleroModel : public ProtocolModel {
public:
  explicit SoleroModel(SoleroModelConfig C) : Cfg(C) {
    SOLERO_CHECK(Cfg.Writers >= 1 && Cfg.Writers <= 2,
                 "solero model supports 1 or 2 writers");
  }

  const char *name() const override { return "solero"; }

  unsigned threads() const override {
    return Cfg.Writers + (Cfg.Reader ? 1 : 0);
  }

  void init(McState &S) const override {
    if (Cfg.Reader)
      S.Pc[Cfg.Writers] = PcRdLoad;
  }

  bool step(McState &S, unsigned Tid, Mach &M,
            const char **Label) const override {
    const bool Reader = Cfg.Reader && Tid == Cfg.Writers;
    uint8_t *L = S.Local[Tid];
    uint8_t &Pc = S.Pc[Tid];
    switch (Pc) {
    case PcEnterLoad: {
      *Label = "enter.load";
      uint8_t V = M.load(VWord);
      if (isFree(V)) {
        L[LV1] = V;
        Pc = PcEnterCas;
      } else {
        Pc = PcContendLoad;
      }
      return true;
    }
    case PcEnterCas: {
      *Label = "enter.cas";
      if (!M.rmwReady())
        return false;
      Pc = M.cas(VWord, L[LV1], heldWord(Tid)) ? PcCs1 : PcEnterLoad;
      return true;
    }
    case PcCs1: {
      uint8_t Ver = static_cast<uint8_t>((L[LV1] >> 4) + 1);
      if (Reader) {
        *Label = "cs.load-x";
        L[LLx] = M.load(VX);
      } else {
        *Label = "cs.store-x";
        if (!M.store(VX, Ver))
          return false;
      }
      Pc = PcCs2;
      return true;
    }
    case PcCs2: {
      uint8_t Ver = static_cast<uint8_t>((L[LV1] >> 4) + 1);
      if (Reader) {
        *Label = "cs.load-y";
        L[LLy] = M.load(VY);
      } else {
        *Label = "cs.store-y";
        if (!M.store(VY, Ver))
          return false;
      }
      Pc = PcRelLoad;
      return true;
    }
    case PcRelLoad: {
      *Label = "rel.load";
      uint8_t V = M.load(VWord);
      L[LV2] = V;
      if (Cfg.BlindStoreRelease)
        Pc = (V & FlcBit) != 0 ? PcSlowStore : PcBlindStore;
      else
        Pc = V == heldWord(Tid) ? PcReleaseCas : PcSlowStore;
      return true;
    }
    case PcReleaseCas: {
      *Label = "rel.cas";
      if (!M.rmwReady())
        return false;
      uint8_t Free = freeWord(static_cast<uint8_t>((L[LV1] >> 4) + 1));
      Pc = M.cas(VWord, heldWord(Tid), Free) ? PcDone : PcSlowStore;
      return true;
    }
    case PcBlindStore: {
      *Label = "rel.blind-store";
      uint8_t Free = freeWord(static_cast<uint8_t>((L[LV1] >> 4) + 1));
      if (!M.store(VWord, Free))
        return false;
      Pc = PcDone;
      return true;
    }
    case PcSlowStore: {
      *Label = "rel.slow-store";
      uint8_t Free = freeWord(static_cast<uint8_t>((L[LV1] >> 4) + 1));
      if (!M.store(VWord, Free))
        return false;
      Pc = PcNotify;
      return true;
    }
    case PcNotify: {
      *Label = "rel.notify";
      if (!M.rmwReady())
        return false;
      M.rmwAdd(VSig, 1);
      Pc = PcDone;
      return true;
    }
    case PcContendLoad: {
      *Label = "flc.load";
      uint8_t V = M.load(VWord);
      if (thinHeldByOther(V, Tid)) {
        L[LV2] = V;
        Pc = (V & FlcBit) != 0 ? PcParkArm : PcFlcCas;
      } else {
        Pc = PcEnterLoad;
      }
      return true;
    }
    case PcFlcCas: {
      *Label = "flc.cas";
      if (!M.rmwReady())
        return false;
      Pc = M.cas(VWord, L[LV2], L[LV2] | FlcBit) ? PcParkArm : PcContendLoad;
      return true;
    }
    case PcParkArm: {
      // Word re-check + signal-generation read, atomic because the real
      // runtime does both under the OsMonitor mutex.
      *Label = "park.arm";
      uint8_t V = M.load(VWord);
      if (thinHeldByOther(V, Tid) && (V & FlcBit) != 0) {
        L[LGen] = M.load(VSig);
        Pc = PcParked;
      } else if (thinHeldByOther(V, Tid)) {
        L[LV2] = V;
        Pc = PcFlcCas;
      } else {
        Pc = PcEnterLoad;
      }
      return true;
    }
    case PcParked: {
      *Label = "park.wake";
      if (M.load(VSig) == L[LGen])
        return false; // still parked: no notify since we armed
      Pc = PcEnterLoad;
      return true;
    }
    case PcRdLoad: {
      *Label = "spec.load";
      uint8_t V = M.load(VWord);
      if (isFree(V)) {
        L[LV1] = V;
        Pc = PcRdFence;
      } else {
        Pc = PcEnterLoad; // busy word: fall back to a real acquire
      }
      return true;
    }
    case PcRdFence: {
      *Label = "spec.fence";
      if (!M.fence())
        return false;
      Pc = PcRdX;
      return true;
    }
    case PcRdX: {
      *Label = "spec.load-x";
      L[LLx] = M.load(VX);
      Pc = PcRdY;
      return true;
    }
    case PcRdY: {
      *Label = "spec.load-y";
      L[LLy] = M.load(VY);
      Pc = PcRdValidate;
      return true;
    }
    case PcRdValidate: {
      *Label = "spec.validate";
      uint8_t V = M.load(VWord);
      Pc = V == L[LV1] ? PcRdCommit : PcEnterLoad; // fail => fall back
      return true;
    }
    case PcRdCommit: {
      *Label = "spec.commit";
      Pc = PcDone; // local step; the torn-read oracle fires at this pc
      return true;
    }
    default:
      *Label = "done";
      return false;
    }
  }

  bool done(const McState &S, unsigned Tid) const override {
    return S.Pc[Tid] == PcDone;
  }

  const char *invariant(const McState &S) const override {
    unsigned InCs = 0;
    for (unsigned T = 0; T < threads(); ++T) {
      uint8_t Pc = S.Pc[T];
      if (Pc >= PcCs1 && Pc <= PcSlowStore)
        ++InCs;
    }
    if (InCs > 1)
      return "mutual exclusion violated: two threads hold the flat lock";
    if (Cfg.Reader && S.Pc[Cfg.Writers] == PcRdCommit &&
        S.Local[Cfg.Writers][LLx] != S.Local[Cfg.Writers][LLy])
      return "read validation unsound: a validated speculative section "
             "observed a torn write (X != Y)";
    return nullptr;
  }

  std::string renderState(const McState &S) const override {
    char B[64];
    std::snprintf(B, sizeof(B), "word=%02x x=%u y=%u sig=%u pc=", S.Mem[VWord],
                  S.Mem[VX], S.Mem[VY], S.Mem[VSig]);
    std::string Out = B;
    for (unsigned T = 0; T < threads(); ++T) {
      std::snprintf(B, sizeof(B), "%s%u", T ? "," : "", S.Pc[T]);
      Out += B;
    }
    return Out + renderBufs(S, threads());
  }

private:
  SoleroModelConfig Cfg;
};

} // namespace

std::unique_ptr<ProtocolModel>
solero::verify::makeSoleroModel(SoleroModelConfig C) {
  return std::make_unique<SoleroModel>(C);
}

//===- verify/LitmusModels.cpp - Memory-model litmus tests ----------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
//
// Textbook litmus models that pin the substrate's memory semantics rather
// than any shipped protocol. Dekker / store-buffering (SB): thread i
// stores flag[i] = 1 then loads flag[1-i], entering the critical section
// only on reading 0. SC forbids both loads returning 0; TSO allows it
// (both stores buffered) unless each thread fences between its store and
// its load. ModelCheckerTest checks the full verdict matrix.
//
//===----------------------------------------------------------------------===//

#include "verify/Models.h"

using namespace solero;
using namespace solero::verify;

namespace {

enum : uint8_t { PcStore = 0, PcFence, PcLoad, PcCs, PcDone };

class DekkerModel : public ProtocolModel {
public:
  explicit DekkerModel(DekkerModelConfig C) : Cfg(C) {}

  const char *name() const override { return "dekker"; }

  unsigned threads() const override { return 2; }

  void init(McState &S) const override { (void)S; }

  bool step(McState &S, unsigned Tid, Mach &M,
            const char **Label) const override {
    uint8_t &Pc = S.Pc[Tid];
    switch (Pc) {
    case PcStore:
      *Label = "d.store-flag";
      if (!M.store(Tid, 1))
        return false;
      Pc = Cfg.Fences ? PcFence : PcLoad;
      return true;
    case PcFence:
      *Label = "d.fence";
      if (!M.fence())
        return false;
      Pc = PcLoad;
      return true;
    case PcLoad:
      *Label = "d.load-flag";
      Pc = M.load(1 - Tid) == 0 ? PcCs : PcDone;
      return true;
    case PcCs:
      *Label = "d.cs";
      Pc = PcDone;
      return true;
    default:
      *Label = "done";
      return false;
    }
  }

  bool done(const McState &S, unsigned Tid) const override {
    return S.Pc[Tid] == PcDone;
  }

  const char *invariant(const McState &S) const override {
    if (S.Pc[0] == PcCs && S.Pc[1] == PcCs)
      return "mutual exclusion violated: both threads entered the Dekker "
             "critical section";
    return nullptr;
  }

  std::string renderState(const McState &S) const override {
    char B[48];
    std::snprintf(B, sizeof(B), "flags=%u,%u pc=%u,%u", S.Mem[0], S.Mem[1],
                  S.Pc[0], S.Pc[1]);
    return B + renderBufs(S, 2);
  }

private:
  DekkerModelConfig Cfg;
};

} // namespace

std::unique_ptr<ProtocolModel>
solero::verify::makeDekkerModel(DekkerModelConfig C) {
  return std::make_unique<DekkerModel>(C);
}

//===- verify/Mc.h - Protocol model-checking substrate ----------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The substrate under the exhaustive protocol model checker (DESIGN.md
/// §18): a tiny guarded-transition-system vocabulary in which the SOLERO,
/// Tasuki-inflation, and BRAVO lock-word protocols are written as explicit
/// per-thread state machines over a handful of byte-valued shared
/// variables.
///
/// One model step = one atomic action on modeled shared memory (a load, a
/// store, an RMW, or a fence), so the checker's interleavings are exactly
/// the protocol's atomicity granularity. Memory is pluggable between two
/// operational semantics:
///
///   - SC: stores hit memory immediately.
///   - TSO: each thread owns a bounded FIFO store buffer. Plain stores
///     append; loads forward from the newest matching own-buffer entry;
///     RMWs and fences require an empty buffer (x86 locked ops and mfence
///     drain); the scheduler nondeterministically flushes the oldest entry
///     of any buffer as its own transition. This is the standard
///     store-buffer formalization of TSO, and it is what makes the §3.4
///     barrier discipline and BRAVO's Dekker pairing checkable at all —
///     under SC every fence is a no-op.
///
/// Every primitive records its read/write variable footprint; the checker
/// uses the footprints for the sleep-set independence relation.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_VERIFY_MC_H
#define SOLERO_VERIFY_MC_H

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace solero {
namespace verify {

/// Memory semantics the checker explores under.
enum class MemSemantics : uint8_t {
  SC, ///< sequential consistency: stores are immediately visible
  TSO ///< total store order: per-thread FIFO store buffers, fences drain
};

inline const char *memSemanticsName(MemSemantics M) {
  return M == MemSemantics::SC ? "SC" : "TSO";
}

/// Model capacity ceilings. Deliberately tiny: a state must stay a few
/// dozen bytes so millions can be hashed, and the protocols under test
/// need 3 threads and at most 10 shared variables.
inline constexpr unsigned McMaxVars = 10;
inline constexpr unsigned McMaxThreads = 3;
inline constexpr unsigned McMaxLocals = 6;
inline constexpr unsigned McMaxBuf = 3;

/// One explored global state: shared memory, per-thread store buffers,
/// and per-thread control (pc) and registers (locals). All fields are
/// bytes and the struct is padding-free, so identity is memcmp and the
/// hash is a byte hash.
struct McState {
  uint8_t Mem[McMaxVars];
  uint8_t Pc[McMaxThreads];
  uint8_t Local[McMaxThreads][McMaxLocals];
  uint8_t BufVar[McMaxThreads][McMaxBuf];
  uint8_t BufVal[McMaxThreads][McMaxBuf];
  uint8_t BufLen[McMaxThreads];

  void clear() { std::memset(this, 0, sizeof(McState)); }

  bool operator==(const McState &O) const {
    return std::memcmp(this, &O, sizeof(McState)) == 0;
  }

  /// FNV-1a over the raw bytes (sound because the struct is padding-free:
  /// every byte is a defined field).
  uint64_t hash() const {
    const uint8_t *P = reinterpret_cast<const uint8_t *>(this);
    uint64_t H = 1469598103934665603ull;
    for (unsigned I = 0; I < sizeof(McState); ++I) {
      H ^= P[I];
      H *= 1099511628211ull;
    }
    return H;
  }
};

/// The memory machine one step executes against. Wraps a state being
/// rewritten in place, applies the selected semantics to each primitive,
/// and records the variable footprint for the independence relation.
///
/// Primitives returning bool return false when the action is *disabled*
/// in this state (TSO buffer full on store, buffer non-empty on fence or
/// RMW, or an explicit block()); the checker then treats the whole step
/// as not enabled and the scheduler must run something else first (e.g. a
/// buffer flush).
class Mach {
public:
  Mach(McState &S, unsigned Tid, MemSemantics Sem)
      : S(S), Tid(Tid), Sem(Sem) {}

  /// Atomic load. Under TSO forwards from the newest own-buffer entry.
  uint8_t load(unsigned Var) {
    Reads |= Bit(Var);
    if (Sem == MemSemantics::TSO)
      for (unsigned I = S.BufLen[Tid]; I > 0; --I)
        if (S.BufVar[Tid][I - 1] == Var)
          return S.BufVal[Tid][I - 1];
    return S.Mem[Var];
  }

  /// Plain store. Under TSO appends to the thread's buffer; disabled when
  /// the buffer is full (the scheduler must flush first).
  bool store(unsigned Var, uint8_t Val) {
    Writes |= Bit(Var);
    if (Sem == MemSemantics::SC) {
      S.Mem[Var] = Val;
      return true;
    }
    if (S.BufLen[Tid] == McMaxBuf)
      return false;
    S.BufVar[Tid][S.BufLen[Tid]] = Var;
    S.BufVal[Tid][S.BufLen[Tid]] = Val;
    ++S.BufLen[Tid];
    return true;
  }

  /// True when an RMW may run: TSO requires the thread's buffer drained
  /// (an x86 locked op flushes the store buffer first).
  bool rmwReady() const {
    return Sem == MemSemantics::SC || S.BufLen[Tid] == 0;
  }

  /// Atomic compare-and-swap. Caller must have checked rmwReady(); a
  /// failed comparison is a real (enabled) step, not a disabled one.
  bool cas(unsigned Var, uint8_t Expect, uint8_t New) {
    Reads |= Bit(Var);
    Writes |= Bit(Var);
    if (S.Mem[Var] != Expect)
      return false;
    S.Mem[Var] = New;
    return true;
  }

  /// Atomic fetch-and-add (also used for fetch-and-sub with a negative
  /// delta). Caller must have checked rmwReady(). Returns the old value.
  uint8_t rmwAdd(unsigned Var, int Delta) {
    Reads |= Bit(Var);
    Writes |= Bit(Var);
    uint8_t Old = S.Mem[Var];
    S.Mem[Var] = static_cast<uint8_t>(static_cast<int>(Old) + Delta);
    return Old;
  }

  /// Full fence (seq_cst / mfence). Disabled under TSO until the thread's
  /// buffer has been flushed by scheduler steps.
  bool fence() { return Sem == MemSemantics::SC || S.BufLen[Tid] == 0; }

  /// Footprint masks (bit per variable) accumulated by this step.
  uint16_t readMask() const { return Reads; }
  uint16_t writeMask() const { return Writes; }

private:
  static uint16_t Bit(unsigned Var) { return static_cast<uint16_t>(1u << Var); }

  McState &S;
  unsigned Tid;
  MemSemantics Sem;
  uint16_t Reads = 0;
  uint16_t Writes = 0;
};

/// Renders the non-empty store buffers as " buf=<t0>|<t1>|..." with each
/// thread's FIFO as comma-separated var:val pairs ("-" when empty), or an
/// empty string when every buffer is drained. Shared by the models'
/// renderState implementations.
inline std::string renderBufs(const McState &S, unsigned Threads) {
  bool Any = false;
  for (unsigned T = 0; T < Threads; ++T)
    Any |= S.BufLen[T] != 0;
  if (!Any)
    return "";
  std::string Out = " buf=";
  char B[16];
  for (unsigned T = 0; T < Threads; ++T) {
    if (T)
      Out += "|";
    if (S.BufLen[T] == 0) {
      Out += "-";
      continue;
    }
    for (unsigned I = 0; I < S.BufLen[T]; ++I) {
      std::snprintf(B, sizeof(B), "%s%u:%02x", I ? "," : "", S.BufVar[T][I],
                    S.BufVal[T][I]);
      Out += B;
    }
  }
  return Out;
}

/// A protocol expressed as per-thread deterministic guarded state
/// machines: from any state each thread has at most one enabled action
/// (all nondeterminism is the scheduler's). Implementations live in
/// verify/*Model.cpp.
class ProtocolModel {
public:
  virtual ~ProtocolModel() = default;

  /// Model name as printed by the CLI and traces ("solero", ...).
  virtual const char *name() const = 0;

  /// Number of modeled threads (<= McMaxThreads).
  virtual unsigned threads() const = 0;

  /// Writes the initial state.
  virtual void init(McState &S) const = 0;

  /// Executes thread \p Tid's next atomic action in place. Returns false
  /// when the thread is disabled here (blocked on a guard or on TSO
  /// buffer constraints); the state must then be treated as unchanged.
  /// \p Label receives a static action name either way.
  virtual bool step(McState &S, unsigned Tid, Mach &M,
                    const char **Label) const = 0;

  /// True when thread \p Tid has run to completion in \p S.
  virtual bool done(const McState &S, unsigned Tid) const = 0;

  /// Safety oracle: nullptr when \p S is fine, else a static description
  /// of the violated invariant.
  virtual const char *invariant(const McState &S) const = 0;

  /// One-line rendering of the interesting shared state for traces.
  virtual std::string renderState(const McState &S) const = 0;
};

} // namespace verify
} // namespace solero

#endif // SOLERO_VERIFY_MC_H

//===- core/SoleroLock.cpp - SOLERO lock elision slow paths ---------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "core/SoleroLock.h"

using namespace solero;
using namespace solero::lockword;

uint64_t SoleroLock::slowEnterWrite(ObjectHeader &H, ThreadState &TS) {
  uint64_t V = H.word().load(std::memory_order_acquire);
  if (soleroHeldBy(V, TS.tidBits())) {
    // Recursive flat acquisition (+0x8, Figure 8 line 3's inverse
    // direction). fetch_add preserves a concurrently-set FLC bit.
    if (soleroRecursion(V) == SoleroRecMax) {
      // Recursion bits saturated. The paper inflates here; we instead track
      // the excess in a per-thread side table so the counter that v1-based
      // release will publish stays exact (DESIGN.md discusses the
      // deviation). Lock word is unchanged.
      TS.pushRecursionOverflow(H);
      return 0;
    }
    ++TS.Counters.AtomicRmws;
    H.word().fetch_add(SoleroRecUnit, std::memory_order_relaxed);
    return 0;
  }
  // Free, contended, or inflated: the shared three-tier + park machinery
  // (recursive fat entry is handled inside acquireOrPark).
  AcquireResult R = contendedAcquire(Ctx.monitors(), H, SoleroFlatProtocol, TS,
                                     Ctx.config().Tiers,
                                     Ctx.config().ParkMicros);
  return R.Kind == AcquireKind::Flat ? R.V1 : 0;
}

void SoleroLock::slowExitWrite(ObjectHeader &H, ThreadState &TS, uint64_t V1) {
  uint64_t V = H.word().load(std::memory_order_relaxed);
  if (isInflated(V)) {
    Ctx.monitors().byIndex(monitorIndex(V)).fatExit(H, TS);
    return;
  }
  SOLERO_CHECK(soleroHeldBy(V, TS.tidBits()), "exitWrite of a lock not held");
  uint64_t Rec = soleroRecursion(V);
  if (Rec > 0) {
    if (Rec == SoleroRecMax && TS.popRecursionOverflow(H))
      return; // release one side-table level; the word is unchanged
    ++TS.Counters.AtomicRmws;
    H.word().fetch_sub(SoleroRecUnit, std::memory_order_relaxed);
    return;
  }
  // The FLC bit is set (the only remaining fast-path miss): release with
  // the incremented counter, then wake parked contenders (check_flc). The
  // store may clobber an FLC bit set after the load above, but that is
  // harmless here because the notify below is unconditional and ordered
  // after any park decision by the monitor mutex.
  SOLERO_INJECT(SoleroSlowExitRelease);
  H.word().store(V1 + CounterUnit, std::memory_order_release);
  ++TS.Counters.LockWordStores;
  Ctx.monitors().monitorFor(H).notifyFlatRelease();
}

SoleroLock::ReadEntry SoleroLock::slowReadEnter(ObjectHeader &H,
                                                ThreadState &TS) {
  // Figure 8. Invoked when the entry load saw (v & 0x7) != 0.
  const SpinTiers &Tiers = Ctx.config().Tiers;
  for (;;) {
    uint64_t V = H.word().load(std::memory_order_acquire);
    if (soleroHeldBy(V, TS.tidBits())) {
      // test_recursion: the thread owns the flat lock; take it recursively
      // (obj->lock += 0x8) and run the section non-speculatively.
      if (soleroRecursion(V) == SoleroRecMax) {
        TS.pushRecursionOverflow(H);
        return {0, true};
      }
      ++TS.Counters.AtomicRmws;
      H.word().fetch_add(SoleroRecUnit, std::memory_order_relaxed);
      return {0, true};
    }
    if (isInflated(V)) {
      // Fat mode: acquire through the OS monitor (recursive if owner).
      OsMonitor &M = Ctx.monitors().byIndex(monitorIndex(V));
      if (M.acquireOrPark(H, SoleroFlatProtocol, TS, Ctx.config().ParkMicros) ==
          OsMonitor::ParkResult::AcquiredFat)
        return {0, true};
      continue; // deflated meanwhile; re-examine
    }
    if (soleroIsFree(V))
      return {V, false};
    if ((V & FlcBit) != 0)
      break; // Figure 8 line 11: (v & 0x3) != 0 jumps to INFLATION

    // Thin-held by another thread: wait in the three nested loops for the
    // lock to be released (Figure 8 lines 6-17).
    for (int I = 0; I < Tiers.Tier3; ++I) {
      for (int J = 0; J < Tiers.Tier2; ++J) {
        V = H.word().load(std::memory_order_acquire);
        if (soleroIsFree(V))
          return {V, false};
        if ((V & 0x3) != 0)
          goto Inflation; // inflated or FLC already set
        spinTier1(Tiers.Tier1);
      }
      osYield();
    }
    break; // spin exhausted: inflate
  }

Inflation:
  // The lock stayed contended throughout the nested loops: inflate it.
  // Per Section 3.2, the thread first acquires the flat lock, stores the
  // incremented counter in the OS monitor, and installs the monitor; the
  // slow read exit then releases through the monitor.
  {
    AcquireResult R = contendedAcquire(Ctx.monitors(), H, SoleroFlatProtocol,
                                       TS, Tiers, Ctx.config().ParkMicros);
    if (R.Kind == AcquireKind::Flat) {
      OsMonitor &M = Ctx.monitors().monitorFor(H);
      M.inflateHeldByOwner(H, TS, /*Recursion=*/0,
                           /*RestoreW=*/R.V1 + CounterUnit);
    }
    return {0, true};
  }
}

bool SoleroLock::slowReadExit(ObjectHeader &H, ThreadState &TS, uint64_t V) {
  // Figure 9.
  uint64_t W = H.word().load(std::memory_order_relaxed);
  if (soleroHeldBy(W, TS.tidBits())) {
    uint64_t Rec = soleroRecursion(W);
    if (Rec > 0) {
      // test_recursion: obj->lock -= 0x8.
      if (Rec == SoleroRecMax && TS.popRecursionOverflow(H))
        return true;
      ++TS.Counters.AtomicRmws;
      H.word().fetch_sub(SoleroRecUnit, std::memory_order_relaxed);
      return true;
    }
    // hold_flat_lock: release with v + 0x100, then check_flc. Same
    // lost-wakeup hazard as exitWrite's fast path: an FLC bit set between
    // the load of W and the release would be clobbered by a blind store
    // and its contender never notified. Release via CAS when W is clean;
    // a failure means FLC just arrived, so re-release unconditionally
    // with the bit cleared and notify.
    SOLERO_INJECT(SoleroReadExitRelease);
    if ((W & FlcBit) == 0) {
      uint64_t Expected = W;
      ++TS.Counters.AtomicRmws;
      if (H.word().compare_exchange_strong(Expected, V + CounterUnit,
                                           std::memory_order_release,
                                           std::memory_order_relaxed))
        return true;
    }
    H.word().store(V + CounterUnit, std::memory_order_release);
    ++TS.Counters.LockWordStores;
    Ctx.monitors().monitorFor(H).notifyFlatRelease();
    return true;
  }
  if (isInflated(W)) {
    OsMonitor &M = Ctx.monitors().byIndex(monitorIndex(W));
    if (M.isOwner(TS)) {
      M.fatExit(H, TS);
      return true;
    }
  }
  // The lock value changed under a speculative execution; the caller must
  // re-execute (Figure 9 line 13).
  return false;
}

bool SoleroLock::heldByCurrentThread(ObjectHeader &H) {
  ThreadState &TS = ThreadRegistry::current();
  uint64_t V = H.word().load(std::memory_order_acquire);
  if (isInflated(V))
    return Ctx.monitors().byIndex(monitorIndex(V)).isOwner(TS);
  return soleroHeldBy(V, TS.tidBits());
}

//===- core/ElisionController.cpp - Adaptive elision policy ---------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "core/ElisionController.h"

using namespace solero;

const char *solero::elisionStateName(ElisionState S) {
  switch (S) {
  case ElisionState::Elide:
    return "Elide";
  case ElisionState::Throttled:
    return "Throttled";
  case ElisionState::Disabled:
    return "Disabled";
  case ElisionState::Reprobe:
    return "Reprobe";
  }
  return "?";
}

ElisionSnapshot ElisionController::snapshot() const {
  ElisionSnapshot S;
  S.State = Stats.State.load(std::memory_order_relaxed);
  S.Attempts = Stats.Attempts.load(std::memory_order_relaxed);
  S.Failures = Stats.Failures.load(std::memory_order_relaxed);
  S.Skip = Stats.Skip.load(std::memory_order_relaxed);
  S.ReprobeLeft = Stats.ReprobeLeft.load(std::memory_order_relaxed);
  S.SkipWindow = Stats.SkipWindow.load(std::memory_order_relaxed);
  return S;
}

bool ElisionController::restore(const ElisionSnapshot &S) {
  if (S.State > static_cast<uint32_t>(ElisionState::Reprobe))
    return false; // unknown state: unusable image, stay cold
  // Failures > Attempts cannot arise from any transition sequence; treat
  // it as corruption rather than guessing which counter to trust.
  if (S.Failures > S.Attempts)
    return false;
  uint32_t Window = S.SkipWindow;
  if (Window < Cfg.DisabledSkipMin)
    Window = Cfg.DisabledSkipMin; // covers 0 from pre-seeding-fix images
  if (Window > Cfg.DisabledSkipMax)
    Window = Cfg.DisabledSkipMax;
  int32_t Skip = S.Skip;
  int32_t ReprobeLeft = S.ReprobeLeft;
  auto St = static_cast<ElisionState>(S.State);
  if (St == ElisionState::Disabled && Skip < 1)
    // A budget captured mid-exhaustion (or negative from the chunked
    // draw-down) would flip to Reprobe on the first section with an empty
    // sample window; give the restored lock one full chunk instead.
    Skip = static_cast<int32_t>(SkipChunk);
  if (St == ElisionState::Reprobe) {
    if (ReprobeLeft < 1)
      ReprobeLeft = 1;
    if (ReprobeLeft > static_cast<int32_t>(Cfg.ReprobeWindow))
      ReprobeLeft = static_cast<int32_t>(Cfg.ReprobeWindow);
  }
  Stats.Attempts.store(S.Attempts, std::memory_order_relaxed);
  Stats.Failures.store(S.Failures, std::memory_order_relaxed);
  Stats.Skip.store(Skip, std::memory_order_relaxed);
  Stats.ReprobeLeft.store(ReprobeLeft, std::memory_order_relaxed);
  Stats.SkipWindow.store(Window, std::memory_order_relaxed);
  // State last: a concurrent beginRead (which the quiesce protocol
  // forbids, but code should still fail soft) keys every slow-path
  // decision off State and would otherwise see the new state over stale
  // budgets.
  Stats.State.store(S.State, std::memory_order_relaxed);
  return true;
}

ElisionController::Decision
ElisionController::beginReadSlow(ThreadState &TS, ElisionState St) {
  if (St == ElisionState::Throttled)
    return {true, 1, ElisionState::Throttled};
  if (St == ElisionState::Reprobe)
    return {true, 1, ElisionState::Reprobe};
  // Disabled: consume the thread's local allowance if it has one; the
  // shared budget is drawn down SkipChunk sections at a time so the skip
  // path, like the clean path, costs no atomic RMW per section. (A stale
  // allowance after a state flip skips at most SkipChunk-1 extra sections
  // — the re-probe cadence is approximate by design.)
  if (TS.ElisionCtrlKey == this && TS.ElisionSkipAllowance != 0) {
    --TS.ElisionSkipAllowance;
    return {false, 0, ElisionState::Disabled};
  }
  if (Stats.Skip.fetch_sub(static_cast<int32_t>(SkipChunk),
                           std::memory_order_relaxed) <=
      static_cast<int32_t>(SkipChunk)) {
    // Budget exhausted: this thread opens the re-probe window. Races here
    // are benign — a second thread repeating the transition only restarts
    // the (already empty) sample window.
    Stats.Attempts.store(0, std::memory_order_relaxed);
    Stats.Failures.store(0, std::memory_order_relaxed);
    Stats.ReprobeLeft.store(static_cast<int32_t>(Cfg.ReprobeWindow),
                            std::memory_order_relaxed);
    Stats.State.store(static_cast<uint32_t>(ElisionState::Reprobe),
                      std::memory_order_relaxed);
    ++TS.Counters.CtrlReprobes;
    return {true, 1, ElisionState::Reprobe};
  }
  TS.ElisionCtrlKey = this;
  TS.ElisionSkipAllowance = SkipChunk - 1;
  return {false, 0, ElisionState::Disabled};
}

void ElisionController::recordShared(ThreadState &TS, const Decision &D,
                                     uint32_t Attempts, uint32_t Failures) {
  uint32_t A = Stats.Attempts.fetch_add(Attempts, std::memory_order_relaxed) +
               Attempts;
  uint32_t F = Stats.Failures.load(std::memory_order_relaxed);
  if (Failures != 0)
    F = Stats.Failures.fetch_add(Failures, std::memory_order_relaxed) +
        Failures;
  if (D.St == ElisionState::Reprobe) {
    if (Stats.ReprobeLeft.fetch_sub(1, std::memory_order_relaxed) <= 1)
      finishReprobe(TS, A, F);
    return;
  }
  if (A >= Cfg.WindowAttempts)
    evaluateWindow(TS, A, F);
}

void ElisionController::evaluateLocalWindow(ThreadState &TS) {
  uint32_t A = TS.LocalElisionAttempts;
  uint32_t F = TS.LocalElisionFailures;
  if (state() != ElisionState::Elide) {
    // The shared machine moved on (another thread throttled or disabled
    // meanwhile): this window was collected under stale Elide decisions.
    TS.LocalElisionAttempts = 0;
    TS.LocalElisionFailures = 0;
    return;
  }
  double Ratio = static_cast<double>(F) / static_cast<double>(A);
  if (Ratio >= Cfg.DisableRatio) {
    disable(TS);
    TS.LocalElisionAttempts = 0;
    TS.LocalElisionFailures = 0;
    return;
  }
  if (Ratio >= Cfg.ThrottleRatio) {
    // Hand this thread's decayed window to the shared counters: Throttled
    // sections (and the re-enable decision they feed) account there, with
    // every thread's evidence pooled.
    Stats.Attempts.store(A / 2, std::memory_order_relaxed);
    Stats.Failures.store(F / 2, std::memory_order_relaxed);
    Stats.State.store(static_cast<uint32_t>(ElisionState::Throttled),
                      std::memory_order_relaxed);
    ++TS.Counters.CtrlThrottles;
    TS.LocalElisionAttempts = 0;
    TS.LocalElisionFailures = 0;
    return;
  }
  if (Ratio <= Cfg.ReenableRatio)
    // Healthy window: forget the skip-budget growth of past bad phases.
    Stats.SkipWindow.store(Cfg.DisabledSkipMin, std::memory_order_relaxed);
  // Exponential decay, same halving rule as the shared window.
  TS.LocalElisionAttempts = A / 2;
  TS.LocalElisionFailures = F / 2;
}

void ElisionController::evaluateWindow(ThreadState &TS, uint32_t A,
                                       uint32_t F) {
  ElisionState St = state();
  if (St == ElisionState::Disabled || St == ElisionState::Reprobe)
    return; // raced with a disable/re-probe transition; their windows rule
  double Ratio = static_cast<double>(F) / static_cast<double>(A);
  if (Ratio >= Cfg.DisableRatio) {
    disable(TS);
    return;
  }
  if (Ratio >= Cfg.ThrottleRatio) {
    if (St == ElisionState::Elide) {
      Stats.State.store(static_cast<uint32_t>(ElisionState::Throttled),
                        std::memory_order_relaxed);
      ++TS.Counters.CtrlThrottles;
    }
  } else if (Ratio <= Cfg.ReenableRatio) {
    // Healthy window: forget the skip-budget growth of past bad phases.
    Stats.SkipWindow.store(Cfg.DisabledSkipMin, std::memory_order_relaxed);
    if (St == ElisionState::Throttled) {
      Stats.State.store(static_cast<uint32_t>(ElisionState::Elide),
                        std::memory_order_relaxed);
      ++TS.Counters.CtrlReenables;
    }
  }
  // Exponential decay: halve both counters so each new window carries
  // twice the weight of the one before it. Concurrent recordOutcome
  // increments lost to these stores only shorten the next window.
  Stats.Attempts.store(A / 2, std::memory_order_relaxed);
  Stats.Failures.store(F / 2, std::memory_order_relaxed);
}

void ElisionController::finishReprobe(ThreadState &TS, uint32_t A,
                                      uint32_t F) {
  if (state() != ElisionState::Reprobe)
    return; // another thread already closed this re-probe window
  double Ratio = static_cast<double>(F) / static_cast<double>(A);
  if (Ratio <= Cfg.ReenableRatio) {
    Stats.Attempts.store(0, std::memory_order_relaxed);
    Stats.Failures.store(0, std::memory_order_relaxed);
    Stats.SkipWindow.store(Cfg.DisabledSkipMin, std::memory_order_relaxed);
    Stats.State.store(static_cast<uint32_t>(ElisionState::Elide),
                      std::memory_order_relaxed);
    ++TS.Counters.CtrlReenables;
    return;
  }
  disable(TS); // still failing: back off for a longer skip window
}

void ElisionController::forceDisable() {
  // The watchdog acts on pathology evidence, not window ratios, so it
  // charges the maximum budget directly: the lock stays off speculation
  // for DisabledSkipMax sections before the first re-probe samples
  // whether the pathology cleared. No ThreadState counter is charged —
  // the caller is a monitor thread, and forced actions are accounted in
  // the watchdog's own stats instead.
  Stats.Skip.store(static_cast<int32_t>(Cfg.DisabledSkipMax),
                   std::memory_order_relaxed);
  Stats.SkipWindow.store(Cfg.DisabledSkipMax, std::memory_order_relaxed);
  Stats.Attempts.store(0, std::memory_order_relaxed);
  Stats.Failures.store(0, std::memory_order_relaxed);
  Stats.State.store(static_cast<uint32_t>(ElisionState::Disabled),
                    std::memory_order_relaxed);
}

void ElisionController::disable(ThreadState &TS) {
  uint32_t W = Stats.SkipWindow.load(std::memory_order_relaxed);
  if (W == 0)
    W = Cfg.DisabledSkipMin;
  Stats.Skip.store(static_cast<int32_t>(W), std::memory_order_relaxed);
  Stats.SkipWindow.store(W > Cfg.DisabledSkipMax / 2 ? Cfg.DisabledSkipMax
                                                     : W * 2,
                         std::memory_order_relaxed);
  Stats.Attempts.store(0, std::memory_order_relaxed);
  Stats.Failures.store(0, std::memory_order_relaxed);
  Stats.State.store(static_cast<uint32_t>(ElisionState::Disabled),
                    std::memory_order_relaxed);
  ++TS.Counters.CtrlDisables;
}

//===- core/ElisionController.h - Adaptive elision policy -------*- C++ -*-===//
//
// Part of the SOLERO reproduction of Nakaike & Michael, "Lock Elision for
// Read-Only Critical Sections in Java", PLDI 2010.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Failure-ratio-driven speculation policy for SOLERO read-only sections.
///
/// The paper's fixed policy (MaxSpecAttempts = 1, unconditional fallback)
/// makes elision pure overhead in write-heavy phases: every read section
/// pays the entry fence, a doomed speculative execution, and the real
/// acquisition on top (Figure 15 shows the win collapsing as the failure
/// ratio rises). Following the adaptive-bias recipe of BRAVO and Fissile
/// locks (Dice & Kogan), each lock carries an ElisionStats cell — relaxed
/// counters over an exponentially decayed window — and a four-state policy:
///
///   Elide      speculate with bounded backoff retries (the fast path)
///   Throttled  decayed failure ratio is elevated: one attempt, no retries
///   Disabled   ratio crossed the disable threshold: skip speculation and
///              acquire the lock directly for the next N sections, N
///              growing exponentially while re-probes keep failing
///   Reprobe    the skip budget expired: sample a few speculations; cheap
///              re-enables when a write phase ends
///
/// Elide-state windows live in the calling thread (ThreadState) and the
/// Disabled skip budget is drawn down in chunks into a thread-local
/// allowance, so neither per-section fast path performs an atomic RMW;
/// the shared cell holds the state machine plus the pooled windows of the
/// rare states (Throttled, Reprobe). Everything shared is relaxed atomics
/// and every transition tolerates races: a stale read at worst delays a
/// transition by one window, never breaks the protocol (the decision only
/// selects between two correct paths).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_CORE_ELISIONCONTROLLER_H
#define SOLERO_CORE_ELISIONCONTROLLER_H

#include <atomic>
#include <cstdint>

#include "runtime/ThreadRegistry.h"
#include "support/CacheLine.h"

namespace solero {

/// Controller policy states. Numeric values are stable: they index the
/// stats tables printed by the benches.
enum class ElisionState : uint32_t {
  Elide = 0,
  Throttled = 1,
  Disabled = 2,
  Reprobe = 3,
};

/// Human-readable state name ("Elide", ...).
const char *elisionStateName(ElisionState S);

/// Tuning knobs for the adaptive controller. Defaults are deliberately
/// conservative: a lock whose speculation keeps succeeding never leaves
/// Elide and pays only the window bookkeeping.
struct AdaptiveElisionConfig {
  /// Master switch. Off reproduces the paper's fixed policy exactly
  /// (SoleroConfig::MaxSpecAttempts, immediate fallback, no bookkeeping).
  bool Enabled = false;
  /// Speculative attempts per decay window; when the window fills, the
  /// failure ratio is evaluated and both counters are halved so old
  /// history fades with an exponential half-life.
  uint32_t WindowAttempts = 64;
  /// Decayed failure ratio at or above which Elide degrades to Throttled.
  /// Keep the [ReenableRatio, ThrottleRatio] hysteresis band narrow: a
  /// steady failure ratio *inside* the band random-walks between the two
  /// states on window sampling noise (64-sample windows have a ratio
  /// sigma of ~0.05 at these levels), paying the Throttled state's shared
  /// accounting for nothing.
  double ThrottleRatio = 0.35;
  /// Ratio at or above which speculation is disabled outright. Breakeven
  /// sits where a doomed speculative execution per failure outweighs the
  /// speculation wins of the successes forfeited by skipping.
  double DisableRatio = 0.60;
  /// Ratio at or below which Throttled recovers to Elide, and a Reprobe
  /// window is judged healthy enough to re-enable elision.
  double ReenableRatio = 0.25;
  /// Adaptive MaxSpecAttempts while in Elide (with ExpBackoff pauses
  /// between attempts). Defaults to the paper's single attempt: retries
  /// only pay off when failures are transient (a writer caught mid-flight
  /// whom the backoff pause lets finish), so raising this is an opt-in for
  /// preemption-heavy environments. Deterministically conflicting sections
  /// make every retry a pure loss — Throttled exists to claw the budget
  /// back to 1 when the failure ratio says that is happening.
  int ElideMaxAttempts = 1;
  /// Speculative samples taken in Reprobe before judging the ratio.
  uint32_t ReprobeWindow = 8;
  /// Read sections that skip speculation after the first disable; doubles
  /// on every failed re-probe up to DisabledSkipMax (bounded exponential
  /// backoff at the policy level).
  uint32_t DisabledSkipMin = 64;
  uint32_t DisabledSkipMax = 8192;
  /// ExpBackoff bounds (cpuRelax iterations) between speculation retries.
  int BackoffSpinsMin = 16;
  int BackoffSpinsMax = 512;
};

/// A quiesced copy of one controller's stats cell, for warm-image
/// checkpoint/restore (src/image/). Field layout is part of the image
/// format: extend only by appending (and bump image::ImageVersion).
struct ElisionSnapshot {
  uint32_t State = 0;    ///< ElisionState, as its numeric value
  uint32_t Attempts = 0; ///< decayed-window attempt count
  uint32_t Failures = 0; ///< decayed-window failure count
  int32_t Skip = 0;      ///< remaining Disabled skip budget
  int32_t ReprobeLeft = 0;
  uint32_t SkipWindow = 0; ///< next disable's skip budget
};

/// Per-lock adaptive policy. Embedded in each SoleroLock; thread-safe,
/// wait-free, and inert (never touched) unless the config enables it.
class ElisionController {
public:
  explicit ElisionController(const AdaptiveElisionConfig &Cfg)
      : Cfg(Cfg),
        SkipChunk(Cfg.DisabledSkipMin / 8 ? Cfg.DisabledSkipMin / 8 : 1) {
    // SkipWindow is seeded here AND re-seeded by restore(): historically it
    // was constructor-only, which left a restored Disabled/Reprobe lock
    // with whatever the image held — including 0 from a zero-initialized
    // cell — and forced the cold-start path to repair it. disable() keeps
    // a 0 -> DisabledSkipMin guard as defense in depth.
    Stats.SkipWindow.store(Cfg.DisabledSkipMin, std::memory_order_relaxed);
  }

  /// What the elision engine should do for one read-only section.
  struct Decision {
    bool Speculate;  ///< false: go straight to real acquisition
    int MaxAttempts; ///< speculation budget for this section
    ElisionState St; ///< state the decision was made in
  };

  /// Consulted once per read-only section entry. In Disabled this burns
  /// one unit of skip budget and flips to Reprobe when it runs out. Only
  /// the Elide check lives inline; everything else is off the fast path.
  Decision beginRead(ThreadState &TS) {
    ElisionState St = state();
    if (St == ElisionState::Elide) [[likely]]
      return {true, Cfg.ElideMaxAttempts, ElisionState::Elide};
    return beginReadSlow(TS, St);
  }

  /// Reports one section's speculation outcome: \p Attempts executions of
  /// which \p Failures failed validation. Evaluates the window when full.
  ///
  /// Elide-state windows are thread-local: the hot path performs no
  /// atomic RMW, and the shared cell is not touched at all. The armed
  /// latch is `TS.ElisionCtrlKey == this`: until this thread's first
  /// failure on this lock, a clean section costs one thread-local compare
  /// (a lock whose speculation never fails has nothing to adapt to). Each
  /// thread judges transitions on its own decayed window, so threads
  /// react independently; that skew is benign because the shared state
  /// machine every beginRead consults is still the single source of
  /// policy. Throttled and Reprobe sections account in the shared cell —
  /// they are rare by construction, and their windows (which gate
  /// re-enabling) must pool all threads' evidence.
  void recordOutcome(ThreadState &TS, const Decision &D, uint32_t Attempts,
                     uint32_t Failures) {
    if (D.St == ElisionState::Elide) [[likely]] {
      if (TS.ElisionCtrlKey != this) {
        if (Failures == 0) [[likely]]
          return; // not armed for this lock; nothing worth tracking yet
        // First failure this thread has seen on this lock: arm, starting
        // a fresh window. Whatever the fields held belonged to another
        // lock (the old key may even dangle — it is never dereferenced).
        TS.ElisionCtrlKey = this;
        TS.LocalElisionAttempts = 0;
        TS.LocalElisionFailures = 0;
        TS.ElisionSkipAllowance = 0;
      }
      TS.LocalElisionAttempts += Attempts;
      TS.LocalElisionFailures += Failures;
      if (TS.LocalElisionAttempts >= Cfg.WindowAttempts)
        evaluateLocalWindow(TS);
      return;
    }
    if (Attempts == 0)
      return; // section ran while already holding the lock: no signal
    recordShared(TS, D, Attempts, Failures);
  }

  ElisionState state() const {
    return static_cast<ElisionState>(
        Stats.State.load(std::memory_order_relaxed));
  }

  const AdaptiveElisionConfig &config() const { return Cfg; }

  /// Remaining skip budget (Disabled) — exposed for tests and benches.
  int32_t skipBudget() const {
    return Stats.Skip.load(std::memory_order_relaxed);
  }

  /// The skip budget the *next* disable will charge (tests/restore).
  uint32_t skipWindow() const {
    return Stats.SkipWindow.load(std::memory_order_relaxed);
  }

  /// Captures the shared stats cell for a warm image. All fields are
  /// relaxed atomics, so concurrent readers are safe; for a *consistent*
  /// capture the caller must quiesce the lock (no read section between
  /// beginRead and recordOutcome), or fields snapshotted at different
  /// instants may disagree by one transition. Thread-local Elide windows
  /// (ThreadState) are deliberately not captured: they are per-process
  /// scratch that rebuilds within one WindowAttempts window.
  ElisionSnapshot snapshot() const;

  /// Watchdog recovery hook (src/resilience/Watchdog.h): unconditionally
  /// drives the cell to Disabled with a full DisabledSkipMax skip budget,
  /// bypassing the evidence-driven window machinery. Safe to call from
  /// any thread at any time — same relaxed-store discipline as the
  /// internal disable(), and a racing reader at worst runs one more
  /// speculation under a stale decision (which is always a correct path).
  /// Recovery is the normal Reprobe cadence once the budget drains.
  void forceDisable();

  /// Rehydrates the cell from \p S. Requires quiescence (see snapshot()).
  /// Returns false — leaving the cell in its cold state — when \p S is
  /// inconsistent (unknown state, failures exceeding attempts); repairable
  /// skew (zero or out-of-range windows, exhausted budgets) is clamped
  /// into the config's bounds instead, so an image captured under a
  /// different tuning still restores. After a successful restore the lock
  /// resumes exactly where the image left it: a Disabled lock keeps
  /// skipping without re-running the cold Elide->...->disable path, a
  /// Reprobe lock finishes its sample window.
  bool restore(const ElisionSnapshot &S);

private:
  Decision beginReadSlow(ThreadState &TS, ElisionState St);
  void recordShared(ThreadState &TS, const Decision &D, uint32_t Attempts,
                    uint32_t Failures);
  void evaluateLocalWindow(ThreadState &TS);
  void evaluateWindow(ThreadState &TS, uint32_t A, uint32_t F);
  void finishReprobe(ThreadState &TS, uint32_t A, uint32_t F);
  void disable(ThreadState &TS);

  /// The per-lock stats cell: one cache line so controller traffic never
  /// false-shares with neighbouring locks, and the lock word itself (in
  /// the object header) stays clean for speculation validation.
  struct alignas(CacheLineSize) ElisionStatsCell {
    std::atomic<uint32_t> State{static_cast<uint32_t>(ElisionState::Elide)};
    std::atomic<uint32_t> Attempts{0}; ///< decayed-window attempt count
    std::atomic<uint32_t> Failures{0}; ///< decayed-window failure count
    std::atomic<int32_t> Skip{0};      ///< remaining Disabled skip budget
    std::atomic<int32_t> ReprobeLeft{0};
    std::atomic<uint32_t> SkipWindow{0}; ///< next disable's skip budget
  };

  AdaptiveElisionConfig Cfg;
  uint32_t SkipChunk; ///< Disabled budget draw-down granularity (SkipMin/8)
  ElisionStatsCell Stats;
};

} // namespace solero

#endif // SOLERO_CORE_ELISIONCONTROLLER_H

//===- core/SoleroLock.h - SOLERO lock elision ------------------*- C++ -*-===//
//
// Part of the SOLERO reproduction of Nakaike & Michael, "Lock Elision for
// Read-Only Critical Sections in Java", PLDI 2010.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SOLERO: Software Optimistic Lock Elision for Read-Only critical
/// sections — the paper's contribution (Section 3).
///
/// The flat lock word holds a sequence counter while free and
/// `thread_id | LOCK_BIT` while held (Figure 5). Writing critical sections
/// CAS the word on entry and publish `v1 + 0x100` on exit (Figure 6).
/// Read-only critical sections run speculatively without writing the lock
/// word: they record the free word at entry and succeed iff the word is
/// unchanged at exit (Figure 7). Slow paths (Figures 8-9) handle
/// recursion, contention, inflation, and the single-failure fallback that
/// acquires the lock for real. Guest exceptions raised during speculation
/// are absorbed and retried when the lock word changed (Section 3.3);
/// asynchronous events bound inconsistent-read loops via
/// speculationCheckpoint(). Section 5's read-mostly extension upgrades to
/// the lock mid-section with a CAS on the recorded word (Figure 17).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_CORE_SOLEROLOCK_H
#define SOLERO_CORE_SOLEROLOCK_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>

#include "core/ElisionController.h"
#include "runtime/LockWord.h"
#include "runtime/ReadGuard.h"
#include "runtime/RuntimeContext.h"
#include "runtime/SpeculationFault.h"
#include "stress/InjectionPoint.h"
#include "support/Assert.h"
#include "support/Backoff.h"
#include "support/ScopeExit.h"

namespace solero {

/// Memory-fence selection for the read-only fast path (paper Section 3.4).
enum class BarrierMode {
  /// The correct fences: an entry StoreLoad fence (PowerPC `sync`; an
  /// mfence on x86) ordering pre-section stores before the speculative
  /// loads, plus the Boehm-style acquire fence before validation loads.
  Correct,
  /// The paper's "WeakBarrier-SOLERO" ablation: reuse the conventional
  /// lock's cheaper entry ordering (acquire only). Violates Java lock
  /// ordering semantics; measures what the extra fence costs.
  Weak,
};

/// Configuration of one SOLERO protocol instance.
struct SoleroConfig {
  /// False gives "Unelided-SOLERO": read-only sections execute the full
  /// writing protocol (Figure 10's overhead bound).
  bool ElideReadOnly = true;
  BarrierMode Barriers = BarrierMode::Correct;
  /// Failed speculative executions before falling back to real
  /// acquisition. The paper's implementation falls back after one failure.
  /// Only consulted when the adaptive controller is off; when it is on,
  /// the per-state budgets in Adaptive govern instead.
  int MaxSpecAttempts = 1;
  /// Failure-ratio-driven speculation policy (core/ElisionController.h).
  /// Disabled by default: the paper's fixed policy applies.
  AdaptiveElisionConfig Adaptive;
};

class SoleroLock;

/// Mid-section lock-upgrade handle for read-mostly critical sections
/// (Section 5). Obtained inside SoleroLock::synchronizedReadMostly.
class WriteIntent {
public:
  /// Ensures the section holds the lock before a write or side effect.
  /// On a speculative execution this CASes the recorded entry word to
  /// `thread_id | LOCK_BIT` (Figure 17), which simultaneously validates
  /// every read performed so far. If the CAS fails, throws an internal
  /// restart signal; the engine acquires the lock and re-executes the
  /// section body from the beginning, so the body must be idempotent up to
  /// its first write (true of any correct read-mostly section).
  void acquireForWrite();

  /// True once the section holds the lock (upgrade done, fallback, or the
  /// section was never speculative).
  bool holding() const { return Holding; }

  /// Async check point; see speculationCheckpoint().
  void checkpoint() const {
    if (!Holding)
      speculationCheckpoint();
  }

  /// Internal: signal that restarts a read-mostly section non-speculatively.
  struct RestartForWrite {};

private:
  friend class SoleroLock;
  WriteIntent(ObjectHeader &H, ThreadState &TS, uint64_t V, bool Holding,
              std::size_t Depth = 0)
      : H(H), TS(TS), V(V), Depth(Depth), Holding(Holding) {}

  ObjectHeader &H;
  ThreadState &TS;
  uint64_t V; ///< entry word (speculative) or fallback v1 (holding)
  std::size_t Depth; ///< this frame's read-record index (speculative only)
  bool Holding;
  bool Upgraded = false;
};

/// The SOLERO lock protocol bound to a runtime context. All protocol state
/// lives in the object's header word; the instance itself carries only the
/// adaptive elision controller's stats cell. One instance per lock (the
/// LockPolicies arrangement) gives each lock site its own failure profile;
/// an instance shared across many headers (the JIT interpreter does this)
/// is still correct, but with the controller enabled the headers then
/// share one blended profile.
class SoleroLock {
public:
  explicit SoleroLock(RuntimeContext &Ctx, SoleroConfig Config = SoleroConfig())
      : Ctx(Ctx), Config(Config), Ctrl(this->Config.Adaptive) {}

  /// Result of a read-only entry attempt. When \c Holding is false, \c V is
  /// the free word to validate against (possibly 0 for a fresh lock — 0 is
  /// a legitimate counter value, not a sentinel). When \c Holding is true
  /// the calling thread owns the lock and \c V is the value slowReadExit
  /// needs (flat v1, or ignored for recursion/fat holds).
  struct ReadEntry {
    uint64_t V;
    bool Holding;
  };

  // --- Writing critical sections (Figure 6) ------------------------------

  /// Acquires the lock for writing; returns the paper's local lock
  /// variable v1, which must be passed to exitWrite.
  uint64_t enterWrite(ObjectHeader &H, ThreadState &TS) {
    uint64_t V1 = H.word().load(std::memory_order_relaxed);
    if (lockword::soleroIsFree(V1)) {
      SOLERO_INJECT(SoleroEnterWriteCas);
      ++TS.Counters.AtomicRmws;
      if (H.word().compare_exchange_strong(
              V1, lockword::soleroHeldWord(TS.tidBits()),
              std::memory_order_acq_rel, std::memory_order_relaxed))
        return V1;
    }
    return slowEnterWrite(H, TS);
  }

  /// Releases a writing acquisition, publishing v1 + 0x100.
  ///
  /// The fast path must release with a CAS, not a blind store: a contender
  /// can set the FLC bit between the load below and the release, and a
  /// store would clobber the bit — the contender then parks with no
  /// release left to notify it, stalling for a full timed-park backstop
  /// (the lost-wakeup race; DESIGN.md §12). The failed CAS falls to
  /// slowExitWrite, which re-reads the word, sees FLC, and notifies.
  void exitWrite(ObjectHeader &H, ThreadState &TS, uint64_t V1) {
    uint64_t V2 = H.word().load(std::memory_order_relaxed);
    if ((V2 & lockword::LowBitsMask) == lockword::SoleroLockBit) {
      SOLERO_INJECT(SoleroExitWriteRelease);
      ++TS.Counters.AtomicRmws;
      if (H.word().compare_exchange_strong(V2, V1 + lockword::CounterUnit,
                                           std::memory_order_release,
                                           std::memory_order_relaxed))
        return;
    }
    slowExitWrite(H, TS, V1);
  }

  /// Handle to the owned monitor inside a writing section: Object.wait /
  /// notify (side effects, so never available in elided sections — the
  /// paper's Section 3.2 exclusion). Obtained by taking it as the lambda
  /// parameter of synchronizedWrite.
  class MonitorHandle {
  public:
    /// Object.wait: releases the monitor (inflating a flat lock first)
    /// and sleeps until notified; reacquires before returning. Returns
    /// may be spurious — call inside a predicate loop.
    void wait() {
      uint64_t W = H.word().load(std::memory_order_acquire);
      if (!lockword::isInflated(W)) {
        // Inflation needs the pre-acquisition counter to publish on
        // deflation; only the outermost frame's handle has it.
        SOLERO_CHECK(Outermost,
                     "SOLERO Object.wait on a flat lock requires the "
                     "outermost synchronized frame's handle");
        OsMonitor &M = L.Ctx.monitors().monitorFor(H);
        M.inflateHeldByOwner(H, TS,
                             static_cast<uint32_t>(
                                 lockword::soleroRecursion(W)),
                             V1 + lockword::CounterUnit);
        W = H.word().load(std::memory_order_acquire);
      }
      L.Ctx.monitors()
          .byIndex(lockword::monitorIndex(W))
          .fatWait(H, TS, L.Ctx.config().ParkMicros);
    }

    /// Object.notify / notifyAll. Flat monitors have empty wait sets.
    void notify(bool All = false) {
      uint64_t W = H.word().load(std::memory_order_acquire);
      if (!lockword::isInflated(W))
        return; // a waiter would have inflated: wait set is empty
      L.Ctx.monitors().byIndex(lockword::monitorIndex(W)).fatNotify(TS, All);
    }
    void notifyAll() { notify(/*All=*/true); }

  private:
    friend class SoleroLock;
    MonitorHandle(SoleroLock &L, ObjectHeader &H, ThreadState &TS,
                  uint64_t V1, bool Outermost)
        : L(L), H(H), TS(TS), V1(V1), Outermost(Outermost) {}
    SoleroLock &L;
    ObjectHeader &H;
    ThreadState &TS;
    uint64_t V1;
    bool Outermost;
  };

  /// Runs \p F as a writing critical section. \p F may optionally take a
  /// MonitorHandle& to use Object.wait / notify.
  template <typename Fn> decltype(auto) synchronizedWrite(ObjectHeader &H,
                                                          Fn &&F) {
    ThreadState &TS = ThreadRegistry::current();
    ++TS.Counters.WriteEntries;
    uint64_t V1 = enterWrite(H, TS);
    ScopeExit Release([&] { exitWrite(H, TS, V1); });
    if constexpr (std::is_invocable_v<Fn &, MonitorHandle &>) {
      uint64_t W = H.word().load(std::memory_order_relaxed);
      bool Outermost = !lockword::isInflated(W) &&
                       lockword::soleroRecursion(W) == 0;
      MonitorHandle MH(*this, H, TS, V1, Outermost);
      return F(MH);
    } else {
      return F();
    }
  }

  // --- Read-only critical sections (Figures 7-9) -------------------------

  /// Runs \p F as a read-only critical section; elides the lock when
  /// possible. \p F receives a ReadGuard and must be safe to re-execute
  /// (it is read-only, so it is). Reads of shared data inside \p F must go
  /// through SharedField (or equivalent atomics), and loops must call
  /// ReadGuard::checkpoint / speculationCheckpoint.
  template <typename Fn> decltype(auto) synchronizedReadOnly(ObjectHeader &H,
                                                             Fn &&F) {
    ThreadState &TS = ThreadRegistry::current();
    ++TS.Counters.ReadOnlyEntries;
    if (!Config.ElideReadOnly) {
      // Unelided-SOLERO: pay the full writing protocol.
      uint64_t V1 = enterWrite(H, TS);
      ScopeExit Release([&] { exitWrite(H, TS, V1); });
      ReadGuard G(/*Speculative=*/false);
      return F(G);
    }
    using R = std::invoke_result_t<Fn &, ReadGuard &>;
    if constexpr (std::is_void_v<R>) {
      (void)runElided(H, TS, [&](ReadGuard &G) {
        F(G);
        return Unit{};
      });
    } else {
      return runElided(H, TS, std::forward<Fn>(F));
    }
  }

  // --- Read-mostly critical sections (Section 5, Figure 17) --------------

  /// Runs \p F as a read-mostly critical section. \p F receives a
  /// WriteIntent and must call acquireForWrite() before its first write or
  /// side effect. The body may be re-executed from the top if the upgrade
  /// fails, exactly like a failed read-only speculation.
  template <typename Fn> decltype(auto) synchronizedReadMostly(ObjectHeader &H,
                                                               Fn &&F) {
    ThreadState &TS = ThreadRegistry::current();
    ++TS.Counters.ReadOnlyEntries;
    using R = std::invoke_result_t<Fn &, WriteIntent &>;
    if constexpr (std::is_void_v<R>) {
      (void)runReadMostly(H, TS, [&](WriteIntent &W) {
        F(W);
        return Unit{};
      });
    } else {
      return runReadMostly(H, TS, std::forward<Fn>(F));
    }
  }

  // --- Protocol pieces shared with the engine and tests ------------------

  /// Figure 7 lines 1-3 plus Figure 8.
  ReadEntry readEnter(ObjectHeader &H, ThreadState &TS) {
    uint64_t V = H.word().load(std::memory_order_acquire);
    if (lockword::soleroIsFree(V))
      return {V, false};
    return slowReadEnter(H, TS);
  }

  /// Figure 9. \p V is the local lock value (fallback v1; ignored for
  /// recursion/fat holds). Returns false iff the caller held nothing — a
  /// pure speculation failure that must fall back (Figure 7 line 13).
  bool slowReadExit(ObjectHeader &H, ThreadState &TS, uint64_t V);

  /// End-of-section validation: acquire fence, then compare the word
  /// (the Boehm seqlock-reader recipe).
  bool validate(ObjectHeader &H, uint64_t V) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    SOLERO_INJECT(SoleroReadValidate);
    return H.word().load(std::memory_order_relaxed) == V;
  }

  /// True if the calling thread owns \p H (flat or fat).
  bool heldByCurrentThread(ObjectHeader &H);

  const SoleroConfig &config() const { return Config; }
  RuntimeContext &context() { return Ctx; }

  /// The adaptive elision controller (inert unless Config.Adaptive.Enabled).
  ElisionController &controller() { return Ctrl; }

  static const char *protocolName() { return "SOLERO"; }

private:
  friend class WriteIntent;
  struct Unit {};

  uint64_t slowEnterWrite(ObjectHeader &H, ThreadState &TS);
  void slowExitWrite(ObjectHeader &H, ThreadState &TS, uint64_t V1);
  ReadEntry slowReadEnter(ObjectHeader &H, ThreadState &TS);

  /// The StoreLoad fence at the start of a speculative section (Section
  /// 3.4: PowerPC `sync` after the entry load; mfence on x86).
  void entryFence() const {
    if (Config.Barriers == BarrierMode::Correct)
      std::atomic_thread_fence(std::memory_order_seq_cst);
    // Weak mode: the acquire load in readEnter is all the ordering the
    // conventional lock would have used (isync-equivalent).
  }

  /// Consults the adaptive controller (inert pass-through when off) for
  /// one read-only/read-mostly section's speculation budget.
  ElisionController::Decision beginReadDecision(ThreadState &TS) {
    if (!Config.Adaptive.Enabled)
      return {true, Config.MaxSpecAttempts, ElisionState::Elide};
    return Ctrl.beginRead(TS);
  }

  /// Per-attempt controller bookkeeping shared by both elision engines.
  void noteAttempt(ThreadState &TS, const ElisionController::Decision &D,
                   int FailuresSoFar) {
    ++TS.Counters.ElisionAttempts;
    if (FailuresSoFar > 0)
      ++TS.Counters.SpecRetries;
    if (!Config.Adaptive.Enabled)
      return;
    if (D.St != ElisionState::Elide) [[unlikely]] {
      if (D.St == ElisionState::Throttled)
        ++TS.Counters.ThrottledAttempts;
      else if (D.St == ElisionState::Reprobe)
        ++TS.Counters.ReprobeAttempts;
    }
  }

  /// Reports a section's final speculation outcome to the controller.
  void noteOutcome(ThreadState &TS, const ElisionController::Decision &D,
                   int Attempts, int Failures) {
    if (Config.Adaptive.Enabled)
      Ctrl.recordOutcome(TS, D, static_cast<uint32_t>(Attempts),
                         static_cast<uint32_t>(Failures));
  }

  /// The elision engine behind synchronizedReadOnly. \p F returns non-void.
  template <typename Fn> auto runElided(ObjectHeader &H, ThreadState &TS,
                                        Fn &&F) {
    using R = std::invoke_result_t<Fn &, ReadGuard &>;
    ElisionController::Decision D = beginReadDecision(TS);
    if (!D.Speculate) {
      // Controller verdict (Disabled): the decayed failure ratio says
      // speculation here is pure overhead right now — acquire for real
      // without paying the entry fence and a doomed execution.
      ++TS.Counters.ElisionSkips;
      uint64_t V1 = slowEnterWrite(H, TS);
      return runHoldingRead(H, TS, V1, std::forward<Fn>(F));
    }
    ExpBackoff Backoff(Config.Adaptive.BackoffSpinsMin,
                       Config.Adaptive.BackoffSpinsMax);
    ReadEntry E = readEnter(H, TS);
    int Failures = 0;
    for (;;) {
      if (E.Holding) {
        noteOutcome(TS, D, Failures, Failures);
        return runHoldingRead(H, TS, E.V, std::forward<Fn>(F));
      }

      // Speculative attempt. The result is returned from inside the try
      // block: the failure paths all leave through a catch or fall out to
      // the retry logic, so no deferred result storage is needed (keeping
      // the happy path free of spills across the landing-pad region).
      noteAttempt(TS, D, Failures);
      entryFence();
      std::size_t Depth = TS.pushRead(H, E.V);
      ReadGuard G(/*Speculative=*/true);
      try {
        R Result = F(G);
        TS.popRead();
        if (validate(H, E.V)) {
          ++TS.Counters.ElisionSuccesses;
          noteOutcome(TS, D, Failures + 1, Failures);
          return Result;
        }
        ++TS.Counters.ElisionFailures;
      } catch (SpeculationFault &SF) {
        TS.popRead();
        if (SF.Depth < Depth)
          throw; // an enclosing speculation frame owns this abort
        ++TS.Counters.ElisionFailures;
      } catch (WriteIntent::RestartForWrite &) {
        SOLERO_UNREACHABLE("write upgrade inside a read-only section");
      } catch (...) {
        // A guest exception: genuine iff the reads were consistent
        // (Section 3.3). Nothing to release — the lock was never held.
        TS.popRead();
        if (validate(H, E.V)) {
          // The speculation validated: this attempt succeeded, the
          // section just completed exceptionally. Without this the
          // attempts = successes + failures conservation law breaks.
          ++TS.Counters.ElisionSuccesses;
          noteOutcome(TS, D, Failures + 1, Failures);
          throw;
        }
        ++TS.Counters.ElisionFailures;
        ++TS.Counters.FaultRetries;
      }
      if (++Failures >= D.MaxAttempts) {
        // Fallback (Figure 7 line 13): acquire the lock for real.
        ++TS.Counters.Fallbacks;
        noteOutcome(TS, D, Failures, Failures);
        uint64_t V1 = slowEnterWrite(H, TS);
        return runHoldingRead(H, TS, V1, std::forward<Fn>(F));
      }
      // Retry: widen the conflicting writer's window before burning
      // another attempt (bounded exponential backoff).
      Backoff.pause();
      E = readEnter(H, TS);
    }
  }

  /// Executes \p F while holding the lock; releases via slowReadExit.
  template <typename Fn> auto runHoldingRead(ObjectHeader &H, ThreadState &TS,
                                             uint64_t V, Fn &&F) {
    ScopeExit Release([&] {
      bool Released = slowReadExit(H, TS, V);
      SOLERO_CHECK(Released, "slowReadExit while holding must release");
    });
    ReadGuard G(/*Speculative=*/false);
    return F(G);
  }

  /// The read-mostly engine (Figure 17). \p F returns non-void.
  template <typename Fn> auto runReadMostly(ObjectHeader &H, ThreadState &TS,
                                            Fn &&F) {
    using R = std::invoke_result_t<Fn &, WriteIntent &>;
    ElisionController::Decision D = beginReadDecision(TS);
    if (!D.Speculate) {
      ++TS.Counters.ElisionSkips;
      uint64_t V1 = slowEnterWrite(H, TS);
      return runHoldingMostly(H, TS, V1, std::forward<Fn>(F));
    }
    ExpBackoff Backoff(Config.Adaptive.BackoffSpinsMin,
                       Config.Adaptive.BackoffSpinsMax);
    ReadEntry E = readEnter(H, TS);
    int Failures = 0;
    for (;;) {
      if (E.Holding) {
        noteOutcome(TS, D, Failures, Failures);
        return runHoldingMostly(H, TS, E.V, std::forward<Fn>(F));
      }

      noteAttempt(TS, D, Failures);
      entryFence();
      std::size_t Depth = TS.pushRead(H, E.V);
      WriteIntent W(H, TS, E.V, /*Holding=*/false, Depth);
      try {
        R Result = F(W);
        if (W.Upgraded) {
          // Section completed while holding the upgraded lock.
          exitWrite(H, TS, W.V);
          ++TS.Counters.ElisionSuccesses;
          noteOutcome(TS, D, Failures + 1, Failures);
          return Result;
        }
        TS.popRead();
        if (validate(H, E.V)) {
          ++TS.Counters.ElisionSuccesses;
          noteOutcome(TS, D, Failures + 1, Failures);
          return Result;
        }
        ++TS.Counters.ElisionFailures;
      } catch (WriteIntent::RestartForWrite &) {
        // Upgrade CAS failed: prior reads are unverifiable (Figure 17
        // line 13): acquire for real and re-execute.
        TS.popRead();
        ++TS.Counters.ElisionFailures;
        ++TS.Counters.Fallbacks;
        noteOutcome(TS, D, Failures + 1, Failures + 1);
        uint64_t V1 = slowEnterWrite(H, TS);
        return runHoldingMostly(H, TS, V1, std::forward<Fn>(F));
      } catch (SpeculationFault &SF) {
        if (W.Upgraded) {
          // The abort belongs to an enclosing frame (this frame's record
          // was retired at upgrade); release the upgraded lock first.
          exitWrite(H, TS, W.V);
          throw;
        }
        TS.popRead();
        if (SF.Depth < Depth)
          throw;
        ++TS.Counters.ElisionFailures;
      } catch (...) {
        if (W.Upgraded) {
          // Holding: genuine exception; release and propagate.
          exitWrite(H, TS, W.V);
          throw;
        }
        TS.popRead();
        if (validate(H, E.V)) {
          // Genuine guest exception out of a validated speculation: a
          // success, same as the read-only engine above.
          ++TS.Counters.ElisionSuccesses;
          noteOutcome(TS, D, Failures + 1, Failures);
          throw;
        }
        ++TS.Counters.ElisionFailures;
        ++TS.Counters.FaultRetries;
      }
      if (++Failures >= D.MaxAttempts) {
        ++TS.Counters.Fallbacks;
        noteOutcome(TS, D, Failures, Failures);
        uint64_t V1 = slowEnterWrite(H, TS);
        return runHoldingMostly(H, TS, V1, std::forward<Fn>(F));
      }
      Backoff.pause();
      E = readEnter(H, TS);
    }
  }

  template <typename Fn>
  auto runHoldingMostly(ObjectHeader &H, ThreadState &TS, uint64_t V,
                        Fn &&F) {
    ScopeExit Release([&] {
      bool Released = slowReadExit(H, TS, V);
      SOLERO_CHECK(Released, "slowReadExit while holding must release");
    });
    WriteIntent W(H, TS, V, /*Holding=*/true);
    return F(W);
  }

  RuntimeContext &Ctx;
  SoleroConfig Config;
  ElisionController Ctrl;
};

inline void WriteIntent::acquireForWrite() {
  if (Holding)
    return;
  // Figure 17 line 8: CAS the entry word to thread_id + LOCK_BIT. Success
  // proves no writer intervened since entry, so all reads so far are
  // consistent and the section continues while holding the lock.
  SOLERO_INJECT(SoleroUpgradeCas);
  ++TS.Counters.AtomicRmws;
  uint64_t Expected = V;
  if (H.word().compare_exchange_strong(
          Expected, lockword::soleroHeldWord(TS.tidBits()),
          std::memory_order_acq_rel, std::memory_order_relaxed)) {
    Upgraded = true;
    Holding = true;
    // The frame is no longer speculative; retire its read record so async
    // validation does not trip over the (now stale) entry word. The record
    // retired must be this frame's own — if a nested speculation is still
    // open above us, popping here would silently retire the wrong record.
    SOLERO_CHECK(TS.readDepth() == Depth + 1 &&
                     TS.readRecord(Depth).Header == &H,
                 "write upgrade must retire its own frame's read record");
    TS.popRead();
    return;
  }
  throw RestartForWrite{};
}

} // namespace solero

#endif // SOLERO_CORE_SOLEROLOCK_H

//===- collections/SynchronizedMap.h - Lock-protected map -------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Couples an unsynchronized map (JavaHashMap / JavaTreeMap) with a lock
/// policy, the way the paper's benchmarks access "a single
/// java.util.HashMap object in a synchronized block". Lookups run as
/// read-only critical sections (elidable under SOLERO), mutations as
/// writing critical sections. Policies live in workloads/LockPolicies.h.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_COLLECTIONS_SYNCHRONIZEDMAP_H
#define SOLERO_COLLECTIONS_SYNCHRONIZEDMAP_H

#include <optional>
#include <utility>

namespace solero {

class ReadGuard;

/// A map whose every operation runs inside a critical section of \p Policy.
/// \p MapT must provide get/contains/put/remove/size; \p Policy must
/// provide read(Fn) (Fn takes ReadGuard&) and write(Fn).
template <typename MapT, typename Policy> class SynchronizedMap {
public:
  using KeyType = typename MapT::KeyType;
  using ValueType = typename MapT::ValueType;

  /// Constructs the policy from \p PolicyArgs and default-constructs the map.
  template <typename... Args>
  explicit SynchronizedMap(Args &&...PolicyArgs)
      : Lock(std::forward<Args>(PolicyArgs)...) {}

  std::optional<ValueType> get(const KeyType &Key) {
    // Unwrap to a flat pair inside the section: forwarding std::optional
    // through the elision engine's try/catch region costs several ns of
    // EH-edge spills with GCC 12 (see DESIGN.md "engineering notes").
    auto R = Lock.read([&](ReadGuard &) {
      auto V = Map.get(Key);
      return FlatOpt{V.has_value() ? *V : ValueType{}, V.has_value()};
    });
    if (!R.Has)
      return std::nullopt;
    return R.Value;
  }

  bool contains(const KeyType &Key) {
    return Lock.read([&](ReadGuard &) { return Map.contains(Key); });
  }

  /// A lookup whose section also enters (and immediately exits) a nested
  /// writing section on the same lock — the paper §3.2 misclassification
  /// shape: a block that must be treated as read-only but whose callee
  /// synchronizes for write on the same object without actually mutating.
  /// Under SOLERO the nested write acquisition advances the lock word, so
  /// a speculative execution of the outer section deterministically fails
  /// validation; elision of such sections is pure overhead (the adaptive
  /// controller's target case).
  std::optional<ValueType> getWithNestedWrite(const KeyType &Key) {
    auto R = Lock.read([&](ReadGuard &) {
      auto V = Map.get(Key);
      Lock.write([] {});
      return FlatOpt{V.has_value() ? *V : ValueType{}, V.has_value()};
    });
    if (!R.Has)
      return std::nullopt;
    return R.Value;
  }

  bool put(const KeyType &Key, const ValueType &Value) {
    return Lock.write([&] { return Map.put(Key, Value); });
  }

  bool remove(const KeyType &Key) {
    return Lock.write([&] { return Map.remove(Key); });
  }

  std::size_t size() {
    return Lock.read([&](ReadGuard &) { return Map.size(); });
  }

  /// Runs \p F(map, guard) as one read-only critical section. For compound
  /// read-only operations (and for benches that model longer sections).
  template <typename Fn> decltype(auto) readSection(Fn &&F) {
    return Lock.read([&](ReadGuard &G) { return F(Map, G); });
  }

  /// Runs \p F(map) as one writing critical section.
  template <typename Fn> decltype(auto) writeSection(Fn &&F) {
    return Lock.write([&] { return F(Map); });
  }

  /// The underlying map, for prefill / verification outside measurement.
  MapT &unsynchronized() { return Map; }
  Policy &policy() { return Lock; }

private:
  struct FlatOpt {
    ValueType Value;
    bool Has;
  };

  Policy Lock;
  MapT Map;
};

} // namespace solero

#endif // SOLERO_COLLECTIONS_SYNCHRONIZEDMAP_H

//===- collections/JavaHashMap.h - Chained hash map -------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A java.util.HashMap-style chained hash map (the paper's HashMap
/// microbenchmark substrate): a power-of-two bucket array of singly-linked
/// chains, load factor 0.75, doubling resize.
///
/// Like java.util.HashMap, the map itself is unsynchronized; callers wrap
/// operations in critical sections of whatever lock protocol they choose
/// (see workloads/LockPolicies.h). What makes it SOLERO-ready:
///
///  - Every field a reader touches is a SharedField (relaxed atomic), so
///    speculative readers racing a locked writer read stale or torn-free
///    garbage, never UB; end-of-section validation rejects it.
///  - Readers pin an epoch and writers retire unlinked nodes/tables through
///    EpochReclaimer into a TypeStablePool, so stale pointers always point
///    at well-formed nodes (the JVM-GC guarantee, DESIGN.md).
///  - Traversal loops run under speculationLoopGuard, the paper's
///    async-check-point mechanism, so inconsistent-read cycles abort.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_COLLECTIONS_JAVAHASHMAP_H
#define SOLERO_COLLECTIONS_JAVAHASHMAP_H

#include <cstdint>
#include <functional>
#include <optional>

#include "mm/EpochReclaimer.h"
#include "mm/TypeStablePool.h"
#include "runtime/ReadGuard.h"
#include "runtime/SharedField.h"
#include "support/Assert.h"

namespace solero {

/// Chained hash map over trivially copyable keys and values.
template <typename K, typename V> class JavaHashMap {
public:
  using KeyType = K;
  using ValueType = V;

  /// \p InitialCapacity is rounded up to a power of two.
  explicit JavaHashMap(std::size_t InitialCapacity = 16) {
    std::size_t Cap = 16;
    while (Cap < InitialCapacity)
      Cap <<= 1;
    TablePtr.write(newTable(Cap));
  }

  ~JavaHashMap() {
    Reclaimer.drainAll();
    Table *T = TablePtr.read();
    for (std::size_t I = 0; I <= T->Mask; ++I)
      for (Node *N = T->Buckets[I].read(); N;) {
        Node *Next = N->Next.read();
        Pool.deallocate(N);
        N = Next;
      }
    delete T;
  }

  JavaHashMap(const JavaHashMap &) = delete;
  JavaHashMap &operator=(const JavaHashMap &) = delete;

  /// Read-only lookup; safe to run speculatively inside an elided section.
  std::optional<V> get(const K &Key) const {
    EpochReclaimer::Pin P(Reclaimer);
    const uint64_t H = hashOf(Key);
    const Table *T = TablePtr.read();
    uint32_t Steps = 0;
    for (Node *N = T->Buckets[H & T->Mask].read(); N; N = N->Next.read()) {
      speculationLoopGuard(Steps);
      if (N->Hash.read() == H && N->Key.read() == Key)
        return N->Value.read();
    }
    return std::nullopt;
  }

  /// Read-only membership test; speculation-safe.
  bool contains(const K &Key) const { return get(Key).has_value(); }

  /// Inserts or updates. Caller must hold the protecting lock for writing.
  /// \returns true if the key was newly inserted.
  bool put(const K &Key, const V &Value) {
    const uint64_t H = hashOf(Key);
    Table *T = TablePtr.read();
    SharedField<Node *> &Bucket = T->Buckets[H & T->Mask];
    for (Node *N = Bucket.read(); N; N = N->Next.read()) {
      if (N->Hash.read() == H && N->Key.read() == Key) {
        N->Value.write(Value);
        return false;
      }
    }
    Node *N = Pool.allocate();
    N->Hash.write(H);
    N->Key.write(Key);
    N->Value.write(Value);
    N->Next.write(Bucket.read());
    Bucket.write(N);
    Count.write(Count.read() + 1);
    if (static_cast<std::size_t>(Count.read()) >
        (T->Mask + 1) * 3 / 4) // load factor 0.75, as in java.util.HashMap
      resize(T);
    return true;
  }

  /// Removes a key. Caller must hold the protecting lock for writing.
  /// \returns true if the key was present.
  bool remove(const K &Key) {
    const uint64_t H = hashOf(Key);
    Table *T = TablePtr.read();
    SharedField<Node *> &Bucket = T->Buckets[H & T->Mask];
    Node *Prev = nullptr;
    for (Node *N = Bucket.read(); N; Prev = N, N = N->Next.read()) {
      if (N->Hash.read() != H || !(N->Key.read() == Key))
        continue;
      if (Prev)
        Prev->Next.write(N->Next.read());
      else
        Bucket.write(N->Next.read());
      Count.write(Count.read() - 1);
      retireNode(N);
      return true;
    }
    return false;
  }

  /// Number of entries. Speculation-safe.
  std::size_t size() const {
    return static_cast<std::size_t>(Count.read());
  }

  /// Current bucket count (for tests).
  std::size_t capacity() const { return TablePtr.read()->Mask + 1; }

  /// Visits every entry. Caller must hold the protecting lock (read or
  /// write); intended for verification and prefill, not speculation.
  template <typename Fn> void forEach(Fn &&F) const {
    const Table *T = TablePtr.read();
    for (std::size_t I = 0; I <= T->Mask; ++I)
      for (Node *N = T->Buckets[I].read(); N; N = N->Next.read())
        F(N->Key.read(), N->Value.read());
  }

private:
  struct Node {
    SharedField<uint64_t> Hash;
    SharedField<K> Key;
    SharedField<V> Value;
    SharedField<Node *> Next;
  };

  struct Table {
    explicit Table(std::size_t Cap)
        : Buckets(new SharedField<Node *>[Cap]), Mask(Cap - 1) {}
    std::unique_ptr<SharedField<Node *>[]> Buckets;
    std::size_t Mask;
  };

  static uint64_t hashOf(const K &Key) {
    // SplitMix64 finalizer over std::hash: strong bit diffusion so the
    // low bits used for bucket selection are well mixed.
    uint64_t Z = static_cast<uint64_t>(std::hash<K>{}(Key));
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  static Table *newTable(std::size_t Cap) { return new Table(Cap); }

  void retireNode(Node *N) {
    Reclaimer.retire(
        N,
        +[](void *Obj, void *Arg) {
          static_cast<TypeStablePool<Node> *>(Arg)->deallocate(
              static_cast<Node *>(Obj));
        },
        &Pool);
  }

  void resize(Table *Old) {
    std::size_t NewCap = (Old->Mask + 1) * 2;
    Table *T = newTable(NewCap);
    for (std::size_t I = 0; I <= Old->Mask; ++I) {
      Node *N = Old->Buckets[I].read();
      while (N) {
        Node *Next = N->Next.read();
        SharedField<Node *> &B = T->Buckets[N->Hash.read() & T->Mask];
        N->Next.write(B.read());
        B.write(N);
        N = Next;
      }
    }
    TablePtr.write(T);
    Reclaimer.retire(
        Old, +[](void *Obj, void *) { delete static_cast<Table *>(Obj); },
        nullptr);
  }

  SharedField<Table *> TablePtr{nullptr};
  SharedField<int64_t> Count{0};
  TypeStablePool<Node> Pool;
  mutable EpochReclaimer Reclaimer;
};

} // namespace solero

#endif // SOLERO_COLLECTIONS_JAVAHASHMAP_H

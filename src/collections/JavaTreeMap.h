//===- collections/JavaTreeMap.h - Red-black tree map -----------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A java.util.TreeMap-style red-black tree (the paper's TreeMap
/// microbenchmark substrate). The algorithms are the classic CLR ones as
/// implemented in the JDK: insertion and deletion with recoloring /
/// rotation fixups, deletion via successor key-copy.
///
/// Speculation-safety follows the same recipe as JavaHashMap: SharedField
/// for every reader-visible field, epoch-pinned readers, type-stable node
/// recycling, and speculationLoopGuard in the descent loop (tree descents
/// under inconsistent reads are exactly the "infinite loops induced by
/// inconsistent reads" the paper's async events exist for).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_COLLECTIONS_JAVATREEMAP_H
#define SOLERO_COLLECTIONS_JAVATREEMAP_H

#include <cstdint>
#include <optional>

#include "mm/EpochReclaimer.h"
#include "mm/TypeStablePool.h"
#include "runtime/ReadGuard.h"
#include "runtime/SharedField.h"
#include "support/Assert.h"

namespace solero {

/// Ordered map over trivially copyable keys (compared with <) and values.
template <typename K, typename V> class JavaTreeMap {
public:
  using KeyType = K;
  using ValueType = V;

  JavaTreeMap() = default;

  ~JavaTreeMap() {
    Reclaimer.drainAll();
    freeSubtree(Root.read());
  }

  JavaTreeMap(const JavaTreeMap &) = delete;
  JavaTreeMap &operator=(const JavaTreeMap &) = delete;

  /// Read-only lookup; safe to run speculatively inside an elided section.
  std::optional<V> get(const K &Key) const {
    EpochReclaimer::Pin P(Reclaimer);
    uint32_t Steps = 0;
    Node *N = Root.read();
    while (N) {
      speculationLoopGuard(Steps);
      K NK = N->Key.read();
      if (Key < NK)
        N = N->Left.read();
      else if (NK < Key)
        N = N->Right.read();
      else
        return N->Value.read();
    }
    return std::nullopt;
  }

  bool contains(const K &Key) const { return get(Key).has_value(); }

  /// Smallest key, if any. Read-only; speculation-safe.
  std::optional<K> firstKey() const {
    EpochReclaimer::Pin P(Reclaimer);
    uint32_t Steps = 0;
    Node *N = Root.read();
    if (!N)
      return std::nullopt;
    for (Node *L = N->Left.read(); L; L = N->Left.read()) {
      speculationLoopGuard(Steps);
      N = L;
    }
    return N->Key.read();
  }

  /// Inserts or updates. Caller must hold the protecting lock for writing.
  /// \returns true if the key was newly inserted.
  bool put(const K &Key, const V &Value) {
    Node *T = Root.read();
    if (!T) {
      Node *N = makeNode(Key, Value, nullptr);
      N->Color.write(Black);
      Root.write(N);
      Count.write(Count.read() + 1);
      return true;
    }
    Node *Parent;
    for (;;) {
      Parent = T;
      K TK = T->Key.read();
      if (Key < TK) {
        T = T->Left.read();
        if (!T)
          break;
      } else if (TK < Key) {
        T = T->Right.read();
        if (!T)
          break;
      } else {
        T->Value.write(Value);
        return false;
      }
    }
    Node *N = makeNode(Key, Value, Parent);
    if (Key < Parent->Key.read())
      Parent->Left.write(N);
    else
      Parent->Right.write(N);
    fixAfterInsertion(N);
    Count.write(Count.read() + 1);
    return true;
  }

  /// Removes a key. Caller must hold the protecting lock for writing.
  /// \returns true if the key was present.
  bool remove(const K &Key) {
    Node *P = findNode(Key);
    if (!P)
      return false;
    deleteEntry(P);
    Count.write(Count.read() - 1);
    return true;
  }

  std::size_t size() const { return static_cast<std::size_t>(Count.read()); }

  /// In-order visit. Caller must hold the protecting lock; for
  /// verification and prefill, not speculation.
  template <typename Fn> void forEachInOrder(Fn &&F) const {
    visitInOrder(Root.read(), F);
  }

  /// Verifies the red-black invariants (for tests). Caller must hold the
  /// protecting lock. \returns the black height, or -1 on violation.
  int checkRedBlackInvariants() const {
    Node *R = Root.read();
    if (R && R->Color.read() != Black)
      return -1;
    return blackHeight(R);
  }

private:
  static constexpr uint8_t Red = 0;
  static constexpr uint8_t Black = 1;

  struct Node {
    SharedField<K> Key;
    SharedField<V> Value;
    SharedField<Node *> Left;
    SharedField<Node *> Right;
    SharedField<Node *> Parent;
    SharedField<uint8_t> Color;
  };

  Node *makeNode(const K &Key, const V &Value, Node *Parent) {
    Node *N = Pool.allocate();
    N->Key.write(Key);
    N->Value.write(Value);
    N->Left.write(nullptr);
    N->Right.write(nullptr);
    N->Parent.write(Parent);
    N->Color.write(Red);
    return N;
  }

  void retireNode(Node *N) {
    Reclaimer.retire(
        N,
        +[](void *Obj, void *Arg) {
          static_cast<TypeStablePool<Node> *>(Arg)->deallocate(
              static_cast<Node *>(Obj));
        },
        &Pool);
  }

  Node *findNode(const K &Key) const {
    Node *N = Root.read();
    while (N) {
      K NK = N->Key.read();
      if (Key < NK)
        N = N->Left.read();
      else if (NK < Key)
        N = N->Right.read();
      else
        return N;
    }
    return nullptr;
  }

  // --- JDK TreeMap helpers (null-tolerant accessors) ---------------------

  static Node *parentOf(Node *N) { return N ? N->Parent.read() : nullptr; }
  static Node *leftOf(Node *N) { return N ? N->Left.read() : nullptr; }
  static Node *rightOf(Node *N) { return N ? N->Right.read() : nullptr; }
  static uint8_t colorOf(Node *N) { return N ? N->Color.read() : Black; }
  static void setColor(Node *N, uint8_t C) {
    if (N)
      N->Color.write(C);
  }

  void rotateLeft(Node *P) {
    if (!P)
      return;
    Node *R = P->Right.read();
    P->Right.write(R->Left.read());
    if (R->Left.read())
      R->Left.read()->Parent.write(P);
    R->Parent.write(P->Parent.read());
    if (!P->Parent.read())
      Root.write(R);
    else if (P->Parent.read()->Left.read() == P)
      P->Parent.read()->Left.write(R);
    else
      P->Parent.read()->Right.write(R);
    R->Left.write(P);
    P->Parent.write(R);
  }

  void rotateRight(Node *P) {
    if (!P)
      return;
    Node *L = P->Left.read();
    P->Left.write(L->Right.read());
    if (L->Right.read())
      L->Right.read()->Parent.write(P);
    L->Parent.write(P->Parent.read());
    if (!P->Parent.read())
      Root.write(L);
    else if (P->Parent.read()->Right.read() == P)
      P->Parent.read()->Right.write(L);
    else
      P->Parent.read()->Left.write(L);
    L->Right.write(P);
    P->Parent.write(L);
  }

  void fixAfterInsertion(Node *X) {
    X->Color.write(Red);
    while (X && X != Root.read() && colorOf(parentOf(X)) == Red) {
      if (parentOf(X) == leftOf(parentOf(parentOf(X)))) {
        Node *Y = rightOf(parentOf(parentOf(X)));
        if (colorOf(Y) == Red) {
          setColor(parentOf(X), Black);
          setColor(Y, Black);
          setColor(parentOf(parentOf(X)), Red);
          X = parentOf(parentOf(X));
        } else {
          if (X == rightOf(parentOf(X))) {
            X = parentOf(X);
            rotateLeft(X);
          }
          setColor(parentOf(X), Black);
          setColor(parentOf(parentOf(X)), Red);
          rotateRight(parentOf(parentOf(X)));
        }
      } else {
        Node *Y = leftOf(parentOf(parentOf(X)));
        if (colorOf(Y) == Red) {
          setColor(parentOf(X), Black);
          setColor(Y, Black);
          setColor(parentOf(parentOf(X)), Red);
          X = parentOf(parentOf(X));
        } else {
          if (X == leftOf(parentOf(X))) {
            X = parentOf(X);
            rotateRight(X);
          }
          setColor(parentOf(X), Black);
          setColor(parentOf(parentOf(X)), Red);
          rotateLeft(parentOf(parentOf(X)));
        }
      }
    }
    setColor(Root.read(), Black);
  }

  static Node *successor(Node *T) {
    if (!T)
      return nullptr;
    if (T->Right.read()) {
      Node *P = T->Right.read();
      while (P->Left.read())
        P = P->Left.read();
      return P;
    }
    Node *P = T->Parent.read();
    Node *Ch = T;
    while (P && Ch == P->Right.read()) {
      Ch = P;
      P = P->Parent.read();
    }
    return P;
  }

  void deleteEntry(Node *P) {
    // Interior node: copy the successor's key/value, then delete the
    // successor (java.util.TreeMap's approach).
    if (P->Left.read() && P->Right.read()) {
      Node *S = successor(P);
      P->Key.write(S->Key.read());
      P->Value.write(S->Value.read());
      P = S;
    }
    Node *Replacement = P->Left.read() ? P->Left.read() : P->Right.read();
    if (Replacement) {
      Replacement->Parent.write(P->Parent.read());
      Node *PP = P->Parent.read();
      if (!PP)
        Root.write(Replacement);
      else if (P == PP->Left.read())
        PP->Left.write(Replacement);
      else
        PP->Right.write(Replacement);
      P->Left.write(nullptr);
      P->Right.write(nullptr);
      P->Parent.write(nullptr);
      if (P->Color.read() == Black)
        fixAfterDeletion(Replacement);
    } else if (!P->Parent.read()) {
      Root.write(nullptr);
    } else {
      if (P->Color.read() == Black)
        fixAfterDeletion(P);
      Node *PP = P->Parent.read();
      if (PP) {
        if (P == PP->Left.read())
          PP->Left.write(nullptr);
        else if (P == PP->Right.read())
          PP->Right.write(nullptr);
        P->Parent.write(nullptr);
      }
    }
    retireNode(P);
  }

  void fixAfterDeletion(Node *X) {
    while (X != Root.read() && colorOf(X) == Black) {
      if (X == leftOf(parentOf(X))) {
        Node *Sib = rightOf(parentOf(X));
        if (colorOf(Sib) == Red) {
          setColor(Sib, Black);
          setColor(parentOf(X), Red);
          rotateLeft(parentOf(X));
          Sib = rightOf(parentOf(X));
        }
        if (colorOf(leftOf(Sib)) == Black && colorOf(rightOf(Sib)) == Black) {
          setColor(Sib, Red);
          X = parentOf(X);
        } else {
          if (colorOf(rightOf(Sib)) == Black) {
            setColor(leftOf(Sib), Black);
            setColor(Sib, Red);
            rotateRight(Sib);
            Sib = rightOf(parentOf(X));
          }
          setColor(Sib, colorOf(parentOf(X)));
          setColor(parentOf(X), Black);
          setColor(rightOf(Sib), Black);
          rotateLeft(parentOf(X));
          X = Root.read();
        }
      } else {
        Node *Sib = leftOf(parentOf(X));
        if (colorOf(Sib) == Red) {
          setColor(Sib, Black);
          setColor(parentOf(X), Red);
          rotateRight(parentOf(X));
          Sib = leftOf(parentOf(X));
        }
        if (colorOf(rightOf(Sib)) == Black && colorOf(leftOf(Sib)) == Black) {
          setColor(Sib, Red);
          X = parentOf(X);
        } else {
          if (colorOf(leftOf(Sib)) == Black) {
            setColor(rightOf(Sib), Black);
            setColor(Sib, Red);
            rotateLeft(Sib);
            Sib = leftOf(parentOf(X));
          }
          setColor(Sib, colorOf(parentOf(X)));
          setColor(parentOf(X), Black);
          setColor(leftOf(Sib), Black);
          rotateRight(parentOf(X));
          X = Root.read();
        }
      }
    }
    setColor(X, Black);
  }

  template <typename Fn> void visitInOrder(Node *N, Fn &F) const {
    if (!N)
      return;
    visitInOrder(N->Left.read(), F);
    F(N->Key.read(), N->Value.read());
    visitInOrder(N->Right.read(), F);
  }

  /// \returns subtree black height, or -1 on a red-black violation.
  int blackHeight(Node *N) const {
    if (!N)
      return 1;
    Node *L = N->Left.read(), *R = N->Right.read();
    if (N->Color.read() == Red &&
        (colorOf(L) == Red || colorOf(R) == Red))
      return -1; // red node with red child
    if ((L && L->Parent.read() != N) || (R && R->Parent.read() != N))
      return -1; // broken parent links
    int LH = blackHeight(L);
    int RH = blackHeight(R);
    if (LH < 0 || RH < 0 || LH != RH)
      return -1;
    return LH + (N->Color.read() == Black ? 1 : 0);
  }

  void freeSubtree(Node *N) {
    if (!N)
      return;
    freeSubtree(N->Left.read());
    freeSubtree(N->Right.read());
    Pool.deallocate(N);
  }

  SharedField<Node *> Root{nullptr};
  SharedField<int64_t> Count{0};
  TypeStablePool<Node> Pool;
  mutable EpochReclaimer Reclaimer;
};

} // namespace solero

#endif // SOLERO_COLLECTIONS_JAVATREEMAP_H

//===- support/Distributions.h - Workload sampling distributions *- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two distributions the KV service workload is built from, both
/// deterministic functions of a support/Rng.h stream:
///
///   ZipfianSampler  — skewed key popularity (Gray et al., "Quickly
///                     generating billion-record synthetic databases",
///                     SIGMOD 1994; the YCSB generator uses the same
///                     inversion approximation). O(N) zeta precompute at
///                     construction, O(1) per sample.
///   PoissonProcess  — open-loop arrival schedule: exponential
///                     inter-arrival gaps for a configured offered rate.
///
/// Closed-loop benchmarks (fig12/fig13) issue the next op the instant the
/// previous one returns, so the measured system sets its own arrival rate
/// and queueing delay is invisible. The KV service bench instead samples
/// arrival timestamps from PoissonProcess and charges each request from
/// its *scheduled* arrival, which is what exposes tail latency under load
/// (see DESIGN.md section 15).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_DISTRIBUTIONS_H
#define SOLERO_SUPPORT_DISTRIBUTIONS_H

#include <cmath>
#include <cstdint>

#include "support/Assert.h"
#include "support/Rng.h"

namespace solero {

/// Zipfian rank sampler over ranks [0, N): rank R is drawn with
/// probability proportional to 1 / (R+1)^Theta. Theta in (0, 1); the
/// YCSB-conventional default 0.99 makes the most popular key draw ~9% of
/// a 100K-key workload.
class ZipfianSampler {
public:
  ZipfianSampler(uint64_t N, double Theta = 0.99) : N(N), Theta(Theta) {
    SOLERO_CHECK(N > 0, "ZipfianSampler over an empty rank space");
    SOLERO_CHECK(Theta > 0.0 && Theta < 1.0,
                 "ZipfianSampler theta outside (0, 1)");
    for (uint64_t I = 0; I < N; ++I)
      ZetaN += 1.0 / std::pow(static_cast<double>(I + 1), Theta);
    Alpha = 1.0 / (1.0 - Theta);
    double Zeta2 = 1.0 + std::pow(0.5, Theta);
    Eta = (1.0 - std::pow(2.0 / static_cast<double>(N), 1.0 - Theta)) /
          (1.0 - Zeta2 / ZetaN);
  }

  /// Next rank (0 = most popular). Consumes exactly one value of \p Rng,
  /// so streams are reproducible from the seed.
  uint64_t next(Xoshiro256StarStar &Rng) const {
    double U = Rng.nextDouble();
    double Uz = U * ZetaN;
    if (Uz < 1.0)
      return 0;
    if (Uz < 1.0 + std::pow(0.5, Theta))
      return 1;
    uint64_t Rank = static_cast<uint64_t>(
        static_cast<double>(N) * std::pow(Eta * U - Eta + 1.0, Alpha));
    return Rank >= N ? N - 1 : Rank;
  }

  /// Next rank mixed through SplitMix64 and folded back into [0, N): the
  /// popular ranks stay popular but land on decorrelated keys, so hot keys
  /// spread across hash-table probe chains and shards instead of
  /// clustering at rank 0, 1, 2... (the YCSB "scrambled zipfian" shape).
  uint64_t nextScrambled(Xoshiro256StarStar &Rng) const {
    SplitMix64 Mix(next(Rng));
    return Mix.next() % N;
  }

  /// Analytic probability of rank \p R (for statistical tests).
  double probabilityOfRank(uint64_t R) const {
    return 1.0 / (std::pow(static_cast<double>(R + 1), Theta) * ZetaN);
  }

  uint64_t rankCount() const { return N; }

private:
  uint64_t N;
  double Theta;
  double ZetaN = 0.0;
  double Alpha = 0.0;
  double Eta = 0.0;
};

/// Exponential inter-arrival gap generator: the arrival schedule of an
/// open-loop Poisson process offering \p RatePerSec events per second.
class PoissonProcess {
public:
  explicit PoissonProcess(double RatePerSec) : MeanGapNs(1e9 / RatePerSec) {
    SOLERO_CHECK(RatePerSec > 0.0, "PoissonProcess with a non-positive rate");
  }

  /// Next inter-arrival gap in nanoseconds (at least 1). Consumes exactly
  /// one value of \p Rng.
  uint64_t nextGapNs(Xoshiro256StarStar &Rng) const {
    // 1 - nextDouble() is in (0, 1]; log of it is finite and <= 0.
    double Gap = -std::log(1.0 - Rng.nextDouble()) * MeanGapNs;
    return Gap < 1.0 ? 1 : static_cast<uint64_t>(Gap);
  }

  double meanGapNs() const { return MeanGapNs; }

private:
  double MeanGapNs;
};

/// Stateful open-loop arrival schedule over a PoissonProcess, with
/// *bounded catch-up* instead of re-anchoring.
///
/// The coordinated-omission hazard: a generator that falls behind (an
/// injected stall, a long GC-like pause, a chaos fault) and silently
/// resets its schedule to "now" erases exactly the queueing delay the
/// open-loop design exists to expose — every request issued after the
/// stall looks punctual. This schedule never re-anchors. Arrivals keep
/// their scheduled timestamps; after a stall the generator issues the
/// backlog as a catch-up burst, each request still charged from its
/// scheduled arrival, so the stall shows up in the tail honestly.
///
/// Unbounded catch-up has its own pathology: a multi-second stall at a
/// high offered rate would queue millions of arrivals and spend the rest
/// of the run draining them. So the backlog is *bounded*: when the
/// schedule falls more than CatchUpBurstMax mean gaps behind "now", the
/// excess arrivals are skipped — sampled through the same RNG stream so
/// determinism holds, and **counted** in skippedArrivals() so the report
/// can say "this generator shed N arrivals" instead of pretending they
/// never existed. The most recent CatchUpBurstMax arrivals always survive
/// to be issued late, which is what keeps the tail honest.
class ArrivalSchedule {
public:
  /// \p StartNs anchors the schedule; the first arrival is one sampled
  /// gap after it. \p CatchUpBurstMax bounds the backlog in *mean gaps*
  /// (approximately: arrivals).
  ArrivalSchedule(const PoissonProcess &Proc, uint64_t StartNs,
                  Xoshiro256StarStar &Rng, uint64_t CatchUpBurstMax = 1024)
      : Proc(Proc), Next(StartNs + Proc.nextGapNs(Rng)),
        BacklogBoundNs(static_cast<uint64_t>(
            Proc.meanGapNs() * static_cast<double>(CatchUpBurstMax))) {}

  /// The scheduled timestamp of the next arrival (the time latency is
  /// charged from).
  uint64_t nextArrivalNs() const { return Next; }

  /// Advances past the current arrival. \p Compression > 1 shrinks the
  /// sampled gap (burst phases); the RNG consumption is one value either
  /// way, so seeded streams stay aligned.
  void advance(Xoshiro256StarStar &Rng, double Compression = 1.0) {
    uint64_t Gap = Proc.nextGapNs(Rng);
    if (Compression > 1.0) {
      Gap = static_cast<uint64_t>(static_cast<double>(Gap) / Compression);
      if (Gap == 0)
        Gap = 1;
    }
    Next += Gap;
  }

  /// Enforces the backlog bound against \p NowNs: skips (and counts)
  /// arrivals until the schedule is within CatchUpBurstMax mean gaps of
  /// now. Returns the number skipped by this call. Call once per
  /// dispatch loop iteration; in the common punctual case it is two
  /// compares.
  uint64_t boundBacklog(uint64_t NowNs, Xoshiro256StarStar &Rng) {
    if (NowNs <= Next || NowNs - Next <= BacklogBoundNs)
      return 0;
    const uint64_t Target = NowNs - BacklogBoundNs;
    uint64_t SkippedNow = 0;
    while (Next < Target) {
      Next += Proc.nextGapNs(Rng);
      ++SkippedNow;
    }
    Skipped += SkippedNow;
    return SkippedNow;
  }

  /// Total arrivals shed by boundBacklog() — the honest ledger of what
  /// the generator could not deliver late.
  uint64_t skippedArrivals() const { return Skipped; }

  uint64_t backlogBoundNs() const { return BacklogBoundNs; }

private:
  const PoissonProcess &Proc;
  uint64_t Next;
  uint64_t BacklogBoundNs;
  uint64_t Skipped = 0;
};

} // namespace solero

#endif // SOLERO_SUPPORT_DISTRIBUTIONS_H

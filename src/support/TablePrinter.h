//===- support/TablePrinter.h - Console table formatting --------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width console tables. Every bench binary regenerates one of the
/// paper's tables or figure data series; this printer gives them a uniform,
/// diffable text form.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_TABLEPRINTER_H
#define SOLERO_SUPPORT_TABLEPRINTER_H

#include <cstdio>
#include <string>
#include <vector>

namespace solero {

/// Accumulates rows of string cells and prints them with aligned columns.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Appends a data row. Shorter rows are padded with empty cells.
  void addRow(std::vector<std::string> Cells);

  /// Prints the whole table to \p Out (header, rule, rows).
  void print(std::FILE *Out = stdout) const;

  /// Formats a double with \p Decimals fraction digits.
  static std::string num(double Value, int Decimals = 2);

  /// Formats a ratio as a percentage string ("12.3%").
  static std::string percent(double Fraction, int Decimals = 1);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace solero

#endif // SOLERO_SUPPORT_TABLEPRINTER_H

//===- support/TablePrinter.cpp - Console table formatting ----------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <cstdio>

using namespace solero;

TablePrinter::TablePrinter(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Cells.resize(Header.size());
  Rows.push_back(std::move(Cells));
}

void TablePrinter::print(std::FILE *Out) const {
  std::vector<std::size_t> Widths(Header.size());
  for (std::size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (std::size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto PrintRow = [&](const std::vector<std::string> &Cells) {
    for (std::size_t I = 0; I < Cells.size(); ++I)
      std::fprintf(Out, "%s%-*s", I == 0 ? "" : "  ",
                   static_cast<int>(Widths[I]), Cells[I].c_str());
    std::fprintf(Out, "\n");
  };

  PrintRow(Header);
  std::size_t Total = 0;
  for (std::size_t W : Widths)
    Total += W;
  Total += 2 * (Header.empty() ? 0 : Header.size() - 1);
  std::string Rule(Total, '-');
  std::fprintf(Out, "%s\n", Rule.c_str());
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string TablePrinter::num(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string TablePrinter::percent(double Fraction, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Decimals, Fraction * 100.0);
  return Buf;
}

//===- support/CliParser.cpp - Tiny command-line parser -------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "support/CliParser.h"

#include <cstdlib>
#include <cstring>

using namespace solero;

CliParser::CliParser(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--", 2) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Body = Arg + 2;
    auto Eq = Body.find('=');
    if (Eq != std::string::npos) {
      Flags[Body.substr(0, Eq)] = Body.substr(Eq + 1);
      continue;
    }
    // Bare `--switch`. Values must use the unambiguous `--flag=value` form.
    Flags[Body] = "";
  }
}

bool CliParser::has(const std::string &Name) const {
  return Flags.count(Name) != 0;
}

std::string CliParser::getString(const std::string &Name,
                                 const std::string &Default) const {
  auto It = Flags.find(Name);
  return It == Flags.end() ? Default : It->second;
}

int64_t CliParser::getInt(const std::string &Name, int64_t Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end() || It->second.empty())
    return Default;
  return std::strtoll(It->second.c_str(), nullptr, 10);
}

double CliParser::getDouble(const std::string &Name, double Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end() || It->second.empty())
    return Default;
  return std::strtod(It->second.c_str(), nullptr);
}

bool CliParser::getBool(const std::string &Name, bool Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end())
    return Default;
  if (It->second.empty() || It->second == "1" || It->second == "true" ||
      It->second == "yes")
    return true;
  return false;
}

std::vector<int> CliParser::getIntList(const std::string &Name,
                                       std::vector<int> Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end() || It->second.empty())
    return Default;
  std::vector<int> Result;
  const std::string &S = It->second;
  std::size_t Pos = 0;
  while (Pos < S.size()) {
    std::size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    Result.push_back(std::atoi(S.substr(Pos, Comma - Pos).c_str()));
    Pos = Comma + 1;
  }
  return Result;
}

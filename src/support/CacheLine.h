//===- support/CacheLine.h - Cache-line utilities ---------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-line size constant and a padding wrapper used to keep per-thread
/// counters and lock words from false sharing. The paper's motivation is
/// cache coherence traffic caused by lock-variable writes; the measurement
/// infrastructure must not add accidental sharing of its own.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_CACHELINE_H
#define SOLERO_SUPPORT_CACHELINE_H

#include <cstddef>
#include <new>

namespace solero {

/// Size in bytes of the destructive-interference granule. 64 bytes on every
/// mainstream x86-64 and POWER implementation.
inline constexpr std::size_t CacheLineSize = 64;

/// Wraps \p T so that each instance occupies its own cache line.
template <typename T> struct alignas(CacheLineSize) CacheLinePadded {
  T Value{};

  T &operator*() { return Value; }
  const T &operator*() const { return Value; }
  T *operator->() { return &Value; }
  const T *operator->() const { return &Value; }
};

} // namespace solero

#endif // SOLERO_SUPPORT_CACHELINE_H

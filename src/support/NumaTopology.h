//===- support/NumaTopology.h - NUMA/CPU topology detection -----*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal NUMA topology map for node-local data placement. Detection reads
/// the Linux sysfs node directory (`/sys/devices/system/node/node*/cpulist`)
/// once at first use; on non-Linux hosts, restricted containers, or
/// single-socket machines it degrades to one node covering every CPU, so
/// callers can partition unconditionally.
///
/// The BRAVO visible-readers table partitions its slot groups by the node a
/// thread first publishes from, keeping reader indication writes node-local
/// (the coherence traffic a centralized reader count causes is worst across
/// sockets).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_NUMATOPOLOGY_H
#define SOLERO_SUPPORT_NUMATOPOLOGY_H

#include <cstdint>
#include <vector>

namespace solero {

/// Immutable snapshot of the host's NUMA node / CPU layout.
class NumaTopology {
public:
  /// The process-wide topology (detected once, then cached).
  static const NumaTopology &instance();

  /// Number of NUMA nodes; at least 1.
  unsigned nodeCount() const { return Nodes; }

  /// Node of \p Cpu; 0 for CPUs the map does not cover (hotplug, parse
  /// failure) so the result is always a valid partition index.
  unsigned nodeOf(unsigned Cpu) const {
    return Cpu < CpuToNode.size() ? CpuToNode[Cpu] : 0;
  }

  /// CPU the calling thread is currently running on (0 where the OS does
  /// not expose it). Racy by nature: the scheduler may migrate the thread
  /// the next instant, so callers must treat it as a placement hint only.
  static unsigned currentCpu();

  /// Number of CPUs the calling thread may run on (its affinity mask), at
  /// least 1. The pinning denominator: worker T pins to CPU T % cpuCount().
  static unsigned cpuCount();

  /// Pins the calling thread to \p Cpu. Returns false (leaving affinity
  /// unchanged) where the syscall is unavailable, the CPU does not exist,
  /// or a restricted container rejects the mask — callers fall back to
  /// floating threads. The KV service bench pins its load generators so
  /// tail-latency percentiles measure the lock protocol, not scheduler
  /// migration noise.
  static bool pinCurrentThreadToCpu(unsigned Cpu);

  /// Node of the calling thread's current CPU (placement hint; see
  /// currentCpu()).
  unsigned currentNode() const { return nodeOf(currentCpu()); }

  /// Builds the map from an explicit cpu -> node table (testing hook; the
  /// detected instance() is what production code uses).
  NumaTopology(unsigned NodeCount, std::vector<uint8_t> CpuNodeMap)
      : Nodes(NodeCount ? NodeCount : 1), CpuToNode(std::move(CpuNodeMap)) {}

private:
  NumaTopology() = default;
  static NumaTopology detect();

  unsigned Nodes = 1;
  std::vector<uint8_t> CpuToNode; ///< indexed by CPU id
};

} // namespace solero

#endif // SOLERO_SUPPORT_NUMATOPOLOGY_H

//===- support/Rng.h - Deterministic random number generators ---*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small, fast, seedable generators used by workloads and property tests.
/// Determinism matters: every randomized test and benchmark in this
/// repository is reproducible from its seed.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_RNG_H
#define SOLERO_SUPPORT_RNG_H

#include <cstdint>

namespace solero {

/// SplitMix64 (Steele, Lea, Vigna). Used directly for cheap streams and to
/// seed Xoshiro256StarStar.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// xoshiro256** 1.0 (Blackman, Vigna). The workload generators' main PRNG.
class Xoshiro256StarStar {
public:
  /// Default: seed 0 (reseed before use for distinct streams).
  Xoshiro256StarStar() : Xoshiro256StarStar(0) {}

  explicit Xoshiro256StarStar(uint64_t Seed) {
    SplitMix64 Sm(Seed);
    for (uint64_t &Word : S)
      Word = Sm.next();
  }

  uint64_t next() {
    const uint64_t Result = rotl(S[1] * 5, 7) * 9;
    const uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Uniform value in [0, Bound). Uses the fixed-point multiply trick; the
  /// modulo bias is negligible for the bounds used here (< 2^32).
  uint64_t nextBounded(uint64_t Bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns true with probability \p Percent / 100.
  bool nextPercent(unsigned Percent) { return nextBounded(100) < Percent; }

  /// Uniform double in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t S[4];
};

} // namespace solero

#endif // SOLERO_SUPPORT_RNG_H

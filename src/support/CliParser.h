//===- support/CliParser.h - Tiny command-line parser -----------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal `--flag=value` / `--switch` parser shared by the bench and
/// example binaries. Values require the `=` form; a bare `--switch` is a
/// boolean true.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_CLIPARSER_H
#define SOLERO_SUPPORT_CLIPARSER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace solero {

/// Parses `argv` into a flag map. Unknown flags are kept; callers query the
/// flags they understand and may call reportUnknown() for strictness.
class CliParser {
public:
  CliParser(int Argc, char **Argv);

  /// True if `--Name` appeared (with or without a value).
  bool has(const std::string &Name) const;

  /// Value of `--Name`, or \p Default when absent.
  std::string getString(const std::string &Name,
                        const std::string &Default) const;
  int64_t getInt(const std::string &Name, int64_t Default) const;
  double getDouble(const std::string &Name, double Default) const;
  bool getBool(const std::string &Name, bool Default) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string> &positional() const { return Positional; }

  /// Comma-separated integer list flag, e.g. `--threads=1,2,4,8,16`.
  std::vector<int> getIntList(const std::string &Name,
                              std::vector<int> Default) const;

private:
  std::map<std::string, std::string> Flags;
  std::vector<std::string> Positional;
};

} // namespace solero

#endif // SOLERO_SUPPORT_CLIPARSER_H

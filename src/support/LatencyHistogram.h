//===- support/LatencyHistogram.h - Log-bucketed latency histogram -*- C++ -*-//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HDR-histogram-style log-bucketed latency recorder. Values (nanoseconds)
/// index into 2^SubBucketBits linear sub-buckets per power of two, bounding
/// the relative quantile error at 1/2^SubBucketBits (~3.1% here) across the
/// full uint64 range with a fixed ~15KB footprint.
///
/// Recording is a single relaxed atomic increment with no allocation, so
/// one histogram per load-generator thread records on the request path
/// without synchronizing with anything; after the run the per-thread
/// histograms merge into one (mergeFrom) and quantiles are read off the
/// cumulative bucket counts. Relaxed ordering is safe because merge
/// happens after the recording threads join (or for a monitoring thread
/// that tolerates slightly stale counts).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_LATENCYHISTOGRAM_H
#define SOLERO_SUPPORT_LATENCYHISTOGRAM_H

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

#include "support/Assert.h"

namespace solero {

/// Fixed-size log-bucketed histogram of uint64 values (nanoseconds by
/// convention). Copyable only when quiescent (copy reads with relaxed
/// loads).
class LatencyHistogram {
public:
  static constexpr unsigned SubBucketBits = 5;
  static constexpr uint64_t SubBucketCount = 1ull << SubBucketBits;
  /// Values below SubBucketCount are exact; above, one octave of
  /// SubBucketCount sub-buckets per possible MSB position (SubBucketBits
  /// through 63), so the top octave (MSB 63) still indexes in range.
  static constexpr std::size_t BucketCount =
      (64 - SubBucketBits + 1) << SubBucketBits;

  LatencyHistogram() = default;

  LatencyHistogram(const LatencyHistogram &Other) { mergeFrom(Other); }
  LatencyHistogram &operator=(const LatencyHistogram &) = delete;

  /// Records one value. Relaxed increment; safe from the owning thread
  /// concurrently with mergeFrom/quantile readers.
  void record(uint64_t ValueNs) {
    Buckets[bucketIndex(ValueNs)].fetch_add(1, std::memory_order_relaxed);
    uint64_t Max = MaxValue.load(std::memory_order_relaxed);
    while (ValueNs > Max &&
           !MaxValue.compare_exchange_weak(Max, ValueNs,
                                           std::memory_order_relaxed))
      ;
  }

  /// Adds every count of \p Other into this histogram.
  void mergeFrom(const LatencyHistogram &Other) {
    for (std::size_t I = 0; I < BucketCount; ++I) {
      uint64_t C = Other.Buckets[I].load(std::memory_order_relaxed);
      if (C)
        Buckets[I].fetch_add(C, std::memory_order_relaxed);
    }
    uint64_t OtherMax = Other.MaxValue.load(std::memory_order_relaxed);
    uint64_t Max = MaxValue.load(std::memory_order_relaxed);
    while (OtherMax > Max &&
           !MaxValue.compare_exchange_weak(Max, OtherMax,
                                           std::memory_order_relaxed))
      ;
  }

  /// Total recorded values.
  uint64_t count() const {
    uint64_t Total = 0;
    for (const auto &B : Buckets)
      Total += B.load(std::memory_order_relaxed);
    return Total;
  }

  /// The \p Q quantile (0..1) as a bucket-midpoint estimate; 0 when empty.
  /// Exact for values < SubBucketCount, within ~3.1% above.
  uint64_t quantile(double Q) const {
    SOLERO_CHECK(Q >= 0.0 && Q <= 1.0, "quantile out of range");
    uint64_t Total = count();
    if (Total == 0)
      return 0;
    // Rank of the q-th value, 1-based, matching the "nearest rank" oracle.
    uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Total));
    if (Rank == 0)
      Rank = 1;
    uint64_t Seen = 0;
    for (std::size_t I = 0; I < BucketCount; ++I) {
      Seen += Buckets[I].load(std::memory_order_relaxed);
      if (Seen >= Rank)
        return bucketMidpoint(I);
    }
    return MaxValue.load(std::memory_order_relaxed);
  }

  /// Largest recorded value (exact, not bucketed).
  uint64_t max() const { return MaxValue.load(std::memory_order_relaxed); }

  /// Mean of the bucket-midpoint estimates; 0 when empty.
  double mean() const {
    uint64_t Total = 0;
    double Sum = 0;
    for (std::size_t I = 0; I < BucketCount; ++I) {
      uint64_t C = Buckets[I].load(std::memory_order_relaxed);
      if (!C)
        continue;
      Total += C;
      Sum += static_cast<double>(C) * static_cast<double>(bucketMidpoint(I));
    }
    return Total ? Sum / static_cast<double>(Total) : 0.0;
  }

  /// Resets every bucket to zero (not thread-safe against recorders).
  void reset() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    MaxValue.store(0, std::memory_order_relaxed);
  }

  /// Bucket index of \p Value: identity below SubBucketCount, else octave
  /// of the MSB plus the SubBucketBits bits below it.
  static std::size_t bucketIndex(uint64_t Value) {
    if (Value < SubBucketCount)
      return static_cast<std::size_t>(Value);
    unsigned Msb = 63u - static_cast<unsigned>(std::countl_zero(Value));
    unsigned Shift = Msb - SubBucketBits;
    uint64_t Sub = (Value >> Shift) & (SubBucketCount - 1);
    return ((static_cast<std::size_t>(Msb) - SubBucketBits + 1)
            << SubBucketBits) +
           static_cast<std::size_t>(Sub);
  }

  /// Inclusive lower bound of bucket \p Index.
  static uint64_t bucketLowerBound(std::size_t Index) {
    if (Index < SubBucketCount)
      return Index;
    std::size_t Octave = Index >> SubBucketBits;
    uint64_t Sub = Index & (SubBucketCount - 1);
    unsigned Shift = static_cast<unsigned>(Octave - 1);
    return (SubBucketCount | Sub) << Shift;
  }

  /// Midpoint of bucket \p Index (the quantile estimate).
  static uint64_t bucketMidpoint(std::size_t Index) {
    if (Index < SubBucketCount)
      return Index;
    std::size_t Octave = Index >> SubBucketBits;
    uint64_t Width = 1ull << (Octave - 1);
    return bucketLowerBound(Index) + Width / 2;
  }

private:
  std::array<std::atomic<uint64_t>, BucketCount> Buckets{};
  std::atomic<uint64_t> MaxValue{0};
};

} // namespace solero

#endif // SOLERO_SUPPORT_LATENCYHISTOGRAM_H

//===- support/Barrier.h - Thread start barrier -----------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable sense-reversing barrier. The benchmark harness uses it to
/// release all worker threads at the same instant so that throughput
/// windows line up across threads.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_BARRIER_H
#define SOLERO_SUPPORT_BARRIER_H

#include <atomic>
#include <cstdint>

#include "support/Backoff.h"

namespace solero {

/// Sense-reversing spinning barrier for a fixed number of participants.
/// Spins with osYield() so it behaves on machines with one hardware thread.
class SpinBarrier {
public:
  explicit SpinBarrier(uint32_t Participants)
      : Count(Participants), Remaining(Participants) {}

  /// Blocks until all participants have arrived. Reusable across rounds.
  void arriveAndWait() {
    bool MySense = !Sense.load(std::memory_order_relaxed);
    if (Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Remaining.store(Count, std::memory_order_relaxed);
      Sense.store(MySense, std::memory_order_release);
      return;
    }
    int Spins = 0;
    while (Sense.load(std::memory_order_acquire) != MySense) {
      if (++Spins > 64) {
        osYield();
        Spins = 0;
      } else {
        cpuRelax();
      }
    }
  }

private:
  const uint32_t Count;
  std::atomic<uint32_t> Remaining;
  std::atomic<bool> Sense{false};
};

} // namespace solero

#endif // SOLERO_SUPPORT_BARRIER_H

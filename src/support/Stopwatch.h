//===- support/Stopwatch.h - Wall-clock timing ------------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic stopwatch used by the benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_STOPWATCH_H
#define SOLERO_SUPPORT_STOPWATCH_H

#include <chrono>
#include <cstdint>

namespace solero {

/// A steady-clock stopwatch with nanosecond reads.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed time since construction or the last reset().
  uint64_t elapsedNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Start)
            .count());
  }

  double elapsedSeconds() const {
    return static_cast<double>(elapsedNs()) * 1e-9;
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace solero

#endif // SOLERO_SUPPORT_STOPWATCH_H

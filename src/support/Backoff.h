//===- support/Backoff.h - Spin-wait backoff --------------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CPU-relax and yield primitives used by the three-tier locking scheme
/// (paper Figure 3). The innermost tier wastes cycles with cpuRelax(), the
/// outermost yields the processor.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_BACKOFF_H
#define SOLERO_SUPPORT_BACKOFF_H

#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "support/Rng.h"

namespace solero {

/// Hints the CPU that the caller is spin-waiting.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Yields the processor to the OS scheduler (tier 3 of the three-tier
/// scheme). Essential on machines with fewer cores than runnable threads.
inline void osYield() { std::this_thread::yield(); }

/// Tuning knobs for the three-tier contention loop of paper Figure 3.
/// Tier1: busy-wait iterations between acquisition attempts.
/// Tier2: acquisition attempts between yields.
/// Tier3: yields before giving up and inflating the lock.
struct SpinTiers {
  int Tier1 = 64;
  int Tier2 = 16;
  int Tier3 = 8;
};

/// Executes the tier-1 busy-wait loop.
inline void spinTier1(int Iterations) {
  for (int I = 0; I < Iterations; ++I)
    cpuRelax();
}

/// How ExpBackoff spreads its waits. Deterministic doubling synchronizes:
/// N clients that collided once will wake together, collide again, and
/// double together — a retry wave that never decorrelates. The jittered
/// modes (AWS Architecture Blog, "Exponential backoff and jitter",
/// Brooker 2015) break the lockstep:
///
///   None          — classic doubling; the pre-existing behavior and the
///                   default, so lock-internal call sites stay untouched.
///   FullJitter    — sleep = uniform[1, Cur]; Cur still doubles. Best
///                   spread, at the cost of occasionally near-zero waits.
///   Decorrelated  — sleep = uniform[Min, Prev*3] clamped to Max; each
///                   wait feeds the next, so streams drift apart even when
///                   seeded alike but consumed at different rates.
enum class JitterMode : uint8_t { None, FullJitter, Decorrelated };

/// Bounded exponential backoff for optimistic-retry loops (the BRAVO /
/// Fissile-lock recipe): each pause() busy-waits twice as long as the
/// previous one, clamped to [MinSpins, MaxSpins] cpuRelax() iterations.
/// Used by the adaptive elision controller between speculation retries so
/// a conflicting writer gets a widening window to drain before the reader
/// burns another failed attempt, and by the KV service retry budget with
/// jitter enabled so shed-then-retried requests cannot self-synchronize.
class ExpBackoff {
public:
  explicit ExpBackoff(int MinSpins = 16, int MaxSpins = 1024,
                      JitterMode Jitter = JitterMode::None,
                      uint64_t Seed = 0x9E3779B97F4A7C15ull)
      : Min(MinSpins < 1 ? 1 : MinSpins),
        Max(MaxSpins < Min ? Min : MaxSpins), Cur(Min), Jitter(Jitter),
        Rng(Seed) {}

  /// Busy-waits for the mode's current interval, then advances the state
  /// (saturating at Max).
  void pause() { spinTier1(nextSpins()); }

  /// The wait the next pause() would perform, advancing the backoff state
  /// exactly as pause() would. Exposed so callers that wait by sleeping or
  /// parking (rather than spinning) — and the jitter-bounds unit tests —
  /// can consume the same schedule.
  int nextSpins() {
    int Wait = Cur;
    switch (Jitter) {
    case JitterMode::None:
      Cur = Cur > Max / 2 ? Max : Cur * 2;
      break;
    case JitterMode::FullJitter:
      // Uniform in [1, Cur]; the deterministic ceiling keeps doubling.
      Wait = 1 + static_cast<int>(Rng.nextBounded(static_cast<uint64_t>(Cur)));
      Cur = Cur > Max / 2 ? Max : Cur * 2;
      break;
    case JitterMode::Decorrelated: {
      // Uniform in [Min, min(Max, Prev*3)]; the drawn wait becomes the
      // next round's Prev, so the walk itself is randomized.
      int64_t Ceil = static_cast<int64_t>(Cur) * 3;
      if (Ceil > Max)
        Ceil = Max;
      Wait = Min + static_cast<int>(
                       Rng.nextBounded(static_cast<uint64_t>(Ceil - Min + 1)));
      Cur = Wait;
      break;
    }
    }
    return Wait;
  }

  /// Returns to the minimum interval (call after a success).
  void reset() { Cur = Min; }

  /// The deterministic backoff state (the FullJitter ceiling /
  /// Decorrelated previous draw). For JitterMode::None this is exactly
  /// the spin count the next pause() will use.
  int currentSpins() const { return Cur; }

  JitterMode jitterMode() const { return Jitter; }
  int minSpins() const { return Min; }
  int maxSpins() const { return Max; }

private:
  int Min;
  int Max;
  int Cur;
  JitterMode Jitter;
  Xoshiro256StarStar Rng;
};

} // namespace solero

#endif // SOLERO_SUPPORT_BACKOFF_H

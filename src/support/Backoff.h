//===- support/Backoff.h - Spin-wait backoff --------------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CPU-relax and yield primitives used by the three-tier locking scheme
/// (paper Figure 3). The innermost tier wastes cycles with cpuRelax(), the
/// outermost yields the processor.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_BACKOFF_H
#define SOLERO_SUPPORT_BACKOFF_H

#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace solero {

/// Hints the CPU that the caller is spin-waiting.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Yields the processor to the OS scheduler (tier 3 of the three-tier
/// scheme). Essential on machines with fewer cores than runnable threads.
inline void osYield() { std::this_thread::yield(); }

/// Tuning knobs for the three-tier contention loop of paper Figure 3.
/// Tier1: busy-wait iterations between acquisition attempts.
/// Tier2: acquisition attempts between yields.
/// Tier3: yields before giving up and inflating the lock.
struct SpinTiers {
  int Tier1 = 64;
  int Tier2 = 16;
  int Tier3 = 8;
};

/// Executes the tier-1 busy-wait loop.
inline void spinTier1(int Iterations) {
  for (int I = 0; I < Iterations; ++I)
    cpuRelax();
}

/// Bounded exponential backoff for optimistic-retry loops (the BRAVO /
/// Fissile-lock recipe): each pause() busy-waits twice as long as the
/// previous one, clamped to [MinSpins, MaxSpins] cpuRelax() iterations.
/// Used by the adaptive elision controller between speculation retries so
/// a conflicting writer gets a widening window to drain before the reader
/// burns another failed attempt.
class ExpBackoff {
public:
  explicit ExpBackoff(int MinSpins = 16, int MaxSpins = 1024)
      : Min(MinSpins < 1 ? 1 : MinSpins),
        Max(MaxSpins < Min ? Min : MaxSpins), Cur(Min) {}

  /// Busy-waits for the current interval, then doubles it (saturating).
  void pause() {
    spinTier1(Cur);
    Cur = Cur > Max / 2 ? Max : Cur * 2;
  }

  /// Returns to the minimum interval (call after a success).
  void reset() { Cur = Min; }

  /// The spin count the next pause() will use.
  int currentSpins() const { return Cur; }

private:
  int Min;
  int Max;
  int Cur;
};

} // namespace solero

#endif // SOLERO_SUPPORT_BACKOFF_H

//===- support/Backoff.h - Spin-wait backoff --------------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CPU-relax and yield primitives used by the three-tier locking scheme
/// (paper Figure 3). The innermost tier wastes cycles with cpuRelax(), the
/// outermost yields the processor.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_BACKOFF_H
#define SOLERO_SUPPORT_BACKOFF_H

#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace solero {

/// Hints the CPU that the caller is spin-waiting.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Yields the processor to the OS scheduler (tier 3 of the three-tier
/// scheme). Essential on machines with fewer cores than runnable threads.
inline void osYield() { std::this_thread::yield(); }

/// Tuning knobs for the three-tier contention loop of paper Figure 3.
/// Tier1: busy-wait iterations between acquisition attempts.
/// Tier2: acquisition attempts between yields.
/// Tier3: yields before giving up and inflating the lock.
struct SpinTiers {
  int Tier1 = 64;
  int Tier2 = 16;
  int Tier3 = 8;
};

/// Executes the tier-1 busy-wait loop.
inline void spinTier1(int Iterations) {
  for (int I = 0; I < Iterations; ++I)
    cpuRelax();
}

} // namespace solero

#endif // SOLERO_SUPPORT_BACKOFF_H

//===- support/Stats.h - Summary statistics ---------------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Running summary statistics (Welford) and percentile helpers. The paper
/// reports per-benchmark averages over five runs; the harness reports mean,
/// stddev, and best-of-N the same way (Section 4.1 of the paper uses the
/// best score of five in-run measurements).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_STATS_H
#define SOLERO_SUPPORT_STATS_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/Assert.h"

namespace solero {

/// Welford-style running mean / variance / extrema accumulator.
class RunningStats {
public:
  void add(double X) {
    ++N;
    double Delta = X - Mean;
    Mean += Delta / static_cast<double>(N);
    M2 += Delta * (X - Mean);
    Min = N == 1 ? X : std::min(Min, X);
    Max = N == 1 ? X : std::max(Max, X);
  }

  std::size_t count() const { return N; }
  double mean() const { return Mean; }
  double min() const { return Min; }
  double max() const { return Max; }

  double variance() const {
    return N > 1 ? M2 / static_cast<double>(N - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

private:
  std::size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Numerator/denominator as a double, 0 for an empty denominator. The
/// counter-ratio shape every stats table uses (failure ratio, skip ratio,
/// rmw/op, ...).
inline double safeRatio(uint64_t Num, uint64_t Den) {
  return Den == 0 ? 0.0
                  : static_cast<double>(Num) / static_cast<double>(Den);
}

/// Returns the \p Q quantile (0..1) of \p Samples using linear interpolation.
/// The input vector is copied; callers keep their sample order.
inline double quantile(std::vector<double> Samples, double Q) {
  SOLERO_CHECK(!Samples.empty(), "quantile of empty sample set");
  SOLERO_CHECK(Q >= 0.0 && Q <= 1.0, "quantile out of range");
  std::sort(Samples.begin(), Samples.end());
  if (Samples.size() == 1)
    return Samples.front();
  double Pos = Q * static_cast<double>(Samples.size() - 1);
  std::size_t Lo = static_cast<std::size_t>(Pos);
  std::size_t Hi = std::min(Lo + 1, Samples.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Samples[Lo] + (Samples[Hi] - Samples[Lo]) * Frac;
}

} // namespace solero

#endif // SOLERO_SUPPORT_STATS_H

//===- support/Assert.h - Assertion helpers ---------------------*- C++ -*-===//
//
// Part of the SOLERO reproduction of Nakaike & Michael, "Lock Elision for
// Read-Only Critical Sections in Java", PLDI 2010.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion and unreachable-code helpers shared by all SOLERO libraries.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_ASSERT_H
#define SOLERO_SUPPORT_ASSERT_H

#include <cstdio>
#include <cstdlib>

namespace solero {

/// Aborts the process with a diagnostic. Used for states that indicate a bug
/// in this library rather than misuse by the caller.
[[noreturn]] inline void fatalError(const char *Msg, const char *File,
                                    int Line) {
  std::fprintf(stderr, "solero fatal error: %s (%s:%d)\n", Msg, File, Line);
  std::abort();
}

} // namespace solero

/// Marks a point in the code that must never be reached if the library's
/// invariants hold.
#define SOLERO_UNREACHABLE(Msg) ::solero::fatalError(Msg, __FILE__, __LINE__)

/// Invariant check that stays enabled in release builds. The lock protocols
/// are subtle enough that silent invariant violations are far more expensive
/// than the cost of the check.
#define SOLERO_CHECK(Cond, Msg)                                                \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::solero::fatalError(Msg, __FILE__, __LINE__);                           \
  } while (false)

#endif // SOLERO_SUPPORT_ASSERT_H

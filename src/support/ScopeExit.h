//===- support/ScopeExit.h - RAII scope guard -------------------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal scope guard. Lock release on every exit path (including guest
/// exceptions) mirrors the JIT-generated catch blocks that "force a lock to
/// be released before leaving the synchronized block" (paper Section 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_SUPPORT_SCOPEEXIT_H
#define SOLERO_SUPPORT_SCOPEEXIT_H

#include <utility>

namespace solero {

/// Runs the stored callable when the scope ends, unless release()d.
template <typename Fn> class ScopeExit {
public:
  explicit ScopeExit(Fn F) : F(std::move(F)) {}
  ~ScopeExit() {
    if (Armed)
      F();
  }

  ScopeExit(const ScopeExit &) = delete;
  ScopeExit &operator=(const ScopeExit &) = delete;

  /// Disarms the guard; the callable will not run.
  void release() { Armed = false; }

private:
  Fn F;
  bool Armed = true;
};

} // namespace solero

#endif // SOLERO_SUPPORT_SCOPEEXIT_H

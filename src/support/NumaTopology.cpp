//===- support/NumaTopology.cpp - NUMA/CPU topology detection -------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "support/NumaTopology.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#if defined(__linux__)
#include <sched.h>
#endif

using namespace solero;

namespace {

/// Parses a sysfs cpulist ("0-3,8,10-11") into the cpu -> node map,
/// growing the map as needed. Returns false on malformed input.
bool applyCpuList(const std::string &List, unsigned Node,
                  std::vector<uint8_t> &CpuToNode) {
  const char *P = List.c_str();
  while (*P) {
    char *End = nullptr;
    long Lo = std::strtol(P, &End, 10);
    if (End == P || Lo < 0)
      return false;
    long Hi = Lo;
    P = End;
    if (*P == '-') {
      ++P;
      Hi = std::strtol(P, &End, 10);
      if (End == P || Hi < Lo)
        return false;
      P = End;
    }
    for (long Cpu = Lo; Cpu <= Hi; ++Cpu) {
      if (static_cast<std::size_t>(Cpu) >= CpuToNode.size())
        CpuToNode.resize(static_cast<std::size_t>(Cpu) + 1, 0);
      CpuToNode[static_cast<std::size_t>(Cpu)] = static_cast<uint8_t>(Node);
    }
    if (*P == ',')
      ++P;
    else if (*P && *P != '\n')
      return false;
  }
  return true;
}

/// Reads one line of a small sysfs file; empty string on failure.
std::string readLine(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return {};
  char Buf[4096];
  std::string Line;
  if (std::fgets(Buf, sizeof(Buf), F))
    Line = Buf;
  std::fclose(F);
  while (!Line.empty() && (Line.back() == '\n' || Line.back() == '\r'))
    Line.pop_back();
  return Line;
}

} // namespace

unsigned NumaTopology::currentCpu() {
#if defined(__linux__)
  int Cpu = sched_getcpu();
  return Cpu >= 0 ? static_cast<unsigned>(Cpu) : 0u;
#else
  return 0u;
#endif
}

unsigned NumaTopology::cpuCount() {
#if defined(__linux__)
  cpu_set_t Mask;
  CPU_ZERO(&Mask);
  if (sched_getaffinity(0, sizeof(Mask), &Mask) == 0) {
    int N = CPU_COUNT(&Mask);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
#endif
  return 1u;
}

bool NumaTopology::pinCurrentThreadToCpu(unsigned Cpu) {
#if defined(__linux__)
  if (Cpu >= CPU_SETSIZE)
    return false;
  cpu_set_t Mask;
  CPU_ZERO(&Mask);
  CPU_SET(static_cast<int>(Cpu), &Mask);
  return sched_setaffinity(0, sizeof(Mask), &Mask) == 0;
#else
  (void)Cpu;
  return false;
#endif
}

NumaTopology NumaTopology::detect() {
  NumaTopology T;
#if defined(__linux__)
  // Nodes are numbered densely in practice; a gap (offline node) ends the
  // probe and the remaining CPUs fall back to node 0, which is safe for a
  // placement hint. 255 caps the partition count, not real hardware.
  std::vector<uint8_t> Map;
  unsigned Node = 0;
  for (; Node < 255; ++Node) {
    std::string List = readLine("/sys/devices/system/node/node" +
                                std::to_string(Node) + "/cpulist");
    if (List.empty())
      break;
    if (!applyCpuList(List, Node, Map))
      return T; // malformed sysfs: single-node fallback
  }
  if (Node > 0) {
    T.Nodes = Node;
    T.CpuToNode = std::move(Map);
  }
#endif
  return T;
}

const NumaTopology &NumaTopology::instance() {
  static const NumaTopology T = detect();
  return T;
}

//===- image/Resources.cpp - Checkpointable runtime resources -------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "image/Resources.h"

using namespace solero;
using namespace solero::image;
using jit::ClassifiedModule;
using jit::ClassifiedRegion;
using jit::Profile;
using jit::TranslatedMethod;
using jit::TranslatedModule;

// --- ElisionController -----------------------------------------------------

bool solero::image::readControllerSnapshot(ImageReader &R,
                                           ElisionSnapshot &S) {
  S.State = R.u32();
  S.Attempts = R.u32();
  S.Failures = R.u32();
  S.Skip = R.i32();
  S.ReprobeLeft = R.i32();
  S.SkipWindow = R.u32();
  return !R.failed();
}

void solero::image::writeControllerState(ImageWriter &W,
                                         const ElisionController &C) {
  ElisionSnapshot S = C.snapshot();
  W.u32(S.State);
  W.u32(S.Attempts);
  W.u32(S.Failures);
  W.i32(S.Skip);
  W.i32(S.ReprobeLeft);
  W.u32(S.SkipWindow);
}

bool solero::image::readControllerState(ImageReader &R, ElisionController &C) {
  ElisionSnapshot S;
  return readControllerSnapshot(R, S) && C.restore(S);
}

// --- BravoRwLock -----------------------------------------------------------

void solero::image::writeBravoState(ImageWriter &W, const BravoRwLock &L) {
  BravoSnapshot S = L.snapshot();
  W.u8(S.RBias ? 1 : 0);
  W.i64(S.InhibitRemainingNs);
  W.u64(S.Revocations);
}

bool solero::image::readBravoState(ImageReader &R, BravoRwLock &L) {
  uint8_t Bias = R.u8();
  if (Bias > 1)
    return false;
  BravoSnapshot S;
  S.RBias = Bias != 0;
  S.InhibitRemainingNs = R.i64();
  S.Revocations = R.u64();
  return !R.failed() && L.restore(S);
}

// --- Classifier ------------------------------------------------------------

void ClassifierCodec::write(ImageWriter &W, const ClassifiedModule &M) {
  W.u32(static_cast<uint32_t>(M.PerMethod.size()));
  for (const std::vector<ClassifiedRegion> &Regions : M.PerMethod) {
    W.u32(static_cast<uint32_t>(Regions.size()));
    for (const ClassifiedRegion &Reg : Regions) {
      W.u32(Reg.Region.EnterPc);
      W.u32(Reg.Region.ExitPc);
      W.u8(static_cast<uint8_t>(Reg.Kind));
      W.u32(static_cast<uint32_t>(Reg.Diags.size()));
      for (const jit::Diagnostic &D : Reg.Diags) {
        W.u8(static_cast<uint8_t>(D.Code));
        W.u32(D.Pc);
        W.u8(static_cast<uint8_t>(D.Op));
        W.i32(D.Operand);
        W.u32(D.AllocPc);
      }
    }
  }
  for (ClassifiedModule::PurityState P : M.Purity)
    W.u8(static_cast<uint8_t>(P));
  for (const jit::BitVec &BV : M.BenignWrites) {
    W.u32(static_cast<uint32_t>(BV.size()));
    for (std::size_t Bit = 0; Bit < BV.size(); Bit += 8) {
      uint8_t Byte = 0;
      for (std::size_t B = 0; B < 8 && Bit + B < BV.size(); ++B)
        if (BV.test(Bit + B))
          Byte |= static_cast<uint8_t>(1u << B);
      W.u8(Byte);
    }
  }
}

bool ClassifierCodec::read(ImageReader &R, ClassifiedModule &M) {
  uint32_t Methods = R.u32();
  // 5 bytes is the smallest per-method footprint (empty region list, one
  // purity byte, empty bitvec length); bounding by it keeps a corrupt
  // count from driving a multi-gigabyte reserve before the reader trips.
  if (R.failed() || static_cast<uint64_t>(Methods) * 5 > R.remaining())
    return false;
  ClassifiedModule Out;
  Out.PerMethod.resize(Methods);
  for (uint32_t Id = 0; Id < Methods; ++Id) {
    uint32_t NumRegions = R.u32();
    if (R.failed() || static_cast<uint64_t>(NumRegions) * 13 > R.remaining())
      return false;
    Out.PerMethod[Id].reserve(NumRegions);
    for (uint32_t I = 0; I < NumRegions; ++I) {
      ClassifiedRegion Reg;
      Reg.Region.EnterPc = R.u32();
      Reg.Region.ExitPc = R.u32();
      uint8_t Kind = R.u8();
      if (Kind > static_cast<uint8_t>(jit::RegionKind::Writing))
        return false;
      Reg.Kind = static_cast<jit::RegionKind>(Kind);
      uint32_t NumDiags = R.u32();
      if (R.failed() || NumDiags == 0 ||
          static_cast<uint64_t>(NumDiags) * 14 > R.remaining())
        return false;
      Reg.Diags.reserve(NumDiags);
      for (uint32_t D = 0; D < NumDiags; ++D) {
        jit::Diagnostic Diag;
        uint8_t Code = R.u8();
        if (Code > static_cast<uint8_t>(jit::DiagCode::FreshWrite))
          return false;
        Diag.Code = static_cast<jit::DiagCode>(Code);
        Diag.Pc = R.u32();
        uint8_t Op = R.u8();
        if (Op > static_cast<uint8_t>(jit::Opcode::Return))
          return false;
        Diag.Op = static_cast<jit::Opcode>(Op);
        Diag.Operand = R.i32();
        Diag.AllocPc = R.u32();
        Reg.Diags.push_back(Diag);
      }
      Out.PerMethod[Id].push_back(std::move(Reg));
    }
  }
  Out.Purity.resize(Methods);
  for (uint32_t Id = 0; Id < Methods; ++Id) {
    uint8_t P = R.u8();
    if (P > static_cast<uint8_t>(ClassifiedModule::PurityState::Impure))
      return false;
    Out.Purity[Id] = static_cast<ClassifiedModule::PurityState>(P);
  }
  Out.BenignWrites.resize(Methods);
  for (uint32_t Id = 0; Id < Methods; ++Id) {
    uint32_t Bits = R.u32();
    if (R.failed() || (static_cast<uint64_t>(Bits) + 7) / 8 > R.remaining())
      return false;
    jit::BitVec BV(Bits);
    for (std::size_t Bit = 0; Bit < Bits; Bit += 8) {
      uint8_t Byte = R.u8();
      for (std::size_t B = 0; B < 8 && Bit + B < Bits; ++B)
        if ((Byte >> B) & 1u)
          BV.set(Bit + B);
    }
    Out.BenignWrites[Id] = std::move(BV);
  }
  if (R.failed())
    return false;
  M = std::move(Out);
  return true;
}

// --- Profile ---------------------------------------------------------------

void solero::image::writeProfile(ImageWriter &W, const Profile &P) {
  W.u32(static_cast<uint32_t>(P.Counts.size()));
  for (const std::vector<uint64_t> &Method : P.Counts) {
    W.u32(static_cast<uint32_t>(Method.size()));
    for (uint64_t C : Method)
      W.u64(C);
  }
}

bool solero::image::readProfile(ImageReader &R, Profile &P) {
  uint32_t Methods = R.u32();
  if (R.failed() || static_cast<uint64_t>(Methods) * 4 > R.remaining())
    return false;
  Profile Out;
  Out.Counts.resize(Methods);
  for (uint32_t Id = 0; Id < Methods; ++Id) {
    uint32_t Len = R.u32();
    if (R.failed() || static_cast<uint64_t>(Len) * 8 > R.remaining())
      return false;
    Out.Counts[Id].resize(Len);
    for (uint32_t I = 0; I < Len; ++I)
      Out.Counts[Id][I] = R.u64();
  }
  if (R.failed())
    return false;
  P = std::move(Out);
  return true;
}

// --- Translated streams ----------------------------------------------------

void solero::image::writeTranslation(ImageWriter &W,
                                     const TranslatedModule &T) {
  W.u32(static_cast<uint32_t>(T.Methods.size()));
  for (const TranslatedMethod &TM : T.Methods) {
    W.u32(TM.NumParams);
    W.u32(TM.NumLocals);
    W.u32(TM.MaxStack);
    W.u32(TM.FrameSlots);
    W.u32(static_cast<uint32_t>(TM.Code.size()));
    for (const jit::TInst &I : TM.Code) {
      W.u16(I.Op);
      W.u16(I.B);
      W.i32(I.A);
    }
    W.u32(static_cast<uint32_t>(TM.PcMap.size()));
    for (uint32_t Pc : TM.PcMap)
      W.u32(Pc);
  }
  W.u32(T.MaxFrameSlots);
}

bool solero::image::readTranslation(ImageReader &R, TranslatedModule &T) {
  uint32_t Methods = R.u32();
  if (R.failed() || static_cast<uint64_t>(Methods) * 24 > R.remaining())
    return false;
  TranslatedModule Out;
  Out.Methods.resize(Methods);
  for (uint32_t Id = 0; Id < Methods; ++Id) {
    TranslatedMethod &TM = Out.Methods[Id];
    TM.NumParams = R.u32();
    TM.NumLocals = R.u32();
    TM.MaxStack = R.u32();
    TM.FrameSlots = R.u32();
    uint32_t CodeLen = R.u32();
    if (R.failed() || static_cast<uint64_t>(CodeLen) * 8 > R.remaining())
      return false;
    TM.Code.resize(CodeLen);
    for (uint32_t I = 0; I < CodeLen; ++I) {
      TM.Code[I].Op = R.u16();
      TM.Code[I].B = R.u16();
      TM.Code[I].A = R.i32();
    }
    uint32_t MapLen = R.u32();
    if (R.failed() || static_cast<uint64_t>(MapLen) * 4 > R.remaining())
      return false;
    TM.PcMap.resize(MapLen);
    for (uint32_t I = 0; I < MapLen; ++I)
      TM.PcMap[I] = R.u32();
  }
  Out.MaxFrameSlots = R.u32();
  if (R.failed())
    return false;
  T = std::move(Out);
  return true;
}

// --- InterpreterWarmState --------------------------------------------------

void InterpreterWarmState::beforeCheckpoint(ImageWriter &W) {
  ClassifierCodec::write(W, Interp.classification());
  writeTranslation(W, Interp.translated());
  writeProfile(W, Interp.profile());
  writeControllerState(W, Interp.soleroLock().controller());
}

bool InterpreterWarmState::afterRestore(ImageReader &R) {
  ClassifiedModule Classes;
  TranslatedModule Trans;
  Profile Prof;
  ElisionSnapshot Ctrl;
  if (!ClassifierCodec::read(R, Classes) || !readTranslation(R, Trans) ||
      !readProfile(R, Prof) || !readControllerSnapshot(R, Ctrl) || !R.ok())
    return false;
  if (!Interp.adoptWarmState(std::move(Classes), std::move(Trans),
                             std::move(Prof)))
    return false; // mismatch: the fresh translation stays (cold fallback)
  // The adopted translation is fully validated even if the controller
  // snapshot turns out inconsistent, so a rejection here only loses the
  // policy warmth, not the classification warmth.
  return Interp.soleroLock().controller().restore(Ctrl);
}

//===- image/Image.cpp - Warm-image serialization format ------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "image/Image.h"

#include <cstdio>

using namespace solero;
using namespace solero::image;

const char *solero::image::imageDiagName(ImageDiag D) {
  switch (D) {
  case ImageDiag::None:
    return "ok";
  case ImageDiag::MissingFile:
    return "missing-file";
  case ImageDiag::ShortHeader:
    return "short-header";
  case ImageDiag::BadMagic:
    return "bad-magic";
  case ImageDiag::VersionSkew:
    return "version-skew";
  case ImageDiag::Truncated:
    return "truncated";
  case ImageDiag::ChecksumMismatch:
    return "checksum-mismatch";
  case ImageDiag::MalformedPayload:
    return "malformed-payload";
  case ImageDiag::WriteFailed:
    return "write-failed";
  }
  return "?";
}

std::string Diagnostic::render() const {
  if (ok())
    return "warm image ok";
  std::string S = "warm image rejected (";
  S += imageDiagName(Code);
  S += ")";
  if (!Detail.empty()) {
    S += ": ";
    S += Detail;
  }
  S += "; falling back to cold start";
  return S;
}

uint64_t solero::image::fnv1a(const uint8_t *Data, std::size_t Len) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (std::size_t I = 0; I < Len; ++I) {
    H ^= Data[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

// --- ImageBuilder ----------------------------------------------------------

void ImageBuilder::addBlob(const std::string &Name,
                           std::vector<uint8_t> Data) {
  for (auto &B : Blobs)
    if (B.first == Name) {
      B.second = std::move(Data);
      return;
    }
  Blobs.emplace_back(Name, std::move(Data));
}

std::vector<uint8_t> ImageBuilder::build() const {
  ImageWriter Payload;
  Payload.u32(static_cast<uint32_t>(Blobs.size()));
  for (const auto &B : Blobs) {
    Payload.str(B.first);
    Payload.u64(B.second.size());
    Payload.bytes(B.second.data(), B.second.size());
  }
  const std::vector<uint8_t> &P = Payload.data();

  ImageWriter Out;
  Out.u32(ImageMagic);
  Out.u32(ImageVersion);
  Out.u64(P.size());
  Out.u64(fnv1a(P.data(), P.size()));
  Out.bytes(P.data(), P.size());
  return Out.take();
}

bool ImageBuilder::writeFile(const std::string &Path,
                             Diagnostic &Diag) const {
  std::vector<uint8_t> Bytes = build();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Diag = {ImageDiag::WriteFailed, "cannot open " + Path};
    return false;
  }
  std::size_t N = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Ok = std::fclose(F) == 0 && N == Bytes.size();
  if (!Ok)
    Diag = {ImageDiag::WriteFailed, "short write to " + Path};
  return Ok;
}

// --- LoadedImage -----------------------------------------------------------

LoadedImage LoadedImage::fromBytes(const uint8_t *Data, std::size_t Len,
                                   Diagnostic &Diag) {
  LoadedImage Img;
  constexpr std::size_t HeaderLen = 4 + 4 + 8 + 8;
  if (Len < HeaderLen) {
    Diag = {ImageDiag::ShortHeader,
            std::to_string(Len) + " bytes is smaller than the header"};
    return Img;
  }
  ImageReader H(Data, Len);
  uint32_t Magic = H.u32();
  uint32_t Version = H.u32();
  uint64_t PayloadLen = H.u64();
  uint64_t Checksum = H.u64();
  if (Magic != ImageMagic) {
    Diag = {ImageDiag::BadMagic, "not a SOLERO warm image"};
    return Img;
  }
  if (Version != ImageVersion) {
    Diag = {ImageDiag::VersionSkew,
            "image version " + std::to_string(Version) + ", runtime speaks " +
                std::to_string(ImageVersion)};
    return Img;
  }
  if (PayloadLen != Len - HeaderLen) {
    Diag = {ImageDiag::Truncated,
            "payload promises " + std::to_string(PayloadLen) + " bytes, " +
                std::to_string(Len - HeaderLen) + " present"};
    return Img;
  }
  const uint8_t *Payload = Data + HeaderLen;
  if (fnv1a(Payload, PayloadLen) != Checksum) {
    Diag = {ImageDiag::ChecksumMismatch, "payload bytes corrupted"};
    return Img;
  }
  ImageReader R(Payload, PayloadLen);
  uint32_t Count = R.u32();
  for (uint32_t I = 0; I < Count; ++I) {
    std::string Name = R.str();
    uint64_t BlobLen = R.u64();
    if (R.failed() || BlobLen > R.remaining()) {
      Diag = {ImageDiag::MalformedPayload,
              "blob directory entry " + std::to_string(I) + " overruns"};
      Img.Blobs.clear();
      return Img;
    }
    std::vector<uint8_t> Blob(BlobLen);
    R.bytesInto(Blob.data(), BlobLen);
    Img.Blobs.emplace_back(std::move(Name), std::move(Blob));
  }
  if (!R.ok()) {
    Diag = {ImageDiag::MalformedPayload, "trailing bytes after blobs"};
    Img.Blobs.clear();
    return Img;
  }
  Img.Ok = true;
  return Img;
}

LoadedImage LoadedImage::fromFile(const std::string &Path, Diagnostic &Diag) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Diag = {ImageDiag::MissingFile, Path + " cannot be opened"};
    return LoadedImage();
  }
  std::vector<uint8_t> Bytes;
  uint8_t Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  return fromBytes(Bytes, Diag);
}

const std::vector<uint8_t> *
LoadedImage::blob(const std::string &Name) const {
  for (const auto &B : Blobs)
    if (B.first == Name)
      return &B.second;
  return nullptr;
}

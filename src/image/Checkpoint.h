//===- image/Checkpoint.h - CRaC-style checkpoint/restore ------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checkpoint/restore protocol over warm-image blobs, modeled on
/// OpenJDK CRaC's Resource/Context registration: a component that owns
/// warmed runtime state registers a Resource; the context drives ordered
/// hooks — beforeCheckpoint in registration order, afterRestore in
/// *reverse* registration order, so a resource restored later can rely on
/// everything it was registered after being restored already (the same
/// inversion CRaC guarantees).
///
/// Quiesce protocol: both hooks require the process to be at a quiescent
/// point for the registered state — no thread inside a critical section
/// guarded by a checkpointed lock, no guest invoke in flight. Concurrent
/// *readers* of the adaptive counters are fine (everything captured is
/// relaxed atomics), but a restore racing active sections could tear a
/// state machine across its invariants; see DESIGN.md §16.
///
/// Fallback policy: per-resource degradation. A missing blob or a blob the
/// resource rejects leaves that resource in its cold (freshly constructed)
/// state and restores the rest; a structurally bad image (truncated,
/// corrupted, version-skewed) restores nothing. Either way the report
/// carries Diagnostics and the process proceeds — never a crash.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_IMAGE_CHECKPOINT_H
#define SOLERO_IMAGE_CHECKPOINT_H

#include <string>
#include <vector>

#include "image/Image.h"

namespace solero {
namespace image {

/// One checkpointable component. Implementations serialize everything
/// they need in beforeCheckpoint and validate-then-adopt in afterRestore;
/// afterRestore returning false means "blob unusable, stay cold" (the
/// restore-side half of the fallback policy).
class Resource {
public:
  virtual ~Resource() = default;
  /// Stable blob name; also the restore-time lookup key, so renaming a
  /// resource orphans old images (they degrade per-resource, by design).
  virtual std::string name() const = 0;
  virtual void beforeCheckpoint(ImageWriter &W) = 0;
  virtual bool afterRestore(ImageReader &R) = 0;
};

/// What a restore attempt did, resource by resource.
struct RestoreReport {
  bool ImageOk = false; ///< header/checksum/directory validated
  unsigned Restored = 0;
  unsigned Rejected = 0; ///< blob present but afterRestore said no
  unsigned Missing = 0;  ///< no blob for a registered resource
  std::vector<Diagnostic> Diags;

  /// True when every registered resource came back warm.
  bool allWarm(std::size_t Registered) const {
    return ImageOk && Restored == Registered;
  }
  /// "restored 3/4 resources (1 rejected)" — for logs and benches.
  std::string summary() const;
};

/// Registration order is checkpoint order; restore runs in reverse.
class CheckpointContext {
public:
  /// Registers \p R (non-owning; the component outlives the context).
  void registerResource(Resource *R) { Resources.push_back(R); }

  std::size_t resourceCount() const { return Resources.size(); }

  /// Runs every beforeCheckpoint hook and serializes the image.
  std::vector<uint8_t> checkpointBytes() const;

  /// checkpointBytes() to \p Path; false + Diag on I/O failure.
  bool checkpointTo(const std::string &Path, Diagnostic &Diag) const;

  /// Restores from a validated image, reverse registration order.
  RestoreReport restoreFrom(const LoadedImage &Img,
                            const Diagnostic &LoadDiag) const;
  RestoreReport restoreBytes(const uint8_t *Data, std::size_t Len) const;
  RestoreReport restoreBytes(const std::vector<uint8_t> &Bytes) const {
    return restoreBytes(Bytes.data(), Bytes.size());
  }
  RestoreReport restoreFromFile(const std::string &Path) const;

private:
  std::vector<Resource *> Resources;
};

} // namespace image
} // namespace solero

#endif // SOLERO_IMAGE_CHECKPOINT_H

//===- image/Image.h - Warm-image serialization format ----------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk format for warm-runtime images (DESIGN.md §16): a fixed
/// header — magic, format version, payload length, FNV-1a checksum — over a
/// payload of named blobs. One blob per checkpointed resource; the
/// checkpoint/restore protocol that decides *what* goes into a blob lives
/// in image/Checkpoint.h, this file only moves validated bytes.
///
/// Every read is bounds-checked and every failure is sticky: a truncated,
/// corrupted, or version-skewed image surfaces as a Diagnostic and an empty
/// LoadedImage, never as undefined behavior or a crash — the caller falls
/// back to a cold start. Integers are serialized little-endian at fixed
/// width via memcpy, so an image is portable across the compilers this
/// repo builds with (all little-endian targets).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_IMAGE_IMAGE_H
#define SOLERO_IMAGE_IMAGE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace solero {
namespace image {

/// Format constants. Bump Version on any layout change: restore rejects
/// images of any other version (version skew degrades to cold start by
/// policy — no cross-version migration code to get wrong).
inline constexpr uint32_t ImageMagic = 0x534F4C49; // "SOLI"
inline constexpr uint32_t ImageVersion = 1;

/// Why an image failed to load.
enum class ImageDiag : uint8_t {
  None,
  MissingFile,      ///< the --restore path does not exist / is unreadable
  ShortHeader,      ///< fewer bytes than the fixed header
  BadMagic,         ///< not an image file at all
  VersionSkew,      ///< a different format version
  Truncated,        ///< payload shorter than the header promises
  ChecksumMismatch, ///< payload bytes corrupted
  MalformedPayload, ///< blob directory does not parse
  WriteFailed,      ///< checkpoint could not write the file
};

const char *imageDiagName(ImageDiag D);

/// One load/checkpoint diagnostic (the "logged via a Diagnostic, never a
/// crash" of the fallback policy).
struct Diagnostic {
  ImageDiag Code = ImageDiag::None;
  std::string Detail;

  bool ok() const { return Code == ImageDiag::None; }
  /// "warm image rejected (<code>): <detail>; falling back to cold start"
  std::string render() const;
};

/// Append-only little-endian encoder for one resource's blob.
class ImageWriter {
public:
  void u8(uint8_t V) { Bytes.push_back(V); }
  void u16(uint16_t V) { appendLe(&V, sizeof(V)); }
  void u32(uint32_t V) { appendLe(&V, sizeof(V)); }
  void u64(uint64_t V) { appendLe(&V, sizeof(V)); }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Bytes.insert(Bytes.end(), S.begin(), S.end());
  }
  void bytes(const uint8_t *Data, std::size_t Len) {
    if (Len == 0)
      return; // an empty blob's data() may be null
    Bytes.insert(Bytes.end(), Data, Data + Len);
  }

  const std::vector<uint8_t> &data() const { return Bytes; }
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  void appendLe(const void *V, std::size_t N) {
    // Host is little-endian on every target this repo builds for; memcpy
    // keeps the access alignment-safe and the width explicit.
    const auto *P = static_cast<const uint8_t *>(V);
    Bytes.insert(Bytes.end(), P, P + N);
  }

  std::vector<uint8_t> Bytes;
};

/// Bounds-checked cursor over a blob. The first out-of-range read trips
/// the sticky failed() flag; every subsequent read returns zero, so codecs
/// can decode straight-line and check ok() once at the end.
class ImageReader {
public:
  ImageReader(const uint8_t *Data, std::size_t Len) : Data(Data), Len(Len) {}
  explicit ImageReader(const std::vector<uint8_t> &V)
      : ImageReader(V.data(), V.size()) {}

  uint8_t u8() {
    uint8_t V = 0;
    read(&V, sizeof(V));
    return V;
  }
  uint16_t u16() {
    uint16_t V = 0;
    read(&V, sizeof(V));
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    read(&V, sizeof(V));
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    read(&V, sizeof(V));
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (N > remaining()) {
      Failed = true;
      return {};
    }
    std::string S(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return S;
  }

  /// Copies \p N raw bytes out (blob bodies); zero-fills on failure.
  /// N == 0 is a no-op: an empty blob has a null data() pointer, which
  /// memcpy/memset must never see even with a zero length.
  void bytesInto(uint8_t *Out, std::size_t N) {
    if (N == 0)
      return;
    if (Failed || Len - Pos < N) {
      Failed = true;
      std::memset(Out, 0, N);
      return;
    }
    std::memcpy(Out, Data + Pos, N);
    Pos += N;
  }

  std::size_t remaining() const { return Failed ? 0 : Len - Pos; }
  bool failed() const { return Failed; }
  /// Fully consumed without a bounds failure — codecs should insist on
  /// this so a long blob from a different layout cannot half-parse.
  bool ok() const { return !Failed && Pos == Len; }

private:
  void read(void *Out, std::size_t N) {
    if (Failed || Len - Pos < N) {
      Failed = true;
      return;
    }
    std::memcpy(Out, Data + Pos, N);
    Pos += N;
  }

  const uint8_t *Data;
  std::size_t Len;
  std::size_t Pos = 0;
  bool Failed = false;
};

/// FNV-1a over \p Data (the payload checksum).
uint64_t fnv1a(const uint8_t *Data, std::size_t Len);

/// Collects named blobs and serializes header + payload.
class ImageBuilder {
public:
  /// Adds (or replaces) one resource blob.
  void addBlob(const std::string &Name, std::vector<uint8_t> Data);

  /// Header + blob directory, checksummed — ready to write.
  std::vector<uint8_t> build() const;

  /// build() to \p Path. On failure returns false and fills \p Diag.
  bool writeFile(const std::string &Path, Diagnostic &Diag) const;

  std::size_t blobCount() const { return Blobs.size(); }

private:
  std::vector<std::pair<std::string, std::vector<uint8_t>>> Blobs;
};

/// A validated, loaded image: header verified (magic, version, length,
/// checksum) and blob directory parsed. Construction via the factories
/// below; any validation failure yields loaded()==false plus a Diagnostic,
/// and blob() then misses for every name — the caller's cold-start path.
class LoadedImage {
public:
  LoadedImage() = default;

  static LoadedImage fromBytes(const uint8_t *Data, std::size_t Len,
                               Diagnostic &Diag);
  static LoadedImage fromBytes(const std::vector<uint8_t> &Bytes,
                               Diagnostic &Diag) {
    return fromBytes(Bytes.data(), Bytes.size(), Diag);
  }
  static LoadedImage fromFile(const std::string &Path, Diagnostic &Diag);

  bool loaded() const { return Ok; }
  /// The named blob, or nullptr when absent (per-resource cold start).
  const std::vector<uint8_t> *blob(const std::string &Name) const;
  std::size_t blobCount() const { return Blobs.size(); }

private:
  bool Ok = false;
  std::vector<std::pair<std::string, std::vector<uint8_t>>> Blobs;
};

} // namespace image
} // namespace solero

#endif // SOLERO_IMAGE_IMAGE_H

//===- image/Resources.h - Checkpointable runtime resources -----*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Codecs and Resource adapters for the runtime state a warm image carries
/// (DESIGN.md §16):
///
///  - ElisionController stats cells (the adaptive per-lock state machines),
///  - BravoRwLock bias/inhibit/revocation state,
///  - the classifier's analysis tables (region kinds, purity, benign-write
///    bits, diagnostics) via ClassifierCodec,
///  - profiles and translated TInst streams,
///  - a whole Interpreter's warm state (classification + translation +
///    profile + its lock's controller), re-validated on load by
///    Interpreter::adoptWarmState with fallback to the fresh translation,
///  - per-shard lock state of a ShardedKvStore (templated over policy).
///
/// Every read_/restore-side function returns false on malformed input and
/// leaves the target object in its previous (cold) state wherever the
/// structure allows; ImageReader's sticky failure flag makes truncated
/// blobs fail closed rather than decode garbage.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_IMAGE_RESOURCES_H
#define SOLERO_IMAGE_RESOURCES_H

#include <string>
#include <vector>

#include "core/ElisionController.h"
#include "core/SoleroLock.h"
#include "image/Checkpoint.h"
#include "jit/Interpreter.h"
#include "kv/ShardedKvStore.h"
#include "locks/BravoRwLock.h"

namespace solero {
namespace image {

// --- ElisionController -----------------------------------------------------

/// Decode-only: fills \p S without touching any controller.
bool readControllerSnapshot(ImageReader &R, ElisionSnapshot &S);
void writeControllerState(ImageWriter &W, const ElisionController &C);
/// Decode + ElisionController::restore (which clamps/validates).
bool readControllerState(ImageReader &R, ElisionController &C);

// --- BravoRwLock -----------------------------------------------------------

void writeBravoState(ImageWriter &W, const BravoRwLock &L);
bool readBravoState(ImageReader &R, BravoRwLock &L);

// --- JIT state -------------------------------------------------------------

/// Round-trips jit::ClassifiedModule's private analysis tables (friend of
/// the class; see jit/ReadOnlyClassifier.h).
class ClassifierCodec {
public:
  static void write(ImageWriter &W, const jit::ClassifiedModule &M);
  /// Structural decode only — semantic validation against the module is
  /// Interpreter::adoptWarmState's job.
  static bool read(ImageReader &R, jit::ClassifiedModule &M);
};

void writeProfile(ImageWriter &W, const jit::Profile &P);
bool readProfile(ImageReader &R, jit::Profile &P);

void writeTranslation(ImageWriter &W, const jit::TranslatedModule &T);
bool readTranslation(ImageReader &R, jit::TranslatedModule &T);

// --- Resource adapters -----------------------------------------------------

/// One adaptive controller as a checkpointable resource.
class ElisionControllerResource : public Resource {
public:
  ElisionControllerResource(std::string Name, ElisionController &C)
      : Name(std::move(Name)), Ctrl(C) {}
  std::string name() const override { return Name; }
  void beforeCheckpoint(ImageWriter &W) override {
    writeControllerState(W, Ctrl);
  }
  bool afterRestore(ImageReader &R) override {
    ElisionSnapshot S;
    return readControllerSnapshot(R, S) && R.ok() && Ctrl.restore(S);
  }

private:
  std::string Name;
  ElisionController &Ctrl;
};

/// One BRAVO lock's bias state as a checkpointable resource.
class BravoLockResource : public Resource {
public:
  BravoLockResource(std::string Name, BravoRwLock &L)
      : Name(std::move(Name)), Lock(L) {}
  std::string name() const override { return Name; }
  void beforeCheckpoint(ImageWriter &W) override { writeBravoState(W, Lock); }
  bool afterRestore(ImageReader &R) override {
    return readBravoState(R, Lock) && R.ok();
  }

private:
  std::string Name;
  BravoRwLock &Lock;
};

/// A whole execution engine's warm state: classification, translated
/// stream, profile, and the SOLERO lock's adaptive controller. On restore
/// everything is re-validated against the interpreter's own module; any
/// mismatch keeps the interpreter's fresh cold-start translation.
class InterpreterWarmState : public Resource {
public:
  InterpreterWarmState(std::string Name, jit::Interpreter &I)
      : Name(std::move(Name)), Interp(I) {}
  std::string name() const override { return Name; }
  void beforeCheckpoint(ImageWriter &W) override;
  bool afterRestore(ImageReader &R) override;

private:
  std::string Name;
  jit::Interpreter &Interp;
};

// --- Sharded KV store lock state -------------------------------------------
//
// One blob per (store, policy): a shard count followed by one tagged
// per-shard record. The tag encodes which adaptive machinery the policy
// carries (0 = none, 1 = SOLERO controller, 2 = BRAVO bias state); a
// restore into a store of a different policy or shard count fails the
// whole blob — per the fallback policy the store simply starts cold.

inline void writeShardLockState(ImageWriter &W, SoleroLock &L) {
  W.u8(1);
  writeControllerState(W, L.controller());
}
inline void writeShardLockState(ImageWriter &W, BravoRwLock &L) {
  W.u8(2);
  writeBravoState(W, L);
}
inline bool readShardLockState(ImageReader &R, SoleroLock &L) {
  return R.u8() == 1 && readControllerState(R, L.controller());
}
inline bool readShardLockState(ImageReader &R, BravoRwLock &L) {
  return R.u8() == 2 && readBravoState(R, L);
}

template <typename Policy>
std::vector<uint8_t> snapshotKvLockState(kv::ShardedKvStore<Policy> &Store) {
  ImageWriter W;
  W.u32(Store.shardCount());
  for (unsigned I = 0; I < Store.shardCount(); ++I) {
    if constexpr (requires(Policy &P, ImageWriter &W2) {
                    writeShardLockState(W2, P.protocol());
                  })
      writeShardLockState(W, Store.shardPolicy(I).protocol());
    else
      W.u8(0); // policy carries no adaptive lock state
  }
  return W.take();
}

template <typename Policy>
bool restoreKvLockState(ImageReader &R, kv::ShardedKvStore<Policy> &Store) {
  if (R.u32() != Store.shardCount())
    return false;
  for (unsigned I = 0; I < Store.shardCount(); ++I) {
    if constexpr (requires(Policy &P, ImageReader &R2) {
                    readShardLockState(R2, P.protocol());
                  }) {
      if (!readShardLockState(R, Store.shardPolicy(I).protocol()))
        return false;
    } else {
      if (R.u8() != 0)
        return false;
    }
  }
  return R.ok();
}

} // namespace image
} // namespace solero

#endif // SOLERO_IMAGE_RESOURCES_H

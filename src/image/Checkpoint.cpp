//===- image/Checkpoint.cpp - CRaC-style checkpoint/restore ---------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "image/Checkpoint.h"

using namespace solero;
using namespace solero::image;

std::string RestoreReport::summary() const {
  if (!ImageOk)
    return "image invalid; cold start (" +
           (Diags.empty() ? std::string("no diagnostic") : Diags[0].render()) +
           ")";
  std::string S = "restored " + std::to_string(Restored) + "/" +
                  std::to_string(Restored + Rejected + Missing) + " resources";
  if (Rejected)
    S += " (" + std::to_string(Rejected) + " rejected)";
  if (Missing)
    S += " (" + std::to_string(Missing) + " missing)";
  return S;
}

std::vector<uint8_t> CheckpointContext::checkpointBytes() const {
  ImageBuilder B;
  for (Resource *R : Resources) {
    ImageWriter W;
    R->beforeCheckpoint(W);
    B.addBlob(R->name(), W.take());
  }
  return B.build();
}

bool CheckpointContext::checkpointTo(const std::string &Path,
                                     Diagnostic &Diag) const {
  ImageBuilder B;
  for (Resource *R : Resources) {
    ImageWriter W;
    R->beforeCheckpoint(W);
    B.addBlob(R->name(), W.take());
  }
  return B.writeFile(Path, Diag);
}

RestoreReport CheckpointContext::restoreFrom(const LoadedImage &Img,
                                             const Diagnostic &LoadDiag) const {
  RestoreReport Rep;
  if (!Img.loaded()) {
    Rep.Diags.push_back(LoadDiag);
    return Rep;
  }
  Rep.ImageOk = true;
  // Reverse registration order, mirroring CRaC: later registrations may
  // depend on earlier ones at runtime, so they rehydrate first and the
  // foundational resources restore into an already-warm superstructure.
  for (std::size_t I = Resources.size(); I-- > 0;) {
    Resource *R = Resources[I];
    const std::vector<uint8_t> *Blob = Img.blob(R->name());
    if (!Blob) {
      ++Rep.Missing;
      Rep.Diags.push_back({ImageDiag::MalformedPayload,
                           "no blob for resource '" + R->name() + "'"});
      continue;
    }
    ImageReader Rd(*Blob);
    if (R->afterRestore(Rd)) {
      ++Rep.Restored;
    } else {
      ++Rep.Rejected;
      Rep.Diags.push_back({ImageDiag::MalformedPayload,
                           "resource '" + R->name() + "' rejected its blob"});
    }
  }
  return Rep;
}

RestoreReport CheckpointContext::restoreBytes(const uint8_t *Data,
                                              std::size_t Len) const {
  Diagnostic Diag;
  LoadedImage Img = LoadedImage::fromBytes(Data, Len, Diag);
  return restoreFrom(Img, Diag);
}

RestoreReport
CheckpointContext::restoreFromFile(const std::string &Path) const {
  Diagnostic Diag;
  LoadedImage Img = LoadedImage::fromFile(Path, Diag);
  return restoreFrom(Img, Diag);
}

//===- kv/ShardTable.h - Cache-friendly KV shard table ----------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One shard of the sharded KV store: an open-addressing hash table (linear
/// probing with tombstones) mapping uint64 keys to uint64 payloads held in
/// type-stable pool cells. The layout is deliberately flat — one probe
/// sequence over a contiguous slot array, one pointer hop to the value —
/// so the KV service's GET path is dominated by the lock protocol it runs
/// under, not by allocator or pointer-chasing noise.
///
/// Concurrency contract (enforced by ShardedKvStore, not by this class):
///
///   - Mutations (put/remove, and the resizes they trigger) run only
///     inside the shard's *writing* critical section: at most one mutator
///     at a time.
///   - get/scan/liveCount run inside a *read-only* critical section with
///     the store's epoch pinned. Lock-holding readers (Lock/RWLock/BRAVO)
///     see a quiescent table; optimistic readers (SOLERO, SeqLock read
///     path) may overlap one mutator, so every slot field is an atomic,
///     probe loops are bounded by the immutable capacity of the table
///     snapshot they loaded, and any value read during an overlap is
///     discarded by the protocol's end-of-section validation.
///   - A resized-away slot array is retired through the EpochReclaimer and
///     value cells come from a TypeStablePool, so a stale optimistic
///     reader always dereferences well-formed memory (DESIGN.md
///     substitution table: this pair stands in for the JVM's GC).
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_KV_SHARDTABLE_H
#define SOLERO_KV_SHARDTABLE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mm/EpochReclaimer.h"
#include "mm/TypeStablePool.h"
#include "runtime/ReadGuard.h"
#include "support/Assert.h"

namespace solero {
namespace kv {

/// Mixes a key into a probe hash (SplitMix64 finalizer). Also used by the
/// store for shard selection (high bits) while probing masks the low bits,
/// so the two partitions stay decorrelated.
inline uint64_t mixKey(uint64_t Key) {
  uint64_t Z = Key + 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// One shard's table. See the file comment for the concurrency contract.
class ShardTable {
public:
  /// Keys must be < MaxKey (the all-ones value is reserved so key+1 never
  /// wraps to the empty marker).
  static constexpr uint64_t MaxKey = ~0ull - 1;

  struct Lookup {
    uint64_t Value = 0;
    bool Found = false;
  };

  /// Aggregate of one consistent pass over the shard (the SCAN op).
  struct ScanStats {
    uint64_t LiveEntries = 0;
    uint64_t ValueSum = 0;
  };

  ShardTable(EpochReclaimer &Epoch, std::size_t InitialCapacity)
      : Epoch(Epoch) {
    std::size_t Cap = 16;
    while (Cap < InitialCapacity)
      Cap <<= 1;
    Current.store(new Table(Cap), std::memory_order_release);
  }

  ShardTable(const ShardTable &) = delete;
  ShardTable &operator=(const ShardTable &) = delete;

  /// The owner must drain the epoch domain before destruction (retired
  /// tables hold deleters pointing at this shard's pool).
  ~ShardTable() { delete Current.load(std::memory_order_acquire); }

  // --- Read side (read-only section + epoch pin) -------------------------

  Lookup get(uint64_t Key) const {
    const Table *T = Current.load(std::memory_order_acquire);
    const uint64_t Needle = Key + 1;
    uint64_t H = mixKey(Key);
    for (std::size_t I = 0; I < T->Capacity; ++I) {
      const Slot &S = T->Slots[(H + I) & T->Mask];
      uint64_t K = S.KeyPlusOne.load(std::memory_order_acquire);
      if (K == 0)
        return {}; // empty slot ends the probe chain
      if (K == Needle) {
        const ValueCell *C = S.Cell.load(std::memory_order_acquire);
        if (!C)
          return {}; // tombstone
        return {C->Payload.load(std::memory_order_relaxed), true};
      }
    }
    return {};
  }

  /// One pass over every slot: live-entry count and payload sum. Inside a
  /// validated section the count matches liveCount() exactly — the
  /// scan-consistency oracle the torture harness checks. Polls the
  /// speculation checkpoint per slot so an optimistic scan overlapping a
  /// mutator aborts promptly instead of completing a doomed pass.
  ScanStats scan() const {
    const Table *T = Current.load(std::memory_order_acquire);
    ScanStats St;
    uint32_t Steps = 0;
    for (std::size_t I = 0; I < T->Capacity; ++I) {
      speculationLoopGuard(Steps);
      const Slot &S = T->Slots[I];
      if (S.KeyPlusOne.load(std::memory_order_acquire) == 0)
        continue;
      const ValueCell *C = S.Cell.load(std::memory_order_acquire);
      if (!C)
        continue; // tombstone
      ++St.LiveEntries;
      St.ValueSum += C->Payload.load(std::memory_order_relaxed);
    }
    return St;
  }

  /// Entries currently stored (maintained by mutators; readers see it
  /// consistent inside a validated section).
  std::size_t liveCount() const {
    return Live.load(std::memory_order_relaxed);
  }

  // --- Write side (writing critical section only) ------------------------

  /// Inserts or overwrites. Returns true when \p Key was newly inserted.
  bool put(uint64_t Key, uint64_t Value) {
    SOLERO_CHECK(Key <= MaxKey, "ShardTable key out of range");
    Table *T = Current.load(std::memory_order_relaxed);
    // Grow (or purge tombstones in place) before the table gets dense
    // enough to stretch probe chains: beyond 7/8... keep max load at 70%.
    if ((usedSlots() + 1) * 10 > T->Capacity * 7)
      T = resize();
    const uint64_t Needle = Key + 1;
    uint64_t H = mixKey(Key);
    Slot *FirstTombstone = nullptr;
    for (std::size_t I = 0; I < T->Capacity; ++I) {
      Slot &S = T->Slots[(H + I) & T->Mask];
      uint64_t K = S.KeyPlusOne.load(std::memory_order_relaxed);
      if (K == Needle) {
        ValueCell *C = S.Cell.load(std::memory_order_relaxed);
        if (C) {
          // Overwrite in place: a single-word payload can never tear.
          C->Payload.store(Value, std::memory_order_relaxed);
          return false;
        }
        // Tombstone of this very key: revive it.
        S.Cell.store(newCell(Value), std::memory_order_release);
        Live.fetch_add(1, std::memory_order_relaxed);
        --Tombstones;
        return true;
      }
      if (K == 0) {
        Slot &Target = FirstTombstone ? *FirstTombstone : S;
        if (FirstTombstone)
          --Tombstones;
        // Publish cell before key: a concurrent optimistic prober that
        // sees the key also sees the cell; the torn window in between is
        // rejected by its end-of-section validation anyway.
        Target.Cell.store(newCell(Value), std::memory_order_release);
        Target.KeyPlusOne.store(Needle, std::memory_order_release);
        Live.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (!FirstTombstone &&
          S.Cell.load(std::memory_order_relaxed) == nullptr)
        FirstTombstone = &S;
    }
    SOLERO_CHECK(false, "ShardTable probe loop found no slot after resize");
    return false;
  }

  /// Removes \p Key, leaving a tombstone. Returns true when it was live.
  bool remove(uint64_t Key) {
    Table *T = Current.load(std::memory_order_relaxed);
    const uint64_t Needle = Key + 1;
    uint64_t H = mixKey(Key);
    for (std::size_t I = 0; I < T->Capacity; ++I) {
      Slot &S = T->Slots[(H + I) & T->Mask];
      uint64_t K = S.KeyPlusOne.load(std::memory_order_relaxed);
      if (K == 0)
        return false;
      if (K == Needle) {
        ValueCell *C = S.Cell.load(std::memory_order_relaxed);
        if (!C)
          return false; // already a tombstone
        S.Cell.store(nullptr, std::memory_order_release);
        Live.fetch_sub(1, std::memory_order_relaxed);
        ++Tombstones;
        retireCell(C);
        return true;
      }
    }
    return false;
  }

  // --- Introspection (tests, torture, reports) ---------------------------

  std::size_t capacity() const {
    return Current.load(std::memory_order_acquire)->Capacity;
  }
  uint64_t resizeCount() const {
    return Resizes.load(std::memory_order_relaxed);
  }
  /// Value cells currently handed out by this shard's pool. Equal to
  /// liveCount() once the epoch domain has drained — the leak oracle.
  std::size_t poolLiveCells() const { return Pool.liveCount(); }

private:
  struct ValueCell {
    // No NSDMI: the enclosing class's TypeStablePool member evaluates
    // is_default_constructible_v<ValueCell> before nested-class NSDMIs are
    // parsed (they wait for the outermost class to complete). C++20
    // value-initialization zeroes Payload at slab creation instead.
    std::atomic<uint64_t> Payload;
  };

  struct Slot {
    /// 0 = never used; otherwise key+1 (tombstones keep their key so probe
    /// chains stay intact).
    std::atomic<uint64_t> KeyPlusOne{0};
    /// Null on an unused slot or tombstone.
    std::atomic<ValueCell *> Cell{nullptr};
  };

  struct Table {
    explicit Table(std::size_t Cap)
        : Capacity(Cap), Mask(Cap - 1), Slots(Cap) {}
    const std::size_t Capacity;
    const std::size_t Mask;
    std::vector<Slot> Slots;
  };

  std::size_t usedSlots() const {
    return Live.load(std::memory_order_relaxed) + Tombstones;
  }

  ValueCell *newCell(uint64_t Value) {
    ValueCell *C = Pool.allocate();
    C->Payload.store(Value, std::memory_order_relaxed);
    return C;
  }

  void retireCell(ValueCell *C) {
    Epoch.retire(
        C,
        [](void *Obj, void *Arg) {
          static_cast<TypeStablePool<ValueCell> *>(Arg)->deallocate(
              static_cast<ValueCell *>(Obj));
        },
        &Pool);
  }

  /// Builds a rehashed table (doubled when live entries justify it, same
  /// size when tombstones do), publishes it, and epoch-retires the old
  /// array out from under any optimistic reader still probing it. Value
  /// cells are re-referenced, not copied.
  Table *resize() {
    Table *Old = Current.load(std::memory_order_relaxed);
    std::size_t Live_ = Live.load(std::memory_order_relaxed);
    std::size_t NewCap = Old->Capacity;
    if ((Live_ + 1) * 10 > NewCap * 4)
      NewCap <<= 1; // genuinely dense: grow
    Table *New = new Table(NewCap);
    for (std::size_t I = 0; I < Old->Capacity; ++I) {
      Slot &S = Old->Slots[I];
      uint64_t K = S.KeyPlusOne.load(std::memory_order_relaxed);
      ValueCell *C = S.Cell.load(std::memory_order_relaxed);
      if (K == 0 || !C)
        continue; // empty or tombstone: dropped by the rehash
      uint64_t H = mixKey(K - 1);
      for (std::size_t J = 0; J < New->Capacity; ++J) {
        Slot &D = New->Slots[(H + J) & New->Mask];
        if (D.KeyPlusOne.load(std::memory_order_relaxed) == 0) {
          D.Cell.store(C, std::memory_order_relaxed);
          D.KeyPlusOne.store(K, std::memory_order_relaxed);
          break;
        }
      }
    }
    Tombstones = 0;
    Resizes.fetch_add(1, std::memory_order_relaxed);
    Current.store(New, std::memory_order_release);
    Epoch.retire(
        Old, [](void *Obj, void *) { delete static_cast<Table *>(Obj); },
        nullptr);
    return New;
  }

  EpochReclaimer &Epoch;
  TypeStablePool<ValueCell> Pool;
  std::atomic<Table *> Current{nullptr};
  std::atomic<std::size_t> Live{0};
  /// Writer-only (mutators are serialized by the shard lock).
  std::size_t Tombstones = 0;
  std::atomic<uint64_t> Resizes{0};
};

} // namespace kv
} // namespace solero

#endif // SOLERO_KV_SHARDTABLE_H

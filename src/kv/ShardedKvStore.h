//===- kv/ShardedKvStore.h - Sharded lock-portfolio KV store ----*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first subsystem in the repository that behaves like a service
/// rather than a benchmark: an in-memory key-value store partitioned into
/// cache-friendly shards (kv/ShardTable.h), each shard guarded by one
/// instance of a lock policy from the portfolio (workloads/LockPolicies.h:
/// Lock / RWLock / BRAVO / SOLERO, plus the SeqLock read-path policy).
/// GET and SCAN run as read-only critical sections — exactly the shape the
/// elision machinery attacks — while PUT and DELETE run as writing
/// sections; all shards share one epoch-reclamation domain so optimistic
/// readers never chase freed memory across a resize.
///
/// \p Policy is any type constructible from RuntimeContext& providing
/// `read(Fn)` (Fn takes ReadGuard&) and `write(Fn)` — the same policy
/// shape SynchronizedMap uses, so the store composes with everything the
/// figure benchmarks compare.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_KV_SHARDEDKVSTORE_H
#define SOLERO_KV_SHARDEDKVSTORE_H

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "kv/ShardTable.h"
#include "mm/EpochReclaimer.h"
#include "runtime/ReadGuard.h"
#include "runtime/RuntimeContext.h"
#include "support/CacheLine.h"

namespace solero {
namespace kv {

struct KvStoreConfig {
  /// Shard count (rounded up to a power of two). One lock per shard: more
  /// shards trade memory for lower per-lock write contention.
  unsigned Shards = 16;
  /// Initial slot-array capacity per shard (rounded up to a power of two).
  std::size_t InitialShardCapacity = 64;
};

template <typename Policy> class ShardedKvStore {
public:
  using ScanStats = ShardTable::ScanStats;

  explicit ShardedKvStore(RuntimeContext &Ctx, KvStoreConfig Config = {}) {
    unsigned N = 1;
    while (N < Config.Shards)
      N <<= 1;
    ShardMask = N - 1;
    Shards.reserve(N);
    for (unsigned I = 0; I < N; ++I)
      Shards.push_back(std::make_unique<Shard>(
          Ctx, Epoch, Config.InitialShardCapacity));
  }

  ~ShardedKvStore() {
    // Retired tables/cells hold deleters into the shards' pools; drain
    // them while every shard is still alive.
    Epoch.drainAll();
  }

  unsigned shardCount() const {
    return static_cast<unsigned>(Shards.size());
  }

  /// Shard of \p Key: high bits of the mixed key, decorrelated from the
  /// low bits the shard table probes with.
  unsigned shardOf(uint64_t Key) const {
    return static_cast<unsigned>(mixKey(Key) >> 32) & ShardMask;
  }

  // --- Point operations ---------------------------------------------------

  std::optional<uint64_t> get(uint64_t Key) {
    Shard &S = shard(shardOf(Key));
    EpochReclaimer::Pin P(Epoch);
    // Flat pair instead of std::optional through the elision engine's
    // try/catch region (same EH-spill reason as SynchronizedMap::get).
    ShardTable::Lookup R =
        S.Lock.read([&](ReadGuard &) { return S.Table.get(Key); });
    if (!R.Found)
      return std::nullopt;
    return R.Value;
  }

  /// Returns true when \p Key was newly inserted (false: overwritten).
  bool put(uint64_t Key, uint64_t Value) {
    Shard &S = shard(shardOf(Key));
    return S.Lock.write([&] { return S.Table.put(Key, Value); });
  }

  /// Returns true when \p Key was present.
  bool remove(uint64_t Key) {
    Shard &S = shard(shardOf(Key));
    return S.Lock.write([&] { return S.Table.remove(Key); });
  }

  /// Full consistent pass over one shard as a single read-only section.
  ScanStats scanShard(unsigned ShardIdx) {
    return readShard(ShardIdx,
                     [](const ShardTable &T, ReadGuard &) { return T.scan(); });
  }

  // --- Compound sections (bench + torture building blocks) ----------------

  /// Runs \p F(const ShardTable&, ReadGuard&) as one read-only critical
  /// section on shard \p ShardIdx with the epoch pinned.
  template <typename Fn> decltype(auto) readShard(unsigned ShardIdx, Fn &&F) {
    Shard &S = shard(ShardIdx);
    EpochReclaimer::Pin P(Epoch);
    return S.Lock.read([&](ReadGuard &G) {
      return F(static_cast<const ShardTable &>(S.Table), G);
    });
  }

  /// Runs \p F(ShardTable&) as one writing critical section on shard
  /// \p ShardIdx.
  template <typename Fn> decltype(auto) writeShard(unsigned ShardIdx, Fn &&F) {
    Shard &S = shard(ShardIdx);
    return S.Lock.write([&] { return F(S.Table); });
  }

  // --- Whole-store introspection ------------------------------------------

  /// Sum of the shards' live counts (relaxed reads; exact when quiescent).
  std::size_t size() const {
    std::size_t Total = 0;
    for (const auto &S : Shards)
      Total += S->Table.liveCount();
    return Total;
  }

  uint64_t totalResizes() const {
    uint64_t Total = 0;
    for (const auto &S : Shards)
      Total += S->Table.resizeCount();
    return Total;
  }

  /// Drains deferred reclamation (no reader may be pinned) and checks the
  /// leak oracle: every shard's pool must have exactly one live cell per
  /// live entry. False means a lost or duplicated retire — the
  /// tombstone-reuse torture signature.
  bool quiesce() {
    Epoch.drainAll();
    for (const auto &S : Shards)
      if (S->Table.poolLiveCells() != S->Table.liveCount())
        return false;
    return true;
  }

  EpochReclaimer &epoch() { return Epoch; }
  Policy &shardPolicy(unsigned ShardIdx) { return shard(ShardIdx).Lock; }
  const ShardTable &shardTable(unsigned ShardIdx) const {
    return Shards[ShardIdx]->Table;
  }

private:
  /// Each shard starts on its own cache line: the whole point of sharding
  /// is that traffic to one lock does not bounce the lines of another.
  struct alignas(CacheLineSize) Shard {
    Shard(RuntimeContext &Ctx, EpochReclaimer &Epoch, std::size_t Capacity)
        : Lock(Ctx), Table(Epoch, Capacity) {}
    Policy Lock;
    ShardTable Table;
  };

  Shard &shard(unsigned Idx) { return *Shards[Idx]; }

  EpochReclaimer Epoch;
  std::vector<std::unique_ptr<Shard>> Shards;
  unsigned ShardMask = 0;
};

} // namespace kv
} // namespace solero

#endif // SOLERO_KV_SHARDEDKVSTORE_H

//===- stress/TortureRunner.h - Concurrency torture harness -----*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives one of the lock protocols (SOLERO, Tasuki, seqlock, RW, BRAVO)
/// through an adversarial mixed read/write workload under seeded schedule
/// perturbation (stress/SchedulePerturber.h) and an optional async-event
/// storm, and checks invariant oracles:
///
///   - mutual exclusion: a token exchanged at write-section entry/exit
///     must never find another owner inside;
///   - snapshot consistency: elided/optimistic reads of the (A, -A) field
///     pair must never observe a torn pair;
///   - counter conservation: ElisionAttempts == ElisionSuccesses +
///     ElisionFailures, and entry counters match issued operations
///     (section entries == exits is implied by both sides being counted);
///   - park-latency watchdog: any single operation stalled for a full
///     ParkMicros is the lost-wakeup signature (a parked FLC contender
///     nobody notified, rescued only by the timed-park backstop) and is
///     flagged in the report.
///
/// The runner is deterministic in its inputs (seeded RNG streams, fixed
/// iteration counts); the interleavings explored still vary with the OS
/// scheduler, so CI sweeps a small seed set rather than chasing one seed.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_STRESS_TORTURERUNNER_H
#define SOLERO_STRESS_TORTURERUNNER_H

#include <chrono>
#include <cstdint>
#include <string>

#include "runtime/RuntimeContext.h"
#include "stress/SchedulePerturber.h"

namespace solero {
namespace stress {

/// Which lock protocol the torture run drives. ShardedKv is not a bare
/// protocol but the kv/ShardedKvStore.h subsystem under its SOLERO shard
/// policy: the same oracles (exclusion token, torn pair, conservation)
/// plus cross-shard counter conservation, scan consistency, and the
/// epoch/pool leak check.
enum class TortureProtocol {
  Solero,
  Tasuki,
  SeqLock,
  RWLock,
  BravoRW,
  ShardedKv
};

const char *tortureProtocolName(TortureProtocol P);

/// A runtime tuned to force the slow paths constantly: one spin round,
/// short parks, event bus off (the storm thread drives async events).
RuntimeConfig adversarialTortureRuntime();

/// One torture scenario (a single cell of the cross-product matrix).
struct TortureConfig {
  TortureProtocol Protocol = TortureProtocol::Solero;
  int Threads = 4;
  /// Percentage of operations that are writing critical sections.
  int WritePercent = 20;
  /// Percentage of read sections that complete by throwing a guest
  /// exception (exercises the Section 3.3 genuine-exception path).
  int GuestThrowPercent = 0;
  uint64_t Seed = 1;
  uint64_t IterationsPerThread = 2000;
  /// Period of the async-event storm thread; 0 disables it.
  std::chrono::microseconds AsyncStormPeriod{0};
  /// Arm the schedule perturber for the run (Perturbation.Seed is
  /// overridden with Seed).
  bool Perturb = true;
  SchedulePerturber::Options Perturbation{};
  RuntimeConfig Runtime = adversarialTortureRuntime();
  /// Watchdog threshold; 0 means Runtime.ParkMicros (the lost-wakeup
  /// signature: one full timed park).
  std::chrono::microseconds ParkLatencyBudget{0};
  /// When true, watchdog trips fail passed(). Leave false on oversubscribed
  /// hosts where scheduling noise can stretch an op past the budget.
  bool EnforceWatchdog = false;
};

/// Oracle outcomes of one torture run.
struct TortureReport {
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t GuestThrows = 0;
  uint64_t ExclusionViolations = 0;
  uint64_t TornSnapshots = 0;
  uint64_t WatchdogTrips = 0;
  uint64_t MaxOpMicros = 0;
  uint64_t InjectionFirings = 0;
  bool CountersConserved = true;
  bool FinalStateClean = true;
  bool WatchdogEnforced = false;
  /// Human-readable description of the first conservation/state failure.
  std::string Failure;

  bool passed() const {
    return ExclusionViolations == 0 && TornSnapshots == 0 &&
           CountersConserved && FinalStateClean &&
           (!WatchdogEnforced || WatchdogTrips == 0);
  }

  /// One-line summary for logs and tables.
  std::string summary() const;
};

/// Runs one torture scenario to completion and reports the oracles.
TortureReport runTorture(const TortureConfig &Config);

} // namespace stress
} // namespace solero

#endif // SOLERO_STRESS_TORTURERUNNER_H

//===- stress/SchedulePerturber.h - Seeded schedule noise -------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded perturber that installs itself on the injection-point hook
/// (stress/InjectionPoint.h) and, at each fired site, pseudo-randomly
/// yields the thread, burns a spin delay, or sleeps — stretching the
/// nanosecond lock-word transition windows the protocols race through into
/// microsecond-to-millisecond windows where adversarial interleavings
/// (like a contender's FLC CAS landing inside a release window) actually
/// happen.
///
/// Decision streams are reproducible: each thread draws from its own RNG
/// seeded from (global seed, thread arrival ordinal), so a given seed
/// replays the same per-thread decision sequence; the interleaving itself
/// still depends on the OS scheduler, which is why the torture runner
/// sweeps seeds rather than chasing one.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_STRESS_SCHEDULEPERTURBER_H
#define SOLERO_STRESS_SCHEDULEPERTURBER_H

#include <atomic>
#include <chrono>
#include <cstdint>

#include "stress/InjectionPoint.h"

namespace solero {
namespace stress {

/// Installs seeded delays at armed injection sites. Construct, arm(), run
/// the scenario, join every participating thread, then disarm() (the
/// destructor disarms too). One perturber may be armed at a time.
class SchedulePerturber {
public:
  struct Options {
    uint64_t Seed = 1;
    /// Out of 100 firings: chance of an osYield() (the cheapest way to
    /// force a different thread into the open window).
    uint32_t YieldPercent = 35;
    /// Chance of a bounded cpuRelax() spin (stretches the window without a
    /// context switch — catches same-core SMT-style interleavings).
    uint32_t SpinPercent = 30;
    /// Chance of a real sleep (stretches the window by milliseconds; this
    /// is what reliably lands a contender's CAS inside a release window).
    uint32_t SleepPercent = 5;
    /// Upper bound of the spin delay in cpuRelax() iterations.
    int SpinMax = 4096;
    /// Upper bound of the sleep delay.
    std::chrono::microseconds SleepMax{200};
    /// Bitmask of enabled sites (bit = static_cast<uint32_t>(Site)).
    uint32_t SiteMask = 0xffffffffu;
  };

  explicit SchedulePerturber(Options O);
  ~SchedulePerturber();

  SchedulePerturber(const SchedulePerturber &) = delete;
  SchedulePerturber &operator=(const SchedulePerturber &) = delete;

  /// Installs this perturber as the process-wide injection hook.
  void arm();

  /// Uninstalls the hook. Call only after every thread that may fire a
  /// site has been joined (or is known to be outside the protocols).
  void disarm();

  /// Total firings across all sites and threads.
  uint64_t firings() const { return Total.load(std::memory_order_relaxed); }

  /// Firings of one site.
  uint64_t firings(inject::Site S) const {
    return PerSite[static_cast<uint32_t>(S)].load(std::memory_order_relaxed);
  }

  const Options &options() const { return Opts; }

private:
  static void trampoline(void *Ctx, inject::Site S);
  void perturb(inject::Site S);

  Options Opts;
  bool ArmedSelf = false;
  std::atomic<uint64_t> Total{0};
  std::atomic<uint32_t> NextOrdinal{0};
  std::atomic<uint64_t> PerSite[inject::SiteCount] = {};
};

} // namespace stress
} // namespace solero

#endif // SOLERO_STRESS_SCHEDULEPERTURBER_H

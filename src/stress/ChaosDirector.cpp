//===- stress/ChaosDirector.cpp - Seeded fault campaigns ------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "stress/ChaosDirector.h"

#include <chrono>
#include <cstdio>

#include "support/Assert.h"
#include "support/Rng.h"

using namespace solero;
using namespace solero::stress;

const char *solero::stress::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::SlowShard:
    return "SlowShard";
  case FaultKind::ParkStorm:
    return "ParkStorm";
  case FaultKind::WakeupStorm:
    return "WakeupStorm";
  case FaultKind::ClockJump:
    return "ClockJump";
  case FaultKind::CorruptRestore:
    return "CorruptRestore";
  case FaultKind::KindCount:
    break;
  }
  return "?";
}

ChaosDirector::ChaosDirector(ChaosConfig Cfg)
    : Cfg(Cfg), ShardDelay(new std::atomic<uint64_t>[Cfg.Shards]) {
  SOLERO_CHECK(Cfg.Shards > 0, "ChaosDirector needs at least one shard");
  SOLERO_CHECK(Cfg.MinEventNs <= Cfg.MaxEventNs,
               "ChaosDirector event bounds inverted");
  for (unsigned S = 0; S < Cfg.Shards; ++S)
    ShardDelay[S].store(0, std::memory_order_relaxed);

  // The campaign is a pure function of the seed: every kind, offset,
  // duration, and parameter comes from this one integer stream (no
  // floating point, no wall clock), which is what makes the schedule
  // byte-for-byte reproducible across runs and hosts.
  SplitMix64 Rng(Cfg.Seed ^ 0xC4A05E7ull);
  const uint64_t Kinds = static_cast<uint64_t>(FaultKind::KindCount);
  uint64_t T = 0;
  for (;;) {
    // Quiet gap in [MeanGap/2, MeanGap*3/2), then the fault window.
    T += Cfg.MeanGapNs / 2 + Rng.next() % (Cfg.MeanGapNs + 1);
    if (T >= Cfg.DurationNs)
      break;
    FaultKind Kind;
    do {
      Kind = static_cast<FaultKind>(Rng.next() % Kinds);
    } while (((Cfg.KindMask >> static_cast<uint8_t>(Kind)) & 1u) == 0);
    ChaosEvent E;
    E.Kind = Kind;
    E.StartNs = T;
    uint64_t Span = Cfg.MaxEventNs - Cfg.MinEventNs;
    uint64_t Len = Cfg.MinEventNs + (Span ? Rng.next() % (Span + 1) : 0);
    E.Param = 0;
    E.DelayNs = 0;
    switch (Kind) {
    case FaultKind::SlowShard:
      E.Param = Rng.next() % Cfg.Shards;
      E.DelayNs = Cfg.SlowShardDelayNs / 2 +
                  Rng.next() % (Cfg.SlowShardDelayNs + 1);
      break;
    case FaultKind::ClockJump: {
      // Signed skew in [-Max, +Max], stored via two's-complement cast.
      uint64_t Mag = Rng.next() % (Cfg.ClockJumpMaxNs + 1);
      bool Forward = (Rng.next() & 1) != 0;
      E.Param = static_cast<uint64_t>(
          Forward ? static_cast<int64_t>(Mag) : -static_cast<int64_t>(Mag));
      break;
    }
    case FaultKind::CorruptRestore:
      Len = 0; // a point event: attempt the restore, nothing to revert
      E.Param = Rng.next(); // garbage-image seed
      break;
    case FaultKind::ParkStorm:
    case FaultKind::WakeupStorm:
      E.Param = Rng.next(); // perturber decision-stream seed
      break;
    case FaultKind::KindCount:
      break;
    }
    E.EndNs = E.StartNs + Len;
    if (E.EndNs > Cfg.DurationNs)
      E.EndNs = Cfg.DurationNs;
    Schedule.push_back(E);
    T = E.EndNs; // events never overlap: one fault at a time by design
  }
}

ChaosDirector::~ChaosDirector() { stop(); }

std::string ChaosDirector::scheduleString() const {
  std::string Out;
  char Line[160];
  std::snprintf(Line, sizeof(Line),
                "chaos schedule: seed=%llu events=%zu duration_ms=%llu\n",
                static_cast<unsigned long long>(Cfg.Seed), Schedule.size(),
                static_cast<unsigned long long>(Cfg.DurationNs / 1000000));
  Out += Line;
  for (const ChaosEvent &E : Schedule) {
    std::snprintf(
        Line, sizeof(Line),
        "  +%8llums %6llums %-14s param=%llu delay_us=%llu\n",
        static_cast<unsigned long long>(E.StartNs / 1000000),
        static_cast<unsigned long long>((E.EndNs - E.StartNs) / 1000000),
        faultKindName(E.Kind), static_cast<unsigned long long>(E.Param),
        static_cast<unsigned long long>(E.DelayNs / 1000));
    Out += Line;
  }
  return Out;
}

uint64_t ChaosDirector::nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ChaosDirector::start(uint64_t BeginNs) {
  if (Running.exchange(true, std::memory_order_acq_rel))
    return;
  Director = std::thread([this, BeginNs] { run(BeginNs); });
}

void ChaosDirector::stop() {
  Running.store(false, std::memory_order_release);
  if (Director.joinable())
    Director.join();
}

void ChaosDirector::run(uint64_t BeginNs) {
  auto SleepUntil = [this](uint64_t TargetNs) {
    for (;;) {
      if (!Running.load(std::memory_order_acquire))
        return false;
      uint64_t Now = nowNs();
      if (Now >= TargetNs)
        return true;
      uint64_t Gap = TargetNs - Now;
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(Gap > 2'000'000 ? 2'000'000 : Gap));
    }
  };
  for (const ChaosEvent &E : Schedule) {
    if (!SleepUntil(BeginNs + E.StartNs))
      return;
    apply(E);
    Applied.fetch_add(1, std::memory_order_relaxed);
    bool Full = SleepUntil(BeginNs + E.EndNs);
    revert(E);
    if (!Full)
      return;
  }
}

void ChaosDirector::apply(const ChaosEvent &E) {
  ActiveCount.fetch_add(1, std::memory_order_relaxed);
  switch (E.Kind) {
  case FaultKind::SlowShard:
    ShardDelay[E.Param].store(E.DelayNs, std::memory_order_relaxed);
    break;
  case FaultKind::ParkStorm: {
    // Preemption-heavy noise on every lock-word transition window.
    SchedulePerturber::Options O;
    O.Seed = E.Param;
    O.YieldPercent = 50;
    O.SpinPercent = 30;
    O.SleepPercent = 5;
    O.SpinMax = 2048;
    O.SleepMax = std::chrono::microseconds(150);
    Perturbers.push_back(std::make_unique<SchedulePerturber>(O));
    Perturbers.back()->arm();
    break;
  }
  case FaultKind::WakeupStorm: {
    // Sleep-heavy delays confined to the FLC/park windows: the shape of
    // dropped and delayed wakeups (the paper's §3 fallback pressure).
    SchedulePerturber::Options O;
    O.Seed = E.Param;
    O.YieldPercent = 10;
    O.SpinPercent = 5;
    O.SleepPercent = 60;
    O.SleepMax = std::chrono::microseconds(500);
    O.SiteMask =
        (1u << static_cast<uint32_t>(inject::Site::MonitorFlcSet)) |
        (1u << static_cast<uint32_t>(inject::Site::MonitorPark)) |
        (1u << static_cast<uint32_t>(inject::Site::SoleroSlowExitRelease)) |
        (1u << static_cast<uint32_t>(inject::Site::TasukiSlowExitRelease));
    Perturbers.push_back(std::make_unique<SchedulePerturber>(O));
    Perturbers.back()->arm();
    break;
  }
  case FaultKind::ClockJump:
    ClockSkew.store(static_cast<int64_t>(E.Param),
                    std::memory_order_relaxed);
    break;
  case FaultKind::CorruptRestore:
    if (CorruptRestore)
      CorruptRestore();
    break;
  case FaultKind::KindCount:
    break;
  }
}

void ChaosDirector::revert(const ChaosEvent &E) {
  switch (E.Kind) {
  case FaultKind::SlowShard:
    ShardDelay[E.Param].store(0, std::memory_order_relaxed);
    break;
  case FaultKind::ParkStorm:
  case FaultKind::WakeupStorm:
    // disarm() is safe while workers still fire sites: the injection
    // trampoline tolerates a concurrently nulled hook, and the perturber
    // object itself is retired (not destroyed) until director teardown.
    if (!Perturbers.empty())
      Perturbers.back()->disarm();
    break;
  case FaultKind::ClockJump:
    ClockSkew.store(0, std::memory_order_relaxed);
    break;
  case FaultKind::CorruptRestore:
    break;
  case FaultKind::KindCount:
    break;
  }
  ActiveCount.fetch_sub(1, std::memory_order_relaxed);
}

//===- stress/InjectionPoint.h - Lock-word transition hooks -----*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named hooks at every lock-word transition window in the lock protocols
/// (release-store windows, FLC publication, inflation/deflation, the
/// read-mostly upgrade CAS). Each site is a `SOLERO_INJECT(Name)` macro
/// placed between the decision load and the commit store/CAS, so a torture
/// harness can stretch a nanosecond race window to milliseconds by
/// yielding, spinning, or sleeping there.
///
/// Disarmed cost is one relaxed load and a predicted-not-taken branch; with
/// `-DSOLERO_INJECTION_POINTS=OFF` at configure time the macro compiles to
/// nothing and the protocols are bit-identical to the uninstrumented code.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_STRESS_INJECTIONPOINT_H
#define SOLERO_STRESS_INJECTIONPOINT_H

#include <atomic>
#include <cstdint>

namespace solero {
namespace inject {

/// Every perturbable lock-word transition window. One enumerator per
/// `SOLERO_INJECT` site; keep siteName() in InjectionPoint.cpp in sync.
enum class Site : uint32_t {
  SoleroEnterWriteCas = 0, ///< enterWrite: free-word load -> held CAS
  SoleroExitWriteRelease,  ///< exitWrite: held-word load -> release CAS
  SoleroSlowExitRelease,   ///< slowExitWrite: FLC-set release store -> notify
  SoleroReadExitRelease,   ///< slowReadExit hold_flat_lock release window
  SoleroReadValidate,      ///< end-of-section fence -> validation load
  SoleroUpgradeCas,        ///< WriteIntent::acquireForWrite upgrade CAS
  TasukiEnterCas,          ///< Tasuki enter: free-word load -> held CAS
  TasukiExitRelease,       ///< Tasuki exit: held-word load -> release CAS
  TasukiSlowExitRelease,   ///< Tasuki slowExit: FLC release store -> notify
  MonitorFlcSet,           ///< acquireOrPark: FLC CAS -> park decision
  MonitorPark,             ///< acquireOrPark: immediately before the timed park
  MonitorInflate,          ///< inflated-word install windows
  MonitorDeflate,          ///< fatExit: deflation restore-word store
  Count
};

inline constexpr uint32_t SiteCount = static_cast<uint32_t>(Site::Count);

/// Stable human-readable site name ("SoleroExitWriteRelease").
const char *siteName(Site S);

/// Hook invoked at an armed site. \p Ctx is the pointer passed to setHook;
/// it may be null if the hook is being concurrently disarmed — hooks must
/// tolerate that and return.
using Hook = void (*)(void *Ctx, Site S);

/// Installs (Hook, Ctx) as the process-wide injection handler; a null hook
/// disarms. Arm/disarm while the protocols are quiescent or with a hook
/// that tolerates a stale Ctx: fire() reads the two cells without a lock.
void setHook(Hook H, void *Ctx);

namespace detail {
extern std::atomic<Hook> ArmedHook;
extern std::atomic<void *> ArmedCtx;
} // namespace detail

/// The per-site trampoline behind SOLERO_INJECT. Disarmed: one relaxed
/// load, no call.
inline void fire(Site S) {
  Hook H = detail::ArmedHook.load(std::memory_order_acquire);
  if (H != nullptr) [[unlikely]]
    H(detail::ArmedCtx.load(std::memory_order_acquire), S);
}

} // namespace inject
} // namespace solero

#if defined(SOLERO_INJECTION_POINTS)
#define SOLERO_INJECT(site) ::solero::inject::fire(::solero::inject::Site::site)
#else
#define SOLERO_INJECT(site) ((void)0)
#endif

#endif // SOLERO_STRESS_INJECTIONPOINT_H

//===- stress/ChaosDirector.h - Seeded fault campaigns ----------*- C++ -*-===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault-injection campaigns against a live KV soak run
/// (DESIGN.md §17). The schedule-perturbing torture runner attacks the
/// lock *protocols* at nanosecond transition windows; the ChaosDirector
/// attacks the *service* at millisecond scale — the failure modes a
/// speculation-built service meets in production:
///
///   SlowShard       one shard's requests pay an injected delay (a cold
///                   NUMA hop, a page fault burst): drives queueing into
///                   the deadline/shed machinery
///   ParkStorm       SchedulePerturber armed yield/spin-heavy across all
///                   injection sites: preemption storms inside lock-word
///                   transition windows
///   WakeupStorm     SchedulePerturber armed sleep-heavy on the monitor
///                   park/FLC sites only: lost-wakeup-shaped stalls, the
///                   paper's §3 fallback pressure
///   ClockJump       a skew applied to the *deadline clock* (not the
///                   latency accounting): expiry decisions go wrong the
///                   way NTP steps make them go wrong
///   CorruptRestore  a warm-image restore from corrupted bytes attempted
///                   mid-flight (image layer must degrade to a
///                   Diagnostic, never crash or poison live lock state)
///
/// The campaign is a pure function of the seed: event kinds, offsets,
/// durations, and parameters are drawn from a SplitMix64 stream at
/// construction, so `--chaos --seed=N` replays byte-for-byte the same
/// schedule (scheduleString() is printed and diffable across runs). The
/// director thread applies each event at its offset and reverts it at its
/// end; workers observe faults through lock-free accessors.
///
//===----------------------------------------------------------------------===//

#ifndef SOLERO_STRESS_CHAOSDIRECTOR_H
#define SOLERO_STRESS_CHAOSDIRECTOR_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "stress/SchedulePerturber.h"

namespace solero {
namespace stress {

enum class FaultKind : uint8_t {
  SlowShard = 0,
  ParkStorm,
  WakeupStorm,
  ClockJump,
  CorruptRestore,
  KindCount
};

const char *faultKindName(FaultKind K);

/// One scheduled fault: active on [StartNs, EndNs) relative to campaign
/// start. Param is kind-specific: shard index (SlowShard), skew ns signed
/// via cast (ClockJump), unused otherwise.
struct ChaosEvent {
  FaultKind Kind;
  uint64_t StartNs;
  uint64_t EndNs;
  uint64_t Param;
  uint64_t DelayNs; ///< SlowShard: injected per-op delay
};

struct ChaosConfig {
  uint64_t Seed = 1;
  uint64_t DurationNs = 5'000'000'000; ///< campaign length
  unsigned Shards = 16;                ///< SlowShard parameter space
  uint64_t MeanGapNs = 120'000'000;    ///< quiet time between faults
  uint64_t MinEventNs = 40'000'000;    ///< fault active-window bounds
  uint64_t MaxEventNs = 150'000'000;
  uint64_t SlowShardDelayNs = 200'000; ///< per-op delay while active
  uint64_t ClockJumpMaxNs = 50'000'000;
  /// Per-kind enable mask (bit = static_cast<uint8_t>(FaultKind)); all on.
  uint32_t KindMask = 0xffffffffu;
};

/// Builds the seeded schedule at construction; start() launches the
/// director thread that applies/reverts events on the wall clock.
class ChaosDirector {
public:
  explicit ChaosDirector(ChaosConfig Cfg);
  ~ChaosDirector();

  ChaosDirector(const ChaosDirector &) = delete;
  ChaosDirector &operator=(const ChaosDirector &) = delete;

  const std::vector<ChaosEvent> &schedule() const { return Schedule; }

  /// The schedule rendered one event per line — byte-for-byte identical
  /// for equal (Seed, DurationNs, Shards, bounds): the reproducibility
  /// contract the acceptance criteria check.
  std::string scheduleString() const;

  /// CorruptRestore handler: invoked on the director thread while traffic
  /// runs. The KV soak registers a lambda that feeds garbage bytes to the
  /// image-restore path and checks it degrades to a Diagnostic.
  void setCorruptRestoreHook(std::function<void()> Hook) {
    CorruptRestore = std::move(Hook);
  }

  /// Launches the director; events fire at BeginNs + event offset.
  void start(uint64_t BeginNs);
  /// Reverts any active fault and joins the director (idempotent).
  void stop();

  // --- Worker-facing fault state (lock-free) -----------------------------

  /// Injected delay for \p Shard's ops right now (0 when no fault).
  uint64_t shardDelayNs(unsigned Shard) const {
    return ShardDelay[Shard].load(std::memory_order_relaxed);
  }
  /// Skew the deadline clock by this much (signed; 0 when no fault).
  int64_t clockSkewNs() const {
    return ClockSkew.load(std::memory_order_relaxed);
  }
  /// Events whose active window has been applied so far.
  uint64_t faultsApplied() const {
    return Applied.load(std::memory_order_relaxed);
  }
  /// True while any fault is active (reporting only).
  bool faultActive() const {
    return ActiveCount.load(std::memory_order_relaxed) != 0;
  }

private:
  void run(uint64_t BeginNs);
  void apply(const ChaosEvent &E);
  void revert(const ChaosEvent &E);
  static uint64_t nowNs();

  ChaosConfig Cfg;
  std::vector<ChaosEvent> Schedule;
  std::unique_ptr<std::atomic<uint64_t>[]> ShardDelay;
  std::atomic<int64_t> ClockSkew{0};
  std::atomic<uint64_t> Applied{0};
  std::atomic<uint32_t> ActiveCount{0};
  std::function<void()> CorruptRestore;
  /// Each storm event arms a fresh perturber (at most one armed at a
  /// time: events never overlap). Disarmed perturbers are retired here,
  /// not destroyed: a worker may still be executing the old hook body the
  /// instant it is disarmed, so the objects must outlive all traffic —
  /// the director is destroyed only after the soak's workers join.
  std::vector<std::unique_ptr<SchedulePerturber>> Perturbers;
  std::atomic<bool> Running{false};
  std::thread Director;
};

} // namespace stress
} // namespace solero

#endif // SOLERO_STRESS_CHAOSDIRECTOR_H

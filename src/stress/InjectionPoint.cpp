//===- stress/InjectionPoint.cpp - Lock-word transition hooks -------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "stress/InjectionPoint.h"

namespace solero {
namespace inject {

namespace detail {
std::atomic<Hook> ArmedHook{nullptr};
std::atomic<void *> ArmedCtx{nullptr};
} // namespace detail

const char *siteName(Site S) {
  switch (S) {
  case Site::SoleroEnterWriteCas:
    return "SoleroEnterWriteCas";
  case Site::SoleroExitWriteRelease:
    return "SoleroExitWriteRelease";
  case Site::SoleroSlowExitRelease:
    return "SoleroSlowExitRelease";
  case Site::SoleroReadExitRelease:
    return "SoleroReadExitRelease";
  case Site::SoleroReadValidate:
    return "SoleroReadValidate";
  case Site::SoleroUpgradeCas:
    return "SoleroUpgradeCas";
  case Site::TasukiEnterCas:
    return "TasukiEnterCas";
  case Site::TasukiExitRelease:
    return "TasukiExitRelease";
  case Site::TasukiSlowExitRelease:
    return "TasukiSlowExitRelease";
  case Site::MonitorFlcSet:
    return "MonitorFlcSet";
  case Site::MonitorPark:
    return "MonitorPark";
  case Site::MonitorInflate:
    return "MonitorInflate";
  case Site::MonitorDeflate:
    return "MonitorDeflate";
  case Site::Count:
    break;
  }
  return "<unknown-site>";
}

void setHook(Hook H, void *Ctx) {
  if (H == nullptr) {
    // Disarm hook-first so a racing fire() that already loaded the old
    // hook still sees a valid (if soon stale) context, or a null one.
    detail::ArmedHook.store(nullptr, std::memory_order_release);
    detail::ArmedCtx.store(nullptr, std::memory_order_release);
    return;
  }
  detail::ArmedCtx.store(Ctx, std::memory_order_release);
  detail::ArmedHook.store(H, std::memory_order_release);
}

} // namespace inject
} // namespace solero

//===- stress/TortureRunner.cpp - Concurrency torture harness -------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "stress/TortureRunner.h"

#include <atomic>
#include <bit>
#include <thread>
#include <utility>
#include <vector>

#include "core/SoleroLock.h"
#include "kv/ShardedKvStore.h"
#include "locks/BravoRwLock.h"
#include "locks/ReadWriteLock.h"
#include "locks/SeqLock.h"
#include "locks/TasukiLock.h"
#include "runtime/SharedField.h"
#include "support/Barrier.h"
#include "support/Rng.h"
#include "support/Stopwatch.h"

using namespace solero;
using namespace solero::stress;

namespace {

/// The guest exception some read sections complete with (Section 3.3's
/// "genuine exception" leg): it must propagate out of a consistent section
/// and be absorbed as a retry out of an inconsistent one.
struct GuestBoom {};

/// Shared torture state: the (A, -A) invariant pair plus the mutual
/// exclusion token. Writers keep B == -A at all times *as observed under
/// the lock*; an optimistic reader seeing A != -B read a torn snapshot.
struct TortureState {
  SharedField<int64_t> A{0};
  SharedField<int64_t> B{0};
  std::atomic<uint64_t> Token{0};
};

/// Per-thread oracle tallies, merged after the join.
struct WorkerTally {
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t GuestThrows = 0;
  uint64_t ExclusionViolations = 0;
  uint64_t TornSnapshots = 0;
  uint64_t WatchdogTrips = 0;
  uint64_t MaxOpMicros = 0;
  uint64_t Entries = 0;
  uint64_t Exits = 0;
  /// ShardedKv only: a churn put/remove/get on a key owned exclusively by
  /// this thread disagreed with the thread's own presence bitmap.
  uint64_t ChurnMismatches = 0;
};

/// The write-section body shared by every protocol adapter: claim the
/// exclusion token, mutate the invariant pair, release the token. Any
/// token mismatch means two threads were inside a "mutual exclusion"
/// section at once.
void writeBody(TortureState &S, uint64_t Tag, WorkerTally &T) {
  ++T.Entries;
  if (S.Token.exchange(Tag, std::memory_order_acq_rel) != 0)
    ++T.ExclusionViolations;
  int64_t V = S.A.read() + 1;
  S.A.write(V);
  S.B.write(-V);
  if (S.Token.exchange(0, std::memory_order_acq_rel) != Tag)
    ++T.ExclusionViolations;
  ++T.Exits;
}

/// The read-section body: snapshot the pair (optionally completing with a
/// guest exception). Consistency is judged by the caller after the
/// protocol has validated the section.
std::pair<int64_t, int64_t> readBody(TortureState &S, bool Throw) {
  std::pair<int64_t, int64_t> P(S.A.read(), S.B.read());
  if (Throw)
    throw GuestBoom{};
  return P;
}

// --- Protocol adapters ---------------------------------------------------
// A thin uniform shape (read / write / finalStateClean) over the four
// protocols so the worker loop is written once. Deliberately local: the
// torture harness must not depend on the workload layer it is meant to
// out-stress.

class SoleroAdapter {
public:
  explicit SoleroAdapter(RuntimeContext &Ctx) : L(Ctx) {}

  template <typename Fn> auto read(Fn &&F) {
    return L.synchronizedReadOnly(H, [&](ReadGuard &) { return F(); });
  }
  template <typename Fn> void write(Fn &&F) {
    L.synchronizedWrite(H, [&] { F(); });
  }
  bool finalStateClean() { return lockword::soleroIsFree(H.word().load()); }
  static constexpr bool HasProtocolCounters = true;
  static constexpr bool HasElision = true;

private:
  SoleroLock L;
  ObjectHeader H;
};

class TasukiAdapter {
public:
  explicit TasukiAdapter(RuntimeContext &Ctx) : L(Ctx) {}

  template <typename Fn> auto read(Fn &&F) {
    return L.synchronizedReadOnly(H, [&](ReadGuard &) { return F(); });
  }
  template <typename Fn> void write(Fn &&F) {
    L.synchronizedWrite(H, [&] { F(); });
  }
  bool finalStateClean() { return H.word().load() == 0; }
  static constexpr bool HasProtocolCounters = true;
  static constexpr bool HasElision = false;

private:
  TasukiLock L;
  ObjectHeader H;
};

class RwAdapter {
public:
  explicit RwAdapter(RuntimeContext &Ctx) : L(Ctx) {}

  template <typename Fn> auto read(Fn &&F) {
    return L.synchronizedReadOnly([&](ReadGuard &) { return F(); });
  }
  template <typename Fn> void write(Fn &&F) {
    L.synchronizedWrite([&] { F(); });
  }
  bool finalStateClean() { return L.readerCount() == 0; }
  static constexpr bool HasProtocolCounters = true;
  static constexpr bool HasElision = false;

private:
  ReadWriteLock L;
};

class SeqAdapter {
public:
  explicit SeqAdapter(RuntimeContext &) {}

  template <typename Fn> auto read(Fn &&F) {
    // readProtected retries internally, so a guest throw out of a torn
    // execution must be absorbed here exactly like the elision engine
    // absorbs it: genuine iff the snapshot was consistent.
    for (;;) {
      uint64_t V = L.readBegin();
      try {
        auto R = F();
        if (!L.readRetry(V))
          return R;
      } catch (GuestBoom &) {
        if (!L.readRetry(V))
          throw;
      }
    }
  }
  template <typename Fn> void write(Fn &&F) { L.writeProtected(F); }
  bool finalStateClean() { return (L.value() & 1) == 0; }
  static constexpr bool HasProtocolCounters = false;
  static constexpr bool HasElision = false;

private:
  SeqLock L;
};

class BravoAdapter {
public:
  explicit BravoAdapter(RuntimeContext &Ctx) : L(Ctx) {}

  template <typename Fn> auto read(Fn &&F) {
    return L.synchronizedReadOnly([&](ReadGuard &) { return F(); });
  }
  template <typename Fn> void write(Fn &&F) {
    L.synchronizedWrite([&] { F(); });
  }
  /// Clean means no indication left behind in either layer: the biased
  /// visible-readers slots *and* the underlying centralized count.
  bool finalStateClean() { return L.readerCount() == 0; }
  static constexpr bool HasProtocolCounters = true;
  static constexpr bool HasElision = false;

private:
  BravoRwLock L;
};

/// The async-event storm: hammers every thread's poll flag at the
/// configured period, forcing speculationCheckpoint() validations and
/// SpeculationFault unwinds far more often than the production ticker.
class AsyncStorm {
public:
  explicit AsyncStorm(std::chrono::microseconds Period) {
    if (Period.count() <= 0)
      return;
    Worker = std::thread([this, Period] {
      while (!Stop.load(std::memory_order_acquire)) {
        AsyncEventBus::postToAllThreads();
        std::this_thread::sleep_for(Period);
      }
    });
  }
  ~AsyncStorm() {
    if (!Worker.joinable())
      return;
    Stop.store(true, std::memory_order_release);
    Worker.join();
  }

private:
  std::atomic<bool> Stop{false};
  std::thread Worker;
};

template <typename Adapter>
TortureReport runWithAdapter(const TortureConfig &C) {
  TortureReport R;
  RuntimeContext Ctx(C.Runtime);
  Adapter A(Ctx);
  TortureState S;

  const std::chrono::microseconds Budget =
      C.ParkLatencyBudget.count() > 0 ? C.ParkLatencyBudget
                                      : C.Runtime.ParkMicros;
  const uint64_t BudgetNs =
      static_cast<uint64_t>(Budget.count()) * 1000u;

  SchedulePerturber::Options PO = C.Perturbation;
  PO.Seed = C.Seed;
  SchedulePerturber Perturber(PO);
  if (C.Perturb)
    Perturber.arm();

  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();

  std::vector<WorkerTally> Tallies(static_cast<std::size_t>(C.Threads));
  SpinBarrier Start(static_cast<uint32_t>(C.Threads) + 1);
  std::vector<std::thread> Workers;
  Workers.reserve(static_cast<std::size_t>(C.Threads));
  {
    AsyncStorm Storm(C.AsyncStormPeriod);
    for (int T = 0; T < C.Threads; ++T)
      Workers.emplace_back([&, T] {
        WorkerTally &Tally = Tallies[static_cast<std::size_t>(T)];
        Xoshiro256StarStar Rng(C.Seed * 0x9e3779b97f4a7c15ULL +
                               static_cast<uint64_t>(T) + 1);
        const uint64_t Tag = static_cast<uint64_t>(T) + 1;
        Start.arriveAndWait();
        for (uint64_t I = 0; I < C.IterationsPerThread; ++I) {
          Stopwatch Op;
          if (Rng.nextPercent(static_cast<unsigned>(C.WritePercent))) {
            A.write([&] { writeBody(S, Tag, Tally); });
            ++Tally.Writes;
          } else {
            bool Throw =
                Rng.nextPercent(static_cast<unsigned>(C.GuestThrowPercent));
            ++Tally.Entries;
            try {
              auto P = A.read([&] { return readBody(S, Throw); });
              if (P.first != -P.second)
                ++Tally.TornSnapshots;
            } catch (GuestBoom &) {
              // Genuine guest exception: the protocol validated the
              // section's reads before letting it escape.
              ++Tally.GuestThrows;
            }
            ++Tally.Exits;
            ++Tally.Reads;
          }
          uint64_t Ns = Op.elapsedNs();
          if (Ns / 1000u > Tally.MaxOpMicros)
            Tally.MaxOpMicros = Ns / 1000u;
          if (Ns >= BudgetNs)
            ++Tally.WatchdogTrips;
        }
      });
    Start.arriveAndWait();
    for (auto &W : Workers)
      W.join();
    // Storm stops here, before the perturber disarms.
  }
  Perturber.disarm();
  R.InjectionFirings = Perturber.firings();
  R.WatchdogEnforced = C.EnforceWatchdog;

  for (const WorkerTally &T : Tallies) {
    R.Reads += T.Reads;
    R.Writes += T.Writes;
    R.GuestThrows += T.GuestThrows;
    R.ExclusionViolations += T.ExclusionViolations;
    R.TornSnapshots += T.TornSnapshots;
    R.WatchdogTrips += T.WatchdogTrips;
    if (T.MaxOpMicros > R.MaxOpMicros)
      R.MaxOpMicros = T.MaxOpMicros;
    if (T.Entries != T.Exits) {
      R.CountersConserved = false;
      R.Failure = "section entries != exits";
    }
  }

  // Data conservation: every write incremented A exactly once.
  if (S.A.read() != static_cast<int64_t>(R.Writes) ||
      S.B.read() != -static_cast<int64_t>(R.Writes)) {
    R.CountersConserved = false;
    R.Failure = "lost or duplicated write (A != total writes)";
  }

  if constexpr (Adapter::HasProtocolCounters) {
    ProtocolCounters After = ThreadRegistry::instance().totalCounters();
    uint64_t WriteEntries = After.WriteEntries - Before.WriteEntries;
    uint64_t ReadEntries = After.ReadOnlyEntries - Before.ReadOnlyEntries;
    if (WriteEntries != R.Writes || ReadEntries != R.Reads) {
      R.CountersConserved = false;
      R.Failure = "entry counters != issued operations";
    }
    if constexpr (Adapter::HasElision) {
      uint64_t Attempts = After.ElisionAttempts - Before.ElisionAttempts;
      uint64_t Successes = After.ElisionSuccesses - Before.ElisionSuccesses;
      uint64_t Failures = After.ElisionFailures - Before.ElisionFailures;
      if (Attempts != Successes + Failures) {
        R.CountersConserved = false;
        R.Failure = "attempts != successes + failures";
      }
    }
  }

  if (!A.finalStateClean()) {
    R.FinalStateClean = false;
    if (R.Failure.empty())
      R.Failure = "lock not released/deflated after the run";
  }
  return R;
}

// --- ShardedKv torture ---------------------------------------------------
// Drives kv/ShardedKvStore.h instead of a bare lock: four shards at the
// minimum table capacity so churn forces resizes while readers probe, with
// the SOLERO protocol adapted locally (same layering rule as the adapters
// above: the harness builds its own policy rather than importing the
// workload layer's).

/// SOLERO as a shard policy, local to the torture harness.
class KvSoleroShardPolicy {
public:
  explicit KvSoleroShardPolicy(RuntimeContext &Ctx) : L(Ctx) {}

  template <typename Fn> decltype(auto) read(Fn &&F) {
    return L.synchronizedReadOnly(H, std::forward<Fn>(F));
  }
  template <typename Fn> decltype(auto) write(Fn &&F) {
    return L.synchronizedWrite(H, std::forward<Fn>(F));
  }
  static const char *name() { return "SOLERO"; }

  bool free() { return lockword::soleroIsFree(H.word().load()); }

private:
  SoleroLock L;
  ObjectHeader H;
};

/// Per-shard invariant state: the exclusion token for the pair-bump write
/// section and the authoritative bump count (incremented while the token
/// is held, so it is serialized with the pair itself).
struct KvShardOracle {
  std::atomic<uint64_t> Token{0};
  std::atomic<uint64_t> Bumps{0};
};

/// One validated read of a shard's (A, B) invariant pair.
struct KvPairSnapshot {
  uint64_t A = 0;
  uint64_t B = 0;
  bool BothFound = false;
};

/// Reserved pair keys live far above the churn-key space (Tag << 32 | Idx
/// with small tags) and are always accessed through readShard/writeShard
/// on their home shard, never hash-routed.
constexpr uint64_t KvPairKeyBase = 1ull << 48;
inline uint64_t kvPairKeyA(unsigned Shard) {
  return KvPairKeyBase + 2ull * Shard;
}
inline uint64_t kvPairKeyB(unsigned Shard) {
  return KvPairKeyBase + 2ull * Shard + 1;
}

TortureReport runShardedKvTorture(const TortureConfig &C) {
  // Small shard count and the minimum table capacity: the default churn
  // universe (48 keys/thread) overflows 16 slots many times over, so
  // resizes and tombstone purges happen continuously under the readers.
  constexpr unsigned NumShards = 4;
  constexpr unsigned ChurnKeysPerThread = 48;

  TortureReport R;
  RuntimeContext Ctx(C.Runtime);
  kv::ShardedKvStore<KvSoleroShardPolicy> Store(
      Ctx, kv::KvStoreConfig{NumShards, /*InitialShardCapacity=*/16});
  std::vector<KvShardOracle> Oracles(NumShards);

  // Prefill each shard's invariant pair at zero (one write section per
  // shard, issued before the counter snapshot below).
  for (unsigned S = 0; S < NumShards; ++S)
    Store.writeShard(S, [&](kv::ShardTable &T) {
      T.put(kvPairKeyA(S), 0);
      T.put(kvPairKeyB(S), 0);
    });

  const std::chrono::microseconds Budget =
      C.ParkLatencyBudget.count() > 0 ? C.ParkLatencyBudget
                                      : C.Runtime.ParkMicros;
  const uint64_t BudgetNs = static_cast<uint64_t>(Budget.count()) * 1000u;

  SchedulePerturber::Options PO = C.Perturbation;
  PO.Seed = C.Seed;
  SchedulePerturber Perturber(PO);
  if (C.Perturb)
    Perturber.arm();

  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();

  std::vector<WorkerTally> Tallies(static_cast<std::size_t>(C.Threads));
  std::vector<uint64_t> Bitmaps(static_cast<std::size_t>(C.Threads), 0);
  SpinBarrier Start(static_cast<uint32_t>(C.Threads) + 1);
  std::vector<std::thread> Workers;
  Workers.reserve(static_cast<std::size_t>(C.Threads));
  {
    AsyncStorm Storm(C.AsyncStormPeriod);
    for (int T = 0; T < C.Threads; ++T)
      Workers.emplace_back([&, T] {
        WorkerTally &Tally = Tallies[static_cast<std::size_t>(T)];
        uint64_t &Bitmap = Bitmaps[static_cast<std::size_t>(T)];
        Xoshiro256StarStar Rng(C.Seed * 0x9e3779b97f4a7c15ULL +
                               static_cast<uint64_t>(T) + 1);
        const uint64_t Tag = static_cast<uint64_t>(T) + 1;
        Start.arriveAndWait();
        for (uint64_t I = 0; I < C.IterationsPerThread; ++I) {
          Stopwatch Op;
          unsigned S = static_cast<unsigned>(Rng.nextBounded(NumShards));
          if (Rng.nextPercent(static_cast<unsigned>(C.WritePercent))) {
            ++Tally.Entries;
            if (Rng.nextPercent(50)) {
              // Pair bump: one write section keeps B == -A (mod 2^64).
              KvShardOracle &O = Oracles[S];
              Store.writeShard(S, [&](kv::ShardTable &Table) {
                if (O.Token.exchange(Tag, std::memory_order_acq_rel) != 0)
                  ++Tally.ExclusionViolations;
                uint64_t V =
                    O.Bumps.fetch_add(1, std::memory_order_relaxed) + 1;
                Table.put(kvPairKeyA(S), V);
                Table.put(kvPairKeyB(S), 0 - V);
                if (O.Token.exchange(0, std::memory_order_acq_rel) != Tag)
                  ++Tally.ExclusionViolations;
              });
            } else {
              // Churn flip on a key only this thread mutates: the return
              // value must agree with the thread's own bitmap.
              unsigned Idx =
                  static_cast<unsigned>(Rng.nextBounded(ChurnKeysPerThread));
              uint64_t Key = (Tag << 32) | Idx;
              bool Present = (Bitmap >> Idx) & 1;
              bool Changed = Present ? Store.remove(Key)
                                     : Store.put(Key, Key);
              if (!Changed)
                ++Tally.ChurnMismatches;
              Bitmap ^= 1ull << Idx;
            }
            ++Tally.Exits;
            ++Tally.Writes;
          } else {
            uint64_t Kind = Rng.nextBounded(3);
            bool Throw =
                Kind == 0 &&
                Rng.nextPercent(static_cast<unsigned>(C.GuestThrowPercent));
            ++Tally.Entries;
            try {
              if (Kind == 0) {
                // Invariant-pair read: one validated section must never
                // see A + B != 0.
                KvPairSnapshot P = Store.readShard(
                    S, [&](const kv::ShardTable &Table, ReadGuard &) {
                      KvPairSnapshot Snap;
                      kv::ShardTable::Lookup A = Table.get(kvPairKeyA(S));
                      kv::ShardTable::Lookup B = Table.get(kvPairKeyB(S));
                      Snap.A = A.Value;
                      Snap.B = B.Value;
                      Snap.BothFound = A.Found && B.Found;
                      if (Throw)
                        throw GuestBoom{};
                      return Snap;
                    });
                if (!P.BothFound || P.A + P.B != 0)
                  ++Tally.TornSnapshots;
              } else if (Kind == 1) {
                // Scan consistency: a full pass inside one validated
                // section must count exactly liveCount() entries.
                auto P = Store.readShard(
                    S, [](const kv::ShardTable &Table, ReadGuard &) {
                      kv::ShardTable::ScanStats St = Table.scan();
                      return std::pair<uint64_t, uint64_t>(St.LiveEntries,
                                                           Table.liveCount());
                    });
                if (P.first != P.second)
                  ++Tally.TornSnapshots;
              } else {
                // Own-key GET: presence and payload must match the
                // bitmap (no other thread touches this key).
                unsigned Idx = static_cast<unsigned>(
                    Rng.nextBounded(ChurnKeysPerThread));
                uint64_t Key = (Tag << 32) | Idx;
                bool Present = (Bitmap >> Idx) & 1;
                auto V = Store.get(Key);
                if (V.has_value() != Present || (Present && *V != Key))
                  ++Tally.ChurnMismatches;
              }
            } catch (GuestBoom &) {
              ++Tally.GuestThrows;
            }
            ++Tally.Exits;
            ++Tally.Reads;
          }
          uint64_t Ns = Op.elapsedNs();
          if (Ns / 1000u > Tally.MaxOpMicros)
            Tally.MaxOpMicros = Ns / 1000u;
          if (Ns >= BudgetNs)
            ++Tally.WatchdogTrips;
        }
      });
    Start.arriveAndWait();
    for (auto &W : Workers)
      W.join();
  }
  Perturber.disarm();
  R.InjectionFirings = Perturber.firings();
  R.WatchdogEnforced = C.EnforceWatchdog;

  uint64_t ExpectedLive = 2 * NumShards;
  for (std::size_t T = 0; T < Tallies.size(); ++T) {
    const WorkerTally &Tally = Tallies[T];
    R.Reads += Tally.Reads;
    R.Writes += Tally.Writes;
    R.GuestThrows += Tally.GuestThrows;
    R.ExclusionViolations += Tally.ExclusionViolations;
    R.TornSnapshots += Tally.TornSnapshots;
    R.WatchdogTrips += Tally.WatchdogTrips;
    if (Tally.MaxOpMicros > R.MaxOpMicros)
      R.MaxOpMicros = Tally.MaxOpMicros;
    if (Tally.Entries != Tally.Exits) {
      R.CountersConserved = false;
      R.Failure = "section entries != exits";
    }
    if (Tally.ChurnMismatches != 0) {
      R.CountersConserved = false;
      R.Failure = "churn op disagreed with its owner's bitmap";
    }
    ExpectedLive += static_cast<uint64_t>(std::popcount(Bitmaps[T]));
  }

  // Cross-shard conservation: every pair bump landed exactly once, B
  // mirrors A, and nobody left an exclusion token behind.
  for (unsigned S = 0; S < NumShards; ++S) {
    const kv::ShardTable &Table = Store.shardTable(S);
    kv::ShardTable::Lookup A = Table.get(kvPairKeyA(S));
    kv::ShardTable::Lookup B = Table.get(kvPairKeyB(S));
    uint64_t Bumps = Oracles[S].Bumps.load(std::memory_order_relaxed);
    if (!A.Found || !B.Found || A.Value != Bumps || B.Value != 0 - Bumps) {
      R.CountersConserved = false;
      R.Failure = "lost or duplicated pair bump (A != shard bumps)";
    }
    if (Oracles[S].Token.load(std::memory_order_relaxed) != 0) {
      R.CountersConserved = false;
      R.Failure = "exclusion token left claimed";
    }
  }

  // Whole-store conservation: live entries must equal the pairs plus the
  // churn keys each owner believes are present.
  if (Store.size() != ExpectedLive) {
    R.CountersConserved = false;
    R.Failure = "store live count != pairs + owned churn keys";
  }

  // Protocol counters: every issued op entered exactly one section, and
  // the elision ledger balances.
  ProtocolCounters After = ThreadRegistry::instance().totalCounters();
  if (After.WriteEntries - Before.WriteEntries != R.Writes ||
      After.ReadOnlyEntries - Before.ReadOnlyEntries != R.Reads) {
    R.CountersConserved = false;
    R.Failure = "entry counters != issued operations";
  }
  if (After.ElisionAttempts - Before.ElisionAttempts !=
      (After.ElisionSuccesses - Before.ElisionSuccesses) +
          (After.ElisionFailures - Before.ElisionFailures)) {
    R.CountersConserved = false;
    R.Failure = "attempts != successes + failures";
  }

  // Final state: epoch drained, every pool cell accounted for (the
  // tombstone-reuse leak oracle), every shard lock free.
  if (!Store.quiesce()) {
    R.FinalStateClean = false;
    if (R.Failure.empty())
      R.Failure = "pool cells != live entries after drain";
  }
  for (unsigned S = 0; S < NumShards; ++S)
    if (!Store.shardPolicy(S).free()) {
      R.FinalStateClean = false;
      if (R.Failure.empty())
        R.Failure = "shard lock not released/deflated after the run";
    }
  return R;
}

} // namespace

const char *solero::stress::tortureProtocolName(TortureProtocol P) {
  switch (P) {
  case TortureProtocol::Solero:
    return "SOLERO";
  case TortureProtocol::Tasuki:
    return "Lock";
  case TortureProtocol::SeqLock:
    return "SeqLock";
  case TortureProtocol::RWLock:
    return "RWLock";
  case TortureProtocol::BravoRW:
    return "BravoRW";
  case TortureProtocol::ShardedKv:
    return "ShardedKv";
  }
  return "<unknown>";
}

RuntimeConfig solero::stress::adversarialTortureRuntime() {
  RuntimeConfig C;
  C.Tiers = SpinTiers{4, 2, 1};
  C.ParkMicros = std::chrono::microseconds(25000);
  C.AsyncEventPeriod = std::chrono::microseconds(0);
  C.StartEventBus = false;
  return C;
}

std::string TortureReport::summary() const {
  std::string S = "reads=" + std::to_string(Reads) +
                  " writes=" + std::to_string(Writes) +
                  " throws=" + std::to_string(GuestThrows) +
                  " excl=" + std::to_string(ExclusionViolations) +
                  " torn=" + std::to_string(TornSnapshots) +
                  " trips=" + std::to_string(WatchdogTrips) +
                  " maxop_us=" + std::to_string(MaxOpMicros) +
                  " firings=" + std::to_string(InjectionFirings);
  if (!Failure.empty())
    S += " FAIL(" + Failure + ")";
  return S;
}

TortureReport solero::stress::runTorture(const TortureConfig &Config) {
  switch (Config.Protocol) {
  case TortureProtocol::Solero:
    return runWithAdapter<SoleroAdapter>(Config);
  case TortureProtocol::Tasuki:
    return runWithAdapter<TasukiAdapter>(Config);
  case TortureProtocol::SeqLock:
    return runWithAdapter<SeqAdapter>(Config);
  case TortureProtocol::RWLock:
    return runWithAdapter<RwAdapter>(Config);
  case TortureProtocol::BravoRW:
    return runWithAdapter<BravoAdapter>(Config);
  case TortureProtocol::ShardedKv:
    return runShardedKvTorture(Config);
  }
  return TortureReport{};
}

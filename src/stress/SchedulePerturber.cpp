//===- stress/SchedulePerturber.cpp - Seeded schedule perturbation --------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "stress/SchedulePerturber.h"

#include <thread>

#include "support/Backoff.h"
#include "support/Rng.h"

using namespace solero;
using namespace solero::stress;

namespace {

/// Per-thread decision stream. Owner identity (not just a seed) is stored
/// so a thread that outlives one perturber reseeds under the next.
struct ThreadStream {
  const void *Owner = nullptr;
  uint32_t Ordinal = 0;
  Xoshiro256StarStar Rng;
};

thread_local ThreadStream Stream;

} // namespace

SchedulePerturber::SchedulePerturber(Options O) : Opts(O) {}

SchedulePerturber::~SchedulePerturber() { disarm(); }

void SchedulePerturber::arm() {
  ArmedSelf = true;
  inject::setHook(&SchedulePerturber::trampoline, this);
}

void SchedulePerturber::disarm() {
  if (!ArmedSelf)
    return;
  ArmedSelf = false;
  inject::setHook(nullptr, nullptr);
}

void SchedulePerturber::trampoline(void *Ctx, inject::Site S) {
  if (auto *Self = static_cast<SchedulePerturber *>(Ctx))
    Self->perturb(S);
}

void SchedulePerturber::perturb(inject::Site S) {
  const uint32_t Bit = static_cast<uint32_t>(S);
  if ((Opts.SiteMask & (1u << Bit)) == 0)
    return;
  if (Stream.Owner != this) {
    Stream.Owner = this;
    Stream.Ordinal = NextOrdinal.fetch_add(1, std::memory_order_relaxed);
    // SplitMix-style mix of (seed, ordinal) so neighbouring ordinals get
    // uncorrelated streams.
    Stream.Rng = Xoshiro256StarStar(
        (Opts.Seed + 0x9e3779b97f4a7c15ULL) ^
        ((static_cast<uint64_t>(Stream.Ordinal) + 1) * 0xbf58476d1ce4e5b9ULL));
  }
  Total.fetch_add(1, std::memory_order_relaxed);
  PerSite[Bit].fetch_add(1, std::memory_order_relaxed);

  const uint32_t Roll = static_cast<uint32_t>(Stream.Rng.nextBounded(100));
  if (Roll < Opts.SleepPercent) {
    const uint64_t Max = static_cast<uint64_t>(Opts.SleepMax.count());
    std::this_thread::sleep_for(
        std::chrono::microseconds(1 + Stream.Rng.nextBounded(Max ? Max : 1)));
  } else if (Roll < Opts.SleepPercent + Opts.YieldPercent) {
    osYield();
  } else if (Roll < Opts.SleepPercent + Opts.YieldPercent + Opts.SpinPercent) {
    spinTier1(1 + static_cast<int>(Stream.Rng.nextBounded(
                      static_cast<uint64_t>(Opts.SpinMax > 0 ? Opts.SpinMax
                                                             : 1))));
  }
  // Remaining probability mass: fall straight through (keeps some windows
  // at native width so fast-path interleavings stay represented).
}

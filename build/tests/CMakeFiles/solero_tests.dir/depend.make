# Empty dependencies file for solero_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ArrayTest.cpp" "tests/CMakeFiles/solero_tests.dir/ArrayTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/ArrayTest.cpp.o.d"
  "/root/repo/tests/AssemblerTest.cpp" "tests/CMakeFiles/solero_tests.dir/AssemblerTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/AssemblerTest.cpp.o.d"
  "/root/repo/tests/ClassifierTest.cpp" "tests/CMakeFiles/solero_tests.dir/ClassifierTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/ClassifierTest.cpp.o.d"
  "/root/repo/tests/DisassemblerTest.cpp" "tests/CMakeFiles/solero_tests.dir/DisassemblerTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/DisassemblerTest.cpp.o.d"
  "/root/repo/tests/GuestMonitorTest.cpp" "tests/CMakeFiles/solero_tests.dir/GuestMonitorTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/GuestMonitorTest.cpp.o.d"
  "/root/repo/tests/InterpreterTest.cpp" "tests/CMakeFiles/solero_tests.dir/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/InterpreterTest.cpp.o.d"
  "/root/repo/tests/JavaHashMapTest.cpp" "tests/CMakeFiles/solero_tests.dir/JavaHashMapTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/JavaHashMapTest.cpp.o.d"
  "/root/repo/tests/JavaTreeMapTest.cpp" "tests/CMakeFiles/solero_tests.dir/JavaTreeMapTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/JavaTreeMapTest.cpp.o.d"
  "/root/repo/tests/LockWordTest.cpp" "tests/CMakeFiles/solero_tests.dir/LockWordTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/LockWordTest.cpp.o.d"
  "/root/repo/tests/MemoryTest.cpp" "tests/CMakeFiles/solero_tests.dir/MemoryTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/MemoryTest.cpp.o.d"
  "/root/repo/tests/OsMonitorTest.cpp" "tests/CMakeFiles/solero_tests.dir/OsMonitorTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/OsMonitorTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/solero_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/ReadWriteLockTest.cpp" "tests/CMakeFiles/solero_tests.dir/ReadWriteLockTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/ReadWriteLockTest.cpp.o.d"
  "/root/repo/tests/RuntimeTest.cpp" "tests/CMakeFiles/solero_tests.dir/RuntimeTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/RuntimeTest.cpp.o.d"
  "/root/repo/tests/SeqLockTest.cpp" "tests/CMakeFiles/solero_tests.dir/SeqLockTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/SeqLockTest.cpp.o.d"
  "/root/repo/tests/SoleroLockTest.cpp" "tests/CMakeFiles/solero_tests.dir/SoleroLockTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/SoleroLockTest.cpp.o.d"
  "/root/repo/tests/StressTest.cpp" "tests/CMakeFiles/solero_tests.dir/StressTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/StressTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/solero_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/SynchronizedMapTest.cpp" "tests/CMakeFiles/solero_tests.dir/SynchronizedMapTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/SynchronizedMapTest.cpp.o.d"
  "/root/repo/tests/TasukiLockTest.cpp" "tests/CMakeFiles/solero_tests.dir/TasukiLockTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/TasukiLockTest.cpp.o.d"
  "/root/repo/tests/VerifierTest.cpp" "tests/CMakeFiles/solero_tests.dir/VerifierTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/VerifierTest.cpp.o.d"
  "/root/repo/tests/WaitNotifyTest.cpp" "tests/CMakeFiles/solero_tests.dir/WaitNotifyTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/WaitNotifyTest.cpp.o.d"
  "/root/repo/tests/WorkloadTest.cpp" "tests/CMakeFiles/solero_tests.dir/WorkloadTest.cpp.o" "gcc" "tests/CMakeFiles/solero_tests.dir/WorkloadTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jit/CMakeFiles/solero_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/solero_core.dir/DependInfo.cmake"
  "/root/repo/build/src/locks/CMakeFiles/solero_locks.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/solero_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/solero_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/solero_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for table1_lock_stats.
# This may be replaced when dependencies are built.

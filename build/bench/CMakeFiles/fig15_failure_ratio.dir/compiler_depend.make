# Empty compiler generated dependencies file for fig15_failure_ratio.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig15_failure_ratio.dir/fig15_failure_ratio.cpp.o"
  "CMakeFiles/fig15_failure_ratio.dir/fig15_failure_ratio.cpp.o.d"
  "fig15_failure_ratio"
  "fig15_failure_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_failure_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

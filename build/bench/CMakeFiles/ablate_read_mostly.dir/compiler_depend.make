# Empty compiler generated dependencies file for ablate_read_mostly.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablate_read_mostly.dir/ablate_read_mostly.cpp.o"
  "CMakeFiles/ablate_read_mostly.dir/ablate_read_mostly.cpp.o.d"
  "ablate_read_mostly"
  "ablate_read_mostly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_read_mostly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

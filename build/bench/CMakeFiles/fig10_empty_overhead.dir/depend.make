# Empty dependencies file for fig10_empty_overhead.
# This may be replaced when dependencies are built.

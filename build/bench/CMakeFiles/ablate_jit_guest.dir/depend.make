# Empty dependencies file for ablate_jit_guest.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablate_jit_guest.dir/ablate_jit_guest.cpp.o"
  "CMakeFiles/ablate_jit_guest.dir/ablate_jit_guest.cpp.o.d"
  "ablate_jit_guest"
  "ablate_jit_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_jit_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig12_hashmap_scaling.
# This may be replaced when dependencies are built.

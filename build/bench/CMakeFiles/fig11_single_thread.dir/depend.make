# Empty dependencies file for fig11_single_thread.
# This may be replaced when dependencies are built.

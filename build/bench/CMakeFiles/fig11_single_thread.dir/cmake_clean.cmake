file(REMOVE_RECURSE
  "CMakeFiles/fig11_single_thread.dir/fig11_single_thread.cpp.o"
  "CMakeFiles/fig11_single_thread.dir/fig11_single_thread.cpp.o.d"
  "fig11_single_thread"
  "fig11_single_thread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_single_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

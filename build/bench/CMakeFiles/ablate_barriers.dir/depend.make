# Empty dependencies file for ablate_barriers.
# This may be replaced when dependencies are built.

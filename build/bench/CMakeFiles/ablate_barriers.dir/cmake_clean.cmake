file(REMOVE_RECURSE
  "CMakeFiles/ablate_barriers.dir/ablate_barriers.cpp.o"
  "CMakeFiles/ablate_barriers.dir/ablate_barriers.cpp.o.d"
  "ablate_barriers"
  "ablate_barriers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_barriers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

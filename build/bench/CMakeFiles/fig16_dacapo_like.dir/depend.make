# Empty dependencies file for fig16_dacapo_like.
# This may be replaced when dependencies are built.

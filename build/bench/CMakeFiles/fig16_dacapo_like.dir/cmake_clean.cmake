file(REMOVE_RECURSE
  "CMakeFiles/fig16_dacapo_like.dir/fig16_dacapo_like.cpp.o"
  "CMakeFiles/fig16_dacapo_like.dir/fig16_dacapo_like.cpp.o.d"
  "fig16_dacapo_like"
  "fig16_dacapo_like.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_dacapo_like.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

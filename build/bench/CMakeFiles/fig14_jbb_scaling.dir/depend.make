# Empty dependencies file for fig14_jbb_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig14_jbb_scaling.dir/fig14_jbb_scaling.cpp.o"
  "CMakeFiles/fig14_jbb_scaling.dir/fig14_jbb_scaling.cpp.o.d"
  "fig14_jbb_scaling"
  "fig14_jbb_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_jbb_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/jit_elision.dir/jit_elision.cpp.o"
  "CMakeFiles/jit_elision.dir/jit_elision.cpp.o.d"
  "jit_elision"
  "jit_elision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_elision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for jit_elision.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/concurrent_cache.dir/concurrent_cache.cpp.o"
  "CMakeFiles/concurrent_cache.dir/concurrent_cache.cpp.o.d"
  "concurrent_cache"
  "concurrent_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for solero_runtime.
# This may be replaced when dependencies are built.

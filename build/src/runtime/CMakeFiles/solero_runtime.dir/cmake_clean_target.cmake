file(REMOVE_RECURSE
  "libsolero_runtime.a"
)

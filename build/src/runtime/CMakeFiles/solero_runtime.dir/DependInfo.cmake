
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/AsyncEventBus.cpp" "src/runtime/CMakeFiles/solero_runtime.dir/AsyncEventBus.cpp.o" "gcc" "src/runtime/CMakeFiles/solero_runtime.dir/AsyncEventBus.cpp.o.d"
  "/root/repo/src/runtime/MonitorTable.cpp" "src/runtime/CMakeFiles/solero_runtime.dir/MonitorTable.cpp.o" "gcc" "src/runtime/CMakeFiles/solero_runtime.dir/MonitorTable.cpp.o.d"
  "/root/repo/src/runtime/OsMonitor.cpp" "src/runtime/CMakeFiles/solero_runtime.dir/OsMonitor.cpp.o" "gcc" "src/runtime/CMakeFiles/solero_runtime.dir/OsMonitor.cpp.o.d"
  "/root/repo/src/runtime/ThreadRegistry.cpp" "src/runtime/CMakeFiles/solero_runtime.dir/ThreadRegistry.cpp.o" "gcc" "src/runtime/CMakeFiles/solero_runtime.dir/ThreadRegistry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/solero_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

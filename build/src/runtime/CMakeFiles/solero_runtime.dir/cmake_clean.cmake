file(REMOVE_RECURSE
  "CMakeFiles/solero_runtime.dir/AsyncEventBus.cpp.o"
  "CMakeFiles/solero_runtime.dir/AsyncEventBus.cpp.o.d"
  "CMakeFiles/solero_runtime.dir/MonitorTable.cpp.o"
  "CMakeFiles/solero_runtime.dir/MonitorTable.cpp.o.d"
  "CMakeFiles/solero_runtime.dir/OsMonitor.cpp.o"
  "CMakeFiles/solero_runtime.dir/OsMonitor.cpp.o.d"
  "CMakeFiles/solero_runtime.dir/ThreadRegistry.cpp.o"
  "CMakeFiles/solero_runtime.dir/ThreadRegistry.cpp.o.d"
  "libsolero_runtime.a"
  "libsolero_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solero_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/solero_core.dir/SoleroLock.cpp.o"
  "CMakeFiles/solero_core.dir/SoleroLock.cpp.o.d"
  "libsolero_core.a"
  "libsolero_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solero_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

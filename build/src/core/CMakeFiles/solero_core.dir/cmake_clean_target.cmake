file(REMOVE_RECURSE
  "libsolero_core.a"
)

# Empty compiler generated dependencies file for solero_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsolero_jit.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/solero_jit.dir/Assembler.cpp.o"
  "CMakeFiles/solero_jit.dir/Assembler.cpp.o.d"
  "CMakeFiles/solero_jit.dir/Disassembler.cpp.o"
  "CMakeFiles/solero_jit.dir/Disassembler.cpp.o.d"
  "CMakeFiles/solero_jit.dir/Interpreter.cpp.o"
  "CMakeFiles/solero_jit.dir/Interpreter.cpp.o.d"
  "CMakeFiles/solero_jit.dir/Opcode.cpp.o"
  "CMakeFiles/solero_jit.dir/Opcode.cpp.o.d"
  "CMakeFiles/solero_jit.dir/ReadOnlyClassifier.cpp.o"
  "CMakeFiles/solero_jit.dir/ReadOnlyClassifier.cpp.o.d"
  "CMakeFiles/solero_jit.dir/Verifier.cpp.o"
  "CMakeFiles/solero_jit.dir/Verifier.cpp.o.d"
  "libsolero_jit.a"
  "libsolero_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solero_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for solero_jit.
# This may be replaced when dependencies are built.

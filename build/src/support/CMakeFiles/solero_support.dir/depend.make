# Empty dependencies file for solero_support.
# This may be replaced when dependencies are built.

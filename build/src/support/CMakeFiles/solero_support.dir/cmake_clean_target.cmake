file(REMOVE_RECURSE
  "libsolero_support.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/solero_support.dir/CliParser.cpp.o"
  "CMakeFiles/solero_support.dir/CliParser.cpp.o.d"
  "CMakeFiles/solero_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/solero_support.dir/TablePrinter.cpp.o.d"
  "libsolero_support.a"
  "libsolero_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solero_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for solero_locks.
# This may be replaced when dependencies are built.

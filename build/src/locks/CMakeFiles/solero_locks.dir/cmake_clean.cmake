file(REMOVE_RECURSE
  "CMakeFiles/solero_locks.dir/ReadWriteLock.cpp.o"
  "CMakeFiles/solero_locks.dir/ReadWriteLock.cpp.o.d"
  "CMakeFiles/solero_locks.dir/TasukiLock.cpp.o"
  "CMakeFiles/solero_locks.dir/TasukiLock.cpp.o.d"
  "libsolero_locks.a"
  "libsolero_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solero_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

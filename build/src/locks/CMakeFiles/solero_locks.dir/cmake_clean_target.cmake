file(REMOVE_RECURSE
  "libsolero_locks.a"
)

# Empty compiler generated dependencies file for solero_mm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/solero_mm.dir/EpochReclaimer.cpp.o"
  "CMakeFiles/solero_mm.dir/EpochReclaimer.cpp.o.d"
  "libsolero_mm.a"
  "libsolero_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solero_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsolero_mm.a"
)

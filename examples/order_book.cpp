//===- examples/order_book.cpp - TreeMap + read-mostly upgrade -------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// A price-ordered order book on JavaTreeMap. Market-data queries (best
/// bid, depth probes) are read-only and elide; order placement writes;
/// and the "fill if marketable" operation uses the Section 5 read-mostly
/// extension: it reads the book speculatively and upgrades to the lock
/// with a single CAS only when it actually needs to trade.
///
///   build/examples/order_book [--orders=20000] [--threads=4]
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "collections/JavaTreeMap.h"
#include "core/SoleroLock.h"
#include "support/CliParser.h"
#include "support/Rng.h"

using namespace solero;

namespace {

/// Price-keyed resting quantity. Protected by one SOLERO lock.
class OrderBook {
public:
  explicit OrderBook(RuntimeContext &Ctx) : Lock(Ctx) {}

  void placeOrder(int64_t Price, int64_t Qty) {
    Lock.synchronizedWrite(Monitor, [&] {
      auto Cur = Bids.get(Price);
      Bids.put(Price, (Cur ? *Cur : 0) + Qty);
    });
  }

  /// Read-only: elided market-data query.
  std::optional<int64_t> bestBid() {
    auto R = Lock.synchronizedReadOnly(Monitor, [&](ReadGuard &) {
      auto K = Bids.firstKey();
      return K ? *K : -1;
    });
    return R < 0 ? std::nullopt : std::optional<int64_t>(R);
  }

  /// Read-only: total resting quantity at a price level.
  int64_t depthAt(int64_t Price) {
    return Lock.synchronizedReadOnly(Monitor, [&](ReadGuard &) {
      auto Q = Bids.get(Price);
      return Q ? *Q : 0;
    });
  }

  /// Read-mostly: probe the book speculatively; only if there is quantity
  /// to take does the section upgrade to the lock and mutate (Figure 17).
  int64_t fillAtOrBelow(int64_t Price, int64_t Want) {
    return Lock.synchronizedReadMostly(Monitor, [&](WriteIntent &W) {
      auto Q = Bids.get(Price);
      if (!Q || *Q == 0)
        return static_cast<int64_t>(0); // nothing to do: stays read-only
      W.acquireForWrite();              // one CAS validates + locks
      int64_t Take = *Q < Want ? *Q : Want;
      if (*Q == Take)
        Bids.remove(Price);
      else
        Bids.put(Price, *Q - Take);
      return Take;
    });
  }

  std::size_t levels() {
    return Lock.synchronizedReadOnly(Monitor,
                                     [&](ReadGuard &) { return Bids.size(); });
  }

  bool invariantsHold() {
    return Lock.synchronizedReadOnly(Monitor, [&](ReadGuard &) {
      return Bids.checkRedBlackInvariants() > 0;
    });
  }

private:
  SoleroLock Lock;
  ObjectHeader Monitor;
  JavaTreeMap<int64_t, int64_t> Bids;
};

} // namespace

int main(int Argc, char **Argv) {
  CliParser Args(Argc, Argv);
  const int Threads = static_cast<int>(Args.getInt("threads", 4));
  const int Orders = static_cast<int>(Args.getInt("orders", 20000));

  RuntimeContext Ctx;
  OrderBook Book(Ctx);
  std::atomic<int64_t> Placed{0}, Filled{0}, Queries{0};

  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      Xoshiro256StarStar Rng(1234 + static_cast<uint64_t>(T));
      for (int I = 0; I < Orders; ++I) {
        int64_t Price = 90 + static_cast<int64_t>(Rng.nextBounded(20));
        switch (Rng.nextBounded(10)) {
        case 0: { // 10%: place liquidity
          int64_t Qty = 1 + static_cast<int64_t>(Rng.nextBounded(100));
          Book.placeOrder(Price, Qty);
          Placed.fetch_add(Qty);
          break;
        }
        case 1: { // 10%: try to trade (read-mostly)
          Filled.fetch_add(Book.fillAtOrBelow(Price, 50));
          break;
        }
        default: // 80%: market data (read-only, elided)
          (void)Book.bestBid();
          (void)Book.depthAt(Price);
          Queries.fetch_add(1);
        }
      }
    });
  for (auto &T : Ts)
    T.join();

  int64_t Resting = 0;
  // Sum what is left on the book.
  for (int64_t P = 90; P < 110; ++P)
    Resting += Book.depthAt(P);

  ProtocolCounters C = ThreadRegistry::instance().totalCounters();
  std::printf("orders placed: %lld qty, filled: %lld, resting: %lld, "
              "levels: %zu\n",
              static_cast<long long>(Placed.load()),
              static_cast<long long>(Filled.load()),
              static_cast<long long>(Resting), Book.levels());
  std::printf("market-data queries: %lld, elision successes: %llu, "
              "failures: %llu\n",
              static_cast<long long>(Queries.load()),
              static_cast<unsigned long long>(C.ElisionSuccesses),
              static_cast<unsigned long long>(C.ElisionFailures));
  bool Balanced = Placed.load() == Filled.load() + Resting;
  std::printf("conservation (placed == filled + resting): %s\n",
              Balanced ? "OK" : "VIOLATED");
  std::printf("red-black invariants: %s\n",
              Book.invariantsHold() ? "OK" : "VIOLATED");
  return Balanced && Book.invariantsHold() ? 0 : 1;
}

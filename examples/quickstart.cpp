//===- examples/quickstart.cpp - SOLERO in five minutes --------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// The smallest complete SOLERO program: one shared record protected by a
/// SOLERO lock. Readers run speculatively and never write the lock word;
/// the writer acquires it with one CAS and publishes a counter increment.
///
///   build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <thread>
#include <vector>

#include "core/SoleroLock.h"
#include "runtime/SharedField.h"

using namespace solero;

namespace {

/// A shared record: like every Java object, it carries a lock word; the
/// two data fields are speculation-safe SharedFields.
struct Account {
  ObjectHeader Monitor;
  SharedField<int64_t> Balance{1000};
  SharedField<int64_t> Version{0};
};

} // namespace

int main() {
  RuntimeContext Runtime; // monitor table + async validation events
  SoleroLock Lock(Runtime);
  Account Acct;

  // A writer moves money; readers check the invariant "version tracks
  // every balance change" — a two-field consistency that a torn read
  // would break.
  std::thread Writer([&] {
    for (int I = 1; I <= 100000; ++I)
      Lock.synchronizedWrite(Acct.Monitor, [&] {
        Acct.Balance.write(1000 + I);
        Acct.Version.write(I);
      });
  });

  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&] {
      for (int I = 0; I < 100000; ++I) {
        auto Snapshot = Lock.synchronizedReadOnly(
            Acct.Monitor, [&](ReadGuard &) {
              // Speculative: no atomic RMW, no lock-word store.
              return std::pair<int64_t, int64_t>(Acct.Balance.read(),
                                                 Acct.Version.read());
            });
        if (Snapshot.first != 1000 + Snapshot.second) {
          std::fprintf(stderr, "INCONSISTENT SNAPSHOT: %lld vs %lld\n",
                       static_cast<long long>(Snapshot.first),
                       static_cast<long long>(Snapshot.second));
          return;
        }
      }
    });

  Writer.join();
  for (auto &T : Readers)
    T.join();

  ProtocolCounters C = ThreadRegistry::instance().totalCounters();
  std::printf("final balance: %lld (version %lld)\n",
              static_cast<long long>(Acct.Balance.read()),
              static_cast<long long>(Acct.Version.read()));
  std::printf("read-only sections: %llu, elided successfully: %llu, "
              "failed+retried: %llu\n",
              static_cast<unsigned long long>(C.ReadOnlyEntries),
              static_cast<unsigned long long>(C.ElisionSuccesses),
              static_cast<unsigned long long>(C.ElisionFailures));
  std::printf("every reader snapshot was consistent — reads were validated "
              "against the lock word,\nnot locked.\n");
  return 0;
}

//===- examples/jit_elision.cpp - The JIT view of SOLERO -------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Shows the Section 3.2 pipeline end to end: a small guest "Java"
/// program in CSIR bytecode, the classifier's verdict on each
/// synchronized block (with reasons), the @SoleroReadOnly annotation
/// override, and profile-guided read-mostly reclassification (Section 5) —
/// then runs the program and prints the elision statistics.
///
///   build/examples/jit_elision
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "jit/Disassembler.h"
#include "jit/Interpreter.h"
#include "jit/MethodBuilder.h"

using namespace solero;
using namespace solero::jit;

namespace {

Module buildGuestProgram() {
  Module M;
  M.NumStatics = 2;

  // int getConfig(obj)          — synchronized read: elidable.
  {
    MethodBuilder B("getConfig", 1, 2);
    B.load(0).syncEnter();
    B.load(0).getField(0).store(1);
    B.syncExit();
    B.load(1).ret();
    M.addMethod(B.take());
  }
  // int updateConfig(obj, v)    — synchronized write: not elidable.
  {
    MethodBuilder B("updateConfig", 2, 2);
    B.load(0).syncEnter();
    B.load(0).load(1).putField(0);
    B.syncExit();
    B.load(1).ret();
    M.addMethod(B.take());
  }
  // int helper(v)               — pure helper, provably read-only.
  {
    MethodBuilder B("scaleBy3", 1, 1);
    B.load(0).constant(3).mul().ret();
    M.addMethod(B.take());
  }
  // int getScaled(obj)          — invokes the pure helper inside the
  //                               block: still elidable (inter-procedural).
  {
    MethodBuilder B("getScaled", 1, 2);
    B.load(0).syncEnter();
    B.load(0).getField(0).invoke(M.methodId("scaleBy3")).store(1);
    B.syncExit();
    B.load(1).ret();
    M.addMethod(B.take());
  }
  // int audit(v)                — writes a static: impure.
  {
    MethodBuilder B("audit", 1, 1);
    B.load(0).putStatic(0).load(0).ret();
    M.addMethod(B.take());
  }
  // int getAudited(obj)         — calls the impure helper: the analysis
  //                               must refuse... but the method carries
  //                               @SoleroReadOnly, so it elides anyway
  //                               (the paper's annotation use case).
  {
    MethodBuilder B("getAuditedAnnotated", 1, 2);
    B.annotateReadOnly();
    B.load(0).syncEnter();
    B.load(0).getField(0).invoke(M.methodId("audit")).store(1);
    B.syncExit();
    B.load(1).ret();
    M.addMethod(B.take());
  }
  // int refreshIfStale(obj, stale) — a write behind a rarely-true flag:
  //                               Writing statically, ReadMostly once a
  //                               profile shows the write is cold.
  {
    MethodBuilder B("refreshIfStale", 2, 2);
    auto Fresh = B.newLabel();
    B.load(0).syncEnter();
    B.load(1).jumpIfZero(Fresh);
    B.load(0).constant(999).putField(1);
    B.bind(Fresh);
    B.load(0).getField(0).pop();
    B.syncExit();
    B.constant(0).ret();
    M.addMethod(B.take());
  }
  return M;
}

} // namespace

int main() {
  RuntimeContext Ctx;
  Module M = buildGuestProgram();

  Interpreter::Options Opts;
  Opts.CollectProfile = true;
  Interpreter I(Ctx, std::move(M), Opts);

  std::printf("=== Static classification (the JIT's Section 3.2 pass) "
              "===\n\n%s\n",
              disassembleModule(I.module(), &I.classification()).c_str());

  GuestObject *Config = I.allocateObject();
  Config->F[0].write(17);

  std::printf("=== Execution ===\n");
  std::printf("getConfig       -> %lld\n",
              static_cast<long long>(
                  I.invoke("getConfig", {Value::ofRef(Config)}).asInt()));
  std::printf("getScaled       -> %lld\n",
              static_cast<long long>(
                  I.invoke("getScaled", {Value::ofRef(Config)}).asInt()));
  std::printf("updateConfig 21 -> %lld\n",
              static_cast<long long>(
                  I.invoke("updateConfig",
                           {Value::ofRef(Config), Value::ofInt(21)})
                      .asInt()));
  std::printf("getAuditedAnnotated -> %lld\n",
              static_cast<long long>(
                  I.invoke("getAuditedAnnotated", {Value::ofRef(Config)})
                      .asInt()));

  // Profile refreshIfStale: 500 fresh calls, 1 stale.
  for (int N = 0; N < 500; ++N)
    I.invoke("refreshIfStale", {Value::ofRef(Config), Value::ofInt(0)});
  I.invoke("refreshIfStale", {Value::ofRef(Config), Value::ofInt(1)});

  std::printf("\n=== Profile-guided reclassification (Section 5) ===\n");
  uint32_t RId = I.module().methodId("refreshIfStale");
  std::printf("before: %s\n",
              regionKindName(I.classification().regions(RId)[0].Kind));
  I.reclassifyWithProfile();
  std::printf("after:  %s (%s)\n",
              regionKindName(I.classification().regions(RId)[0].Kind),
              regionReason(I.module(),
                           I.classification().regions(RId)[0]).c_str());

  ProtocolCounters C = ThreadRegistry::instance().totalCounters();
  std::printf("\nelision attempts: %llu, successes: %llu\n",
              static_cast<unsigned long long>(C.ElisionAttempts),
              static_cast<unsigned long long>(C.ElisionSuccesses));
  return 0;
}

//===- examples/concurrent_cache.cpp - Read-mostly cache -------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// The paper's motivating scenario: a shared lookup table with read-mostly
/// access (Section 1). A session cache is hit by many readers and the
/// occasional insert/expire. Runs the same traffic under all three lock
/// implementations and prints the throughput and protocol counters so the
/// elision effect is visible.
///
///   build/examples/concurrent_cache [--threads=4] [--seconds=1]
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <string>

#include "collections/JavaHashMap.h"
#include "collections/SynchronizedMap.h"
#include "support/CliParser.h"
#include "support/Rng.h"
#include "support/TablePrinter.h"
#include "workloads/Harness.h"
#include "workloads/LockPolicies.h"

using namespace solero;

namespace {

using Cache = JavaHashMap<int64_t, int64_t>;

template <typename Policy>
void runScenario(RuntimeContext &Ctx, const char *Name, int Threads,
                 std::chrono::milliseconds Window, TablePrinter &Out) {
  SynchronizedMap<Cache, Policy> Sessions(Ctx);
  for (int64_t Id = 0; Id < 4096; ++Id)
    Sessions.put(Id, Id * 7919); // fake session tokens

  HarnessOptions Opts;
  Opts.Window = Window;
  Opts.Trials = 2;
  std::vector<CacheLinePadded<Xoshiro256StarStar>> Rngs(
      static_cast<std::size_t>(Threads));
  for (int T = 0; T < Threads; ++T)
    *Rngs[static_cast<std::size_t>(T)] =
        Xoshiro256StarStar(42 + static_cast<uint64_t>(T));

  BenchResult R = runThroughput(Threads, Opts, [&](int T) {
    Xoshiro256StarStar &Rng = *Rngs[static_cast<std::size_t>(T)];
    int64_t Id = static_cast<int64_t>(Rng.nextBounded(4096));
    if (Rng.nextBounded(100) < 2) {
      // 2%: session refresh (write).
      Sessions.put(Id, static_cast<int64_t>(Rng.next() >> 1));
    } else {
      // 98%: token validation (read-only, elidable).
      (void)Sessions.get(Id);
    }
  });

  Out.addRow({Name, TablePrinter::num(R.OpsPerSec / 1e6, 2),
              TablePrinter::num(R.rmwPerOp(), 2),
              TablePrinter::num(R.storesPerOp(), 2),
              TablePrinter::percent(R.failureRatio(), 2)});
}

} // namespace

int main(int Argc, char **Argv) {
  CliParser Args(Argc, Argv);
  int Threads = static_cast<int>(Args.getInt("threads", 4));
  auto Window = std::chrono::milliseconds(
      static_cast<int>(Args.getInt("seconds", 1) * 1000) / 4);
  RuntimeContext Ctx;

  std::printf("Session cache, 98%% lookups / 2%% refreshes, %d threads\n\n",
              Threads);
  TablePrinter Out({"lock impl", "Mops/s", "atomic rmw/op", "lock stores/op",
                    "elision fail%"});
  runScenario<TasukiPolicy>(Ctx, "Lock (mutual exclusion)", Threads, Window,
                            Out);
  runScenario<RwPolicy>(Ctx, "RWLock", Threads, Window, Out);
  runScenario<SoleroPolicy>(Ctx, "SOLERO", Threads, Window, Out);
  Out.print();
  std::printf("\nSOLERO lookups neither CAS nor store the lock word — the "
              "rmw/op column is the cache\ncoherence traffic a 16-way "
              "machine would feel.\n");
  return 0;
}

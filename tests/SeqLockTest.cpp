//===- tests/SeqLockTest.cpp - Plain sequential lock tests ----------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "locks/SeqLock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace solero;

TEST(SeqLock, CounterParity) {
  SeqLock L;
  EXPECT_EQ(L.value() & 1, 0u);
  L.writeLock();
  EXPECT_EQ(L.value() & 1, 1u); // odd while held (Figure 4)
  L.writeUnlock();
  EXPECT_EQ(L.value() & 1, 0u);
  EXPECT_EQ(L.value(), 2u); // two increments per writing section
}

TEST(SeqLock, ReadSucceedsWhenQuiescent) {
  SeqLock L;
  uint64_t V = L.readBegin();
  EXPECT_FALSE(L.readRetry(V));
}

TEST(SeqLock, ReadRetriesAfterWrite) {
  SeqLock L;
  uint64_t V = L.readBegin();
  L.writeProtected([] {});
  EXPECT_TRUE(L.readRetry(V));
}

TEST(SeqLock, ReadProtectedRetriesUntilConsistent) {
  SeqLock L;
  int Calls = 0;
  int Result = L.readProtected([&] {
    if (Calls++ == 0)
      L.writeProtected([] {}); // interference on the first attempt only
    return 42;
  });
  EXPECT_EQ(Result, 42);
  EXPECT_EQ(Calls, 2);
}

TEST(SeqLock, WritersAreMutuallyExclusive) {
  SeqLock L;
  constexpr int Threads = 4, Iters = 20000;
  // Two plain (non-atomic would be UB; use relaxed atomics) fields that a
  // consistent reader must observe as equal.
  std::atomic<uint64_t> A{0}, B{0};
  std::vector<std::thread> Ts;
  std::atomic<bool> Mismatch{false};
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      if (T == 0) {
        for (int I = 0; I < Iters; ++I)
          L.writeProtected([&] {
            A.store(A.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
            B.store(B.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
          });
      } else {
        for (int I = 0; I < Iters; ++I) {
          auto Pair = L.readProtected([&] {
            return std::pair<uint64_t, uint64_t>(
                A.load(std::memory_order_relaxed),
                B.load(std::memory_order_relaxed));
          });
          if (Pair.first != Pair.second)
            Mismatch.store(true);
        }
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_FALSE(Mismatch.load());
  EXPECT_EQ(A.load(), static_cast<uint64_t>(Iters));
}

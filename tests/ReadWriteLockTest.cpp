//===- tests/ReadWriteLockTest.cpp - RW lock tests ------------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "locks/ReadWriteLock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace solero;

namespace {

RuntimeConfig quietConfig() {
  RuntimeConfig C;
  C.StartEventBus = false;
  return C;
}

class ReadWriteLockTest : public ::testing::Test {
protected:
  ReadWriteLockTest() : Ctx(quietConfig()), L(Ctx) {}
  RuntimeContext Ctx;
  ReadWriteLock L;
};

} // namespace

TEST_F(ReadWriteLockTest, MultipleReadersShareTheLock) {
  L.readLock();
  L.readLock(); // reentrant
  EXPECT_EQ(L.readerCount(), 2u);
  std::thread Other([&] {
    L.readLock();
    EXPECT_EQ(L.readerCount(), 3u);
    L.readUnlock();
  });
  Other.join();
  L.readUnlock();
  L.readUnlock();
  EXPECT_EQ(L.readerCount(), 0u);
}

TEST_F(ReadWriteLockTest, WriterIsExclusive) {
  L.writeLock();
  EXPECT_TRUE(L.writeHeldByCurrentThread());
  std::atomic<int> Stage{0};
  std::thread Reader([&] {
    Stage.store(1);
    L.readLock();
    Stage.store(2);
    L.readUnlock();
  });
  while (Stage.load() != 1)
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(Stage.load(), 1); // reader still excluded
  L.writeUnlock();
  Reader.join();
  EXPECT_EQ(Stage.load(), 2);
}

TEST_F(ReadWriteLockTest, WriterWaitsForReaders) {
  L.readLock();
  std::atomic<int> Stage{0};
  std::thread Writer([&] {
    Stage.store(1);
    L.writeLock();
    Stage.store(2);
    L.writeUnlock();
  });
  while (Stage.load() != 1)
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(Stage.load(), 1);
  L.readUnlock();
  Writer.join();
  EXPECT_EQ(Stage.load(), 2);
}

TEST_F(ReadWriteLockTest, WriteLockIsReentrant) {
  L.writeLock();
  L.writeLock();
  L.writeLock();
  EXPECT_TRUE(L.writeHeldByCurrentThread());
  L.writeUnlock();
  L.writeUnlock();
  EXPECT_TRUE(L.writeHeldByCurrentThread());
  L.writeUnlock();
  EXPECT_FALSE(L.writeHeldByCurrentThread());
}

TEST_F(ReadWriteLockTest, DowngradeWriteToRead) {
  L.writeLock();
  L.readLock(); // allowed while holding write
  L.writeUnlock();
  // Still a reader: writers must wait.
  EXPECT_EQ(L.readerCount(), 1u);
  std::atomic<bool> Acquired{false};
  std::thread Writer([&] {
    L.writeLock();
    Acquired.store(true);
    L.writeUnlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(Acquired.load());
  L.readUnlock();
  Writer.join();
  EXPECT_TRUE(Acquired.load());
}

TEST_F(ReadWriteLockTest, MutualExclusionMixedLoad) {
  constexpr int Threads = 4, Iters = 3000;
  int64_t Data = 0; // protected by write mode
  std::atomic<bool> TornRead{false};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      for (int I = 0; I < Iters; ++I) {
        if (T == 0) {
          L.synchronizedWrite([&] { ++Data; });
        } else {
          int64_t Seen = L.synchronizedReadOnly(
              [&](ReadGuard &) { return Data; });
          if (Seen < 0 || Seen > Iters)
            TornRead.store(true);
        }
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Data, Iters);
  EXPECT_FALSE(TornRead.load());
  EXPECT_EQ(L.readerCount(), 0u);
}

TEST_F(ReadWriteLockTest, SynchronizedHelpersReleaseOnException) {
  EXPECT_THROW(
      L.synchronizedWrite([&]() -> int { throw std::runtime_error("x"); }),
      std::runtime_error);
  EXPECT_FALSE(L.writeHeldByCurrentThread());
  EXPECT_THROW(L.synchronizedReadOnly(
                   [&](ReadGuard &) -> int { throw std::runtime_error("y"); }),
               std::runtime_error);
  EXPECT_EQ(L.readerCount(), 0u);
}

TEST_F(ReadWriteLockTest, ReaderCountSaturationAborts) {
  // The reader count lives in 16 bits of the packed word; hold 2^16-1 and
  // the next acquisition must abort with a diagnostic instead of silently
  // overflowing into the writer-recursion bits (which would corrupt the
  // writer side and break mutual exclusion).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  constexpr uint32_t Max = 0xffff;
  for (uint32_t I = 0; I < Max; ++I)
    L.readLock();
  EXPECT_EQ(L.readerCount(), Max);
  EXPECT_DEATH(L.readLock(), "reader count saturated");
  for (uint32_t I = 0; I < Max; ++I)
    L.readUnlock();
  EXPECT_EQ(L.readerCount(), 0u);
}

TEST_F(ReadWriteLockTest, ReadAcquisitionCountsAtomicRmws) {
  // The cost model the paper cites: every read acquisition performs an
  // atomic RMW (unlike SOLERO's elided readers).
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();
  for (int I = 0; I < 100; ++I)
    L.synchronizedReadOnly([](ReadGuard &) { return 0; });
  ProtocolCounters After = ThreadRegistry::instance().totalCounters();
  EXPECT_GE(After.AtomicRmws - Before.AtomicRmws, 200u); // lock + unlock
}

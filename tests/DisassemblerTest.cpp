//===- tests/DisassemblerTest.cpp - CSIR printing tests -------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/Disassembler.h"

#include "jit/MethodBuilder.h"

#include <gtest/gtest.h>

using namespace solero;
using namespace solero::jit;

TEST(Disassembler, PrintsOpcodesAndOperands) {
  MethodBuilder B("sample", 1, 2);
  B.load(0).getField(3).store(1);
  B.load(1).constant(10).add().ret();
  Module M;
  M.addMethod(B.take());
  std::string S = disassemble(M, 0);
  EXPECT_NE(S.find("method sample(params=1, locals=2)"), std::string::npos);
  EXPECT_NE(S.find("load 0"), std::string::npos);
  EXPECT_NE(S.find("getfield 3"), std::string::npos);
  EXPECT_NE(S.find("const 10"), std::string::npos);
  EXPECT_NE(S.find("return"), std::string::npos);
}

TEST(Disassembler, PrintsInvokeTargetsByName) {
  Module M;
  MethodBuilder Callee("helper", 0, 0);
  Callee.constant(0).ret();
  M.addMethod(Callee.take());
  MethodBuilder Caller("main", 0, 0);
  Caller.invoke(0).ret();
  M.addMethod(Caller.take());
  std::string S = disassemble(M, 1);
  EXPECT_NE(S.find("invoke helper"), std::string::npos);
}

TEST(Disassembler, AnnotatesRegionClassifications) {
  MethodBuilder B("get", 1, 2);
  B.load(0).syncEnter();
  B.load(0).getField(0).store(1);
  B.syncExit();
  B.load(1).ret();
  Module M;
  M.addMethod(B.take());
  ClassifiedModule C = classifyModule(M);
  std::string S = disassemble(M, 0, &C);
  EXPECT_NE(S.find("read-only"), std::string::npos);
  EXPECT_NE(S.find("no writes or side effects"), std::string::npos);
}

TEST(Disassembler, MarksAnnotatedMethods) {
  MethodBuilder B("tagged", 1, 1);
  B.annotateReadOnly();
  B.load(0).syncEnter().syncExit().constant(0).ret();
  Module M;
  M.addMethod(B.take());
  std::string S = disassembleModule(M);
  EXPECT_NE(S.find("@SoleroReadOnly"), std::string::npos);
}

//===- tests/ModelCheckerTest.cpp - Protocol model checker ----------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// The checker checking the checker: unit tests for the model-checking
/// substrate (state identity/hash, TSO store-buffer machine), soundness of
/// the sleep-set reduction (verdicts must match with the reduction off),
/// the SC-vs-TSO divergence on the Dekker litmus, golden-diffed
/// counterexample rendering for the seeded blind-store FLC release race,
/// and the tier-1 bounded-exhaustive run of all three shipped protocol
/// models — the regression gate ISSUE PR 10 asks for.
///
//===----------------------------------------------------------------------===//

#include "verify/Checker.h"
#include "verify/Models.h"
#include "verify/Trace.h"

#include <gtest/gtest.h>

using namespace solero;
using namespace solero::verify;

namespace {

CheckConfig config(MemSemantics Mem, bool Por = true) {
  CheckConfig C;
  C.Mem = Mem;
  C.SleepSets = Por;
  return C;
}

//===----------------------------------------------------------------------===//
// Substrate: state identity, hashing, TSO store-buffer machine.
//===----------------------------------------------------------------------===//

TEST(McState, IdentityAndHashTrackEveryField) {
  McState A;
  A.clear();
  McState B = A;
  EXPECT_TRUE(A == B);
  EXPECT_EQ(A.hash(), B.hash());

  B.Mem[3] = 1;
  EXPECT_FALSE(A == B);
  EXPECT_NE(A.hash(), B.hash());

  B = A;
  B.BufVal[1][0] = 7; // buffered-but-unflushed state is distinct state
  EXPECT_FALSE(A == B);
  EXPECT_NE(A.hash(), B.hash());

  B = A;
  B.Local[2][5] = 1; // locals (e.g. a recorded SIG generation) count too
  EXPECT_FALSE(A == B);
  EXPECT_NE(A.hash(), B.hash());
}

TEST(Mach, TsoBuffersForwardAndFlushFifo) {
  McState S;
  S.clear();
  S.Mem[0] = 9;
  Mach M(S, /*Tid=*/0, MemSemantics::TSO);

  // A buffered store is invisible in memory but forwarded to own loads.
  EXPECT_TRUE(M.store(0, 1));
  EXPECT_TRUE(M.store(0, 2));
  EXPECT_EQ(S.Mem[0], 9);
  EXPECT_EQ(M.load(0), 2); // newest own entry wins

  // Another thread still reads memory.
  Mach Other(S, /*Tid=*/1, MemSemantics::TSO);
  EXPECT_EQ(Other.load(0), 9);

  // Fences and RMWs are blocked until scheduler flushes drain the FIFO.
  EXPECT_FALSE(M.fence());
  EXPECT_FALSE(M.rmwReady());
  EXPECT_TRUE(applyFlush(S, 0));
  EXPECT_EQ(S.Mem[0], 1); // oldest first
  EXPECT_TRUE(applyFlush(S, 0));
  EXPECT_EQ(S.Mem[0], 2);
  EXPECT_FALSE(applyFlush(S, 0)); // drained
  EXPECT_TRUE(M.fence());
  EXPECT_TRUE(M.rmwReady());

  // A full buffer disables further stores (store returns false).
  for (unsigned I = 0; I < McMaxBuf; ++I)
    EXPECT_TRUE(M.store(1, static_cast<uint8_t>(I)));
  EXPECT_FALSE(M.store(1, 99));
}

TEST(Mach, ScStoresAreImmediate) {
  McState S;
  S.clear();
  Mach M(S, 0, MemSemantics::SC);
  EXPECT_TRUE(M.store(4, 42));
  EXPECT_EQ(S.Mem[4], 42);
  EXPECT_EQ(S.BufLen[0], 0u);
  EXPECT_TRUE(M.fence());
  EXPECT_TRUE(M.cas(4, 42, 43));
  EXPECT_FALSE(M.cas(4, 42, 44)); // failed compare is a real step
  EXPECT_EQ(S.Mem[4], 43);
  EXPECT_EQ(M.readMask(), uint16_t(1u << 4));
  EXPECT_EQ(M.writeMask(), uint16_t(1u << 4));
}

//===----------------------------------------------------------------------===//
// Sleep-set reduction soundness: same verdict with the reduction off, and
// the reduction must not *increase* the transitions taken.
//===----------------------------------------------------------------------===//

struct NamedModel {
  const char *Tag;
  std::unique_ptr<ProtocolModel> M;
};

std::vector<NamedModel> equivalenceMatrix() {
  std::vector<NamedModel> Ms;
  Ms.push_back({"dekker", makeDekkerModel({})});
  Ms.push_back({"dekker/no-fence", makeDekkerModel({/*Fences=*/false})});
  Ms.push_back({"tasuki", makeTasukiModel({})});
  Ms.push_back({"tasuki/blind", makeTasukiModel({2, true})});
  Ms.push_back({"bravo", makeBravoModel({})});
  Ms.push_back({"bravo/no-fence", makeBravoModel({2, true})});
  Ms.push_back({"solero/blind", makeSoleroModel({2, true, true})});
  return Ms;
}

TEST(SleepSets, VerdictsMatchUnreducedExploration) {
  for (const NamedModel &NM : equivalenceMatrix()) {
    for (MemSemantics Mem : {MemSemantics::SC, MemSemantics::TSO}) {
      CheckResult Por = checkModel(*NM.M, config(Mem, true));
      CheckResult Full = checkModel(*NM.M, config(Mem, false));
      EXPECT_EQ(Por.V, Full.V)
          << NM.Tag << " under " << memSemanticsName(Mem);
      if (Por.V == Verdict::Violation) {
        // Both counterexamples are BFS-minimized over the unreduced
        // graph, so they must agree exactly.
        EXPECT_STREQ(Por.ViolationKind, Full.ViolationKind) << NM.Tag;
        EXPECT_EQ(Por.Trace.size(), Full.Trace.size()) << NM.Tag;
      }
      EXPECT_LE(Por.TransitionsTaken, Full.TransitionsTaken) << NM.Tag;
    }
  }
}

//===----------------------------------------------------------------------===//
// Dekker litmus: the substrate's SC-vs-TSO divergence in four cells.
//===----------------------------------------------------------------------===//

TEST(Dekker, StoreBufferingDivergesExactlyUnderTsoWithoutFences) {
  auto Fenced = makeDekkerModel({/*Fences=*/true});
  auto Bare = makeDekkerModel({/*Fences=*/false});
  EXPECT_EQ(checkModel(*Fenced, config(MemSemantics::SC)).V, Verdict::Pass);
  EXPECT_EQ(checkModel(*Fenced, config(MemSemantics::TSO)).V, Verdict::Pass);
  EXPECT_EQ(checkModel(*Bare, config(MemSemantics::SC)).V, Verdict::Pass);

  CheckResult R = checkModel(*Bare, config(MemSemantics::TSO));
  ASSERT_EQ(R.V, Verdict::Violation);
  EXPECT_NE(std::string(R.ViolationKind).find("mutual exclusion"),
            std::string::npos);
  // Shortest witness: both stores sit in their buffers, both loads read
  // the other flag's stale 0 from memory, and both threads stand at the
  // critical-section pc — 4 scheduled actions, no flush ever needed.
  EXPECT_EQ(R.Trace.size(), 4u);
}

//===----------------------------------------------------------------------===//
// Golden counterexample for the seeded PR-3 blind-store FLC release race.
//===----------------------------------------------------------------------===//

TEST(SoleroModel, BlindStoreReleaseGoldenTrace) {
  auto M = makeSoleroModel({/*Writers=*/2, /*Reader=*/true,
                            /*BlindStoreRelease=*/true});
  CheckConfig C = config(MemSemantics::SC);
  CheckResult R = checkModel(*M, C);
  ASSERT_EQ(R.V, Verdict::Violation);
  EXPECT_STREQ(R.ViolationKind, DeadlockViolation);

  // BFS-minimized and fully deterministic, so the whole rendering is a
  // golden. The schedule: T0 acquires and loads a clean word for its
  // release decision; T1 and the reader (T2) then set FLC and park; T0's
  // blind store clobbers the FLC bit and publishes the free word without
  // a notify, leaving both contenders parked forever.
  const char *Expected =
      "counterexample (solero, SC): lost wakeup: unfinished threads are "
      "blocked forever (no enabled transition and no pending signal)\n"
      "  init              | word=00 x=0 y=0 sig=0 pc=0,0,13\n"
      "  step  1  T0 enter.load     | word=00 x=0 y=0 sig=0 pc=1,0,13\n"
      "  step  2  T0 enter.cas      | word=05 x=0 y=0 sig=0 pc=2,0,13\n"
      "  step  3  T0 cs.store-x     | word=05 x=1 y=0 sig=0 pc=3,0,13\n"
      "  step  4  T0 cs.store-y     | word=05 x=1 y=1 sig=0 pc=4,0,13\n"
      "  step  5  T0 rel.load       | word=05 x=1 y=1 sig=0 pc=6,0,13\n"
      "  step  6  T1 enter.load     | word=05 x=1 y=1 sig=0 pc=6,9,13\n"
      "  step  7  T1 flc.load       | word=05 x=1 y=1 sig=0 pc=6,10,13\n"
      "  step  8  T1 flc.cas        | word=07 x=1 y=1 sig=0 pc=6,11,13\n"
      "  step  9  T1 park.arm       | word=07 x=1 y=1 sig=0 pc=6,12,13\n"
      "  step 10  T2 spec.load      | word=07 x=1 y=1 sig=0 pc=6,12,0\n"
      "  step 11  T2 enter.load     | word=07 x=1 y=1 sig=0 pc=6,12,9\n"
      "  step 12  T2 flc.load       | word=07 x=1 y=1 sig=0 pc=6,12,11\n"
      "  step 13  T2 park.arm       | word=07 x=1 y=1 sig=0 pc=6,12,12\n"
      "  step 14  T0 rel.blind-store | word=10 x=1 y=1 sig=0 pc=19,12,12\n";
  EXPECT_EQ(renderTrace(*M, C, R), Expected);

  // The shipped release CAS closes the race: exhaustive pass both ways.
  auto Fixed = makeSoleroModel({2, true, false});
  EXPECT_EQ(checkModel(*Fixed, config(MemSemantics::SC)).V, Verdict::Pass);
  EXPECT_EQ(checkModel(*Fixed, config(MemSemantics::TSO)).V, Verdict::Pass);
}

TEST(BravoModel, RevocationFenceRemovalFailsOnlyUnderTso) {
  auto Bad = makeBravoModel({/*Readers=*/2, /*NoRevocationFence=*/true});
  EXPECT_EQ(checkModel(*Bad, config(MemSemantics::SC)).V, Verdict::Pass);
  CheckResult R = checkModel(*Bad, config(MemSemantics::TSO));
  ASSERT_EQ(R.V, Verdict::Violation);
  EXPECT_NE(std::string(R.ViolationKind).find("bias revocation"),
            std::string::npos);
  // The witness must include at least one store-buffer flush: the bug IS
  // the buffered RBias clear (or slot publish) being read stale.
  bool SawFlush = false;
  for (const TraceStep &T : R.Trace)
    SawFlush |= T.Flush;
  EXPECT_TRUE(SawFlush);
}

//===----------------------------------------------------------------------===//
// Tier-1 bounded-exhaustive run of the three shipped protocol models.
//===----------------------------------------------------------------------===//

TEST(ShippedProtocols, ExhaustivelyPassUnderScAndTso) {
  struct Row {
    const char *Tag;
    std::unique_ptr<ProtocolModel> M;
    uint64_t MinStatesTso; // guards against the model degenerating
  };
  std::vector<Row> Rows;
  Rows.push_back({"solero", makeSoleroModel({}), 100000});
  Rows.push_back({"tasuki", makeTasukiModel({}), 500});
  Rows.push_back({"bravo", makeBravoModel({}), 1500});
  for (const Row &R : Rows) {
    for (MemSemantics Mem : {MemSemantics::SC, MemSemantics::TSO}) {
      CheckResult Res = checkModel(*R.M, config(Mem));
      EXPECT_EQ(Res.V, Verdict::Pass)
          << R.Tag << " under " << memSemanticsName(Mem) << ": "
          << (Res.ViolationKind ? Res.ViolationKind : "incomplete");
      if (Mem == MemSemantics::TSO) {
        EXPECT_GE(Res.StatesVisited, R.MinStatesTso) << R.Tag;
      }
    }
  }
}

TEST(Checker, DepthBoundReportsIncompleteNotPass) {
  auto M = makeSoleroModel({});
  CheckConfig C = config(MemSemantics::SC);
  C.DepthBound = 8; // far below the ~39 the full exploration needs
  EXPECT_EQ(checkModel(*M, C).V, Verdict::Incomplete);
}

} // namespace

//===- tests/TortureTest.cpp - Torture subsystem smoke --------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Tier-1-sized runs of the stress/ torture subsystem: every protocol
/// through a perturbed adversarial mix with the invariant oracles on, plus
/// direct tests of the two accounting bugs the torture oracles were built
/// to catch (racy counter aggregation, guest-exception success counting).
///
//===----------------------------------------------------------------------===//

#include "core/SoleroLock.h"
#include "stress/TortureRunner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace solero;
using namespace solero::stress;

namespace {

TortureConfig smokeConfig(TortureProtocol P, uint64_t Seed) {
  TortureConfig C;
  C.Protocol = P;
  C.Threads = 4;
  C.WritePercent = 20;
  C.GuestThrowPercent = 5;
  C.Seed = Seed;
  C.IterationsPerThread = 1500;
  C.AsyncStormPeriod = std::chrono::microseconds(500);
  // Keep the smoke fast: cap perturbation sleeps well under the tier-1
  // budget while leaving yields/spins at full strength.
  C.Perturbation.SleepMax = std::chrono::microseconds(50);
  return C;
}

} // namespace

TEST(Torture, SoleroOraclesHoldUnderPerturbation) {
  TortureReport R = runTorture(smokeConfig(TortureProtocol::Solero, 7));
  EXPECT_TRUE(R.passed()) << R.summary();
  EXPECT_GT(R.Reads, 0u);
  EXPECT_GT(R.Writes, 0u);
  EXPECT_GT(R.GuestThrows, 0u);
#if defined(SOLERO_INJECTION_POINTS)
  EXPECT_GT(R.InjectionFirings, 0u)
      << "perturber armed but no injection site fired";
#endif
}

TEST(Torture, TasukiOraclesHoldUnderPerturbation) {
  TortureConfig C = smokeConfig(TortureProtocol::Tasuki, 11);
  C.GuestThrowPercent = 0; // non-elided sections propagate throws as-is
  TortureReport R = runTorture(C);
  EXPECT_TRUE(R.passed()) << R.summary();
}

TEST(Torture, SeqLockOraclesHoldUnderPerturbation) {
  TortureReport R = runTorture(smokeConfig(TortureProtocol::SeqLock, 13));
  EXPECT_TRUE(R.passed()) << R.summary();
  EXPECT_GT(R.GuestThrows, 0u);
}

TEST(Torture, RWLockOraclesHoldUnderPerturbation) {
  TortureConfig C = smokeConfig(TortureProtocol::RWLock, 17);
  C.GuestThrowPercent = 0;
  TortureReport R = runTorture(C);
  EXPECT_TRUE(R.passed()) << R.summary();
}

TEST(Torture, BravoRWOraclesHoldUnderPerturbation) {
  TortureConfig C = smokeConfig(TortureProtocol::BravoRW, 19);
  C.GuestThrowPercent = 0; // pessimistic readers propagate throws as-is
  TortureReport R = runTorture(C);
  EXPECT_TRUE(R.passed()) << R.summary();
  EXPECT_GT(R.Reads, 0u);
  EXPECT_GT(R.Writes, 0u);
}

TEST(Torture, ShardedKvOraclesHoldUnderPerturbation) {
  TortureReport R = runTorture(smokeConfig(TortureProtocol::ShardedKv, 23));
  EXPECT_TRUE(R.passed()) << R.summary();
  EXPECT_GT(R.Reads, 0u);
  EXPECT_GT(R.Writes, 0u);
  // Pair reads under SOLERO shards validate guest throws like the bare
  // protocol does.
  EXPECT_GT(R.GuestThrows, 0u);
}

// Counter aggregation must be data-race-free: worker threads increment
// their RelaxedCounter cells while another thread aggregates. Before the
// counters became relaxed atomics this was a plain-uint64_t read/write
// race TSan flagged in every torture run.
TEST(Torture, CounterAggregationRacesCleanlyWithIncrements) {
  std::atomic<bool> Stop{false};
  constexpr int Writers = 4;
  constexpr uint64_t PerWriter = 200000;
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();

  std::vector<std::thread> Ts;
  for (int W = 0; W < Writers; ++W)
    Ts.emplace_back([&] {
      ThreadState &TS = ThreadRegistry::current();
      for (uint64_t I = 0; I < PerWriter; ++I)
        ++TS.Counters.ElisionAttempts;
    });
  std::thread Aggregator([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      ProtocolCounters Now = ThreadRegistry::instance().totalCounters();
      EXPECT_LE(Before.ElisionAttempts.value(), Now.ElisionAttempts.value());
    }
  });
  for (auto &T : Ts)
    T.join();
  Stop.store(true, std::memory_order_release);
  Aggregator.join();

  ProtocolCounters After = ThreadRegistry::instance().totalCounters();
  EXPECT_EQ(After.ElisionAttempts - Before.ElisionAttempts,
            static_cast<uint64_t>(Writers) * PerWriter);
}

// A guest exception thrown out of a *consistent* speculative section is a
// genuine section completion: the attempt succeeded and must be counted,
// or attempts != successes + failures.
TEST(Torture, GenuineGuestExceptionCountsAsElisionSuccess) {
  RuntimeConfig RC;
  RC.StartEventBus = false;
  RuntimeContext Ctx(RC);
  SoleroLock L(Ctx);
  ObjectHeader H;
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();

  struct Boom {};
  EXPECT_THROW(L.synchronizedReadOnly(H, [](ReadGuard &) { throw Boom{}; }),
               Boom);

  ProtocolCounters After = ThreadRegistry::instance().totalCounters();
  EXPECT_EQ(After.ElisionAttempts - Before.ElisionAttempts, 1u);
  EXPECT_EQ(After.ElisionSuccesses - Before.ElisionSuccesses, 1u);
  EXPECT_EQ(After.ElisionFailures - Before.ElisionFailures, 0u);
}

// Same conservation law out of a read-mostly section.
TEST(Torture, GenuineGuestExceptionCountsAsSuccessInReadMostly) {
  RuntimeConfig RC;
  RC.StartEventBus = false;
  RuntimeContext Ctx(RC);
  SoleroLock L(Ctx);
  ObjectHeader H;
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();

  struct Boom {};
  EXPECT_THROW(
      L.synchronizedReadMostly(H, [](WriteIntent &) { throw Boom{}; }), Boom);

  ProtocolCounters After = ThreadRegistry::instance().totalCounters();
  EXPECT_EQ(After.ElisionAttempts - Before.ElisionAttempts, 1u);
  EXPECT_EQ(After.ElisionSuccesses - Before.ElisionSuccesses, 1u);
  EXPECT_EQ(After.ElisionFailures - Before.ElisionFailures, 0u);
}

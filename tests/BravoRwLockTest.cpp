//===- tests/BravoRwLockTest.cpp - BRAVO biased RW lock tests -------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// The BRAVO layer's contract on top of ReadWriteLock: same reentrancy and
/// downgrade semantics in every bias state, writer revocation that really
/// waits out published readers, the adaptive inhibit window, and the cost
/// model (biased reads perform no shared-state RMW).
///
//===----------------------------------------------------------------------===//

#include "locks/BravoRwLock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace solero;

namespace {

RuntimeConfig quietConfig() {
  RuntimeConfig C;
  C.StartEventBus = false;
  return C;
}

class BravoRwLockTest : public ::testing::Test {
protected:
  BravoRwLockTest() : Ctx(quietConfig()), L(Ctx) {}

  /// Bias starts false and is enabled on the reader slow path; one
  /// read/unlock round trip arms the fast path for everything after.
  void armBias() {
    L.readLock();
    L.readUnlock();
    ASSERT_TRUE(L.readBiased());
  }

  RuntimeContext Ctx;
  BravoRwLock L;
};

} // namespace

TEST_F(BravoRwLockTest, ReaderReentrancyAcrossBiasStates) {
  // First acquisition takes the underlying (unbiased) path and enables the
  // bias; the nested one lands on the biased fast path. Both unwind.
  EXPECT_FALSE(L.readBiased());
  L.readLock();
  EXPECT_TRUE(L.readBiased());
  L.readLock(); // nested: biased publication under an underlying hold
  EXPECT_EQ(L.readerCount(), 2u);
  L.readUnlock();
  L.readUnlock();
  EXPECT_EQ(L.readerCount(), 0u);

  // Now fully biased: nesting stays on the fast path under the single
  // publication, which counts once.
  L.readLock();
  L.readLock();
  L.readLock();
  EXPECT_EQ(L.readerCount(), 1u);
  L.readUnlock();
  L.readUnlock();
  EXPECT_EQ(L.readerCount(), 1u);
  L.readUnlock();
  EXPECT_EQ(L.readerCount(), 0u);
}

TEST_F(BravoRwLockTest, WriterRevokesBiasAndWaitsOutPublishedReaders) {
  armBias();
  L.readLock(); // biased publication in the visible-readers table
  EXPECT_EQ(L.readerCount(), 1u);

  std::atomic<int> Stage{0};
  std::thread Writer([&] {
    Stage.store(1);
    L.writeLock();
    Stage.store(2);
    L.writeUnlock();
  });
  while (Stage.load() != 1)
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // The writer cleared the bias but must still be draining our slot.
  EXPECT_EQ(Stage.load(), 1);
  EXPECT_FALSE(L.readBiased());
  L.readUnlock();
  Writer.join();
  EXPECT_EQ(Stage.load(), 2);
  EXPECT_GE(L.revocations(), 1u);
  EXPECT_EQ(L.readerCount(), 0u);
}

TEST_F(BravoRwLockTest, DowngradeWriteToRead) {
  armBias();
  L.writeLock(); // revokes the bias
  EXPECT_FALSE(L.readBiased());
  L.readLock(); // downgrade read: must not re-enable bias while write held
  EXPECT_FALSE(L.readBiased());
  L.writeUnlock();
  // Still a reader: a competing writer has to wait for us.
  EXPECT_EQ(L.readerCount(), 1u);
  std::atomic<bool> Acquired{false};
  std::thread Writer([&] {
    L.writeLock();
    Acquired.store(true);
    L.writeUnlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(Acquired.load());
  L.readUnlock();
  Writer.join();
  EXPECT_TRUE(Acquired.load());
  EXPECT_EQ(L.readerCount(), 0u);
}

TEST_F(BravoRwLockTest, WriteStormKeepsBiasDisabled) {
  // With a huge inhibit multiplier one revocation parks the bias for the
  // rest of the test, so a write-heavy phase pays the table scan exactly
  // once and then runs at plain-RWLock speed.
  BravoConfig Cfg;
  Cfg.InhibitMultiplier = 1u << 30;
  BravoRwLock Stormy(Ctx, Cfg);
  Stormy.readLock();
  Stormy.readUnlock();
  ASSERT_TRUE(Stormy.readBiased());
  for (int I = 0; I < 200; ++I) {
    Stormy.writeLock();
    Stormy.writeUnlock();
    Stormy.readLock(); // slow path; must not re-arm inside the window
    Stormy.readUnlock();
  }
  EXPECT_EQ(Stormy.revocations(), 1u);
  EXPECT_FALSE(Stormy.readBiased());
}

TEST_F(BravoRwLockTest, BiasDisabledConfigDegeneratesToUnderlying) {
  BravoConfig Cfg;
  Cfg.BiasEnabled = false;
  BravoRwLock Plain(Ctx, Cfg);
  Plain.readLock();
  EXPECT_FALSE(Plain.readBiased());
  EXPECT_EQ(Plain.readerCount(), 1u);
  Plain.readUnlock();
  Plain.writeLock();
  Plain.writeUnlock();
  EXPECT_EQ(Plain.revocations(), 0u);
}

TEST_F(BravoRwLockTest, BiasedReadsPerformNoSharedStateRmw) {
  // The whole point of the layer: while biased, a read acquisition is two
  // plain stores (publish, retire) and zero RMWs on shared lock state.
  armBias();
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();
  for (int I = 0; I < 100; ++I)
    L.synchronizedReadOnly([](ReadGuard &) { return 0; });
  ProtocolCounters After = ThreadRegistry::instance().totalCounters();
  EXPECT_EQ(After.AtomicRmws - Before.AtomicRmws, 0u);
  EXPECT_GE(After.LockWordStores - Before.LockWordStores, 200u);
}

TEST_F(BravoRwLockTest, MutualExclusionMixedLoad) {
  constexpr int Threads = 4, Iters = 3000;
  int64_t Data = 0; // protected by write mode
  std::atomic<bool> TornRead{false};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      for (int I = 0; I < Iters; ++I) {
        if (T == 0) {
          L.synchronizedWrite([&] { ++Data; });
        } else {
          int64_t Seen =
              L.synchronizedReadOnly([&](ReadGuard &) { return Data; });
          if (Seen < 0 || Seen > Iters)
            TornRead.store(true);
        }
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Data, Iters);
  EXPECT_FALSE(TornRead.load());
  EXPECT_EQ(L.readerCount(), 0u);
}

TEST_F(BravoRwLockTest, SynchronizedHelpersReleaseOnException) {
  armBias();
  EXPECT_THROW(
      L.synchronizedWrite([&]() -> int { throw std::runtime_error("x"); }),
      std::runtime_error);
  EXPECT_FALSE(L.writeHeldByCurrentThread());
  EXPECT_THROW(L.synchronizedReadOnly(
                   [&](ReadGuard &) -> int { throw std::runtime_error("y"); }),
               std::runtime_error);
  EXPECT_EQ(L.readerCount(), 0u);
}

TEST_F(BravoRwLockTest, TwoLocksShareAThreadWithoutCrosstalk) {
  // Distinct locks hash to (usually distinct) slots in the same
  // thread-owned group; even on a collision the second lock just takes the
  // underlying path. Either way the counts stay per-lock.
  BravoRwLock Other(Ctx);
  armBias();
  Other.readLock();
  Other.readUnlock();
  L.readLock();
  Other.readLock();
  EXPECT_EQ(L.readerCount(), 1u);
  EXPECT_EQ(Other.readerCount(), 1u);
  Other.readUnlock();
  L.readUnlock();
  EXPECT_EQ(L.readerCount(), 0u);
  EXPECT_EQ(Other.readerCount(), 0u);
}

//===- tests/StressTest.cpp - Protocol stress and failure injection -------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Adversarial configurations: tiny spin tiers so inflation/deflation and
/// FLC parking churn constantly, mixed elision + contention on one lock,
/// and the async-event rescue of an otherwise-unbounded inconsistent-read
/// loop.
///
//===----------------------------------------------------------------------===//

#include "core/SoleroLock.h"
#include "locks/TasukiLock.h"
#include "runtime/SharedField.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace solero;
using namespace solero::lockword;

namespace {

/// A context tuned to force the slow paths: one spin round, short parks,
/// fast async events.
RuntimeConfig adversarialConfig() {
  RuntimeConfig C;
  C.Tiers = SpinTiers{4, 2, 1};
  C.ParkMicros = std::chrono::microseconds(100);
  C.AsyncEventPeriod = std::chrono::microseconds(500);
  C.StartEventBus = true;
  return C;
}

} // namespace

TEST(Stress, TasukiInflationChurnKeepsExclusion) {
  RuntimeContext Ctx(adversarialConfig());
  TasukiLock L(Ctx);
  ObjectHeader H;
  constexpr int Threads = 6, Iters = 3000;
  int64_t Plain = 0;
  // Start gate: without it a thread can burn all its iterations before
  // the next one spawns (thread creation is slow under TSan on one
  // vCPU), leaving the lock uncontended and the Inflations expectation
  // below timing-dependent.
  std::atomic<int> Ready{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      Ready.fetch_add(1, std::memory_order_acq_rel);
      while (Ready.load(std::memory_order_acquire) < Threads)
        std::this_thread::yield();
      for (int I = 0; I < Iters; ++I)
        L.synchronizedWrite(H, [&] { ++Plain; });
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Plain, static_cast<int64_t>(Threads) * Iters);
  EXPECT_EQ(H.word().load(), 0u); // fully deflated and released
  ProtocolCounters C = ThreadRegistry::instance().totalCounters();
  EXPECT_GT(C.Inflations, 0u); // tiny tiers guarantee slow-path traffic
}

TEST(Stress, SoleroElisionSurvivesInflationChurn) {
  RuntimeContext Ctx(adversarialConfig());
  SoleroLock L(Ctx);
  ObjectHeader H;
  SharedField<int64_t> A{0}, B{0};
  constexpr int Writers = 3, Readers = 3, Iters = 4000;
  std::atomic<bool> Stop{false};
  std::atomic<bool> Torn{false};
  std::atomic<int> WritersDone{0};
  std::vector<std::thread> Ts;
  for (int W = 0; W < Writers; ++W)
    Ts.emplace_back([&] {
      for (int I = 1; I <= Iters; ++I)
        L.synchronizedWrite(H, [&] {
          int64_t V = A.read() + 1;
          A.write(V);
          B.write(-V);
        });
      if (WritersDone.fetch_add(1) + 1 == Writers)
        Stop.store(true);
    });
  for (int R = 0; R < Readers; ++R)
    Ts.emplace_back([&] {
      while (!Stop.load()) {
        auto P = L.synchronizedReadOnly(H, [&](ReadGuard &) {
          return std::pair<int64_t, int64_t>(A.read(), B.read());
        });
        if (P.first != -P.second)
          Torn.store(true);
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_FALSE(Torn.load());
  EXPECT_EQ(A.read(), static_cast<int64_t>(Writers) * Iters);
  EXPECT_TRUE(soleroIsFree(H.word().load()));
}

TEST(Stress, ContendedReadersInflateAndRecover) {
  // Readers that hit a held lock go through the Figure 8 slow path, which
  // inflates. The lock must deflate back and speculation must resume.
  RuntimeContext Ctx(adversarialConfig());
  SoleroLock L(Ctx);
  ObjectHeader H;
  SharedField<int64_t> D{0};
  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    for (int I = 0; I < 2000; ++I)
      L.synchronizedWrite(H, [&] {
        D.write(D.read() + 1);
        // Hold briefly so readers reliably observe a held word.
        spinTier1(200);
      });
    Stop.store(true);
  });
  std::vector<std::thread> Readers;
  std::atomic<int64_t> Sum{0};
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&] {
      int64_t Local = 0;
      while (!Stop.load())
        Local += L.synchronizedReadOnly(
            H, [&](ReadGuard &) { return D.read(); });
      Sum.fetch_add(Local);
    });
  Writer.join();
  for (auto &T : Readers)
    T.join();
  EXPECT_EQ(D.read(), 2000);
  EXPECT_TRUE(soleroIsFree(H.word().load())); // deflated after the storm
  ProtocolCounters C = ThreadRegistry::instance().totalCounters();
  EXPECT_GT(C.ElisionSuccesses, 0u);
}

TEST(Stress, AsyncEventsRescueUnboundedInconsistentLoop) {
  // The Section 3.3 scenario: a speculative reader spins on a condition
  // that is only exitable through consistent reads. A concurrent writer
  // invalidates it; only the async event (via checkpoint) can break the
  // loop. With the bus running this must terminate.
  RuntimeConfig Cfg = adversarialConfig();
  RuntimeContext Ctx(Cfg);
  SoleroLock L(Ctx);
  ObjectHeader H;
  SharedField<int64_t> Gate{0}; // reader loops while Gate is "inconsistent"
  SharedField<int64_t> GateCopy{0};

  std::atomic<bool> ReaderInLoop{false};
  std::thread Reader([&] {
    int64_t R = L.synchronizedReadOnly(H, [&](ReadGuard &G) {
      // Loop until the two gates agree AND are nonzero. Under the stale
      // snapshot (0, 1) this can never happen without a retry.
      for (;;) {
        int64_t A = Gate.read(), B = GateCopy.read();
        if (A != 0 && A == B)
          return A;
        ReaderInLoop.store(true);
        G.checkpoint(); // the paper's async check point
      }
    });
    EXPECT_EQ(R, 7);
  });
  while (!ReaderInLoop.load())
    std::this_thread::yield();
  // Writer makes the pair inconsistent from the reader's stale viewpoint,
  // then consistent; the reader's speculation must abort and retry.
  L.synchronizedWrite(H, [&] {
    Gate.write(7);
    GateCopy.write(7);
  });
  Reader.join();
  ProtocolCounters C = ThreadRegistry::instance().totalCounters();
  EXPECT_GT(C.AsyncAborts + C.ElisionFailures, 0u);
}

TEST(Stress, MixedNestingAcrossManyLocks) {
  RuntimeContext Ctx(adversarialConfig());
  SoleroLock L(Ctx);
  constexpr int NumLocks = 8;
  ObjectHeader H[NumLocks];
  SharedField<int64_t> D[NumLocks];
  constexpr int Threads = 4, Iters = 2000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      Xoshiro256StarStar Rng(static_cast<uint64_t>(T) + 99);
      for (int I = 0; I < Iters; ++I) {
        // Acquire locks in ascending index order (deadlock-free), a
        // random mix of read and write modes, nested up to 3 deep.
        int A = static_cast<int>(Rng.nextBounded(NumLocks - 2));
        int B = A + 1 + static_cast<int>(Rng.nextBounded(
                            static_cast<uint64_t>(NumLocks - A - 1)));
        bool WriteOuter = Rng.nextPercent(30);
        bool WriteInner = Rng.nextPercent(30);
        auto Inner = [&] {
          if (WriteInner)
            L.synchronizedWrite(H[B], [&] { D[B].write(D[B].read() + 1); });
          else
            (void)L.synchronizedReadOnly(
                H[B], [&](ReadGuard &) { return D[B].read(); });
        };
        if (WriteOuter)
          L.synchronizedWrite(H[A], [&] {
            D[A].write(D[A].read() + 1);
            Inner();
          });
        else
          L.synchronizedReadOnly(H[A], [&](ReadGuard &) {
            Inner();
            return 0;
          });
      }
    });
  for (auto &T : Ts)
    T.join();
  for (int I = 0; I < NumLocks; ++I)
    EXPECT_TRUE(soleroIsFree(H[I].word().load())) << "lock " << I;
}

TEST(Stress, ReadMostlyUpgradeUnderContention) {
  RuntimeContext Ctx(adversarialConfig());
  SoleroLock L(Ctx);
  ObjectHeader H;
  SharedField<int64_t> Counter{0};
  constexpr int Threads = 4, Iters = 3000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < Iters; ++I)
        L.synchronizedReadMostly(H, [&](WriteIntent &W) {
          int64_t V = Counter.read();
          W.acquireForWrite(); // every section writes: worst case
          // After the upgrade the read is stable; recompute to be exact.
          V = Counter.read();
          Counter.write(V + 1);
        });
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Counter.read(), static_cast<int64_t>(Threads) * Iters);
  EXPECT_TRUE(soleroIsFree(H.word().load()));
}

TEST(Stress, WriteInsideReadInsideWriteNesting) {
  RuntimeContext Ctx(adversarialConfig());
  SoleroLock L(Ctx);
  ObjectHeader H;
  SharedField<int64_t> D{0};
  // write { read { write { ... } } } on the same lock, repeatedly.
  for (int I = 0; I < 1000; ++I)
    L.synchronizedWrite(H, [&] {
      int64_t Seen = L.synchronizedReadOnly(H, [&](ReadGuard &) {
        L.synchronizedWrite(H, [&] { D.write(D.read() + 1); });
        return D.read();
      });
      EXPECT_EQ(Seen, I + 1);
    });
  EXPECT_EQ(D.read(), 1000);
  EXPECT_TRUE(soleroIsFree(H.word().load()));
}

//===- tests/DistributionsTest.cpp - Sampler and histogram tests ----------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Statistical tests for the KV-service load-generator building blocks:
/// the Zipfian/Poisson samplers (support/Distributions.h), the log-bucketed
/// latency histogram against a sorted-vector oracle
/// (support/LatencyHistogram.h), and the thread-pinning helper
/// (support/NumaTopology.h).
///
//===----------------------------------------------------------------------===//

#include "support/Distributions.h"
#include "support/LatencyHistogram.h"
#include "support/NumaTopology.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

using namespace solero;

namespace {

/// Chi-squared statistic of observed counts against the sampler's own
/// analytic cell probabilities.
double chiSquared(const std::vector<uint64_t> &Observed,
                  const std::vector<double> &Expected) {
  double Chi = 0;
  for (std::size_t I = 0; I < Observed.size(); ++I) {
    double Diff = static_cast<double>(Observed[I]) - Expected[I];
    Chi += Diff * Diff / Expected[I];
  }
  return Chi;
}

} // namespace

TEST(Distributions, ZipfianIsDeterministicFromTheSeed) {
  ZipfianSampler Z(1024, 0.99);
  Xoshiro256StarStar A(42), B(42);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_EQ(Z.next(A), Z.next(B));
    uint64_t R = Z.next(A);
    EXPECT_EQ(R, Z.next(B));
    EXPECT_LT(R, Z.rankCount());
  }
}

TEST(Distributions, ZipfianMatchesAnalyticProbabilities) {
  constexpr uint64_t N = 100;
  constexpr uint64_t Samples = 100000;
  ZipfianSampler Z(N, 0.99);
  Xoshiro256StarStar Rng(7);

  std::vector<uint64_t> Counts(N, 0);
  for (uint64_t I = 0; I < Samples; ++I)
    ++Counts[Z.next(Rng)];

  // Coarse cells (head ranks individually, tail grouped by octave) keep
  // every expected count large, so the statistic is insensitive to the
  // known small bias of the inversion approximation.
  const std::vector<std::pair<uint64_t, uint64_t>> Cells = {
      {0, 1}, {1, 2}, {2, 3}, {3, 8}, {8, 16}, {16, 32}, {32, 64}, {64, N}};
  std::vector<uint64_t> Observed;
  std::vector<double> Expected;
  for (auto [Lo, Hi] : Cells) {
    uint64_t O = 0;
    double P = 0;
    for (uint64_t R = Lo; R < Hi; ++R) {
      O += Counts[R];
      P += Z.probabilityOfRank(R);
    }
    Observed.push_back(O);
    Expected.push_back(P * static_cast<double>(Samples));
  }
  // Analytic probabilities must sum to one.
  double Total = 0;
  for (uint64_t R = 0; R < N; ++R)
    Total += Z.probabilityOfRank(R);
  EXPECT_NEAR(Total, 1.0, 1e-9);
  // The inversion is an approximation: it is exact for ranks 0-1 and
  // carries a known systematic bias just past the spline boundary (about
  // +14% at rank 2 for theta 0.99), settling to a few percent in the tail.
  // Per-cell relative error bounds catch a wrong exponent or a broken
  // inversion without flagging that documented bias.
  for (std::size_t I = 0; I < Observed.size(); ++I) {
    double Rel = (static_cast<double>(Observed[I]) - Expected[I]) /
                 Expected[I];
    EXPECT_LT(std::abs(Rel), 0.16)
        << "cell " << I << " off by " << Rel * 100 << "%";
  }
  // Chi-squared as a coarse shape tripwire: the approximation bias alone
  // measures ~230 here; a uniform or inverted sampler measures in the tens
  // of thousands.
  EXPECT_LT(chiSquared(Observed, Expected), 500.0)
      << "zipfian sample frequencies diverge from 1/(r+1)^theta";
  // The head must dominate: rank 0 draws far more than a uniform share.
  EXPECT_GT(Observed[0], Samples / N * 5);
}

TEST(Distributions, ScrambledZipfianPreservesTheHotMass) {
  constexpr uint64_t N = 4096;
  constexpr uint64_t Samples = 200000;
  ZipfianSampler Z(N, 0.99);
  Xoshiro256StarStar Rng(11);

  std::map<uint64_t, uint64_t> Counts;
  for (uint64_t I = 0; I < Samples; ++I) {
    uint64_t K = Z.nextScrambled(Rng);
    ASSERT_LT(K, N);
    ++Counts[K];
  }
  // The hottest scrambled key carries rank 0's probability mass, but its
  // identity is decorrelated from 0.
  uint64_t HotKey = 0, HotCount = 0;
  for (auto [K, C] : Counts)
    if (C > HotCount) {
      HotKey = K;
      HotCount = C;
    }
  double HotFrac = static_cast<double>(HotCount) / Samples;
  EXPECT_NEAR(HotFrac, Z.probabilityOfRank(0), 0.02);
  // SplitMix64 of 0 is a fixed, well-known value; what matters here is
  // only that the hot key is not the raw rank.
  EXPECT_NE(HotKey, 0u);

  Xoshiro256StarStar A(5), B(5);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Z.nextScrambled(A), Z.nextScrambled(B));
}

TEST(Distributions, PoissonGapsAverageToTheConfiguredRate) {
  constexpr double Rate = 50000.0; // 20us mean gap
  PoissonProcess P(Rate);
  EXPECT_NEAR(P.meanGapNs(), 20000.0, 1e-6);

  Xoshiro256StarStar Rng(3);
  constexpr uint64_t Samples = 200000;
  double Sum = 0;
  for (uint64_t I = 0; I < Samples; ++I) {
    uint64_t Gap = P.nextGapNs(Rng);
    ASSERT_GE(Gap, 1u);
    Sum += static_cast<double>(Gap);
  }
  // Mean of 200K exponential draws concentrates within ~1% (stddev of the
  // mean is mean/sqrt(n) ~ 0.22%).
  EXPECT_NEAR(Sum / static_cast<double>(Samples), 20000.0, 400.0);

  Xoshiro256StarStar A(9), B(9);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(P.nextGapNs(A), P.nextGapNs(B));
}

TEST(LatencyHistogram, BucketGeometryInvariantsHold) {
  // Values below the sub-bucket count are recorded exactly.
  for (uint64_t V = 0; V < LatencyHistogram::SubBucketCount; ++V) {
    EXPECT_EQ(LatencyHistogram::bucketIndex(V), V);
    EXPECT_EQ(LatencyHistogram::bucketMidpoint(V), V);
  }
  // Above: every value falls inside its bucket's bounds and the midpoint
  // is within the promised ~3.1% relative error.
  Xoshiro256StarStar Rng(17);
  for (int I = 0; I < 20000; ++I) {
    uint64_t V = Rng.next() >> (Rng.next() % 40); // spread over magnitudes
    std::size_t Idx = LatencyHistogram::bucketIndex(V);
    ASSERT_LT(Idx, LatencyHistogram::BucketCount);
    uint64_t Lo = LatencyHistogram::bucketLowerBound(Idx);
    EXPECT_LE(Lo, V);
    if (Idx + 1 < LatencyHistogram::BucketCount &&
        LatencyHistogram::bucketLowerBound(Idx + 1) > Lo)
      EXPECT_LT(V, LatencyHistogram::bucketLowerBound(Idx + 1));
    uint64_t Mid = LatencyHistogram::bucketMidpoint(Idx);
    double Err = std::abs(static_cast<double>(Mid) - static_cast<double>(V));
    EXPECT_LE(Err, static_cast<double>(V) / 16.0 + 1.0)
        << "value " << V << " bucket " << Idx;
  }
}

TEST(LatencyHistogram, QuantilesMatchTheSortedVectorOracle) {
  LatencyHistogram H;
  std::vector<uint64_t> Values;
  Xoshiro256StarStar Rng(23);
  PoissonProcess P(200000.0); // heavy-tailed-ish positive values
  for (int I = 0; I < 50000; ++I) {
    uint64_t V = P.nextGapNs(Rng) + (Rng.nextPercent(1) ? 1000000 : 0);
    Values.push_back(V);
    H.record(V);
  }
  std::sort(Values.begin(), Values.end());
  EXPECT_EQ(H.count(), Values.size());
  EXPECT_EQ(H.max(), Values.back());

  for (double Q : {0.50, 0.90, 0.99, 0.999}) {
    uint64_t Rank =
        static_cast<uint64_t>(Q * static_cast<double>(Values.size()));
    if (Rank == 0)
      Rank = 1;
    double Oracle = static_cast<double>(Values[Rank - 1]);
    double Est = static_cast<double>(H.quantile(Q));
    EXPECT_NEAR(Est, Oracle, Oracle * 0.04 + 1.0)
        << "q=" << Q << " oracle=" << Oracle << " est=" << Est;
  }
}

TEST(LatencyHistogram, PerThreadHistogramsMergeLosslessly) {
  constexpr int Threads = 4;
  constexpr int PerThread = 20000;
  std::vector<LatencyHistogram> Parts(Threads);
  LatencyHistogram Whole;

  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      Xoshiro256StarStar Rng(100 + static_cast<uint64_t>(T));
      for (int I = 0; I < PerThread; ++I)
        Parts[static_cast<std::size_t>(T)].record(Rng.next() % 1000000);
    });
  for (auto &T : Ts)
    T.join();

  LatencyHistogram Merged;
  for (const LatencyHistogram &Part : Parts)
    Merged.mergeFrom(Part);
  // Rebuild the same stream serially: merge must be exactly the sum.
  for (int T = 0; T < Threads; ++T) {
    Xoshiro256StarStar Rng(100 + static_cast<uint64_t>(T));
    for (int I = 0; I < PerThread; ++I)
      Whole.record(Rng.next() % 1000000);
  }
  EXPECT_EQ(Merged.count(),
            static_cast<uint64_t>(Threads) * static_cast<uint64_t>(PerThread));
  EXPECT_EQ(Merged.max(), Whole.max());
  for (double Q : {0.5, 0.9, 0.99})
    EXPECT_EQ(Merged.quantile(Q), Whole.quantile(Q));

  Merged.reset();
  EXPECT_EQ(Merged.count(), 0u);
  EXPECT_EQ(Merged.quantile(0.99), 0u);
}

TEST(NumaTopology, PinningReportsAtLeastOneCpuAndPinsOnLinux) {
  unsigned N = NumaTopology::cpuCount();
  ASSERT_GE(N, 1u);
  // Out-of-range pinning must fail cleanly, not crash.
  EXPECT_FALSE(NumaTopology::pinCurrentThreadToCpu(1u << 30));
  // Pin in a scratch thread so the test runner's own affinity is untouched.
  std::thread T([&] {
#if defined(__linux__)
    EXPECT_TRUE(NumaTopology::pinCurrentThreadToCpu(N - 1));
#else
    (void)NumaTopology::pinCurrentThreadToCpu(N - 1);
#endif
  });
  T.join();
}

//===- tests/RuntimeTest.cpp - Runtime substrate tests --------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "runtime/AsyncEventBus.h"
#include "runtime/MonitorTable.h"
#include "runtime/ReadGuard.h"
#include "runtime/RuntimeContext.h"
#include "runtime/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

using namespace solero;

TEST(ThreadRegistry, TidBitsAreStableAndAligned) {
  ThreadState &TS = ThreadRegistry::current();
  EXPECT_NE(TS.tidBits(), 0u);
  EXPECT_EQ(TS.tidBits() & lockword::LowBitsMask, 0u);
  EXPECT_EQ(&TS, &ThreadRegistry::current()); // stable per thread
}

TEST(ThreadRegistry, DistinctThreadsGetDistinctIds) {
  // All threads must be alive simultaneously: slots are recycled at thread
  // exit, so ids are only unique among concurrently-live threads.
  constexpr int N = 8;
  std::vector<uint64_t> Ids(N);
  std::atomic<int> Registered{0};
  std::vector<std::thread> Ts;
  for (int I = 0; I < N; ++I)
    Ts.emplace_back([&, I] {
      Ids[I] = ThreadRegistry::current().tidBits();
      Registered.fetch_add(1);
      while (Registered.load() < N)
        std::this_thread::yield();
    });
  for (auto &T : Ts)
    T.join();
  std::set<uint64_t> Unique(Ids.begin(), Ids.end());
  EXPECT_EQ(Unique.size(), static_cast<std::size_t>(N));
  EXPECT_EQ(Unique.count(ThreadRegistry::current().tidBits()), 0u);
}

TEST(ThreadRegistry, SlotsAreRecycledAfterThreadExit) {
  uint64_t FirstId = 0;
  std::thread A([&] { FirstId = ThreadRegistry::current().tidBits(); });
  A.join();
  uint64_t SecondId = 0;
  std::thread B([&] { SecondId = ThreadRegistry::current().tidBits(); });
  B.join();
  EXPECT_EQ(FirstId, SecondId);
}

TEST(ThreadRegistry, CountersSurviveThreadExit) {
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();
  std::thread T([&] { ThreadRegistry::current().Counters.WriteEntries += 5; });
  T.join();
  ProtocolCounters After = ThreadRegistry::instance().totalCounters();
  EXPECT_EQ(After.WriteEntries - Before.WriteEntries, 5u);
}

TEST(ThreadRegistry, ReadRecordStackPushPop) {
  ThreadState &TS = ThreadRegistry::current();
  ObjectHeader H1, H2;
  EXPECT_EQ(TS.readDepth(), 0u);
  std::size_t D1 = TS.pushRead(H1, 100);
  std::size_t D2 = TS.pushRead(H2, 200);
  EXPECT_EQ(D1, 0u);
  EXPECT_EQ(D2, 1u);
  EXPECT_EQ(TS.readRecord(1).Header, &H2);
  TS.popRead();
  TS.popRead();
  EXPECT_EQ(TS.readDepth(), 0u);
}

TEST(MonitorTable, StableMappingPerObject) {
  MonitorTable T;
  ObjectHeader A, B;
  OsMonitor &MA = T.monitorFor(A);
  OsMonitor &MB = T.monitorFor(B);
  EXPECT_NE(&MA, &MB);
  EXPECT_EQ(&T.monitorFor(A), &MA);
  EXPECT_EQ(&T.byIndex(MA.index()), &MA);
  EXPECT_EQ(T.lookup(A), &MA);
  ObjectHeader C;
  EXPECT_EQ(T.lookup(C), nullptr);
  EXPECT_EQ(T.size(), 2u);
}

TEST(MonitorTable, InflatedWordRoundTripsThroughTable) {
  MonitorTable T;
  ObjectHeader A;
  OsMonitor &M = T.monitorFor(A);
  uint64_t W = M.inflatedWord();
  EXPECT_TRUE(lockword::isInflated(W));
  EXPECT_EQ(&T.byIndex(lockword::monitorIndex(W)), &M);
}

TEST(AsyncEventBus, PostSetsPollFlags) {
  ThreadState &TS = ThreadRegistry::current();
  TS.PollFlag.store(0);
  AsyncEventBus::postToAllThreads();
  EXPECT_EQ(TS.PollFlag.load(), 1u);
  TS.PollFlag.store(0);
}

TEST(AsyncEventBus, TickerRunsPeriodically) {
  AsyncEventBus Bus;
  ThreadState &TS = ThreadRegistry::current();
  TS.PollFlag.store(0);
  Bus.start(std::chrono::microseconds(200));
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(500);
  while (TS.PollFlag.load() == 0 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::yield();
  EXPECT_EQ(TS.PollFlag.load(), 1u);
  Bus.stop();
  EXPECT_GE(Bus.tickCount(), 1u);
  TS.PollFlag.store(0);
}

TEST(ReadGuard, CheckpointNoRecordsIsCheap) {
  ThreadState &TS = ThreadRegistry::current();
  TS.PollFlag.store(1);
  EXPECT_NO_THROW(speculationCheckpoint());
  EXPECT_EQ(TS.PollFlag.load(), 0u); // consumed
}

TEST(ReadGuard, CheckpointThrowsForInvalidatedRecord) {
  ThreadState &TS = ThreadRegistry::current();
  ObjectHeader H;
  H.word().store(0x100);
  TS.pushRead(H, 0x100);
  H.word().store(0x200); // a "writer" moved the counter
  TS.PollFlag.store(1);
  bool Thrown = false;
  try {
    speculationCheckpoint();
  } catch (SpeculationFault &F) {
    Thrown = true;
    EXPECT_EQ(F.Depth, 0u);
  }
  TS.popRead();
  EXPECT_TRUE(Thrown);
}

TEST(ReadGuard, CheckpointReportsOutermostFailure) {
  ThreadState &TS = ThreadRegistry::current();
  ObjectHeader H1, H2;
  H1.word().store(0x100);
  H2.word().store(0x100);
  TS.pushRead(H1, 0x100);
  TS.pushRead(H2, 0x100);
  H1.word().store(0x200); // outer invalidated
  H2.word().store(0x200); // inner invalidated too
  TS.PollFlag.store(1);
  bool Thrown = false;
  try {
    speculationCheckpoint();
  } catch (SpeculationFault &F) {
    Thrown = true;
    EXPECT_EQ(F.Depth, 0u); // outermost wins
  }
  TS.popRead();
  TS.popRead();
  EXPECT_TRUE(Thrown);
}

TEST(RuntimeContext, EventBusStartsWhenConfigured) {
  RuntimeConfig C;
  C.AsyncEventPeriod = std::chrono::microseconds(500);
  C.StartEventBus = true;
  RuntimeContext Ctx(C);
  EXPECT_TRUE(Ctx.eventBus().running());
}

TEST(RuntimeContext, EventBusCanBeDisabled) {
  RuntimeConfig C;
  C.StartEventBus = false;
  RuntimeContext Ctx(C);
  EXPECT_FALSE(Ctx.eventBus().running());
}

//===- tests/AssemblerTest.cpp - CSIR text format tests -------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/Assembler.h"

#include "jit/Interpreter.h"
#include "jit/MethodBuilder.h"
#include "jit/Verifier.h"

#include <gtest/gtest.h>

using namespace solero;
using namespace solero::jit;

namespace {

RuntimeContext &ctx() {
  static RuntimeContext Ctx;
  return Ctx;
}

const char *FactorialSource = R"(
; iterative factorial
statics 0

method fact(params=1, locals=2) {
  const 1
  store 1
Loop:
  load 0
  jz Done
  load 1
  load 0
  mul
  store 1
  load 0
  const 1
  sub
  store 0
  jump Loop
Done:
  load 1
  return
}
)";

} // namespace

TEST(Assembler, ParsesAndRunsFactorial) {
  AsmResult R = assembleModule(FactorialSource);
  ASSERT_TRUE(R.Ok) << R.Error << " (line " << R.Line << ")";
  ASSERT_TRUE(verifyModule(R.M).Ok);
  Interpreter I(ctx(), std::move(R.M));
  EXPECT_EQ(I.invoke("fact", {Value::ofInt(6)}).asInt(), 720);
}

TEST(Assembler, ParsesAnnotationsAndStatics) {
  AsmResult R = assembleModule(R"(
statics 7
method tagged(params=1, locals=1) @SoleroReadOnly {
  load 0
  syncenter
  syncexit
  const 0
  return
}
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.M.NumStatics, 7u);
  EXPECT_TRUE(R.M.method(0).AnnotatedReadOnly);
  EXPECT_FALSE(R.M.method(0).AnnotatedReadMostly);
}

TEST(Assembler, ResolvesForwardInvokes) {
  AsmResult R = assembleModule(R"(
method main(params=0, locals=0) {
  const 20
  invoke double  ; defined below
  return
}
method double(params=1, locals=1) {
  load 0
  const 2
  mul
  return
}
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  Interpreter I(ctx(), std::move(R.M));
  EXPECT_EQ(I.invoke("main", {}).asInt(), 40);
}

TEST(Assembler, DiagnosesUnknownOpcodeWithLine) {
  AsmResult R = assembleModule(R"(
method bad(params=0, locals=0) {
  const 1
  frobnicate
  return
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("frobnicate"), std::string::npos);
  EXPECT_EQ(R.Line, 4);
}

TEST(Assembler, DiagnosesUndefinedLabel) {
  AsmResult R = assembleModule(R"(
method bad(params=0, locals=0) {
  jump Nowhere
  const 0
  return
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("Nowhere"), std::string::npos);
}

TEST(Assembler, DiagnosesUnclosedMethod) {
  AsmResult R = assembleModule("method open(params=0, locals=0) {\n  const 0\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("not closed"), std::string::npos);
}

TEST(Assembler, DiagnosesUnknownInvokeTarget) {
  AsmResult R = assembleModule(R"(
method main(params=0, locals=0) {
  invoke ghost
  return
}
)");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("ghost"), std::string::npos);
}

TEST(Assembler, RoundTripsThroughWriter) {
  // Build a representative module programmatically, write it out, parse it
  // back, and check instruction-level equality.
  Module M;
  {
    MethodBuilder B("helper", 1, 1);
    B.load(0).constant(3).mul().ret();
    M.addMethod(B.take());
  }
  {
    MethodBuilder B("main", 2, 3);
    B.annotateReadMostly();
    auto Loop = B.newLabel(), Done = B.newLabel();
    B.load(0).syncEnter();
    B.load(1).store(2);
    B.bind(Loop);
    B.load(2).jumpIfZero(Done);
    B.load(2).constant(1).sub().store(2);
    B.jump(Loop);
    B.bind(Done);
    B.load(0).getField(2).invoke(0).pop();
    B.syncExit();
    B.constant(0).ret();
    M.addMethod(B.take());
  }
  M.NumStatics = 3;

  std::string Text = writeModuleText(M);
  AsmResult R = assembleModule(Text);
  ASSERT_TRUE(R.Ok) << R.Error << "\n" << Text;
  ASSERT_EQ(R.M.methodCount(), M.methodCount());
  EXPECT_EQ(R.M.NumStatics, M.NumStatics);
  for (uint32_t Id = 0; Id < M.methodCount(); ++Id) {
    const Method &A = M.method(Id), &B = R.M.method(Id);
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.NumParams, B.NumParams);
    EXPECT_EQ(A.NumLocals, B.NumLocals);
    EXPECT_EQ(A.AnnotatedReadOnly, B.AnnotatedReadOnly);
    EXPECT_EQ(A.AnnotatedReadMostly, B.AnnotatedReadMostly);
    ASSERT_EQ(A.Code.size(), B.Code.size()) << A.Name;
    for (std::size_t Pc = 0; Pc < A.Code.size(); ++Pc) {
      EXPECT_EQ(A.Code[Pc].Op, B.Code[Pc].Op) << A.Name << " pc " << Pc;
      EXPECT_EQ(A.Code[Pc].A, B.Code[Pc].A) << A.Name << " pc " << Pc;
    }
  }
  // And the round-tripped module still verifies and runs.
  ASSERT_TRUE(verifyModule(R.M).Ok);
}

TEST(Assembler, GuestProgramWithMonitorOpsRoundTrips) {
  AsmResult R = assembleModule(R"(
method pingpong(params=1, locals=1) {
  load 0
  syncenter
  load 0
  notifyall
  syncexit
  const 0
  return
}
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  std::string Text = writeModuleText(R.M);
  AsmResult R2 = assembleModule(Text);
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_EQ(R2.M.method(0).Code.size(), R.M.method(0).Code.size());
  // Execute it under SOLERO for good measure.
  Interpreter I(ctx(), std::move(R2.M));
  GuestObject *Obj = I.allocateObject();
  EXPECT_EQ(I.invoke("pingpong", {Value::ofRef(Obj)}).asInt(), 0);
}

//===- tests/ResilienceTest.cpp - Overload-resilience primitives ----------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Unit coverage for the chaos/overload layer (DESIGN.md §17): deadlines
/// charged from scheduled arrivals, the token-bucket retry budget, the
/// hysteretic shed controller, the bounded catch-up arrival schedule
/// (the coordinated-omission fix), jittered ExpBackoff distribution
/// bounds, and the ChaosDirector's byte-for-byte schedule determinism.
///
//===----------------------------------------------------------------------===//

#include "resilience/Deadline.h"
#include "resilience/RetryBudget.h"
#include "resilience/ShedController.h"
#include "stress/ChaosDirector.h"
#include "support/Backoff.h"
#include "support/Distributions.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace solero;
using namespace solero::resilience;

TEST(Deadline, ChargedFromScheduledArrival) {
  Deadline D = Deadline::fromScheduled(1000, 500);
  EXPECT_FALSE(D.unbounded());
  EXPECT_FALSE(D.expired(1000));
  EXPECT_FALSE(D.expired(1500)); // exactly at the deadline is in budget
  EXPECT_TRUE(D.expired(1501));
  EXPECT_EQ(D.remainingNs(1200), 300u);
  EXPECT_EQ(D.remainingNs(2000), 0u);

  Deadline None;
  EXPECT_TRUE(None.unbounded());
  EXPECT_FALSE(None.expired(~0ull - 1));
}

TEST(RetryBudget, BurstThenRefillAtRate) {
  // 100 tokens/s, burst of 3, virtual clock.
  RetryBudget B(100.0, 3.0, 0);
  EXPECT_TRUE(B.tryAcquire(0));
  EXPECT_TRUE(B.tryAcquire(0));
  EXPECT_TRUE(B.tryAcquire(0));
  EXPECT_FALSE(B.tryAcquire(0)); // bucket dry: fail fast, no retry storm
  EXPECT_EQ(B.granted(), 3u);
  EXPECT_EQ(B.denied(), 1u);

  // 10ms at 100/s refills exactly one token.
  EXPECT_TRUE(B.tryAcquire(10'000'000));
  EXPECT_FALSE(B.tryAcquire(10'000'000));

  // The cap bounds accumulation: an hour idle still yields Burst tokens.
  EXPECT_DOUBLE_EQ(B.available(3600ull * 1'000'000'000), 3.0);
}

TEST(RetryBudget, BackwardsClockDoesNotDrain) {
  RetryBudget B(100.0, 2.0, 1'000'000);
  EXPECT_TRUE(B.tryAcquire(1'000'000));
  // A clock observation before the last one must be a refill no-op (the
  // chaos campaign's ClockJump makes this reachable), not a drain or a
  // huge unsigned-underflow refill.
  EXPECT_DOUBLE_EQ(B.available(500), 1.0);
  EXPECT_TRUE(B.tryAcquire(500));
  EXPECT_FALSE(B.tryAcquire(500));
}

TEST(ShedController, HysteresisAndPriorityOrder) {
  ShedConfig C;
  C.SloP99Ns = 1000;
  C.ReadmitRatio = 0.5;
  C.BacklogBreachNs = 10000;
  C.BreachStreak = 2;
  C.ClearStreak = 2;
  ShedController S(C);

  EXPECT_TRUE(S.admit(OpPriority::Scan));
  EXPECT_TRUE(S.admit(OpPriority::Get));
  EXPECT_TRUE(S.admit(OpPriority::Mutate));

  // One breached window is noise; BreachStreak consecutive ones shed.
  S.onWindow(2000, 0);
  EXPECT_EQ(S.level(), 0u);
  S.onWindow(2000, 0);
  EXPECT_EQ(S.level(), 1u);
  EXPECT_FALSE(S.admit(OpPriority::Scan)); // scans go first
  EXPECT_TRUE(S.admit(OpPriority::Get));

  // Queue depth breaches on its own, before the p99 does.
  S.onWindow(100, 20000);
  S.onWindow(100, 20000);
  EXPECT_EQ(S.level(), 2u);
  EXPECT_FALSE(S.admit(OpPriority::Get));
  EXPECT_TRUE(S.admit(OpPriority::Mutate)); // mutations are never shed

  // Level saturates at MaxLevel.
  S.onWindow(2000, 0);
  S.onWindow(2000, 0);
  EXPECT_EQ(S.level(), ShedController::MaxLevel);

  // Windows inside the hysteresis band (<= SLO but above the re-admit
  // bar) hold the level: neither breach nor healthy.
  S.onWindow(800, 0);
  S.onWindow(800, 0);
  S.onWindow(800, 0);
  EXPECT_EQ(S.level(), 2u);

  // ClearStreak genuinely-healthy windows step the level down one notch.
  S.onWindow(400, 0);
  S.onWindow(400, 0);
  EXPECT_EQ(S.level(), 1u);
  // A mid-band window resets the healthy run.
  S.onWindow(800, 0);
  S.onWindow(400, 0);
  EXPECT_EQ(S.level(), 1u);
  S.onWindow(400, 0);
  EXPECT_EQ(S.level(), 0u);

  // Ups counts actual level changes, so the saturated breach pair at
  // MaxLevel contributes nothing: 0->1 and 1->2 only.
  EXPECT_EQ(S.levelUps(), 2u);
  EXPECT_EQ(S.levelDowns(), 2u);
  EXPECT_GT(S.degradedWindows(), 0u);
}

TEST(ShedController, EmptyWindowCountsAsHealthy) {
  ShedConfig C;
  C.SloP99Ns = 1000;
  C.BreachStreak = 1;
  C.ClearStreak = 1;
  ShedController S(C);
  S.onWindow(5000, 0);
  EXPECT_EQ(S.level(), 1u);
  // An idle service records nothing; p99 == 0 must re-admit, or a fully
  // shed class could never generate the samples that would clear it.
  S.onWindow(0, 0);
  EXPECT_EQ(S.level(), 0u);
}

TEST(ArrivalSchedule, PunctualWorkerSkipsNothing) {
  PoissonProcess Proc(1e6); // mean gap 1000ns
  Xoshiro256StarStar Rng(42);
  ArrivalSchedule S(Proc, 0, Rng, 10);
  uint64_t Prev = 0;
  for (int I = 0; I < 1000; ++I) {
    uint64_t Next = S.nextArrivalNs();
    EXPECT_GT(Next, Prev); // strictly forward: gaps have a 1ns floor
    Prev = Next;
    EXPECT_EQ(S.boundBacklog(Next, Rng), 0u); // on time: two compares
    S.advance(Rng);
  }
  EXPECT_EQ(S.skippedArrivals(), 0u);
}

TEST(ArrivalSchedule, BoundedCatchUpCountsSkipped) {
  PoissonProcess Proc(1e6); // mean gap 1000ns -> bound = 10us
  Xoshiro256StarStar Rng(42);
  ArrivalSchedule S(Proc, 0, Rng, 10);
  const uint64_t Bound = S.backlogBoundNs();
  EXPECT_EQ(Bound, 10'000u);

  // A 1ms stall at a 1us mean gap queues ~1000 arrivals; the bounded
  // catch-up skips all but the last ~10 and *counts* them (never the old
  // silent re-anchor).
  const uint64_t Now = 1'000'000;
  uint64_t Skipped = S.boundBacklog(Now, Rng);
  EXPECT_GT(Skipped, 900u);
  EXPECT_EQ(S.skippedArrivals(), Skipped);
  EXPECT_GE(S.nextArrivalNs(), Now - Bound); // within the catch-up burst
  EXPECT_LT(S.nextArrivalNs(), Now + Bound); // but never re-anchored ahead

  // The surviving backlog is issued late, charged from schedule: the next
  // arrivals are still in the past (the honest tail), not at "now".
  EXPECT_LT(S.nextArrivalNs(), Now);
  EXPECT_EQ(S.boundBacklog(Now, Rng), 0u); // already within bound
}

TEST(ArrivalSchedule, SeededStreamsAreIdentical) {
  PoissonProcess Proc(50'000);
  Xoshiro256StarStar RngA(7), RngB(7);
  ArrivalSchedule A(Proc, 100, RngA, 64), B(Proc, 100, RngB, 64);
  for (int I = 0; I < 500; ++I) {
    EXPECT_EQ(A.nextArrivalNs(), B.nextArrivalNs());
    A.advance(RngA);
    B.advance(RngB);
  }
}

TEST(Backoff, FullJitterStaysInsideDoublingEnvelope) {
  ExpBackoff B(16, 1024, JitterMode::FullJitter, 99);
  int Ceil = 16;
  for (int I = 0; I < 64; ++I) {
    int W = B.nextSpins();
    EXPECT_GE(W, 1);
    EXPECT_LE(W, Ceil); // uniform in [1, Cur]; Cur doubles deterministically
    Ceil = Ceil > 1024 / 2 ? 1024 : Ceil * 2;
  }
}

TEST(Backoff, DecorrelatedStaysInsideBrookerBounds) {
  ExpBackoff B(16, 1024, JitterMode::Decorrelated, 99);
  int Prev = 16;
  for (int I = 0; I < 256; ++I) {
    int W = B.nextSpins();
    EXPECT_GE(W, 16);
    EXPECT_LE(W, 1024);
    int64_t Ceil = static_cast<int64_t>(Prev) * 3;
    EXPECT_LE(W, Ceil > 1024 ? 1024 : Ceil); // uniform in [Min, 3*Prev]
    Prev = W; // the drawn wait seeds the next round's ceiling
  }
}

TEST(Backoff, JitterIsSeededAndResettable) {
  ExpBackoff A(16, 1024, JitterMode::FullJitter, 7);
  ExpBackoff B(16, 1024, JitterMode::FullJitter, 7);
  ExpBackoff C(16, 1024, JitterMode::FullJitter, 8);
  bool Differs = false;
  for (int I = 0; I < 64; ++I) {
    int WA = A.nextSpins();
    EXPECT_EQ(WA, B.nextSpins()); // same seed -> same schedule
    Differs |= WA != C.nextSpins();
  }
  EXPECT_TRUE(Differs); // different seed -> decorrelated schedule

  // None mode is untouched by the jitter plumbing: exact doubling, and
  // reset() returns to Min (the pre-existing contract).
  ExpBackoff Plain(16, 64);
  EXPECT_EQ(Plain.nextSpins(), 16);
  EXPECT_EQ(Plain.nextSpins(), 32);
  EXPECT_EQ(Plain.nextSpins(), 64);
  EXPECT_EQ(Plain.nextSpins(), 64);
  Plain.reset();
  EXPECT_EQ(Plain.nextSpins(), 16);
}

namespace {

stress::ChaosConfig smallCampaign(uint64_t Seed) {
  stress::ChaosConfig C;
  C.Seed = Seed;
  C.DurationNs = 2'000'000'000;
  C.Shards = 8;
  C.MeanGapNs = 100'000'000;
  C.MinEventNs = 20'000'000;
  C.MaxEventNs = 60'000'000;
  return C;
}

} // namespace

TEST(ChaosDirector, ScheduleIsAPureFunctionOfTheSeed) {
  stress::ChaosDirector A(smallCampaign(7));
  stress::ChaosDirector B(smallCampaign(7));
  stress::ChaosDirector C(smallCampaign(8));
  EXPECT_FALSE(A.schedule().empty());
  // Byte-for-byte: the acceptance criterion for replayable campaigns.
  EXPECT_EQ(A.scheduleString(), B.scheduleString());
  EXPECT_NE(A.scheduleString(), C.scheduleString());
}

TEST(ChaosDirector, EventsAreOrderedNonOverlappingAndBounded) {
  stress::ChaosDirector D(smallCampaign(123));
  const std::vector<stress::ChaosEvent> &E = D.schedule();
  ASSERT_FALSE(E.empty());
  uint64_t PrevEnd = 0;
  for (const stress::ChaosEvent &Ev : E) {
    EXPECT_GE(Ev.StartNs, PrevEnd); // one fault at a time by design
    EXPECT_GE(Ev.EndNs, Ev.StartNs);
    EXPECT_LE(Ev.EndNs, smallCampaign(123).DurationNs);
    PrevEnd = Ev.EndNs;
  }
}

TEST(ChaosDirector, KindMaskRestrictsTheCampaign) {
  stress::ChaosConfig C = smallCampaign(5);
  C.KindMask = 1u << static_cast<uint8_t>(stress::FaultKind::SlowShard);
  stress::ChaosDirector D(C);
  ASSERT_FALSE(D.schedule().empty());
  for (const stress::ChaosEvent &Ev : D.schedule()) {
    EXPECT_EQ(Ev.Kind, stress::FaultKind::SlowShard);
    EXPECT_LT(Ev.Param, C.Shards);
    EXPECT_GE(Ev.DelayNs, C.SlowShardDelayNs / 2);
    EXPECT_LE(Ev.DelayNs, C.SlowShardDelayNs / 2 + C.SlowShardDelayNs);
  }
}

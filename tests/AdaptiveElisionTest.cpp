//===- tests/AdaptiveElisionTest.cpp - Adaptive elision controller --------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Exercises the failure-ratio-driven speculation policy
/// (core/ElisionController.h): the Elide -> Throttled -> Disabled ->
/// Reprobe hysteresis under a deterministic forced-failure workload, the
/// skip-budget backoff, and the adaptive retry budget with ExpBackoff.
///
/// The forced-failure trick: a write section on the same lock *inside* the
/// read-only body. On a speculative execution the inner write bumps the
/// lock-word counter, so the outer validation is guaranteed to fail; on
/// the fallback (holding) execution it is a plain recursive acquisition.
///
//===----------------------------------------------------------------------===//

#include "core/SoleroLock.h"

#include "runtime/SharedField.h"

#include <gtest/gtest.h>

using namespace solero;

namespace {

RuntimeConfig quietConfig() {
  RuntimeConfig C;
  C.StartEventBus = false;
  return C;
}

/// Tiny windows so transitions happen within a handful of sections.
AdaptiveElisionConfig tinyAdaptive() {
  AdaptiveElisionConfig A;
  A.Enabled = true;
  A.WindowAttempts = 8;
  A.ThrottleRatio = 0.30;
  A.DisableRatio = 0.60;
  A.ReenableRatio = 0.20;
  A.ElideMaxAttempts = 1; // 1 attempt/section: sections == attempts
  A.ReprobeWindow = 4;
  A.DisabledSkipMin = 4;
  A.DisabledSkipMax = 16;
  A.BackoffSpinsMin = 1;
  A.BackoffSpinsMax = 4;
  return A;
}

SoleroConfig tinyAdaptiveConfig() {
  SoleroConfig C;
  C.Adaptive = tinyAdaptive();
  return C;
}

class AdaptiveElisionTest : public ::testing::Test {
protected:
  AdaptiveElisionTest() : Ctx(quietConfig()), L(Ctx, tinyAdaptiveConfig()) {
    snap();
  }

  /// A section whose speculation always fails (see file comment).
  int64_t failingSection() {
    return L.synchronizedReadOnly(H, [&](ReadGuard &) {
      L.synchronizedWrite(H, [] {});
      return Data.read();
    });
  }

  /// A section whose speculation always succeeds.
  int64_t succeedingSection() {
    return L.synchronizedReadOnly(H, [&](ReadGuard &) { return Data.read(); });
  }

  ProtocolCounters delta() const {
    ProtocolCounters Now = ThreadRegistry::instance().totalCounters();
    ProtocolCounters D;
    D.ElisionAttempts = Now.ElisionAttempts - Base.ElisionAttempts;
    D.ElisionSuccesses = Now.ElisionSuccesses - Base.ElisionSuccesses;
    D.ElisionFailures = Now.ElisionFailures - Base.ElisionFailures;
    D.Fallbacks = Now.Fallbacks - Base.Fallbacks;
    D.ElisionSkips = Now.ElisionSkips - Base.ElisionSkips;
    D.SpecRetries = Now.SpecRetries - Base.SpecRetries;
    D.ThrottledAttempts = Now.ThrottledAttempts - Base.ThrottledAttempts;
    D.ReprobeAttempts = Now.ReprobeAttempts - Base.ReprobeAttempts;
    D.CtrlThrottles = Now.CtrlThrottles - Base.CtrlThrottles;
    D.CtrlDisables = Now.CtrlDisables - Base.CtrlDisables;
    D.CtrlReprobes = Now.CtrlReprobes - Base.CtrlReprobes;
    D.CtrlReenables = Now.CtrlReenables - Base.CtrlReenables;
    return D;
  }
  void snap() { Base = ThreadRegistry::instance().totalCounters(); }

  ElisionState state() { return L.controller().state(); }

  RuntimeContext Ctx;
  SoleroLock L;
  ObjectHeader H;
  SharedField<int64_t> Data{42};
  ProtocolCounters Base;
};

} // namespace

TEST_F(AdaptiveElisionTest, StartsInElideAndStaysThereOnSuccess) {
  EXPECT_EQ(state(), ElisionState::Elide);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(succeedingSection(), 42);
  EXPECT_EQ(state(), ElisionState::Elide);
  ProtocolCounters D = delta();
  EXPECT_EQ(D.ElisionSuccesses, 100u);
  EXPECT_EQ(D.ElisionSkips, 0u);
  EXPECT_EQ(D.CtrlDisables, 0u);
}

TEST_F(AdaptiveElisionTest, ForcedFailuresDisableElision) {
  // One full window of guaranteed failures: ratio 1.0 >= DisableRatio.
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(failingSection(), 42);
  EXPECT_EQ(state(), ElisionState::Disabled);
  ProtocolCounters D = delta();
  EXPECT_EQ(D.ElisionFailures, 8u);
  EXPECT_EQ(D.Fallbacks, 8u);
  EXPECT_EQ(D.CtrlDisables, 1u);
  EXPECT_EQ(D.ElisionSkips, 0u);

  // While Disabled, sections skip speculation entirely — no attempts, the
  // data still reads correctly under the real lock.
  snap();
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(succeedingSection(), 42);
  D = delta();
  EXPECT_EQ(D.ElisionSkips, 3u);
  EXPECT_EQ(D.ElisionAttempts, 0u);
  EXPECT_EQ(state(), ElisionState::Disabled);
}

TEST_F(AdaptiveElisionTest, ReprobeReenablesWhenFailuresStop) {
  for (int I = 0; I < 8; ++I)
    failingSection();
  ASSERT_EQ(state(), ElisionState::Disabled);

  // Burn the skip budget (DisabledSkipMin = 4: three skips, then the
  // fourth entry opens the re-probe window), then let the 4-sample
  // re-probe succeed.
  snap();
  for (int I = 0; I < 7; ++I)
    EXPECT_EQ(succeedingSection(), 42);
  EXPECT_EQ(state(), ElisionState::Elide);
  ProtocolCounters D = delta();
  EXPECT_EQ(D.ElisionSkips, 3u);
  EXPECT_EQ(D.CtrlReprobes, 1u);
  EXPECT_EQ(D.ReprobeAttempts, 4u);
  EXPECT_EQ(D.CtrlReenables, 1u);
}

TEST_F(AdaptiveElisionTest, FailedReprobeBacksOffExponentially) {
  for (int I = 0; I < 8; ++I)
    failingSection();
  ASSERT_EQ(state(), ElisionState::Disabled);

  // Keep failing through the skip budget (3 skips) and the whole re-probe
  // window (4 samples): the controller must disable again with a doubled
  // skip budget (DisabledSkipMin 4 -> 8).
  snap();
  for (int I = 0; I < 7; ++I)
    failingSection();
  EXPECT_EQ(state(), ElisionState::Disabled);
  ProtocolCounters D = delta();
  EXPECT_EQ(D.CtrlReprobes, 1u);
  EXPECT_EQ(D.CtrlDisables, 1u);
  EXPECT_EQ(L.controller().skipBudget(), 8);
}

TEST_F(AdaptiveElisionTest, MidRatioThrottlesThenRecovers) {
  // 3 failures + 5 successes fill the window at ratio 0.375: between
  // ThrottleRatio (0.30) and DisableRatio (0.60) -> Throttled.
  for (int I = 0; I < 3; ++I)
    failingSection();
  for (int I = 0; I < 5; ++I)
    succeedingSection();
  EXPECT_EQ(state(), ElisionState::Throttled);
  EXPECT_EQ(delta().CtrlThrottles, 1u);

  // The decayed window (4 attempts, 1 failure) plus 4 clean successes
  // re-fills it at ratio 1/8 <= ReenableRatio -> back to Elide.
  snap();
  for (int I = 0; I < 4; ++I)
    succeedingSection();
  EXPECT_EQ(state(), ElisionState::Elide);
  ProtocolCounters D = delta();
  EXPECT_EQ(D.ThrottledAttempts, 4u);
  EXPECT_EQ(D.CtrlReenables, 1u);
}

TEST_F(AdaptiveElisionTest, ElideRetriesWithBackoffBeforeFallingBack) {
  SoleroConfig C = tinyAdaptiveConfig();
  C.Adaptive.ElideMaxAttempts = 3;
  C.Adaptive.WindowAttempts = 1000; // keep the controller in Elide
  SoleroLock Retry(Ctx, C);
  snap();
  Retry.synchronizedReadOnly(H, [&](ReadGuard &) {
    Retry.synchronizedWrite(H, [] {});
    return 0;
  });
  ProtocolCounters D = delta();
  EXPECT_EQ(D.ElisionAttempts, 3u); // adaptive MaxSpecAttempts
  EXPECT_EQ(D.SpecRetries, 2u);     // attempts 2 and 3, after ExpBackoff
  EXPECT_EQ(D.ElisionFailures, 3u);
  EXPECT_EQ(D.Fallbacks, 1u);
}

TEST_F(AdaptiveElisionTest, AdaptiveOffReproducesFixedPaperPolicy) {
  SoleroLock Fixed(Ctx); // default config: controller off, 1 attempt
  snap();
  Fixed.synchronizedReadOnly(H, [&](ReadGuard &) {
    Fixed.synchronizedWrite(H, [] {});
    return 0;
  });
  ProtocolCounters D = delta();
  EXPECT_EQ(D.ElisionAttempts, 1u);
  EXPECT_EQ(D.ElisionFailures, 1u);
  EXPECT_EQ(D.Fallbacks, 1u);
  EXPECT_EQ(D.ElisionSkips, 0u);
  EXPECT_EQ(D.SpecRetries, 0u);
  EXPECT_EQ(D.CtrlDisables + D.CtrlThrottles + D.CtrlReprobes, 0u);
  EXPECT_EQ(Fixed.controller().state(), ElisionState::Elide);
}

TEST_F(AdaptiveElisionTest, ReadMostlySectionsFeedTheController) {
  // The read-mostly engine consults the same controller: forced upgrade
  // conflicts disable speculation there too. An upgrade CAS fails when
  // the recorded entry word is stale; force that with the same inner
  // write before acquireForWrite.
  for (int I = 0; I < 8; ++I)
    L.synchronizedReadMostly(H, [&](WriteIntent &W) {
      if (!W.holding())
        L.synchronizedWrite(H, [] {}); // invalidates the recorded word
      W.acquireForWrite();
      return 0;
    });
  EXPECT_EQ(state(), ElisionState::Disabled);
  snap();
  L.synchronizedReadMostly(H, [&](WriteIntent &W) {
    EXPECT_TRUE(W.holding()); // Disabled: entered holding the real lock
    return 0;
  });
  EXPECT_EQ(delta().ElisionSkips, 1u);
}

TEST_F(AdaptiveElisionTest, StateNamesAreStable) {
  EXPECT_STREQ(elisionStateName(ElisionState::Elide), "Elide");
  EXPECT_STREQ(elisionStateName(ElisionState::Throttled), "Throttled");
  EXPECT_STREQ(elisionStateName(ElisionState::Disabled), "Disabled");
  EXPECT_STREQ(elisionStateName(ElisionState::Reprobe), "Reprobe");
}

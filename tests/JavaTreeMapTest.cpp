//===- tests/JavaTreeMapTest.cpp - Red-black tree tests -------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "collections/JavaTreeMap.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace solero;

TEST(JavaTreeMap, PutGetRemoveBasics) {
  JavaTreeMap<int64_t, int64_t> M;
  EXPECT_EQ(M.size(), 0u);
  EXPECT_FALSE(M.firstKey().has_value());
  EXPECT_TRUE(M.put(5, 50));
  EXPECT_TRUE(M.put(3, 30));
  EXPECT_TRUE(M.put(8, 80));
  EXPECT_FALSE(M.put(5, 55)); // update
  EXPECT_EQ(M.get(5).value(), 55);
  EXPECT_EQ(M.firstKey().value(), 3);
  EXPECT_TRUE(M.remove(3));
  EXPECT_EQ(M.firstKey().value(), 5);
  EXPECT_EQ(M.size(), 2u);
}

TEST(JavaTreeMap, InOrderTraversalIsSorted) {
  JavaTreeMap<int64_t, int64_t> M;
  Xoshiro256StarStar Rng(7);
  for (int I = 0; I < 1000; ++I)
    M.put(static_cast<int64_t>(Rng.nextBounded(10000)), I);
  int64_t Prev = -1;
  M.forEachInOrder([&](int64_t K, int64_t) {
    EXPECT_GT(K, Prev);
    Prev = K;
  });
}

TEST(JavaTreeMap, InvariantsHoldUnderAscendingInsert) {
  JavaTreeMap<int64_t, int64_t> M;
  for (int64_t I = 0; I < 2000; ++I) {
    M.put(I, I);
    if (I % 97 == 0) {
      ASSERT_GT(M.checkRedBlackInvariants(), 0) << "after insert " << I;
    }
  }
  EXPECT_GT(M.checkRedBlackInvariants(), 0);
}

TEST(JavaTreeMap, InvariantsHoldUnderDescendingInsert) {
  JavaTreeMap<int64_t, int64_t> M;
  for (int64_t I = 2000; I > 0; --I)
    M.put(I, I);
  EXPECT_GT(M.checkRedBlackInvariants(), 0);
  EXPECT_EQ(M.firstKey().value(), 1);
}

TEST(JavaTreeMap, InvariantsHoldUnderRandomChurn) {
  JavaTreeMap<int64_t, int64_t> M;
  Xoshiro256StarStar Rng(13);
  for (int Op = 0; Op < 20000; ++Op) {
    int64_t Key = static_cast<int64_t>(Rng.nextBounded(300));
    if (Rng.nextPercent(50))
      M.put(Key, Key);
    else
      M.remove(Key);
    if (Op % 500 == 0) {
      ASSERT_GT(M.checkRedBlackInvariants(), 0) << "after op " << Op;
    }
  }
  EXPECT_GT(M.checkRedBlackInvariants(), 0);
}

TEST(JavaTreeMap, RandomizedAgainstReferenceModel) {
  JavaTreeMap<int64_t, int64_t> M;
  std::map<int64_t, int64_t> Ref;
  Xoshiro256StarStar Rng(4096);
  for (int Op = 0; Op < 50000; ++Op) {
    int64_t Key = static_cast<int64_t>(Rng.nextBounded(512));
    switch (Rng.nextBounded(3)) {
    case 0: {
      int64_t Val = static_cast<int64_t>(Rng.next());
      ASSERT_EQ(M.put(Key, Val), Ref.insert_or_assign(Key, Val).second);
      break;
    }
    case 1:
      ASSERT_EQ(M.remove(Key), Ref.erase(Key) == 1);
      break;
    default: {
      auto V = M.get(Key);
      auto It = Ref.find(Key);
      ASSERT_EQ(V.has_value(), It != Ref.end());
      if (V.has_value()) {
        ASSERT_EQ(*V, It->second);
      }
    }
    }
    ASSERT_EQ(M.size(), Ref.size());
    if (!Ref.empty() && Op % 1000 == 0) {
      ASSERT_EQ(M.firstKey().value(), Ref.begin()->first);
    }
  }
  EXPECT_GT(M.checkRedBlackInvariants(), 0);
}

TEST(JavaTreeMap, DrainToEmptyAndRefill) {
  JavaTreeMap<int64_t, int64_t> M;
  for (int Round = 0; Round < 10; ++Round) {
    for (int64_t I = 0; I < 200; ++I)
      M.put(I, I);
    ASSERT_GT(M.checkRedBlackInvariants(), 0);
    for (int64_t I = 0; I < 200; ++I)
      ASSERT_TRUE(M.remove(I));
    ASSERT_EQ(M.size(), 0u);
    ASSERT_FALSE(M.firstKey().has_value());
  }
}

//===- tests/ImageTest.cpp - Warm-image checkpoint/restore ----------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// Covers src/image/ (DESIGN.md §16): the serialization format's failure
/// modes (truncation, corruption, version skew — every one a Diagnostic,
/// never a crash), the CRaC-style checkpoint/restore protocol (ordering,
/// per-resource degradation, byte-identical round trips), controller and
/// BRAVO state rehydration, warm-translation adoption with fallback to
/// retranslation, the JSON-emitter regressions the warm_restart probe row
/// guards in CI, and a TSan-checked snapshot under live readers.
///
/// Every suite is prefixed "Image" so the CI TSan job's gtest_filter
/// picks all of them up with a single Image* pattern.
///
//===----------------------------------------------------------------------===//

#include "image/Checkpoint.h"
#include "image/Image.h"
#include "image/Resources.h"

#include "BenchCommon.h"
#include "core/SoleroLock.h"
#include "jit/Interpreter.h"
#include "jit/MethodBuilder.h"
#include "locks/BravoRwLock.h"
#include "runtime/SharedField.h"
#include "support/Rng.h"

#include <atomic>
#include <cstdio>
#include <thread>

#include <gtest/gtest.h>

using namespace solero;
using namespace solero::image;

namespace {

RuntimeConfig quietConfig() {
  RuntimeConfig C;
  C.StartEventBus = false;
  return C;
}

/// Tiny windows so controller transitions happen within a few sections
/// (same tuning as AdaptiveElisionTest).
AdaptiveElisionConfig tinyAdaptive() {
  AdaptiveElisionConfig A;
  A.Enabled = true;
  A.WindowAttempts = 8;
  A.ThrottleRatio = 0.30;
  A.DisableRatio = 0.60;
  A.ReenableRatio = 0.20;
  A.ElideMaxAttempts = 1;
  A.ReprobeWindow = 4;
  A.DisabledSkipMin = 4;
  A.DisabledSkipMax = 16;
  A.BackoffSpinsMin = 1;
  A.BackoffSpinsMax = 4;
  return A;
}

SoleroConfig tinyAdaptiveConfig() {
  SoleroConfig C;
  C.Adaptive = tinyAdaptive();
  return C;
}

// --- Format layer ----------------------------------------------------------

TEST(ImageFormat, PrimitivesRoundTrip) {
  ImageWriter W;
  W.u8(0xAB);
  W.u16(0xBEEF);
  W.u32(0xDEADBEEFu);
  W.u64(0x0123456789ABCDEFull);
  W.i32(-42);
  W.i64(-1234567890123ll);
  W.f64(2.5);
  W.str("solero");
  std::vector<uint8_t> Bytes = W.take();

  ImageReader R(Bytes);
  EXPECT_EQ(R.u8(), 0xAB);
  EXPECT_EQ(R.u16(), 0xBEEF);
  EXPECT_EQ(R.u32(), 0xDEADBEEFu);
  EXPECT_EQ(R.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(R.i32(), -42);
  EXPECT_EQ(R.i64(), -1234567890123ll);
  EXPECT_EQ(R.f64(), 2.5);
  EXPECT_EQ(R.str(), "solero");
  EXPECT_TRUE(R.ok());
}

TEST(ImageFormat, ReaderFailureIsSticky) {
  ImageWriter W;
  W.u16(7);
  std::vector<uint8_t> Bytes = W.take();
  ImageReader R(Bytes);
  EXPECT_EQ(R.u64(), 0u); // 2 bytes cannot satisfy 8
  EXPECT_TRUE(R.failed());
  EXPECT_EQ(R.u16(), 0u); // sticky: even the valid prefix reads as zero
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.remaining(), 0u);
}

std::vector<uint8_t> sampleImage() {
  ImageBuilder B;
  B.addBlob("alpha", {1, 2, 3, 4});
  B.addBlob("beta", {5, 6});
  return B.build();
}

TEST(ImageFormat, BuildLoadRoundTrip) {
  Diagnostic D;
  LoadedImage Img = LoadedImage::fromBytes(sampleImage(), D);
  ASSERT_TRUE(D.ok()) << D.render();
  ASSERT_TRUE(Img.loaded());
  EXPECT_EQ(Img.blobCount(), 2u);
  ASSERT_NE(Img.blob("alpha"), nullptr);
  EXPECT_EQ(*Img.blob("alpha"), (std::vector<uint8_t>{1, 2, 3, 4}));
  ASSERT_NE(Img.blob("beta"), nullptr);
  EXPECT_EQ(Img.blob("gamma"), nullptr);
}

TEST(ImageFormat, PropertyRandomBlobsRoundTrip) {
  SplitMix64 Rng(0x1Aa6E5EEDull);
  for (int Iter = 0; Iter < 50; ++Iter) {
    ImageBuilder B;
    unsigned NumBlobs = 1 + static_cast<unsigned>(Rng.next() % 5);
    std::vector<std::pair<std::string, std::vector<uint8_t>>> Expect;
    for (unsigned I = 0; I < NumBlobs; ++I) {
      std::string Name = "blob" + std::to_string(I);
      std::vector<uint8_t> Data(Rng.next() % 64);
      for (auto &Byte : Data)
        Byte = static_cast<uint8_t>(Rng.next());
      B.addBlob(Name, Data);
      Expect.emplace_back(Name, std::move(Data));
    }
    Diagnostic D;
    LoadedImage Img = LoadedImage::fromBytes(B.build(), D);
    ASSERT_TRUE(Img.loaded()) << D.render();
    ASSERT_EQ(Img.blobCount(), Expect.size());
    for (const auto &[Name, Data] : Expect) {
      ASSERT_NE(Img.blob(Name), nullptr);
      EXPECT_EQ(*Img.blob(Name), Data);
    }
  }
}

TEST(ImageFormat, TruncationFailsCleanly) {
  std::vector<uint8_t> Bytes = sampleImage();
  // Every possible truncation point must yield a diagnostic, not a crash.
  for (std::size_t Len = 0; Len < Bytes.size(); ++Len) {
    Diagnostic D;
    LoadedImage Img = LoadedImage::fromBytes(Bytes.data(), Len, D);
    EXPECT_FALSE(Img.loaded()) << "length " << Len;
    EXPECT_FALSE(D.ok());
    EXPECT_TRUE(D.Code == ImageDiag::ShortHeader ||
                D.Code == ImageDiag::Truncated)
        << "length " << Len << ": " << D.render();
  }
}

TEST(ImageFormat, ChecksumDetectsPayloadCorruption) {
  std::vector<uint8_t> Bytes = sampleImage();
  // Flip one bit in every payload byte in turn.
  for (std::size_t Pos = 24; Pos < Bytes.size(); ++Pos) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[Pos] ^= 0x01;
    Diagnostic D;
    LoadedImage Img = LoadedImage::fromBytes(Bad, D);
    EXPECT_FALSE(Img.loaded());
    EXPECT_EQ(D.Code, ImageDiag::ChecksumMismatch) << D.render();
  }
}

TEST(ImageFormat, VersionSkewRejected) {
  std::vector<uint8_t> Bytes = sampleImage();
  Bytes[4] ^= 0xFF; // version field (little-endian u32 after the magic)
  Diagnostic D;
  LoadedImage Img = LoadedImage::fromBytes(Bytes, D);
  EXPECT_FALSE(Img.loaded());
  EXPECT_EQ(D.Code, ImageDiag::VersionSkew) << D.render();
}

TEST(ImageFormat, BadMagicRejected) {
  std::vector<uint8_t> Bytes = sampleImage();
  Bytes[0] ^= 0xFF;
  Diagnostic D;
  LoadedImage Img = LoadedImage::fromBytes(Bytes, D);
  EXPECT_FALSE(Img.loaded());
  EXPECT_EQ(D.Code, ImageDiag::BadMagic);
}

TEST(ImageFormat, MissingFileDiagnosed) {
  Diagnostic D;
  LoadedImage Img =
      LoadedImage::fromFile("/nonexistent/solero-warm.img", D);
  EXPECT_FALSE(Img.loaded());
  EXPECT_EQ(D.Code, ImageDiag::MissingFile);
  EXPECT_NE(D.render().find("cold start"), std::string::npos);
}

// --- Checkpoint/restore protocol -------------------------------------------

/// Scripted resource: writes a fixed byte, records restore order, restores
/// successfully only when told to.
class ScriptedResource : public Resource {
public:
  ScriptedResource(std::string Name, uint8_t Byte, bool Accept,
                   std::vector<std::string> &Order)
      : Name_(std::move(Name)), Byte(Byte), Accept(Accept), Order(Order) {}
  std::string name() const override { return Name_; }
  void beforeCheckpoint(ImageWriter &W) override { W.u8(Byte); }
  bool afterRestore(ImageReader &R) override {
    Order.push_back(Name_);
    Seen = R.u8();
    return Accept && R.ok();
  }

  std::string Name_;
  uint8_t Byte;
  bool Accept;
  uint8_t Seen = 0;
  std::vector<std::string> &Order;
};

TEST(ImageCheckpoint, RestoreRunsInReverseRegistrationOrder) {
  std::vector<std::string> Order;
  ScriptedResource A("a", 1, true, Order), B("b", 2, true, Order),
      C("c", 3, true, Order);
  CheckpointContext Ctx;
  Ctx.registerResource(&A);
  Ctx.registerResource(&B);
  Ctx.registerResource(&C);
  RestoreReport Rep = Ctx.restoreBytes(Ctx.checkpointBytes());
  EXPECT_TRUE(Rep.allWarm(Ctx.resourceCount())) << Rep.summary();
  ASSERT_EQ(Order, (std::vector<std::string>{"c", "b", "a"}));
  EXPECT_EQ(A.Seen, 1);
  EXPECT_EQ(C.Seen, 3);
}

TEST(ImageCheckpoint, MissingBlobDegradesPerResource) {
  std::vector<std::string> Order;
  ScriptedResource A("a", 1, true, Order);
  CheckpointContext WriteCtx;
  WriteCtx.registerResource(&A);
  std::vector<uint8_t> Bytes = WriteCtx.checkpointBytes();

  ScriptedResource B("b", 2, true, Order); // no blob in the image
  CheckpointContext ReadCtx;
  ReadCtx.registerResource(&A);
  ReadCtx.registerResource(&B);
  RestoreReport Rep = ReadCtx.restoreBytes(Bytes);
  EXPECT_TRUE(Rep.ImageOk);
  EXPECT_EQ(Rep.Restored, 1u);
  EXPECT_EQ(Rep.Missing, 1u);
  EXPECT_FALSE(Rep.allWarm(ReadCtx.resourceCount()));
  ASSERT_EQ(Rep.Diags.size(), 1u);
}

TEST(ImageCheckpoint, RejectedBlobCountsAndOthersRestore) {
  std::vector<std::string> Order;
  ScriptedResource A("a", 1, true, Order), B("b", 2, false, Order);
  CheckpointContext Ctx;
  Ctx.registerResource(&A);
  Ctx.registerResource(&B);
  RestoreReport Rep = Ctx.restoreBytes(Ctx.checkpointBytes());
  EXPECT_TRUE(Rep.ImageOk);
  EXPECT_EQ(Rep.Restored, 1u);
  EXPECT_EQ(Rep.Rejected, 1u);
  EXPECT_NE(Rep.summary().find("rejected"), std::string::npos);
}

TEST(ImageCheckpoint, StructurallyBadImageRestoresNothing) {
  std::vector<std::string> Order;
  ScriptedResource A("a", 1, true, Order);
  CheckpointContext Ctx;
  Ctx.registerResource(&A);
  std::vector<uint8_t> Bytes = Ctx.checkpointBytes();
  Bytes[Bytes.size() - 1] ^= 0x10; // payload corruption
  RestoreReport Rep = Ctx.restoreBytes(Bytes);
  EXPECT_FALSE(Rep.ImageOk);
  EXPECT_EQ(Rep.Restored, 0u);
  EXPECT_TRUE(Order.empty()); // afterRestore never ran
  ASSERT_FALSE(Rep.Diags.empty());
  EXPECT_EQ(Rep.Diags[0].Code, ImageDiag::ChecksumMismatch);
}

// --- Controller state ------------------------------------------------------

class ImageControllerTest : public ::testing::Test {
protected:
  ImageControllerTest() : Ctx(quietConfig()), L(Ctx, tinyAdaptiveConfig()) {}

  /// Speculation-doomed section (write on the same lock inside the body).
  void failingSection() {
    L.synchronizedReadOnly(H, [&](ReadGuard &) {
      L.synchronizedWrite(H, [] {});
      return Data.read();
    });
  }

  void succeedingSection() {
    L.synchronizedReadOnly(H, [&](ReadGuard &) { return Data.read(); });
  }

  void driveTo(ElisionState S) {
    for (int I = 0; I < 4096 && L.controller().state() != S; ++I)
      failingSection();
    ASSERT_EQ(L.controller().state(), S);
  }

  RuntimeContext Ctx;
  SoleroLock L;
  ObjectHeader H;
  SharedField<int64_t> Data{7};
};

TEST_F(ImageControllerTest, SnapshotRestoreSnapshotIsByteIdentical) {
  driveTo(ElisionState::Disabled);
  ImageWriter W1;
  writeControllerState(W1, L.controller());

  SoleroLock Fresh(Ctx, tinyAdaptiveConfig());
  ImageReader R(W1.data());
  ASSERT_TRUE(readControllerState(R, Fresh.controller()));
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(Fresh.controller().state(), ElisionState::Disabled);

  ImageWriter W2;
  writeControllerState(W2, Fresh.controller());
  EXPECT_EQ(W1.data(), W2.data()); // the property the format promises
}

TEST_F(ImageControllerTest, RestoredDisabledLockResumesSkipping) {
  driveTo(ElisionState::Disabled);
  ElisionSnapshot S = L.controller().snapshot();

  SoleroLock Fresh(Ctx, tinyAdaptiveConfig());
  ASSERT_TRUE(Fresh.controller().restore(S));
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();
  Fresh.synchronizedReadOnly(H, [&](ReadGuard &) { return Data.read(); });
  ProtocolCounters After = ThreadRegistry::instance().totalCounters();
  // The restored lock skips speculation from the first section — no cold
  // re-learning of the write phase (the bug the seeding fix closes).
  EXPECT_EQ(After.ElisionAttempts - Before.ElisionAttempts, 0u);
  EXPECT_EQ(After.ElisionSkips - Before.ElisionSkips, 1u);
}

TEST_F(ImageControllerTest, RestoreClampsPreFixZeroSkipWindow) {
  // Images written before the SkipWindow seeding fix can carry 0 for a
  // Disabled lock; restore must clamp into [SkipMin, SkipMax], not adopt
  // a zero window.
  ElisionSnapshot S;
  S.State = static_cast<uint32_t>(ElisionState::Disabled);
  S.Attempts = 8;
  S.Failures = 6;
  S.Skip = 2;
  S.SkipWindow = 0;
  ASSERT_TRUE(L.controller().restore(S));
  EXPECT_EQ(L.controller().state(), ElisionState::Disabled);
  EXPECT_EQ(L.controller().skipWindow(), tinyAdaptive().DisabledSkipMin);
  EXPECT_GE(L.controller().skipBudget(), 1);
}

TEST_F(ImageControllerTest, RestoreRejectsInconsistentSnapshots) {
  ElisionSnapshot Garbage;
  Garbage.State = 9; // no such state
  EXPECT_FALSE(L.controller().restore(Garbage));
  EXPECT_EQ(L.controller().state(), ElisionState::Elide);

  ElisionSnapshot Skewed;
  Skewed.State = static_cast<uint32_t>(ElisionState::Throttled);
  Skewed.Attempts = 3;
  Skewed.Failures = 9; // failures cannot exceed attempts
  EXPECT_FALSE(L.controller().restore(Skewed));
  EXPECT_EQ(L.controller().state(), ElisionState::Elide);
}

TEST_F(ImageControllerTest, RestoredReprobeFinishesItsWindow) {
  ElisionSnapshot S;
  S.State = static_cast<uint32_t>(ElisionState::Reprobe);
  S.Attempts = 4;
  S.Failures = 2;
  S.ReprobeLeft = 0; // exhausted budget: must clamp to >= 1, not wedge
  S.SkipWindow = 8;
  ASSERT_TRUE(L.controller().restore(S));
  EXPECT_EQ(L.controller().state(), ElisionState::Reprobe);
  // Clean sections must eventually re-enable elision.
  for (int I = 0; I < 64 && L.controller().state() != ElisionState::Elide; ++I)
    succeedingSection();
  EXPECT_EQ(L.controller().state(), ElisionState::Elide);
}

// --- BRAVO state -----------------------------------------------------------

TEST(ImageBravo, BiasRoundTrips) {
  RuntimeContext Ctx(quietConfig());
  BravoRwLock A(Ctx);
  A.synchronizedReadOnly([](ReadGuard &) { return 0; }); // sets the bias
  ASSERT_TRUE(A.readBiased());
  ImageWriter W;
  writeBravoState(W, A);

  BravoRwLock B(Ctx);
  ASSERT_FALSE(B.readBiased());
  ImageReader R(W.data());
  ASSERT_TRUE(readBravoState(R, B));
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(B.readBiased());
}

TEST(ImageBravo, RestoreRefusedWhileReadersActive) {
  RuntimeContext Ctx(quietConfig());
  BravoRwLock L(Ctx);
  BravoSnapshot S;
  S.RBias = true;
  std::atomic<bool> InSection{false}, Release{false};
  std::thread Reader([&] {
    L.synchronizedReadOnly([&](ReadGuard &) {
      InSection.store(true);
      while (!Release.load())
        std::this_thread::yield();
      return 0;
    });
  });
  while (!InSection.load())
    std::this_thread::yield();
  EXPECT_FALSE(L.restore(S)); // not quiescent: refuse, stay cold
  Release.store(true);
  Reader.join();
  EXPECT_TRUE(L.restore(S)); // quiescent now
  EXPECT_TRUE(L.readBiased());
}

// --- Warm interpreter state ------------------------------------------------

/// mostly(obj, doWrite): statically Writing, ReadMostly once profiled —
/// the same guest warm_restart measures.
jit::Module buildMostlyGuest() {
  jit::MethodBuilder B("mostly", 2, 2);
  auto Skip = B.newLabel();
  B.load(0).syncEnter();
  B.load(1).jumpIfZero(Skip);
  B.load(0).constant(1).putField(1);
  B.bind(Skip);
  B.load(0).getField(0).pop();
  B.syncExit();
  B.constant(0).ret();
  jit::Module M;
  M.addMethod(B.take());
  return M;
}

TEST(ImageInterp, RestoredWarmStateExecutesAndElides) {
  RuntimeContext Ctx(quietConfig());
  jit::Interpreter::Options Warm;
  Warm.CollectProfile = true;
  jit::Interpreter Donor(Ctx, buildMostlyGuest(), Warm);
  jit::GuestObject *DObj = Donor.allocateObject();
  DObj->F[0].write(11);
  for (int I = 0; I < 200; ++I)
    Donor.invoke("mostly", {jit::Value::ofRef(DObj), jit::Value::ofInt(0)});
  Donor.invoke("mostly", {jit::Value::ofRef(DObj), jit::Value::ofInt(1)});
  Donor.reclassifyWithProfile();
  Donor.endProfiling();
  ASSERT_EQ(Donor.classification().regions(0)[0].Kind, jit::RegionKind::ReadMostly);

  CheckpointContext Ckpt;
  InterpreterWarmState DonorRes("jit.warm", Donor);
  Ckpt.registerResource(&DonorRes);
  std::vector<uint8_t> Bytes = Ckpt.checkpointBytes();

  jit::Interpreter Fresh(Ctx, buildMostlyGuest(), jit::Interpreter::Options());
  ASSERT_EQ(Fresh.classification().regions(0)[0].Kind, jit::RegionKind::Writing);
  CheckpointContext Rest;
  InterpreterWarmState FreshRes("jit.warm", Fresh);
  Rest.registerResource(&FreshRes);
  RestoreReport Rep = Rest.restoreBytes(Bytes);
  ASSERT_TRUE(Rep.allWarm(Rest.resourceCount())) << Rep.summary();
  // The restored engine carries the profiled classification...
  EXPECT_EQ(Fresh.classification().regions(0)[0].Kind, jit::RegionKind::ReadMostly);

  // ...executes identically to the donor (differential check)...
  jit::GuestObject *FObj = Fresh.allocateObject();
  FObj->F[0].write(11);
  ProtocolCounters Before = ThreadRegistry::instance().totalCounters();
  for (int I = 0; I < 8; ++I) {
    int64_t DoWrite = (I == 5) ? 1 : 0;
    int64_t Got =
        Fresh
            .invoke("mostly", {jit::Value::ofRef(FObj),
                               jit::Value::ofInt(DoWrite)})
            .asInt();
    int64_t Want =
        Donor
            .invoke("mostly", {jit::Value::ofRef(DObj),
                               jit::Value::ofInt(DoWrite)})
            .asInt();
    EXPECT_EQ(Got, Want);
  }
  EXPECT_EQ(FObj->F[1].read(), DObj->F[1].read());
  // ...and elides from the very first section (no reprofiling phase).
  ProtocolCounters After = ThreadRegistry::instance().totalCounters();
  EXPECT_GE(After.ElisionSuccesses - Before.ElisionSuccesses, 8u);
}

TEST(ImageInterp, MismatchedModuleFallsBackToRetranslation) {
  RuntimeContext Ctx(quietConfig());
  jit::Interpreter::Options Warm;
  Warm.CollectProfile = true;
  jit::Interpreter Donor(Ctx, buildMostlyGuest(), Warm);
  jit::GuestObject *DObj = Donor.allocateObject();
  for (int I = 0; I < 100; ++I)
    Donor.invoke("mostly", {jit::Value::ofRef(DObj), jit::Value::ofInt(0)});
  Donor.reclassifyWithProfile();
  Donor.endProfiling();
  CheckpointContext Ckpt;
  InterpreterWarmState DonorRes("jit.warm", Donor);
  Ckpt.registerResource(&DonorRes);
  std::vector<uint8_t> Bytes = Ckpt.checkpointBytes();

  // A *different* guest: the blob decodes but validation must reject it.
  jit::MethodBuilder B("other", 1, 2);
  B.load(0).syncEnter();
  B.load(0).getField(0).store(1);
  B.syncExit();
  B.load(1).ret();
  jit::Module Other;
  Other.addMethod(B.take());
  jit::Interpreter Victim(Ctx, std::move(Other), jit::Interpreter::Options());
  CheckpointContext Rest;
  InterpreterWarmState VictimRes("jit.warm", Victim);
  Rest.registerResource(&VictimRes);
  RestoreReport Rep = Rest.restoreBytes(Bytes);
  EXPECT_TRUE(Rep.ImageOk);
  EXPECT_EQ(Rep.Rejected, 1u); // adoption refused, cold state kept
  // The fallback *is* the fresh translation: execution still works.
  jit::GuestObject *VObj = Victim.allocateObject();
  VObj->F[0].write(21);
  EXPECT_EQ(Victim.invoke("other", {jit::Value::ofRef(VObj)}).asInt(), 21);
}

// --- JSON emitter regressions ----------------------------------------------

std::string writtenJson(const JsonReport &Json) {
  std::string Path = ::testing::TempDir() + "/solero_image_json_test.json";
  EXPECT_TRUE(Json.write(Path));
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr);
  std::string Doc;
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Doc.append(Buf, N);
  std::fclose(F);
  std::remove(Path.c_str());
  return Doc;
}

TEST(ImageJson, NonFiniteValuesEmitZero) {
  JsonReport Json("image_test");
  BenchResult R;
  R.OpsPerSec = std::numeric_limits<double>::quiet_NaN();
  Json.add("v", "P", 1, R,
           {{"a", std::numeric_limits<double>::infinity()},
            {"b", -std::numeric_limits<double>::infinity()}});
  std::string Doc = writtenJson(Json);
  // The old emitter printed literal nan/inf here, corrupting the file.
  EXPECT_EQ(Doc.find("nan"), std::string::npos) << Doc;
  EXPECT_EQ(Doc.find("inf"), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"ops_per_sec\": 0"), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"a\": 0"), std::string::npos) << Doc;
}

TEST(ImageJson, ControlCharactersEscapedNotDropped) {
  JsonReport Json("image_test");
  BenchResult R;
  Json.add(std::string("a\001b\tc"), "P\037", 1, R);
  std::string Doc = writtenJson(Json);
  // The old emitter silently dropped control characters.
  EXPECT_NE(Doc.find("a\\u0001b\\u0009c"), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("P\\u001F"), std::string::npos) << Doc;
  EXPECT_EQ(Doc.find('\001'), std::string::npos);
}

TEST(ImageJson, ZeroAttemptWindowHasFiniteFailureRatio) {
  BenchResult R; // no attempts recorded at all
  EXPECT_EQ(R.failureRatio(), 0.0);
  R.Delta.ElisionFailures = RelaxedCounter{};
  EXPECT_TRUE(std::isfinite(R.failureRatio()));
}

// --- Concurrency: snapshot under live readers (TSan) -----------------------

TEST(ImageConcurrency, SnapshotUnderLiveReadersIsRaceFree) {
  RuntimeContext Ctx(quietConfig());
  SoleroLock L(Ctx, tinyAdaptiveConfig());
  ObjectHeader H;
  SharedField<int64_t> Data{3};
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Readers;
  for (int T = 0; T < 2; ++T)
    Readers.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire))
        L.synchronizedReadOnly(H, [&](ReadGuard &) { return Data.read(); });
    });
  // Concurrent snapshots are documented safe (all-relaxed cell); only a
  // *restore* needs quiescence. TSan verifies the claim.
  for (int I = 0; I < 1000; ++I) {
    ElisionSnapshot S = L.controller().snapshot();
    ASSERT_LE(S.State, 3u);
  }
  Stop.store(true, std::memory_order_release);
  for (auto &R : Readers)
    R.join();

  // Quiesced now: restore of a live snapshot must succeed.
  ElisionSnapshot S = L.controller().snapshot();
  EXPECT_TRUE(L.controller().restore(S));
}

} // namespace

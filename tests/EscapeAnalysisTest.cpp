//===- tests/EscapeAnalysisTest.cpp - In-region allocation facts ----------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "jit/analysis/EscapeAnalysis.h"

#include "jit/Interpreter.h"
#include "jit/MethodBuilder.h"

#include <gtest/gtest.h>

using namespace solero;
using namespace solero::jit;

namespace {

Module moduleOf(Method M, uint32_t NumStatics = 4) {
  Module Mod;
  Mod.NumStatics = NumStatics;
  Mod.addMethod(std::move(M));
  return Mod;
}

/// Event bus off: a mid-run poll-flag tick would abort a speculation and
/// skew the elision counters the end-to-end test asserts on.
RuntimeContext &ctx() {
  static RuntimeContext *Ctx = [] {
    RuntimeConfig C;
    C.StartEventBus = false;
    return new RuntimeContext(C);
  }();
  return *Ctx;
}

/// synchronized (this) { h = new; h.F0 = this.F0; h.F1 = this.F1 + 1;
/// return-local h.F0 + h.F1 } — the "allocate a result holder, fill it,
/// read it back" shape the escape analysis exists for.
Method buildSnapshot() {
  MethodBuilder B("snapshot", 1, 3);
  B.load(0).syncEnter();                      // pc 0, 1
  B.newObject().store(1);                     // pc 2, 3
  B.load(1).load(0).getField(0).putField(0);  // pc 4..7
  B.load(1).load(0).getField(1).constant(1).add().putField(1); // pc 8..13
  B.load(1).getField(0).load(1).getField(1).add().store(2);    // pc 14..19
  B.syncExit();                               // pc 20
  B.load(2).ret();
  return B.take();
}

} // namespace

TEST(EscapeAnalysis, ReturnEscapes) {
  MethodBuilder B("retObj", 0, 0);
  B.newObject().ret(); // pc 0, 1
  Module M = moduleOf(B.take());
  EscapeAnalysis E(M, 0);
  auto It = E.escapes().find(0);
  ASSERT_NE(It, E.escapes().end());
  EXPECT_EQ(It->second.Pc, 1u);
  EXPECT_EQ(It->second.Way, EscapeWay::Returned);
}

TEST(EscapeAnalysis, FieldStoreEscapes) {
  // this.R[0] = new — the fresh object is published to the heap.
  MethodBuilder B("publish", 1, 1);
  B.load(0).newObject().putRef(0); // pc 0, 1, 2
  B.constant(0).ret();
  Module M = moduleOf(B.take());
  EscapeAnalysis E(M, 0);
  auto It = E.escapes().find(1);
  ASSERT_NE(It, E.escapes().end());
  EXPECT_EQ(It->second.Pc, 2u);
  EXPECT_EQ(It->second.Way, EscapeWay::StoredToHeap);
}

TEST(EscapeAnalysis, InvokeArgumentEscapes) {
  Module M;
  M.NumStatics = 0;
  {
    MethodBuilder Callee("sink", 1, 1);
    Callee.constant(0).ret();
    M.addMethod(Callee.take());
  }
  {
    MethodBuilder Caller("caller", 0, 0);
    Caller.newObject().invoke(0).ret(); // pc 0, 1
    M.addMethod(Caller.take());
  }
  EscapeAnalysis E(M, 1);
  auto It = E.escapes().find(0);
  ASSERT_NE(It, E.escapes().end());
  EXPECT_EQ(It->second.Pc, 1u);
  EXPECT_EQ(It->second.Way, EscapeWay::InvokeArg);
}

TEST(EscapeAnalysis, AliasThroughLocalStaysRegionLocal) {
  // The holder round-trips through a local; the write via the alias is
  // still provably to the in-region allocation.
  MethodBuilder B("alias", 1, 2);
  B.load(0).syncEnter();          // pc 0, 1
  B.newObject().store(1);         // pc 2, 3
  B.load(1).constant(5).putField(0); // pc 4, 5, 6
  B.load(1).getField(0).pop();    // pc 7, 8, 9
  B.syncExit().constant(0).ret();
  Module M = moduleOf(B.take());
  EscapeAnalysis E(M, 0);
  SyncRegion R{1, 10};
  EXPECT_TRUE(E.writeIsRegionLocal(6, R));
  EXPECT_EQ(E.writeBaseAllocPc(6), 2u);
  EXPECT_FALSE(E.writeBaseEscaped(6));
  EXPECT_TRUE(E.escapes().empty());
}

TEST(EscapeAnalysis, WriteAfterAliasedPublishIsEscaped) {
  // The local alias is published (this.R[0] = h) before the write: the
  // write's base is a known fresh allocation that has escaped.
  MethodBuilder B("pubThenWrite", 1, 2);
  B.load(0).syncEnter();             // pc 0, 1
  B.newObject().store(1);            // pc 2, 3
  B.load(0).load(1).putRef(0);       // pc 4, 5, 6 — publish
  B.load(1).constant(5).putField(0); // pc 7, 8, 9 — write after escape
  B.syncExit().constant(0).ret();
  Module M = moduleOf(B.take());
  EscapeAnalysis E(M, 0);
  SyncRegion R{1, 10};
  EXPECT_FALSE(E.writeIsRegionLocal(9, R));
  EXPECT_TRUE(E.writeBaseEscaped(9));
  EXPECT_EQ(E.writeBaseAllocPc(9), 2u);
}

TEST(EscapeAnalysis, AllocationOutsideRegionIsNotRegionLocal) {
  // Fresh and unescaped, but allocated before SyncEnter: a re-executed
  // region body would observe its own earlier write, so only allocations
  // from strictly inside the region qualify.
  MethodBuilder B("preAlloc", 1, 2);
  B.newObject().store(1);            // pc 0, 1
  B.load(0).syncEnter();             // pc 2, 3
  B.load(1).constant(5).putField(0); // pc 4, 5, 6
  B.syncExit().constant(0).ret();
  Module M = moduleOf(B.take());
  EscapeAnalysis E(M, 0);
  SyncRegion R{3, 7};
  EXPECT_FALSE(E.writeIsRegionLocal(6, R));
  EXPECT_FALSE(E.writeBaseEscaped(6)); // not escaped — just not in-region
  EXPECT_EQ(E.writeBaseAllocPc(6), 0u);
}

TEST(EscapeClassifier, SnapshotRegionFlipsWritingToReadOnly) {
  Module M = moduleOf(buildSnapshot());

  ClassifierOptions Off;
  Off.EscapeAnalysis = false;
  ClassifiedModule Plain = classifyModule(M, nullptr, Off);
  EXPECT_EQ(Plain.regions(0)[0].Kind, RegionKind::Writing);
  EXPECT_EQ(Plain.regions(0)[0].primary().Code, DiagCode::HeapWrite);

  ClassifiedModule Refined = classifyModule(M);
  const ClassifiedRegion &R = Refined.regions(0)[0];
  EXPECT_EQ(R.Kind, RegionKind::ReadOnly);
  EXPECT_EQ(R.primary().Code, DiagCode::NoWritesOrSideEffects);
  // Both holder writes are recorded as benign notes with provenance.
  int FreshNotes = 0;
  for (const Diagnostic &D : R.Diags)
    if (D.Code == DiagCode::FreshWrite) {
      ++FreshNotes;
      EXPECT_EQ(D.AllocPc, 2u);
    }
  EXPECT_EQ(FreshNotes, 2);
  EXPECT_TRUE(Refined.writeIsBenign(0, 7));
  EXPECT_TRUE(Refined.writeIsBenign(0, 13));
  EXPECT_FALSE(Refined.writeIsBenign(0, 4));
}

TEST(EscapeClassifier, EscapingHolderStaysWritingWithDiagnostic) {
  // synchronized { h = new; this.R[0] = h; h.F0 = 1; } — publishing the
  // holder disqualifies it; the write gets the escape diagnostic with
  // both pcs, and the rendering carries the fix hint.
  MethodBuilder B("leaky", 1, 2);
  B.load(0).syncEnter();             // pc 0, 1
  B.newObject().store(1);            // pc 2, 3
  B.load(0).load(1).putRef(0);       // pc 4, 5, 6
  B.load(1).constant(1).putField(0); // pc 7, 8, 9
  B.syncExit().constant(0).ret();
  Module M = moduleOf(B.take());
  ClassifiedModule C = classifyModule(M);
  const ClassifiedRegion &R = C.regions(0)[0];
  EXPECT_EQ(R.Kind, RegionKind::Writing);
  // The putRef publishes to an external base — a plain heap write — and
  // is the first blocker; the aliased write after it carries the
  // escape-specific code.
  EXPECT_EQ(R.primary().Code, DiagCode::HeapWrite);
  bool SawEscapeDiag = false;
  for (const Diagnostic &D : R.Diags)
    if (D.Code == DiagCode::EscapingFreshWrite) {
      SawEscapeDiag = true;
      EXPECT_EQ(D.Pc, 9u);
      EXPECT_EQ(D.AllocPc, 2u);
      std::string Msg = renderDiagnostic(M, D);
      EXPECT_NE(Msg.find("write at pc 9"), std::string::npos);
      EXPECT_NE(Msg.find("escaping object from pc 2"), std::string::npos);
      EXPECT_NE(Msg.find("@SoleroReadOnly"), std::string::npos);
    }
  EXPECT_TRUE(SawEscapeDiag);
  EXPECT_FALSE(C.writeIsBenign(0, 9));
}

TEST(EscapeClassifier, FreshArrayFillIsReadOnly) {
  // synchronized { a = new int[4]; a[0] = x; s = a[0]; } — astore into a
  // region-local array is as benign as a field write.
  MethodBuilder B("arrSnap", 1, 3);
  B.load(0).syncEnter();                       // pc 0, 1
  B.constant(4).newArray().store(1);           // pc 2, 3, 4
  B.load(1).constant(0).load(0).getField(0).astore(); // pc 5..9
  B.load(1).constant(0).aload().store(2);      // pc 10..13
  B.syncExit();
  B.load(2).ret();
  Module M = moduleOf(B.take());
  ClassifiedModule C = classifyModule(M);
  EXPECT_EQ(C.regions(0)[0].Kind, RegionKind::ReadOnly);
  EXPECT_TRUE(C.writeIsBenign(0, 9));
}

TEST(EscapeClassifier, SnapshotExecutesElidedOnBothEngines) {
  // End-to-end: the reclassified snapshot region actually runs down the
  // Figure 7 elided path, and both engines agree on results and elision
  // statistics.
  for (DispatchMode Mode : {DispatchMode::Threaded, DispatchMode::Reference}) {
    Interpreter::Options Opts;
    Opts.Mode = Mode;
    Interpreter I(ctx(), moduleOf(buildSnapshot()), Opts);
    EXPECT_EQ(I.classification().regions(0)[0].Kind, RegionKind::ReadOnly);
    GuestObject *Obj = I.allocateObject();
    Obj->F[0].write(40);
    Obj->F[1].write(1);
    ProtocolCounters Before = ThreadRegistry::instance().totalCounters();
    for (int N = 0; N < 10; ++N)
      EXPECT_EQ(I.invoke("snapshot", {Value::ofRef(Obj)}).asInt(), 42);
    ProtocolCounters After = ThreadRegistry::instance().totalCounters();
    EXPECT_EQ(After.ReadOnlyEntries - Before.ReadOnlyEntries, 10u);
    EXPECT_EQ(After.ElisionSuccesses - Before.ElisionSuccesses, 10u);
    // The holder never reaches shared state: the guest object is intact.
    EXPECT_EQ(Obj->F[0].read(), 40);
    EXPECT_EQ(Obj->F[1].read(), 1);
    EXPECT_EQ(Obj->R[0].read(), nullptr);
  }
}

TEST(EscapeClassifier, AblationOptionDisablesBenignWrites) {
  // With EscapeAnalysis off the same program takes the conventional lock
  // and still computes the same answer.
  Interpreter::Options Opts;
  Opts.Classifier.EscapeAnalysis = false;
  Interpreter I(ctx(), moduleOf(buildSnapshot()), Opts);
  EXPECT_EQ(I.classification().regions(0)[0].Kind, RegionKind::Writing);
  GuestObject *Obj = I.allocateObject();
  Obj->F[0].write(40);
  Obj->F[1].write(1);
  EXPECT_EQ(I.invoke("snapshot", {Value::ofRef(Obj)}).asInt(), 42);
}

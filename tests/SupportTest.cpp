//===- tests/SupportTest.cpp - Support library unit tests -----------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "support/Backoff.h"
#include "support/Barrier.h"
#include "support/CliParser.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace solero;

TEST(Rng, SplitMix64IsDeterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, SplitMix64KnownVector) {
  // Reference values for seed 1234567 from the published SplitMix64 code.
  SplitMix64 R(1234567);
  EXPECT_EQ(R.next(), 6457827717110365317ULL);
  EXPECT_EQ(R.next(), 3203168211198807973ULL);
}

TEST(Rng, XoshiroBoundedStaysInRange) {
  Xoshiro256StarStar R(7);
  for (int I = 0; I < 10000; ++I) {
    EXPECT_LT(R.nextBounded(17), 17u);
    EXPECT_LT(R.nextBounded(1), 1u);
  }
}

TEST(Rng, XoshiroPercentIsRoughlyCalibrated) {
  Xoshiro256StarStar R(99);
  int Hits = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Hits += R.nextPercent(5) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.05, 0.01);
}

TEST(Rng, XoshiroDoubleInUnitInterval) {
  Xoshiro256StarStar R(3);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Stats, RunningStatsBasics) {
  RunningStats S;
  for (double X : {1.0, 2.0, 3.0, 4.0})
    S.add(X);
  EXPECT_EQ(S.count(), 4u);
  EXPECT_DOUBLE_EQ(S.mean(), 2.5);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 4.0);
  EXPECT_NEAR(S.stddev(), 1.2909944, 1e-6);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> V = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.25), 20.0);
}

TEST(Stats, QuantileSingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.99), 7.0);
}

TEST(Backoff, ExpBackoffDoublesAndSaturates) {
  ExpBackoff B(/*MinSpins=*/4, /*MaxSpins=*/32);
  EXPECT_EQ(B.currentSpins(), 4);
  B.pause();
  EXPECT_EQ(B.currentSpins(), 8);
  B.pause();
  EXPECT_EQ(B.currentSpins(), 16);
  B.pause();
  EXPECT_EQ(B.currentSpins(), 32);
  B.pause(); // clamped at MaxSpins, never overshoots
  EXPECT_EQ(B.currentSpins(), 32);
}

TEST(Backoff, ExpBackoffResetReturnsToMin) {
  ExpBackoff B(8, 1024);
  for (int I = 0; I < 20; ++I)
    B.pause();
  EXPECT_EQ(B.currentSpins(), 1024);
  B.reset();
  EXPECT_EQ(B.currentSpins(), 8);
}

TEST(Backoff, ExpBackoffSanitizesDegenerateBounds) {
  ExpBackoff Zero(0, 0); // both clamp to at least one spin
  EXPECT_EQ(Zero.currentSpins(), 1);
  Zero.pause();
  EXPECT_EQ(Zero.currentSpins(), 1);

  ExpBackoff Inverted(64, 2); // Max below Min clamps to Min
  EXPECT_EQ(Inverted.currentSpins(), 64);
  Inverted.pause();
  EXPECT_EQ(Inverted.currentSpins(), 64);
}

TEST(Stats, SafeRatioHandlesZeroDenominator) {
  EXPECT_DOUBLE_EQ(safeRatio(3, 4), 0.75);
  EXPECT_DOUBLE_EQ(safeRatio(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(safeRatio(7, 0), 0.0);
}

TEST(CliParser, ParsesAllForms) {
  const char *Argv[] = {"prog",        "--threads=8",  "--name=hashmap",
                        "--verbose",   "positional",   "--ratio=0.5",
                        "--list=1,2,4"};
  CliParser P(7, const_cast<char **>(Argv));
  EXPECT_EQ(P.getInt("threads", 1), 8);
  EXPECT_EQ(P.getString("name", ""), "hashmap");
  EXPECT_TRUE(P.getBool("verbose", false));
  EXPECT_FALSE(P.getBool("quiet", false));
  EXPECT_DOUBLE_EQ(P.getDouble("ratio", 0.0), 0.5);
  ASSERT_EQ(P.positional().size(), 1u);
  EXPECT_EQ(P.positional()[0], "positional");
  std::vector<int> L = P.getIntList("list", {});
  ASSERT_EQ(L.size(), 3u);
  EXPECT_EQ(L[2], 4);
}

TEST(CliParser, DefaultsWhenAbsent) {
  const char *Argv[] = {"prog"};
  CliParser P(1, const_cast<char **>(Argv));
  EXPECT_EQ(P.getInt("threads", 4), 4);
  std::vector<int> L = P.getIntList("threads", {1, 2});
  EXPECT_EQ(L.size(), 2u);
}

TEST(TablePrinter, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::percent(0.1234, 1), "12.3%");
}

TEST(Barrier, ReleasesAllParticipants) {
  constexpr int N = 4;
  SpinBarrier B(N);
  std::atomic<int> Phase0{0}, Phase1{0};
  std::vector<std::thread> Ts;
  for (int I = 0; I < N; ++I)
    Ts.emplace_back([&] {
      Phase0.fetch_add(1);
      B.arriveAndWait();
      // Everyone must have finished phase 0 before any thread passes.
      EXPECT_EQ(Phase0.load(), N);
      Phase1.fetch_add(1);
      B.arriveAndWait(); // reusable
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Phase1.load(), N);
}

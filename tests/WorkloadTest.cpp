//===- tests/WorkloadTest.cpp - Workload driver tests ---------------------===//
//
// Part of the SOLERO reproduction (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "workloads/DaCapoLikeWorkload.h"
#include "workloads/Harness.h"
#include "workloads/JbbWorkload.h"
#include "workloads/LockPolicies.h"
#include "workloads/MapWorkload.h"

#include "collections/JavaHashMap.h"
#include "collections/JavaTreeMap.h"
#include "collections/SynchronizedMap.h"

#include <gtest/gtest.h>

using namespace solero;

namespace {

RuntimeContext &ctx() {
  static RuntimeContext Ctx;
  return Ctx;
}

using HashSyncMap = SynchronizedMap<JavaHashMap<int64_t, int64_t>,
                                    SoleroPolicy>;

HarnessOptions quickOpts() {
  HarnessOptions O;
  O.Window = std::chrono::milliseconds(60);
  O.Warmup = std::chrono::milliseconds(5);
  O.Trials = 1;
  return O;
}

} // namespace

TEST(Harness, CountsOpsAndTime) {
  std::atomic<uint64_t> Calls{0};
  BenchResult R = runThroughput(2, quickOpts(),
                                [&](int) { Calls.fetch_add(1); });
  EXPECT_GT(R.Ops, 0u);
  EXPECT_GT(R.OpsPerSec, 0.0);
  EXPECT_GE(Calls.load(), R.Ops); // warm-up calls are extra
  EXPECT_NEAR(R.Seconds, 0.06, 0.04);
}

TEST(Harness, DeltaCountersAreWindowScoped) {
  SoleroPolicy P(ctx());
  BenchResult R = runThroughput(1, quickOpts(), [&](int) {
    P.read([](ReadGuard &) { return 0; });
  });
  // Every op is one read-only entry; allow warm-up slop on the high side.
  EXPECT_GE(R.Delta.ReadOnlyEntries, R.Ops);
  EXPECT_DOUBLE_EQ(R.readOnlyRatio(), 1.0);
  EXPECT_GT(R.Delta.ElisionSuccesses, 0u);
}

TEST(MapWorkload, ReadOnlyProfileElidesEverything) {
  MapWorkloadParams P;
  P.KeySpace = 256;
  P.WritePercent = 0;
  MapWorkload<HashSyncMap> W(P, [&](int) {
    return std::make_unique<HashSyncMap>(ctx());
  });
  BenchResult R = runThroughput(2, quickOpts(), std::ref(W));
  EXPECT_GT(R.Ops, 0u);
  EXPECT_DOUBLE_EQ(R.readOnlyRatio(), 1.0);
  // No writers: every speculative execution validates.
  EXPECT_EQ(R.Delta.ElisionFailures, 0u);
  EXPECT_TRUE(W.verifyFullyPopulated());
}

TEST(MapWorkload, FivePercentWritesProfile) {
  MapWorkloadParams P;
  P.KeySpace = 256;
  P.WritePercent = 5;
  MapWorkload<HashSyncMap> W(P, [&](int) {
    return std::make_unique<HashSyncMap>(ctx());
  });
  BenchResult R = runThroughput(2, quickOpts(), std::ref(W));
  EXPECT_GT(R.Ops, 1000u);
  EXPECT_NEAR(R.readOnlyRatio(), 0.95, 0.02);
  EXPECT_TRUE(W.verifyFullyPopulated());
}

TEST(MapWorkload, FineGrainedVariantUsesAllMaps) {
  MapWorkloadParams P;
  P.KeySpace = 128;
  P.WritePercent = 5;
  P.NumMaps = 4;
  int Created = 0;
  MapWorkload<HashSyncMap> W(P, [&](int) {
    ++Created;
    return std::make_unique<HashSyncMap>(ctx());
  });
  EXPECT_EQ(Created, 4);
  BenchResult R = runThroughput(4, quickOpts(), std::ref(W));
  EXPECT_GT(R.Ops, 0u);
  EXPECT_TRUE(W.verifyFullyPopulated());
}

TEST(JbbWorkload, RunsAllTransactionTypes) {
  JbbParams P;
  P.Warehouses = 2;
  P.ItemCount = 256;
  JbbWorkload<SoleroPolicy> W(ctx(), P);
  BenchResult R = runThroughput(2, quickOpts(), std::ref(W));
  EXPECT_GT(R.Ops, 100u);
  // Table 1: SPECjbb2005 has 53.6% read-only locks; the synthetic mix must
  // land in that neighbourhood.
  EXPECT_NEAR(R.readOnlyRatio(), 0.54, 0.08);
}

TEST(JbbWorkload, ScalesShareNothing) {
  JbbParams P;
  P.Warehouses = 4;
  P.ItemCount = 128;
  JbbWorkload<TasukiPolicy> W(ctx(), P);
  BenchResult R = runThroughput(4, quickOpts(), std::ref(W));
  EXPECT_GT(R.Ops, 100u);
  // Share-nothing: essentially no contention-driven inflations.
  EXPECT_EQ(R.Delta.Inflations, 0u);
}

TEST(DaCapoLikeWorkload, ProfilesMatchTable1ReadOnlyRatios) {
  for (const DaCapoProfile &Prof : DaCapoProfiles) {
    DaCapoLikeWorkload<SoleroPolicy> W(ctx(), Prof, /*MaxThreads=*/2);
    BenchResult R = runThroughput(2, quickOpts(), std::ref(W));
    EXPECT_GT(R.Ops, 0u) << Prof.Name;
    EXPECT_NEAR(R.readOnlyRatio() * 100.0, Prof.PaperReadOnlyPercent, 1.0)
        << Prof.Name;
  }
}

TEST(DaCapoLikeWorkload, SoleroOverheadIsBounded) {
  // Figure 16's claim: on low-read-only workloads SOLERO neither helps nor
  // hurts much. Functional smoke only (timing asserts are not portable):
  // both policies complete and stay consistent.
  const DaCapoProfile &H2 = DaCapoProfiles[0];
  DaCapoLikeWorkload<TasukiPolicy> WL(ctx(), H2, 2);
  DaCapoLikeWorkload<SoleroPolicy> WS(ctx(), H2, 2);
  EXPECT_GT(runThroughput(2, quickOpts(), std::ref(WL)).Ops, 0u);
  EXPECT_GT(runThroughput(2, quickOpts(), std::ref(WS)).Ops, 0u);
}
